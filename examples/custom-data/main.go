// Custom data: drive Carbon Explorer with your own hourly grid data instead
// of the built-in synthetic models. This example writes a grid year to the
// EIA-style CSV schema, reads it back (exactly as you would read a converted
// real EIA export), assembles evaluation inputs from the parsed series, and
// runs an optimization — the full real-data substitution path.
//
//	go run ./examples/custom-data
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"carbonexplorer"
	"carbonexplorer/internal/eiacsv"
)

func main() {
	// 1. Produce a CSV. In real use this file comes from your own data:
	//    convert an EIA Hourly Grid Monitor export into the schema
	//    documented in internal/eiacsv (gridgen -ba PACE shows the format).
	dir, err := os.MkdirTemp("", "carbonexplorer-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "pace.csv")

	year, err := carbonexplorer.GenerateGridYear("PACE")
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := eiacsv.Write(f, year); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s (%.1f MB, %d hourly rows)\n", path, float64(info.Size())/1e6, year.Hours())

	// 2. Read it back — this is the entry point for real data.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	parsed, err := eiacsv.Read(g, "PACE")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed grid year: renewable share %.1f%%, curtailed %.2f%%, mean CI %.0f g/kWh\n",
		parsed.RenewableShare()*100, parsed.CurtailedFraction()*100, parsed.CarbonIntensity().Mean())

	// 3. Assemble inputs from the parsed series plus your own demand trace
	//    (here: the built-in demand model standing in for a measured one).
	site := carbonexplorer.MustSite("UT")
	demandParams := carbonexplorer.DefaultDemandParams(site.AvgPowerMW)
	demandIn, err := carbonexplorer.NewInputs(site, carbonexplorer.WithDemandParams(demandParams))
	if err != nil {
		log.Fatal(err)
	}
	in, err := carbonexplorer.NewInputsFromSeries(site,
		demandIn.Demand, // substitute your measured hourly MW here
		parsed.WindShape(),
		parsed.SolarShape(),
		parsed.CarbonIntensity(),
		carbonexplorer.DefaultEmbodiedParams(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Explore as usual.
	res, err := in.Search(carbonexplorer.DefaultSpace(in), carbonexplorer.RenewablesBattery)
	if err != nil {
		log.Fatal(err)
	}
	opt := res.Optimal
	fmt.Printf("\ncarbon-optimal design on the CSV-loaded grid:\n")
	fmt.Printf("  wind %.0f MW, solar %.0f MW, battery %.0f MWh\n",
		opt.Design.WindMW, opt.Design.SolarMW, opt.Design.BatteryMWh)
	fmt.Printf("  coverage %.2f%%, total %s/yr\n", opt.CoveragePct, opt.Total())
}
