// Fleet balancing: migrate flexible load across all thirteen datacenter
// sites, following renewable surpluses geographically — when it is calm in
// Oregon it may be windy in Nebraska and sunny in New Mexico. This is the
// spatial counterpart to the paper's temporal carbon-aware scheduling.
//
//	go run ./examples/fleet-balancing [migratable-ratio]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"carbonexplorer"
	"carbonexplorer/internal/fleet"
)

func main() {
	ratio := 0.3
	if len(os.Args) > 1 {
		v, err := strconv.ParseFloat(os.Args[1], 64)
		if err != nil || v < 0 || v > 1 {
			log.Fatalf("migratable ratio must be in [0, 1], got %q", os.Args[1])
		}
		ratio = v
	}

	var dcs []fleet.DC
	for _, site := range carbonexplorer.Sites() {
		in, err := carbonexplorer.NewInputs(site)
		if err != nil {
			log.Fatal(err)
		}
		dcs = append(dcs, fleet.DC{
			ID:         site.ID,
			Demand:     in.Demand,
			Renewable:  in.RenewableSupply(site.WindInvestMW, site.SolarInvestMW),
			GridCI:     in.GridCI,
			CapacityMW: in.PeakDemandMW() * 1.5,
		})
	}

	res, err := fleet.Balance(dcs, fleet.Config{MigratableRatio: ratio})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Fleet of %d sites, %.0f%% of load migratable, Meta investment levels\n\n", len(dcs), ratio*100)
	fmt.Printf("  fleet 24/7 coverage: %6.2f%% -> %6.2f%% (+%.2f pp)\n",
		res.CoverageBeforePct, res.CoverageAfterPct, res.CoverageAfterPct-res.CoverageBeforePct)
	fmt.Printf("  operational carbon:  %s -> %s (-%.1f%%)\n",
		res.CarbonBefore, res.CarbonAfter,
		(1-float64(res.CarbonAfter)/float64(res.CarbonBefore))*100)
	fmt.Printf("  energy migrated:     %.1f GWh over the year\n\n", res.MigratedMWh/1000)

	fmt.Println("per-site annual load change (positive = absorbed migrated work):")
	for i, dc := range dcs {
		before := dc.Demand.Sum()
		after := res.Loads[i].Sum()
		fmt.Printf("  %-3s %+8.1f GWh (%+.1f%%)\n", dc.ID, (after-before)/1000, (after-before)/before*100)
	}
}
