// Horizon planning: how does a carbon-aware design age? This example
// installs a fixed design in year zero and walks it through a decade of the
// paper's "looking forward" trends — demand growth, rising workload
// flexibility, cleaner manufacturing, battery fade — comparing a
// replace-the-battery policy against letting it retire.
//
//	go run ./examples/horizon-planning [site]
package main

import (
	"fmt"
	"log"
	"os"

	"carbonexplorer"
	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/dcload"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/horizon"
	"carbonexplorer/internal/timeseries"
)

func main() {
	siteID := "UT"
	if len(os.Args) > 1 {
		siteID = os.Args[1]
	}
	site, err := carbonexplorer.SiteByID(siteID)
	if err != nil {
		log.Fatal(err)
	}

	// One base weather year, reused across the horizon so the trajectory
	// isolates the modelled trends.
	profile := grid.MustProfile(site.BA)
	year := grid.GenerateYear(profile)
	wind, solar, ci := year.WindShape(), year.SolarShape(), year.CarbonIntensity()
	baseTrace, err := dcload.Generate(dcload.DefaultParams(site.AvgPowerMW), timeseries.HoursPerYear)
	if err != nil {
		log.Fatal(err)
	}

	trends := horizon.DefaultTrends()
	factory := func(y int, emb carbon.EmbodiedParams) (*explorer.Inputs, error) {
		scale := 1.0
		for i := 0; i < y; i++ {
			scale *= 1 + trends.DemandGrowthPerYear
		}
		return explorer.NewInputsFromSeries(site, baseTrace.Power.Scale(scale), wind, solar, ci, emb)
	}

	design := explorer.Design{
		WindMW: 4 * site.AvgPowerMW, SolarMW: 4 * site.AvgPowerMW,
		BatteryMWh: 6 * site.AvgPowerMW, DoD: 1.0,
		FlexibleRatio: 0.40, ExtraCapacityFrac: 0.25,
	}

	fmt.Printf("%s: fixed year-zero design (wind %.0f MW, solar %.0f MW, battery %.0f MWh)\n",
		site.Name, design.WindMW, design.SolarMW, design.BatteryMWh)
	fmt.Printf("trends: demand %+.0f%%/yr, flexibility %+.0f pp/yr, renewable embodied %.0f%%/yr, battery embodied %.0f%%/yr\n\n",
		trends.DemandGrowthPerYear*100, trends.FlexibleRatioGrowthPerYear*100,
		-trends.RenewableEmbodiedDeclinePerYear*100, -trends.BatteryEmbodiedDeclinePerYear*100)

	for _, replace := range []bool{true, false} {
		plan := horizon.Plan{
			Design: design, Years: 10, Trends: trends,
			ReplaceSpentBattery: replace,
		}
		traj, err := horizon.Simulate(plan, factory)
		if err != nil {
			log.Fatal(err)
		}
		label := "replace spent battery"
		if !replace {
			label = "retire spent battery"
		}
		fmt.Printf("policy: %s\n", label)
		fmt.Printf("%4s %12s %10s %14s %10s\n", "year", "coverage_%", "total_kt", "battery_cap_%", "flexible_%")
		for _, y := range traj.Years {
			marker := ""
			if y.BatteryReplaced {
				marker = "  <- replaced"
			}
			fmt.Printf("%4d %12.2f %10.2f %14.1f %10.0f%s\n",
				y.Year, y.Outcome.CoveragePct, y.Outcome.Total().Kilotonnes(),
				y.BatteryCapacityFraction*100, y.FlexibleRatio*100, marker)
		}
		fmt.Printf("decade total: %.1f ktCO2, %d battery replacement(s)\n\n",
			traj.TotalCarbon.Kilotonnes(), traj.Replacements)
	}
}
