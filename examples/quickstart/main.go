// Quickstart: evaluate Meta's actual Utah renewable investments, then see
// what a battery adds — the core Carbon Explorer workflow in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"carbonexplorer"
)

func main() {
	// Pick a site from the paper's Table 1 and build its evaluation inputs:
	// a simulated year of hourly datacenter demand, the regional grid's
	// wind/solar generation shapes, and the grid's hourly carbon intensity.
	site := carbonexplorer.MustSite("UT")
	in, err := carbonexplorer.NewInputs(site)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s): avg demand %.1f MW, peak %.1f MW\n\n",
		site.Name, site.BA, in.AvgDemandMW(), in.PeakDemandMW())

	// Evaluate Meta's existing regional investments, renewables only.
	base, err := in.Evaluate(carbonexplorer.Design{
		WindMW:  site.WindInvestMW,
		SolarMW: site.SolarInvestMW,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("Renewables only (Meta's investments)", base)

	// Add four hours of battery, the paper's Figure 9 territory.
	withBattery, err := in.Evaluate(carbonexplorer.Design{
		WindMW:     site.WindInvestMW,
		SolarMW:    site.SolarInvestMW,
		BatteryMWh: 4 * in.AvgDemandMW(),
		DoD:        1.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("With 4h battery", withBattery)

	// And carbon-aware scheduling on top (40% flexible workloads).
	all, err := in.Evaluate(carbonexplorer.Design{
		WindMW:            site.WindInvestMW,
		SolarMW:           site.SolarInvestMW,
		BatteryMWh:        4 * in.AvgDemandMW(),
		DoD:               1.0,
		FlexibleRatio:     0.40,
		ExtraCapacityFrac: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("With battery + carbon-aware scheduling", all)
}

func report(label string, o carbonexplorer.Outcome) {
	fmt.Printf("%s:\n", label)
	fmt.Printf("  24/7 coverage:      %6.2f%%\n", o.CoveragePct)
	fmt.Printf("  operational carbon: %s/yr\n", o.Operational)
	fmt.Printf("  embodied carbon:    %s/yr\n", o.Embodied)
	fmt.Printf("  total carbon:       %s/yr\n\n", o.Total())
}
