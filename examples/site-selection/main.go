// Site selection: rank the paper's thirteen datacenter locations by the
// total carbon footprint of their carbon-optimal design, normalized per MW
// of capacity — the analysis behind the paper's finding that windy regions
// with shallow supply valleys (Nebraska, Iowa) and hybrid regions (Texas,
// Utah) are the best places to site carbon-aware datacenters.
//
//	go run ./examples/site-selection
package main

import (
	"fmt"
	"log"
	"sort"

	"carbonexplorer"
	"carbonexplorer/internal/grid"
)

type ranking struct {
	site       carbonexplorer.Site
	class      string
	optimal    carbonexplorer.Outcome
	perMW      float64
	renewables float64 // coverage with renewables alone, for contrast
}

func main() {
	var rows []ranking
	for _, site := range carbonexplorer.Sites() {
		in, err := carbonexplorer.NewInputs(site)
		if err != nil {
			log.Fatal(err)
		}
		avg := in.AvgDemandMW()
		space := carbonexplorer.Space{
			WindMW:             []float64{0, 2 * avg, 4 * avg, 8 * avg},
			SolarMW:            []float64{0, 2 * avg, 4 * avg, 8 * avg},
			BatteryHours:       []float64{0, 2, 4, 8},
			ExtraCapacityFracs: []float64{0, 0.25},
			DoD:                1.0,
			FlexibleRatio:      0.40,
		}
		all, err := in.Search(space, carbonexplorer.RenewablesBatteryCAS)
		if err != nil {
			log.Fatal(err)
		}
		renOnly, err := in.Search(space, carbonexplorer.RenewablesOnly)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, ranking{
			site:       site,
			class:      grid.MustProfile(site.BA).Class.String(),
			optimal:    all.Optimal,
			perMW:      all.Optimal.Total().Tonnes() / in.PeakDemandMW(),
			renewables: renOnly.Optimal.CoveragePct,
		})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].perMW < rows[j].perMW })

	fmt.Println("Sites ranked by carbon-optimal total footprint per MW (best first):")
	fmt.Printf("%-4s %-14s %10s %12s %14s %12s\n",
		"site", "class", "tCO2/MW/yr", "coverage_%", "renew-only_%", "battery_MWh")
	for i, r := range rows {
		fmt.Printf("%2d. %-4s %-14s %10.1f %12.2f %14.2f %12.0f\n",
			i+1, r.site.ID, r.class, r.perMW, r.optimal.CoveragePct,
			r.renewables, r.optimal.Design.BatteryMWh)
	}
}
