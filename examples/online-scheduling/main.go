// Online scheduling: the paper's design-space exploration assumes an oracle
// that knows the year's renewable supply. A deployed scheduler must act on
// forecasts. This example backtests three forecasters on a site's renewable
// supply, then drives day-ahead workload shifting with each, showing how
// much of the oracle's benefit survives real prediction error.
//
//	go run ./examples/online-scheduling [site]
package main

import (
	"fmt"
	"log"
	"os"

	"carbonexplorer"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/forecast"
	"carbonexplorer/internal/scheduler"
	"carbonexplorer/internal/timeseries"
)

func main() {
	siteID := "TX"
	if len(os.Args) > 1 {
		siteID = os.Args[1]
	}
	site, err := carbonexplorer.SiteByID(siteID)
	if err != nil {
		log.Fatal(err)
	}
	in, err := carbonexplorer.NewInputs(site)
	if err != nil {
		log.Fatal(err)
	}
	avg := in.AvgDemandMW()
	renewable := in.RenewableSupply(4*avg, 4*avg)

	baseCov, err := carbonexplorer.Coverage(in.Demand, renewable)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, wind 4x / solar 4x: %.2f%% coverage without scheduling\n\n", site.Name, baseCov)

	cfg := scheduler.Config{
		CapacityMW:    in.PeakDemandMW() * 1.5,
		FlexibleRatio: 0.40,
		WindowHours:   24,
	}

	// Oracle bound: shift against the true deficit.
	oracleCov := shiftWith(in.Demand, renewable, renewable, cfg)
	fmt.Printf("%-20s coverage %.2f%% (gain %+.2f pp)  [upper bound]\n",
		"oracle", oracleCov, oracleCov-baseCov)

	for _, f := range []forecast.Forecaster{
		forecast.Persistence{},
		forecast.SeasonalMean{},
		forecast.HoltWinters{},
	} {
		acc := forecast.Evaluate(f, renewable.Values(), 14)
		predicted := rollingPrediction(f, renewable)
		cov := shiftWith(in.Demand, renewable, predicted, cfg)
		share := 0.0
		if oracleCov > baseCov {
			share = (cov - baseCov) / (oracleCov - baseCov) * 100
		}
		fmt.Printf("%-20s coverage %.2f%% (gain %+.2f pp)  RMSE %.1f MW, %4.0f%% of oracle gain\n",
			f.Name(), cov, cov-baseCov, acc.RMSE, share)
	}
}

// rollingPrediction forecasts each day from the history before it.
func rollingPrediction(f forecast.Forecaster, actual carbonexplorer.Series) carbonexplorer.Series {
	n := actual.Len()
	vals := actual.Values()
	out := timeseries.New(n)
	for h := 0; h < n && h < 24; h++ {
		out.Set(h, vals[h])
	}
	for start := 24; start < n; start += 24 {
		horizon := 24
		if start+horizon > n {
			horizon = n - start
		}
		fc := f.Forecast(vals[:start], horizon)
		for i := 0; i < horizon; i++ {
			out.Set(start+i, fc[i])
		}
	}
	return out
}

// shiftWith shifts demand on the predicted deficit and scores against the
// actual supply.
func shiftWith(demand, actual, predicted carbonexplorer.Series, cfg scheduler.Config) float64 {
	signal, err := scheduler.DeficitSignal(demand, predicted)
	if err != nil {
		log.Fatal(err)
	}
	shifted, err := carbonexplorer.ShiftDaily(demand, signal, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cov, err := explorer.Coverage(shifted, actual)
	if err != nil {
		log.Fatal(err)
	}
	return cov
}
