// Scheduling: shift flexible workloads against the grid's hourly carbon
// intensity with the paper's greedy carbon-aware scheduler, and show the
// resulting carbon savings over one week — the workflow of Figure 11.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"strings"

	"carbonexplorer"
)

func main() {
	in, err := carbonexplorer.NewInputs(carbonexplorer.MustSite("TX"))
	if err != nil {
		log.Fatal(err)
	}

	// One week of demand and grid carbon intensity.
	const start, hours = 200 * 24, 7 * 24
	demand := in.Demand.Slice(start, start+hours)
	ci := in.GridCI.Slice(start, start+hours)

	shifted, err := carbonexplorer.ShiftDaily(demand, ci, carbonexplorer.SchedulerConfig{
		CapacityMW:    in.PeakDemandMW() * 1.25, // 25% extra servers
		FlexibleRatio: 0.40,                     // the paper's Borg-derived ratio
		WindowHours:   24,
	})
	if err != nil {
		log.Fatal(err)
	}

	var before, after float64
	for h := 0; h < hours; h++ {
		before += demand.At(h) * ci.At(h) * 1000 // MW × g/kWh × kWh/MWh = g
		after += shifted.At(h) * ci.At(h) * 1000
	}
	fmt.Printf("Texas DC, one week, 40%% flexible workloads, +25%% server capacity\n")
	fmt.Printf("  carbon before shifting: %s\n", carbonexplorer.GramsCO2(before))
	fmt.Printf("  carbon after shifting:  %s\n", carbonexplorer.GramsCO2(after))
	fmt.Printf("  reduction:              %.1f%%\n\n", (1-after/before)*100)

	// ASCII sketch of day 3: intensity vs load placement.
	fmt.Println("day 3, hour by hour (CI bar; o = original MW, s = shifted MW):")
	day := 2 * 24
	ciMax := ci.Slice(day, day+24).MaxValue()
	for h := 0; h < 24; h++ {
		c := ci.At(day + h)
		bar := strings.Repeat("#", int(c/ciMax*30))
		fmt.Printf("%02d %6.0f g/kWh %-30s  o=%5.1f  s=%5.1f\n",
			h, c, bar, demand.At(day+h), shifted.At(day+h))
	}
}
