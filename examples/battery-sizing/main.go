// Battery sizing: how much storage does a datacenter need for 24/7
// carbon-free operation, and what does depth of discharge do to the
// trade-off? Reproduces the reasoning of the paper's Figure 9 and the
// Section 5.2 DoD study for one site.
//
//	go run ./examples/battery-sizing [site]
package main

import (
	"fmt"
	"log"
	"os"

	"carbonexplorer"
)

func main() {
	siteID := "UT"
	if len(os.Args) > 1 {
		siteID = os.Args[1]
	}
	site, err := carbonexplorer.SiteByID(siteID)
	if err != nil {
		log.Fatal(err)
	}
	in, err := carbonexplorer.NewInputs(site)
	if err != nil {
		log.Fatal(err)
	}
	avg := in.AvgDemandMW()

	fmt.Printf("%s: battery hours of compute needed for 24/7 coverage\n\n", site.Name)
	fmt.Printf("%8s %8s %14s\n", "wind_x", "solar_x", "battery_hours")
	for _, wx := range []float64{2, 4, 8} {
		for _, sx := range []float64{2, 4, 8} {
			hours, ok, err := in.MinBatteryHoursFor247(wx*avg, sx*avg, 99.99, 100)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				fmt.Printf("%8.0f %8.0f %14s\n", wx, sx, "unreachable")
				continue
			}
			fmt.Printf("%8.0f %8.0f %14.1f\n", wx, sx, hours)
		}
	}

	// Depth-of-discharge trade-off at a fixed design: shallower discharge
	// extends battery life (less embodied carbon per year) but shrinks
	// usable capacity (less coverage), the paper's Section 5.2 tension.
	fmt.Printf("\nDoD trade-off at wind 4x / solar 4x / battery 6h:\n")
	fmt.Printf("%6s %12s %16s %14s %12s\n", "DoD", "coverage_%", "operational_t", "embodied_t", "total_t")
	for _, dod := range []float64{1.0, 0.9, 0.8, 0.6} {
		o, err := in.Evaluate(carbonexplorer.Design{
			WindMW: 4 * avg, SolarMW: 4 * avg,
			BatteryMWh: 6 * avg, DoD: dod,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.0f%% %12.2f %16.0f %14.0f %12.0f\n",
			dod*100, o.CoveragePct, o.Operational.Tonnes(), o.Embodied.Tonnes(), o.Total().Tonnes())
	}
}
