module carbonexplorer

go 1.22
