// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark drives the corresponding generator in internal/experiments;
// cmd/report prints the same rows. Site inputs are cached process-wide, so
// the first iteration pays grid-year simulation and later iterations measure
// the analysis itself.
package carbonexplorer

import (
	"testing"

	"carbonexplorer/internal/experiments"
)

// requireTable fails the benchmark if the generator errored or produced an
// empty table, so a silent regression cannot masquerade as a fast run.
func requireTable(b *testing.B, t experiments.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if len(t.Rows) == 0 {
		b.Fatalf("%s: empty table", t.ID)
	}
}

// BenchmarkFigure01 regenerates Figure 1: hourly wind and solar generation
// over a week on a California-like grid, with the >3x day-to-day swing.
func BenchmarkFigure01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure01()
		requireTable(b, t, err)
	}
}

// BenchmarkTable01 regenerates Table 1: the thirteen datacenter sites and
// regional renewable investments.
func BenchmarkTable01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireTable(b, experiments.Table01(), nil)
	}
}

// BenchmarkFigure03 regenerates Figure 3: diurnal CPU utilization, the flat
// power profile, and their correlation.
func BenchmarkFigure03(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure03()
		requireTable(b, t, err)
	}
}

// BenchmarkTable02 regenerates Table 2: carbon efficiency of energy
// sources.
func BenchmarkTable02(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireTable(b, experiments.Table02(), nil)
	}
}

// BenchmarkFigure04 regenerates Figure 4: curtailment rising with renewable
// deployment across calendar years.
func BenchmarkFigure04(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure04()
		requireTable(b, t, err)
	}
}

// BenchmarkFigure05 regenerates Figure 5: average-day profiles and daily
// generation histograms for BPAT, DUK, and PACE.
func BenchmarkFigure05(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.Figure05()
		requireTable(b, t, err)
	}
}

// BenchmarkFigure06 regenerates Figure 6: hourly operational carbon
// intensity of the grid-mix, Net Zero, and 24/7 scenarios.
func BenchmarkFigure06(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure06()
		requireTable(b, t, err)
	}
}

// BenchmarkFigure07 regenerates Figure 7: the coverage surface over wind
// and solar investments for the three representative regions.
func BenchmarkFigure07(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure07()
		requireTable(b, t, err)
	}
}

// BenchmarkFigure08 regenerates Figure 8: the long investment tail to high
// coverage in Oregon and the over-optimism of average-day supply.
func BenchmarkFigure08(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure08()
		requireTable(b, t, err)
	}
}

// BenchmarkFigure09 regenerates Figure 9: battery hours required for 24/7
// coverage by investment mix.
func BenchmarkFigure09(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure09()
		requireTable(b, t, err)
	}
}

// BenchmarkFigure10 regenerates Figure 10: the SLO-tier breakdown of data
// processing workloads.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireTable(b, experiments.Figure10(), nil)
	}
}

// BenchmarkFigure11 regenerates Figure 11: the three-day carbon-aware
// scheduling illustration.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure11()
		requireTable(b, t, err)
	}
}

// BenchmarkFigure12 regenerates Figure 12: extra server capacity required
// for 24/7 via scheduling with fully flexible workloads.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure12()
		requireTable(b, t, err)
	}
}

// BenchmarkFigure14 regenerates Figure 14: the operational-vs-embodied
// Pareto frontiers of the four strategies in three regions.
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.Figure14()
		requireTable(b, t, err)
	}
}

// BenchmarkFigure15 regenerates Figure 15: the carbon-optimal footprint per
// MW for all thirteen sites and four strategies.
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.Figure15(nil)
		requireTable(b, t, err)
	}
}

// BenchmarkFigure16 regenerates Figure 16: the battery charge-level
// distribution under the carbon-optimal configuration.
func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.Figure16()
		requireTable(b, t, err)
	}
}

// BenchmarkDoDStudy regenerates the Section 5.2 depth-of-discharge
// trade-off analysis.
func BenchmarkDoDStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.DoDStudy([]string{"OR", "UT", "NC"})
		requireTable(b, t, err)
	}
}

// BenchmarkCASGains regenerates the Sections 4.3/5.2 scheduling statistics:
// coverage gains and extra capacity at 40% flexible workloads.
func BenchmarkCASGains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.CASGains(nil)
		requireTable(b, t, err)
	}
}

// BenchmarkTotalReduction regenerates the paper's summary claim: total
// footprint reduction from combining batteries and scheduling with
// renewables.
func BenchmarkTotalReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TotalReduction(nil)
		requireTable(b, t, err)
	}
}

// BenchmarkNetZeroStudy regenerates the Section 3.2 Net Zero vs 24/7
// accounting gap across the fleet.
func BenchmarkNetZeroStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.NetZeroStudy(nil)
		requireTable(b, t, err)
	}
}

// BenchmarkForecastStudy runs the extension comparing oracle and
// forecast-driven carbon-aware scheduling.
func BenchmarkForecastStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ForecastStudy("UT")
		requireTable(b, t, err)
	}
}

// BenchmarkBatteryTechStudy runs the extension comparing storage
// chemistries (LFP, NMC, sodium-ion).
func BenchmarkBatteryTechStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.BatteryTechStudy("NC")
		requireTable(b, t, err)
	}
}

// BenchmarkTieredScheduling runs the extension comparing uniform and
// SLO-tiered deferral windows.
func BenchmarkTieredScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TieredSchedulingStudy("UT")
		requireTable(b, t, err)
	}
}

// BenchmarkGeoBalance runs the extension migrating load across the
// thirteen-site fleet.
func BenchmarkGeoBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.GeoBalanceStudy(0.3)
		requireTable(b, t, err)
	}
}

// BenchmarkDispatchStudy runs the greedy-vs-optimal battery dispatch
// comparison (dynamic program over the year).
func BenchmarkDispatchStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.DispatchStudy("UT", 4)
		requireTable(b, t, err)
	}
}

// BenchmarkJobSim runs the job-level discrete-event validation of the fluid
// scheduling abstraction.
func BenchmarkJobSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.JobSimStudy("UT")
		requireTable(b, t, err)
	}
}

// BenchmarkOptimizerStudy compares search strategies (quality vs
// evaluation budget).
func BenchmarkOptimizerStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.OptimizerStudy("UT")
		requireTable(b, t, err)
	}
}

// BenchmarkCostStudy crosses capital cost with carbon for one site.
func BenchmarkCostStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.CostStudy("UT")
		requireTable(b, t, err)
	}
}

// BenchmarkRobustnessStudy re-evaluates the optimal design across weather
// years.
func BenchmarkRobustnessStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.RobustnessStudy("UT", 3)
		requireTable(b, t, err)
	}
}

// BenchmarkSensitivityStudy runs the embodied-parameter tornado analysis.
func BenchmarkSensitivityStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.SensitivityStudy("UT")
		requireTable(b, t, err)
	}
}

// BenchmarkFWRSweep sweeps the flexible workload ratio.
func BenchmarkFWRSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.FWRSweep("UT")
		requireTable(b, t, err)
	}
}

// BenchmarkDRSignals compares demand-response signals as shifting drivers.
func BenchmarkDRSignals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.DRSignalStudy("TX")
		requireTable(b, t, err)
	}
}

// BenchmarkHorizonStudy simulates the ten-year forward-trend trajectory.
func BenchmarkHorizonStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.HorizonStudy("UT", 10)
		requireTable(b, t, err)
	}
}

// BenchmarkCoverageAtlas regenerates the all-site coverage table.
func BenchmarkCoverageAtlas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.CoverageAtlas()
		requireTable(b, t, err)
	}
}

// BenchmarkPUEStudy runs the cooling-overhead comparison.
func BenchmarkPUEStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.PUEStudy()
		requireTable(b, t, err)
	}
}

// BenchmarkSearchAblation runs the design-space ablation for a solar-only
// region.
func BenchmarkSearchAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.SearchAblation("NC")
		requireTable(b, t, err)
	}
}
