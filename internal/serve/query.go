package serve

import (
	"errors"
	"math"
)

// Unconstrained marks a Query field as absent. Any NaN works; the named
// constant keeps call sites readable.
var Unconstrained = math.NaN()

// Query selects the optimum under constraints. NaN (Unconstrained) fields
// impose nothing; the zero Query — both fields zero — is a real (and almost
// always infeasible) query for a free, fully-covered design, so construct
// queries with Unconstrained explicitly or via the HTTP layer.
type Query struct {
	// MaxCostUSD admits only designs whose capital expenditure is at most
	// this many dollars.
	MaxCostUSD float64
	// MinCoveragePct admits only designs with at least this 24/7 renewable
	// coverage, in [0, 100].
	MinCoveragePct float64
}

// ErrInfeasible reports that no frontier design satisfies a query's
// constraints — contradictory bounds, a budget below the cheapest design,
// or an empty sweep.
var ErrInfeasible = errors.New("serve: no frontier design satisfies the constraints")

// Optimum returns the minimum-total-carbon frontier point satisfying the
// query (ties toward higher coverage, mirroring the sweep engine's
// ordering).
//
// This is the hot read path: zero allocations per call. Single-constraint
// queries binary-search the precomputed sorted view and read the
// prefix-argmin table — O(log n) in the frontier size, with no design
// re-scanned. Dual-constraint queries walk the frontier once (the feasible
// region of a 2-D constraint pair has no single sorted order), still
// allocation-free and still bounded by the frontier, never the grid.
//
// The queryable set is the retained Pareto frontier. A design dominated on
// both carbon axes is dropped by the sweep's fold, so under cost or
// coverage constraints the answer is the best non-dominated design — see
// docs/SERVING.md for what that approximates and why it is the right
// serving trade-off.
//
// The //carbonlint:hotpath marker is the static face of the runtime gate:
// hotalloc rejects allocating constructs in exactly the functions
// TestOptimumZeroAllocs measures (the marker census is pinned by
// TestHotpathMarkersNameZeroAllocGatedSymbols).
//
//carbonlint:hotpath
func (s *Snapshot) Optimum(q Query) (Point, error) {
	if len(s.points) == 0 {
		return Point{}, ErrInfeasible
	}
	hasCost := !math.IsNaN(q.MaxCostUSD)
	hasCov := !math.IsNaN(q.MinCoveragePct)
	switch {
	case !hasCost && !hasCov:
		return s.points[s.bestAll], nil
	case hasCost && !hasCov:
		k := countLE(s.costAsc, q.MaxCostUSD)
		if k == 0 {
			return Point{}, ErrInfeasible
		}
		return s.points[s.costBest[k-1]], nil
	case !hasCost && hasCov:
		k := countGEDesc(s.covDesc, q.MinCoveragePct)
		if k == 0 {
			return Point{}, ErrInfeasible
		}
		return s.points[s.covBest[k-1]], nil
	}
	best := -1
	for i := range s.points {
		p := &s.points[i]
		if p.CostUSD > q.MaxCostUSD || p.Outcome.CoveragePct < q.MinCoveragePct {
			continue
		}
		if best < 0 || betterPoint(p, &s.points[best]) {
			best = i
		}
	}
	if best < 0 {
		return Point{}, ErrInfeasible
	}
	return s.points[best], nil
}

// FrontierBounds returns the half-open index range [lo, hi) of frontier
// points whose embodied carbon lies in [minEmbodiedG, maxEmbodiedG]. NaN
// bounds impose nothing. Zero allocations; two binary searches over the
// embodied array the frontier is already sorted by.
//
//carbonlint:hotpath
func (s *Snapshot) FrontierBounds(minEmbodiedG, maxEmbodiedG float64) (lo, hi int) {
	lo, hi = 0, len(s.embodied)
	if !math.IsNaN(minEmbodiedG) {
		lo = countLT(s.embodied, minEmbodiedG)
	}
	if !math.IsNaN(maxEmbodiedG) {
		hi = countLE(s.embodied, maxEmbodiedG)
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// betterPoint mirrors the sweep engine's optimum ordering — minimum total
// carbon, ties toward higher coverage — so serve answers agree with the
// batch fold.
//
//carbonlint:hotpath
func betterPoint(a, b *Point) bool {
	at, bt := a.Outcome.Total(), b.Outcome.Total()
	if at != bt { //carbonlint:allow floatcmp exact-bits tie-break mirrors sweep.betterOutcome so serve and batch agree
		return at < bt
	}
	return a.Outcome.CoveragePct > b.Outcome.CoveragePct
}

// countLE returns how many values of the ascending slice are <= x.
//
//carbonlint:hotpath
func countLE(asc []float64, x float64) int {
	lo, hi := 0, len(asc)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if asc[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// countLT returns how many values of the ascending slice are < x.
//
//carbonlint:hotpath
func countLT(asc []float64, x float64) int {
	lo, hi := 0, len(asc)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if asc[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// countGEDesc returns how many values of the descending slice are >= x.
//
//carbonlint:hotpath
func countGEDesc(desc []float64, x float64) int {
	lo, hi := 0, len(desc)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if desc[mid] >= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
