package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/sweep"
	"carbonexplorer/internal/timeseries"
)

// testInputs builds small deterministic inputs (ten synthetic days) so
// sweeps and pricing run in milliseconds without the grid-year simulation.
func testInputs(t testing.TB) *explorer.Inputs {
	t.Helper()
	site := grid.MustSite("UT")
	n := 240
	demand := timeseries.Constant(n, 12)
	wind := timeseries.Generate(n, func(h int) float64 {
		return 0.5 + 0.4*math.Sin(2*math.Pi*float64(h)/31)
	})
	solar := timeseries.Generate(n, func(h int) float64 {
		if h%24 >= 7 && h%24 < 17 {
			return 0.9
		}
		return 0
	})
	ci := timeseries.Constant(n, 400)
	in, err := explorer.NewInputsFromSeries(site, demand, wind, solar, ci, carbon.DefaultEmbodiedParams())
	if err != nil {
		t.Fatalf("building test inputs: %v", err)
	}
	return in
}

// testSpace is a small grid with distinct wind/solar/battery points so the
// frontier has several designs with different costs and coverages.
func testSpace() explorer.Space {
	return explorer.Space{
		WindMW:       []float64{0, 20, 40, 60},
		SolarMW:      []float64{0, 20, 40},
		BatteryHours: []float64{0, 2},
		DoD:          0.8,
	}
}

// testCheckpoint sweeps the space and returns the checkpoint path plus the
// sweep's own result for cross-checking.
func testCheckpoint(t testing.TB, in *explorer.Inputs) (string, sweep.Result) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.json")
	res, err := sweep.Run(context.Background(), in, testSpace(), explorer.RenewablesBattery, sweep.Options{
		Checkpoint: sweep.CheckpointOptions{Path: path},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	return path, res
}

// testOptions wires the in-memory inputs so tests never touch the site
// cache.
func testOptions(in *explorer.Inputs) Options {
	return Options{Inputs: func(string) (*explorer.Inputs, error) { return in, nil }}
}

func loadTestIndex(t testing.TB) (*Index, *Snapshot, sweep.Result) {
	t.Helper()
	in := testInputs(t)
	path, res := testCheckpoint(t, in)
	ix, err := Load([]string{path}, testOptions(in))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	snap, ok := ix.Snapshot(ix.Snapshots()[0].SpaceHash)
	if !ok {
		t.Fatal("snapshot lookup by its own hash failed")
	}
	return ix, snap, res
}

func TestLoadSnapshotMirrorsCheckpoint(t *testing.T) {
	_, snap, res := loadTestIndex(t)
	if !snap.Complete() {
		t.Errorf("finished sweep loaded as incomplete: %+v", snap)
	}
	if snap.Site != "UT" || snap.Strategy != explorer.RenewablesBattery {
		t.Errorf("snapshot identity = (%s, %v), want (UT, RenewablesBattery)", snap.Site, snap.Strategy)
	}
	if snap.Done != res.Report.Evaluated {
		t.Errorf("Done = %d, want %d evaluated", snap.Done, res.Report.Evaluated)
	}
	if len(snap.Frontier()) != len(res.Frontier) {
		t.Fatalf("frontier size = %d, want %d", len(snap.Frontier()), len(res.Frontier))
	}
	for i, p := range snap.Frontier() {
		if p.Outcome.Design != res.Frontier[i].Design {
			t.Errorf("frontier[%d].Design = %+v, want %+v", i, p.Outcome.Design, res.Frontier[i].Design)
		}
		if p.CostUSD < 0 || math.IsNaN(p.CostUSD) {
			t.Errorf("frontier[%d] priced at %v", i, p.CostUSD)
		}
	}
}

func TestOptimumUnconstrainedMatchesSweep(t *testing.T) {
	_, snap, res := loadTestIndex(t)
	p, err := snap.Optimum(Query{MaxCostUSD: Unconstrained, MinCoveragePct: Unconstrained})
	if err != nil {
		t.Fatalf("Optimum: %v", err)
	}
	if p.Outcome.Design != res.Optimal.Design {
		t.Errorf("unconstrained optimum %+v, want the sweep's optimal %+v", p.Outcome.Design, res.Optimal.Design)
	}
}

// bruteOptimum is the O(n) reference the precomputed tables must agree
// with on every constraint combination.
func bruteOptimum(points []Point, q Query) (Point, bool) {
	best := -1
	for i := range points {
		p := &points[i]
		if !math.IsNaN(q.MaxCostUSD) && p.CostUSD > q.MaxCostUSD {
			continue
		}
		if !math.IsNaN(q.MinCoveragePct) && p.Outcome.CoveragePct < q.MinCoveragePct {
			continue
		}
		if best < 0 || betterPoint(p, &points[best]) {
			best = i
		}
	}
	if best < 0 {
		return Point{}, false
	}
	return points[best], true
}

func TestOptimumAgreesWithBruteForce(t *testing.T) {
	_, snap, _ := loadTestIndex(t)
	pts := snap.Frontier()
	// Probe budgets and coverage floors at, between, and beyond every
	// frontier value, in all constraint combinations.
	costs := []float64{Unconstrained, -1, 0}
	covs := []float64{Unconstrained, 0, 101}
	for _, p := range pts {
		costs = append(costs, p.CostUSD, p.CostUSD*0.999, p.CostUSD*1.001)
		covs = append(covs, p.Outcome.CoveragePct, p.Outcome.CoveragePct-0.01, p.Outcome.CoveragePct+0.01)
	}
	for _, c := range costs {
		for _, v := range covs {
			q := Query{MaxCostUSD: c, MinCoveragePct: v}
			want, feasible := bruteOptimum(pts, q)
			got, err := snap.Optimum(q)
			if !feasible {
				if !errors.Is(err, ErrInfeasible) {
					t.Fatalf("Optimum(%+v) = %+v, %v; want ErrInfeasible", q, got, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("Optimum(%+v): %v; brute force found %+v", q, err, want.Outcome.Design)
			}
			if got.Outcome.Design != want.Outcome.Design {
				t.Errorf("Optimum(%+v) = %+v, want %+v", q, got.Outcome.Design, want.Outcome.Design)
			}
		}
	}
}

func TestFrontierBounds(t *testing.T) {
	_, snap, _ := loadTestIndex(t)
	pts := snap.Frontier()
	if len(pts) < 2 {
		t.Fatalf("test frontier too small: %d points", len(pts))
	}
	lo, hi := snap.FrontierBounds(Unconstrained, Unconstrained)
	if lo != 0 || hi != len(pts) {
		t.Errorf("unbounded FrontierBounds = [%d, %d), want [0, %d)", lo, hi, len(pts))
	}
	for i := range pts {
		e := float64(pts[i].Outcome.Embodied)
		lo, hi = snap.FrontierBounds(e, e)
		for k := lo; k < hi; k++ {
			if float64(pts[k].Outcome.Embodied) != e {
				t.Errorf("FrontierBounds(%v, %v) includes embodied %v", e, e, pts[k].Outcome.Embodied)
			}
		}
		if lo >= hi {
			t.Errorf("FrontierBounds(%v, %v) empty, but point %d has that embodied value", e, e, i)
		}
	}
	if lo, hi := snap.FrontierBounds(math.Inf(1)/2, Unconstrained); lo != hi {
		t.Errorf("min above every embodied value: got non-empty [%d, %d)", lo, hi)
	}
}

func TestLoadRejectsDuplicatesAndEmpty(t *testing.T) {
	in := testInputs(t)
	path, _ := testCheckpoint(t, in)
	if _, err := Load(nil, testOptions(in)); err == nil {
		t.Error("Load(nil) succeeded, want error")
	}
	_, err := Load([]string{path, path}, testOptions(in))
	if err == nil || !strings.Contains(err.Error(), "merge them first") {
		t.Errorf("duplicate-hash Load error = %v, want a merge-them-first rejection", err)
	}
}

// decodeError reads a wire Error body.
func decodeError(t *testing.T, resp *http.Response) Error {
	t.Helper()
	defer resp.Body.Close()
	var e Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	return e
}

// TestHandlerErrors is the malformed-request table: every row is a request
// the API must refuse with the documented status and typed code (see
// docs/SERVING.md).
func TestHandlerErrors(t *testing.T) {
	ix, snap, _ := loadTestIndex(t)
	srv := httptest.NewServer(Handler(ix))
	defer srv.Close()
	opt := "/v1/sweeps/" + snap.SpaceHash + "/optimum"
	cases := []struct {
		name   string
		method string
		url    string
		status int
		code   string
	}{
		{"unknown space hash", "GET", "/v1/sweeps/nope", http.StatusNotFound, "unknown_sweep"},
		{"unknown hash on optimum", "GET", "/v1/sweeps/nope/optimum", http.StatusNotFound, "unknown_sweep"},
		{"contradictory constraints", "GET", opt + "?max_cost_usd=0&min_coverage_pct=100", http.StatusUnprocessableEntity, "infeasible"},
		{"budget below cheapest", "GET", opt + "?max_cost_usd=-5", http.StatusUnprocessableEntity, "infeasible"},
		{"non-numeric cost", "GET", opt + "?max_cost_usd=cheap", http.StatusBadRequest, "bad_param"},
		{"NaN cost", "GET", opt + "?max_cost_usd=NaN", http.StatusBadRequest, "bad_param"},
		{"infinite coverage", "GET", opt + "?min_coverage_pct=+Inf", http.StatusBadRequest, "bad_param"},
		{"non-numeric frontier bound", "GET", "/v1/sweeps/" + snap.SpaceHash + "/frontier?min_embodied_g=low", http.StatusBadRequest, "bad_param"},
		{"negative frontier limit", "GET", "/v1/sweeps/" + snap.SpaceHash + "/frontier?limit=-2", http.StatusBadRequest, "bad_param"},
		{"fractional chart width", "GET", "/v1/sweeps/" + snap.SpaceHash + "/chart?width=8.5", http.StatusBadRequest, "bad_param"},
		{"oversized chart", "GET", "/v1/sweeps/" + snap.SpaceHash + "/chart?width=100000", http.StatusBadRequest, "bad_param"},
		{"non-numeric compare bound", "GET", "/v1/compare?min_coverage_pct=high", http.StatusBadRequest, "bad_param"},
		{"wrong method on listing", "POST", "/v1/sweeps", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"wrong method on optimum", "DELETE", opt, http.StatusMethodNotAllowed, "method_not_allowed"},
		{"wrong method on health", "PUT", "/v1/healthz", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"unknown route", "GET", "/v2/everything", http.StatusNotFound, "unknown_route"},
		{"root", "GET", "/", http.StatusNotFound, "unknown_route"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.url, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.url, resp.StatusCode, tc.status)
			}
			if got := resp.Header.Get("Content-Type"); got != "application/json" {
				t.Errorf("%s %s: Content-Type %q, want application/json", tc.method, tc.url, got)
			}
			if e := decodeError(t, resp); e.Code != tc.code {
				t.Errorf("%s %s: code %q (%s), want %q", tc.method, tc.url, e.Code, e.Message, tc.code)
			}
		})
	}
}

func TestHandlerHappyPaths(t *testing.T) {
	ix, snap, res := loadTestIndex(t)
	srv := httptest.NewServer(Handler(ix))
	defer srv.Close()
	get := func(t *testing.T, url string, into any) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}

	t.Run("listing", func(t *testing.T) {
		var got []sweepJSON
		get(t, "/v1/sweeps", &got)
		if len(got) != 1 || got[0].SpaceHash != snap.SpaceHash || !got[0].Complete {
			t.Errorf("listing = %+v", got)
		}
	})
	t.Run("optimum", func(t *testing.T) {
		var got optimumJSON
		get(t, "/v1/sweeps/"+snap.SpaceHash+"/optimum", &got)
		if got.Optimum.Design != res.Optimal.Design {
			t.Errorf("served optimum %+v, want %+v", got.Optimum.Design, res.Optimal.Design)
		}
		if got.Query.MaxCostUSD != nil || got.Query.MinCoveragePct != nil {
			t.Errorf("unconstrained query echoed constraints: %+v", got.Query)
		}
	})
	t.Run("optimum echoes constraints", func(t *testing.T) {
		var got optimumJSON
		get(t, "/v1/sweeps/"+snap.SpaceHash+"/optimum?max_cost_usd=1e12&min_coverage_pct=0", &got)
		if got.Query.MaxCostUSD == nil || *got.Query.MaxCostUSD != 1e12 {
			t.Errorf("max_cost_usd echo = %v, want 1e12", got.Query.MaxCostUSD)
		}
		if got.Query.MinCoveragePct == nil || *got.Query.MinCoveragePct != 0 {
			t.Errorf("min_coverage_pct echo = %v, want 0", got.Query.MinCoveragePct)
		}
	})
	t.Run("frontier paging", func(t *testing.T) {
		var all frontierJSON
		get(t, "/v1/sweeps/"+snap.SpaceHash+"/frontier", &all)
		if len(all.Points) != len(snap.Frontier()) {
			t.Fatalf("unpaged frontier returned %d of %d points", len(all.Points), len(snap.Frontier()))
		}
		var page frontierJSON
		get(t, "/v1/sweeps/"+snap.SpaceHash+"/frontier?offset=1&limit=2", &page)
		if page.Offset != 1 || len(page.Points) != 2 {
			t.Fatalf("offset=1&limit=2 gave offset %d, %d points", page.Offset, len(page.Points))
		}
		if page.Points[0].Design != all.Points[1].Design {
			t.Errorf("page start %+v, want %+v", page.Points[0].Design, all.Points[1].Design)
		}
		var sliced frontierJSON
		maxE := all.Points[0].EmbodiedG
		get(t, "/v1/sweeps/"+snap.SpaceHash+"/frontier?max_embodied_g="+jsonNum(maxE), &sliced)
		for _, p := range sliced.Points {
			if p.EmbodiedG > maxE {
				t.Errorf("max_embodied_g=%v returned embodied %v", maxE, p.EmbodiedG)
			}
		}
	})
	t.Run("chart", func(t *testing.T) {
		var got chartJSON
		get(t, "/v1/sweeps/"+snap.SpaceHash+"/chart", &got)
		n := len(snap.Frontier())
		if len(got.EmbodiedG) != n || len(got.OperationalG) != n || len(got.TotalG) != n ||
			len(got.CoveragePct) != n || len(got.CostUSD) != n {
			t.Errorf("chart arrays not parallel to the %d-point frontier: %+v", n, got)
		}
		if !strings.Contains(got.ASCII, "*") {
			t.Errorf("chart ASCII rendering has no points:\n%s", got.ASCII)
		}
	})
	t.Run("compare", func(t *testing.T) {
		var got compareJSON
		get(t, "/v1/compare", &got)
		if len(got.Regions) != 1 || !got.Regions[0].Feasible || got.Regions[0].Optimum == nil {
			t.Fatalf("compare = %+v", got)
		}
		if got.Regions[0].Optimum.Design != res.Optimal.Design {
			t.Errorf("compare optimum %+v, want %+v", got.Regions[0].Optimum.Design, res.Optimal.Design)
		}
		var infeasible compareJSON
		get(t, "/v1/compare?max_cost_usd=0&min_coverage_pct=100", &infeasible)
		if infeasible.Regions[0].Feasible || infeasible.Regions[0].Optimum != nil {
			t.Errorf("contradictory compare marked feasible: %+v", infeasible.Regions[0])
		}
	})
	t.Run("health", func(t *testing.T) {
		var got healthJSON
		get(t, "/v1/healthz", &got)
		if got.Status != "ok" || got.Sweeps != 1 {
			t.Errorf("health = %+v", got)
		}
	})
}

// jsonNum formats a float the way a query parameter needs it.
func jsonNum(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
