package serve

import (
	"fmt"
	"sort"

	"carbonexplorer/internal/cost"
	"carbonexplorer/internal/experiments"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/sweep"
)

// Point is one queryable design: a Pareto-frontier outcome priced with the
// capital-cost model. Points are immutable once the index is built.
type Point struct {
	// Outcome is the design's evaluated result (BatterySoC trace empty, as
	// in every checkpoint).
	Outcome explorer.Outcome
	// CostUSD is the design's capital expenditure under the index's cost
	// params, converted at the site's default demand model.
	CostUSD float64
}

// Options configures index construction. The zero value is ready to use.
type Options struct {
	// Cost prices frontier designs; the zero value means cost.Default().
	Cost cost.Params
	// Inputs returns evaluation inputs for a site identifier; the serving
	// layer only reads PeakDemandMW from them, to convert a design's
	// extra-capacity fraction into server capex. Nil means the
	// process-lifetime cache shared with the experiment generators
	// (experiments.SiteInputs). Substitute a stub in tests to avoid the
	// grid-year simulation.
	Inputs func(site string) (*explorer.Inputs, error)
}

func (o Options) withDefaults() Options {
	if o.Cost == (cost.Params{}) {
		o.Cost = cost.Default()
	}
	if o.Inputs == nil {
		o.Inputs = experiments.SiteInputs
	}
	return o
}

// Snapshot is one loaded checkpoint, frozen into query-ready form: the
// frontier sorted by embodied carbon, plus sorted cost and coverage views
// with prefix-argmin tables so single-constraint optimum queries are two
// array lookups after a binary search. All fields and slices are immutable
// after Load; callers must not modify what accessors return — pubfreeze
// rejects field writes outside this file.
//
//carbonlint:immutable
type Snapshot struct {
	// Path is the checkpoint file the snapshot was loaded from.
	Path string
	// SpaceHash fingerprints the sweep; it is the index key.
	SpaceHash string
	// Site is the swept site's short identifier.
	Site string
	// Strategy is the swept strategy.
	Strategy explorer.Strategy
	// Designs, Done, Pending, FailedOnce, and FailedPerm mirror the
	// checkpoint's space-wide progress accounting.
	Designs, Done, Pending, FailedOnce, FailedPerm int
	// PeakDemandMW is the site's baseline peak demand, used for capex
	// conversion.
	PeakDemandMW float64

	// points is the priced frontier, sorted by increasing embodied carbon
	// (ties by operational), matching the checkpoint's frontier order.
	points []Point
	// embodied[i] == points[i].Outcome.Embodied, for frontier-slice
	// binary searches.
	embodied []float64
	// costAsc is every point's CostUSD in ascending order; costBest[k] is
	// the index (into points) of the best outcome among the k+1 cheapest
	// points — so the optimum under "cost ≤ x" is points[costBest[count-1]]
	// where count is the number of points with cost ≤ x.
	costAsc  []float64
	costBest []int32
	// covDesc is every point's CoveragePct in descending order; covBest[k]
	// is the index of the best outcome among the k+1 highest-coverage
	// points.
	covDesc []float64
	covBest []int32
	// bestAll is the index of the unconstrained optimum (argmin total
	// carbon, ties toward higher coverage), or -1 for an empty frontier.
	bestAll int32
}

// Complete reports whether the underlying sweep has no work left.
func (s *Snapshot) Complete() bool { return s.Pending == 0 && s.FailedOnce == 0 }

// Frontier returns the priced Pareto frontier, sorted by increasing
// embodied carbon. The slice is shared with the index — read-only.
func (s *Snapshot) Frontier() []Point { return s.points }

// Index is an immutable set of snapshots keyed by space hash. Build one
// with Load; reads need no locks (see the package documentation for the
// memory model). Field writes outside this file are rejected by pubfreeze.
//
//carbonlint:immutable
type Index struct {
	byHash map[string]*Snapshot
	// ordered lists snapshots sorted by (site, strategy, hash), so listing
	// and comparison endpoints are deterministic regardless of load order.
	ordered []*Snapshot
}

// Load builds an index from finished (or in-progress) sweep checkpoint
// files: per-shard, merged, or coordinator-produced — any file the engine
// itself would accept. Two files describing the same space hash are
// rejected; merge them first (sweep.MergeCheckpoints) so the index serves
// one authoritative fold per space.
func Load(paths []string, opts Options) (*Index, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("serve: no checkpoint files given")
	}
	opts = opts.withDefaults()
	ix := &Index{byHash: make(map[string]*Snapshot, len(paths))}
	for _, path := range paths {
		ck, err := sweep.ReadCheckpoint(path)
		if err != nil {
			return nil, err
		}
		if prev, ok := ix.byHash[ck.SpaceHash]; ok {
			return nil, fmt.Errorf("serve: %s and %s describe the same sweep (space hash %s); merge them first",
				path, prev.Path, ck.SpaceHash)
		}
		snap, err := buildSnapshot(ck, opts)
		if err != nil {
			return nil, fmt.Errorf("serve: indexing %s: %w", path, err)
		}
		ix.byHash[ck.SpaceHash] = snap
		ix.ordered = append(ix.ordered, snap)
	}
	sort.Slice(ix.ordered, func(i, j int) bool {
		a, b := ix.ordered[i], ix.ordered[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		return a.SpaceHash < b.SpaceHash
	})
	return ix, nil
}

// Snapshot returns the snapshot for a space hash.
func (ix *Index) Snapshot(hash string) (*Snapshot, bool) {
	s, ok := ix.byHash[hash]
	return s, ok
}

// Snapshots lists every snapshot, sorted by (site, strategy, hash). The
// slice is shared with the index — read-only.
func (ix *Index) Snapshots() []*Snapshot { return ix.ordered }

// Len returns the number of loaded sweeps.
func (ix *Index) Len() int { return len(ix.ordered) }

// buildSnapshot freezes one checkpoint into query-ready form: price every
// frontier point, then precompute the sorted views and prefix-argmin
// tables the constraint queries binary-search.
func buildSnapshot(ck *sweep.Checkpoint, opts Options) (*Snapshot, error) {
	in, err := opts.Inputs(ck.Site)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		Path:         ck.Path,
		SpaceHash:    ck.SpaceHash,
		Site:         ck.Site,
		Strategy:     ck.Strategy,
		Designs:      ck.Designs,
		Done:         ck.Done,
		Pending:      ck.Pending,
		FailedOnce:   ck.FailedOnce,
		FailedPerm:   ck.FailedPerm,
		PeakDemandMW: in.PeakDemandMW(),
		bestAll:      -1,
	}
	s.points = make([]Point, len(ck.Frontier))
	s.embodied = make([]float64, len(ck.Frontier))
	for i, o := range ck.Frontier {
		capex, err := opts.Cost.DesignCapex(o.Design, s.PeakDemandMW)
		if err != nil {
			return nil, fmt.Errorf("pricing frontier design %d: %w", i, err)
		}
		s.points[i] = Point{Outcome: o, CostUSD: capex.Total()}
		s.embodied[i] = float64(o.Embodied)
	}

	n := len(s.points)
	if n == 0 {
		return s, nil
	}
	for i := range s.points {
		if s.bestAll < 0 || betterPoint(&s.points[i], &s.points[s.bestAll]) {
			s.bestAll = int32(i)
		}
	}

	byCost := sortedView(n, func(a, b int) bool { return s.points[a].CostUSD < s.points[b].CostUSD })
	s.costAsc = make([]float64, n)
	s.costBest = prefixArgmin(s.points, byCost)
	for k, i := range byCost {
		s.costAsc[k] = s.points[i].CostUSD
	}

	byCov := sortedView(n, func(a, b int) bool {
		return s.points[a].Outcome.CoveragePct > s.points[b].Outcome.CoveragePct
	})
	s.covDesc = make([]float64, n)
	s.covBest = prefixArgmin(s.points, byCov)
	for k, i := range byCov {
		s.covDesc[k] = s.points[i].Outcome.CoveragePct
	}
	return s, nil
}

// sortedView returns the point indices 0..n-1 permuted by less. The sort is
// stable, so key ties preserve embodied order and queries stay
// deterministic.
func sortedView(n int, less func(a, b int) bool) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	return idx
}

// prefixArgmin computes, for each prefix of the permuted order, the index
// of the best point (betterPoint) seen so far — the table a constrained
// optimum query reads after binary-searching its constraint boundary.
func prefixArgmin(points []Point, order []int) []int32 {
	out := make([]int32, len(order))
	best := -1
	for k, i := range order {
		if best < 0 || betterPoint(&points[i], &points[best]) {
			best = i
		}
		out[k] = int32(best)
	}
	return out
}
