package serve

// Benchmarks for the serving hot path, run single-core in CI:
//
//	go test -bench . -benchtime 2s -cpu 1 ./internal/serve/
//
// The Optimum/FrontierBounds benchmarks must report 0 allocs/op — that is
// the package's contract, not an aspiration — and the HTTP benchmark proves
// the end-to-end request path (mux, handler, JSON encode) clears 10⁵
// queries per second on one core. BENCH_serve.json records a reference run.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/sweep"
	"carbonexplorer/internal/units"
)

// benchFrontierSize is larger than any real sweep's retained frontier, so
// the measured binary searches are if anything pessimistic.
const benchFrontierSize = 1024

// benchSnapshot builds a synthetic frontier of n non-dominated points —
// embodied ascending, operational descending — with varied coverage and
// cost, frozen through the same buildSnapshot path Load uses.
func benchSnapshot(tb testing.TB, n int) *Snapshot {
	tb.Helper()
	front := make([]explorer.Outcome, n)
	for i := range front {
		front[i] = explorer.Outcome{
			Design: explorer.Design{
				WindMW:  float64(i),
				SolarMW: float64((i * 37) % 211),
			},
			CoveragePct: 100 * float64((i*61)%n) / float64(n),
			Operational: units.GramsCO2(float64(2*n - 2*i)),
			Embodied:    units.GramsCO2(float64(3 * i)),
		}
	}
	best := front[0]
	ck := &sweep.Checkpoint{
		Path:      "bench",
		SpaceHash: "benchhash",
		Site:      "UT",
		Strategy:  explorer.RenewablesOnly,
		Designs:   n,
		Done:      n,
		Best:      &best,
		Frontier:  front,
	}
	in := testInputs(tb)
	snap, err := buildSnapshot(ck, testOptions(in).withDefaults())
	if err != nil {
		tb.Fatalf("building bench snapshot: %v", err)
	}
	return snap
}

func benchIndex(tb testing.TB, n int) *Index {
	snap := benchSnapshot(tb, n)
	return &Index{byHash: map[string]*Snapshot{snap.SpaceHash: snap}, ordered: []*Snapshot{snap}}
}

func BenchmarkOptimumUnconstrained(b *testing.B) {
	snap := benchSnapshot(b, benchFrontierSize)
	q := Query{MaxCostUSD: Unconstrained, MinCoveragePct: Unconstrained}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.Optimum(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimumMaxCost(b *testing.B) {
	snap := benchSnapshot(b, benchFrontierSize)
	budgets := [4]float64{
		snap.costAsc[benchFrontierSize/8],
		snap.costAsc[benchFrontierSize/2],
		snap.costAsc[benchFrontierSize-2],
		snap.costAsc[benchFrontierSize-1] * 2,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{MaxCostUSD: budgets[i%len(budgets)], MinCoveragePct: Unconstrained}
		if _, err := snap.Optimum(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimumMinCoverage(b *testing.B) {
	snap := benchSnapshot(b, benchFrontierSize)
	floors := [4]float64{0, 25, 50, 75}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{MaxCostUSD: Unconstrained, MinCoveragePct: floors[i%len(floors)]}
		if _, err := snap.Optimum(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimumDualConstraint(b *testing.B) {
	snap := benchSnapshot(b, benchFrontierSize)
	budget := snap.costAsc[benchFrontierSize/2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{MaxCostUSD: budget, MinCoveragePct: 10}
		if _, err := snap.Optimum(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrontierBounds(b *testing.B) {
	snap := benchSnapshot(b, benchFrontierSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo, hi := snap.FrontierBounds(float64(3*(i%benchFrontierSize)), float64(3*benchFrontierSize/2))
		_ = lo
		_ = hi
	}
}

// BenchmarkHTTPOptimum measures the full request path — ServeMux routing,
// path-value lookup, the constrained query, and JSON encoding — without
// network or connection overhead, which is what the one-core ≥10⁵ q/s
// target is stated against.
func BenchmarkHTTPOptimum(b *testing.B) {
	h := Handler(benchIndex(b, benchFrontierSize))
	url := "/v1/sweeps/benchhash/optimum?max_cost_usd=1e12"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", url, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkHTTPOptimumNetwork is the same query through a real TCP
// connection and client, for an honest end-to-end number.
func BenchmarkHTTPOptimumNetwork(b *testing.B) {
	srv := httptest.NewServer(Handler(benchIndex(b, benchFrontierSize)))
	defer srv.Close()
	url := srv.URL + "/v1/sweeps/benchhash/optimum?max_cost_usd=1e12"
	client := srv.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// TestOptimumZeroAllocs pins the zero-allocation contract in a plain test,
// so a regression fails `go test` rather than waiting for someone to read
// benchmark output.
func TestOptimumZeroAllocs(t *testing.T) {
	snap := benchSnapshot(t, benchFrontierSize)
	budget := snap.costAsc[benchFrontierSize/2]
	queries := []Query{
		{MaxCostUSD: Unconstrained, MinCoveragePct: Unconstrained},
		{MaxCostUSD: budget, MinCoveragePct: Unconstrained},
		{MaxCostUSD: Unconstrained, MinCoveragePct: 50},
		{MaxCostUSD: budget, MinCoveragePct: 10},
	}
	for _, q := range queries {
		q := q
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := snap.Optimum(q); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("Optimum(%+v): %v allocs/op, want 0", q, allocs)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		snap.FrontierBounds(10, 2000)
	})
	if allocs != 0 {
		t.Errorf("FrontierBounds: %v allocs/op, want 0", allocs)
	}
}
