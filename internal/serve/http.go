package serve

// HTTP transport: a stdlib-only JSON API over the immutable Index. Every
// response body is JSON — errors included, with stable machine-readable
// codes — so clients dispatch on structure, never on message text. The
// handlers hold no locks and touch no mutable state; see doc.go for why
// that is sound.

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"

	"carbonexplorer/internal/chart"
	"carbonexplorer/internal/explorer"
)

// Error is the wire form of a request failure.
type Error struct {
	// Code is a stable, machine-readable failure class (see the errCode
	// constants and docs/SERVING.md).
	Code string `json:"code"`
	// Message is the server-side error text, for humans and logs.
	Message string `json:"message"`
}

// Wire error codes, documented in docs/SERVING.md.
const (
	errCodeUnknownSweep = "unknown_sweep"      // 404: no loaded sweep has that space hash
	errCodeBadParam     = "bad_param"          // 400: unparsable or non-finite query parameter
	errCodeInfeasible   = "infeasible"         // 422: no frontier design satisfies the constraints
	errCodeMethod       = "method_not_allowed" // 405: known route, wrong HTTP method
	errCodeUnknownRoute = "unknown_route"      // 404: no such route
)

// chartWidth/chartHeight bound the ASCII chart dimensions a client may
// request; beyond these the chart stops being a terminal artifact.
const (
	chartWidthMax  = 400
	chartHeightMax = 120
)

// sweepJSON summarizes one loaded sweep.
type sweepJSON struct {
	SpaceHash    string  `json:"space_hash"`
	Site         string  `json:"site"`
	Strategy     int     `json:"strategy"`
	StrategyName string  `json:"strategy_name"`
	Designs      int     `json:"designs"`
	Done         int     `json:"done"`
	Pending      int     `json:"pending"`
	Failed       int     `json:"failed"`
	Complete     bool    `json:"complete"`
	FrontierSize int     `json:"frontier_size"`
	PeakDemandMW float64 `json:"peak_demand_mw"`
}

// pointJSON is one priced frontier design on the wire.
type pointJSON struct {
	Design        explorer.Design `json:"design"`
	CoveragePct   float64         `json:"coverage_pct"`
	OperationalG  float64         `json:"operational_g"`
	EmbodiedG     float64         `json:"embodied_g"`
	TotalG        float64         `json:"total_g"`
	GridEnergyMWh float64         `json:"grid_energy_mwh"`
	CostUSD       float64         `json:"cost_usd"`
}

// queryJSON echoes the constraints a query was answered under; absent
// fields were unconstrained.
type queryJSON struct {
	MaxCostUSD     *float64 `json:"max_cost_usd,omitempty"`
	MinCoveragePct *float64 `json:"min_coverage_pct,omitempty"`
}

// optimumJSON answers an optimum-under-constraints query.
type optimumJSON struct {
	SpaceHash string    `json:"space_hash"`
	Site      string    `json:"site"`
	Query     queryJSON `json:"query"`
	Optimum   pointJSON `json:"optimum"`
}

// frontierJSON answers a Pareto-frontier slice query.
type frontierJSON struct {
	SpaceHash    string      `json:"space_hash"`
	Site         string      `json:"site"`
	FrontierSize int         `json:"frontier_size"`
	Offset       int         `json:"offset"`
	Points       []pointJSON `json:"points"`
}

// chartJSON is chart-ready frontier data: parallel arrays ordered by
// increasing embodied carbon, plus a terminal-renderable ASCII scatter of
// the (embodied, operational) trade-off.
type chartJSON struct {
	SpaceHash    string    `json:"space_hash"`
	Site         string    `json:"site"`
	StrategyName string    `json:"strategy_name"`
	EmbodiedG    []float64 `json:"embodied_g"`
	OperationalG []float64 `json:"operational_g"`
	TotalG       []float64 `json:"total_g"`
	CoveragePct  []float64 `json:"coverage_pct"`
	CostUSD      []float64 `json:"cost_usd"`
	ASCII        string    `json:"ascii"`
}

// compareEntryJSON is one region's answer in a cross-sweep comparison.
type compareEntryJSON struct {
	SpaceHash    string     `json:"space_hash"`
	Site         string     `json:"site"`
	StrategyName string     `json:"strategy_name"`
	Feasible     bool       `json:"feasible"`
	Optimum      *pointJSON `json:"optimum,omitempty"`
}

// compareJSON answers a per-region comparison query.
type compareJSON struct {
	Query   queryJSON          `json:"query"`
	Regions []compareEntryJSON `json:"regions"`
}

// healthJSON answers the health probe.
type healthJSON struct {
	Status string `json:"status"`
	Sweeps int    `json:"sweeps"`
}

// Handler returns the read-only query API over the index:
//
//	GET /v1/sweeps                      -> [sweepJSON]
//	GET /v1/sweeps/{hash}               -> sweepJSON
//	GET /v1/sweeps/{hash}/optimum       -> optimumJSON   ?max_cost_usd= &min_coverage_pct=
//	GET /v1/sweeps/{hash}/frontier      -> frontierJSON  ?min_embodied_g= &max_embodied_g= &offset= &limit=
//	GET /v1/sweeps/{hash}/chart         -> chartJSON     ?width= &height=
//	GET /v1/compare                     -> compareJSON   ?max_cost_usd= &min_coverage_pct=
//	GET /v1/healthz                     -> healthJSON
//
// Failures return 4xx with an Error body; every code is stable and
// documented in docs/SERVING.md. The handler reads only immutable state,
// so it is safe for any number of concurrent requests with no locking.
func Handler(ix *Index) http.Handler {
	mux := http.NewServeMux()
	route := func(path string, h http.HandlerFunc) {
		mux.HandleFunc("GET "+path, h)
		// A method-specific pattern is more specific than the bare one, so
		// GETs route to h and every other method lands here with a typed
		// 405 instead of the mux's plain-text default.
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			writeError(w, http.StatusMethodNotAllowed, errCodeMethod,
				r.Method+" is not allowed here; this API is read-only (GET)")
		})
	}
	route("/v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		out := make([]sweepJSON, 0, ix.Len())
		for _, s := range ix.Snapshots() {
			out = append(out, sweepSummary(s))
		}
		writeJSON(w, out)
	})
	route("/v1/sweeps/{hash}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := ix.Snapshot(r.PathValue("hash"))
		if !ok {
			writeUnknownSweep(w, r.PathValue("hash"))
			return
		}
		writeJSON(w, sweepSummary(s))
	})
	route("/v1/sweeps/{hash}/optimum", func(w http.ResponseWriter, r *http.Request) {
		s, ok := ix.Snapshot(r.PathValue("hash"))
		if !ok {
			writeUnknownSweep(w, r.PathValue("hash"))
			return
		}
		q, qj, err := parseQuery(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, errCodeBadParam, err.Error())
			return
		}
		p, err := s.Optimum(q)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, errCodeInfeasible, err.Error())
			return
		}
		writeJSON(w, optimumJSON{SpaceHash: s.SpaceHash, Site: s.Site, Query: qj, Optimum: pointWire(p)})
	})
	route("/v1/sweeps/{hash}/frontier", func(w http.ResponseWriter, r *http.Request) {
		s, ok := ix.Snapshot(r.PathValue("hash"))
		if !ok {
			writeUnknownSweep(w, r.PathValue("hash"))
			return
		}
		minE, err := floatParam(r, "min_embodied_g")
		if err == nil {
			var maxE float64
			maxE, err = floatParam(r, "max_embodied_g")
			if err == nil {
				var offset, limit int
				offset, err = intParam(r, "offset", 0)
				if err == nil {
					limit, err = intParam(r, "limit", -1)
					if err == nil {
						lo, hi := s.FrontierBounds(minE, maxE)
						writeJSON(w, frontierSlice(s, lo, hi, offset, limit))
						return
					}
				}
			}
		}
		writeError(w, http.StatusBadRequest, errCodeBadParam, err.Error())
	})
	route("/v1/sweeps/{hash}/chart", func(w http.ResponseWriter, r *http.Request) {
		s, ok := ix.Snapshot(r.PathValue("hash"))
		if !ok {
			writeUnknownSweep(w, r.PathValue("hash"))
			return
		}
		width, err := intParam(r, "width", 60)
		if err != nil {
			writeError(w, http.StatusBadRequest, errCodeBadParam, err.Error())
			return
		}
		height, err := intParam(r, "height", 16)
		if err != nil {
			writeError(w, http.StatusBadRequest, errCodeBadParam, err.Error())
			return
		}
		if width > chartWidthMax || height > chartHeightMax {
			writeError(w, http.StatusBadRequest, errCodeBadParam,
				"chart dimensions exceed the "+strconv.Itoa(chartWidthMax)+"x"+strconv.Itoa(chartHeightMax)+" limit")
			return
		}
		writeJSON(w, chartWire(s, width, height))
	})
	route("/v1/compare", func(w http.ResponseWriter, r *http.Request) {
		q, qj, err := parseQuery(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, errCodeBadParam, err.Error())
			return
		}
		out := compareJSON{Query: qj, Regions: make([]compareEntryJSON, 0, ix.Len())}
		for _, s := range ix.Snapshots() {
			e := compareEntryJSON{SpaceHash: s.SpaceHash, Site: s.Site, StrategyName: s.Strategy.String()}
			if p, err := s.Optimum(q); err == nil {
				pw := pointWire(p)
				e.Feasible, e.Optimum = true, &pw
			}
			out.Regions = append(out.Regions, e)
		}
		// Feasible regions first, by ascending total carbon — the ranking a
		// site-selection client wants — then infeasible ones in index order.
		sortCompare(out.Regions)
		writeJSON(w, out)
	})
	route("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, healthJSON{Status: "ok", Sweeps: ix.Len()})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, errCodeUnknownRoute,
			"no such route; see docs/SERVING.md for the API surface")
	})
	return mux
}

// sweepSummary builds the wire summary of one snapshot.
func sweepSummary(s *Snapshot) sweepJSON {
	return sweepJSON{
		SpaceHash:    s.SpaceHash,
		Site:         s.Site,
		Strategy:     int(s.Strategy),
		StrategyName: s.Strategy.String(),
		Designs:      s.Designs,
		Done:         s.Done,
		Pending:      s.Pending,
		Failed:       s.FailedOnce + s.FailedPerm,
		Complete:     s.Complete(),
		FrontierSize: len(s.points),
		PeakDemandMW: s.PeakDemandMW,
	}
}

// pointWire converts a priced frontier point to its wire form.
func pointWire(p Point) pointJSON {
	return pointJSON{
		Design:        p.Outcome.Design,
		CoveragePct:   p.Outcome.CoveragePct,
		OperationalG:  float64(p.Outcome.Operational),
		EmbodiedG:     float64(p.Outcome.Embodied),
		TotalG:        float64(p.Outcome.Total()),
		GridEnergyMWh: p.Outcome.GridEnergyMWh,
		CostUSD:       p.CostUSD,
	}
}

// frontierSlice applies offset/limit paging to the [lo, hi) bound range and
// builds the wire response. limit < 0 means no limit.
func frontierSlice(s *Snapshot, lo, hi, offset, limit int) frontierJSON {
	out := frontierJSON{SpaceHash: s.SpaceHash, Site: s.Site, FrontierSize: len(s.points)}
	if offset > 0 {
		lo += offset
		if lo > hi {
			lo = hi
		}
	}
	if limit >= 0 && lo+limit < hi {
		hi = lo + limit
	}
	out.Offset = lo
	out.Points = make([]pointJSON, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out.Points = append(out.Points, pointWire(s.points[i]))
	}
	return out
}

// chartWire builds the chart-ready frontier arrays plus the ASCII scatter.
func chartWire(s *Snapshot, width, height int) chartJSON {
	n := len(s.points)
	out := chartJSON{
		SpaceHash:    s.SpaceHash,
		Site:         s.Site,
		StrategyName: s.Strategy.String(),
		EmbodiedG:    make([]float64, n),
		OperationalG: make([]float64, n),
		TotalG:       make([]float64, n),
		CoveragePct:  make([]float64, n),
		CostUSD:      make([]float64, n),
	}
	for i, p := range s.points {
		out.EmbodiedG[i] = float64(p.Outcome.Embodied)
		out.OperationalG[i] = float64(p.Outcome.Operational)
		out.TotalG[i] = float64(p.Outcome.Total())
		out.CoveragePct[i] = p.Outcome.CoveragePct
		out.CostUSD[i] = p.CostUSD
	}
	out.ASCII = chart.Scatter(out.EmbodiedG, out.OperationalG, width, height, '*')
	return out
}

// sortCompare orders comparison entries: feasible first by (total carbon,
// site), then infeasible by site — an insertion sort, since region counts
// are tiny and the entries carry nested pointers a sort.Slice closure would
// box.
func sortCompare(entries []compareEntryJSON) {
	less := func(a, b *compareEntryJSON) bool {
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if a.Feasible && a.Optimum.TotalG != b.Optimum.TotalG { //carbonlint:allow floatcmp exact-bits sort key keeps comparison order deterministic
			return a.Optimum.TotalG < b.Optimum.TotalG
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.SpaceHash < b.SpaceHash
	}
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && less(&entries[j], &entries[j-1]); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}

// parseQuery reads the shared constraint parameters, returning both the
// query and its wire echo.
func parseQuery(r *http.Request) (Query, queryJSON, error) {
	q := Query{MaxCostUSD: Unconstrained, MinCoveragePct: Unconstrained}
	var qj queryJSON
	v, err := floatParam(r, "max_cost_usd")
	if err != nil {
		return q, qj, err
	}
	if !math.IsNaN(v) {
		cost := v
		q.MaxCostUSD = cost
		qj.MaxCostUSD = &cost
	}
	v, err = floatParam(r, "min_coverage_pct")
	if err != nil {
		return q, qj, err
	}
	if !math.IsNaN(v) {
		cov := v
		q.MinCoveragePct = cov
		qj.MinCoveragePct = &cov
	}
	return q, qj, nil
}

// floatParam parses an optional float query parameter. Absent returns NaN
// with no error; present-but-unparsable or non-finite (strconv accepts
// "NaN" and "Inf", which would silently mean "unconstrained") is an error.
func floatParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return math.NaN(), errors.New("parameter " + name + ": " + strconv.Quote(raw) + " is not a finite number")
	}
	return v, nil
}

// intParam parses an optional non-negative integer query parameter,
// returning def when absent.
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, errors.New("parameter " + name + ": " + strconv.Quote(raw) + " is not a non-negative integer")
	}
	return v, nil
}

// writeUnknownSweep answers a request naming a space hash the index does
// not hold.
func writeUnknownSweep(w http.ResponseWriter, hash string) {
	writeError(w, http.StatusNotFound, errCodeUnknownSweep,
		"no loaded sweep has space hash "+strconv.Quote(hash)+"; GET /v1/sweeps lists what is served")
}

// writeJSON writes resp with a 200.
func writeJSON(w http.ResponseWriter, resp any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, errCodeBadParam, err.Error())
		return
	}
	_, _ = w.Write(data)
}

// writeError writes a JSON Error body with the given status.
func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(Error{Code: code, Message: message})
	if err != nil {
		return
	}
	_, _ = w.Write(data)
}
