// Package serve turns finished sweep checkpoints into a read-optimized
// query API: the batch side of the system spends hours evaluating a design
// space (internal/sweep, internal/coordinator), and this package serves the
// distilled result — optimum-under-constraints, Pareto-frontier slices,
// per-region comparisons, chart-ready JSON — at in-memory speed.
//
// The design is precompute-heavy, serve-cheap. Load reads one or more
// checkpoint files (sweep.ReadCheckpoint), prices every frontier design
// (internal/cost against the site's cached inputs), and builds per-sweep
// sorted arrays with prefix-argmin tables. After Load returns, the Index is
// immutable: every query is answered by binary searches over those arrays —
// never by re-scanning designs — and the hot read path (Snapshot.Optimum,
// Snapshot.FrontierBounds) performs zero allocations, so one core sustains
// well over 10⁵ queries per second (see BENCH_serve.json).
//
// Reads are lock-free by construction, not by cleverness: the index is
// fully built before the *Index pointer is returned, nothing mutates it
// afterwards, and Go's memory model makes everything that happened before a
// goroutine is started visible to that goroutine — so an http.Server
// started after Load needs no synchronization at all. New checkpoints are
// served by building a new Index, not by mutating a live one.
//
// Handler exposes the index over HTTP (stdlib Go 1.22 ServeMux, JSON
// responses, typed error codes); docs/SERVING.md documents every endpoint
// with request/response schemas and a worked transcript.
package serve
