package horizon

import (
	"fmt"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/units"
)

// Trends are the annual rates of change the paper's outlook anticipates.
type Trends struct {
	// DemandGrowthPerYear is fractional annual growth of datacenter power
	// demand (hyperscale fleets grow steadily).
	DemandGrowthPerYear float64
	// FlexibleRatioGrowthPerYear is the annual absolute increase in the
	// flexible workload ratio ("we expect the delay tolerance nature of
	// computing to increase"), capped at 1.
	FlexibleRatioGrowthPerYear float64
	// RenewableEmbodiedDeclinePerYear is the fractional annual decline of
	// wind/solar manufacturing footprints ("significant efficiency
	// improvement for renewable infrastructures").
	RenewableEmbodiedDeclinePerYear float64
	// BatteryEmbodiedDeclinePerYear is the fractional annual decline of
	// battery manufacturing footprints.
	BatteryEmbodiedDeclinePerYear float64
}

// DefaultTrends returns a moderate outlook.
func DefaultTrends() Trends {
	return Trends{
		DemandGrowthPerYear:             0.08,
		FlexibleRatioGrowthPerYear:      0.03,
		RenewableEmbodiedDeclinePerYear: 0.03,
		BatteryEmbodiedDeclinePerYear:   0.05,
	}
}

// Validate reports the first implausible rate, or nil.
func (t Trends) Validate() error {
	switch {
	case t.DemandGrowthPerYear < -0.5 || t.DemandGrowthPerYear > 1:
		return fmt.Errorf("horizon: demand growth %v implausible", t.DemandGrowthPerYear)
	case t.FlexibleRatioGrowthPerYear < 0 || t.FlexibleRatioGrowthPerYear > 0.5:
		return fmt.Errorf("horizon: flexible growth %v implausible", t.FlexibleRatioGrowthPerYear)
	case t.RenewableEmbodiedDeclinePerYear < 0 || t.RenewableEmbodiedDeclinePerYear >= 1:
		return fmt.Errorf("horizon: renewable decline %v implausible", t.RenewableEmbodiedDeclinePerYear)
	case t.BatteryEmbodiedDeclinePerYear < 0 || t.BatteryEmbodiedDeclinePerYear >= 1:
		return fmt.Errorf("horizon: battery decline %v implausible", t.BatteryEmbodiedDeclinePerYear)
	}
	return nil
}

// Plan fixes the design installed in year zero. The battery degrades over
// the horizon; other assets are re-amortized under the trending embodied
// factors.
type Plan struct {
	// Design is the year-zero installation.
	Design explorer.Design
	// Years is the planning horizon length.
	Years int
	// Trends are the annual rates applied.
	Trends Trends
	// Degradation models the installed battery's capacity fade; zero value
	// uses DefaultDegradation for the design's chemistry at its DoD.
	Degradation battery.DegradationModel
	// ReplaceSpentBattery controls whether a battery that crosses end of
	// life is replaced in kind (incurring a fresh embodied charge) or
	// retired (the fleet simply loses storage).
	ReplaceSpentBattery bool
}

// YearOutcome is one simulated year.
type YearOutcome struct {
	// Year is the 0-based year index.
	Year int
	// Outcome is the explorer evaluation for that year's conditions.
	Outcome explorer.Outcome
	// BatteryCapacityFraction is remaining battery capacity entering the
	// year (1 when no battery or just replaced).
	BatteryCapacityFraction float64
	// BatteryReplaced reports whether the battery was replaced at the
	// start of this year.
	BatteryReplaced bool
	// FlexibleRatio is the ratio in force that year.
	FlexibleRatio float64
}

// Trajectory is a full multi-year simulation result.
type Trajectory struct {
	// Years are the per-year outcomes in order.
	Years []YearOutcome
	// TotalCarbon sums operational + embodied across the horizon.
	TotalCarbon units.GramsCO2
	// Replacements counts battery replacements over the horizon.
	Replacements int
}

// Simulate walks the plan over its horizon. Each year it rebuilds the
// site's inputs with grown demand and trending embodied factors, derates
// the battery by its accumulated fade, and evaluates the design.
//
// newInputs supplies the year's evaluation inputs given the year index and
// the embodied parameters to use — typically a closure over a site that
// regenerates demand at the grown level. The grid's weather is held at the
// base year so the trajectory isolates the modelled trends.
func Simulate(plan Plan, newInputs func(year int, emb carbon.EmbodiedParams) (*explorer.Inputs, error)) (Trajectory, error) {
	if plan.Years <= 0 {
		return Trajectory{}, fmt.Errorf("horizon: non-positive horizon")
	}
	if err := plan.Trends.Validate(); err != nil {
		return Trajectory{}, err
	}
	if err := plan.Design.Validate(); err != nil {
		return Trajectory{}, err
	}
	if newInputs == nil {
		return Trajectory{}, fmt.Errorf("horizon: nil input factory")
	}

	degradation := plan.Degradation
	if degradation.RatedCycles == 0 && plan.Design.BatteryMWh > 0 {
		dod := plan.Design.DoD
		if dod <= 0 {
			dod = 1
		}
		degradation = battery.DefaultDegradation(plan.Design.BatteryTech.Spec().CycleLife(dod))
	}

	var traj Trajectory
	cumulativeCycles := 0.0
	batteryAgeYears := 0.0
	flexible := plan.Design.FlexibleRatio

	for year := 0; year < plan.Years; year++ {
		emb := carbon.DefaultEmbodiedParams()
		renewFactor := pow(1-plan.Trends.RenewableEmbodiedDeclinePerYear, year)
		batteryFactor := pow(1-plan.Trends.BatteryEmbodiedDeclinePerYear, year)
		emb.WindPerKWh *= renewFactor
		emb.SolarPerKWh *= renewFactor
		emb.BatteryPerKWhCap *= batteryFactor

		in, err := newInputs(year, emb)
		if err != nil {
			return Trajectory{}, err
		}

		d := plan.Design
		d.FlexibleRatio = flexible

		capFrac := 1.0
		replaced := false
		if d.BatteryMWh > 0 {
			capFrac = degradation.CapacityFraction(cumulativeCycles, batteryAgeYears)
			if degradation.IsSpent(cumulativeCycles, batteryAgeYears) {
				if plan.ReplaceSpentBattery {
					cumulativeCycles = 0
					batteryAgeYears = 0
					capFrac = 1
					replaced = true
					traj.Replacements++
				}
			}
			d.BatteryMWh *= capFrac
		}

		out, err := in.Evaluate(d)
		if err != nil {
			return Trajectory{}, err
		}
		traj.Years = append(traj.Years, YearOutcome{
			Year:                    year,
			Outcome:                 out,
			BatteryCapacityFraction: capFrac,
			BatteryReplaced:         replaced,
			FlexibleRatio:           flexible,
		})
		traj.TotalCarbon += out.Total()

		// Advance state.
		cumulativeCycles += out.BatteryCyclesPerDay * 365
		batteryAgeYears++
		flexible += plan.Trends.FlexibleRatioGrowthPerYear
		if flexible > 1 {
			flexible = 1
		}
		if plan.Design.FlexibleRatio == 0 {
			flexible = 0 // no scheduling in the plan means none ever
		}
	}
	return traj, nil
}

// pow is integer exponentiation for small n without importing math.
func pow(base float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= base
	}
	return out
}
