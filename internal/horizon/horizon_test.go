package horizon

import (
	"math"
	"testing"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/dcload"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

// testFactory builds a per-year inputs factory for a site with demand
// growth, reusing one grid year (weather held constant, per Simulate's
// contract).
func testFactory(t *testing.T, siteID string, growth float64) func(int, carbon.EmbodiedParams) (*explorer.Inputs, error) {
	t.Helper()
	site := grid.MustSite(siteID)
	profile := grid.MustProfile(site.BA)
	year := grid.GenerateYear(profile)
	wind := year.WindShape()
	solar := year.SolarShape()
	ci := year.CarbonIntensity()
	base, err := dcload.Generate(dcload.DefaultParams(site.AvgPowerMW), timeseries.HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	return func(y int, emb carbon.EmbodiedParams) (*explorer.Inputs, error) {
		scale := 1.0
		for i := 0; i < y; i++ {
			scale *= 1 + growth
		}
		return explorer.NewInputsFromSeries(site, base.Power.Scale(scale), wind, solar, ci, emb)
	}
}

func basePlan(years int) Plan {
	return Plan{
		Design: explorer.Design{
			WindMW: 80, SolarMW: 80,
			BatteryMWh: 150, DoD: 1.0,
			FlexibleRatio: 0.4, ExtraCapacityFrac: 0.25,
		},
		Years:               years,
		Trends:              DefaultTrends(),
		ReplaceSpentBattery: true,
	}
}

func TestSimulateValidation(t *testing.T) {
	factory := testFactory(t, "UT", 0.08)
	bad := []Plan{
		{Years: 0, Trends: DefaultTrends()},
		{Years: 3, Trends: Trends{DemandGrowthPerYear: 5}},
		{Years: 3, Trends: DefaultTrends(), Design: explorer.Design{WindMW: -1}},
	}
	for i, p := range bad {
		if _, err := Simulate(p, factory); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
	if _, err := Simulate(basePlan(3), nil); err == nil {
		t.Error("nil factory should error")
	}
}

func TestTrendsValidate(t *testing.T) {
	if err := DefaultTrends().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Trends{
		{DemandGrowthPerYear: 2},
		{FlexibleRatioGrowthPerYear: -0.1},
		{RenewableEmbodiedDeclinePerYear: 1},
		{BatteryEmbodiedDeclinePerYear: -0.1},
	}
	for i, tr := range bad {
		if tr.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestTrajectoryShape(t *testing.T) {
	factory := testFactory(t, "UT", 0.08)
	traj, err := Simulate(basePlan(6), factory)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Years) != 6 {
		t.Fatalf("years = %d", len(traj.Years))
	}
	var sum float64
	for i, y := range traj.Years {
		if y.Year != i {
			t.Fatalf("year index mismatch at %d", i)
		}
		sum += float64(y.Outcome.Total())
		if y.BatteryCapacityFraction <= 0 || y.BatteryCapacityFraction > 1 {
			t.Fatalf("year %d: capacity fraction %v", i, y.BatteryCapacityFraction)
		}
	}
	if math.Abs(sum-float64(traj.TotalCarbon)) > 1e-6*sum {
		t.Fatalf("total carbon inconsistent")
	}
}

func TestDemandGrowthRaisesOperationalPressure(t *testing.T) {
	factory := testFactory(t, "UT", 0.10)
	plan := basePlan(6)
	plan.Trends.FlexibleRatioGrowthPerYear = 0 // isolate demand growth
	traj, err := Simulate(plan, factory)
	if err != nil {
		t.Fatal(err)
	}
	// With a fixed installation and growing demand, coverage must fall
	// over the horizon.
	first := traj.Years[0].Outcome.CoveragePct
	last := traj.Years[len(traj.Years)-1].Outcome.CoveragePct
	if last >= first {
		t.Fatalf("coverage should erode under demand growth: %v -> %v", first, last)
	}
}

func TestFlexibleRatioGrows(t *testing.T) {
	factory := testFactory(t, "UT", 0.0)
	traj, err := Simulate(basePlan(5), factory)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(traj.Years); i++ {
		if traj.Years[i].FlexibleRatio < traj.Years[i-1].FlexibleRatio {
			t.Fatalf("flexible ratio should be non-decreasing")
		}
	}
	if traj.Years[4].FlexibleRatio <= traj.Years[0].FlexibleRatio {
		t.Fatalf("flexible ratio should have grown")
	}
}

func TestNoSchedulingPlanStaysInflexible(t *testing.T) {
	factory := testFactory(t, "UT", 0.0)
	plan := basePlan(4)
	plan.Design.FlexibleRatio = 0
	plan.Design.ExtraCapacityFrac = 0
	traj, err := Simulate(plan, factory)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range traj.Years {
		if y.FlexibleRatio != 0 {
			t.Fatalf("plan without scheduling should never schedule")
		}
	}
}

func TestBatteryReplacement(t *testing.T) {
	factory := testFactory(t, "UT", 0.0)
	plan := basePlan(10)
	// An aggressive degradation model: spent after ~2 years regardless of
	// cycling.
	plan.Degradation = battery.DegradationModel{
		RatedCycles:         100000,
		EndOfLifeCapacity:   0.8,
		CalendarFadePerYear: 0.10,
	}
	traj, err := Simulate(plan, factory)
	if err != nil {
		t.Fatal(err)
	}
	if traj.Replacements == 0 {
		t.Fatalf("aggressive fade should force replacements")
	}
	replaced := 0
	for _, y := range traj.Years {
		if y.BatteryReplaced {
			replaced++
			if y.BatteryCapacityFraction != 1 {
				t.Fatalf("replacement year should start fresh")
			}
		}
	}
	if replaced != traj.Replacements {
		t.Fatalf("replacement accounting inconsistent")
	}
}

func TestRetiredBatteryErodesCoverage(t *testing.T) {
	factory := testFactory(t, "NC", 0.0)
	mk := func(replace bool) Trajectory {
		plan := Plan{
			Design: explorer.Design{
				SolarMW: 400, BatteryMWh: 600, DoD: 1.0,
			},
			Years:               8,
			Trends:              Trends{},
			ReplaceSpentBattery: replace,
			Degradation: battery.DegradationModel{
				RatedCycles:         500,
				EndOfLifeCapacity:   0.8,
				CalendarFadePerYear: 0.08,
			},
		}
		traj, err := Simulate(plan, factory)
		if err != nil {
			t.Fatal(err)
		}
		return traj
	}
	kept := mk(true)
	retired := mk(false)
	lastKept := kept.Years[len(kept.Years)-1].Outcome.CoveragePct
	lastRetired := retired.Years[len(retired.Years)-1].Outcome.CoveragePct
	if lastRetired >= lastKept {
		t.Fatalf("retiring the battery should erode coverage: kept %v vs retired %v",
			lastKept, lastRetired)
	}
}

func TestTrendsLowerEmbodiedOverTime(t *testing.T) {
	factory := testFactory(t, "UT", 0.0)
	plan := basePlan(6)
	plan.Trends.FlexibleRatioGrowthPerYear = 0
	traj, err := Simulate(plan, factory)
	if err != nil {
		t.Fatal(err)
	}
	// With flat demand and declining embodied factors, renewable embodied
	// carbon must decline year over year.
	for i := 1; i < len(traj.Years); i++ {
		a := traj.Years[i-1].Outcome.EmbodiedRenewables
		b := traj.Years[i].Outcome.EmbodiedRenewables
		if b >= a {
			t.Fatalf("renewable embodied should decline: year %d %v -> %v", i, a, b)
		}
	}
}
