// Package horizon simulates multi-year datacenter carbon trajectories,
// operationalizing the paper's "Looking forward" discussion (Section 6):
// demand grows, workloads become more delay-tolerant, renewable
// manufacturing gets cleaner, storage gets cheaper in carbon terms — and
// deployed batteries age. A plan fixes the investment schedule; the
// simulation walks year by year, applying trends and degradation, and
// reports the carbon trajectory.
package horizon
