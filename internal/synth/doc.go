// Package synth generates the synthetic hourly renewable-generation data
// that substitutes for the EIA Hourly Grid Monitor feed the paper consumes
// (Section 3). It provides a deterministic random number generator (so
// every simulation year is exactly reproducible across runs and platforms),
// a clear-sky solar irradiance model with persistent cloud cover, and a
// mean-reverting wind model with calm-spell regimes.
//
// The goal of the models is statistical shape, not meteorological forecast
// accuracy: solar is zero at night and follows latitude/season-dependent day
// length; wind has heavy day-to-day variance including near-zero days; both
// exhibit the multi-day persistence that makes deep "supply valleys" — the
// phenomenon that drives the paper's findings about batteries (Section 4.2)
// and site selection.
package synth
