package synth

import "math"

// RNG is a deterministic xoshiro256** pseudo-random generator. It is
// implemented locally (rather than using math/rand) so that generated weather
// years are stable across Go releases — the library's experiment outputs are
// part of its contract.
type RNG struct {
	s     [4]uint64
	spare float64 // cached second normal deviate from Box-Muller
	has   bool
}

// NewRNG returns a generator seeded from the given value via splitmix64, the
// recommended seeding procedure for xoshiro generators.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A xoshiro state of all zeros is invalid; splitmix64 cannot produce four
	// zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard-normal sample via the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	if r.has {
		r.has = false
		return r.spare
	}
	// Reject u1 == 0 so the log is finite.
	var u1 float64
	for {
		u1 = r.Float64()
		if u1 > 0 {
			break
		}
	}
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.spare = mag * math.Sin(2*math.Pi*u2)
	r.has = true
	return mag * math.Cos(2*math.Pi*u2)
}

// Fork returns an independent generator derived from this one's stream,
// useful for giving each model component its own stream so that adding a
// component does not perturb the draws of another.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
