package synth

import (
	"math"

	"carbonexplorer/internal/timeseries"
)

// WindParams configures the wind capacity-factor model for one region.
type WindParams struct {
	// MeanCF is the long-run average capacity factor, typically 0.25–0.45
	// for onshore wind.
	MeanCF float64
	// Volatility controls the hour-scale shock size of the underlying
	// mean-reverting process. Higher values yield larger swings.
	Volatility float64
	// Reversion is the hourly mean-reversion rate in (0, 1]. Lower values
	// mean longer-lived excursions (windy or calm spells spanning days).
	Reversion float64
	// CalmSpellsPerYear is the expected number of distinct calm episodes —
	// multi-day periods with near-zero output — per year. These are the
	// "supply valleys" that dominate battery sizing in wind regions.
	CalmSpellsPerYear float64
	// CalmSpellMeanHours is the mean duration of a calm episode.
	CalmSpellMeanHours float64
	// SeasonalAmplitude scales output ±fraction across the year (wind is
	// typically stronger in winter and spring).
	SeasonalAmplitude float64
	// Seed isolates this model's random stream.
	Seed uint64
}

// DefaultWindParams returns a typical onshore-wind configuration.
func DefaultWindParams() WindParams {
	return WindParams{
		MeanCF:             0.35,
		Volatility:         0.25,
		Reversion:          0.03,
		CalmSpellsPerYear:  12,
		CalmSpellMeanHours: 36,
		SeasonalAmplitude:  0.2,
		Seed:               2,
	}
}

// WindCapacityFactor generates an hourly capacity-factor series (values in
// [0, 1]) of length hours.
//
// The backbone is an Ornstein–Uhlenbeck process x mapped through a smooth
// power-curve-like squashing into [0, 1]. A two-state regime layer overlays
// calm spells: with the configured frequency the output collapses toward
// zero for a multi-day episode, reproducing the paper's observation that
// wind regions such as BPAT have days with almost no wind power.
func WindCapacityFactor(p WindParams, hours int) timeseries.Series {
	rng := NewRNG(p.Seed)
	calmRNG := rng.Fork()
	out := timeseries.New(hours)

	// Latent OU state; its stationary standard deviation is
	// Volatility / sqrt(2*Reversion - Reversion^2) ≈ Volatility/sqrt(2*Reversion).
	x := 0.0

	// Calm-spell regime machine.
	calmRemaining := 0
	pEnter := p.CalmSpellsPerYear / float64(timeseries.HoursPerYear)

	for h := 0; h < hours; h++ {
		x += p.Reversion*(0-x) + p.Volatility*math.Sqrt(p.Reversion)*rng.NormFloat64()

		if calmRemaining > 0 {
			calmRemaining--
		} else if p.CalmSpellsPerYear > 0 && calmRNG.Float64() < pEnter {
			// Geometric-ish duration with the configured mean.
			d := int(-p.CalmSpellMeanHours * math.Log(1-calmRNG.Float64()))
			if d < 4 {
				d = 4
			}
			calmRemaining = d
		}

		// Seasonal modulation peaks around day 60 (early March).
		day := (h / timeseries.HoursPerDay) % 365
		season := 1 + p.SeasonalAmplitude*math.Cos(2*math.Pi*(float64(day)-60)/365)

		cf := squashCF(x, p.MeanCF) * season
		if calmRemaining > 0 {
			cf *= 0.04 // residual trickle during a calm spell
		}
		out.Set(h, clamp(cf, 0, 1))
	}
	return out
}

// squashCF maps the latent state onto [0, 1] with the requested long-run
// mean. A logistic curve mimics the cubic-then-saturating shape of a turbine
// power curve: small latent excursions near the mean translate into large
// output swings, and the tails saturate at cut-in/rated output.
func squashCF(x, meanCF float64) float64 {
	// Center the logistic so that x = 0 yields meanCF.
	offset := math.Log(meanCF / (1 - meanCF))
	return 1 / (1 + math.Exp(-(2.2*x + offset)))
}
