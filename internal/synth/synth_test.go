package synth

import (
	"math"
	"testing"
	"testing/quick"

	"carbonexplorer/internal/timeseries"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGUniformMean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(5)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Fatalf("fork should not mirror parent stream")
	}
}

func TestSolarNightIsZero(t *testing.T) {
	s := SolarCapacityFactor(DefaultSolarParams(), timeseries.HoursPerYear)
	// Local solar midnight hours must be exactly zero year-round.
	for d := 0; d < 365; d++ {
		for _, h := range []int{0, 1, 2, 23} {
			if v := s.At(d*24 + h); v != 0 {
				t.Fatalf("day %d hour %d: solar %v at night, want 0", d, h, v)
			}
		}
	}
}

func TestSolarPeaksMidday(t *testing.T) {
	s := SolarCapacityFactor(DefaultSolarParams(), timeseries.HoursPerYear)
	avg := s.AverageDay()
	peakHour := 0
	for h := 1; h < 24; h++ {
		if avg.At(h) > avg.At(peakHour) {
			peakHour = h
		}
	}
	if peakHour < 10 || peakHour > 14 {
		t.Fatalf("solar peak at hour %d, want near noon", peakHour)
	}
}

func TestSolarRange(t *testing.T) {
	s := SolarCapacityFactor(DefaultSolarParams(), timeseries.HoursPerYear)
	if s.MinValue() < 0 || s.MaxValue() > 1 {
		t.Fatalf("solar CF out of [0,1]: [%v, %v]", s.MinValue(), s.MaxValue())
	}
	if s.MaxValue() < 0.4 {
		t.Fatalf("solar never exceeds 0.4 CF — model too dim (max %v)", s.MaxValue())
	}
}

func TestSolarSeasonalDayLength(t *testing.T) {
	// At a northern latitude, summer days (around day 172) have more
	// generating hours than winter days (around day 355).
	p := DefaultSolarParams()
	p.LatitudeDeg = 45
	s := SolarCapacityFactor(p, timeseries.HoursPerYear)
	gen := func(day int) int {
		n := 0
		for h := 0; h < 24; h++ {
			if s.At(day*24+h) > 0 {
				n++
			}
		}
		return n
	}
	summer, winter := gen(172), gen(355)
	if summer <= winter {
		t.Fatalf("summer day length %dh <= winter %dh", summer, winter)
	}
}

func TestSolarDeterministic(t *testing.T) {
	a := SolarCapacityFactor(DefaultSolarParams(), 1000)
	b := SolarCapacityFactor(DefaultSolarParams(), 1000)
	if !a.Equal(b, 0) {
		t.Fatalf("solar model not deterministic for fixed seed")
	}
}

func TestWindRangeAndMean(t *testing.T) {
	w := WindCapacityFactor(DefaultWindParams(), timeseries.HoursPerYear)
	if w.MinValue() < 0 || w.MaxValue() > 1 {
		t.Fatalf("wind CF out of [0,1]: [%v, %v]", w.MinValue(), w.MaxValue())
	}
	mean := w.Mean()
	if mean < 0.2 || mean > 0.5 {
		t.Fatalf("wind mean CF = %v, want near configured 0.35", mean)
	}
}

func TestWindHasCalmDays(t *testing.T) {
	// The paper's key observation for wind regions: there are days with
	// almost no wind power. Require at least one day below 10% of the mean
	// daily output.
	w := WindCapacityFactor(DefaultWindParams(), timeseries.HoursPerYear)
	daily := w.DailyTotals()
	mean := daily.Mean()
	calm := daily.CountWhere(func(v float64) bool { return v < 0.1*mean })
	if calm == 0 {
		t.Fatalf("no calm days generated; battery-sizing dynamics would be lost")
	}
}

func TestWindHasHighVariance(t *testing.T) {
	// Day-to-day variability: best days several times the average.
	w := WindCapacityFactor(DefaultWindParams(), timeseries.HoursPerYear)
	daily := w.DailyTotals()
	best := 0.0
	for i := 0; i < daily.Len(); i++ {
		if daily.At(i) > best {
			best = daily.At(i)
		}
	}
	if ratio := best / daily.Mean(); ratio < 1.5 {
		t.Fatalf("best/mean daily wind = %v, want > 1.5 (heavy variance)", ratio)
	}
}

func TestWindPersistence(t *testing.T) {
	// Hour-to-hour autocorrelation should be high: wind does not flip
	// randomly every hour.
	w := WindCapacityFactor(DefaultWindParams(), timeseries.HoursPerYear)
	v := w.Values()
	var num, den float64
	m := w.Mean()
	for i := 0; i+1 < len(v); i++ {
		num += (v[i] - m) * (v[i+1] - m)
	}
	for _, x := range v {
		den += (x - m) * (x - m)
	}
	if ac := num / den; ac < 0.7 {
		t.Fatalf("lag-1 autocorrelation = %v, want > 0.7", ac)
	}
}

func TestWindDeterministic(t *testing.T) {
	a := WindCapacityFactor(DefaultWindParams(), 2000)
	b := WindCapacityFactor(DefaultWindParams(), 2000)
	if !a.Equal(b, 0) {
		t.Fatalf("wind model not deterministic for fixed seed")
	}
}

func TestWindNoCalmSpellsConfig(t *testing.T) {
	p := DefaultWindParams()
	p.CalmSpellsPerYear = 0
	w := WindCapacityFactor(p, timeseries.HoursPerYear)
	if w.Mean() < 0.2 {
		t.Fatalf("disabling calm spells should not collapse output")
	}
}

func TestPropertySolarBoundedAnyParams(t *testing.T) {
	f := func(lat, clearness uint8, seed uint64) bool {
		p := SolarParams{
			LatitudeDeg:      float64(lat%70) - 35, // [-35, 35)
			Clearness:        0.1 + float64(clearness%90)/100,
			CloudPersistence: 0.5,
			CloudVolatility:  0.2,
			Seed:             seed,
		}
		s := SolarCapacityFactor(p, 24*30)
		return s.MinValue() >= 0 && s.MaxValue() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWindBoundedAnyParams(t *testing.T) {
	f := func(meanCF, vol uint8, seed uint64) bool {
		p := WindParams{
			MeanCF:             0.1 + float64(meanCF%60)/100,
			Volatility:         0.05 + float64(vol%40)/100,
			Reversion:          0.05,
			CalmSpellsPerYear:  10,
			CalmSpellMeanHours: 24,
			SeasonalAmplitude:  0.2,
			Seed:               seed,
		}
		w := WindCapacityFactor(p, 24*30)
		return w.MinValue() >= 0 && w.MaxValue() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
