package synth

import (
	"math"

	"carbonexplorer/internal/timeseries"
)

// SolarParams configures the solar capacity-factor model for one region.
type SolarParams struct {
	// LatitudeDeg is the site latitude in degrees north; it controls day
	// length and sun elevation across the year.
	LatitudeDeg float64
	// Clearness is the mean atmospheric transmission in (0, 1]: the fraction
	// of clear-sky output that survives average cloud cover. Desert regions
	// sit near 0.8, cloudy maritime regions near 0.5.
	Clearness float64
	// CloudPersistence is the AR(1) coefficient of the daily cloud process in
	// [0, 1). Higher values produce multi-day overcast spells.
	CloudPersistence float64
	// CloudVolatility is the standard deviation of the daily cloud shock.
	CloudVolatility float64
	// Seed isolates this model's random stream.
	Seed uint64
}

// DefaultSolarParams returns a mid-latitude, moderately sunny configuration.
func DefaultSolarParams() SolarParams {
	return SolarParams{
		LatitudeDeg:      38,
		Clearness:        0.7,
		CloudPersistence: 0.6,
		CloudVolatility:  0.18,
		Seed:             1,
	}
}

// SolarCapacityFactor generates an hourly capacity-factor series (values in
// [0, 1]) of length hours. Sample h is the fraction of installed solar
// capacity generating during hour h of the simulation year.
//
// The model combines a clear-sky geometric term — solar elevation computed
// from latitude, solar declination, and hour angle — with a persistent daily
// cloud-transmission process and small hourly noise. Night hours are exactly
// zero, which is what caps solar-only 24/7 coverage near 50% in the paper.
func SolarCapacityFactor(p SolarParams, hours int) timeseries.Series {
	rng := NewRNG(p.Seed)
	out := timeseries.New(hours)

	days := (hours + timeseries.HoursPerDay - 1) / timeseries.HoursPerDay
	cloud := make([]float64, days)
	// Daily cloud transmission: AR(1) around the configured clearness.
	x := 0.0
	for d := 0; d < days; d++ {
		x = p.CloudPersistence*x + p.CloudVolatility*rng.NormFloat64()
		c := p.Clearness + x
		if c < 0.05 {
			c = 0.05
		}
		if c > 1 {
			c = 1
		}
		cloud[d] = c
	}

	lat := p.LatitudeDeg * math.Pi / 180
	for h := 0; h < hours; h++ {
		day := h / timeseries.HoursPerDay
		hourOfDay := float64(h % timeseries.HoursPerDay)
		elev := solarElevation(lat, day%365, hourOfDay)
		if elev <= 0 {
			continue // night: exactly zero
		}
		// Hourly noise models passing clouds within the day.
		noise := 1 + 0.08*rng.NormFloat64()
		if noise < 0 {
			noise = 0
		}
		cf := math.Sin(elev) * cloud[day] * noise
		if cf < 0 {
			cf = 0
		}
		if cf > 1 {
			cf = 1
		}
		out.Set(h, cf)
	}
	return out
}

// TemperatureParams configures the outdoor-temperature model used by the
// cooling/PUE analysis: datacenter cooling overhead tracks outdoor
// temperature, which shares the seasonal and diurnal structure of the solar
// model.
type TemperatureParams struct {
	// MeanC is the annual mean temperature in °C.
	MeanC float64
	// SeasonalAmpC is the summer-winter half-swing.
	SeasonalAmpC float64
	// DiurnalAmpC is the day-night half-swing.
	DiurnalAmpC float64
	// NoiseC is the standard deviation of AR(1) daily weather noise.
	NoiseC float64
	// Persistence is the AR(1) coefficient of the daily noise in [0, 1).
	Persistence float64
	// Seed isolates the model's random stream.
	Seed uint64
}

// DefaultTemperatureParams returns a continental mid-latitude climate.
func DefaultTemperatureParams() TemperatureParams {
	return TemperatureParams{
		MeanC:        12,
		SeasonalAmpC: 12,
		DiurnalAmpC:  6,
		NoiseC:       3,
		Persistence:  0.7,
		Seed:         3,
	}
}

// Temperature generates an hourly outdoor temperature series in °C: annual
// sinusoid peaking in late July, diurnal sinusoid peaking mid-afternoon,
// and persistent daily weather noise.
func Temperature(p TemperatureParams, hours int) timeseries.Series {
	rng := NewRNG(p.Seed)
	days := (hours + timeseries.HoursPerDay - 1) / timeseries.HoursPerDay
	daily := make([]float64, days)
	x := 0.0
	for d := 0; d < days; d++ {
		x = p.Persistence*x + p.NoiseC*rng.NormFloat64()
		daily[d] = x
	}
	return timeseries.Generate(hours, func(h int) float64 {
		day := h / timeseries.HoursPerDay
		hour := float64(h % timeseries.HoursPerDay)
		seasonal := p.SeasonalAmpC * math.Cos(2*math.Pi*(float64(day%365)-205)/365)
		diurnal := p.DiurnalAmpC * math.Sin(2*math.Pi*(hour-9)/24)
		return p.MeanC + seasonal + diurnal + daily[day]
	})
}

// solarElevation returns the solar elevation angle in radians for the given
// latitude (radians), day of year (0-based), and local solar hour [0, 24).
func solarElevation(lat float64, dayOfYear int, hourOfDay float64) float64 {
	// Solar declination (Cooper's equation).
	decl := 23.45 * math.Pi / 180 * math.Sin(2*math.Pi*float64(284+dayOfYear+1)/365)
	// Hour angle: 0 at solar noon, 15°/hour.
	hourAngle := (hourOfDay - 12) * 15 * math.Pi / 180
	sinElev := math.Sin(lat)*math.Sin(decl) + math.Cos(lat)*math.Cos(decl)*math.Cos(hourAngle)
	return math.Asin(clamp(sinElev, -1, 1))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
