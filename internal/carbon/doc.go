// Package carbon holds Carbon Explorer's carbon-accounting models: the
// lifecycle carbon intensity of grid energy sources (the paper's Table 2),
// the embodied-carbon models for wind/solar farms, lithium-ion batteries,
// and servers (Section 5.1), and the amortization rules that convert
// manufacturing footprints into annual carbon costs.
//
// Operational carbon is grid energy times hourly carbon intensity; embodied
// carbon is what the paper's holistic analysis adds on top — the
// manufacturing footprint of the very equipment (farms, cells, extra
// servers) deployed to cut operational carbon, amortized over its lifetime.
// The explorer package combines both into the total that Figures 14 and 15
// minimize.
package carbon
