package carbon

import (
	"fmt"

	"carbonexplorer/internal/units"
)

// Source identifies an electricity generation source.
type Source int

// Generation sources, in the order of the paper's Table 2.
const (
	Wind Source = iota
	Solar
	Water
	Oil
	NaturalGas
	Coal
	Nuclear
	Other
	numSources
)

// NumSources is the number of distinct generation sources.
const NumSources = int(numSources)

var sourceNames = [...]string{"wind", "solar", "water", "oil", "natural_gas", "coal", "nuclear", "other"}

// String returns the lower-case source name.
func (s Source) String() string {
	if s < 0 || int(s) >= NumSources {
		return fmt.Sprintf("source(%d)", int(s))
	}
	return sourceNames[s]
}

// AllSources lists every source.
func AllSources() []Source {
	out := make([]Source, NumSources)
	for i := range out {
		out[i] = Source(i)
	}
	return out
}

// IsRenewable reports whether the source counts toward renewable supply in
// the paper's coverage metric (wind and solar; the paper treats hydro and
// nuclear as low-carbon grid sources but not as datacenter PPA renewables).
func (s Source) IsRenewable() bool { return s == Wind || s == Solar }

// Intensity returns the lifecycle carbon intensity of the source in
// gCO2eq/kWh, per the paper's Table 2.
func (s Source) Intensity() units.CarbonIntensity {
	switch s {
	case Wind:
		return 11
	case Solar:
		return 41
	case Water:
		return 24
	case Oil:
		return 650
	case NaturalGas:
		return 490
	case Coal:
		return 820
	case Nuclear:
		return 12
	case Other:
		return 230 // biofuels etc.
	default:
		panic(fmt.Sprintf("carbon: unknown source %d", int(s)))
	}
}

// Mix is per-source generation for one hour, in MWh (numerically equal to MW
// over an hourly step).
type Mix [NumSources]units.MegaWattHours

// Total returns the total generation across sources.
func (m Mix) Total() units.MegaWattHours {
	var t units.MegaWattHours
	for _, v := range m {
		t += v
	}
	return t
}

// Intensity returns the generation-weighted average carbon intensity of the
// mix in gCO2eq/kWh. An empty mix has zero intensity.
func (m Mix) Intensity() units.CarbonIntensity {
	total := m.Total()
	if total <= 0 {
		return 0
	}
	var grams units.GramsCO2
	for s, e := range m {
		grams += e.Carbon(Source(s).Intensity())
	}
	return units.CarbonIntensity(float64(grams) / total.KWh())
}

// RenewableShare returns the wind+solar fraction of total generation.
func (m Mix) RenewableShare() float64 {
	total := m.Total()
	if total <= 0 {
		return 0
	}
	return float64(m[Wind]+m[Solar]) / float64(total)
}
