package carbon

import (
	"fmt"

	"carbonexplorer/internal/units"
)

// EmbodiedParams collects the manufacturing-footprint and lifetime
// assumptions of Section 5.1. The paper emphasizes parameterized models
// because public carbon data is still evolving; every number here can be
// overridden, and DefaultEmbodiedParams returns the paper's defaults.
type EmbodiedParams struct {
	// WindPerKWh is the lifecycle embodied footprint of wind turbines in
	// gCO2 per kWh generated over the asset's lifetime (paper: 10–15).
	WindPerKWh float64
	// SolarPerKWh is the lifecycle embodied footprint of solar farms in
	// gCO2 per kWh generated (paper: 40–70).
	SolarPerKWh float64

	// BatteryPerKWhCap is the manufacturing footprint of lithium-ion
	// batteries in kgCO2 per kWh of battery capacity (paper: 74–134,
	// comprising upstream materials ~59, cell production 0–60, and
	// end-of-life processing ~15).
	BatteryPerKWhCap float64
	// BatteryCycles100DoD is the battery cycle life at 100% depth of
	// discharge (paper: 3000 for LFP).
	BatteryCycles100DoD float64
	// BatteryCycles80DoD is the cycle life at 80% DoD (paper: 4500).
	BatteryCycles80DoD float64
	// BatteryMaxLifetimeYears caps battery calendar life regardless of
	// cycling; other degradation factors dominate long before shallow-DoD
	// cycle arithmetic would (the paper notes a 27-year figure is
	// unrealistic).
	BatteryMaxLifetimeYears float64

	// ServerKg is the manufacturing footprint of one server in kgCO2
	// (paper: 744.5 for an HPE ProLiant DL360 Gen10 proxy).
	ServerKg float64
	// ServerInfraMultiplier scales server embodied carbon for floor space
	// and facility construction (paper: 1.16×, from Meta's Scope 3 ratio of
	// construction to hardware carbon).
	ServerInfraMultiplier float64
	// ServerLifetimeYears is the server refresh horizon (paper: 5 years).
	ServerLifetimeYears float64
	// ServerPowerKW is the provisioned power of one server in kW, used to
	// convert a server-capacity requirement expressed in MW into a server
	// count. The DL360 proxy's 85 W TDP plus DRAM/SSD/fans/PSU overhead and
	// datacenter provisioning lands near 0.3 kW per provisioned server.
	ServerPowerKW float64

	// WindLifetimeYears and SolarLifetimeYears document asset lifetimes
	// (paper: 20 and 25–30). They are informational for the per-kWh
	// renewable model, whose lifecycle factors already amortize over
	// lifetime output, but are used when reporting totals.
	WindLifetimeYears  float64
	SolarLifetimeYears float64
}

// DefaultEmbodiedParams returns the paper's default assumptions.
func DefaultEmbodiedParams() EmbodiedParams {
	return EmbodiedParams{
		WindPerKWh:              11,
		SolarPerKWh:             41,
		BatteryPerKWhCap:        100,
		BatteryCycles100DoD:     3000,
		BatteryCycles80DoD:      4500,
		BatteryMaxLifetimeYears: 15,
		ServerKg:                744.5,
		ServerInfraMultiplier:   1.16,
		ServerLifetimeYears:     5,
		ServerPowerKW:           0.3,
		WindLifetimeYears:       20,
		SolarLifetimeYears:      27.5,
	}
}

// Validate reports the first implausible parameter, or nil.
func (p EmbodiedParams) Validate() error {
	switch {
	case p.WindPerKWh < 0 || p.SolarPerKWh < 0:
		return fmt.Errorf("carbon: negative renewable embodied factor")
	case p.BatteryPerKWhCap < 0:
		return fmt.Errorf("carbon: negative battery embodied factor")
	case p.BatteryCycles100DoD <= 0:
		return fmt.Errorf("carbon: battery cycle life must be positive")
	case p.ServerKg < 0 || p.ServerLifetimeYears <= 0:
		return fmt.Errorf("carbon: invalid server embodied parameters")
	case p.ServerPowerKW <= 0:
		return fmt.Errorf("carbon: server power must be positive")
	case p.ServerInfraMultiplier < 1:
		return fmt.Errorf("carbon: infrastructure multiplier below 1")
	}
	return nil
}

// RenewableEmbodied returns the embodied carbon attributed to generating the
// given wind and solar energy. Because the lifecycle factors are expressed
// per kWh generated, this charge is automatically amortized: a year of
// operation is charged for a year's worth of the farm's manufacturing
// footprint.
func (p EmbodiedParams) RenewableEmbodied(windGen, solarGen units.MegaWattHours) units.GramsCO2 {
	return units.GramsCO2(windGen.KWh()*p.WindPerKWh + solarGen.KWh()*p.SolarPerKWh)
}

// BatteryCycleLife returns the cycle life at the given depth of discharge in
// (0, 1]. The paper reports 3000 cycles at 100% DoD and 4500 at 80%; between
// and below those points the model interpolates/extrapolates linearly on
// DoD, reflecting that shallower discharge extends cycle life.
func (p EmbodiedParams) BatteryCycleLife(dod float64) float64 {
	if dod <= 0 || dod > 1 {
		panic(fmt.Sprintf("carbon: depth of discharge %v out of (0, 1]", dod))
	}
	// Linear in DoD through the two published points.
	slope := (p.BatteryCycles100DoD - p.BatteryCycles80DoD) / (1.0 - 0.8)
	cycles := p.BatteryCycles80DoD + slope*(dod-0.8)
	if cycles < 1 {
		cycles = 1
	}
	return cycles
}

// BatteryLifetimeYears converts cycle life into calendar years given the
// observed number of equivalent full (dis)charge cycles per day, capped at
// BatteryMaxLifetimeYears. Zero cycling still ages out at the calendar cap.
func (p EmbodiedParams) BatteryLifetimeYears(dod, cyclesPerDay float64) float64 {
	if cyclesPerDay <= 0 {
		return p.BatteryMaxLifetimeYears
	}
	years := p.BatteryCycleLife(dod) / cyclesPerDay / 365
	if years > p.BatteryMaxLifetimeYears {
		years = p.BatteryMaxLifetimeYears
	}
	return years
}

// BatteryEmbodiedAnnual returns the annualized embodied carbon of a battery
// with the given capacity, operated at the given DoD and cycling rate.
func (p EmbodiedParams) BatteryEmbodiedAnnual(capacity units.MegaWattHours, dod, cyclesPerDay float64) units.GramsCO2 {
	if capacity <= 0 {
		return 0
	}
	total := units.FromKgCO2(capacity.KWh() * p.BatteryPerKWhCap)
	years := p.BatteryLifetimeYears(dod, cyclesPerDay)
	return units.GramsCO2(float64(total) / years)
}

// ServerCount converts extra provisioned capacity in MW into a whole number
// of servers.
func (p EmbodiedParams) ServerCount(capacity units.MegaWatts) int {
	if capacity <= 0 {
		return 0
	}
	perServerMW := p.ServerPowerKW / 1000
	n := int(float64(capacity)/perServerMW + 0.999999)
	return n
}

// ServerEmbodiedAnnual returns the annualized embodied carbon of the extra
// server capacity needed for demand-response scheduling, including the
// facility-infrastructure multiplier.
func (p EmbodiedParams) ServerEmbodiedAnnual(extraCapacity units.MegaWatts) units.GramsCO2 {
	n := p.ServerCount(extraCapacity)
	if n == 0 {
		return 0
	}
	total := units.FromKgCO2(float64(n) * p.ServerKg * p.ServerInfraMultiplier)
	return units.GramsCO2(float64(total) / p.ServerLifetimeYears)
}
