package carbon

import (
	"math"
	"testing"
	"testing/quick"

	"carbonexplorer/internal/units"
)

func TestSourceIntensitiesMatchTable2(t *testing.T) {
	want := map[Source]units.CarbonIntensity{
		Wind: 11, Solar: 41, Water: 24, Oil: 650,
		NaturalGas: 490, Coal: 820, Nuclear: 12, Other: 230,
	}
	for s, ci := range want {
		if got := s.Intensity(); got != ci {
			t.Errorf("%v intensity = %v, want %v", s, got, ci)
		}
	}
}

func TestSourceString(t *testing.T) {
	if Wind.String() != "wind" || Coal.String() != "coal" {
		t.Fatalf("source names wrong")
	}
	if got := Source(99).String(); got != "source(99)" {
		t.Fatalf("out-of-range name = %q", got)
	}
}

func TestAllSources(t *testing.T) {
	all := AllSources()
	if len(all) != NumSources {
		t.Fatalf("AllSources length %d", len(all))
	}
	renewables := 0
	for _, s := range all {
		if s.IsRenewable() {
			renewables++
		}
	}
	if renewables != 2 {
		t.Fatalf("want exactly wind+solar renewable, got %d", renewables)
	}
}

func TestMixIntensity(t *testing.T) {
	var m Mix
	m[Coal] = 50
	m[Wind] = 50
	// 50/50 coal+wind: (820+11)/2 = 415.5.
	if got := m.Intensity(); math.Abs(float64(got)-415.5) > 1e-9 {
		t.Fatalf("mix intensity = %v", got)
	}
	var empty Mix
	if empty.Intensity() != 0 {
		t.Fatalf("empty mix intensity should be 0")
	}
}

func TestMixRenewableShare(t *testing.T) {
	var m Mix
	m[Wind] = 20
	m[Solar] = 10
	m[NaturalGas] = 70
	if got := m.RenewableShare(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("renewable share = %v", got)
	}
	var empty Mix
	if empty.RenewableShare() != 0 {
		t.Fatalf("empty share should be 0")
	}
}

func TestMixTotal(t *testing.T) {
	var m Mix
	m[Wind] = 1.5
	m[Coal] = 2.5
	if m.Total() != 4 {
		t.Fatalf("total = %v", m.Total())
	}
}

func TestDefaultEmbodiedParamsValid(t *testing.T) {
	if err := DefaultEmbodiedParams().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*EmbodiedParams){
		func(p *EmbodiedParams) { p.WindPerKWh = -1 },
		func(p *EmbodiedParams) { p.BatteryPerKWhCap = -1 },
		func(p *EmbodiedParams) { p.BatteryCycles100DoD = 0 },
		func(p *EmbodiedParams) { p.ServerLifetimeYears = 0 },
		func(p *EmbodiedParams) { p.ServerPowerKW = 0 },
		func(p *EmbodiedParams) { p.ServerInfraMultiplier = 0.5 },
	}
	for i, mutate := range cases {
		p := DefaultEmbodiedParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRenewableEmbodied(t *testing.T) {
	p := DefaultEmbodiedParams()
	// 1 MWh wind at 11 g/kWh = 11 kg; 1 MWh solar at 41 = 41 kg.
	got := p.RenewableEmbodied(1, 1)
	if math.Abs(got.Kg()-52) > 1e-9 {
		t.Fatalf("renewable embodied = %v kg, want 52", got.Kg())
	}
	if p.RenewableEmbodied(0, 0) != 0 {
		t.Fatalf("zero generation should have zero embodied")
	}
}

func TestBatteryCycleLife(t *testing.T) {
	p := DefaultEmbodiedParams()
	if got := p.BatteryCycleLife(1.0); got != 3000 {
		t.Fatalf("cycles@100%%DoD = %v", got)
	}
	if got := p.BatteryCycleLife(0.8); got != 4500 {
		t.Fatalf("cycles@80%%DoD = %v", got)
	}
	// Interpolation at 90% DoD: midway = 3750.
	if got := p.BatteryCycleLife(0.9); math.Abs(got-3750) > 1e-9 {
		t.Fatalf("cycles@90%%DoD = %v", got)
	}
	// Shallower than 80% extends life further.
	if p.BatteryCycleLife(0.6) <= p.BatteryCycleLife(0.8) {
		t.Fatalf("shallower DoD should extend cycle life")
	}
}

func TestBatteryCycleLifePanicsOnBadDoD(t *testing.T) {
	p := DefaultEmbodiedParams()
	for _, dod := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DoD %v should panic", dod)
				}
			}()
			p.BatteryCycleLife(dod)
		}()
	}
}

func TestBatteryLifetimeYears(t *testing.T) {
	p := DefaultEmbodiedParams()
	// One full cycle a day at 100% DoD: 3000/365 ≈ 8.2 years.
	got := p.BatteryLifetimeYears(1.0, 1.0)
	if math.Abs(got-3000.0/365.0) > 1e-9 {
		t.Fatalf("lifetime = %v years", got)
	}
	// Very light cycling is capped by calendar life.
	if got := p.BatteryLifetimeYears(1.0, 0.01); got != p.BatteryMaxLifetimeYears {
		t.Fatalf("light cycling lifetime = %v, want calendar cap", got)
	}
	if got := p.BatteryLifetimeYears(1.0, 0); got != p.BatteryMaxLifetimeYears {
		t.Fatalf("zero cycling lifetime = %v, want calendar cap", got)
	}
}

func TestBatteryEmbodiedAnnual(t *testing.T) {
	p := DefaultEmbodiedParams()
	// 1 MWh capacity at 100 kg/kWh = 100 t total; at 1 cycle/day 100% DoD
	// lifetime is 3000/365 years, so annual = 100 t / 8.219 y ≈ 12.17 t.
	got := p.BatteryEmbodiedAnnual(1, 1.0, 1.0)
	want := 100_000.0 / (3000.0 / 365.0) // kg per year
	if math.Abs(got.Kg()-want) > 1 {
		t.Fatalf("battery annual embodied = %v kg, want %v", got.Kg(), want)
	}
	if p.BatteryEmbodiedAnnual(0, 1, 1) != 0 {
		t.Fatalf("zero capacity should cost nothing")
	}
}

func TestServerCount(t *testing.T) {
	p := DefaultEmbodiedParams()
	// 0.3 kW per server → 1 MW needs 3334 servers (rounded up).
	if got := p.ServerCount(1); got != 3334 {
		t.Fatalf("servers per MW = %d", got)
	}
	if got := p.ServerCount(0); got != 0 {
		t.Fatalf("zero capacity should need zero servers")
	}
	if got := p.ServerCount(-5); got != 0 {
		t.Fatalf("negative capacity should need zero servers")
	}
}

func TestServerEmbodiedAnnual(t *testing.T) {
	p := DefaultEmbodiedParams()
	got := p.ServerEmbodiedAnnual(1)
	// 3334 servers × 744.5 kg × 1.16 / 5 years.
	want := 3334.0 * 744.5 * 1.16 / 5
	if math.Abs(got.Kg()-want) > 1 {
		t.Fatalf("server annual embodied = %v kg, want %v", got.Kg(), want)
	}
	if p.ServerEmbodiedAnnual(0) != 0 {
		t.Fatalf("zero capacity should cost nothing")
	}
}

func TestPropertyMixIntensityBounds(t *testing.T) {
	// Mix intensity is always between the cleanest and dirtiest source.
	f := func(raw [NumSources]uint16) bool {
		var m Mix
		for i, v := range raw {
			m[i] = units.MegaWattHours(v)
		}
		if m.Total() == 0 {
			return m.Intensity() == 0
		}
		ci := float64(m.Intensity())
		return ci >= 11-1e-9 && ci <= 820+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBatteryShallowDoDLongerLife(t *testing.T) {
	p := DefaultEmbodiedParams()
	f := func(a, b uint8) bool {
		d1 := 0.2 + float64(a%80)/100
		d2 := 0.2 + float64(b%80)/100
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return p.BatteryCycleLife(d1) >= p.BatteryCycleLife(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
