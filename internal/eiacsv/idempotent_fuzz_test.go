package eiacsv

import (
	"bytes"
	"strings"
	"testing"

	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

// FuzzRepairIdempotent is the property-based test that tolerant repair is
// idempotent: for any input ReadTolerant accepts, writing the repaired year
// and reading it tolerantly again must perform zero repairs, and writing
// that second year must be byte-identical to the first write. Repair
// converges after one application — re-processing a repaired file can never
// drift the data.
func FuzzRepairIdempotent(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, grid.GenerateYear(grid.MustProfile("PNM"))); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid[:min(len(valid), 4096)])
	// Damaged-but-repairable years: NaN gaps, infinities, negative noise.
	f.Add(strings.Join(header, ",") +
		"\n0,1,1,1,1,1,1,1,1,1,1,1,1" +
		"\n1,NaN,1,1,1,1,1,1,1,1,1,1,1" +
		"\n2,1,1,1,1,1,1,1,1,1,1,1,1\n")
	f.Add(strings.Join(header, ",") +
		"\n0,5,-0.2,1,1,1,1,1,1,1,1,1,1" +
		"\n1,5,+Inf,1,1,1,1,1,1,1,1,1,1" +
		"\n2,5,3,1,1,1,1,1,1,1,1,1,1\n")
	f.Add(strings.Join(header, ",") +
		"\n0,NaN,1,1,1,1,1,1,1,1,1,1,1" +
		"\n1,2,1,1,1,1,1,1,1,1,1,1,1\n")
	// Values the %.3f quantization of Write rounds: the second write must
	// still be stable because the first write already quantized them.
	f.Add(strings.Join(header, ",") +
		"\n0,1.23456789,1e-9,0.0005,1,1,1,1,1,1,1,1,1\n")

	f.Fuzz(func(t *testing.T, input string) {
		y1, _, err := ReadTolerant(strings.NewReader(input), "FZ", timeseries.DefaultRepairPolicy())
		if err != nil {
			return // rejection is outside this property
		}
		var first bytes.Buffer
		if err := Write(&first, y1); err != nil {
			t.Fatalf("writing repaired year: %v", err)
		}
		y2, rep2, err := ReadTolerant(bytes.NewReader(first.Bytes()), "FZ", timeseries.DefaultRepairPolicy())
		if err != nil {
			t.Fatalf("re-reading repaired year: %v", err)
		}
		for col, r := range rep2.Repairs {
			t.Errorf("second repair altered column %s: %+v", col, r.Details)
		}
		var second bytes.Buffer
		if err := Write(&second, y2); err != nil {
			t.Fatalf("re-writing repaired year: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("repair not idempotent: second write differs byte-wise from first")
		}
	})
}
