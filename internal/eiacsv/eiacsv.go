// Package eiacsv reads and writes hourly grid data in a CSV schema modelled
// on the EIA Hourly Grid Monitor exports the paper consumes. It lets users
// replace Carbon Explorer's synthetic grid years with real data: write a
// synthetic year to CSV to inspect it, or read a CSV (converted from an EIA
// export) to drive the explorer with measured generation.
//
// Schema (one row per hour, header required):
//
//	hour,demand_mw,wind_mw,solar_mw,water_mw,oil_mw,natural_gas_mw,coal_mw,nuclear_mw,other_mw,curtailed_mw,potential_wind_mw,potential_solar_mw
//
// The potential_* columns are pre-curtailment weather-driven generation,
// used when projecting datacenter PPA investments. When converting real EIA
// exports (which report dispatched generation only), set them equal to the
// wind_mw/solar_mw columns.
package eiacsv

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

// header is the canonical column order.
var header = []string{
	"hour", "demand_mw",
	"wind_mw", "solar_mw", "water_mw", "oil_mw",
	"natural_gas_mw", "coal_mw", "nuclear_mw", "other_mw",
	"curtailed_mw", "potential_wind_mw", "potential_solar_mw",
}

// columnSources maps CSV generation columns (by position after demand) to
// carbon sources, in header order.
var columnSources = []carbon.Source{
	carbon.Wind, carbon.Solar, carbon.Water, carbon.Oil,
	carbon.NaturalGas, carbon.Coal, carbon.Nuclear, carbon.Other,
}

// Write serializes a grid year to CSV.
func Write(w io.Writer, y *grid.Year) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("eiacsv: writing header: %w", err)
	}
	row := make([]string, len(header))
	for h := 0; h < y.Hours(); h++ {
		row[0] = strconv.Itoa(h)
		row[1] = formatMW(y.Demand.At(h))
		for i, src := range columnSources {
			row[2+i] = formatMW(y.BySource[src].At(h))
		}
		row[10] = formatMW(y.Curtailed.At(h))
		row[11] = formatMW(y.PotentialWind.At(h))
		row[12] = formatMW(y.PotentialSolar.At(h))
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("eiacsv: writing hour %d: %w", h, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatMW(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// Read parses a CSV written by Write (or converted from an EIA export) into
// a grid year. The returned year's Profile carries only the given code; the
// synthetic model parameters are not reconstructed.
func Read(r io.Reader, baCode string) (*grid.Year, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(header)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("eiacsv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("eiacsv: empty input")
	}
	if !equalHeader(rows[0]) {
		return nil, fmt.Errorf("eiacsv: unexpected header %v", rows[0])
	}
	rows = rows[1:]
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("eiacsv: no data rows")
	}

	y := &grid.Year{Profile: grid.BAProfile{Code: baCode}}
	y.Demand = timeseries.New(n)
	y.Curtailed = timeseries.New(n)
	y.PotentialWind = timeseries.New(n)
	y.PotentialSolar = timeseries.New(n)
	for i := range y.BySource {
		y.BySource[i] = timeseries.New(n)
	}

	for i, row := range rows {
		hour, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("eiacsv: row %d: bad hour %q", i+1, row[0])
		}
		if hour != i {
			return nil, fmt.Errorf("eiacsv: row %d: hour %d out of sequence", i+1, hour)
		}
		vals := make([]float64, len(header)-1)
		for c := 1; c < len(header); c++ {
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				return nil, fmt.Errorf("eiacsv: row %d column %s: %w", i+1, header[c], err)
			}
			if v < 0 {
				return nil, fmt.Errorf("eiacsv: row %d column %s: negative value %v", i+1, header[c], v)
			}
			vals[c-1] = v
		}
		y.Demand.Set(i, vals[0])
		for c, src := range columnSources {
			y.BySource[src].Set(i, vals[1+c])
		}
		y.Curtailed.Set(i, vals[9])
		y.PotentialWind.Set(i, vals[10])
		y.PotentialSolar.Set(i, vals[11])
	}
	return y, nil
}

func equalHeader(row []string) bool {
	if len(row) != len(header) {
		return false
	}
	for i := range header {
		if row[i] != header[i] {
			return false
		}
	}
	return true
}
