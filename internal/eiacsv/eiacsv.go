package eiacsv

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

// header is the canonical column order.
var header = []string{
	"hour", "demand_mw",
	"wind_mw", "solar_mw", "water_mw", "oil_mw",
	"natural_gas_mw", "coal_mw", "nuclear_mw", "other_mw",
	"curtailed_mw", "potential_wind_mw", "potential_solar_mw",
}

// columnSources maps CSV generation columns (by position after demand) to
// carbon sources, in header order.
var columnSources = []carbon.Source{
	carbon.Wind, carbon.Solar, carbon.Water, carbon.Oil,
	carbon.NaturalGas, carbon.Coal, carbon.Nuclear, carbon.Other,
}

// Write serializes a grid year to CSV.
func Write(w io.Writer, y *grid.Year) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("eiacsv: writing header: %w", err)
	}
	row := make([]string, len(header))
	for h := 0; h < y.Hours(); h++ {
		row[0] = strconv.Itoa(h)
		row[1] = formatMW(y.Demand.At(h))
		for i, src := range columnSources {
			row[2+i] = formatMW(y.BySource[src].At(h))
		}
		row[10] = formatMW(y.Curtailed.At(h))
		row[11] = formatMW(y.PotentialWind.At(h))
		row[12] = formatMW(y.PotentialSolar.At(h))
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("eiacsv: writing hour %d: %w", h, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatMW(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// ErrNonFinite is wrapped into errors for CSV cells that parse as NaN or
// ±Inf. strconv.ParseFloat happily accepts "NaN" and "Inf", and NaN passes
// a `v < 0` guard, so these must be rejected explicitly.
var ErrNonFinite = errors.New("eiacsv: non-finite value")

// ReadReport accounts for every repair a tolerant read performed, keyed by
// column name.
type ReadReport struct {
	// Repairs maps column names to their repair accounting. Columns absent
	// from the map were clean.
	Repairs map[string]timeseries.RepairReport
}

// TotalInterpolated sums interpolated samples across all columns.
func (r ReadReport) TotalInterpolated() int {
	n := 0
	for _, rep := range r.Repairs {
		n += rep.Interpolated
	}
	return n
}

// Read parses a CSV written by Write (or converted from an EIA export) into
// a grid year, streaming row by row so arbitrarily large files use bounded
// memory. The returned year's Profile carries only the given code; the
// synthetic model parameters are not reconstructed.
//
// Read is strict: malformed rows, out-of-sequence hours, and negative or
// non-finite values are rejected with errors naming the row and column. Use
// ReadTolerant to accept and repair damaged values instead.
func Read(r io.Reader, baCode string) (*grid.Year, error) {
	y, _, err := read(r, baCode, nil)
	return y, err
}

// ReadTolerant parses like Read but treats unparseable, negative, and
// non-finite values as gaps to be repaired under the given policy: short
// gaps are interpolated, negative noise is clamped (per the policy), and
// gaps longer than the policy's bound fail with a wrapped
// timeseries.ErrGapTooLong. The report lists every column that was
// repaired. Structural faults — a bad header, out-of-sequence hours, the
// wrong column count — are never repaired: they indicate a broken export,
// not noisy metering.
func ReadTolerant(r io.Reader, baCode string, policy timeseries.RepairPolicy) (*grid.Year, ReadReport, error) {
	return read(r, baCode, &policy)
}

// read is the shared streaming core. A nil policy means strict mode.
func read(r io.Reader, baCode string, policy *timeseries.RepairPolicy) (*grid.Year, ReadReport, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(header)
	cr.ReuseRecord = true

	first, err := cr.Read()
	if err == io.EOF {
		return nil, ReadReport{}, fmt.Errorf("eiacsv: empty input")
	}
	if err != nil {
		return nil, ReadReport{}, fmt.Errorf("eiacsv: %w", err)
	}
	if !equalHeader(first) {
		return nil, ReadReport{}, fmt.Errorf("eiacsv: unexpected header %v", first)
	}

	// Column-major accumulation: cols[c] collects column c+1 (after hour).
	cols := make([][]float64, len(header)-1)
	i := 0
	for ; ; i++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, ReadReport{}, fmt.Errorf("eiacsv: %w", err)
		}
		hour, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, ReadReport{}, fmt.Errorf("eiacsv: row %d: bad hour %q", i+1, row[0])
		}
		if hour != i {
			return nil, ReadReport{}, fmt.Errorf("eiacsv: row %d: hour %d out of sequence", i+1, hour)
		}
		for c := 1; c < len(header); c++ {
			v, err := strconv.ParseFloat(row[c], 64)
			switch {
			case err != nil:
				if policy == nil {
					return nil, ReadReport{}, fmt.Errorf("eiacsv: row %d column %s: %w", i+1, header[c], err)
				}
				v = math.NaN()
			case math.IsNaN(v) || math.IsInf(v, 0):
				if policy == nil {
					return nil, ReadReport{}, fmt.Errorf("eiacsv: row %d column %s: %w (%q)", i+1, header[c], ErrNonFinite, row[c])
				}
				v = math.NaN()
			case v < 0:
				if policy == nil {
					return nil, ReadReport{}, fmt.Errorf("eiacsv: row %d column %s: negative value %v", i+1, header[c], v)
				}
				// Leave negative: Repair clamps or interpolates per policy.
			}
			cols[c-1] = append(cols[c-1], v)
		}
	}
	if i == 0 {
		return nil, ReadReport{}, fmt.Errorf("eiacsv: no data rows")
	}

	rep := ReadReport{}
	series := make([]timeseries.Series, len(cols))
	for c, vals := range cols {
		s := timeseries.FromValues(vals)
		if policy != nil {
			repaired, colRep, err := s.Repair(*policy)
			if err != nil {
				return nil, ReadReport{}, fmt.Errorf("eiacsv: column %s: %w", header[c+1], err)
			}
			if colRep.Changed() {
				if rep.Repairs == nil {
					rep.Repairs = make(map[string]timeseries.RepairReport)
				}
				rep.Repairs[header[c+1]] = colRep
			}
			s = repaired
		}
		series[c] = s
	}

	y := &grid.Year{Profile: grid.BAProfile{Code: baCode}}
	y.Demand = series[0]
	for c, src := range columnSources {
		y.BySource[src] = series[1+c]
	}
	y.Curtailed = series[9]
	y.PotentialWind = series[10]
	y.PotentialSolar = series[11]
	return y, rep, nil
}

func equalHeader(row []string) bool {
	if len(row) != len(header) {
		return false
	}
	for i := range header {
		if row[i] != header[i] {
			return false
		}
	}
	return true
}
