// Package eiacsv reads and writes hourly grid data in a CSV schema modelled
// on the EIA Hourly Grid Monitor exports the paper consumes (Section 3's
// grid analysis is built on this feed). It lets users replace Carbon
// Explorer's synthetic grid years with real data: write a synthetic year to
// CSV to inspect it, or read a CSV (converted from an EIA export) to drive
// the explorer with measured generation.
//
// Schema (one row per hour, header required):
//
//	hour,demand_mw,wind_mw,solar_mw,water_mw,oil_mw,natural_gas_mw,coal_mw,nuclear_mw,other_mw,curtailed_mw,potential_wind_mw,potential_solar_mw
//
// The potential_* columns are pre-curtailment weather-driven generation,
// used when projecting datacenter PPA investments. When converting real EIA
// exports (which report dispatched generation only), set them equal to the
// wind_mw/solar_mw columns.
//
// Read is strict: any non-finite, negative, or out-of-sequence sample is a
// typed error. ReadTolerant instead repairs bounded defects under a
// timeseries.RepairPolicy and returns a ReadReport listing, per column and
// per hour, exactly which samples were interpolated, clamped, or held —
// repair is an audited transformation, never a silent one. Repair is
// idempotent: re-reading a written repaired year changes nothing.
package eiacsv
