package eiacsv

import (
	"bytes"
	"strings"
	"testing"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/grid"
)

func TestRoundTrip(t *testing.T) {
	orig := grid.GenerateYear(grid.MustProfile("PACE"))
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(&buf, "PACE")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Hours() != orig.Hours() {
		t.Fatalf("hours = %d, want %d", parsed.Hours(), orig.Hours())
	}
	if parsed.Profile.Code != "PACE" {
		t.Fatalf("code = %q", parsed.Profile.Code)
	}
	// 3-decimal fixed formatting: tolerance 1e-3.
	if !parsed.Demand.Equal(orig.Demand, 1e-3) {
		t.Fatal("demand round-trip mismatch")
	}
	for s := range orig.BySource {
		if !parsed.BySource[s].Equal(orig.BySource[s], 1e-3) {
			t.Fatalf("source %v round-trip mismatch", carbon.Source(s))
		}
	}
	if !parsed.Curtailed.Equal(orig.Curtailed, 1e-3) {
		t.Fatal("curtailed round-trip mismatch")
	}
}

func TestRoundTripPreservesDerivedStats(t *testing.T) {
	orig := grid.GenerateYear(grid.MustProfile("DUK"))
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(&buf, "DUK")
	if err != nil {
		t.Fatal(err)
	}
	a, b := orig.CarbonIntensity().Mean(), parsed.CarbonIntensity().Mean()
	if diff := a - b; diff > 1 || diff < -1 {
		t.Fatalf("carbon intensity drifted: %v vs %v", a, b)
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "a,b,c\n",
		"bad hour":     strings.Join(header, ",") + "\nx,1,1,1,1,1,1,1,1,1,1,1,1\n",
		"out of order": strings.Join(header, ",") + "\n5,1,1,1,1,1,1,1,1,1,1,1,1\n",
		"bad value":    strings.Join(header, ",") + "\n0,zz,1,1,1,1,1,1,1,1,1,1,1\n",
		"negative":     strings.Join(header, ",") + "\n0,-5,1,1,1,1,1,1,1,1,1,1,1\n",
		"short row":    strings.Join(header, ",") + "\n0,1,1\n",
		"header only":  strings.Join(header, ",") + "\n",
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input), "X"); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadMinimalValid(t *testing.T) {
	input := strings.Join(header, ",") + "\n" +
		"0,100,10,5,0,0,50,30,5,0,2,12,5\n" +
		"1,90,12,0,0,0,48,25,5,0,0,12,0\n"
	y, err := Read(strings.NewReader(input), "TEST")
	if err != nil {
		t.Fatal(err)
	}
	if y.Hours() != 2 {
		t.Fatalf("hours = %d", y.Hours())
	}
	if y.Demand.At(0) != 100 || y.BySource[carbon.Wind].At(1) != 12 {
		t.Fatalf("values parsed wrong")
	}
	if y.Curtailed.At(0) != 2 {
		t.Fatalf("curtailed parsed wrong")
	}
}
