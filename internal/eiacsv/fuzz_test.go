package eiacsv

import (
	"bytes"
	"strings"
	"testing"

	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

// FuzzRead exercises the CSV parser with arbitrary byte input: it must
// either return an error or a structurally sound grid year — never panic,
// never produce negative or non-finite generation. The tolerant reader is
// run on the same input and must uphold the same invariants.
func FuzzRead(f *testing.F) {
	// Seed with a valid document and a few near-misses.
	var buf bytes.Buffer
	if err := Write(&buf, grid.GenerateYear(grid.MustProfile("PNM"))); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid[:min(len(valid), 4096)])
	f.Add(strings.Join(header, ",") + "\n0,1,1,1,1,1,1,1,1,1,1,1,1\n")
	f.Add("hour,demand_mw\n0,5\n")
	f.Add("")
	f.Add(strings.Join(header, ",") + "\n0,-1,1,1,1,1,1,1,1,1,1,1,1\n")
	// Non-finite and extreme values: NaN passes v < 0 guards, huge values
	// overflow to Inf when summed — both must be caught explicitly.
	f.Add(strings.Join(header, ",") + "\n0,NaN,1,1,1,1,1,1,1,1,1,1,1\n")
	f.Add(strings.Join(header, ",") + "\n0,1,+Inf,1,1,1,1,1,1,1,1,1,1\n")
	f.Add(strings.Join(header, ",") + "\n0,1,1,-Inf,1,1,1,1,1,1,1,1,1\n")
	f.Add(strings.Join(header, ",") + "\n0,nan,inf,1,1,1,1,1,1,1,1,1,1\n")
	f.Add(strings.Join(header, ",") + "\n0,1e308,1e308,1,1,1,1,1,1,1,1,1,1\n")
	f.Add(strings.Join(header, ",") + "\n0,1e999,1,1,1,1,1,1,1,1,1,1,1\n")
	// Out-of-sequence hours and a NaN mid-column for the tolerant path.
	f.Add(strings.Join(header, ",") + "\n5,1,1,1,1,1,1,1,1,1,1,1,1\n")
	f.Add(strings.Join(header, ",") +
		"\n0,1,1,1,1,1,1,1,1,1,1,1,1" +
		"\n1,NaN,1,1,1,1,1,1,1,1,1,1,1" +
		"\n2,1,1,1,1,1,1,1,1,1,1,1,1\n")

	f.Fuzz(func(t *testing.T, input string) {
		y, err := Read(strings.NewReader(input), "FZ")
		if err == nil {
			checkYear(t, y, "strict")
		}

		yt, _, terr := ReadTolerant(strings.NewReader(input), "FZ", timeseries.DefaultRepairPolicy())
		if terr == nil {
			checkYear(t, yt, "tolerant")
		}
		// Anything the strict reader accepts, the tolerant reader must too.
		if err == nil && terr != nil {
			t.Fatalf("tolerant reader rejected strictly-valid input: %v", terr)
		}
	})
}

// checkYear asserts the structural invariants of an accepted grid year.
func checkYear(t *testing.T, y *grid.Year, mode string) {
	t.Helper()
	if y.Hours() == 0 {
		t.Fatalf("%s: accepted input yielded empty year", mode)
	}
	for name, s := range map[string]timeseries.Series{
		"demand": y.Demand, "curtailed": y.Curtailed,
	} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: accepted %s is invalid: %v", mode, name, err)
		}
	}
	for s := range y.BySource {
		if err := y.BySource[s].Validate(); err != nil {
			t.Fatalf("%s: accepted %v generation is invalid: %v", mode, s, err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
