package eiacsv

import (
	"bytes"
	"strings"
	"testing"

	"carbonexplorer/internal/grid"
)

// FuzzRead exercises the CSV parser with arbitrary byte input: it must
// either return an error or a structurally sound grid year — never panic,
// never produce negative generation.
func FuzzRead(f *testing.F) {
	// Seed with a valid document and a few near-misses.
	var buf bytes.Buffer
	if err := Write(&buf, grid.GenerateYear(grid.MustProfile("PNM"))); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid[:min(len(valid), 4096)])
	f.Add(strings.Join(header, ",") + "\n0,1,1,1,1,1,1,1,1,1,1,1,1\n")
	f.Add("hour,demand_mw\n0,5\n")
	f.Add("")
	f.Add(strings.Join(header, ",") + "\n0,-1,1,1,1,1,1,1,1,1,1,1,1\n")

	f.Fuzz(func(t *testing.T, input string) {
		y, err := Read(strings.NewReader(input), "FZ")
		if err != nil {
			return
		}
		if y.Hours() == 0 {
			t.Fatalf("accepted input yielded empty year")
		}
		if y.Demand.MinValue() < 0 || y.Curtailed.MinValue() < 0 {
			t.Fatalf("accepted input yielded negative values")
		}
		for s := range y.BySource {
			if y.BySource[s].MinValue() < 0 {
				t.Fatalf("accepted input yielded negative generation")
			}
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
