// Package faultinject deterministically corrupts Carbon Explorer's inputs —
// hourly series, CSV streams, and design evaluations — so chaos tests can
// prove the pipeline degrades gracefully: every injected fault must surface
// as a typed error or a documented repair, never a panic or a silent wrong
// number. Its chaos tests also drive the internal/sweep engine through
// crash loops (kill mid-sweep, resume from checkpoint) and transient
// evaluation failures, enforcing the engine's convergence guarantee.
//
// All corruption is seeded: the same seed always yields the same faults, so
// a failing chaos test reproduces byte-for-byte. The package depends only on
// timeseries and explorer types and is safe to use from any test.
package faultinject
