package faultinject

// Network faults: a deterministic failing http.RoundTripper for chaos
// testing the network lease coordinator. Faults draw from the package's
// seeded SplitMix64 generator — never the process-global source — so a
// chaos run's fault sequence is stable for a fixed seed and request order.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// NetworkFaults configures a failing http.RoundTripper. Fractions are
// per-request probabilities drawn independently in the order below: a
// request is first considered for dropping, then for delaying, then for
// duplication, so one request can be both delayed and duplicated.
type NetworkFaults struct {
	// Seed determines the whole fault sequence.
	Seed uint64
	// DropFraction of requests fail with a wrapped ErrInjected before
	// reaching the server — a dropped connection as the client sees it.
	DropFraction float64
	// DelayFraction of requests sleep Delay before being sent, modelling
	// network latency spikes and stalled links.
	DelayFraction float64
	// Delay is the injected latency for delayed requests (default 10ms
	// when DelayFraction > 0).
	Delay time.Duration
	// DuplicateFraction of requests are sent to the server twice, the
	// first response discarded — the at-least-once delivery a retrying
	// client plus a flaky network produces, which the coordinator's
	// protocol must tolerate idempotently.
	DuplicateFraction float64
}

// faultyTransport is the injecting RoundTripper.
type faultyTransport struct {
	cfg  NetworkFaults
	next http.RoundTripper

	mu   sync.Mutex
	rand *Rand
	// drops, delays, dups count injected faults for test assertions.
	drops, delays, dups int
}

// RoundTripper wraps next (nil means http.DefaultTransport) with the
// configured deterministic faults. The returned transport is safe for
// concurrent use; a mutex serializes draws so the fault sequence is a pure
// function of the seed and the order requests reach the transport.
func (f NetworkFaults) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	if f.Delay <= 0 {
		f.Delay = 10 * time.Millisecond
	}
	return &faultyTransport{cfg: f, next: next, rand: NewRand(f.Seed)}
}

// draw takes the next three fault decisions under the lock.
func (t *faultyTransport) draw() (drop, delay, dup bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	drop = t.rand.Float64() < t.cfg.DropFraction
	delay = t.rand.Float64() < t.cfg.DelayFraction
	dup = t.rand.Float64() < t.cfg.DuplicateFraction
	switch {
	case drop:
		t.drops++
	default:
		if delay {
			t.delays++
		}
		if dup {
			t.dups++
		}
	}
	return drop, delay, dup
}

// RoundTrip injects the drawn faults around the real round trip.
func (t *faultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	drop, delay, dup := t.draw()
	if drop {
		if req.Body != nil {
			_ = req.Body.Close()
		}
		return nil, fmt.Errorf("%w: dropped %s %s", ErrInjected, req.Method, req.URL.Path)
	}
	// Buffer the body so the request can be replayed for duplication.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		_ = req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("faultinject: buffering request body: %w", err)
		}
	}
	if delay {
		timer := time.NewTimer(t.cfg.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, fmt.Errorf("%w: delayed past deadline: %w", ErrInjected, req.Context().Err())
		case <-timer.C:
		}
	}
	send := func() (*http.Response, error) {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return t.next.RoundTrip(r)
	}
	if dup {
		// At-least-once delivery: the server sees the request twice; the
		// client only ever observes the second response.
		if resp, err := send(); err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}
	return send()
}

// Counts reports how many faults the transport injected so far. The
// receiver must be a transport returned by NetworkFaults.RoundTripper.
func Counts(rt http.RoundTripper) (drops, delays, duplicates int) {
	t, ok := rt.(*faultyTransport)
	if !ok {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops, t.delays, t.dups
}
