package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/timeseries"
)

// ErrInjected is the root of every error produced by injected faults, so
// tests can assert a failure was theirs: errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultinject: injected fault")

// Rand is a tiny deterministic PRNG (SplitMix64). It avoids math/rand so
// corruption sequences are stable across Go releases.
type Rand struct{ state uint64 }

// NewRand seeds a deterministic generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 advances the generator.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("faultinject: Intn needs n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// --- Series faults ---------------------------------------------------------

// NaNRuns returns a copy of s with `runs` contiguous runs of NaN samples,
// each 1..maxRunLen hours long, at seed-determined positions. It models
// meter dropouts.
func NaNRuns(s timeseries.Series, seed uint64, runs, maxRunLen int) timeseries.Series {
	out := s.Clone()
	if out.Len() == 0 || runs <= 0 || maxRunLen <= 0 {
		return out
	}
	r := NewRand(seed)
	for g := 0; g < runs; g++ {
		length := 1 + r.Intn(maxRunLen)
		start := r.Intn(out.Len())
		for k := 0; k < length && start+k < out.Len(); k++ {
			out.Set(start+k, math.NaN())
		}
	}
	return out
}

// Spikes returns a copy of s with `count` samples replaced by huge values
// (magnitude times the series maximum, sign-flipped for odd draws), plus
// one +Inf when count > 0. It models converter glitches.
func Spikes(s timeseries.Series, seed uint64, count int, magnitude float64) timeseries.Series {
	out := s.Clone()
	if out.Len() == 0 || count <= 0 {
		return out
	}
	r := NewRand(seed)
	peak := out.MaxValue()
	if peak == 0 {
		peak = 1
	}
	for k := 0; k < count; k++ {
		v := peak * magnitude
		if r.Uint64()%2 == 1 {
			v = -v
		}
		out.Set(r.Intn(out.Len()), v)
	}
	out.Set(r.Intn(out.Len()), math.Inf(1))
	return out
}

// Truncate returns the first `hours` samples of s (all of s if hours
// exceeds its length). It models a partial-year export.
func Truncate(s timeseries.Series, hours int) timeseries.Series {
	if hours >= s.Len() {
		return s.Clone()
	}
	if hours < 0 {
		hours = 0
	}
	return s.Slice(0, hours)
}

// --- CSV / byte-stream faults ----------------------------------------------

// MangleBytes returns a copy of data with `count` seed-determined bytes
// replaced by random bytes. It models transport corruption.
func MangleBytes(data []byte, seed uint64, count int) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 || count <= 0 {
		return out
	}
	r := NewRand(seed)
	for k := 0; k < count; k++ {
		out[r.Intn(len(out))] = byte(r.Uint64())
	}
	return out
}

// TruncateBytes returns the first frac (0..1) of data, cutting mid-line.
// It models an interrupted download.
func TruncateBytes(data []byte, frac float64) []byte {
	if frac >= 1 {
		return append([]byte(nil), data...)
	}
	if frac < 0 {
		frac = 0
	}
	n := int(float64(len(data)) * frac)
	return append([]byte(nil), data[:n]...)
}

// SwapLines returns data with `count` seed-determined pairs of data lines
// exchanged (the first line — the header — is never moved). It models
// out-of-sequence hours.
func SwapLines(data []byte, seed uint64, count int) []byte {
	lines := bytes.Split(append([]byte(nil), data...), []byte("\n"))
	if len(lines) < 4 {
		return append([]byte(nil), data...)
	}
	r := NewRand(seed)
	// Swappable range: data lines only, excluding a possibly-empty last
	// element from a trailing newline.
	last := len(lines) - 1
	if len(lines[last]) > 0 {
		last++
	}
	for k := 0; k < count; k++ {
		i := 1 + r.Intn(last-1)
		j := 1 + r.Intn(last-1)
		lines[i], lines[j] = lines[j], lines[i]
	}
	return bytes.Join(lines, []byte("\n"))
}

// ReplaceFields returns data with `count` seed-determined fields of data
// rows replaced by the given token (e.g. "NaN", "+Inf", "bogus"). The
// header line is never touched. It models exports from tools that serialize
// missing samples as NaN.
func ReplaceFields(data []byte, seed uint64, count int, token string) []byte {
	lines := bytes.Split(append([]byte(nil), data...), []byte("\n"))
	if len(lines) < 2 {
		return append([]byte(nil), data...)
	}
	r := NewRand(seed)
	for k := 0; k < count; k++ {
		li := 1 + r.Intn(len(lines)-1)
		fields := bytes.Split(lines[li], []byte(","))
		if len(fields) < 2 {
			continue
		}
		// Never replace the hour column: that is a structural fault covered
		// by SwapLines.
		fields[1+r.Intn(len(fields)-1)] = []byte(token)
		lines[li] = bytes.Join(fields, []byte(","))
	}
	return bytes.Join(lines, []byte("\n"))
}

// --- Evaluation faults ------------------------------------------------------

// DesignFaults returns an explorer.Inputs.EvalHook that deterministically
// fails approximately the given fraction of designs with a wrapped
// ErrInjected. Whether a design fails depends only on the seed and the
// design's own fields, so repeated sweeps fail the same designs.
func DesignFaults(seed uint64, fraction float64) func(explorer.Design) error {
	return func(d explorer.Design) error {
		if designDraw(seed, d) < fraction {
			return fmt.Errorf("%w: design {wind %.1f, solar %.1f, battery %.1f}", ErrInjected, d.WindMW, d.SolarMW, d.BatteryMWh)
		}
		return nil
	}
}

// TransientFaults is DesignFaults except that each selected design fails
// only the first time it is evaluated and succeeds on every later attempt.
// It models flaky evaluation (an OOM-killed worker, a transient I/O error)
// and is the fault the sweep engine's retry-once pass must recover from.
// The returned hook is safe for concurrent use.
func TransientFaults(seed uint64, fraction float64) func(explorer.Design) error {
	var mu sync.Mutex
	failed := make(map[explorer.Design]bool)
	return func(d explorer.Design) error {
		if designDraw(seed, d) >= fraction {
			return nil
		}
		mu.Lock()
		first := !failed[d]
		failed[d] = true
		mu.Unlock()
		if first {
			return fmt.Errorf("%w: transient failure for design {wind %.1f, solar %.1f, battery %.1f}",
				ErrInjected, d.WindMW, d.SolarMW, d.BatteryMWh)
		}
		return nil
	}
}

// PanicFaults is DesignFaults except that selected designs panic instead of
// returning an error — the worst-case failure a search worker must contain.
func PanicFaults(seed uint64, fraction float64) func(explorer.Design) error {
	return func(d explorer.Design) error {
		if designDraw(seed, d) < fraction {
			panic(fmt.Sprintf("faultinject: injected panic for design {wind %.1f, solar %.1f}", d.WindMW, d.SolarMW))
		}
		return nil
	}
}

// designDraw hashes a design's fields with the seed into a uniform [0, 1)
// draw.
func designDraw(seed uint64, d explorer.Design) float64 {
	h := seed
	for _, f := range []float64{d.WindMW, d.SolarMW, d.BatteryMWh, d.DoD, d.FlexibleRatio, d.ExtraCapacityFrac} {
		h ^= math.Float64bits(f)
		h *= 0x100000001b3
	}
	return NewRand(h).Float64()
}
