package faultinject

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/timeseries"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
	f := NewRand(7).Float64()
	if f < 0 || f >= 1 {
		t.Fatalf("Float64 out of range: %v", f)
	}
}

func TestNaNRunsDeterministic(t *testing.T) {
	s := timeseries.Constant(100, 5)
	a := NaNRuns(s, 9, 3, 4)
	b := NaNRuns(s, 9, 3, 4)
	nans := 0
	for i := 0; i < a.Len(); i++ {
		if math.IsNaN(a.At(i)) != math.IsNaN(b.At(i)) {
			t.Fatal("same seed produced different gaps")
		}
		if math.IsNaN(a.At(i)) {
			nans++
		}
	}
	if nans == 0 {
		t.Fatal("no NaNs injected")
	}
	// Receiver untouched.
	if err := s.Validate(); err != nil {
		t.Fatalf("NaNRuns mutated its input: %v", err)
	}
}

func TestSpikes(t *testing.T) {
	s := timeseries.Constant(50, 2)
	out := Spikes(s, 1, 3, 1e9)
	if out.Validate() == nil {
		t.Fatal("spiked series still validates")
	}
	hasInf := false
	for i := 0; i < out.Len(); i++ {
		if math.IsInf(out.At(i), 1) {
			hasInf = true
		}
	}
	if !hasInf {
		t.Fatal("Spikes should inject one +Inf")
	}
}

func TestTruncate(t *testing.T) {
	s := timeseries.Constant(48, 1)
	if got := Truncate(s, 10).Len(); got != 10 {
		t.Fatalf("Truncate(10) length %d", got)
	}
	if got := Truncate(s, 100).Len(); got != 48 {
		t.Fatalf("Truncate beyond length = %d", got)
	}
	if got := Truncate(s, -1).Len(); got != 0 {
		t.Fatalf("Truncate(-1) length %d", got)
	}
}

func TestByteFaultsDeterministic(t *testing.T) {
	data := []byte("hour,power_mw\n0,1.0\n1,2.0\n2,3.0\n3,4.0\n")
	if !bytes.Equal(MangleBytes(data, 5, 4), MangleBytes(data, 5, 4)) {
		t.Fatal("MangleBytes not deterministic")
	}
	if bytes.Equal(MangleBytes(data, 5, 4), data) {
		t.Fatal("MangleBytes changed nothing")
	}
	if got := TruncateBytes(data, 0.5); len(got) != len(data)/2 {
		t.Fatalf("TruncateBytes(0.5) length %d of %d", len(got), len(data))
	}
	swapped := SwapLines(data, 3, 2)
	if !bytes.Equal(swapped, SwapLines(data, 3, 2)) {
		t.Fatal("SwapLines not deterministic")
	}
	if !bytes.HasPrefix(swapped, []byte("hour,power_mw\n")) {
		t.Fatal("SwapLines moved the header")
	}
	replaced := ReplaceFields(data, 11, 2, "NaN")
	if !bytes.Contains(replaced, []byte("NaN")) {
		t.Fatal("ReplaceFields injected no token")
	}
	if !bytes.HasPrefix(replaced, []byte("hour,power_mw\n")) {
		t.Fatal("ReplaceFields touched the header")
	}
}

func TestDesignFaultsFractionAndDeterminism(t *testing.T) {
	hook := DesignFaults(77, 0.3)
	failures := 0
	const n = 2000
	for i := 0; i < n; i++ {
		d := explorer.Design{WindMW: float64(i), SolarMW: float64(2 * i)}
		err := hook(d)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("fault not wrapped in ErrInjected: %v", err)
			}
			failures++
		}
		// Same design, same verdict.
		if (hook(d) != nil) != (err != nil) {
			t.Fatal("hook verdict not deterministic")
		}
	}
	frac := float64(failures) / n
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("failure fraction %.2f far from 0.3", frac)
	}
}

func TestPanicFaultsPanics(t *testing.T) {
	hook := PanicFaults(1, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("PanicFaults(_, 1.0) should panic")
		}
	}()
	_ = hook(explorer.Design{WindMW: 1})
}
