package faultinject

// Chaos tests: inject every class of fault into each stage of the pipeline
// and prove the fault surfaces as a typed error or a documented repair —
// never a panic, never a silent wrong number.

import (
	"bytes"
	"context"
	"errors"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/dcload"
	"carbonexplorer/internal/eiacsv"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/fleet"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/scheduler"
	"carbonexplorer/internal/sweep"
	"carbonexplorer/internal/timeseries"
)

// chaosInputs builds a small (10-day) but fully functional evaluation input.
func chaosInputs(t *testing.T) *explorer.Inputs {
	t.Helper()
	const n = 240
	demand := timeseries.Generate(n, func(h int) float64 { return 10 + 2*math.Sin(float64(h%24)/24*2*math.Pi) })
	wind := timeseries.Generate(n, func(h int) float64 { return 5 + 4*math.Sin(float64(h)/17) })
	solar := timeseries.Generate(n, func(h int) float64 { return math.Max(0, 8*math.Sin((float64(h%24)-6)/12*math.Pi)) })
	ci := timeseries.Constant(n, 400)
	in, err := explorer.NewInputsFromSeries(grid.MustSite("UT"), demand, wind, solar, ci, carbon.DefaultEmbodiedParams())
	if err != nil {
		t.Fatalf("chaosInputs: %v", err)
	}
	return in
}

func chaosSpace(in *explorer.Inputs) explorer.Space {
	avg := in.AvgDemandMW()
	return explorer.Space{
		WindMW:             []float64{0, avg, 2 * avg, 4 * avg, 8 * avg},
		SolarMW:            []float64{0, avg, 2 * avg, 4 * avg, 8 * avg},
		BatteryHours:       []float64{0, 2},
		ExtraCapacityFracs: []float64{0, 0.25},
		DoD:                1.0,
		FlexibleRatio:      0.4,
	}
}

// TestChaosSweepPartialFailure is the acceptance scenario: ~10% of designs
// forced to fail must not sink the sweep — the optimum is computed over the
// survivors and the report lists every failure with its design.
func TestChaosSweepPartialFailure(t *testing.T) {
	in := chaosInputs(t)
	space := chaosSpace(in)

	clean, err := in.Search(space, explorer.RenewablesBatteryCAS)
	if err != nil {
		t.Fatalf("clean sweep: %v", err)
	}
	total := clean.Report.Evaluated

	in.EvalHook = DesignFaults(123, 0.10)
	res, err := in.Search(space, explorer.RenewablesBatteryCAS)
	if err != nil {
		t.Fatalf("faulty sweep should degrade gracefully, got %v", err)
	}
	if len(res.Report.Failures) == 0 {
		t.Fatal("no injected failures recorded; raise the fraction or reseed")
	}
	if res.Report.Evaluated+len(res.Report.Failures) != total {
		t.Fatalf("report does not account for all designs: %d + %d != %d",
			res.Report.Evaluated, len(res.Report.Failures), total)
	}
	if len(res.Points) != res.Report.Evaluated {
		t.Fatalf("Points (%d) != Evaluated (%d)", len(res.Points), res.Report.Evaluated)
	}
	for _, f := range res.Report.Failures {
		if !errors.Is(f, ErrInjected) {
			t.Fatalf("failure not traceable to injection: %v", f)
		}
	}
	// The optimum is genuinely optimal over the survivors.
	for _, p := range res.Points {
		if p.Total() < res.Optimal.Total() {
			t.Fatalf("survivor %v beats reported optimum %v", p.Total(), res.Optimal.Total())
		}
	}
	// And no silent wrong number: the degraded optimum is a point the clean
	// sweep also evaluated, never something fabricated.
	if res.Optimal.Total() < clean.Optimal.Total() {
		t.Fatalf("degraded sweep found a better optimum (%v) than the clean sweep (%v)",
			res.Optimal.Total(), clean.Optimal.Total())
	}
}

// TestChaosSweepPanicContainment proves a panicking evaluation is contained
// to its design: the process survives and the panic surfaces as a typed
// *explorer.PanicError for that design alone.
func TestChaosSweepPanicContainment(t *testing.T) {
	in := chaosInputs(t)
	in.EvalHook = PanicFaults(7, 0.2)
	res, err := in.Search(chaosSpace(in), explorer.RenewablesBatteryCAS)
	if err != nil {
		t.Fatalf("panicking designs should not sink the sweep: %v", err)
	}
	if len(res.Report.Failures) == 0 {
		t.Fatal("no panics recorded; raise the fraction or reseed")
	}
	for _, f := range res.Report.Failures {
		var pe *explorer.PanicError
		if !errors.As(f.Err, &pe) {
			t.Fatalf("panic not recovered into *PanicError: %v", f.Err)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("recovered panic lost its stack")
		}
	}
}

// TestChaosSweepAllFail: when every design fails, the sweep must say so
// with a typed error rather than fabricate an optimum.
func TestChaosSweepAllFail(t *testing.T) {
	in := chaosInputs(t)
	in.EvalHook = DesignFaults(1, 1.1)
	_, err := in.Search(chaosSpace(in), explorer.RenewablesOnly)
	if !errors.Is(err, explorer.ErrAllDesignsFailed) {
		t.Fatalf("want ErrAllDesignsFailed, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("first failure should be traceable to injection: %v", err)
	}
}

// TestChaosSweepCancellation: a cancelled sweep returns partial results and
// accounts for every skipped design.
func TestChaosSweepCancellation(t *testing.T) {
	in := chaosInputs(t)
	space := chaosSpace(in)
	clean, err := in.Search(space, explorer.RenewablesBatteryCAS)
	if err != nil {
		t.Fatal(err)
	}
	total := clean.Report.Evaluated

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := in.SearchContext(ctx, space, explorer.RenewablesBatteryCAS)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Report.Evaluated+len(res.Report.Failures)+res.Report.Skipped != total {
		t.Fatalf("cancelled report does not account for all %d designs: %+v", total, res.Report)
	}
	if res.Report.Skipped == 0 {
		t.Fatal("pre-cancelled sweep skipped nothing")
	}
}

// TestChaosSweepKillResume is the checkpoint acceptance scenario: a
// streaming sweep killed repeatedly mid-run (a crash loop) and resumed from
// its checkpoint each time must converge to exactly the optimum and Pareto
// frontier of an uninterrupted sweep — while transient evaluation faults are
// being injected on top.
func TestChaosSweepKillResume(t *testing.T) {
	in := chaosInputs(t)
	space := chaosSpace(in)
	ckpt := filepath.Join(t.TempDir(), "chaos.json")

	clean, err := sweep.Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, sweep.Options{})
	if err != nil {
		t.Fatalf("uninterrupted sweep: %v", err)
	}

	// Crash loop: each attempt is killed after `killAfter` evaluations by
	// cancelling its context from the eval hook, which also injects
	// transient failures into ~15% of designs. Checkpointing is frequent so
	// each life makes progress.
	transient := TransientFaults(77, 0.15)
	var final sweep.Result
	attempts := 0
	for {
		attempts++
		if attempts > 50 {
			t.Fatal("crash loop did not converge in 50 lives")
		}
		ctx, cancel := context.WithCancel(context.Background())
		var mu sync.Mutex
		evals := 0
		const killAfter = 12
		in.EvalHook = func(d explorer.Design) error {
			mu.Lock()
			evals++
			if evals == killAfter {
				cancel()
			}
			mu.Unlock()
			return transient(d)
		}
		res, err := sweep.Run(ctx, in, space, explorer.RenewablesBatteryCAS,
			sweep.Options{BatchSize: 4, Checkpoint: sweep.CheckpointOptions{Path: ckpt, Every: 4, Resume: true}})
		cancel()
		if err == nil {
			final = res
			break
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("life %d died of something other than the injected kill: %v", attempts, err)
		}
	}
	if attempts < 2 {
		t.Fatal("sweep finished in one life — the kill never fired, nothing was chaos-tested")
	}

	if len(final.Report.Failures) != 0 {
		t.Fatalf("transient faults survived the retry pass: %v", final.Report.Failures)
	}
	if final.Report.Evaluated != clean.Report.Evaluated {
		t.Fatalf("crash-looped sweep evaluated %d designs, clean sweep %d",
			final.Report.Evaluated, clean.Report.Evaluated)
	}
	if final.Optimal.Design != clean.Optimal.Design || final.Optimal.Total() != clean.Optimal.Total() {
		t.Fatalf("crash-looped optimum differs from uninterrupted:\nchaos: %+v (%v)\nclean: %+v (%v)",
			final.Optimal.Design, final.Optimal.Total(), clean.Optimal.Design, clean.Optimal.Total())
	}
	if len(final.Frontier) != len(clean.Frontier) {
		t.Fatalf("crash-looped frontier has %d points, clean has %d", len(final.Frontier), len(clean.Frontier))
	}
	for i := range clean.Frontier {
		if final.Frontier[i].Operational != clean.Frontier[i].Operational ||
			final.Frontier[i].Embodied != clean.Frontier[i].Embodied {
			t.Fatalf("frontier point %d differs: (%v, %v) vs (%v, %v)", i,
				final.Frontier[i].Operational, final.Frontier[i].Embodied,
				clean.Frontier[i].Operational, clean.Frontier[i].Embodied)
		}
	}
}

// TestChaosShardedMergeResume is the distributed acceptance scenario: the
// space split across three shard workers, one crash-looping under injected
// kills, one battling transient faults, one abandoned mid-batch and never
// restarted. Merging whatever checkpoints survive and resuming the merged
// file must yield exactly the optimum and Pareto frontier of an
// uninterrupted single-process sweep.Run.
func TestChaosShardedMergeResume(t *testing.T) {
	in := chaosInputs(t)
	space := chaosSpace(in)
	dir := t.TempDir()

	clean, err := sweep.Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, sweep.Options{})
	if err != nil {
		t.Fatalf("uninterrupted sweep: %v", err)
	}

	const shards = 3

	// Shard 1/3: a crash loop — each life is killed after a few evaluations
	// and resumed from its own checkpoint until the slice completes.
	shard1 := filepath.Join(dir, "shard1.json")
	lives := 0
	for {
		lives++
		if lives > 50 {
			t.Fatal("shard 1 crash loop did not converge in 50 lives")
		}
		ctx, cancel := context.WithCancel(context.Background())
		var mu sync.Mutex
		evals := 0
		in.EvalHook = func(explorer.Design) error {
			mu.Lock()
			evals++
			if evals == 5 {
				cancel()
			}
			mu.Unlock()
			return nil
		}
		_, err := sweep.Run(ctx, in, space, explorer.RenewablesBatteryCAS, sweep.Options{BatchSize: 3, Shard: sweep.Shard{Index: 1, Count: shards}, Checkpoint: sweep.CheckpointOptions{Path: shard1, Every: 2, Resume: true}})
		cancel()
		if err == nil {
			break
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("shard 1 life %d died of something other than the injected kill: %v", lives, err)
		}
	}
	if lives < 2 {
		t.Fatal("shard 1 finished in one life — the kill never fired, nothing was chaos-tested")
	}

	// Shard 2/3: transient faults on ~25% of designs; the retry-once pass
	// must absorb them all within one run.
	in.EvalHook = TransientFaults(42, 0.25)
	shard2 := filepath.Join(dir, "shard2.json")
	res2, err := sweep.Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, sweep.Options{BatchSize: 4, Shard: sweep.Shard{Index: 2, Count: shards}, Checkpoint: sweep.CheckpointOptions{Path: shard2}})
	if err != nil {
		t.Fatalf("transient-fault shard: %v", err)
	}
	if res2.Report.Recovered == 0 {
		t.Fatal("shard 2 recovered nothing; raise the fraction or reseed")
	}
	if len(res2.Report.Failures) != 0 {
		t.Fatalf("transient faults left permanent failures on shard 2: %v", res2.Report.Failures)
	}

	// Shard 3/3: killed mid-batch and never restarted — the worker is lost,
	// only its partial checkpoint remains.
	shard3 := filepath.Join(dir, "shard3.json")
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	evals := 0
	in.EvalHook = func(explorer.Design) error {
		mu.Lock()
		evals++
		if evals == 7 {
			cancel()
		}
		mu.Unlock()
		return nil
	}
	_, err = sweep.Run(ctx, in, space, explorer.RenewablesBatteryCAS, sweep.Options{BatchSize: 3, Shard: sweep.Shard{Index: 3, Count: shards}, Checkpoint: sweep.CheckpointOptions{Path: shard3, Every: 1, Resume: true}})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("shard 3 should die of the injected kill, got %v", err)
	}
	in.EvalHook = nil

	// Merge the two complete shards with the lost worker's partial file.
	merged := filepath.Join(dir, "merged.json")
	rep, err := sweep.MergeCheckpoints(merged, shard1, shard2, shard3)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if rep.Complete() {
		t.Fatal("merge including a half-dead shard claims completion")
	}
	if rep.Done == 0 || rep.Pending == 0 {
		t.Fatalf("merge lost the partial progress picture: %+v", rep)
	}

	// One unsharded resume finishes the lost shard's remainder.
	final, err := sweep.Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		sweep.Options{Checkpoint: sweep.CheckpointOptions{Path: merged, Resume: true}})
	if err != nil {
		t.Fatalf("resume of merged checkpoint: %v", err)
	}
	if final.Report.Restored != rep.Done {
		t.Fatalf("resume restored %d designs, merge reported %d done", final.Report.Restored, rep.Done)
	}
	if final.Report.Evaluated != clean.Report.Evaluated {
		t.Fatalf("sharded chaos run evaluated %d designs, clean run %d",
			final.Report.Evaluated, clean.Report.Evaluated)
	}
	if final.Optimal.Design != clean.Optimal.Design || final.Optimal.Total() != clean.Optimal.Total() {
		t.Fatalf("sharded chaos optimum differs from uninterrupted:\nchaos: %+v (%v)\nclean: %+v (%v)",
			final.Optimal.Design, final.Optimal.Total(), clean.Optimal.Design, clean.Optimal.Total())
	}
	if len(final.Frontier) != len(clean.Frontier) {
		t.Fatalf("sharded chaos frontier has %d points, clean has %d", len(final.Frontier), len(clean.Frontier))
	}
	for i := range clean.Frontier {
		if final.Frontier[i].Design != clean.Frontier[i].Design ||
			final.Frontier[i].Operational != clean.Frontier[i].Operational ||
			final.Frontier[i].Embodied != clean.Frontier[i].Embodied {
			t.Fatalf("frontier point %d differs: %+v vs %+v",
				i, final.Frontier[i].Design, clean.Frontier[i].Design)
		}
	}
}

// TestChaosSweepTransientRecovery: transient faults alone (no kills) must be
// fully absorbed by the sweep's retry-once pass.
func TestChaosSweepTransientRecovery(t *testing.T) {
	in := chaosInputs(t)
	space := chaosSpace(in)
	clean, err := sweep.Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in.EvalHook = TransientFaults(5, 0.25)
	res, err := sweep.Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, sweep.Options{})
	if err != nil {
		t.Fatalf("transient faults sank the sweep: %v", err)
	}
	if res.Report.Recovered == 0 {
		t.Fatal("no designs recovered; raise the fraction or reseed")
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("transient faults left permanent failures: %v", res.Report.Failures)
	}
	if res.Optimal.Design != clean.Optimal.Design {
		t.Fatalf("optimum drifted under transient faults: %+v vs %+v",
			res.Optimal.Design, clean.Optimal.Design)
	}
}

// TestChaosEiacsv feeds every corruption class through the strict reader:
// each must yield a typed error or a structurally sound year.
func TestChaosEiacsv(t *testing.T) {
	var buf bytes.Buffer
	if err := eiacsv.Write(&buf, grid.GenerateYear(grid.MustProfile("PNM"))); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	check := func(t *testing.T, data []byte) {
		y, err := eiacsv.Read(bytes.NewReader(data), "FZ")
		if err != nil {
			return // typed rejection is a pass
		}
		if err := y.Demand.Validate(); err != nil {
			t.Fatalf("accepted year has invalid demand: %v", err)
		}
		for s := range y.BySource {
			if err := y.BySource[s].Validate(); err != nil {
				t.Fatalf("accepted year has invalid generation: %v", err)
			}
		}
	}

	t.Run("mangled-bytes", func(t *testing.T) {
		for seed := uint64(0); seed < 20; seed++ {
			check(t, MangleBytes(valid, seed, 16))
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, frac := range []float64{0.1, 0.5, 0.9, 0.999} {
			check(t, TruncateBytes(valid, frac))
		}
	})
	t.Run("out-of-sequence-hours", func(t *testing.T) {
		data := SwapLines(valid, 5, 8)
		if _, err := eiacsv.Read(bytes.NewReader(data), "FZ"); err == nil {
			t.Fatal("swapped hours accepted")
		}
	})
	t.Run("nan-fields-strict", func(t *testing.T) {
		data := ReplaceFields(valid, 9, 5, "NaN")
		_, err := eiacsv.Read(bytes.NewReader(data), "FZ")
		if !errors.Is(err, eiacsv.ErrNonFinite) {
			t.Fatalf("want ErrNonFinite, got %v", err)
		}
	})
	t.Run("inf-fields-strict", func(t *testing.T) {
		data := ReplaceFields(valid, 10, 3, "+Inf")
		_, err := eiacsv.Read(bytes.NewReader(data), "FZ")
		if !errors.Is(err, eiacsv.ErrNonFinite) {
			t.Fatalf("want ErrNonFinite, got %v", err)
		}
	})
	t.Run("nan-fields-tolerant-repairs", func(t *testing.T) {
		data := ReplaceFields(valid, 9, 5, "NaN")
		y, rep, err := eiacsv.ReadTolerant(bytes.NewReader(data), "FZ", timeseries.DefaultRepairPolicy())
		if err != nil {
			t.Fatalf("tolerant read failed: %v", err)
		}
		if rep.TotalInterpolated() == 0 {
			t.Fatal("tolerant read repaired nothing")
		}
		if err := y.Demand.Validate(); err != nil {
			t.Fatalf("repaired year still invalid: %v", err)
		}
	})
	t.Run("long-gap-tolerant-rejects", func(t *testing.T) {
		// A full day of NaNs in one column exceeds the default 6-hour bound.
		lines := bytes.Split(append([]byte(nil), valid...), []byte("\n"))
		for i := 1; i <= 24; i++ {
			fields := bytes.Split(lines[i], []byte(","))
			fields[1] = []byte("NaN")
			lines[i] = bytes.Join(fields, []byte(","))
		}
		data := bytes.Join(lines, []byte("\n"))
		_, _, err := eiacsv.ReadTolerant(bytes.NewReader(data), "FZ", timeseries.DefaultRepairPolicy())
		if !errors.Is(err, timeseries.ErrGapTooLong) {
			t.Fatalf("want ErrGapTooLong, got %v", err)
		}
	})
}

// TestChaosDcload mirrors the eiacsv chaos for the demand-trace loader.
func TestChaosDcload(t *testing.T) {
	power := timeseries.Generate(480, func(h int) float64 { return 20 + 5*math.Sin(float64(h)/9) })
	var buf bytes.Buffer
	if err := dcload.WritePowerCSV(&buf, power); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	t.Run("mangled-bytes", func(t *testing.T) {
		for seed := uint64(0); seed < 20; seed++ {
			s, err := dcload.LoadPowerCSV(bytes.NewReader(MangleBytes(valid, seed, 8)))
			if err != nil {
				continue
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("accepted trace invalid: %v", err)
			}
		}
	})
	t.Run("nan-strict", func(t *testing.T) {
		data := ReplaceFields(valid, 4, 3, "NaN")
		_, err := dcload.LoadPowerCSV(bytes.NewReader(data))
		if !errors.Is(err, dcload.ErrNonFinite) {
			t.Fatalf("want ErrNonFinite, got %v", err)
		}
	})
	t.Run("nan-tolerant-repairs", func(t *testing.T) {
		data := ReplaceFields(valid, 4, 3, "NaN")
		s, rep, err := dcload.LoadPowerCSVTolerant(bytes.NewReader(data), timeseries.DefaultRepairPolicy())
		if err != nil {
			t.Fatalf("tolerant load failed: %v", err)
		}
		if rep.Interpolated == 0 {
			t.Fatal("tolerant load repaired nothing")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("repaired trace still invalid: %v", err)
		}
	})
	t.Run("out-of-sequence", func(t *testing.T) {
		if _, err := dcload.LoadPowerCSV(bytes.NewReader(SwapLines(valid, 2, 4))); err == nil {
			t.Fatal("swapped hours accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		s, err := dcload.LoadPowerCSV(bytes.NewReader(TruncateBytes(valid, 0.4)))
		if err == nil && s.Validate() != nil {
			t.Fatalf("accepted truncated trace invalid")
		}
	})
}

// TestChaosScheduler: corrupted series must be rejected with typed errors,
// and a documented Repair must make them usable again with energy
// conserved.
func TestChaosScheduler(t *testing.T) {
	n := 96
	demand := timeseries.Generate(n, func(h int) float64 { return 10 + float64(h%24)/4 })
	signal := timeseries.Generate(n, func(h int) float64 { return math.Sin(float64(h)) })
	cfg := scheduler.Config{FlexibleRatio: 0.4, WindowHours: 24}

	corrupted := NaNRuns(demand, 21, 2, 3)
	if _, err := scheduler.ShiftDaily(corrupted, signal, cfg); err == nil {
		t.Fatal("NaN demand accepted")
	} else {
		var ve *timeseries.ValueError
		if !errors.As(err, &ve) {
			t.Fatalf("want *timeseries.ValueError, got %v", err)
		}
	}
	if _, err := scheduler.ShiftDaily(demand, NaNRuns(signal, 3, 1, 2), cfg); err == nil {
		t.Fatal("NaN signal accepted")
	}
	if _, err := scheduler.ShiftDaily(demand, Truncate(signal, n/2), cfg); !errors.Is(err, timeseries.ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}

	repaired, rep, err := corrupted.Repair(timeseries.DefaultRepairPolicy())
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !rep.Changed() {
		t.Fatal("repair changed nothing")
	}
	out, err := scheduler.ShiftDaily(repaired, signal, cfg)
	if err != nil {
		t.Fatalf("repaired demand rejected: %v", err)
	}
	if math.Abs(out.Sum()-repaired.Sum()) > 1e-6*(1+repaired.Sum()) {
		t.Fatalf("energy not conserved after repair: %v -> %v", repaired.Sum(), out.Sum())
	}
}

// TestChaosFleet: per-site corruption must name the site and fault class.
func TestChaosFleet(t *testing.T) {
	n := 48
	mkdc := func(id string) fleet.DC {
		return fleet.DC{
			ID:        id,
			Demand:    timeseries.Constant(n, 10),
			Renewable: timeseries.Generate(n, func(h int) float64 { return float64(h % 24) }),
			GridCI:    timeseries.Constant(n, 300),
		}
	}
	cfg := fleet.Config{MigratableRatio: 0.3}

	if _, err := fleet.Balance(nil, cfg); !errors.Is(err, fleet.ErrEmptyFleet) {
		t.Fatalf("want ErrEmptyFleet, got %v", err)
	}

	bad := mkdc("B")
	bad.Demand = NaNRuns(bad.Demand, 5, 1, 2)
	_, err := fleet.Balance([]fleet.DC{mkdc("A"), bad}, cfg)
	var ve *timeseries.ValueError
	if !errors.As(err, &ve) {
		t.Fatalf("want *timeseries.ValueError, got %v", err)
	}

	short := mkdc("C")
	short.Renewable = Truncate(short.Renewable, n/2)
	if _, err := fleet.Balance([]fleet.DC{mkdc("A"), short}, cfg); !errors.Is(err, timeseries.ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

// TestChaosInputsFromSeries: corrupted user data is rejected strictly and
// accepted under the documented repair option.
func TestChaosInputsFromSeries(t *testing.T) {
	n := 240
	demand := timeseries.Constant(n, 10)
	wind := timeseries.Generate(n, func(h int) float64 { return float64(h % 12) })
	solar := timeseries.Constant(n, 3)
	ci := timeseries.Constant(n, 350)
	emb := carbon.DefaultEmbodiedParams()
	site := grid.MustSite("UT")

	gappy := NaNRuns(demand, 13, 3, 4)
	if _, err := explorer.NewInputsFromSeries(site, gappy, wind, solar, ci, emb); err == nil {
		t.Fatal("NaN demand accepted strictly")
	}
	in, err := explorer.NewInputsFromSeries(site, gappy, wind, solar, ci, emb,
		explorer.WithSeriesRepair(timeseries.DefaultRepairPolicy()))
	if err != nil {
		t.Fatalf("tolerant inputs failed: %v", err)
	}
	if err := in.Demand.Validate(); err != nil {
		t.Fatalf("repaired demand still invalid: %v", err)
	}
	o, err := in.Evaluate(explorer.Design{WindMW: 20, SolarMW: 10})
	if err != nil {
		t.Fatalf("evaluation on repaired inputs: %v", err)
	}
	if math.IsNaN(o.CoveragePct) || math.IsNaN(float64(o.Total())) {
		t.Fatal("repaired inputs produced NaN outcome — silent wrong number")
	}

	if _, err := explorer.NewInputsFromSeries(site, demand, Truncate(wind, n/2), solar, ci, emb); !errors.Is(err, timeseries.ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

// TestChaosDesignValidation: non-finite design fields must be typed errors,
// not silent NaN propagation through a whole evaluation.
func TestChaosDesignValidation(t *testing.T) {
	in := chaosInputs(t)
	for _, d := range []explorer.Design{
		{WindMW: math.NaN()},
		{SolarMW: math.Inf(1)},
		{WindMW: 10, BatteryMWh: math.NaN()},
		{FlexibleRatio: math.NaN()},
	} {
		if _, err := in.Evaluate(d); err == nil {
			t.Fatalf("non-finite design accepted: %+v", d)
		}
	}
}
