package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// faultPattern sends n GET requests through a freshly configured transport
// and records, per request, whether it was dropped.
func faultPattern(t *testing.T, cfg NetworkFaults, n int) (pattern []bool, served int64, counts [3]int) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = io.Copy(io.Discard, r.Body)
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	rt := cfg.RoundTripper(nil)
	client := &http.Client{Transport: rt}
	for i := 0; i < n; i++ {
		resp, err := client.Post(srv.URL, "application/json", strings.NewReader(`{}`))
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("request %d: non-injected failure: %v", i, err)
			}
			pattern = append(pattern, true)
			continue
		}
		pattern = append(pattern, false)
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	drops, delays, dups := Counts(rt)
	return pattern, hits.Load(), [3]int{drops, delays, dups}
}

func TestNetworkFaultsDeterministicSequence(t *testing.T) {
	cfg := NetworkFaults{Seed: 99, DropFraction: 0.3, DuplicateFraction: 0.2}
	a, servedA, countsA := faultPattern(t, cfg, 60)
	b, servedB, countsB := faultPattern(t, cfg, 60)
	if len(a) != len(b) {
		t.Fatalf("pattern lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: drop decision differs between identical runs", i)
		}
	}
	if servedA != servedB || countsA != countsB {
		t.Fatalf("fault accounting differs: served %d/%d, counts %v/%v", servedA, servedB, countsA, countsB)
	}
	if countsA[0] == 0 || countsA[2] == 0 {
		t.Fatalf("chaos too quiet for assertions: counts %v", countsA)
	}
	// Every non-dropped request reaches the server once, duplicated ones
	// twice: at-least-once delivery, never at-most-zero.
	if want := int64(60-countsA[0]) + int64(countsA[2]); servedA != want {
		t.Fatalf("server saw %d requests, want %d (60 − %d drops + %d duplicates)", servedA, want, countsA[0], countsA[2])
	}
}

func TestNetworkFaultsDelayInjectsLatency(t *testing.T) {
	cfg := NetworkFaults{Seed: 1, DelayFraction: 1, Delay: 20 * time.Millisecond}
	start := time.Now()
	_, served, counts := faultPattern(t, cfg, 3)
	if served != 3 || counts[1] != 3 {
		t.Fatalf("served %d with %d delays, want all 3 delayed", served, counts[1])
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("3 requests with 20ms injected latency finished in %v", elapsed)
	}
}

func TestNetworkFaultsZeroConfigTransparent(t *testing.T) {
	pattern, served, counts := faultPattern(t, NetworkFaults{Seed: 5}, 10)
	for i, dropped := range pattern {
		if dropped {
			t.Fatalf("request %d dropped by a zero-fraction transport", i)
		}
	}
	if served != 10 || counts != [3]int{} {
		t.Fatalf("zero-config transport interfered: served %d, counts %v", served, counts)
	}
}
