package netzero

import (
	"fmt"

	"carbonexplorer/internal/timeseries"
)

// Period is a credit-matching granularity.
type Period int

// Matching granularities, coarse to fine.
const (
	// Annual matching is today's typical Net Zero claim.
	Annual Period = iota
	// Monthly matching is the stricter accounting some operators report.
	Monthly
	// Daily matching.
	Daily
	// Hourly matching is the 24/7 Carbon-Free Energy Compact's standard.
	Hourly
)

// String names the period.
func (p Period) String() string {
	switch p {
	case Annual:
		return "annual"
	case Monthly:
		return "monthly"
	case Daily:
		return "daily"
	case Hourly:
		return "hourly"
	default:
		return fmt.Sprintf("period(%d)", int(p))
	}
}

// AllPeriods lists the granularities coarse to fine.
func AllPeriods() []Period { return []Period{Annual, Monthly, Daily, Hourly} }

// monthStartDays gives the 0-based start day of each month in the non-leap
// simulation year.
var monthStartDays = [13]int{0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365}

// boundaries returns the hour indices that delimit the period's windows
// over n hours (ascending, starting at 0, ending at n).
func (p Period) boundaries(n int) []int {
	switch p {
	case Annual:
		return []int{0, n}
	case Monthly:
		var out []int
		for _, d := range monthStartDays {
			h := d * 24
			if h > n {
				break
			}
			out = append(out, h)
		}
		if out[len(out)-1] != n {
			out = append(out, n)
		}
		return out
	case Daily:
		var out []int
		for h := 0; h <= n; h += 24 {
			out = append(out, h)
		}
		if out[len(out)-1] != n {
			out = append(out, n)
		}
		return out
	case Hourly:
		out := make([]int, n+1)
		for i := range out {
			out[i] = i
		}
		return out
	default:
		panic(fmt.Sprintf("netzero: unknown period %d", int(p)))
	}
}

// WindowBalance is the credit position of one matching window.
type WindowBalance struct {
	// StartHour is the window's first hour index.
	StartHour int
	// ConsumedMWh is datacenter energy consumed in the window.
	ConsumedMWh float64
	// CreditsMWh is renewable energy generated (credits issued) in the
	// window.
	CreditsMWh float64
}

// Matched reports whether credits cover consumption in this window.
func (w WindowBalance) Matched() bool { return w.CreditsMWh >= w.ConsumedMWh }

// MatchRatio returns credits over consumption (capped only below at 0);
// a window with no consumption is fully matched.
func (w WindowBalance) MatchRatio() float64 {
	if w.ConsumedMWh <= 0 {
		return 1
	}
	r := w.CreditsMWh / w.ConsumedMWh
	if r < 0 {
		return 0
	}
	return r
}

// Report summarizes credit matching at one granularity.
type Report struct {
	// Period is the matching granularity.
	Period Period
	// Windows are the per-window balances.
	Windows []WindowBalance
	// MatchedWindows counts windows where credits covered consumption.
	MatchedWindows int
	// MatchedFraction is MatchedWindows over total windows.
	MatchedFraction float64
	// MatchedEnergyFraction is the fraction of consumed energy covered by
	// credits within its own window (excess credits in one window do not
	// carry into another).
	MatchedEnergyFraction float64
}

// Match computes the credit report for demand and credit-generation series
// at the given granularity. Series must be equal length and non-empty.
func Match(demand, credits timeseries.Series, p Period) (Report, error) {
	n := demand.Len()
	if n == 0 {
		return Report{}, fmt.Errorf("netzero: empty demand series")
	}
	if credits.Len() != n {
		return Report{}, fmt.Errorf("netzero: demand length %d != credits length %d", n, credits.Len())
	}
	bounds := p.boundaries(n)
	rep := Report{Period: p}
	var coveredEnergy, totalEnergy float64
	for i := 0; i+1 < len(bounds); i++ {
		w := WindowBalance{StartHour: bounds[i]}
		for h := bounds[i]; h < bounds[i+1]; h++ {
			w.ConsumedMWh += demand.At(h)
			w.CreditsMWh += credits.At(h)
		}
		if w.Matched() {
			rep.MatchedWindows++
			coveredEnergy += w.ConsumedMWh
		} else {
			coveredEnergy += w.CreditsMWh
		}
		totalEnergy += w.ConsumedMWh
		rep.Windows = append(rep.Windows, w)
	}
	if len(rep.Windows) > 0 {
		rep.MatchedFraction = float64(rep.MatchedWindows) / float64(len(rep.Windows))
	}
	if totalEnergy > 0 {
		rep.MatchedEnergyFraction = coveredEnergy / totalEnergy
	}
	return rep, nil
}

// MatchWithBanking computes per-window matching where surplus credits carry
// forward into later windows (credit "banking") — a common accounting
// variant that sits between strict per-window matching and annual matching.
// Credits never carry backward: a later surplus cannot cover an earlier
// shortfall.
func MatchWithBanking(demand, credits timeseries.Series, p Period) (Report, error) {
	rep, err := Match(demand, credits, p)
	if err != nil {
		return Report{}, err
	}
	// Re-walk the windows with a rolling bank.
	bank := 0.0
	var coveredEnergy, totalEnergy float64
	rep.MatchedWindows = 0
	for i := range rep.Windows {
		w := &rep.Windows[i]
		available := w.CreditsMWh + bank
		if available >= w.ConsumedMWh {
			bank = available - w.ConsumedMWh
			coveredEnergy += w.ConsumedMWh
			rep.MatchedWindows++
		} else {
			bank = 0
			coveredEnergy += available
		}
		totalEnergy += w.ConsumedMWh
	}
	if len(rep.Windows) > 0 {
		rep.MatchedFraction = float64(rep.MatchedWindows) / float64(len(rep.Windows))
	}
	if totalEnergy > 0 {
		rep.MatchedEnergyFraction = coveredEnergy / totalEnergy
	}
	return rep, nil
}

// Summary compares all granularities for one demand/credit pair — the
// "Net Zero on paper vs 24/7 in practice" gap in one struct.
type Summary struct {
	// AnnualNetZero reports whether the year's credits cover the year's
	// consumption.
	AnnualNetZero bool
	// AnnualMatchRatio is total credits over total consumption.
	AnnualMatchRatio float64
	// ByPeriod holds the energy-matched fraction at each granularity.
	ByPeriod map[Period]float64
}

// Summarize runs Match at every granularity.
func Summarize(demand, credits timeseries.Series) (Summary, error) {
	s := Summary{ByPeriod: make(map[Period]float64, 4)}
	for _, p := range AllPeriods() {
		rep, err := Match(demand, credits, p)
		if err != nil {
			return Summary{}, err
		}
		s.ByPeriod[p] = rep.MatchedEnergyFraction
		if p == Annual && len(rep.Windows) > 0 {
			s.AnnualNetZero = rep.Windows[0].Matched()
			s.AnnualMatchRatio = rep.Windows[0].MatchRatio()
		}
	}
	return s, nil
}
