package netzero

import (
	"math"
	"testing"
	"testing/quick"

	"carbonexplorer/internal/timeseries"
)

func TestPeriodNames(t *testing.T) {
	want := map[Period]string{Annual: "annual", Monthly: "monthly", Daily: "daily", Hourly: "hourly"}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d name = %q", int(p), p.String())
		}
	}
	if got := Period(9).String(); got != "period(9)" {
		t.Errorf("out-of-range name %q", got)
	}
	if len(AllPeriods()) != 4 {
		t.Fatal("want 4 periods")
	}
}

func TestBoundaries(t *testing.T) {
	n := timeseries.HoursPerYear
	if b := Annual.boundaries(n); len(b) != 2 || b[1] != n {
		t.Fatalf("annual boundaries %v", b)
	}
	if b := Monthly.boundaries(n); len(b) != 13 {
		t.Fatalf("monthly boundaries count %d", len(b))
	}
	if b := Daily.boundaries(n); len(b) != 366 {
		t.Fatalf("daily boundaries count %d", len(b))
	}
	if b := Hourly.boundaries(48); len(b) != 49 {
		t.Fatalf("hourly boundaries count %d", len(b))
	}
	// Partial year still covered.
	if b := Monthly.boundaries(40 * 24); b[len(b)-1] != 40*24 {
		t.Fatalf("partial-year monthly boundaries %v", b)
	}
}

func TestAnnualNetZeroButPartialHourly(t *testing.T) {
	// The paper's core point: solar credits equal to annual consumption
	// leave half the hours unmatched.
	n := 24 * 30
	demand := timeseries.Constant(n, 10)
	credits := timeseries.Generate(n, func(h int) float64 {
		if h%24 >= 6 && h%24 < 18 {
			return 20 // all generation during daytime
		}
		return 0
	})
	s, err := Summarize(demand, credits)
	if err != nil {
		t.Fatal(err)
	}
	if !s.AnnualNetZero {
		t.Fatalf("credits (%v/day) should cover demand (%v/day)", 240.0, 240.0)
	}
	if math.Abs(s.AnnualMatchRatio-1) > 1e-9 {
		t.Fatalf("annual match ratio = %v, want 1", s.AnnualMatchRatio)
	}
	if s.ByPeriod[Daily] != 1 {
		t.Fatalf("daily matching should also hold: %v", s.ByPeriod[Daily])
	}
	// Hourly: night hours (12 of 24) are uncovered entirely.
	if math.Abs(s.ByPeriod[Hourly]-0.5) > 1e-9 {
		t.Fatalf("hourly matched energy = %v, want 0.5", s.ByPeriod[Hourly])
	}
}

func TestMatchGranularityMonotone(t *testing.T) {
	// Coarser periods can only match more energy (excess pools across
	// hours within the window).
	n := 24 * 60
	demand := timeseries.Generate(n, func(h int) float64 { return 8 + 3*math.Sin(float64(h)/9) })
	credits := timeseries.Generate(n, func(h int) float64 { return 16 * math.Abs(math.Sin(float64(h)/13)) })
	s, err := Summarize(demand, credits)
	if err != nil {
		t.Fatal(err)
	}
	if s.ByPeriod[Annual] < s.ByPeriod[Monthly]-1e-9 ||
		s.ByPeriod[Monthly] < s.ByPeriod[Daily]-1e-9 ||
		s.ByPeriod[Daily] < s.ByPeriod[Hourly]-1e-9 {
		t.Fatalf("matching should weaken with finer periods: %v", s.ByPeriod)
	}
}

func TestWindowBalance(t *testing.T) {
	w := WindowBalance{ConsumedMWh: 10, CreditsMWh: 15}
	if !w.Matched() || w.MatchRatio() != 1.5 {
		t.Fatalf("window balance wrong: %+v", w)
	}
	empty := WindowBalance{}
	if !empty.Matched() || empty.MatchRatio() != 1 {
		t.Fatalf("zero-consumption window should be fully matched")
	}
	short := WindowBalance{ConsumedMWh: 10, CreditsMWh: 4}
	if short.Matched() || short.MatchRatio() != 0.4 {
		t.Fatalf("short window wrong: %+v", short)
	}
}

func TestMatchValidation(t *testing.T) {
	if _, err := Match(timeseries.New(0), timeseries.New(0), Annual); err == nil {
		t.Fatal("empty series should error")
	}
	if _, err := Match(timeseries.New(10), timeseries.New(5), Annual); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestHourlyMatchingEqualsCoverageStyleMetric(t *testing.T) {
	// Hourly matched-energy fraction equals 1 - deficit/total, the paper's
	// coverage metric (as a fraction).
	n := 24 * 20
	demand := timeseries.Generate(n, func(h int) float64 { return 5 + float64(h%7) })
	credits := timeseries.Generate(n, func(h int) float64 { return float64((h * 3) % 13) })
	rep, err := Match(demand, credits, Hourly)
	if err != nil {
		t.Fatal(err)
	}
	diff, _ := demand.Sub(credits)
	wantCovered := 1 - diff.PositivePart().Sum()/demand.Sum()
	if math.Abs(rep.MatchedEnergyFraction-wantCovered) > 1e-9 {
		t.Fatalf("hourly matching %v != coverage %v", rep.MatchedEnergyFraction, wantCovered)
	}
}

func TestBankingCarriesForwardOnly(t *testing.T) {
	// Day 0: surplus. Day 1: shortfall covered by the bank. Day 2:
	// shortfall with an empty bank. Day 3: surplus that cannot rescue day 2.
	demand := timeseries.Generate(96, func(h int) float64 { return 10 })
	credits := timeseries.Generate(96, func(h int) float64 {
		switch h / 24 {
		case 0:
			return 20 // +240 banked
		case 1:
			return 2 // −192, bank covers 192 of 240
		case 2:
			return 0 // bank has 48 − not enough; partially covered
		default:
			return 30 // surplus, too late for day 2
		}
	})
	plain, err := Match(demand, credits, Daily)
	if err != nil {
		t.Fatal(err)
	}
	banked, err := MatchWithBanking(demand, credits, Daily)
	if err != nil {
		t.Fatal(err)
	}
	if banked.MatchedEnergyFraction <= plain.MatchedEnergyFraction {
		t.Fatalf("banking should improve matching: %v vs %v",
			banked.MatchedEnergyFraction, plain.MatchedEnergyFraction)
	}
	// Day 1 becomes matched via the bank; day 2 stays unmatched.
	if !banked.Windows[0].Matched() {
		t.Fatal("day 0 should be matched")
	}
	if banked.MatchedWindows != 3 { // days 0, 1, 3
		t.Fatalf("matched windows = %d, want 3", banked.MatchedWindows)
	}
	// Banking can never exceed annual matching.
	annual, err := Match(demand, credits, Annual)
	if err != nil {
		t.Fatal(err)
	}
	if banked.MatchedEnergyFraction > annual.MatchedEnergyFraction+1e-9 {
		t.Fatalf("banking %v exceeded annual bound %v",
			banked.MatchedEnergyFraction, annual.MatchedEnergyFraction)
	}
}

func TestBankingValidation(t *testing.T) {
	if _, err := MatchWithBanking(timeseries.New(0), timeseries.New(0), Daily); err == nil {
		t.Fatal("empty series should error")
	}
}

func TestPropertyBankingBetweenPlainAndAnnual(t *testing.T) {
	f := func(d, c []uint16) bool {
		n := len(d)
		if len(c) < n {
			n = len(c)
		}
		if n < 48 {
			return true
		}
		dv := make([]float64, n)
		cv := make([]float64, n)
		for i := 0; i < n; i++ {
			dv[i] = float64(d[i]%50) + 1
			cv[i] = float64(c[i] % 80)
		}
		demand := timeseries.FromValues(dv)
		credits := timeseries.FromValues(cv)
		plain, err1 := Match(demand, credits, Daily)
		banked, err2 := MatchWithBanking(demand, credits, Daily)
		annual, err3 := Match(demand, credits, Annual)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return banked.MatchedEnergyFraction >= plain.MatchedEnergyFraction-1e-9 &&
			banked.MatchedEnergyFraction <= annual.MatchedEnergyFraction+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMatchedFractionBounds(t *testing.T) {
	f := func(d, c []uint16) bool {
		n := len(d)
		if len(c) < n {
			n = len(c)
		}
		if n == 0 {
			return true
		}
		dv := make([]float64, n)
		cv := make([]float64, n)
		for i := 0; i < n; i++ {
			dv[i] = float64(d[i] % 100)
			cv[i] = float64(c[i] % 100)
		}
		for _, p := range AllPeriods() {
			rep, err := Match(timeseries.FromValues(dv), timeseries.FromValues(cv), p)
			if err != nil {
				return false
			}
			if rep.MatchedFraction < 0 || rep.MatchedFraction > 1 {
				return false
			}
			if rep.MatchedEnergyFraction < 0 || rep.MatchedEnergyFraction > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
