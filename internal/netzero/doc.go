// Package netzero implements renewable-energy-credit (REC) accounting for
// power purchase agreements, the state-of-the-art mechanism the paper
// contrasts with 24/7 operation (Section 3.2): a PPA issues one credit per
// MWh its farms generate, and a datacenter claims Net Zero for a period when
// credits cover consumption. The package computes credit balances at
// hourly, daily, monthly, and annual granularity, making the paper's core
// observation quantitative — a datacenter can be 100% matched annually while
// consuming carbon-intensive energy for a large fraction of its hours
// (Figure 6's gap between Net Zero and 24/7 coverage).
package netzero
