// Package jobsim is a job-level discrete-event datacenter simulator. Carbon
// Explorer's scheduler (Section 4.3) reasons about fluid MW-level load;
// jobsim schedules the actual jobs of a workload trace — arrivals, server
// occupancy, deadlines — against renewable supply, validating the fluid
// approximation and exposing job-level metrics (wait times, SLO violations)
// the fluid view cannot see.
package jobsim
