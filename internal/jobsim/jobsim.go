package jobsim

import (
	"fmt"
	"sort"

	"carbonexplorer/internal/timeseries"
	"carbonexplorer/internal/units"
	"carbonexplorer/internal/workload"
)

// Policy selects how queued flexible jobs are started.
type Policy int

// Scheduling policies.
const (
	// RunImmediately starts jobs FIFO as soon as servers are free — the
	// carbon-oblivious baseline.
	RunImmediately Policy = iota
	// DeferToGreen starts inflexible jobs immediately but holds flexible
	// jobs until renewable headroom exists or their deadline arrives.
	DeferToGreen
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RunImmediately:
		return "run-immediately"
	case DeferToGreen:
		return "defer-to-green"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// Servers is the fleet size in server slots; each running job occupies
	// slots proportional to its power draw.
	Servers int
	// ServerPowerMW is the incremental (busy-minus-idle) power of one
	// server slot.
	ServerPowerMW float64
	// IdlePowerMW is the fleet's power draw with zero jobs running.
	IdlePowerMW float64
	// Renewable is the hourly renewable supply in MW; its length bounds the
	// simulation horizon.
	Renewable timeseries.Series
	// GridCI is the grid's hourly carbon intensity in gCO2/kWh; must match
	// Renewable's length.
	GridCI timeseries.Series
	// Policy selects the scheduling behaviour.
	Policy Policy
}

// Validate reports the first invalid field, or nil.
func (c Config) Validate() error {
	switch {
	case c.Servers <= 0:
		return fmt.Errorf("jobsim: fleet must have at least one server")
	case c.ServerPowerMW <= 0:
		return fmt.Errorf("jobsim: server power must be positive")
	case c.IdlePowerMW < 0:
		return fmt.Errorf("jobsim: negative idle power")
	case c.Renewable.Len() == 0:
		return fmt.Errorf("jobsim: empty renewable series")
	case c.GridCI.Len() != c.Renewable.Len():
		return fmt.Errorf("jobsim: grid CI length %d != renewable length %d", c.GridCI.Len(), c.Renewable.Len())
	}
	return nil
}

// Stats summarizes a run.
type Stats struct {
	// Completed is the number of jobs that finished within the horizon.
	Completed int
	// Unfinished is jobs still queued or running at the horizon.
	Unfinished int
	// SLOViolations counts jobs started after their deadline.
	SLOViolations int
	// TotalWaitHours is the sum of queue waits across started jobs.
	TotalWaitHours float64
	// AvgWaitHours is TotalWaitHours over started jobs.
	AvgWaitHours float64
	// GridEnergyMWh is energy drawn from the grid.
	GridEnergyMWh float64
	// RenewableUsedMWh is renewable energy consumed.
	RenewableUsedMWh float64
	// Carbon is operational carbon from grid energy at hourly intensity.
	Carbon units.GramsCO2
	// PeakBusySlots is the maximum simultaneously occupied server slots.
	PeakBusySlots int
	// MeanUtilization is mean busy-slot share of the fleet.
	MeanUtilization float64
	// Power is the realized hourly fleet power in MW.
	Power timeseries.Series
	// ByTier breaks down started jobs per SLO tier.
	ByTier map[workload.Tier]TierStats
}

// TierStats is the per-SLO-tier view of a run.
type TierStats struct {
	// Started counts jobs of the tier that began execution.
	Started int
	// TotalWaitHours sums their queue waits.
	TotalWaitHours float64
	// SLOViolations counts tier jobs started after their deadline.
	SLOViolations int
}

// AvgWaitHours returns the tier's mean queue wait.
func (ts TierStats) AvgWaitHours() float64 {
	if ts.Started == 0 {
		return 0
	}
	return ts.TotalWaitHours / float64(ts.Started)
}

// running is one in-flight job.
type running struct {
	slots     int
	remaining int
}

// queued is one waiting job.
type queued struct {
	job   workload.Job
	slots int
}

// Run simulates the job trace against the config. Jobs are processed in
// submit order; each occupies ceil(power/serverPower) slots for its
// duration. The simulation horizon is the renewable series length; jobs
// submitted beyond it are ignored.
func Run(jobs []workload.Job, cfg Config) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	horizon := cfg.Renewable.Len()

	// Bucket arrivals by hour.
	arrivals := make(map[int][]workload.Job)
	for _, j := range jobs {
		if j.SubmitHour >= 0 && j.SubmitHour < horizon {
			arrivals[j.SubmitHour] = append(arrivals[j.SubmitHour], j)
		}
	}

	var (
		stats     Stats
		queue     []queued
		inFlight  []running
		busySlots int
		started   int
		utilSum   float64
	)
	stats.Power = timeseries.New(horizon)
	stats.ByTier = make(map[workload.Tier]TierStats, workload.NumTiers)

	slotsFor := func(j workload.Job) int {
		s := int(j.PowerMW/cfg.ServerPowerMW + 0.999999)
		if s < 1 {
			s = 1
		}
		if s > cfg.Servers {
			s = cfg.Servers // a job can never need more than the fleet
		}
		return s
	}

	for h := 0; h < horizon; h++ {
		// Retire finished work.
		live := inFlight[:0]
		for _, r := range inFlight {
			r.remaining--
			if r.remaining <= 0 {
				busySlots -= r.slots
				stats.Completed++
			} else {
				live = append(live, r)
			}
		}
		inFlight = live

		// Enqueue arrivals (submit order).
		for _, j := range arrivals[h] {
			queue = append(queue, queued{job: j, slots: slotsFor(j)})
		}

		// Decide what to start. Inflexible and deadline-expired jobs start
		// first (FIFO); under DeferToGreen, remaining flexible jobs start
		// only while projected power stays within renewable supply.
		sort.SliceStable(queue, func(a, b int) bool {
			return queue[a].job.Deadline() < queue[b].job.Deadline()
		})
		var stillQueued []queued
		power := cfg.IdlePowerMW + float64(busySlots)*cfg.ServerPowerMW
		for _, q := range queue {
			free := cfg.Servers - busySlots
			mustStart := q.job.Tier.SlackHours() < 2 || h >= q.job.Deadline()
			greenRoom := power+float64(q.slots)*cfg.ServerPowerMW <= cfg.Renewable.At(h)
			start := false
			switch cfg.Policy {
			case RunImmediately:
				start = free >= q.slots
			case DeferToGreen:
				start = free >= q.slots && (mustStart || greenRoom)
			}
			if !start {
				stillQueued = append(stillQueued, q)
				continue
			}
			busySlots += q.slots
			power += float64(q.slots) * cfg.ServerPowerMW
			inFlight = append(inFlight, running{slots: q.slots, remaining: q.job.DurationHours})
			started++
			wait := h - q.job.SubmitHour
			stats.TotalWaitHours += float64(wait)
			ts := stats.ByTier[q.job.Tier]
			ts.Started++
			ts.TotalWaitHours += float64(wait)
			if h > q.job.Deadline() {
				stats.SLOViolations++
				ts.SLOViolations++
			}
			stats.ByTier[q.job.Tier] = ts
		}
		queue = stillQueued

		// Energy accounting for the hour.
		stats.Power.Set(h, power)
		ren := cfg.Renewable.At(h)
		used := power
		if used > ren {
			used = ren
		}
		grid := power - used
		stats.RenewableUsedMWh += used
		stats.GridEnergyMWh += grid
		stats.Carbon += units.MegaWattHours(grid).Carbon(units.CarbonIntensity(cfg.GridCI.At(h)))

		if busySlots > stats.PeakBusySlots {
			stats.PeakBusySlots = busySlots
		}
		utilSum += float64(busySlots) / float64(cfg.Servers)
	}

	stats.Unfinished = len(queue) + len(inFlight)
	if started > 0 {
		stats.AvgWaitHours = stats.TotalWaitHours / float64(started)
	}
	stats.MeanUtilization = utilSum / float64(horizon)
	return stats, nil
}
