package jobsim

import (
	"math"
	"testing"

	"carbonexplorer/internal/timeseries"
	"carbonexplorer/internal/workload"
)

func baseConfig(hours int, policy Policy) Config {
	return Config{
		Servers:       100,
		ServerPowerMW: 0.001, // 1 kW incremental per slot
		IdlePowerMW:   0.05,
		Renewable:     timeseries.New(hours),
		GridCI:        timeseries.Constant(hours, 400),
		Policy:        policy,
	}
}

func job(id, submit, dur int, tier workload.Tier, powerMW float64) workload.Job {
	return workload.Job{ID: id, SubmitHour: submit, DurationHours: dur, Tier: tier, PowerMW: powerMW}
}

func TestPolicyNames(t *testing.T) {
	if RunImmediately.String() != "run-immediately" || DeferToGreen.String() != "defer-to-green" {
		t.Fatal("policy names wrong")
	}
	if Policy(7).String() != "policy(7)" {
		t.Fatal("out-of-range policy name")
	}
}

func TestValidation(t *testing.T) {
	good := baseConfig(24, RunImmediately)
	bad := []func(*Config){
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.ServerPowerMW = 0 },
		func(c *Config) { c.IdlePowerMW = -1 },
		func(c *Config) { c.Renewable = timeseries.New(0); c.GridCI = timeseries.New(0) },
		func(c *Config) { c.GridCI = timeseries.New(5) },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := Run(nil, cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestAllJobsCompleteWithCapacity(t *testing.T) {
	cfg := baseConfig(100, RunImmediately)
	jobs := []workload.Job{
		job(0, 0, 3, workload.Tier1, 0.002),
		job(1, 5, 2, workload.Tier4, 0.001),
		job(2, 10, 1, workload.Tier5, 0.003),
	}
	stats, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 3 || stats.Unfinished != 0 {
		t.Fatalf("completed %d unfinished %d", stats.Completed, stats.Unfinished)
	}
	if stats.SLOViolations != 0 {
		t.Fatalf("violations = %d", stats.SLOViolations)
	}
	// FIFO with free servers: zero wait.
	if stats.AvgWaitHours != 0 {
		t.Fatalf("avg wait = %v", stats.AvgWaitHours)
	}
}

func TestCapacityQueuesJobs(t *testing.T) {
	cfg := baseConfig(50, RunImmediately)
	cfg.Servers = 1
	// Two 1-slot jobs submitted together: the second must wait 2 hours.
	jobs := []workload.Job{
		job(0, 0, 2, workload.Tier1, 0.001),
		job(1, 0, 2, workload.Tier4, 0.001),
	}
	stats, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 2 {
		t.Fatalf("completed %d", stats.Completed)
	}
	if stats.TotalWaitHours != 2 {
		t.Fatalf("total wait = %v, want 2", stats.TotalWaitHours)
	}
	if stats.PeakBusySlots != 1 {
		t.Fatalf("peak slots = %d, want capacity-bound 1", stats.PeakBusySlots)
	}
}

func TestDeferToGreenWaitsForRenewables(t *testing.T) {
	hours := 48
	cfg := baseConfig(hours, DeferToGreen)
	// Renewables abundant only in hours 24+.
	cfg.Renewable = timeseries.Generate(hours, func(h int) float64 {
		if h >= 24 {
			return 10
		}
		return 0
	})
	// One flexible daily-SLO job submitted at hour 0: it should wait for
	// green hours (deadline 24).
	jobs := []workload.Job{job(0, 0, 2, workload.Tier4, 0.001)}
	stats, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 1 {
		t.Fatalf("completed %d", stats.Completed)
	}
	if stats.TotalWaitHours < 20 {
		t.Fatalf("green policy should have deferred ~24h, waited %v", stats.TotalWaitHours)
	}
}

func TestDeferToGreenStartsInflexibleImmediately(t *testing.T) {
	hours := 24
	cfg := baseConfig(hours, DeferToGreen) // zero renewables all day
	jobs := []workload.Job{job(0, 3, 2, workload.Tier1, 0.001)}
	stats, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalWaitHours != 0 {
		t.Fatalf("±1h job must start immediately, waited %v", stats.TotalWaitHours)
	}
}

func TestDeferToGreenHonoursDeadline(t *testing.T) {
	hours := 72
	cfg := baseConfig(hours, DeferToGreen) // never green
	jobs := []workload.Job{job(0, 0, 1, workload.Tier4, 0.001)}
	stats, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 1 {
		t.Fatalf("job must run by deadline even without green energy")
	}
	// Started exactly at its 24h deadline: no violation.
	if stats.SLOViolations != 0 {
		t.Fatalf("starting at the deadline is not a violation")
	}
	if stats.TotalWaitHours != 24 {
		t.Fatalf("wait = %v, want 24", stats.TotalWaitHours)
	}
}

func TestGreenPolicyReducesCarbon(t *testing.T) {
	hours := 24 * 30
	ren := timeseries.Generate(hours, func(h int) float64 {
		if h%24 >= 8 && h%24 < 18 {
			return 0.5 // plenty during the day
		}
		return 0
	})
	jobs := workload.GenerateTrace(workload.TraceParams{
		JobsPerHour: 6, MeanDurationHours: 2, MeanPowerMW: 0.002, Seed: 3,
	}, hours-48)

	run := func(p Policy) Stats {
		cfg := baseConfig(hours, p)
		cfg.Renewable = ren
		stats, err := Run(jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	fifo := run(RunImmediately)
	green := run(DeferToGreen)

	if green.Carbon >= fifo.Carbon {
		t.Fatalf("green policy should cut carbon: %v vs %v", green.Carbon, fifo.Carbon)
	}
	if green.AvgWaitHours <= fifo.AvgWaitHours {
		t.Fatalf("green policy should trade wait time for carbon")
	}
	// Both policies run the same jobs.
	if fifo.Completed != green.Completed {
		t.Fatalf("completion mismatch: %d vs %d", fifo.Completed, green.Completed)
	}
}

func TestEnergyAccountingConsistent(t *testing.T) {
	hours := 24 * 7
	cfg := baseConfig(hours, RunImmediately)
	cfg.Renewable = timeseries.Constant(hours, 0.2)
	jobs := workload.GenerateTrace(workload.TraceParams{
		JobsPerHour: 3, MeanDurationHours: 2, MeanPowerMW: 0.002, Seed: 5,
	}, hours-24)
	stats, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := stats.Power.Sum()
	if math.Abs(total-(stats.GridEnergyMWh+stats.RenewableUsedMWh)) > 1e-6 {
		t.Fatalf("energy split inconsistent: %v vs %v+%v",
			total, stats.GridEnergyMWh, stats.RenewableUsedMWh)
	}
	if stats.MeanUtilization <= 0 || stats.MeanUtilization > 1 {
		t.Fatalf("utilization = %v", stats.MeanUtilization)
	}
}

func TestOversizedJobClampsToFleet(t *testing.T) {
	cfg := baseConfig(24, RunImmediately)
	cfg.Servers = 4
	// Job nominally needs 10 slots; it is clamped to the fleet and still
	// runs.
	jobs := []workload.Job{job(0, 0, 1, workload.Tier1, 0.010)}
	stats, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 1 {
		t.Fatalf("oversized job should still run")
	}
	if stats.PeakBusySlots != 4 {
		t.Fatalf("peak slots = %d, want clamped 4", stats.PeakBusySlots)
	}
}

func TestJobsBeyondHorizonIgnored(t *testing.T) {
	cfg := baseConfig(24, RunImmediately)
	jobs := []workload.Job{job(0, 100, 1, workload.Tier1, 0.001)}
	stats, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 0 || stats.Unfinished != 0 {
		t.Fatalf("out-of-horizon job should be ignored: %+v", stats)
	}
}

func TestPerTierStats(t *testing.T) {
	hours := 24 * 20
	cfg := baseConfig(hours, DeferToGreen)
	cfg.Renewable = timeseries.Generate(hours, func(h int) float64 {
		if h%24 >= 8 && h%24 < 18 {
			return 0.5
		}
		return 0
	})
	jobs := workload.GenerateTrace(workload.TraceParams{
		JobsPerHour: 8, MeanDurationHours: 2, MeanPowerMW: 0.002, Seed: 9,
	}, hours-48)
	stats, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tierStarted int
	for _, ts := range stats.ByTier {
		tierStarted += ts.Started
	}
	wanted := stats.Completed + stats.Unfinished // started jobs may still run
	if tierStarted > wanted {
		t.Fatalf("per-tier started %d exceeds plausible %d", tierStarted, wanted)
	}
	// Under defer-to-green, flexible tiers should wait longer on average
	// than the inflexible Tier 1.
	t1 := stats.ByTier[workload.Tier1]
	t4 := stats.ByTier[workload.Tier4]
	if t1.Started == 0 || t4.Started == 0 {
		t.Fatalf("expected jobs in both tiers: %+v", stats.ByTier)
	}
	if t4.AvgWaitHours() <= t1.AvgWaitHours() {
		t.Fatalf("daily-SLO jobs should wait longer than ±1h jobs: %v vs %v",
			t4.AvgWaitHours(), t1.AvgWaitHours())
	}
	if zero := (TierStats{}); zero.AvgWaitHours() != 0 {
		t.Fatalf("empty tier average should be 0")
	}
}

func TestDeterministic(t *testing.T) {
	hours := 24 * 10
	cfg := baseConfig(hours, DeferToGreen)
	cfg.Renewable = timeseries.Generate(hours, func(h int) float64 { return float64(h%24) / 50 })
	jobs := workload.GenerateTrace(workload.DefaultTraceParams(), hours-24)
	a, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Carbon != b.Carbon || a.Completed != b.Completed || a.TotalWaitHours != b.TotalWaitHours {
		t.Fatalf("simulation not deterministic")
	}
}
