package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// HoursPerYear is the length of the canonical simulation year.
const HoursPerYear = 8760

// HoursPerDay is the number of samples in one day.
const HoursPerDay = 24

// Series is an hourly time series. Index 0 is hour 0 of January 1 of the
// simulation year; index i is i hours later.
type Series struct {
	values []float64
}

// ErrLengthMismatch is returned by binary operations on series of different
// lengths.
var ErrLengthMismatch = errors.New("timeseries: series lengths differ")

// New returns a zero-filled series of n samples.
func New(n int) Series {
	if n < 0 {
		panic("timeseries: negative length")
	}
	return Series{values: make([]float64, n)}
}

// NewYear returns a zero-filled series covering one simulation year.
func NewYear() Series { return New(HoursPerYear) }

// FromValues wraps the given samples in a Series. The slice is copied so the
// caller retains ownership of its buffer.
func FromValues(v []float64) Series {
	c := make([]float64, len(v))
	copy(c, v)
	return Series{values: c}
}

// Constant returns a series of n samples all equal to v.
func Constant(n int, v float64) Series {
	s := New(n)
	for i := range s.values {
		s.values[i] = v
	}
	return s
}

// Generate builds a series of n samples by evaluating f at each hour index.
func Generate(n int, f func(hour int) float64) Series {
	s := New(n)
	for i := range s.values {
		s.values[i] = f(i)
	}
	return s
}

// Len returns the number of samples.
func (s Series) Len() int { return len(s.values) }

// At returns the sample at hour i.
func (s Series) At(i int) float64 { return s.values[i] }

// Set overwrites the sample at hour i in place.
func (s Series) Set(i int, v float64) { s.values[i] = v }

// Values returns a copy of the underlying samples.
func (s Series) Values() []float64 {
	c := make([]float64, len(s.values))
	copy(c, s.values)
	return c
}

// Clone returns a deep copy.
func (s Series) Clone() Series { return FromValues(s.values) }

// Slice returns the sub-series of hours [from, to).
func (s Series) Slice(from, to int) Series {
	if from < 0 || to > len(s.values) || from > to {
		panic(fmt.Sprintf("timeseries: slice [%d,%d) out of range for length %d", from, to, len(s.values)))
	}
	return FromValues(s.values[from:to])
}

// Day returns the 24-hour sub-series for day d (0-based).
func (s Series) Day(d int) Series {
	return s.Slice(d*HoursPerDay, (d+1)*HoursPerDay)
}

// Days returns the number of whole days covered.
func (s Series) Days() int { return len(s.values) / HoursPerDay }

// Add returns s + o elementwise.
func (s Series) Add(o Series) (Series, error) {
	return s.zipWith(o, func(a, b float64) float64 { return a + b })
}

// Sub returns s − o elementwise.
func (s Series) Sub(o Series) (Series, error) {
	return s.zipWith(o, func(a, b float64) float64 { return a - b })
}

// Mul returns s × o elementwise.
func (s Series) Mul(o Series) (Series, error) {
	return s.zipWith(o, func(a, b float64) float64 { return a * b })
}

// Min returns the elementwise minimum of s and o.
func (s Series) Min(o Series) (Series, error) {
	return s.zipWith(o, math.Min)
}

// Max returns the elementwise maximum of s and o.
func (s Series) Max(o Series) (Series, error) {
	return s.zipWith(o, math.Max)
}

func (s Series) zipWith(o Series, f func(a, b float64) float64) (Series, error) {
	if len(s.values) != len(o.values) {
		return Series{}, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(s.values), len(o.values))
	}
	out := New(len(s.values))
	for i := range s.values {
		out.values[i] = f(s.values[i], o.values[i])
	}
	return out, nil
}

// Scale returns s with every sample multiplied by k.
func (s Series) Scale(k float64) Series {
	out := New(len(s.values))
	for i, v := range s.values {
		out.values[i] = v * k
	}
	return out
}

// Shift returns s with k added to every sample.
func (s Series) Shift(k float64) Series {
	out := New(len(s.values))
	for i, v := range s.values {
		out.values[i] = v + k
	}
	return out
}

// ClampMin returns s with samples below lo raised to lo.
func (s Series) ClampMin(lo float64) Series {
	out := New(len(s.values))
	for i, v := range s.values {
		out.values[i] = math.Max(v, lo)
	}
	return out
}

// ClampMax returns s with samples above hi lowered to hi.
func (s Series) ClampMax(hi float64) Series {
	out := New(len(s.values))
	for i, v := range s.values {
		out.values[i] = math.Min(v, hi)
	}
	return out
}

// PositivePart returns max(s, 0) elementwise: the deficits or surpluses of a
// difference series.
func (s Series) PositivePart() Series { return s.ClampMin(0) }

// Sum returns the sum of all samples.
func (s Series) Sum() float64 {
	t := 0.0
	for _, v := range s.values {
		t += v
	}
	return t
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.values))
}

// MaxValue returns the largest sample, or 0 for an empty series.
func (s Series) MaxValue() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MinValue returns the smallest sample, or 0 for an empty series.
func (s Series) MinValue() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ScaleToMax linearly rescales the series so its maximum equals max. This is
// the paper's renewable-projection rule: the observed annual maximum is taken
// as the grid's installed capacity and the series is scaled in proportion to
// the investment under study. A series with no positive samples is returned
// unchanged (there is nothing to scale).
func (s Series) ScaleToMax(max float64) Series {
	cur := s.MaxValue()
	if cur <= 0 {
		return s.Clone()
	}
	return s.Scale(max / cur)
}

// DailyTotals returns a series of per-day sums (length Days()).
func (s Series) DailyTotals() Series {
	days := s.Days()
	out := New(days)
	for d := 0; d < days; d++ {
		t := 0.0
		for h := 0; h < HoursPerDay; h++ {
			t += s.values[d*HoursPerDay+h]
		}
		out.values[d] = t
	}
	return out
}

// AverageDay returns the 24-sample mean daily profile: sample h is the mean
// of that hour-of-day across all whole days.
func (s Series) AverageDay() Series {
	days := s.Days()
	out := New(HoursPerDay)
	if days == 0 {
		return out
	}
	for h := 0; h < HoursPerDay; h++ {
		t := 0.0
		for d := 0; d < days; d++ {
			t += s.values[d*HoursPerDay+h]
		}
		out.values[h] = t / float64(days)
	}
	return out
}

// TileDaily expands a 24-sample daily profile into an n-sample series by
// repeating it. It panics if s is not exactly one day long.
func (s Series) TileDaily(n int) Series {
	if len(s.values) != HoursPerDay {
		panic("timeseries: TileDaily requires a 24-sample profile")
	}
	out := New(n)
	for i := range out.values {
		out.values[i] = s.values[i%HoursPerDay]
	}
	return out
}

// CountWhere returns how many samples satisfy pred.
func (s Series) CountWhere(pred func(float64) bool) int {
	n := 0
	for _, v := range s.values {
		if pred(v) {
			n++
		}
	}
	return n
}

// Map returns a new series with f applied to every sample.
func (s Series) Map(f func(float64) float64) Series {
	out := New(len(s.values))
	for i, v := range s.values {
		out.values[i] = f(v)
	}
	return out
}

// Equal reports whether the two series have identical length and samples
// within tolerance eps.
func (s Series) Equal(o Series, eps float64) bool {
	if len(s.values) != len(o.values) {
		return false
	}
	for i := range s.values {
		if math.Abs(s.values[i]-o.values[i]) > eps {
			return false
		}
	}
	return true
}
