package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file is the data-quality layer of the time-series engine. Real hourly
// grid and datacenter exports are noisy: meters drop out (NaN runs),
// converters glitch (negative or infinite samples), and files arrive
// truncated. Validate classifies such defects as typed errors; Repair
// applies an explicit, bounded gap-filling policy so tolerant readers can
// accept slightly damaged data without ever letting a non-finite sample
// poison a downstream carbon total.

// ValueError reports the first invalid sample found in a series.
type ValueError struct {
	// Index is the hour of the offending sample.
	Index int
	// Value is the offending sample.
	Value float64
	// Reason classifies the defect: "NaN", "+Inf", "-Inf", or "negative".
	Reason string
}

func (e *ValueError) Error() string {
	return fmt.Sprintf("timeseries: invalid sample at hour %d: %s (%v)", e.Index, e.Reason, e.Value)
}

// ErrGapTooLong is returned (wrapped) by Repair when a run of invalid
// samples exceeds the policy's MaxGapHours.
var ErrGapTooLong = errors.New("timeseries: gap too long to repair")

// ErrAllInvalid is returned (wrapped) by Repair when a series contains no
// valid sample to interpolate from.
var ErrAllInvalid = errors.New("timeseries: no valid samples")

// classify returns the defect class of v, or "" for a valid (finite,
// non-negative) sample.
func classify(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v < 0:
		return "negative"
	}
	return ""
}

// Validate returns a *ValueError for the first NaN, infinite, or negative
// sample, or nil if every sample is finite and non-negative. All of Carbon
// Explorer's physical series (demand, generation, carbon intensity) must
// satisfy this.
func (s Series) Validate() error {
	for i, v := range s.values {
		if reason := classify(v); reason != "" {
			return &ValueError{Index: i, Value: v, Reason: reason}
		}
	}
	return nil
}

// ValidateFinite returns a *ValueError for the first NaN or infinite
// sample, or nil. Unlike Validate it permits negative samples, for signal
// series (e.g. renewable deficits) that are legitimately signed.
func (s Series) ValidateFinite() error {
	for i, v := range s.values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &ValueError{Index: i, Value: v, Reason: classify(v)}
		}
	}
	return nil
}

// CheckLength returns a wrapped ErrLengthMismatch unless the series has
// exactly n samples.
func (s Series) CheckLength(n int) error {
	if len(s.values) != n {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(s.values), n)
	}
	return nil
}

// RepairPolicy bounds what Repair may fix. The zero value repairs nothing;
// use DefaultRepairPolicy for the standard tolerant-read setting.
type RepairPolicy struct {
	// MaxGapHours is the longest run of invalid samples Repair may fill by
	// interpolation. Longer runs are reported as a wrapped ErrGapTooLong —
	// data that damaged should be fixed at the source, not papered over.
	MaxGapHours int
	// ClampNegative, when set, clamps negative samples to zero instead of
	// treating them as gaps. Small negative readings are common metering
	// noise; large negative runs usually indicate sign errors and are better
	// treated as gaps (leave this false to interpolate them).
	ClampNegative bool
}

// DefaultRepairPolicy fills gaps up to 6 hours and clamps negative noise.
func DefaultRepairPolicy() RepairPolicy {
	return RepairPolicy{MaxGapHours: 6, ClampNegative: true}
}

// RepairOp classifies how Repair altered one sample.
type RepairOp string

// The three repair operations, in the order Repair applies them.
const (
	// OpClamped: a negative sample was raised to zero (policy ClampNegative).
	OpClamped RepairOp = "clamped"
	// OpInterpolated: an interior-gap sample was filled by linear
	// interpolation between its nearest valid neighbours.
	OpInterpolated RepairOp = "interpolated"
	// OpHeld: a sample in a gap touching the series boundary was filled by
	// holding (extending) the nearest valid sample.
	OpHeld RepairOp = "held"
)

// RepairDetail records one altered sample — the audit trail entry for
// tolerant reads of real-world data (e.g. EIA exports), where an operator
// must be able to answer exactly which hours were measured and which were
// reconstructed.
type RepairDetail struct {
	// Hour is the index of the altered sample.
	Hour int
	// Op says how the sample was repaired.
	Op RepairOp
	// Was is the original (invalid) sample; may be NaN or ±Inf.
	Was float64
	// Now is the repaired sample.
	Now float64
}

// RepairReport accounts for every change Repair made, so callers can log or
// surface exactly how the data was altered.
type RepairReport struct {
	// Interpolated is the number of samples filled by linear interpolation
	// (or edge extension at the series boundaries; see Details for the
	// per-hour split between OpInterpolated and OpHeld).
	Interpolated int
	// Clamped is the number of negative samples raised to zero.
	Clamped int
	// Gaps is the number of contiguous invalid runs that were filled.
	Gaps int
	// LongestGap is the length in hours of the longest filled run.
	LongestGap int
	// Details lists every altered sample in hour order — the full audit
	// trail. len(Details) == Interpolated + Clamped.
	Details []RepairDetail
}

// Changed reports whether the repair altered any sample.
func (r RepairReport) Changed() bool { return r.Interpolated > 0 || r.Clamped > 0 }

// Repair returns a copy of the series with invalid samples (NaN, ±Inf, and
// negatives per the policy) repaired, plus an accounting of every change.
// Interior gaps no longer than MaxGapHours are filled by linear
// interpolation between the nearest valid neighbours; gaps touching either
// end of the series extend the nearest valid sample. Longer gaps return a
// wrapped ErrGapTooLong naming the gap, and a series with no valid sample at
// all returns a wrapped ErrAllInvalid.
func (s Series) Repair(p RepairPolicy) (Series, RepairReport, error) {
	out := s.Clone()
	var rep RepairReport

	bad := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return v < 0 && !p.ClampNegative
	}

	if p.ClampNegative {
		for i, v := range out.values {
			if v < 0 && !math.IsInf(v, -1) && !math.IsNaN(v) {
				out.values[i] = 0
				rep.Clamped++
				rep.Details = append(rep.Details, RepairDetail{Hour: i, Op: OpClamped, Was: v, Now: 0})
			}
		}
	}

	for i := 0; i < len(out.values); {
		if !bad(out.values[i]) {
			i++
			continue
		}
		// Found a gap [i, j).
		j := i
		for j < len(out.values) && bad(out.values[j]) {
			j++
		}
		gapLen := j - i
		if gapLen > p.MaxGapHours {
			return Series{}, RepairReport{}, fmt.Errorf(
				"%w: %d invalid samples at hours [%d, %d), policy allows %d",
				ErrGapTooLong, gapLen, i, j, p.MaxGapHours)
		}
		switch {
		case i == 0 && j == len(out.values):
			return Series{}, RepairReport{}, fmt.Errorf(
				"%w: all %d samples invalid", ErrAllInvalid, gapLen)
		case i == 0:
			// Leading gap: hold the first valid sample backwards.
			for k := i; k < j; k++ {
				rep.Details = append(rep.Details, RepairDetail{Hour: k, Op: OpHeld, Was: out.values[k], Now: out.values[j]})
				out.values[k] = out.values[j]
			}
		case j == len(out.values):
			// Trailing gap: hold the last valid sample forwards.
			for k := i; k < j; k++ {
				rep.Details = append(rep.Details, RepairDetail{Hour: k, Op: OpHeld, Was: out.values[k], Now: out.values[i-1]})
				out.values[k] = out.values[i-1]
			}
		default:
			// Interior gap: linear interpolation between the neighbours.
			lo, hi := out.values[i-1], out.values[j]
			for k := i; k < j; k++ {
				frac := float64(k-i+1) / float64(gapLen+1)
				v := lo + (hi-lo)*frac
				rep.Details = append(rep.Details, RepairDetail{Hour: k, Op: OpInterpolated, Was: out.values[k], Now: v})
				out.values[k] = v
			}
		}
		rep.Interpolated += gapLen
		rep.Gaps++
		if gapLen > rep.LongestGap {
			rep.LongestGap = gapLen
		}
		i = j
	}
	// Clamps are recorded in a first pass and gap fills in a second; merge
	// into a single hour-ordered audit trail.
	sort.Slice(rep.Details, func(a, b int) bool { return rep.Details[a].Hour < rep.Details[b].Hour })
	return out, rep, nil
}
