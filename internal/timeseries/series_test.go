package timeseries

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	s := New(10)
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	for i := 0; i < 10; i++ {
		if s.At(i) != 0 {
			t.Fatalf("New series not zero at %d", i)
		}
	}
	if NewYear().Len() != HoursPerYear {
		t.Fatalf("NewYear length wrong")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestFromValuesCopies(t *testing.T) {
	buf := []float64{1, 2, 3}
	s := FromValues(buf)
	buf[0] = 99
	if s.At(0) != 1 {
		t.Fatalf("FromValues aliases caller buffer")
	}
}

func TestValuesReturnsCopy(t *testing.T) {
	s := FromValues([]float64{1, 2})
	v := s.Values()
	v[0] = 42
	if s.At(0) != 1 {
		t.Fatalf("Values() aliases internal buffer")
	}
}

func TestConstantAndGenerate(t *testing.T) {
	c := Constant(5, 3.5)
	if c.Sum() != 17.5 {
		t.Fatalf("Constant sum = %v", c.Sum())
	}
	g := Generate(4, func(h int) float64 { return float64(h * h) })
	want := []float64{0, 1, 4, 9}
	for i, w := range want {
		if g.At(i) != w {
			t.Fatalf("Generate[%d] = %v, want %v", i, g.At(i), w)
		}
	}
}

func TestBinaryOps(t *testing.T) {
	a := FromValues([]float64{1, 2, 3})
	b := FromValues([]float64{10, 20, 30})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(2) != 33 {
		t.Fatalf("Add wrong: %v", sum.Values())
	}
	diff, _ := b.Sub(a)
	if diff.At(0) != 9 {
		t.Fatalf("Sub wrong: %v", diff.Values())
	}
	prod, _ := a.Mul(b)
	if prod.At(1) != 40 {
		t.Fatalf("Mul wrong: %v", prod.Values())
	}
	mn, _ := a.Min(b)
	mx, _ := a.Max(b)
	if mn.At(0) != 1 || mx.At(0) != 10 {
		t.Fatalf("Min/Max wrong")
	}
}

func TestLengthMismatch(t *testing.T) {
	a, b := New(3), New(4)
	if _, err := a.Add(b); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

func TestScaleShiftClamp(t *testing.T) {
	s := FromValues([]float64{-1, 0, 2})
	if got := s.Scale(3).Values(); got[0] != -3 || got[2] != 6 {
		t.Fatalf("Scale wrong: %v", got)
	}
	if got := s.Shift(1).Values(); got[0] != 0 || got[2] != 3 {
		t.Fatalf("Shift wrong: %v", got)
	}
	if got := s.ClampMin(0).Values(); got[0] != 0 || got[2] != 2 {
		t.Fatalf("ClampMin wrong: %v", got)
	}
	if got := s.ClampMax(1).Values(); got[2] != 1 || got[0] != -1 {
		t.Fatalf("ClampMax wrong: %v", got)
	}
	if got := s.PositivePart().Sum(); got != 2 {
		t.Fatalf("PositivePart sum = %v, want 2", got)
	}
}

func TestAggregates(t *testing.T) {
	s := FromValues([]float64{4, -2, 10})
	if s.Sum() != 12 {
		t.Fatalf("Sum = %v", s.Sum())
	}
	if s.Mean() != 4 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.MaxValue() != 10 || s.MinValue() != -2 {
		t.Fatalf("Max/Min wrong")
	}
	empty := New(0)
	if empty.Mean() != 0 || empty.MaxValue() != 0 || empty.MinValue() != 0 {
		t.Fatalf("empty aggregates should be 0")
	}
}

func TestScaleToMax(t *testing.T) {
	s := FromValues([]float64{1, 2, 4})
	scaled := s.ScaleToMax(100)
	if scaled.MaxValue() != 100 {
		t.Fatalf("ScaleToMax max = %v", scaled.MaxValue())
	}
	if scaled.At(0) != 25 {
		t.Fatalf("ScaleToMax not linear: %v", scaled.Values())
	}
	// All-zero series is unchanged rather than producing NaN.
	z := New(3).ScaleToMax(50)
	if z.Sum() != 0 {
		t.Fatalf("ScaleToMax of zero series should stay zero")
	}
}

func TestDailyAggregation(t *testing.T) {
	// Two days: day 0 all ones, day 1 all twos.
	s := Generate(48, func(h int) float64 {
		if h < 24 {
			return 1
		}
		return 2
	})
	if s.Days() != 2 {
		t.Fatalf("Days = %d", s.Days())
	}
	dt := s.DailyTotals()
	if dt.Len() != 2 || dt.At(0) != 24 || dt.At(1) != 48 {
		t.Fatalf("DailyTotals wrong: %v", dt.Values())
	}
	avg := s.AverageDay()
	if avg.Len() != 24 {
		t.Fatalf("AverageDay length %d", avg.Len())
	}
	for h := 0; h < 24; h++ {
		if avg.At(h) != 1.5 {
			t.Fatalf("AverageDay[%d] = %v, want 1.5", h, avg.At(h))
		}
	}
	day1 := s.Day(1)
	if day1.Len() != 24 || day1.At(0) != 2 {
		t.Fatalf("Day(1) wrong")
	}
}

func TestTileDaily(t *testing.T) {
	profile := Generate(24, func(h int) float64 { return float64(h) })
	tiled := profile.TileDaily(50)
	if tiled.Len() != 50 {
		t.Fatalf("TileDaily length %d", tiled.Len())
	}
	if tiled.At(25) != 1 || tiled.At(47) != 23 {
		t.Fatalf("TileDaily values wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("TileDaily on non-24 profile should panic")
		}
	}()
	New(10).TileDaily(20)
}

func TestSliceAndClone(t *testing.T) {
	s := Generate(10, func(h int) float64 { return float64(h) })
	sub := s.Slice(2, 5)
	if sub.Len() != 3 || sub.At(0) != 2 {
		t.Fatalf("Slice wrong: %v", sub.Values())
	}
	c := s.Clone()
	c.Set(0, 99)
	if s.At(0) != 0 {
		t.Fatalf("Clone aliases original")
	}
}

func TestCountWhereAndMap(t *testing.T) {
	s := FromValues([]float64{1, -2, 3, -4})
	neg := s.CountWhere(func(v float64) bool { return v < 0 })
	if neg != 2 {
		t.Fatalf("CountWhere = %d", neg)
	}
	abs := s.Map(math.Abs)
	if abs.Sum() != 10 {
		t.Fatalf("Map sum = %v", abs.Sum())
	}
}

func TestEqual(t *testing.T) {
	a := FromValues([]float64{1, 2})
	b := FromValues([]float64{1, 2.0000001})
	if !a.Equal(b, 1e-3) {
		t.Fatalf("Equal within tolerance should hold")
	}
	if a.Equal(b, 1e-9) {
		t.Fatalf("Equal outside tolerance should fail")
	}
	if a.Equal(New(3), 1) {
		t.Fatalf("different lengths cannot be equal")
	}
}

func TestPropertyScaleToMaxPreservesShape(t *testing.T) {
	// After ScaleToMax, ratios between samples are preserved.
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) || v > 1e9 {
				continue
			}
			vals = append(vals, v)
		}
		if len(vals) < 2 {
			return true
		}
		s := FromValues(vals)
		if s.MaxValue() <= 0 {
			return true
		}
		scaled := s.ScaleToMax(500)
		for i := 0; i < s.Len(); i++ {
			want := s.At(i) / s.MaxValue() * 500
			if math.Abs(scaled.At(i)-want) > 1e-6*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddCommutes(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		sa := FromValues(sanitize(a[:n]))
		sb := FromValues(sanitize(b[:n]))
		ab, err1 := sa.Add(sb)
		ba, err2 := sb.Add(sa)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab.Equal(ba, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sanitize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = x
	}
	return out
}
