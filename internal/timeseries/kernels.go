package timeseries

// This file is the non-allocating tier of the package: flat []float64
// kernels used by hot paths (the sweep evaluator) that must not allocate
// per design. The Series API above it stays copy-on-write; callers that
// opt into this tier take responsibility for buffer ownership.

// Adopt wraps v in a Series without copying. The caller must not mutate v
// through other references while the Series is in use by code that assumes
// Series immutability; scratch-buffer owners (explorer.Evaluator) rely on
// this to present reusable buffers through the read-only Series API.
func Adopt(v []float64) Series { return Series{values: v} }

// Raw returns the series' backing store without copying. The caller must
// treat it as read-only: mutating it breaks every Series sharing the store.
// It exists so allocation-free hot loops (scheduler.SimulateScratch, the
// explorer evaluator's pricing pass) can index samples without a method
// call per element; all other callers should use Values.
func (s Series) Raw() []float64 { return s.values }

// ScaleAddInto adds s[i]*k to dst[i] for every sample and returns the sum
// of the added terms, accumulated in index order so the result is
// bit-identical to Scale(k).Sum(). It panics if dst is shorter than s.
// dst is not zeroed first: callers compose multiple sources into one
// buffer (wind + solar) by chaining calls.
//
//carbonlint:hotpath
func (s Series) ScaleAddInto(dst []float64, k float64) float64 {
	if len(dst) < len(s.values) {
		panic("timeseries: ScaleAddInto destination shorter than series")
	}
	sum := 0.0
	for i, v := range s.values {
		t := v * k
		dst[i] += t
		sum += t
	}
	return sum
}

// Zero sets every element of buf to 0. A tiny helper so scratch owners
// reset buffers without an allocation (the compiler lowers this loop to
// memclr).
//
//carbonlint:hotpath
func Zero(buf []float64) {
	for i := range buf {
		buf[i] = 0
	}
}
