package timeseries

import (
	"math"
	"testing"
)

func TestAdoptAliases(t *testing.T) {
	buf := []float64{1, 2, 3}
	s := Adopt(buf)
	if s.Len() != 3 || s.At(1) != 2 {
		t.Fatalf("Adopt view wrong: len=%d", s.Len())
	}
	buf[1] = 9
	if s.At(1) != 9 {
		t.Fatal("Adopt copied instead of aliasing")
	}
}

// TestScaleAddIntoMatchesScale proves the fused kernel is bit-identical to
// the allocating Scale(k).Sum() composition it replaces.
func TestScaleAddIntoMatchesScale(t *testing.T) {
	src := Generate(500, func(h int) float64 { return math.Sin(float64(h)/7)*3 + 3.1 })
	for _, k := range []float64{0, 0.3, 1, 2.5, 17.25} {
		want := src.Scale(k)
		wantSum := want.Sum()

		dst := make([]float64, src.Len())
		gotSum := src.ScaleAddInto(dst, k)
		if math.Float64bits(gotSum) != math.Float64bits(wantSum) {
			t.Fatalf("k=%v: sum %v != %v", k, gotSum, wantSum)
		}
		for i := range dst {
			if math.Float64bits(dst[i]) != math.Float64bits(want.At(i)) {
				t.Fatalf("k=%v sample %d: %v != %v", k, i, dst[i], want.At(i))
			}
		}
	}
}

// TestScaleAddIntoAccumulates proves chained calls compose like Series.Add:
// adding wind then solar into one buffer matches wind.Add(solar) bitwise,
// because 0+x is exactly x and per-index adds happen in the same order.
func TestScaleAddIntoAccumulates(t *testing.T) {
	a := Generate(100, func(h int) float64 { return float64(h%13) * 0.7 })
	b := Generate(100, func(h int) float64 { return float64(h%7) * 1.3 })
	want, err := a.Scale(2).Add(b.Scale(0.5))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 100)
	a.ScaleAddInto(dst, 2)
	b.ScaleAddInto(dst, 0.5)
	for i := range dst {
		if math.Float64bits(dst[i]) != math.Float64bits(want.At(i)) {
			t.Fatalf("sample %d: %v != %v", i, dst[i], want.At(i))
		}
	}
}

func TestScaleAddIntoShortDstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short destination accepted")
		}
	}()
	Constant(4, 1).ScaleAddInto(make([]float64, 3), 1)
}

func TestZero(t *testing.T) {
	buf := []float64{1, math.NaN(), -3}
	Zero(buf)
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("buf[%d] = %v", i, v)
		}
	}
}

func TestZeroAllocsKernels(t *testing.T) {
	src := Constant(256, 2)
	dst := make([]float64, 256)
	n := testing.AllocsPerRun(100, func() {
		Zero(dst)
		src.ScaleAddInto(dst, 1.5)
		_ = Adopt(dst)
	})
	if n != 0 {
		t.Fatalf("kernel tier allocates: %v allocs/op", n)
	}
}
