package timeseries

import (
	"errors"
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := FromValues([]float64{0, 1, 2.5}).Validate(); err != nil {
		t.Fatalf("valid series rejected: %v", err)
	}
	if err := New(0).Validate(); err != nil {
		t.Fatalf("empty series rejected: %v", err)
	}
	cases := []struct {
		name   string
		values []float64
		index  int
		reason string
	}{
		{"NaN", []float64{1, math.NaN(), 2}, 1, "NaN"},
		{"+Inf", []float64{math.Inf(1)}, 0, "+Inf"},
		{"-Inf", []float64{0, 0, math.Inf(-1)}, 2, "-Inf"},
		{"negative", []float64{1, -0.5}, 1, "negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := FromValues(c.values).Validate()
			var ve *ValueError
			if !errors.As(err, &ve) {
				t.Fatalf("want *ValueError, got %v", err)
			}
			if ve.Index != c.index || ve.Reason != c.reason {
				t.Fatalf("got index %d reason %q, want %d %q", ve.Index, ve.Reason, c.index, c.reason)
			}
		})
	}
}

func TestValidateFinite(t *testing.T) {
	if err := FromValues([]float64{-5, 0, 5}).ValidateFinite(); err != nil {
		t.Fatalf("signed finite series rejected: %v", err)
	}
	err := FromValues([]float64{-5, math.NaN()}).ValidateFinite()
	var ve *ValueError
	if !errors.As(err, &ve) || ve.Index != 1 {
		t.Fatalf("want *ValueError at 1, got %v", err)
	}
}

func TestCheckLength(t *testing.T) {
	if err := New(5).CheckLength(5); err != nil {
		t.Fatalf("matching length rejected: %v", err)
	}
	if err := New(5).CheckLength(6); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

func TestRepairInteriorGap(t *testing.T) {
	s := FromValues([]float64{1, math.NaN(), math.NaN(), math.NaN(), 5})
	got, rep, err := s.Repair(RepairPolicy{MaxGapHours: 3})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	want := FromValues([]float64{1, 2, 3, 4, 5})
	if !got.Equal(want, 1e-9) {
		t.Fatalf("got %v, want %v", got.Values(), want.Values())
	}
	if rep.Interpolated != 3 || rep.Gaps != 1 || rep.LongestGap != 3 {
		t.Fatalf("report %+v", rep)
	}
	if !rep.Changed() {
		t.Fatal("Changed should be true")
	}
	// Original untouched.
	if !math.IsNaN(s.At(1)) {
		t.Fatal("Repair mutated its receiver")
	}
}

func TestRepairEdgeGaps(t *testing.T) {
	s := FromValues([]float64{math.NaN(), math.NaN(), 4, 6, math.Inf(1)})
	got, rep, err := s.Repair(RepairPolicy{MaxGapHours: 2})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	want := FromValues([]float64{4, 4, 4, 6, 6})
	if !got.Equal(want, 1e-9) {
		t.Fatalf("got %v, want %v", got.Values(), want.Values())
	}
	if rep.Gaps != 2 || rep.Interpolated != 3 {
		t.Fatalf("report %+v", rep)
	}
}

func TestRepairClampNegative(t *testing.T) {
	s := FromValues([]float64{1, -0.2, 3})
	got, rep, err := s.Repair(DefaultRepairPolicy())
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got.At(1) != 0 || rep.Clamped != 1 {
		t.Fatalf("got %v, report %+v", got.Values(), rep)
	}
	// Without clamping, negatives interpolate like gaps.
	got, rep, err = s.Repair(RepairPolicy{MaxGapHours: 1})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got.At(1) != 2 || rep.Interpolated != 1 {
		t.Fatalf("got %v, report %+v", got.Values(), rep)
	}
}

func TestRepairGapTooLong(t *testing.T) {
	s := FromValues([]float64{1, math.NaN(), math.NaN(), 4})
	_, _, err := s.Repair(RepairPolicy{MaxGapHours: 1})
	if !errors.Is(err, ErrGapTooLong) {
		t.Fatalf("want ErrGapTooLong, got %v", err)
	}
	// Zero-value policy repairs nothing.
	_, _, err = s.Repair(RepairPolicy{})
	if !errors.Is(err, ErrGapTooLong) {
		t.Fatalf("want ErrGapTooLong under zero policy, got %v", err)
	}
}

func TestRepairAllInvalid(t *testing.T) {
	s := FromValues([]float64{math.NaN(), math.NaN()})
	_, _, err := s.Repair(RepairPolicy{MaxGapHours: 10})
	if !errors.Is(err, ErrAllInvalid) {
		t.Fatalf("want ErrAllInvalid, got %v", err)
	}
}

func TestRepairCleanSeriesUnchanged(t *testing.T) {
	s := FromValues([]float64{1, 2, 3})
	got, rep, err := s.Repair(DefaultRepairPolicy())
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rep.Changed() || !got.Equal(s, 0) {
		t.Fatalf("clean series altered: %v, %+v", got.Values(), rep)
	}
}

// TestRepairDetails: the per-hour audit trail must name every altered
// sample, classify it correctly (clamped vs interpolated vs held), stay in
// hour order, and reconcile with the summary counters.
func TestRepairDetails(t *testing.T) {
	// Hour 0: leading gap (held). Hours 3-4: interior gap (interpolated).
	// Hour 6: negative noise (clamped). Hour 8: trailing gap (held).
	s := FromValues([]float64{math.NaN(), 2, 3, math.NaN(), math.NaN(), 6, -1, 8, math.Inf(1)})
	got, rep, err := s.Repair(DefaultRepairPolicy())
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	want := []struct {
		hour int
		op   RepairOp
		now  float64
	}{
		{0, OpHeld, 2},
		{3, OpInterpolated, 4},
		{4, OpInterpolated, 5},
		{6, OpClamped, 0},
		{8, OpHeld, 8},
	}
	if len(rep.Details) != len(want) {
		t.Fatalf("want %d details, got %d: %+v", len(want), len(rep.Details), rep.Details)
	}
	for i, w := range want {
		d := rep.Details[i]
		if d.Hour != w.hour || d.Op != w.op {
			t.Fatalf("detail %d: want hour %d op %s, got hour %d op %s", i, w.hour, w.op, d.Hour, d.Op)
		}
		if math.Abs(d.Now-w.now) > 1e-12 {
			t.Fatalf("detail %d: want repaired value %v, got %v", i, w.now, d.Now)
		}
		if math.Abs(got.At(d.Hour)-d.Now) > 1e-12 {
			t.Fatalf("detail %d: Now %v disagrees with repaired series %v", i, d.Now, got.At(d.Hour))
		}
	}
	if len(rep.Details) != rep.Interpolated+rep.Clamped {
		t.Fatalf("len(Details)=%d != Interpolated(%d)+Clamped(%d)", len(rep.Details), rep.Interpolated, rep.Clamped)
	}
	// Was preserves the original defect for the audit trail.
	if !math.IsNaN(rep.Details[0].Was) || rep.Details[3].Was != -1 || !math.IsInf(rep.Details[4].Was, 1) {
		t.Fatalf("Was fields lost the original defects: %+v", rep.Details)
	}
}

// TestRepairIdempotent: repairing an already-repaired series must change
// nothing, byte for byte. This is the convergence property tolerant readers
// rely on (ROADMAP: repairing a corrupted file twice is idempotent).
func TestRepairIdempotent(t *testing.T) {
	policies := []RepairPolicy{
		DefaultRepairPolicy(),
		{MaxGapHours: 12, ClampNegative: false},
	}
	series := [][]float64{
		{math.NaN(), 2, 3, math.NaN(), math.NaN(), 6, -0.5, 8, math.Inf(1)},
		{1, math.Inf(-1), 3},
		{-1, -2, 5, math.NaN(), 7},
	}
	for _, p := range policies {
		for _, vals := range series {
			r1, rep1, err := FromValues(vals).Repair(p)
			if err != nil {
				continue // rejected inputs are out of scope for idempotence
			}
			if !rep1.Changed() {
				t.Fatalf("corrupted series %v repaired nothing under %+v", vals, p)
			}
			r2, rep2, err := r1.Repair(p)
			if err != nil {
				t.Fatalf("second repair of %v failed: %v", vals, err)
			}
			if rep2.Changed() || len(rep2.Details) != 0 {
				t.Fatalf("second repair of %v still changed samples: %+v", vals, rep2)
			}
			for i := range vals {
				if r2.At(i) != r1.At(i) {
					t.Fatalf("second repair of %v altered hour %d: %v -> %v", vals, i, r1.At(i), r2.At(i))
				}
			}
		}
	}
}
