package timeseries

import (
	"errors"
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := FromValues([]float64{0, 1, 2.5}).Validate(); err != nil {
		t.Fatalf("valid series rejected: %v", err)
	}
	if err := New(0).Validate(); err != nil {
		t.Fatalf("empty series rejected: %v", err)
	}
	cases := []struct {
		name   string
		values []float64
		index  int
		reason string
	}{
		{"NaN", []float64{1, math.NaN(), 2}, 1, "NaN"},
		{"+Inf", []float64{math.Inf(1)}, 0, "+Inf"},
		{"-Inf", []float64{0, 0, math.Inf(-1)}, 2, "-Inf"},
		{"negative", []float64{1, -0.5}, 1, "negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := FromValues(c.values).Validate()
			var ve *ValueError
			if !errors.As(err, &ve) {
				t.Fatalf("want *ValueError, got %v", err)
			}
			if ve.Index != c.index || ve.Reason != c.reason {
				t.Fatalf("got index %d reason %q, want %d %q", ve.Index, ve.Reason, c.index, c.reason)
			}
		})
	}
}

func TestValidateFinite(t *testing.T) {
	if err := FromValues([]float64{-5, 0, 5}).ValidateFinite(); err != nil {
		t.Fatalf("signed finite series rejected: %v", err)
	}
	err := FromValues([]float64{-5, math.NaN()}).ValidateFinite()
	var ve *ValueError
	if !errors.As(err, &ve) || ve.Index != 1 {
		t.Fatalf("want *ValueError at 1, got %v", err)
	}
}

func TestCheckLength(t *testing.T) {
	if err := New(5).CheckLength(5); err != nil {
		t.Fatalf("matching length rejected: %v", err)
	}
	if err := New(5).CheckLength(6); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

func TestRepairInteriorGap(t *testing.T) {
	s := FromValues([]float64{1, math.NaN(), math.NaN(), math.NaN(), 5})
	got, rep, err := s.Repair(RepairPolicy{MaxGapHours: 3})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	want := FromValues([]float64{1, 2, 3, 4, 5})
	if !got.Equal(want, 1e-9) {
		t.Fatalf("got %v, want %v", got.Values(), want.Values())
	}
	if rep.Interpolated != 3 || rep.Gaps != 1 || rep.LongestGap != 3 {
		t.Fatalf("report %+v", rep)
	}
	if !rep.Changed() {
		t.Fatal("Changed should be true")
	}
	// Original untouched.
	if !math.IsNaN(s.At(1)) {
		t.Fatal("Repair mutated its receiver")
	}
}

func TestRepairEdgeGaps(t *testing.T) {
	s := FromValues([]float64{math.NaN(), math.NaN(), 4, 6, math.Inf(1)})
	got, rep, err := s.Repair(RepairPolicy{MaxGapHours: 2})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	want := FromValues([]float64{4, 4, 4, 6, 6})
	if !got.Equal(want, 1e-9) {
		t.Fatalf("got %v, want %v", got.Values(), want.Values())
	}
	if rep.Gaps != 2 || rep.Interpolated != 3 {
		t.Fatalf("report %+v", rep)
	}
}

func TestRepairClampNegative(t *testing.T) {
	s := FromValues([]float64{1, -0.2, 3})
	got, rep, err := s.Repair(DefaultRepairPolicy())
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got.At(1) != 0 || rep.Clamped != 1 {
		t.Fatalf("got %v, report %+v", got.Values(), rep)
	}
	// Without clamping, negatives interpolate like gaps.
	got, rep, err = s.Repair(RepairPolicy{MaxGapHours: 1})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got.At(1) != 2 || rep.Interpolated != 1 {
		t.Fatalf("got %v, report %+v", got.Values(), rep)
	}
}

func TestRepairGapTooLong(t *testing.T) {
	s := FromValues([]float64{1, math.NaN(), math.NaN(), 4})
	_, _, err := s.Repair(RepairPolicy{MaxGapHours: 1})
	if !errors.Is(err, ErrGapTooLong) {
		t.Fatalf("want ErrGapTooLong, got %v", err)
	}
	// Zero-value policy repairs nothing.
	_, _, err = s.Repair(RepairPolicy{})
	if !errors.Is(err, ErrGapTooLong) {
		t.Fatalf("want ErrGapTooLong under zero policy, got %v", err)
	}
}

func TestRepairAllInvalid(t *testing.T) {
	s := FromValues([]float64{math.NaN(), math.NaN()})
	_, _, err := s.Repair(RepairPolicy{MaxGapHours: 10})
	if !errors.Is(err, ErrAllInvalid) {
		t.Fatalf("want ErrAllInvalid, got %v", err)
	}
}

func TestRepairCleanSeriesUnchanged(t *testing.T) {
	s := FromValues([]float64{1, 2, 3})
	got, rep, err := s.Repair(DefaultRepairPolicy())
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rep.Changed() || !got.Equal(s, 0) {
		t.Fatalf("clean series altered: %v, %+v", got.Values(), rep)
	}
}
