// Package timeseries implements the hourly time-series engine underlying
// Carbon Explorer. All grid supply, datacenter demand, and carbon-intensity
// signals are hourly series covering one simulation year (8760 hours), the
// resolution of the paper's entire analysis (Section 3).
//
// A Series is an immutable-by-convention slice of float64 samples with a
// fixed hourly step. Operations either return new series or are explicitly
// named as in-place mutations.
//
// The package is also the data-quality layer for real-world inputs:
// Validate classifies NaN/Inf/negative samples as typed errors, and Repair
// fills bounded gaps under an explicit RepairPolicy, returning a
// RepairReport whose Details list every altered hour (interpolated,
// clamped, or held) — the audit trail tolerant CSV readers (eiacsv, dcload)
// surface to their callers. Repair is idempotent: repairing a repaired
// series changes nothing.
package timeseries
