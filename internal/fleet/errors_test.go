package fleet

import (
	"errors"
	"math"
	"strings"
	"testing"

	"carbonexplorer/internal/timeseries"
)

func testDC(id string, hours int) DC {
	return DC{
		ID:        id,
		Demand:    timeseries.Constant(hours, 10),
		Renewable: timeseries.Constant(hours, 8),
		GridCI:    timeseries.Constant(hours, 400),
	}
}

func TestBalanceEmptyFleet(t *testing.T) {
	_, err := Balance(nil, Config{MigratableRatio: 0.5})
	if !errors.Is(err, ErrEmptyFleet) {
		t.Fatalf("want ErrEmptyFleet, got %v", err)
	}
}

func TestBalanceEmptySeries(t *testing.T) {
	dcs := []DC{{ID: "a"}, {ID: "b"}}
	_, err := Balance(dcs, Config{MigratableRatio: 0.5})
	if !errors.Is(err, ErrEmptySeries) {
		t.Fatalf("want ErrEmptySeries, got %v", err)
	}
}

func TestBalanceLengthMismatch(t *testing.T) {
	a := testDC("a", 48)
	b := testDC("b", 48)
	b.Renewable = timeseries.Constant(24, 8)
	_, err := Balance([]DC{a, b}, Config{MigratableRatio: 0.5})
	if !errors.Is(err, timeseries.ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
	// The error must name the offending site and series.
	if !strings.Contains(err.Error(), "b") || !strings.Contains(err.Error(), "renewable") {
		t.Fatalf("error does not locate the fault: %v", err)
	}
}

func TestBalanceInvalidSamples(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*DC)
	}{
		{"NaN demand", func(d *DC) { d.Demand.Set(3, math.NaN()) }},
		{"Inf renewable", func(d *DC) { d.Renewable.Set(3, math.Inf(1)) }},
		{"negative grid CI", func(d *DC) { d.GridCI.Set(3, -1) }},
	} {
		a := testDC("a", 24)
		b := testDC("b", 24)
		tc.mutate(&b)
		_, err := Balance([]DC{a, b}, Config{MigratableRatio: 0.5})
		var ve *timeseries.ValueError
		if !errors.As(err, &ve) {
			t.Fatalf("%s: want *ValueError, got %v", tc.name, err)
		}
		if ve.Index != 3 {
			t.Fatalf("%s: fault at index %d, want 3", tc.name, ve.Index)
		}
	}
}

func TestBalanceNegativeCapacity(t *testing.T) {
	a := testDC("a", 24)
	a.CapacityMW = -5
	if _, err := Balance([]DC{a}, Config{MigratableRatio: 0.5}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestBalanceBadConfig(t *testing.T) {
	dcs := []DC{testDC("a", 24)}
	for _, ratio := range []float64{-0.1, 1.5} {
		if _, err := Balance(dcs, Config{MigratableRatio: ratio}); err == nil {
			t.Fatalf("migratable ratio %v accepted", ratio)
		}
	}
}

func TestBalanceZeroCapacityMeansNoCap(t *testing.T) {
	// CapacityMW == 0 is documented as "no cap": surplus sites with zero
	// capacity must still accept migrated load.
	a := testDC("a", 24) // deficit: 10 demand vs 8 renewable
	b := DC{
		ID:        "b",
		Demand:    timeseries.Constant(24, 5),
		Renewable: timeseries.Constant(24, 20),
		GridCI:    timeseries.Constant(24, 100),
		// CapacityMW deliberately zero.
	}
	res, err := Balance([]DC{a, b}, Config{MigratableRatio: 1})
	if err != nil {
		t.Fatalf("Balance: %v", err)
	}
	if res.MigratedMWh == 0 {
		t.Fatal("zero-capacity (uncapped) sink accepted no load")
	}
	if res.CoverageAfterPct < res.CoverageBeforePct {
		t.Fatalf("migration reduced coverage: %.1f%% -> %.1f%%",
			res.CoverageBeforePct, res.CoverageAfterPct)
	}
}

func TestBalanceConservesEnergy(t *testing.T) {
	a := testDC("a", 24)
	b := DC{
		ID:        "b",
		Demand:    timeseries.Constant(24, 5),
		Renewable: timeseries.Constant(24, 20),
		GridCI:    timeseries.Constant(24, 100),
	}
	res, err := Balance([]DC{a, b}, Config{MigratableRatio: 0.5})
	if err != nil {
		t.Fatalf("Balance: %v", err)
	}
	for h := 0; h < 24; h++ {
		before := a.Demand.At(h) + b.Demand.At(h)
		after := res.Loads[0].At(h) + res.Loads[1].At(h)
		if math.Abs(before-after) > 1e-9 {
			t.Fatalf("hour %d: fleet load changed %v -> %v", h, before, after)
		}
	}
}
