package fleet

import (
	"math"
	"testing"
	"testing/quick"

	"carbonexplorer/internal/timeseries"
)

func mkDC(id string, demand, ren []float64, ci float64, cap float64) DC {
	n := len(demand)
	return DC{
		ID:         id,
		Demand:     timeseries.FromValues(demand),
		Renewable:  timeseries.FromValues(ren),
		GridCI:     timeseries.Constant(n, ci),
		CapacityMW: cap,
	}
}

func TestBalanceMovesDeficitToSurplus(t *testing.T) {
	// DC A has a deficit, DC B has surplus and headroom.
	a := mkDC("A", []float64{10}, []float64{0}, 500, 0)
	b := mkDC("B", []float64{10}, []float64{30}, 100, 100)
	res, err := Balance([]DC{a, b}, Config{MigratableRatio: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loads[0].At(0) != 0 || res.Loads[1].At(0) != 20 {
		t.Fatalf("loads after = %v / %v, want 0 / 20", res.Loads[0].At(0), res.Loads[1].At(0))
	}
	if res.MigratedMWh != 10 {
		t.Fatalf("migrated = %v", res.MigratedMWh)
	}
	if res.CoverageAfterPct != 100 {
		t.Fatalf("coverage after = %v, want 100", res.CoverageAfterPct)
	}
	if res.CoverageBeforePct != 50 {
		t.Fatalf("coverage before = %v, want 50", res.CoverageBeforePct)
	}
	if res.CarbonAfter != 0 || res.CarbonBefore <= 0 {
		t.Fatalf("carbon accounting wrong: %v -> %v", res.CarbonBefore, res.CarbonAfter)
	}
}

func TestBalanceRespectsMigratableRatio(t *testing.T) {
	a := mkDC("A", []float64{10}, []float64{0}, 500, 0)
	b := mkDC("B", []float64{0}, []float64{30}, 100, 100)
	res, err := Balance([]DC{a, b}, Config{MigratableRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Loads[0].At(0); math.Abs(got-7) > 1e-9 {
		t.Fatalf("source load = %v, want 7 (only 30%% may move)", got)
	}
}

func TestBalanceRespectsCapacity(t *testing.T) {
	a := mkDC("A", []float64{10}, []float64{0}, 500, 0)
	b := mkDC("B", []float64{8}, []float64{30}, 100, 12) // only 4 MW headroom
	res, err := Balance([]DC{a, b}, Config{MigratableRatio: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Loads[1].At(0); got > 12+1e-9 {
		t.Fatalf("sink exceeded capacity: %v", got)
	}
	if got := res.Loads[0].At(0); math.Abs(got-6) > 1e-9 {
		t.Fatalf("source load = %v, want 6", got)
	}
}

func TestBalancePrefersDirtiestSource(t *testing.T) {
	// Two deficit sites compete for limited surplus; the dirty one should
	// win the migration.
	dirty := mkDC("dirty", []float64{10}, []float64{0}, 800, 0)
	clean := mkDC("clean", []float64{10}, []float64{0}, 50, 0)
	sink := mkDC("sink", []float64{0}, []float64{10}, 100, 10)
	res, err := Balance([]DC{clean, dirty, sink}, Config{MigratableRatio: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Loads[1].At(0); got != 0 {
		t.Fatalf("dirty site should have offloaded fully, has %v", got)
	}
	if got := res.Loads[0].At(0); got != 10 {
		t.Fatalf("clean site should be untouched, has %v", got)
	}
}

func TestBalanceNoSurplusNoMove(t *testing.T) {
	a := mkDC("A", []float64{10}, []float64{5}, 500, 0)
	b := mkDC("B", []float64{10}, []float64{5}, 100, 100)
	res, err := Balance([]DC{a, b}, Config{MigratableRatio: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.MigratedMWh != 0 {
		t.Fatalf("no site had surplus; migrated %v", res.MigratedMWh)
	}
}

func TestBalanceZeroRatioIsNoOp(t *testing.T) {
	a := mkDC("A", []float64{10, 12}, []float64{0, 0}, 500, 0)
	b := mkDC("B", []float64{5, 5}, []float64{40, 40}, 100, 100)
	res, err := Balance([]DC{a, b}, Config{MigratableRatio: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.MigratedMWh != 0 {
		t.Fatalf("zero ratio migrated %v", res.MigratedMWh)
	}
	if res.CoverageBeforePct != res.CoverageAfterPct {
		t.Fatalf("coverage should be unchanged")
	}
}

func TestBalanceValidation(t *testing.T) {
	good := mkDC("A", []float64{1}, []float64{1}, 100, 0)
	if _, err := Balance(nil, Config{}); err == nil {
		t.Fatal("empty fleet should error")
	}
	if _, err := Balance([]DC{good}, Config{MigratableRatio: 2}); err == nil {
		t.Fatal("bad ratio should error")
	}
	bad := good
	bad.Renewable = timeseries.New(5)
	if _, err := Balance([]DC{good, bad}, Config{}); err == nil {
		t.Fatal("length mismatch should error")
	}
	neg := good
	neg.CapacityMW = -1
	if _, err := Balance([]DC{neg}, Config{}); err == nil {
		t.Fatal("negative capacity should error")
	}
	empty := DC{ID: "E", Demand: timeseries.New(0), Renewable: timeseries.New(0), GridCI: timeseries.New(0)}
	if _, err := Balance([]DC{empty}, Config{}); err == nil {
		t.Fatal("empty series should error")
	}
}

func TestPropertyBalanceConservesEnergyAndImproves(t *testing.T) {
	f := func(seedA, seedB, ratioRaw uint8) bool {
		n := 48
		mk := func(seed uint8, ciBase float64) DC {
			d := timeseries.Generate(n, func(h int) float64 { return 5 + float64((h*int(seed+1))%7) })
			r := timeseries.Generate(n, func(h int) float64 { return float64((h * int(seed+3)) % 17) })
			return DC{ID: "x", Demand: d, Renewable: r,
				GridCI: timeseries.Constant(n, ciBase), CapacityMW: 50}
		}
		dcs := []DC{mk(seedA, 400), mk(seedB, 600)}
		cfg := Config{MigratableRatio: float64(ratioRaw%101) / 100}
		res, err := Balance(dcs, cfg)
		if err != nil {
			return false
		}
		// Energy conservation per hour across the fleet.
		for h := 0; h < n; h++ {
			before := dcs[0].Demand.At(h) + dcs[1].Demand.At(h)
			after := res.Loads[0].At(h) + res.Loads[1].At(h)
			if math.Abs(before-after) > 1e-9 {
				return false
			}
		}
		// Migration can only improve (or hold) fleet coverage and carbon.
		return res.CoverageAfterPct >= res.CoverageBeforePct-1e-9 &&
			res.CarbonAfter <= res.CarbonBefore+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
