// Package fleet implements geographic load migration across a fleet of
// datacenters — the spatial counterpart to the paper's temporal
// carbon-aware scheduling (Section 4.3), and the mechanism its related work
// highlights for mitigating curtailment (load migration between datacenters
// follows renewable surpluses across regions; when it is calm in Oregon it
// may be windy in Nebraska and sunny in New Mexico).
//
// Each hour, migratable load moves from datacenters whose renewable supply
// falls short (starting with the site currently facing the dirtiest grid)
// to datacenters with surplus renewable supply and spare server capacity.
package fleet
