package fleet

import (
	"errors"
	"fmt"
	"sort"

	"carbonexplorer/internal/timeseries"
	"carbonexplorer/internal/units"
)

// ErrEmptyFleet is returned by Balance when no datacenters are given.
var ErrEmptyFleet = errors.New("fleet: empty fleet")

// ErrEmptySeries is returned by Balance when the fleet's series have zero
// length.
var ErrEmptySeries = errors.New("fleet: empty series")

// DC is one datacenter in the fleet.
type DC struct {
	// ID labels the datacenter (e.g. the site ID).
	ID string
	// Demand is the hourly load in MW.
	Demand timeseries.Series
	// Renewable is the hourly renewable supply dedicated to this DC in MW.
	Renewable timeseries.Series
	// GridCI is the local grid's hourly carbon intensity in gCO2/kWh.
	GridCI timeseries.Series
	// CapacityMW caps total load the site can host in any hour. Zero means
	// "no headroom beyond its own demand" is NOT implied — zero means no
	// cap.
	CapacityMW float64
}

// validate checks one DC against the fleet's series length. Length
// mismatches wrap timeseries.ErrLengthMismatch; NaN, infinite, or negative
// samples wrap *timeseries.ValueError — one bad hour in one site would
// otherwise silently corrupt the fleet-wide carbon totals.
func (d DC) validate(hours int) error {
	for _, s := range []struct {
		name string
		s    timeseries.Series
	}{
		{"demand", d.Demand}, {"renewable", d.Renewable}, {"grid CI", d.GridCI},
	} {
		if err := s.s.CheckLength(hours); err != nil {
			return fmt.Errorf("fleet: %s %s: %w", d.ID, s.name, err)
		}
		if err := s.s.Validate(); err != nil {
			return fmt.Errorf("fleet: %s %s: %w", d.ID, s.name, err)
		}
	}
	if d.CapacityMW < 0 {
		return fmt.Errorf("fleet: %s negative capacity", d.ID)
	}
	return nil
}

// Config parameterizes migration.
type Config struct {
	// MigratableRatio is the fraction of each hour's load that may move to
	// another site (0 disables migration). Interactive serving traffic can
	// often be re-routed; stateful work cannot.
	MigratableRatio float64
}

// Validate reports the first invalid field, or nil.
func (c Config) Validate() error {
	if c.MigratableRatio < 0 || c.MigratableRatio > 1 {
		return fmt.Errorf("fleet: migratable ratio %v out of [0, 1]", c.MigratableRatio)
	}
	return nil
}

// Result captures a fleet-balancing run.
type Result struct {
	// Loads are the per-DC hourly loads after migration, indexed like the
	// input fleet.
	Loads []timeseries.Series
	// MigratedMWh is total energy moved between sites.
	MigratedMWh float64
	// CoverageBeforePct and CoverageAfterPct are fleet-level 24/7 coverage
	// (fraction of fleet energy covered by local renewable supply) without
	// and with migration.
	CoverageBeforePct float64
	CoverageAfterPct  float64
	// CarbonBefore and CarbonAfter price each site's residual grid draw at
	// its local grid's hourly carbon intensity.
	CarbonBefore units.GramsCO2
	CarbonAfter  units.GramsCO2
}

// Balance runs hour-by-hour geographic load migration over the fleet. All
// series must share one length.
func Balance(dcs []DC, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(dcs) == 0 {
		return Result{}, ErrEmptyFleet
	}
	hours := dcs[0].Demand.Len()
	if hours == 0 {
		return Result{}, ErrEmptySeries
	}
	for _, d := range dcs {
		if err := d.validate(hours); err != nil {
			return Result{}, err
		}
	}

	res := Result{Loads: make([]timeseries.Series, len(dcs))}
	for i, d := range dcs {
		res.Loads[i] = d.Demand.Clone()
	}

	var totalDemand, uncoveredBefore, uncoveredAfter float64
	for h := 0; h < hours; h++ {
		type site struct {
			idx     int
			load    float64
			ren     float64
			ci      float64
			movable float64
		}
		sites := make([]site, len(dcs))
		for i, d := range dcs {
			load := d.Demand.At(h)
			sites[i] = site{
				idx:     i,
				load:    load,
				ren:     d.Renewable.At(h),
				ci:      d.GridCI.At(h),
				movable: load * cfg.MigratableRatio,
			}
			totalDemand += load
			if deficit := load - sites[i].ren; deficit > 0 {
				uncoveredBefore += deficit
				res.CarbonBefore += units.MegaWattHours(deficit).Carbon(units.CarbonIntensity(sites[i].ci))
			}
		}

		// Sources: deficit sites, dirtiest grid first — moving their load
		// saves the most carbon. Sinks: surplus sites, largest surplus
		// first.
		order := make([]*site, len(sites))
		for i := range sites {
			order[i] = &sites[i]
		}
		sort.SliceStable(order, func(a, b int) bool { return order[a].ci > order[b].ci })
		for _, src := range order {
			deficit := src.load - src.ren
			if deficit <= 0 || src.movable <= 0 {
				continue
			}
			move := deficit
			if move > src.movable {
				move = src.movable
			}
			// Fill sinks by descending surplus.
			sinks := make([]*site, 0, len(sites))
			for i := range sites {
				if sites[i].idx != src.idx && sites[i].ren > sites[i].load {
					sinks = append(sinks, &sites[i])
				}
			}
			sort.SliceStable(sinks, func(a, b int) bool {
				return sinks[a].ren-sinks[a].load > sinks[b].ren-sinks[b].load
			})
			for _, dst := range sinks {
				if move <= 0 {
					break
				}
				room := dst.ren - dst.load
				if cap := dcs[dst.idx].CapacityMW; cap > 0 {
					if byCap := cap - dst.load; byCap < room {
						room = byCap
					}
				}
				if room <= 0 {
					continue
				}
				step := move
				if step > room {
					step = room
				}
				src.load -= step
				src.movable -= step
				dst.load += step
				move -= step
				res.MigratedMWh += step
			}
		}

		for i := range sites {
			res.Loads[sites[i].idx].Set(h, sites[i].load)
			if deficit := sites[i].load - sites[i].ren; deficit > 0 {
				uncoveredAfter += deficit
				res.CarbonAfter += units.MegaWattHours(deficit).Carbon(units.CarbonIntensity(sites[i].ci))
			}
		}
	}

	if totalDemand > 0 {
		res.CoverageBeforePct = (1 - uncoveredBefore/totalDemand) * 100
		res.CoverageAfterPct = (1 - uncoveredAfter/totalDemand) * 100
	}
	return res, nil
}
