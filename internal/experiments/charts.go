package experiments

import (
	"carbonexplorer/internal/chart"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/scheduler"
)

// ASCII chart renderings of the figures that are fundamentally line plots,
// complementing the tabular generators. cmd/carbonexplorer and cmd/report
// print these beneath the tables.

// Figure01Chart plots the week of hourly wind and solar generation behind
// Figure 1.
func Figure01Chart() (string, error) {
	y := grid.GenerateYear(cisoProfile())
	start := 100 * 24
	week := 7 * 24
	wind := y.WindShape().Slice(start, start+week)
	solar := y.SolarShape().Slice(start, start+week)
	return chart.Plot([]chart.Line{
		{Name: "wind MW", Values: wind.Values()},
		{Name: "solar MW", Values: solar.Values()},
	}, 96, 14), nil
}

// Figure06Chart plots the average-day hourly carbon intensity of the three
// supply scenarios behind Figure 6.
func Figure06Chart() (string, error) {
	in, err := siteInputs("UT")
	if err != nil {
		return "", err
	}
	site := in.Site
	design := explorer.Design{
		WindMW: site.WindInvestMW, SolarMW: site.SolarInvestMW,
		BatteryMWh: 4 * in.AvgDemandMW(), DoD: 1.0,
		FlexibleRatio: 0.4, ExtraCapacityFrac: 0.25,
	}
	sc, err := in.Intensities(design)
	if err != nil {
		return "", err
	}
	return chart.Plot([]chart.Line{
		{Name: "grid mix g/kWh", Values: sc.GridMix.AverageDay().Values()},
		{Name: "net zero", Values: sc.NetZero.AverageDay().Values()},
		{Name: "24/7", Values: sc.TwentyFourSeven.AverageDay().Values()},
	}, 72, 14), nil
}

// Figure11Chart plots the three-day scheduling illustration behind
// Figure 11: grid carbon intensity (sparkline) and load with/without CAS.
func Figure11Chart() (string, error) {
	in, err := siteInputs("UT")
	if err != nil {
		return "", err
	}
	const days = 3
	start := 120 * 24
	demand := in.Demand.Slice(start, start+days*24)
	demand = demand.Scale(16.0 / demand.Mean())
	signal := in.GridCI.Slice(start, start+days*24)
	shifted, err := scheduler.ShiftDaily(demand, signal, scheduler.Config{
		CapacityMW:    17.6,
		FlexibleRatio: 0.10,
		WindowHours:   24,
	})
	if err != nil {
		return "", err
	}
	plot := chart.Plot([]chart.Line{
		{Name: "power no CAS (MW)", Values: demand.Values()},
		{Name: "power with CAS (MW)", Values: shifted.Values()},
	}, 72, 12)
	return plot + "\n grid CI: " + chart.Spark(signal.Values()) + "\n", nil
}
