// Package experiments regenerates every table and figure of the paper's
// evaluation from Carbon Explorer's models — Table 1's sites through Figure
// 16's battery charge levels — plus the extension studies the CLI exposes
// (cost, robustness, forecasting, multi-year horizon, and others). Each
// Figure/Table function returns a printable Table (and, where useful,
// richer data); the bench harness at the repository root and cmd/report
// both drive these generators.
package experiments
