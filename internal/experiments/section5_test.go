package experiments

import (
	"strconv"
	"testing"

	"carbonexplorer/internal/explorer"
)

func TestFigure09BatterySizing(t *testing.T) {
	tb, err := Figure09()
	if err != nil {
		t.Fatal(err)
	}
	var utMeta, nc float64 = -1, -1
	for _, row := range tb.Rows {
		if row[0] == "UT" && row[1] == "meta" {
			if v, err := strconv.ParseFloat(row[3], 64); err == nil {
				utMeta = v
			}
		}
		if row[0] == "NC" {
			if v, err := strconv.ParseFloat(row[3], 64); err == nil {
				nc = v
			}
		}
	}
	if utMeta < 0 {
		t.Fatal("UT at Meta investments should reach 24/7 with some battery")
	}
	// Paper: ~5 hours for UT at Meta's investments; accept the right order
	// of magnitude.
	if utMeta < 1 || utMeta > 30 {
		t.Errorf("UT battery hours = %v, want single-digit-to-tens", utMeta)
	}
	if nc < 0 {
		t.Fatal("NC with 8x solar should reach 24/7 with battery")
	}
	// Paper: solar-only regions need much larger batteries (~14 h for NC).
	if nc <= utMeta {
		t.Errorf("solar-only NC (%vh) should need more battery than mixed UT (%vh)", nc, utMeta)
	}
}

func TestFigure12ExtraCapacity(t *testing.T) {
	tb, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	reachable := 0
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			continue
		}
		reachable++
		// Paper: 19% to over 100% extra capacity.
		if v < 0 || v > 400 {
			t.Errorf("extra capacity %v%% out of plausible range", v)
		}
	}
	if reachable == 0 {
		t.Fatal("no investment level reached 24/7 via scheduling")
	}
}

func TestFigure14ParetoShape(t *testing.T) {
	_, frontiers, err := Figure14()
	if err != nil {
		t.Fatal(err)
	}
	if len(frontiers) != 3 {
		t.Fatalf("want 3 regions, got %d", len(frontiers))
	}
	for id, frontier := range frontiers {
		if len(frontier) < 2 {
			t.Errorf("%s: degenerate frontier (%d points)", id, len(frontier))
			continue
		}
		for i := 1; i < len(frontier); i++ {
			if frontier[i].Operational >= frontier[i-1].Operational {
				t.Errorf("%s: frontier operational not strictly decreasing", id)
			}
			if frontier[i].Embodied < frontier[i-1].Embodied {
				t.Errorf("%s: frontier embodied not non-decreasing", id)
			}
		}
	}
}

func TestFigure15StrategyOrdering(t *testing.T) {
	// Combined search space is a superset of each single-solution space, so
	// the combined optimum can never be worse; and renewables-only should
	// be the most expensive strategy everywhere (the paper's headline).
	_, rows, err := Figure15([]string{"OR", "UT", "NC"})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[explorer.Strategy]Figure15Row{}
	for _, r := range rows {
		if byKey[r.SiteID] == nil {
			byKey[r.SiteID] = map[explorer.Strategy]Figure15Row{}
		}
		byKey[r.SiteID][r.Strategy] = r
	}
	for id, m := range byKey {
		combined := m[explorer.RenewablesBatteryCAS].Optimal.Total()
		for _, s := range []explorer.Strategy{explorer.RenewablesOnly, explorer.RenewablesBattery, explorer.RenewablesCAS} {
			if combined > m[s].Optimal.Total()+1 {
				t.Errorf("%s: combined optimum (%v) worse than %v (%v)",
					id, combined, s, m[s].Optimal.Total())
			}
		}
		if m[explorer.RenewablesOnly].Optimal.Total() < combined {
			t.Errorf("%s: renewables-only cheaper than combined", id)
		}
	}
	// Solar-only NC: renewables-only coverage is capped well below 100.
	if nc, ok := byKey["NC"]; ok {
		if cov := nc[explorer.RenewablesOnly].Optimal.CoveragePct; cov > 70 {
			t.Errorf("NC renewables-only optimal coverage = %v, expected solar-capped", cov)
		}
	}
}

func TestFigure16ChargeDistribution(t *testing.T) {
	_, hist, err := Figure16()
	if err != nil {
		t.Fatal(err)
	}
	if hist.Total() == 0 {
		t.Fatal("empty SoC histogram")
	}
	// Paper: batteries are often fully charged or fully discharged; the two
	// extreme bins should together hold a substantial share of hours.
	n := len(hist.Counts)
	extremes := hist.Fraction(0) + hist.Fraction(n-1)
	if extremes < 0.25 {
		t.Errorf("extreme-bin mass = %v, want concentration at full/empty", extremes)
	}
}

func TestDoDStudyRuns(t *testing.T) {
	tb, err := DoDStudy([]string{"UT"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 { // site + mean
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var a, b float64
	if _, err := fscan(tb.Rows[0][1], &a); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(tb.Rows[0][2], &b); err != nil {
		t.Fatal(err)
	}
	if a <= 0 || b <= 0 {
		t.Fatalf("optimal totals must be positive: %v %v", a, b)
	}
}

func TestCASGainsPlausible(t *testing.T) {
	tb, err := CASGains([]string{"UT", "NC"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		var gain float64
		if _, err := fscan(row[3], &gain); err != nil {
			t.Fatal(err)
		}
		// Comparing carbon optima: the CAS optimum may trade a little
		// coverage for a lower total, so small negative "gains" are
		// legitimate; large ones would indicate a broken search.
		if gain < -5 {
			t.Errorf("%s: CAS optimum coverage far below renewables optimum: %v", row[0], gain)
		}
		// Paper range is +1 to +22pp; allow up to 30 in the simulation.
		if gain > 35 {
			t.Errorf("%s: implausible gain %v", row[0], gain)
		}
	}
}

func TestTotalReductionNonNegative(t *testing.T) {
	tb, err := TotalReduction([]string{"OR", "UT"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		var red float64
		if _, err := fscan(row[3], &red); err != nil {
			t.Fatal(err)
		}
		// Superset search space: the combined optimum is never worse.
		if red < -0.01 {
			t.Errorf("%s: combined solutions increased total by %v%%", row[0], -red)
		}
	}
}
