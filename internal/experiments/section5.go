package experiments

import (
	"fmt"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/stats"
)

// searchSpace returns the design grid used by the Section 5 experiments:
// coarse enough to run in seconds per site, fine enough to surface the
// paper's qualitative optima.
func searchSpace(in *explorer.Inputs, dod float64) explorer.Space {
	avg := in.AvgDemandMW()
	scale := func(ms ...float64) []float64 {
		out := make([]float64, len(ms))
		for i, m := range ms {
			out[i] = m * avg
		}
		return out
	}
	return explorer.Space{
		WindMW:             scale(0, 1, 2, 4, 8, 14),
		SolarMW:            scale(0, 1, 2, 4, 8, 14),
		BatteryHours:       []float64{0, 2, 4, 8, 14},
		ExtraCapacityFracs: []float64{0, 0.25, 0.5, 1.0},
		DoD:                dod,
		FlexibleRatio:      0.40,
	}
}

// Figure14 reproduces Figure 14: the operational-vs-embodied carbon
// trade-off and its Pareto frontier for the four strategies, in the three
// representative regions, at a 40% flexible workload ratio.
func Figure14() (Table, map[string][]explorer.Outcome, error) {
	t := Table{
		ID:      "Figure 14",
		Caption: "Pareto frontier of operational vs embodied carbon (kt CO2/yr), 40% flexible workloads",
		Columns: []string{"site", "strategy", "operational_kt", "embodied_kt", "coverage_%"},
	}
	frontiers := map[string][]explorer.Outcome{}
	for _, id := range figure7Regions {
		in, err := siteInputs(id)
		if err != nil {
			return Table{}, nil, err
		}
		space := searchSpace(in, 1.0)
		var all []explorer.Outcome
		for _, strat := range explorer.AllStrategies() {
			res, err := in.Search(space, strat)
			if err != nil {
				return Table{}, nil, err
			}
			all = append(all, res.Points...)
			for _, p := range explorer.ParetoFrontier(res.Points) {
				t.AddRow(id, strat.String(), p.Operational.Kilotonnes(), p.Embodied.Kilotonnes(), p.CoveragePct)
			}
		}
		frontiers[id] = explorer.ParetoFrontier(all)
	}
	return t, frontiers, nil
}

// Figure15Row is one bar of Figure 15: a site × strategy carbon-optimal
// design.
type Figure15Row struct {
	SiteID      string
	Class       grid.Class
	Strategy    explorer.Strategy
	Optimal     explorer.Outcome
	PerMWTonnes float64 // total carbon-optimal footprint per MW of DC capacity
}

// Figure15 reproduces Figure 15: for every datacenter location and
// strategy, the total footprint (operational + embodied) of the
// carbon-optimal setting, normalized per MW of datacenter capacity, with
// the achieved 24/7 coverage. sites selects a subset (nil = all 13).
func Figure15(sites []string) (Table, []Figure15Row, error) {
	if sites == nil {
		for _, s := range grid.Sites() {
			sites = append(sites, s.ID)
		}
	}
	t := Table{
		ID:      "Figure 15",
		Caption: "Carbon-optimal total footprint per MW DC capacity (tCO2/yr/MW) and achieved coverage",
		Columns: []string{"site", "class", "strategy", "total_t_per_mw", "operational_kt", "embodied_kt", "coverage_%"},
	}
	var rows []Figure15Row
	for _, id := range sites {
		in, err := siteInputs(id)
		if err != nil {
			return Table{}, nil, err
		}
		space := searchSpace(in, 1.0)
		class := grid.MustProfile(in.Site.BA).Class
		for _, strat := range explorer.AllStrategies() {
			res, err := in.Search(space, strat)
			if err != nil {
				return Table{}, nil, err
			}
			opt := res.Optimal
			perMW := opt.Total().Tonnes() / in.PeakDemandMW()
			cov := fmt.Sprintf("%.1f", opt.CoveragePct)
			if opt.CoveragePct >= 99.995 {
				cov = "100 *"
			}
			t.AddRow(id, class.String(), strat.String(), perMW, opt.Operational.Kilotonnes(), opt.Embodied.Kilotonnes(), cov)
			rows = append(rows, Figure15Row{
				SiteID: id, Class: class, Strategy: strat,
				Optimal: opt, PerMWTonnes: perMW,
			})
		}
	}
	return t, rows, nil
}

// Figure16 reproduces Figure 16: the distribution of battery charge levels
// under the carbon-optimal battery configuration — the paper observes mass
// concentrated at full and empty because the policy maximizes battery use.
func Figure16() (Table, *stats.Histogram, error) {
	in, err := siteInputs("UT")
	if err != nil {
		return Table{}, nil, err
	}
	res, err := in.Search(searchSpace(in, 1.0), explorer.RenewablesBattery)
	if err != nil {
		return Table{}, nil, err
	}
	opt := res.Optimal
	if opt.BatterySoC.Len() == 0 {
		// The optimum happened to use no battery; evaluate a battery design
		// explicitly for the distribution.
		opt, err = in.Evaluate(explorer.Design{
			WindMW: 4 * in.AvgDemandMW(), SolarMW: 4 * in.AvgDemandMW(),
			BatteryMWh: 4 * in.AvgDemandMW(), DoD: 1.0,
		})
		if err != nil {
			return Table{}, nil, err
		}
	}
	hist := stats.NewHistogram(0, 1, 10)
	for h := 0; h < opt.BatterySoC.Len(); h++ {
		hist.Observe(opt.BatterySoC.At(h))
	}
	t := Table{
		ID:      "Figure 16",
		Caption: "Battery charge-level distribution under the carbon-optimal configuration (UT)",
		Columns: []string{"soc_bin_center", "fraction_of_hours_%"},
	}
	for i := range hist.Counts {
		t.AddRow(hist.BinCenter(i), hist.Fraction(i)*100)
	}
	t.AddRow("cycles/day", opt.BatteryCyclesPerDay)
	return t, hist, nil
}

// DoDStudy reproduces the Section 5.2 depth-of-discharge analysis:
// comparing 100% and 80% DoD carbon-optimal designs per region (paper:
// 80% DoD increases battery embodied ~43% but lowers total carbon ~5% on
// average; tuning DoD helps 3–9%).
func DoDStudy(sites []string) (Table, error) {
	if sites == nil {
		sites = figure7Regions
	}
	t := Table{
		ID:      "DoD study (Section 5.2)",
		Caption: "Carbon-optimal totals at 100% vs 80% battery depth of discharge",
		Columns: []string{"site", "total_100dod_kt", "total_80dod_kt", "delta_%"},
	}
	var deltas []float64
	for _, id := range sites {
		in, err := siteInputs(id)
		if err != nil {
			return Table{}, err
		}
		full, err := in.Search(searchSpace(in, 1.0), explorer.RenewablesBattery)
		if err != nil {
			return Table{}, err
		}
		shallow, err := in.Search(searchSpace(in, 0.8), explorer.RenewablesBattery)
		if err != nil {
			return Table{}, err
		}
		a := full.Optimal.Total().Kilotonnes()
		b := shallow.Optimal.Total().Kilotonnes()
		delta := (a - b) / a * 100
		deltas = append(deltas, delta)
		t.AddRow(id, a, b, delta)
	}
	t.AddRow("mean", "", "", stats.Summarize(deltas).Mean)
	return t, nil
}

// CASGains reproduces the Section 4.3/5.2 scheduling statistics: the
// coverage gain carbon-aware scheduling adds over renewables alone, and the
// extra server capacity the optimal CAS design provisions (paper: +1–22%
// coverage, 6–76% extra servers at 40% flexible workloads).
func CASGains(sites []string) (Table, error) {
	if sites == nil {
		for _, s := range grid.Sites() {
			sites = append(sites, s.ID)
		}
	}
	t := Table{
		ID:      "CAS gains (Sections 4.3, 5.2)",
		Caption: "Coverage gain and provisioned extra capacity at the carbon-optimal CAS design, 40% flexible",
		Columns: []string{"site", "coverage_renewables_%", "coverage_with_cas_%", "gain_pp", "provisioned_extra_%"},
	}
	for _, id := range sites {
		in, err := siteInputs(id)
		if err != nil {
			return Table{}, err
		}
		space := searchSpace(in, 1.0)
		ren, err := in.Search(space, explorer.RenewablesOnly)
		if err != nil {
			return Table{}, err
		}
		cas, err := in.Search(space, explorer.RenewablesCAS)
		if err != nil {
			return Table{}, err
		}
		base, opt := ren.Optimal, cas.Optimal
		t.AddRow(id, base.CoveragePct, opt.CoveragePct,
			opt.CoveragePct-base.CoveragePct, opt.Design.ExtraCapacityFrac*100)
	}
	return t, nil
}

// TotalReduction reproduces the paper's summary claim: batteries plus
// carbon-aware scheduling reduce the carbon-optimal total footprint by
// 15–65% relative to renewables alone, depending on region.
func TotalReduction(sites []string) (Table, error) {
	if sites == nil {
		for _, s := range grid.Sites() {
			sites = append(sites, s.ID)
		}
	}
	t := Table{
		ID:      "Total footprint reduction (Section 5.2)",
		Caption: "Carbon-optimal total: renewables only vs all solutions combined",
		Columns: []string{"site", "renewables_only_kt", "all_solutions_kt", "reduction_%"},
	}
	for _, id := range sites {
		in, err := siteInputs(id)
		if err != nil {
			return Table{}, err
		}
		space := searchSpace(in, 1.0)
		ren, err := in.Search(space, explorer.RenewablesOnly)
		if err != nil {
			return Table{}, err
		}
		all, err := in.Search(space, explorer.RenewablesBatteryCAS)
		if err != nil {
			return Table{}, err
		}
		a := ren.Optimal.Total().Kilotonnes()
		b := all.Optimal.Total().Kilotonnes()
		t.AddRow(id, a, b, (a-b)/a*100)
	}
	return t, nil
}
