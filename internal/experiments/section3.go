package experiments

import (
	"fmt"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/dcload"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/stats"
	"carbonexplorer/internal/timeseries"
)

// Figure01 reproduces the paper's motivating Figure 1: hourly wind and
// solar generation on a California-like grid over one week, quantifying the
// swing between the best and worst hours of combined renewable supply
// (the paper highlights a >3× swing).
func Figure01() (Table, error) {
	y := grid.GenerateYear(cisoProfile())
	// A spring week (day 100) shows both strong solar and variable wind.
	start := 100 * 24
	week := 7 * 24
	wind := y.WindShape().Slice(start, start+week)
	solar := y.SolarShape().Slice(start, start+week)
	total, err := wind.Add(solar)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "Figure 1",
		Caption: "Hourly wind and solar generation (MW), one week, California-like grid",
		Columns: []string{"hour", "wind_mw", "solar_mw", "total_mw"},
	}
	for h := 0; h < week; h++ {
		t.AddRow(h, wind.At(h), solar.At(h), total.At(h))
	}
	// Summary row: the hourly swing the paper annotates (">3x") — the ratio
	// of the week's best combined-renewables hour to its worst.
	swing := total.MaxValue() / maxF(total.MinValue(), 1)
	t.AddRow("best/worst hour", "", "", fmt.Sprintf("%.1fx", swing))
	return t, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Table01 reproduces Table 1: Meta's datacenter locations and regional
// renewable investments.
func Table01() Table {
	t := Table{
		ID:      "Table 1",
		Caption: "Meta's datacenter locations and regional renewable investments (MW)",
		Columns: []string{"site", "location", "BA", "class", "solar_mw", "wind_mw", "total_mw"},
	}
	var solar, wind float64
	for _, s := range grid.Sites() {
		p := grid.MustProfile(s.BA)
		t.AddRow(s.ID, s.Name, s.BA, p.Class.String(), s.SolarInvestMW, s.WindInvestMW, s.InvestTotalMW())
		solar += s.SolarInvestMW
		wind += s.WindInvestMW
	}
	t.AddRow("Total", "", "", "", solar, wind, solar+wind)
	return t
}

// Figure03 reproduces Figure 3: diurnal CPU-utilization fluctuation, the
// much flatter power profile, and the utilization–power correlation of the
// linear energy-proportionality model.
func Figure03() (Table, error) {
	trace, err := dcload.Generate(dcload.DefaultParams(50), timeseries.HoursPerYear)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "Figure 3",
		Caption: "Datacenter demand characteristics (paper: ~20% util swing, ~4% power swing, tight linear correlation)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("avg daily CPU utilization swing (points)", fmt.Sprintf("%.1f", trace.DailyUtilSwing()*100))
	t.AddRow("avg daily power swing (% of max)", fmt.Sprintf("%.1f", trace.DailyPowerSwing()*100))
	t.AddRow("utilization-power Pearson correlation", fmt.Sprintf("%.4f", trace.UtilPowerCorrelation()))
	avg := trace.Util.AverageDay()
	for h := 0; h < 24; h++ {
		t.AddRow(fmt.Sprintf("mean util at hour %02d (%%)", h), fmt.Sprintf("%.1f", avg.At(h)*100))
	}
	return t, nil
}

// Table02 reproduces Table 2: lifecycle carbon efficiency of energy
// sources.
func Table02() Table {
	t := Table{
		ID:      "Table 2",
		Caption: "Carbon efficiency of energy sources (gCO2eq/kWh)",
		Columns: []string{"source", "gCO2eq/kWh"},
	}
	for _, s := range carbon.AllSources() {
		t.AddRow(s.String(), float64(s.Intensity()))
	}
	return t
}

// Figure04 reproduces Figure 4: wind and solar curtailment growing with the
// grid's renewable deployment across calendar years, with a linear
// trendline.
func Figure04() (Table, error) {
	labels := []string{"2015", "2016", "2017", "2018", "2019", "2020", "2021"}
	// Renewable capacity multipliers retracing California's build-out;
	// 2021 (scale 1.0 of the modern grid) reaches ~33% renewable share.
	scales := []float64{0.25, 0.35, 0.45, 0.55, 0.70, 0.85, 1.0}
	pts := grid.CurtailmentStudy(cisoProfile(), labels, scales)

	t := Table{
		ID:      "Figure 4",
		Caption: "Curtailed renewable energy share vs renewable deployment (paper: rising to ~6% by 2021)",
		Columns: []string{"year", "renewable_share_%", "curtailed_%"},
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		t.AddRow(p.Label, p.RenewableShare*100, p.CurtailedFraction*100)
		xs[i] = float64(i)
		ys[i] = p.CurtailedFraction * 100
	}
	fit := stats.FitLine(xs, ys)
	t.AddRow("trendline slope (pp/year)", "", fmt.Sprintf("%.2f", fit.Slope))
	return t, nil
}

// Figure05Region summarizes one region for Figure 5.
type Figure05Region struct {
	BA             string
	AvgDayWind     timeseries.Series
	AvgDaySolar    timeseries.Series
	DailyHistogram *stats.Histogram
	Top10OverMean  float64
	Bottom10Share  float64
}

// Figure05 reproduces Figure 5: average-day wind/solar profiles and the
// histogram of total daily renewable generation for the three
// representative regions (BPAT wind, DUK solar, PACE mixed).
func Figure05() (Table, []Figure05Region, error) {
	regions := []string{"BPAT", "DUK", "PACE"}
	t := Table{
		ID:      "Figure 5",
		Caption: "Average-day generation and day-to-day variability by region",
		Columns: []string{"BA", "class", "avg_daily_renewables_MWh", "best10_over_mean", "worst10_share_of_mean", "histogram_mode_MWh"},
	}
	var details []Figure05Region
	for _, code := range regions {
		p := grid.MustProfile(code)
		y := grid.GenerateYear(p)
		wind := y.WindShape()
		solar := y.SolarShape()
		combined, err := wind.Add(solar)
		if err != nil {
			return Table{}, nil, err
		}
		daily := combined.DailyTotals().Values()
		s := stats.Summarize(daily)
		top := stats.MeanOfTopK(daily, 10) / s.Mean
		bottom := stats.MeanOfBottomK(daily, 10) / s.Mean
		hist := stats.HistogramOf(daily, 12)
		t.AddRow(code, p.Class.String(), s.Mean, fmt.Sprintf("%.2f", top), fmt.Sprintf("%.2f", bottom), hist.Mode())
		details = append(details, Figure05Region{
			BA:             code,
			AvgDayWind:     wind.AverageDay(),
			AvgDaySolar:    solar.AverageDay(),
			DailyHistogram: hist,
			Top10OverMean:  top,
			Bottom10Share:  bottom,
		})
	}
	return t, details, nil
}

// Figure06 reproduces Figure 6: hourly operational carbon intensity of the
// grid mix, Net Zero, and 24/7 supply scenarios for the Utah datacenter at
// Meta's regional investment levels.
func Figure06() (Table, error) {
	in, err := siteInputs("UT")
	if err != nil {
		return Table{}, err
	}
	site := in.Site
	design := explorer.Design{
		WindMW: site.WindInvestMW, SolarMW: site.SolarInvestMW,
		BatteryMWh: 4 * in.AvgDemandMW(), DoD: 1.0,
		FlexibleRatio: 0.4, ExtraCapacityFrac: 0.25,
	}
	sc, err := in.Intensities(design)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "Figure 6",
		Caption: "Hourly operational carbon intensity by DC energy-supply scenario (gCO2/kWh, average day)",
		Columns: []string{"hour", "grid_mix", "net_zero", "24/7"},
	}
	gm := sc.GridMix.AverageDay()
	nz := sc.NetZero.AverageDay()
	tf := sc.TwentyFourSeven.AverageDay()
	for h := 0; h < 24; h++ {
		t.AddRow(h, gm.At(h), nz.At(h), tf.At(h))
	}
	t.AddRow("mean", gm.Mean(), nz.Mean(), tf.Mean())
	return t, nil
}
