package experiments

import (
	"sync"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/synth"
)

// inputs are expensive to build (a full grid-year simulation per site), and
// many experiments share sites, so they are cached for the process lifetime.
// Evaluate treats inputs as read-only, making the cache safe to share.
var (
	cacheMu    sync.Mutex
	inputCache = map[string]*explorer.Inputs{}
)

// SiteInputs returns process-lifetime-cached evaluation inputs for one of
// the paper's sites, built with the default demand and embodied models. The
// first call per site simulates a full grid year; every later call — from
// any experiment generator or from the serving layer pricing checkpoint
// designs — returns the same immutable *Inputs. Callers must treat the
// result as read-only, which is what makes the cache safe to share across
// goroutines.
func SiteInputs(id string) (*explorer.Inputs, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if in, ok := inputCache[id]; ok {
		return in, nil
	}
	site, err := grid.SiteByID(id)
	if err != nil {
		return nil, err
	}
	in, err := explorer.NewInputs(site)
	if err != nil {
		return nil, err
	}
	inputCache[id] = in
	return in, nil
}

// siteInputs is the historical unexported spelling used throughout the
// experiment generators.
func siteInputs(id string) (*explorer.Inputs, error) { return SiteInputs(id) }

// cisoProfile is a California-ISO-like grid used by Figures 1 and 4: a
// hybrid grid with heavy solar, meaningful wind, and a high renewable share
// (33% in 2021 vs the 20% U.S. average), which is what makes its midday
// oversupply and curtailment pronounced.
func cisoProfile() grid.BAProfile {
	return grid.BAProfile{
		Code: "CISO", Name: "California ISO (motivating example)", Class: grid.Hybrid,
		LatitudeDeg: 36.5,
		WindMW:      13000, SolarMW: 32000, GasMW: 26000, CoalMW: 0, NuclearMW: 2200, HydroMW: 8000, OtherMW: 4000,
		PeakDemandMW: 35500,
		Wind: synth.WindParams{
			MeanCF: 0.30, Volatility: 0.28, Reversion: 0.03,
			CalmSpellsPerYear: 12, CalmSpellMeanHours: 30, SeasonalAmplitude: 0.2,
		},
		Solar: synth.SolarParams{LatitudeDeg: 36.5, Clearness: 0.75, CloudPersistence: 0.5, CloudVolatility: 0.13},
		Seed:  201,
	}
}
