package experiments

import (
	"fmt"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/cost"
	"carbonexplorer/internal/dcload"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/fleet"
	"carbonexplorer/internal/forecast"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/horizon"
	"carbonexplorer/internal/jobsim"
	"carbonexplorer/internal/netzero"
	"carbonexplorer/internal/scheduler"
	"carbonexplorer/internal/stats"
	"carbonexplorer/internal/synth"
	"carbonexplorer/internal/timeseries"
	"carbonexplorer/internal/workload"
)

// The studies in this file go beyond the paper's evaluation, exercising the
// extensions its discussion section sketches: forecast-driven (online)
// scheduling, alternative storage chemistries, and ablations of Carbon
// Explorer's own design choices.

// ForecastStudy compares carbon-aware scheduling driven by an oracle (the
// paper's offline setting) against scheduling driven by real forecasters,
// quantifying how much of the offline coverage gain survives prediction
// error. It also reports each forecaster's raw accuracy on the renewable
// supply series.
func ForecastStudy(siteID string) (Table, error) {
	in, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	avg := in.AvgDemandMW()
	renewable := in.RenewableSupply(4*avg, 4*avg)
	demand := in.Demand

	baseCov, err := explorer.Coverage(demand, renewable)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "Forecast study (extension)",
		Caption: fmt.Sprintf("Online vs oracle carbon-aware scheduling, %s, 40%% flexible (baseline coverage %.2f%%)", siteID, baseCov),
		Columns: []string{"forecaster", "rmse_mw", "coverage_%", "gain_vs_no_cas_pp", "share_of_oracle_gain_%"},
	}

	cfg := scheduler.Config{
		CapacityMW:    in.PeakDemandMW() * 1.5,
		FlexibleRatio: 0.40,
		WindowHours:   24,
	}

	// Oracle first: it bounds the achievable gain.
	oracleCov, err := shiftedCoverage(demand, renewable, renewable, cfg)
	if err != nil {
		return Table{}, err
	}
	oracleGain := oracleCov - baseCov

	forecasters := []forecast.Forecaster{
		forecast.Persistence{},
		forecast.SeasonalMean{},
		forecast.HoltWinters{},
	}
	t.AddRow("oracle", 0.0, oracleCov, oracleGain, 100.0)
	for _, f := range forecasters {
		predicted := rollingForecast(f, renewable)
		cov, err := shiftedCoverage(demand, renewable, predicted, cfg)
		if err != nil {
			return Table{}, err
		}
		acc := forecast.Evaluate(f, renewable.Values(), 14)
		share := 0.0
		if oracleGain > 0 {
			share = (cov - baseCov) / oracleGain * 100
		}
		t.AddRow(f.Name(), acc.RMSE, cov, cov-baseCov, share)
	}
	return t, nil
}

// rollingForecast builds a full-year predicted series by forecasting each
// day from the history before it; the first day falls back to actuals
// (there is no history to predict from).
func rollingForecast(f forecast.Forecaster, actual timeseries.Series) timeseries.Series {
	n := actual.Len()
	out := timeseries.New(n)
	vals := actual.Values()
	for h := 0; h < n && h < 24; h++ {
		out.Set(h, vals[h])
	}
	for start := 24; start < n; start += 24 {
		horizon := 24
		if start+horizon > n {
			horizon = n - start
		}
		fc := f.Forecast(vals[:start], horizon)
		for i := 0; i < horizon; i++ {
			out.Set(start+i, fc[i])
		}
	}
	return out
}

// shiftedCoverage shifts demand against the deficit signal computed from
// the predicted supply, then scores coverage against the actual supply.
func shiftedCoverage(demand, actual, predicted timeseries.Series, cfg scheduler.Config) (float64, error) {
	signal, err := scheduler.DeficitSignal(demand, predicted)
	if err != nil {
		return 0, err
	}
	shifted, err := scheduler.ShiftDaily(demand, signal, cfg)
	if err != nil {
		return 0, err
	}
	return explorer.Coverage(shifted, actual)
}

// NetZeroStudy quantifies the gap between Net Zero accounting and 24/7
// reality (Section 3.2): for each site at Meta's actual investment levels,
// the annual credit ratio and the fraction of energy matched when the
// accounting window shrinks from annual to hourly.
func NetZeroStudy(sites []string) (Table, error) {
	if sites == nil {
		for _, s := range grid.Sites() {
			sites = append(sites, s.ID)
		}
	}
	t := Table{
		ID:      "Net Zero vs 24/7 study (Section 3.2)",
		Caption: "Credit matching at Meta's investments as the accounting window shrinks",
		Columns: []string{"site", "annual_credit_ratio", "annual_%", "monthly_%", "daily_%", "hourly_%"},
	}
	for _, id := range sites {
		in, err := siteInputs(id)
		if err != nil {
			return Table{}, err
		}
		credits := in.RenewableSupply(in.Site.WindInvestMW, in.Site.SolarInvestMW)
		s, err := netzero.Summarize(in.Demand, credits)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(id, s.AnnualMatchRatio,
			s.ByPeriod[netzero.Annual]*100, s.ByPeriod[netzero.Monthly]*100,
			s.ByPeriod[netzero.Daily]*100, s.ByPeriod[netzero.Hourly]*100)
	}
	return t, nil
}

// BatteryTechStudy compares the carbon-optimal battery designs across
// storage chemistries for one site — the modular-technology analysis the
// paper's Section 4.2 API anticipates (LFP vs NMC vs sodium-ion).
func BatteryTechStudy(siteID string) (Table, error) {
	in, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	avg := in.AvgDemandMW()
	t := Table{
		ID:      "Battery technology study (extension)",
		Caption: fmt.Sprintf("Storage chemistries at wind 4x / solar 4x / battery 6h, %s", siteID),
		Columns: []string{"chemistry", "coverage_%", "operational_t", "battery_embodied_t", "total_t"},
	}
	for _, tech := range battery.AllTechnologies() {
		o, err := in.Evaluate(explorer.Design{
			WindMW: 4 * avg, SolarMW: 4 * avg,
			BatteryMWh: 6 * avg, DoD: 0.9, BatteryTech: tech,
		})
		if err != nil {
			return Table{}, err
		}
		t.AddRow(tech.String(), o.CoveragePct, o.Operational.Tonnes(),
			o.EmbodiedBattery.Tonnes(), o.Total().Tonnes())
	}
	return t, nil
}

// TieredSchedulingStudy compares the paper's uniform flexible-ratio
// scheduling against tier-aware scheduling where each Figure 10 SLO class
// defers within its own window (±2h, ±4h, daily, weekly). The uniform 40%
// setting approximates Borg's flexible share; the tiered setting asks what
// changes when deferral windows reflect actual SLOs.
func TieredSchedulingStudy(siteID string) (Table, error) {
	in, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	avg := in.AvgDemandMW()
	renewable := in.RenewableSupply(4*avg, 4*avg)
	cap := in.PeakDemandMW() * 1.5

	t := Table{
		ID:      "Tiered scheduling study (extension)",
		Caption: fmt.Sprintf("Uniform vs SLO-tiered deferral windows, %s, wind 4x / solar 4x", siteID),
		Columns: []string{"policy", "coverage_%", "grid_energy_GWh", "forced_deadline_MWh"},
	}

	none, err := scheduler.Simulate(scheduler.SimConfig{Demand: in.Demand, Renewable: renewable})
	if err != nil {
		return Table{}, err
	}
	t.AddRow("no scheduling", explorer.CoverageFromGridDraw(none.GridDraw.Sum(), in.Demand.Sum()),
		none.GridDraw.Sum()/1000, none.ForcedDeadlineMWh)

	uniform, err := scheduler.Simulate(scheduler.SimConfig{
		Demand: in.Demand, Renewable: renewable,
		FlexibleRatio: 0.40, CapacityMW: cap, DeferralWindowHours: 24,
	})
	if err != nil {
		return Table{}, err
	}
	t.AddRow("uniform 40% / 24h window", explorer.CoverageFromGridDraw(uniform.GridDraw.Sum(), in.Demand.Sum()),
		uniform.GridDraw.Sum()/1000, uniform.ForcedDeadlineMWh)

	tiered, err := scheduler.SimulateTiered(scheduler.TieredConfig{
		Demand: in.Demand, Renewable: renewable,
		Tiers: scheduler.DefaultTiers(), CapacityMW: cap,
		DeferrableShareOfFleet: 0.40,
	})
	if err != nil {
		return Table{}, err
	}
	t.AddRow("SLO-tiered windows (40% of fleet)", explorer.CoverageFromGridDraw(tiered.GridDraw.Sum(), in.Demand.Sum()),
		tiered.GridDraw.Sum()/1000, tiered.ForcedDeadlineMWh)

	for _, ts := range scheduler.DefaultTiers() {
		t.AddRow(fmt.Sprintf("  deferred by %s (MWh)", ts.Tier), tiered.DeferredByTier[ts.Tier], "", "")
	}
	return t, nil
}

// JobSimStudy validates the fluid MW-level scheduling abstraction with a
// job-level discrete-event simulation: a Borg-like trace runs on a server
// fleet against real renewable supply, comparing a carbon-oblivious FIFO
// policy with a defer-to-green policy, and reporting the job-level costs
// (wait time, SLO pressure) the fluid model cannot see.
func JobSimStudy(siteID string) (Table, error) {
	in, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	const days = 90
	hours := days * 24

	// Scale the site's renewable shape to a small dedicated cluster:
	// 2000 slots × 1 kW with a 1 MW idle floor, supply peaking near 4 MW.
	renewable := in.RenewableSupply(2*in.AvgDemandMW(), 2*in.AvgDemandMW()).
		Slice(0, hours).ScaleToMax(4)
	gridCI := in.GridCI.Slice(0, hours)

	jobs := workload.GenerateTrace(workload.TraceParams{
		JobsPerHour: 30, MeanDurationHours: 3, MeanPowerMW: 0.004, Seed: 11,
	}, hours-72)

	t := Table{
		ID:      "Job-level simulation study (extension)",
		Caption: fmt.Sprintf("Discrete-event job scheduling vs carbon, %s supply shape, %d days", siteID, days),
		Columns: []string{"policy", "carbon_t", "renewable_share_%", "avg_wait_h", "slo_violations", "completed"},
	}
	for _, policy := range []jobsim.Policy{jobsim.RunImmediately, jobsim.DeferToGreen} {
		stats, err := jobsim.Run(jobs, jobsim.Config{
			Servers:       2000,
			ServerPowerMW: 0.001,
			IdlePowerMW:   1.0,
			Renewable:     renewable,
			GridCI:        gridCI,
			Policy:        policy,
		})
		if err != nil {
			return Table{}, err
		}
		share := 0.0
		if total := stats.GridEnergyMWh + stats.RenewableUsedMWh; total > 0 {
			share = stats.RenewableUsedMWh / total * 100
		}
		t.AddRow(policy.String(), stats.Carbon.Tonnes(), share,
			stats.AvgWaitHours, stats.SLOViolations, stats.Completed)
	}
	return t, nil
}

// DispatchStudy compares the paper's greedy battery policy (charge on every
// surplus, discharge on every deficit) against the offline-optimal dispatch
// computed by dynamic programming with full knowledge of the year — the
// "custom battery charge-discharge policies" question from the paper's
// discussion. The objective is carbon-weighted grid energy.
func DispatchStudy(siteID string, batteryHours float64) (Table, error) {
	in, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	avg := in.AvgDemandMW()
	renewable := in.RenewableSupply(4*avg, 4*avg)
	diff, err := in.Demand.Sub(renewable)
	if err != nil {
		return Table{}, err
	}
	deficit := diff.PositivePart()
	surplus := diff.Scale(-1).PositivePart()

	problem := battery.DispatchProblem{
		Deficit:   deficit.Values(),
		Surplus:   surplus.Values(),
		Price:     in.GridCI.Values(),
		Params:    battery.LFP(batteryHours*avg, 1.0),
		SoCLevels: 200,
	}
	greedy, err := problem.Greedy()
	if err != nil {
		return Table{}, err
	}
	optimal, err := problem.Optimal()
	if err != nil {
		return Table{}, err
	}

	// Rolling-horizon (MPC) variants: plan each day on a 48h window, with
	// either perfect or seasonal-mean forecasts of the renewable supply.
	deficitVals := deficit.Values()
	surplusVals := surplus.Values()
	priceVals := in.GridCI.Values()
	demandVals := in.Demand.Values()
	renewableVals := renewable.Values()

	oracle := battery.RollingConfig{
		Params: problem.Params,
		Predict: func(start, h int) ([]float64, []float64, []float64) {
			return deficitVals[start : start+h], surplusVals[start : start+h], priceVals[start : start+h]
		},
	}
	rollingOracle, err := battery.RunRolling(oracle, deficitVals, surplusVals, priceVals)
	if err != nil {
		return Table{}, err
	}

	sm := forecast.SeasonalMean{}
	forecasted := battery.RollingConfig{
		Params:   problem.Params,
		Reactive: true,
		Predict: func(start, h int) ([]float64, []float64, []float64) {
			// The DC knows its own demand; the renewable supply and grid
			// intensity are forecast from history.
			predRen := sm.Forecast(renewableVals[:start], h)
			predCI := sm.Forecast(priceVals[:start], h)
			d := make([]float64, h)
			s := make([]float64, h)
			for i := 0; i < h; i++ {
				diff := demandVals[start+i] - predRen[i]
				if diff > 0 {
					d[i] = diff
				} else {
					s[i] = -diff
				}
			}
			return d, s, predCI
		},
	}
	rollingForecasted, err := battery.RunRolling(forecasted, deficitVals, surplusVals, priceVals)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "Battery dispatch study (extension)",
		Caption: fmt.Sprintf("Greedy vs rolling-horizon vs offline-optimal battery dispatch, %s, wind 4x / solar 4x, %gh battery", siteID, batteryHours),
		Columns: []string{"policy", "grid_energy_GWh", "carbon_weighted_grid_Mt_g/kWh", "gap_vs_optimal_%"},
	}
	gap := func(r battery.DispatchResult) float64 {
		if optimal.WeightedGrid <= 0 {
			return 0
		}
		return (r.WeightedGrid - optimal.WeightedGrid) / optimal.WeightedGrid * 100
	}
	t.AddRow("greedy (paper policy)", greedy.GridEnergyMWh/1000, greedy.WeightedGrid/1e6, gap(greedy))
	t.AddRow("rolling 48h (oracle forecast)", rollingOracle.GridEnergyMWh/1000, rollingOracle.WeightedGrid/1e6, gap(rollingOracle))
	t.AddRow("rolling 48h (seasonal-mean forecast)", rollingForecasted.GridEnergyMWh/1000, rollingForecasted.WeightedGrid/1e6, gap(rollingForecasted))
	t.AddRow("offline optimal (DP)", optimal.GridEnergyMWh/1000, optimal.WeightedGrid/1e6, 0.0)
	return t, nil
}

// GeoBalanceStudy runs geographic load migration across the whole fleet —
// the related-work direction (load migration between datacenters) that
// complements the paper's temporal shifting. Each site holds its Meta
// investment-level renewables; migratable load follows renewable surpluses
// across regions.
func GeoBalanceStudy(migratableRatio float64) (Table, error) {
	var dcs []fleet.DC
	for _, s := range grid.Sites() {
		in, err := siteInputs(s.ID)
		if err != nil {
			return Table{}, err
		}
		dcs = append(dcs, fleet.DC{
			ID:         s.ID,
			Demand:     in.Demand,
			Renewable:  in.RenewableSupply(s.WindInvestMW, s.SolarInvestMW),
			GridCI:     in.GridCI,
			CapacityMW: in.PeakDemandMW() * 1.5,
		})
	}
	res, err := fleet.Balance(dcs, fleet.Config{MigratableRatio: migratableRatio})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "Geographic balancing study (extension)",
		Caption: fmt.Sprintf("Fleet-wide load migration at %.0f%% migratable load, Meta investments", migratableRatio*100),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("fleet coverage without migration (%)", res.CoverageBeforePct)
	t.AddRow("fleet coverage with migration (%)", res.CoverageAfterPct)
	t.AddRow("coverage gain (pp)", res.CoverageAfterPct-res.CoverageBeforePct)
	t.AddRow("energy migrated (GWh)", res.MigratedMWh/1000)
	t.AddRow("operational carbon without migration (kt)", res.CarbonBefore.Kilotonnes())
	t.AddRow("operational carbon with migration (kt)", res.CarbonAfter.Kilotonnes())
	if res.CarbonBefore > 0 {
		t.AddRow("carbon reduction (%)", (1-float64(res.CarbonAfter)/float64(res.CarbonBefore))*100)
	}
	return t, nil
}

// CurtailmentAbsorptionStudy connects the grid model's curtailment to
// datacenter scheduling (the related work's "mitigating curtailment through
// load migration"): how much of the grid's curtailed renewable energy could
// the datacenter's flexible load absorb if shifted into curtailment hours,
// and what carbon does that avoid? The grid is simulated at a renewable
// build-out scale where curtailment is material.
func CurtailmentAbsorptionStudy(siteID string, renewableScale float64) (Table, error) {
	site, err := grid.SiteByID(siteID)
	if err != nil {
		return Table{}, err
	}
	profile, err := grid.Profile(site.BA)
	if err != nil {
		return Table{}, err
	}
	year := grid.GenerateYearScaled(profile, renewableScale)
	trace, err := dcload.Generate(dcload.DefaultParams(site.AvgPowerMW), timeseries.HoursPerYear)
	if err != nil {
		return Table{}, err
	}
	demand := trace.Power

	// Shift flexible load toward curtailment hours: the signal is negative
	// curtailed power, so hours with the most spilled renewables score
	// lowest and attract load.
	signal := year.Curtailed.Scale(-1)
	shifted, err := scheduler.ShiftDaily(demand, signal, scheduler.Config{
		CapacityMW:    demand.MaxValue() * 1.5,
		FlexibleRatio: 0.40,
		WindowHours:   24,
	})
	if err != nil {
		return Table{}, err
	}

	// Load placed in curtailment hours consumes energy that was being
	// thrown away: zero-carbon by construction.
	absorbed := func(load timeseries.Series) float64 {
		total := 0.0
		for h := 0; h < load.Len(); h++ {
			if c := year.Curtailed.At(h); c > 0 {
				a := load.At(h)
				if a > c {
					a = c
				}
				total += a
			}
		}
		return total
	}
	before := absorbed(demand)
	after := absorbed(shifted)
	curtailedTotal := year.Curtailed.Sum()

	ci := year.CarbonIntensity()
	avoidedKg := (after - before) * ci.Mean() // MWh × g/kWh = kg

	t := Table{
		ID:      "Curtailment absorption study (extension)",
		Caption: fmt.Sprintf("Flexible load shifted into grid curtailment hours, %s at %.1fx renewables", siteID, renewableScale),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("grid curtailed energy (GWh/yr)", curtailedTotal/1000)
	t.AddRow("curtailment hours per year", year.Curtailed.CountWhere(func(v float64) bool { return v > 0 }))
	t.AddRow("DC load in curtailment hours, unshifted (GWh)", before/1000)
	t.AddRow("DC load in curtailment hours, shifted (GWh)", after/1000)
	t.AddRow("extra curtailed energy absorbed (GWh)", (after-before)/1000)
	if curtailedTotal > 0 {
		t.AddRow("share of grid curtailment absorbed (%)", (after-before)/curtailedTotal*100)
	}
	t.AddRow("operational carbon avoided (t/yr)", avoidedKg/1000)
	return t, nil
}

// MarginalStudy re-prices carbon-aware scheduling under average versus
// marginal grid carbon intensity — the accounting question the carbon-aware
// computing literature debates. Average intensity prices the energy
// consumed; marginal intensity prices the emissions a scheduling decision
// actually changes (the marginal generator's output).
func MarginalStudy(siteID string) (Table, error) {
	in, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	profile, err := grid.Profile(in.Site.BA)
	if err != nil {
		return Table{}, err
	}
	year := grid.GenerateYear(profile)
	marginal := year.MarginalIntensity()
	average := in.GridCI

	avg := in.AvgDemandMW()
	renewable := in.RenewableSupply(4*avg, 4*avg)
	deficitSig, err := scheduler.DeficitSignal(in.Demand, renewable)
	if err != nil {
		return Table{}, err
	}
	shifted, err := scheduler.ShiftDaily(in.Demand, deficitSig, scheduler.Config{
		CapacityMW:    in.PeakDemandMW() * 1.5,
		FlexibleRatio: 0.40,
		WindowHours:   24,
	})
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "Marginal vs average accounting (extension)",
		Caption: fmt.Sprintf("CAS benefit priced at average vs marginal grid intensity, %s, 40%% flexible", siteID),
		Columns: []string{"accounting", "mean_intensity_g/kwh", "carbon_before_kt", "carbon_after_kt", "reduction_%"},
	}
	for _, c := range []struct {
		name string
		ci   timeseries.Series
	}{
		{"average intensity", average},
		{"marginal intensity", marginal},
	} {
		// carbonWeightedDeficit is in MWh × g/kWh = kg; ÷1e6 gives kt.
		before := carbonWeightedDeficit(in.Demand, renewable, c.ci) / 1e6
		after := carbonWeightedDeficit(shifted, renewable, c.ci) / 1e6
		reduction := 0.0
		if before > 0 {
			reduction = (1 - after/before) * 100
		}
		t.AddRow(c.name, c.ci.Mean(), before, after, reduction)
	}
	return t, nil
}

// EnsembleStudy evaluates a representative design across several weather
// realizations via the EnsembleEvaluate API, reporting the coverage and
// total-carbon percentiles — a compact design-under-uncertainty view.
func EnsembleStudy(siteID string, years int) (Table, error) {
	if years < 2 {
		years = 5
	}
	site, err := grid.SiteByID(siteID)
	if err != nil {
		return Table{}, err
	}
	d := explorer.Design{
		WindMW: 4 * site.AvgPowerMW, SolarMW: 4 * site.AvgPowerMW,
		BatteryMWh: 4 * site.AvgPowerMW, DoD: 1.0,
	}
	res, err := explorer.EnsembleEvaluate(site, d, years)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "Ensemble study (extension)",
		Caption: fmt.Sprintf("Design outcomes across %d weather years, %s, wind 4x / solar 4x / 4h battery", years, siteID),
		Columns: []string{"metric", "P10", "P50", "P90"},
	}
	t.AddRow("coverage_%", res.CoverageP10, res.CoverageP50, res.CoverageP90)
	t.AddRow("total_kt", res.TotalP10, res.TotalP50, res.TotalP90)
	for i, o := range res.Outcomes {
		label := fmt.Sprintf("year %d coverage_%%", i)
		if i == 0 {
			label = "base year coverage_%"
		}
		t.AddRow(label, "", o.CoveragePct, "")
	}
	return t, nil
}

// PUEStudy adds the cooling dimension: facility power is IT power times a
// temperature-dependent PUE, so summer afternoons cost extra energy exactly
// when solar supply peaks. The study compares coverage and carbon for
// IT-only demand, constant-PUE demand, and seasonal-PUE demand at a fixed
// design, in a hybrid and a solar-only region.
func PUEStudy() (Table, error) {
	t := Table{
		ID:      "Cooling/PUE study (extension)",
		Caption: "Coverage and operational carbon under IT-only, constant-PUE, and seasonal-PUE demand, wind 4x / solar 4x + 4h battery",
		Columns: []string{"site", "demand_model", "annual_energy_GWh", "coverage_%", "operational_kt"},
	}
	model := dcload.DefaultPUEModel()
	for _, id := range []string{"UT", "NC"} {
		in, err := siteInputs(id)
		if err != nil {
			return Table{}, err
		}
		temp := synth.Temperature(synth.DefaultTemperatureParams(), in.Demand.Len())
		seasonal, err := dcload.ApplyPUE(in.Demand, temp, model)
		if err != nil {
			return Table{}, err
		}
		// Constant PUE with the same annual energy as the seasonal case, so
		// the comparison isolates the *shape* of the cooling overhead.
		flatPUE := seasonal.Sum() / in.Demand.Sum()
		constant := in.Demand.Scale(flatPUE)

		for _, c := range []struct {
			name   string
			demand timeseries.Series
		}{
			{"IT only", in.Demand},
			{fmt.Sprintf("constant PUE %.3f", flatPUE), constant},
			{"seasonal PUE", seasonal},
		} {
			alt, err := explorer.NewInputsFromSeries(in.Site, c.demand,
				in.WindShape, in.SolarShape, in.GridCI, in.Embodied)
			if err != nil {
				return Table{}, err
			}
			avg := alt.AvgDemandMW()
			o, err := alt.Evaluate(explorer.Design{
				WindMW: 4 * avg, SolarMW: 4 * avg,
				BatteryMWh: 4 * avg, DoD: 1.0,
			})
			if err != nil {
				return Table{}, err
			}
			t.AddRow(id, c.name, c.demand.Sum()/1000, o.CoveragePct, o.Operational.Kilotonnes())
		}
	}
	return t, nil
}

// CoverageAtlas extends Figure 7 to every datacenter location — the
// analysis the paper omits "due to space limitations": for all thirteen
// sites, 24/7 coverage at standard investment multiples of average demand,
// plus coverage at Meta's actual regional investments.
func CoverageAtlas() (Table, error) {
	t := Table{
		ID:      "Coverage atlas (extension of Figure 7)",
		Caption: "24/7 coverage (%) at standard investment multiples for all 13 sites",
		Columns: []string{"site", "class", "1x+1x", "2x+2x", "4x+4x", "8x+8x", "wind_only_8x", "solar_only_8x", "meta_investment"},
	}
	for _, s := range grid.Sites() {
		in, err := siteInputs(s.ID)
		if err != nil {
			return Table{}, err
		}
		avg := in.AvgDemandMW()
		cov := func(w, sol float64) string {
			c, err := in.CoverageFor(w, sol)
			if err != nil {
				return "err"
			}
			return fmt.Sprintf("%.1f", c)
		}
		t.AddRow(s.ID, grid.MustProfile(s.BA).Class.String(),
			cov(1*avg, 1*avg), cov(2*avg, 2*avg), cov(4*avg, 4*avg), cov(8*avg, 8*avg),
			cov(8*avg, 0), cov(0, 8*avg),
			cov(s.WindInvestMW, s.SolarInvestMW))
	}
	return t, nil
}

// HorizonStudy simulates a ten-year trajectory of a fixed year-zero design
// under the paper's "Looking forward" trends — demand growth, rising
// workload flexibility, declining manufacturing footprints, and battery
// aging with in-kind replacement.
func HorizonStudy(siteID string, years int) (Table, error) {
	if years <= 0 {
		years = 10
	}
	site, err := grid.SiteByID(siteID)
	if err != nil {
		return Table{}, err
	}
	profile, err := grid.Profile(site.BA)
	if err != nil {
		return Table{}, err
	}
	year := grid.GenerateYear(profile)
	wind := year.WindShape()
	solar := year.SolarShape()
	ci := year.CarbonIntensity()
	baseTrace, err := dcload.Generate(dcload.DefaultParams(site.AvgPowerMW), timeseries.HoursPerYear)
	if err != nil {
		return Table{}, err
	}

	trends := horizon.DefaultTrends()
	plan := horizon.Plan{
		Design: explorer.Design{
			WindMW: 4 * site.AvgPowerMW, SolarMW: 4 * site.AvgPowerMW,
			BatteryMWh: 6 * site.AvgPowerMW, DoD: 1.0,
			FlexibleRatio: 0.40, ExtraCapacityFrac: 0.25,
		},
		Years:               years,
		Trends:              trends,
		ReplaceSpentBattery: true,
	}
	traj, err := horizon.Simulate(plan, func(y int, emb carbon.EmbodiedParams) (*explorer.Inputs, error) {
		scale := 1.0
		for i := 0; i < y; i++ {
			scale *= 1 + trends.DemandGrowthPerYear
		}
		return explorer.NewInputsFromSeries(site, baseTrace.Power.Scale(scale), wind, solar, ci, emb)
	})
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "Multi-year horizon study (extension)",
		Caption: fmt.Sprintf("%d-year trajectory of a fixed year-zero design under forward trends, %s", years, siteID),
		Columns: []string{"year", "coverage_%", "total_kt", "battery_capacity_%", "flexible_%", "replaced"},
	}
	for _, y := range traj.Years {
		replaced := ""
		if y.BatteryReplaced {
			replaced = "yes"
		}
		t.AddRow(y.Year, y.Outcome.CoveragePct, y.Outcome.Total().Kilotonnes(),
			y.BatteryCapacityFraction*100, y.FlexibleRatio*100, replaced)
	}
	t.AddRow("total", "", traj.TotalCarbon.Kilotonnes(), "", "", fmt.Sprintf("%d replacements", traj.Replacements))
	return t, nil
}

// DRSignalStudy compares the demand-response signals the paper's Section
// 3.2 discusses — time-of-use prices, the grid's carbon intensity, and the
// datacenter's own renewable-deficit signal — as drivers for workload
// shifting, measuring each signal's effect on renewable coverage and on
// carbon-weighted grid energy.
func DRSignalStudy(siteID string) (Table, error) {
	in, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	site := in.Site
	profile, err := grid.Profile(site.BA)
	if err != nil {
		return Table{}, err
	}
	year := grid.GenerateYear(profile)
	price := year.PriceSeries(75)

	avg := in.AvgDemandMW()
	renewable := in.RenewableSupply(4*avg, 4*avg)
	deficitSig, err := scheduler.DeficitSignal(in.Demand, renewable)
	if err != nil {
		return Table{}, err
	}
	cfg := scheduler.Config{
		CapacityMW:    in.PeakDemandMW() * 1.5,
		FlexibleRatio: 0.40,
		WindowHours:   24,
	}

	t := Table{
		ID:      "Demand-response signal study (extension)",
		Caption: fmt.Sprintf("Shifting driven by different DR signals, %s, 40%% flexible, wind 4x / solar 4x", siteID),
		Columns: []string{"signal", "coverage_%", "carbon_weighted_grid_reduction_%"},
	}

	baselineCarbon := carbonWeightedDeficit(in.Demand, renewable, in.GridCI)
	baseCov, err := explorer.Coverage(in.Demand, renewable)
	if err != nil {
		return Table{}, err
	}
	t.AddRow("none (baseline)", baseCov, 0.0)

	signals := []struct {
		name string
		sig  timeseries.Series
	}{
		{"renewable deficit (paper)", deficitSig},
		{"grid carbon intensity", in.GridCI},
		{"time-of-use price", price},
	}
	for _, s := range signals {
		shifted, err := scheduler.ShiftDaily(in.Demand, s.sig, cfg)
		if err != nil {
			return Table{}, err
		}
		cov, err := explorer.Coverage(shifted, renewable)
		if err != nil {
			return Table{}, err
		}
		carbonAfter := carbonWeightedDeficit(shifted, renewable, in.GridCI)
		reduction := 0.0
		if baselineCarbon > 0 {
			reduction = (1 - carbonAfter/baselineCarbon) * 100
		}
		t.AddRow(s.name, cov, reduction)
	}
	return t, nil
}

// carbonWeightedDeficit sums max(demand−renewable, 0) × grid CI over the
// year: the operational-carbon proxy the shifting policies try to reduce.
func carbonWeightedDeficit(demand, renewable, ci timeseries.Series) float64 {
	total := 0.0
	for h := 0; h < demand.Len(); h++ {
		if d := demand.At(h) - renewable.At(h); d > 0 {
			total += d * ci.At(h)
		}
	}
	return total
}

// SensitivityStudy varies each embodied-carbon parameter across its
// published range (Section 5.1 gives ranges, and the paper stresses that
// "these parameters can be tuned as better data becomes available") and
// reports how the carbon-optimal total and coverage move — a tornado-style
// sensitivity analysis of Carbon Explorer's conclusions to its inputs.
func SensitivityStudy(siteID string) (Table, error) {
	site, err := grid.SiteByID(siteID)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "Parameter sensitivity study (extension)",
		Caption: fmt.Sprintf("Carbon-optimal total under each embodied parameter's published range, %s, renewables+battery", siteID),
		Columns: []string{"parameter", "setting", "optimal_total_kt", "coverage_%", "delta_vs_default_%"},
	}

	evalWith := func(emb carbon.EmbodiedParams) (explorer.Outcome, error) {
		in, err := explorer.NewInputs(site, explorer.WithEmbodiedParams(emb))
		if err != nil {
			return explorer.Outcome{}, err
		}
		res, err := in.Search(searchSpace(in, 1.0), explorer.RenewablesBattery)
		if err != nil {
			return explorer.Outcome{}, err
		}
		return res.Optimal, nil
	}

	base, err := evalWith(carbon.DefaultEmbodiedParams())
	if err != nil {
		return Table{}, err
	}
	ref := base.Total().Kilotonnes()
	t.AddRow("(defaults)", "", ref, base.CoveragePct, 0.0)

	type variant struct {
		name    string
		setting string
		mutate  func(*carbon.EmbodiedParams)
	}
	variants := []variant{
		{"wind embodied", "10 g/kWh (low)", func(p *carbon.EmbodiedParams) { p.WindPerKWh = 10 }},
		{"wind embodied", "15 g/kWh (high)", func(p *carbon.EmbodiedParams) { p.WindPerKWh = 15 }},
		{"solar embodied", "40 g/kWh (low)", func(p *carbon.EmbodiedParams) { p.SolarPerKWh = 40 }},
		{"solar embodied", "70 g/kWh (high)", func(p *carbon.EmbodiedParams) { p.SolarPerKWh = 70 }},
		{"battery embodied", "74 kg/kWh (low)", func(p *carbon.EmbodiedParams) { p.BatteryPerKWhCap = 74 }},
		{"battery embodied", "134 kg/kWh (high)", func(p *carbon.EmbodiedParams) { p.BatteryPerKWhCap = 134 }},
		{"server lifetime", "3 years", func(p *carbon.EmbodiedParams) { p.ServerLifetimeYears = 3 }},
		{"infra multiplier", "1.30x", func(p *carbon.EmbodiedParams) { p.ServerInfraMultiplier = 1.30 }},
	}
	for _, v := range variants {
		emb := carbon.DefaultEmbodiedParams()
		v.mutate(&emb)
		opt, err := evalWith(emb)
		if err != nil {
			return Table{}, err
		}
		total := opt.Total().Kilotonnes()
		t.AddRow(v.name, v.setting, total, opt.CoveragePct, (total-ref)/ref*100)
	}
	return t, nil
}

// FWRSweep sweeps the flexible workload ratio — the scheduler's key input,
// which the paper fixes at Borg's 40% — showing how coverage and total
// carbon respond as workloads become more (or less) delay-tolerant, the
// trend the paper's conclusion predicts ("we expect the delay tolerance
// nature of computing to increase").
func FWRSweep(siteID string) (Table, error) {
	in, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	avg := in.AvgDemandMW()
	t := Table{
		ID:      "Flexible-ratio sweep (extension)",
		Caption: fmt.Sprintf("Coverage and total carbon vs flexible workload ratio, %s, wind 4x / solar 4x, +25%% capacity", siteID),
		Columns: []string{"flexible_ratio_%", "coverage_%", "total_kt"},
	}
	for _, fwr := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
		d := explorer.Design{WindMW: 4 * avg, SolarMW: 4 * avg}
		if fwr > 0 {
			d.FlexibleRatio = fwr
			d.ExtraCapacityFrac = 0.25
		}
		o, err := in.Evaluate(d)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(fwr*100, o.CoveragePct, o.Total().Kilotonnes())
	}
	return t, nil
}

// CostStudy crosses carbon with capital expenditure — the dimension the
// paper cites ($350/kWh batteries, billions-of-dollars datacenters) but
// does not model: the capex of the carbon-optimal design, the cost-carbon
// Pareto frontier, and the cheapest design achieving 99% coverage.
func CostStudy(siteID string) (Table, error) {
	in, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	res, err := in.Search(searchSpace(in, 1.0), explorer.RenewablesBatteryCAS)
	if err != nil {
		return Table{}, err
	}
	prices := cost.Default()
	pts, err := prices.Attach(res.Points, in.PeakDemandMW())
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "Cost study (extension)",
		Caption: fmt.Sprintf("Capital cost vs carbon, %s (solar $%.2f/W, wind $%.2f/W, battery $%.0f/kWh)", siteID, prices.SolarPerWatt, prices.WindPerWatt, prices.BatteryPerKWh),
		Columns: []string{"point", "capex_M$", "total_carbon_kt", "coverage_%", "battery_MWh"},
	}

	// The carbon optimum and its price tag.
	optCapex, err := prices.DesignCapex(res.Optimal.Design, in.PeakDemandMW())
	if err != nil {
		return Table{}, err
	}
	t.AddRow("carbon-optimal design", optCapex.Total()/1e6,
		res.Optimal.Total().Kilotonnes(), res.Optimal.CoveragePct, res.Optimal.Design.BatteryMWh)

	// Cheapest designs at coverage milestones.
	for _, target := range []float64{90, 95, 99} {
		pt, ok := cost.CheapestAtCoverage(pts, target)
		if !ok {
			t.AddRow(fmt.Sprintf("cheapest at %.0f%% coverage", target), "unreachable", "", "", "")
			continue
		}
		t.AddRow(fmt.Sprintf("cheapest at %.0f%% coverage", target), pt.Capex.Total()/1e6,
			pt.Outcome.Total().Kilotonnes(), pt.Outcome.CoveragePct, pt.Outcome.Design.BatteryMWh)
	}

	// A sketch of the cost-carbon frontier.
	frontier := cost.ParetoCostCarbon(pts)
	step := len(frontier) / 5
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(frontier); i += step {
		pt := frontier[i]
		t.AddRow(fmt.Sprintf("frontier[%d]", i), pt.Capex.Total()/1e6,
			pt.Outcome.Total().Kilotonnes(), pt.Outcome.CoveragePct, pt.Outcome.Design.BatteryMWh)
	}
	return t, nil
}

// RobustnessStudy evaluates how a design chosen on one weather year
// performs on other years: the paper designs on 2020 data; here the
// carbon-optimal design from the base synthetic year is re-evaluated on
// alternative years (different weather seeds), reporting the spread of
// coverage and total carbon.
func RobustnessStudy(siteID string, years int) (Table, error) {
	if years < 2 {
		years = 4
	}
	base, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	res, err := base.Search(searchSpace(base, 1.0), explorer.RenewablesBattery)
	if err != nil {
		return Table{}, err
	}
	design := res.Optimal.Design

	t := Table{
		ID:      "Robustness study (extension)",
		Caption: fmt.Sprintf("The base-year carbon-optimal design re-evaluated on %d alternative weather years, %s", years, siteID),
		Columns: []string{"weather_year", "coverage_%", "total_kt"},
	}
	t.AddRow("base (design year)", res.Optimal.CoveragePct, res.Optimal.Total().Kilotonnes())

	var coverages, totals []float64
	coverages = append(coverages, res.Optimal.CoveragePct)
	totals = append(totals, res.Optimal.Total().Kilotonnes())
	for y := 1; y <= years; y++ {
		alt, err := alternativeYearInputs(siteID, uint64(y))
		if err != nil {
			return Table{}, err
		}
		o, err := alt.Evaluate(design)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(fmt.Sprintf("alt year %d", y), o.CoveragePct, o.Total().Kilotonnes())
		coverages = append(coverages, o.CoveragePct)
		totals = append(totals, o.Total().Kilotonnes())
	}
	cs := stats.Summarize(coverages)
	ts := stats.Summarize(totals)
	t.AddRow("coverage min/mean/max", fmt.Sprintf("%.2f / %.2f / %.2f", cs.Min, cs.Mean, cs.Max), "")
	t.AddRow("total kt min/mean/max", "", fmt.Sprintf("%.2f / %.2f / %.2f", ts.Min, ts.Mean, ts.Max))
	return t, nil
}

// alternativeYearInputs builds inputs for a site with a perturbed weather
// seed, modelling a different calendar year of the same climate.
func alternativeYearInputs(siteID string, offset uint64) (*explorer.Inputs, error) {
	site, err := grid.SiteByID(siteID)
	if err != nil {
		return nil, err
	}
	profile, err := grid.Profile(site.BA)
	if err != nil {
		return nil, err
	}
	profile.Seed += 1000 * offset
	profile.Wind.Seed = profile.Seed*7919 + 1
	profile.Solar.Seed = profile.Seed*7919 + 2
	year := grid.GenerateYear(profile)

	dp := dcload.DefaultParams(site.AvgPowerMW)
	dp.Seed += offset
	trace, err := dcload.Generate(dp, timeseries.HoursPerYear)
	if err != nil {
		return nil, err
	}
	return explorer.NewInputsFromSeries(site, trace.Power,
		year.WindShape(), year.SolarShape(), year.CarbonIntensity(),
		carbon.DefaultEmbodiedParams())
}

// OptimizerStudy compares search strategies for the design space: the
// coarse exhaustive grid, iterative zoom refinement, coordinate descent,
// and a fine exhaustive grid as the quality reference — solution quality
// versus evaluation budget.
func OptimizerStudy(siteID string) (Table, error) {
	in, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	avg := in.AvgDemandMW()
	coarse := explorer.Space{
		WindMW:             []float64{0, 4 * avg, 12 * avg},
		SolarMW:            []float64{0, 4 * avg, 12 * avg},
		BatteryHours:       []float64{0, 6},
		ExtraCapacityFracs: []float64{0},
		DoD:                1.0,
		FlexibleRatio:      0,
	}
	fine := explorer.Space{
		WindMW:             rangeGrid(0, 14*avg, 12),
		SolarMW:            rangeGrid(0, 14*avg, 12),
		BatteryHours:       rangeGrid(0, 12, 7),
		ExtraCapacityFracs: []float64{0},
		DoD:                1.0,
		FlexibleRatio:      0,
	}

	t := Table{
		ID:      "Optimizer study (extension)",
		Caption: fmt.Sprintf("Search-strategy quality vs cost, %s, renewables+battery", siteID),
		Columns: []string{"method", "evaluations", "optimal_total_kt", "gap_vs_fine_%"},
	}

	fineRes, err := in.Search(fine, explorer.RenewablesBattery)
	if err != nil {
		return Table{}, err
	}
	ref := float64(fineRes.Optimal.Total())

	coarseRes, err := in.Search(coarse, explorer.RenewablesBattery)
	if err != nil {
		return Table{}, err
	}
	refined, err := in.RefineSearch(coarse, explorer.RenewablesBattery, explorer.RefineOptions{Rounds: 3, PointsPerDim: 4})
	if err != nil {
		return Table{}, err
	}
	descent, err := in.CoordinateDescent(coarseRes.Optimal.Design, explorer.RenewablesBattery, 20*avg, 3, 1e-3)
	if err != nil {
		return Table{}, err
	}

	gap := func(total float64) float64 {
		if ref <= 0 {
			return 0
		}
		return (total - ref) / ref * 100
	}
	t.AddRow("coarse exhaustive", len(coarseRes.Points),
		coarseRes.Optimal.Total().Kilotonnes(), gap(float64(coarseRes.Optimal.Total())))
	t.AddRow("zoom refinement", refined.Evaluations,
		refined.Optimal.Total().Kilotonnes(), gap(float64(refined.Optimal.Total())))
	t.AddRow("coordinate descent", descent.Evaluations,
		descent.Optimal.Total().Kilotonnes(), gap(float64(descent.Optimal.Total())))
	t.AddRow("fine exhaustive (reference)", len(fineRes.Points),
		fineRes.Optimal.Total().Kilotonnes(), 0.0)
	return t, nil
}

// rangeGrid builds n evenly spaced values over [lo, hi].
func rangeGrid(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// SearchAblation quantifies what each solution dimension contributes at one
// site: it removes one dimension at a time from the combined search and
// reports the optimal total with and without it — an ablation of Carbon
// Explorer's own design space.
func SearchAblation(siteID string) (Table, error) {
	in, err := siteInputs(siteID)
	if err != nil {
		return Table{}, err
	}
	space := searchSpace(in, 1.0)

	t := Table{
		ID:      "Design-space ablation (extension)",
		Caption: fmt.Sprintf("Carbon-optimal total when removing one solution dimension, %s", siteID),
		Columns: []string{"configuration", "total_kt", "coverage_%", "penalty_vs_full_%"},
	}
	full, err := in.Search(space, explorer.RenewablesBatteryCAS)
	if err != nil {
		return Table{}, err
	}
	ref := full.Optimal.Total().Kilotonnes()
	t.AddRow("full (renewables+battery+CAS)", ref, full.Optimal.CoveragePct, 0.0)

	cases := []struct {
		name     string
		strategy explorer.Strategy
	}{
		{"no battery", explorer.RenewablesCAS},
		{"no scheduling", explorer.RenewablesBattery},
		{"renewables only", explorer.RenewablesOnly},
	}
	for _, c := range cases {
		res, err := in.Search(space, c.strategy)
		if err != nil {
			return Table{}, err
		}
		total := res.Optimal.Total().Kilotonnes()
		t.AddRow(c.name, total, res.Optimal.CoveragePct, (total-ref)/ref*100)
	}

	// Also ablate the wind and solar dimensions individually.
	noWind := space
	noWind.WindMW = []float64{0}
	resNW, err := in.Search(noWind, explorer.RenewablesBatteryCAS)
	if err != nil {
		return Table{}, err
	}
	totalNW := resNW.Optimal.Total().Kilotonnes()
	t.AddRow("no wind investment", totalNW, resNW.Optimal.CoveragePct, (totalNW-ref)/ref*100)

	noSolar := space
	noSolar.SolarMW = []float64{0}
	resNS, err := in.Search(noSolar, explorer.RenewablesBatteryCAS)
	if err != nil {
		return Table{}, err
	}
	totalNS := resNS.Optimal.Total().Kilotonnes()
	t.AddRow("no solar investment", totalNS, resNS.Optimal.CoveragePct, (totalNS-ref)/ref*100)
	return t, nil
}
