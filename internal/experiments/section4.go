package experiments

import (
	"fmt"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/scheduler"
	"carbonexplorer/internal/workload"
)

// figure7Regions are the paper's three representative sites: majorly-wind
// Oregon, mixed Utah, solar-only North Carolina.
var figure7Regions = []string{"OR", "UT", "NC"}

// Figure07 reproduces Figure 7: 24/7 renewable coverage as a function of
// wind and solar investment for the three representative regions, plus the
// coverage at Meta's actual regional investment (the paper's black lines,
// reported at 46–51% for its two examples).
func Figure07() (Table, error) {
	t := Table{
		ID:      "Figure 7",
		Caption: "24/7 coverage (%) vs wind and solar investment (multiples of avg DC power)",
		Columns: []string{"site", "wind_x", "solar_x", "coverage_%"},
	}
	multiples := []float64{0, 1, 2, 4, 8, 16}
	for _, id := range figure7Regions {
		in, err := siteInputs(id)
		if err != nil {
			return Table{}, err
		}
		avg := in.AvgDemandMW()
		for _, wx := range multiples {
			for _, sx := range multiples {
				cov, err := in.CoverageFor(wx*avg, sx*avg)
				if err != nil {
					return Table{}, err
				}
				t.AddRow(id, wx, sx, cov)
			}
		}
		// Meta's actual investment point.
		site := in.Site
		cov, err := in.CoverageFor(site.WindInvestMW, site.SolarInvestMW)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(id, fmt.Sprintf("meta:%.0fMW", site.WindInvestMW), fmt.Sprintf("meta:%.0fMW", site.SolarInvestMW), cov)
	}
	return t, nil
}

// Figure08 reproduces Figure 8 for Oregon: the long tail of renewable
// investment needed as the coverage target rises, the paper's headline
// ratio (reaching 99.9% from 95% takes >5× the investment of reaching 95%
// from 0%), and the over-optimism of assuming average-day output.
func Figure08() (Table, error) {
	in, err := siteInputs("OR")
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "Figure 8",
		Caption: "Renewable investment (MW) for coverage targets, Oregon (majorly wind)",
		Columns: []string{"coverage_target_%", "investment_mw"},
	}
	const windFrac = 0.9 // Oregon's grid is wind; keep a realistic mix
	maxMW := 1e7
	targets := []float64{50, 75, 90, 95, 99, 99.9}
	byTarget := map[float64]float64{}
	for _, target := range targets {
		mw, ok, err := in.InvestmentForCoverage(target, windFrac, maxMW)
		if err != nil {
			return Table{}, err
		}
		if !ok {
			t.AddRow(target, "unreachable")
			continue
		}
		byTarget[target] = mw
		t.AddRow(target, mw)
	}
	if mw95, ok95 := byTarget[95.0]; ok95 {
		if mw999, ok999 := byTarget[99.9]; ok999 {
			ratio := (mw999 - mw95) / mw95
			t.AddRow("(99.9%-95%)/(0-95%) investment ratio", fmt.Sprintf("%.1fx", ratio))
		}
	}

	// Average-day assumption: tile the mean daily profile across the year
	// and ask what investment would reach ~100% coverage under it.
	avgWind := in.WindShape.AverageDay().TileDaily(in.Demand.Len())
	avgSolar := in.SolarShape.AverageDay().TileDaily(in.Demand.Len())
	flat, err := explorer.NewInputsFromSeries(in.Site, in.Demand, avgWind, avgSolar, in.GridCI, in.Embodied)
	if err != nil {
		return Table{}, err
	}
	mwFlat, okFlat, err := flat.InvestmentForCoverage(99.9, windFrac, maxMW)
	if err != nil {
		return Table{}, err
	}
	if okFlat {
		t.AddRow("99.9% assuming average-day supply", mwFlat)
		if real, ok := byTarget[99.9]; ok && mwFlat > 0 {
			t.AddRow("real/average-day investment ratio at 99.9%", fmt.Sprintf("%.1fx", real/mwFlat))
		}
	}
	return t, nil
}

// Figure09 reproduces Figure 9: battery capacity (hours of average compute)
// required for 24/7 renewable coverage at different wind/solar investment
// levels, for mixed-region Utah, plus the paper's solar-only contrast
// (North Carolina needs ~14 hours).
func Figure09() (Table, error) {
	t := Table{
		ID:      "Figure 9",
		Caption: "Battery hours of compute needed for 24/7 coverage",
		Columns: []string{"site", "wind_x", "solar_x", "battery_hours"},
	}
	const target = 99.99
	const maxHours = 100.0
	utIn, err := siteInputs("UT")
	if err != nil {
		return Table{}, err
	}
	avg := utIn.AvgDemandMW()
	for _, wx := range []float64{2, 4, 8} {
		for _, sx := range []float64{2, 4, 8} {
			hours, ok, err := utIn.MinBatteryHoursFor247(wx*avg, sx*avg, target, maxHours)
			if err != nil {
				return Table{}, err
			}
			if !ok {
				t.AddRow("UT", wx, sx, "unreachable")
				continue
			}
			t.AddRow("UT", wx, sx, hours)
		}
	}
	// Meta's actual Utah investments (paper: ~5 hours suffices).
	hours, ok, err := utIn.MinBatteryHoursFor247(utIn.Site.WindInvestMW, utIn.Site.SolarInvestMW, target, maxHours)
	if err != nil {
		return Table{}, err
	}
	if ok {
		t.AddRow("UT", "meta", "meta", hours)
	} else {
		t.AddRow("UT", "meta", "meta", "unreachable")
	}

	// Solar-only North Carolina needs a much larger relative build before
	// 24/7 becomes reachable at all, and then a much larger battery than
	// the mixed region (the paper reports ~14 h at its investment levels).
	ncIn, err := siteInputs("NC")
	if err != nil {
		return Table{}, err
	}
	ncAvg := ncIn.AvgDemandMW()
	for _, sx := range []float64{8, 16} {
		ncHours, ncOK, err := ncIn.MinBatteryHoursFor247(0, sx*ncAvg, target, maxHours)
		if err != nil {
			return Table{}, err
		}
		if ncOK {
			t.AddRow("NC", 0, sx, ncHours)
		} else {
			t.AddRow("NC", 0, sx, "unreachable")
		}
	}
	return t, nil
}

// Figure10 reproduces Figure 10: the SLO-tier breakdown of data-processing
// workloads.
func Figure10() Table {
	t := Table{
		ID:      "Figure 10",
		Caption: "Data-processing workloads by completion-time SLO",
		Columns: []string{"tier", "share_%", "slack_hours"},
	}
	for _, tier := range workload.AllTiers() {
		t.AddRow(tier.String(), tier.Share()*100, tier.SlackHours())
	}
	t.AddRow("share with SLO >= 4h", fmt.Sprintf("%.1f", workload.ShareWithSLOAtLeast(4)*100), "")
	return t
}

// Figure11 reproduces Figure 11: a three-day illustration of carbon-aware
// scheduling for the Utah datacenter with a 17.6 MW capacity cap and 10%
// flexible workloads, shifting load against the grid's carbon intensity.
func Figure11() (Table, error) {
	in, err := siteInputs("UT")
	if err != nil {
		return Table{}, err
	}
	const days = 3
	start := 120 * 24 // a spring stretch with pronounced CI swings
	// The paper's illustration assumes a 17.6 MW maximum DC capacity with
	// the demand sitting ~10% below it; scale the Utah trace accordingly.
	demand := in.Demand.Slice(start, start+days*24)
	demand = demand.Scale(16.0 / demand.Mean())
	signal := in.GridCI.Slice(start, start+days*24)
	shifted, err := scheduler.ShiftDaily(demand, signal, scheduler.Config{
		CapacityMW:    17.6,
		FlexibleRatio: 0.10,
		WindowHours:   24,
	})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "Figure 11",
		Caption: "Carbon-aware scheduling illustration, Utah DC, 3 days (17.6 MW cap, 10% flexible)",
		Columns: []string{"hour", "grid_ci_g/kwh", "power_no_cas_mw", "power_cas_mw"},
	}
	for h := 0; h < days*24; h++ {
		t.AddRow(h, signal.At(h), demand.At(h), shifted.At(h))
	}
	// Carbon-weighted check: CAS load should consume less carbon.
	var before, after float64
	for h := 0; h < days*24; h++ {
		before += demand.At(h) * signal.At(h)
		after += shifted.At(h) * signal.At(h)
	}
	t.AddRow("carbon-weighted load reduction %", "", "", (1-after/before)*100)
	return t, nil
}

// Figure12 reproduces Figure 12: extra server capacity (as % of existing)
// required to reach 24/7 carbon-free computation via scheduling alone, with
// all workloads flexible, across renewable investment levels for Utah
// (paper: 19% to over 100%).
func Figure12() (Table, error) {
	in, err := siteInputs("UT")
	if err != nil {
		return Table{}, err
	}
	avg := in.AvgDemandMW()
	t := Table{
		ID:      "Figure 12",
		Caption: "Extra server capacity (% of existing) for 24/7 via scheduling, all workloads flexible, Utah",
		Columns: []string{"wind_x", "solar_x", "extra_capacity_%"},
	}
	const target = 99.99
	for _, wx := range []float64{4, 6, 8, 12} {
		for _, sx := range []float64{4, 6, 8, 12} {
			frac, ok, err := in.MinExtraCapacityFor247(wx*avg, sx*avg, 1.0, target, 4.0)
			if err != nil {
				return Table{}, err
			}
			if !ok {
				t.AddRow(wx, sx, "unreachable")
				continue
			}
			t.AddRow(wx, sx, frac*100)
		}
	}
	return t, nil
}
