package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result: a caption, column names, and rows
// of pre-formatted cells.
type Table struct {
	// ID is the paper artifact identifier, e.g. "Figure 8".
	ID string
	// Caption describes what the table shows.
	Caption string
	// Columns are the column headers.
	Columns []string
	// Rows are the data cells; each row must have len(Columns) cells.
	Rows [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// trimFloat renders a float compactly: integers without decimals, others
// with up to three significant decimals.
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 { //carbonlint:allow floatcmp exact is-integer test selects the compact rendering, not an arithmetic comparison
		return fmt.Sprintf("%d", int64(v))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}

// Markdown renders the table as a GitHub-flavoured markdown table with a
// heading, for report files.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Caption)
	b.WriteString("| ")
	b.WriteString(strings.Join(t.Columns, " | "))
	b.WriteString(" |\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString("| ")
		b.WriteString(strings.Join(row, " | "))
		b.WriteString(" |\n")
	}
	return b.String()
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Caption)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
