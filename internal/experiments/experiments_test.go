package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := Table{ID: "X", Caption: "c", Columns: []string{"a", "bb"}}
	tb.AddRow(1.0, "hello")
	tb.AddRow(2.5, 3)
	out := tb.String()
	if !strings.Contains(out, "X — c") || !strings.Contains(out, "hello") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "2.5") {
		t.Fatalf("float formatting broken:\n%s", out)
	}
	if strings.Contains(out, "1.000") {
		t.Fatalf("integer-valued float should render without decimals:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{ID: "F", Caption: "cap", Columns: []string{"a", "b"}}
	tb.AddRow(1, "x")
	md := tb.Markdown()
	for _, want := range []string{"### F — cap", "| a | b |", "|---|---|", "| 1 | x |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFigure01WeeklySwing(t *testing.T) {
	tb, err := Figure01()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7*24+1 {
		t.Fatalf("rows = %d, want 169", len(tb.Rows))
	}
	// The summary row should report a multi-x day-to-day swing.
	last := tb.Rows[len(tb.Rows)-1]
	if !strings.HasSuffix(last[3], "x") {
		t.Fatalf("missing swing summary: %v", last)
	}
}

func TestTable01MatchesPaper(t *testing.T) {
	tb := Table01()
	if len(tb.Rows) != 14 { // 13 sites + total
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	total := tb.Rows[13]
	if total[6] != "5754" {
		t.Fatalf("grand total = %q, want 5754", total[6])
	}
}

func TestTable02MatchesPaper(t *testing.T) {
	tb := Table02()
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 sources", len(tb.Rows))
	}
	joined := tb.String()
	for _, want := range []string{"wind", "11", "coal", "820"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestFigure03Claims(t *testing.T) {
	tb, err := Figure03()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 3 {
		t.Fatalf("too few rows")
	}
	// First three rows carry the headline stats; checked numerically in
	// dcload tests, so here just confirm presence.
	if !strings.Contains(tb.String(), "correlation") {
		t.Fatalf("missing correlation row")
	}
}

func TestFigure04CurtailmentRises(t *testing.T) {
	tb, err := Figure04()
	if err != nil {
		t.Fatal(err)
	}
	// 7 years + trendline row.
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var first, last float64
	if _, err := fscan(tb.Rows[0][2], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(tb.Rows[6][2], &last); err != nil {
		t.Fatal(err)
	}
	if last <= first || last < 1 {
		t.Fatalf("curtailment should rise to a material share: %v -> %v%%", first, last)
	}
}

func TestFigure05RegionalShapes(t *testing.T) {
	_, regions, err := Figure05()
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 3 {
		t.Fatalf("want 3 regions")
	}
	byBA := map[string]Figure05Region{}
	for _, r := range regions {
		byBA[r.BA] = r
	}
	// BPAT: heavy wind variance — best-10 days well above mean, worst near
	// zero (paper: ~2.5x and "very little").
	bpat := byBA["BPAT"]
	if bpat.Top10OverMean < 1.7 {
		t.Errorf("BPAT top10/mean = %v, want > 1.7", bpat.Top10OverMean)
	}
	if bpat.Bottom10Share > 0.2 {
		t.Errorf("BPAT worst-10 share = %v, want near zero", bpat.Bottom10Share)
	}
	// DUK (solar): much steadier day-to-day than BPAT.
	duk := byBA["DUK"]
	if duk.Top10OverMean >= bpat.Top10OverMean {
		t.Errorf("solar region should vary less than wind region: %v vs %v",
			duk.Top10OverMean, bpat.Top10OverMean)
	}
	// Solar average day must be zero at night.
	if duk.AvgDaySolar.At(2) != 0 {
		t.Errorf("DUK solar at 2am = %v, want 0", duk.AvgDaySolar.At(2))
	}
}

func TestFigure06IntensityOrdering(t *testing.T) {
	tb, err := Figure06()
	if err != nil {
		t.Fatal(err)
	}
	// The mean row (last) must be ordered grid > netzero > 24/7.
	last := tb.Rows[len(tb.Rows)-1]
	var grid, nz, tfs float64
	if _, err := fscan(last[1], &grid); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(last[2], &nz); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(last[3], &tfs); err != nil {
		t.Fatal(err)
	}
	if !(grid > nz && nz > tfs) {
		t.Fatalf("scenario ordering violated: %v %v %v", grid, nz, tfs)
	}
}

func TestFigure07CoverageProperties(t *testing.T) {
	tb, err := Figure07()
	if err != nil {
		t.Fatal(err)
	}
	// NC with wind-only investment must show 0 coverage (no wind on grid);
	// high mixed investment in UT should exceed 90%.
	var ncWindOnly, utMax float64 = -1, 0
	for _, row := range tb.Rows {
		if row[0] == "NC" && row[1] == "16" && row[2] == "0" {
			if _, err := fscan(row[3], &ncWindOnly); err != nil {
				t.Fatal(err)
			}
		}
		if row[0] == "UT" {
			var c float64
			if _, err := fscan(row[3], &c); err == nil && c > utMax {
				utMax = c
			}
		}
	}
	if ncWindOnly != 0 {
		t.Errorf("NC wind-only coverage = %v, want 0 (no wind in region)", ncWindOnly)
	}
	if utMax < 90 {
		t.Errorf("UT max coverage = %v, want > 90 at 16x investment", utMax)
	}
}

func TestFigure08LongTail(t *testing.T) {
	tb, err := Figure08()
	if err != nil {
		t.Fatal(err)
	}
	text := tb.String()
	if !strings.Contains(text, "investment ratio") {
		t.Fatalf("missing ratio row:\n%s", text)
	}
	// Investment must grow monotonically with the target.
	var prev float64 = -1
	count := 0
	for _, row := range tb.Rows {
		var target, mw float64
		if _, err := fscan(row[0], &target); err != nil {
			continue
		}
		if _, err := fscan(row[1], &mw); err != nil {
			continue
		}
		if mw < prev {
			t.Fatalf("investment decreased at target %v", target)
		}
		prev = mw
		count++
	}
	if count < 4 {
		t.Fatalf("too few reachable targets: %d", count)
	}
}

func TestFigureCharts(t *testing.T) {
	for name, fn := range map[string]func() (string, error){
		"Figure01Chart": Figure01Chart,
		"Figure06Chart": Figure06Chart,
		"Figure11Chart": Figure11Chart,
	} {
		c, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(c, "|") || len(c) < 200 {
			t.Errorf("%s: implausibly small chart:\n%s", name, c)
		}
	}
}

func TestFigure10SLOBreakdown(t *testing.T) {
	tb := Figure10()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "87.4") {
		t.Fatalf("missing paper's 87.4%% >= 4h share:\n%s", tb.String())
	}
}

func TestFigure11CASReducesCarbon(t *testing.T) {
	tb, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	var reduction float64
	if _, err := fscan(last[3], &reduction); err != nil {
		t.Fatal(err)
	}
	if reduction <= 0 {
		t.Fatalf("CAS should reduce carbon-weighted load, got %v%%", reduction)
	}
}

// fscan parses a table cell as a float.
func fscan(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}
