package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestForecastStudy(t *testing.T) {
	tb, err := ForecastStudy("UT")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // oracle + 3 forecasters
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var oracleCov float64
	covs := map[string]float64{}
	for _, row := range tb.Rows {
		cov, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad coverage cell %q", row[2])
		}
		covs[row[0]] = cov
		if row[0] == "oracle" {
			oracleCov = cov
		}
	}
	// No forecaster can beat the oracle's coverage (by more than noise from
	// accidental beneficial mispredictions, which the greedy shift bounds).
	for name, cov := range covs {
		if name == "oracle" {
			continue
		}
		if cov > oracleCov+0.5 {
			t.Errorf("%s coverage %v exceeds oracle %v", name, cov, oracleCov)
		}
	}
	// Forecast-driven scheduling should retain a meaningful share of the
	// oracle gain — the whole point of the extension.
	var bestShare float64
	for _, row := range tb.Rows {
		if row[0] == "oracle" {
			continue
		}
		share, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad share cell %q", row[4])
		}
		if share > bestShare {
			bestShare = share
		}
	}
	if bestShare < 30 {
		t.Errorf("best forecaster retains only %v%% of oracle gain", bestShare)
	}
}

func TestBatteryTechStudy(t *testing.T) {
	tb, err := BatteryTechStudy("NC")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	embodied := map[string]float64{}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad embodied cell %q", row[3])
		}
		embodied[row[0]] = v
	}
	// Sodium-ion's lower manufacturing footprint should show through.
	if embodied["Na-ion"] >= embodied["NMC"] {
		t.Errorf("Na-ion embodied (%v) should be below NMC (%v)", embodied["Na-ion"], embodied["NMC"])
	}
}

func TestNetZeroStudy(t *testing.T) {
	tb, err := NetZeroStudy([]string{"UT", "NC", "OR"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var annual, hourly float64
		if _, err := fscan(row[2], &annual); err != nil {
			t.Fatal(err)
		}
		if _, err := fscan(row[5], &hourly); err != nil {
			t.Fatal(err)
		}
		// Matching can only weaken as the window shrinks.
		if hourly > annual+1e-6 {
			t.Errorf("%s: hourly matching %v above annual %v", row[0], hourly, annual)
		}
	}
	// UT's oversized investments annually over-match, yet hourly matching
	// stays below 100 — the Net Zero vs 24/7 gap.
	for _, row := range tb.Rows {
		if row[0] != "UT" {
			continue
		}
		var ratio, hourly float64
		if _, err := fscan(row[1], &ratio); err != nil {
			t.Fatal(err)
		}
		if _, err := fscan(row[5], &hourly); err != nil {
			t.Fatal(err)
		}
		if ratio < 1 {
			t.Errorf("UT annual credit ratio = %v, expected Net Zero", ratio)
		}
		if hourly >= 100 {
			t.Errorf("UT hourly matching = %v, expected a gap below 100", hourly)
		}
	}
}

func TestTieredSchedulingStudy(t *testing.T) {
	tb, err := TieredSchedulingStudy("UT")
	if err != nil {
		t.Fatal(err)
	}
	covs := map[string]float64{}
	for _, row := range tb.Rows {
		var v float64
		if _, err := fscan(row[1], &v); err == nil {
			covs[row[0]] = v
		}
	}
	if covs["uniform 40% / 24h window"] <= covs["no scheduling"] {
		t.Errorf("uniform scheduling should improve coverage: %v", covs)
	}
	if covs["SLO-tiered windows (40% of fleet)"] <= covs["no scheduling"] {
		t.Errorf("tiered scheduling should improve coverage: %v", covs)
	}
}

func TestGeoBalanceStudy(t *testing.T) {
	tb, err := GeoBalanceStudy(0.3)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range tb.Rows {
		var v float64
		if _, err := fscan(row[1], &v); err == nil {
			vals[row[0]] = v
		}
	}
	if vals["fleet coverage with migration (%)"] < vals["fleet coverage without migration (%)"] {
		t.Errorf("migration should not reduce fleet coverage: %v", vals)
	}
	if vals["energy migrated (GWh)"] <= 0 {
		t.Errorf("expected some migration across 13 heterogeneous sites")
	}
	if vals["operational carbon with migration (kt)"] > vals["operational carbon without migration (kt)"] {
		t.Errorf("migration should not increase carbon")
	}
}

func TestCurtailmentAbsorptionStudy(t *testing.T) {
	tb, err := CurtailmentAbsorptionStudy("OR", 4.0)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range tb.Rows {
		var v float64
		if _, err := fscan(row[1], &v); err == nil {
			vals[row[0]] = v
		}
	}
	if vals["grid curtailed energy (GWh/yr)"] <= 0 {
		t.Fatal("expected material curtailment at 4x renewables in BPAT")
	}
	before := vals["DC load in curtailment hours, unshifted (GWh)"]
	after := vals["DC load in curtailment hours, shifted (GWh)"]
	if after <= before {
		t.Errorf("shifting should move load into curtailment hours: %v -> %v", before, after)
	}
	if vals["operational carbon avoided (t/yr)"] <= 0 {
		t.Errorf("absorbing curtailment should avoid carbon")
	}
}

func TestMarginalStudy(t *testing.T) {
	tb, err := MarginalStudy("UT")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var before, after, red float64
		if _, err := fscan(row[2], &before); err != nil {
			t.Fatal(err)
		}
		if _, err := fscan(row[3], &after); err != nil {
			t.Fatal(err)
		}
		if _, err := fscan(row[4], &red); err != nil {
			t.Fatal(err)
		}
		if before <= 0 || after <= 0 || after >= before {
			t.Errorf("%s: shifting should reduce carbon: %v -> %v", row[0], before, after)
		}
		if red <= 0 || red >= 100 {
			t.Errorf("%s: implausible reduction %v%%", row[0], red)
		}
	}
}

func TestEnsembleStudy(t *testing.T) {
	tb, err := EnsembleStudy("UT", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2+3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var p10, p90 float64
	if _, err := fscan(tb.Rows[0][1], &p10); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(tb.Rows[0][3], &p90); err != nil {
		t.Fatal(err)
	}
	if p10 > p90 {
		t.Fatalf("P10 %v above P90 %v", p10, p90)
	}
}

func TestPUEStudy(t *testing.T) {
	tb, err := PUEStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 { // 2 sites × 3 demand models
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := 0; i < len(tb.Rows); i += 3 {
		var itE, pueE float64
		if _, err := fscan(tb.Rows[i][2], &itE); err != nil {
			t.Fatal(err)
		}
		if _, err := fscan(tb.Rows[i+2][2], &pueE); err != nil {
			t.Fatal(err)
		}
		// Cooling overhead must add energy.
		if pueE <= itE {
			t.Errorf("%s: PUE demand %v should exceed IT %v", tb.Rows[i][0], pueE, itE)
		}
		// Constant and seasonal PUE carry the same annual energy.
		var constE float64
		if _, err := fscan(tb.Rows[i+1][2], &constE); err != nil {
			t.Fatal(err)
		}
		if diff := constE - pueE; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: constant (%v) and seasonal (%v) energy should match", tb.Rows[i][0], constE, pueE)
		}
	}
}

func TestCoverageAtlas(t *testing.T) {
	tb, err := CoverageAtlas()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 13 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var c8 float64
		if _, err := fscan(row[5], &c8); err != nil {
			t.Fatalf("%s: bad 8x cell %q", row[0], row[5])
		}
		solarOnly := row[1] == "majorly solar"
		if solarOnly && c8 > 60 {
			t.Errorf("%s: solar-only region coverage %v should be capped", row[0], c8)
		}
		if !solarOnly && c8 < 90 {
			t.Errorf("%s: wind/hybrid region coverage %v should be high at 8x", row[0], c8)
		}
	}
}

func TestHorizonStudy(t *testing.T) {
	tb, err := HorizonStudy("UT", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 { // 5 years + total
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var first, last float64
	if _, err := fscan(tb.Rows[0][1], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(tb.Rows[4][1], &last); err != nil {
		t.Fatal(err)
	}
	// Demand growth outpaces flexibility growth for a fixed installation.
	if last > first {
		t.Errorf("coverage should erode over the horizon: %v -> %v", first, last)
	}
	var capFrac float64
	if _, err := fscan(tb.Rows[4][3], &capFrac); err != nil {
		t.Fatal(err)
	}
	if capFrac >= 100 || capFrac <= 50 {
		t.Errorf("battery capacity after 5 years = %v%%, expected gradual fade", capFrac)
	}
}

func TestDRSignalStudy(t *testing.T) {
	tb, err := DRSignalStudy("TX")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	reductions := map[string]float64{}
	for _, row := range tb.Rows {
		var r float64
		if _, err := fscan(row[2], &r); err != nil {
			t.Fatal(err)
		}
		reductions[row[0]] = r
	}
	// Every signal should reduce carbon-weighted grid energy; the
	// renewable-deficit signal (which directly optimizes the objective)
	// should be at least as good as the proxies.
	for name, r := range reductions {
		if name == "none (baseline)" {
			continue
		}
		if r <= 0 {
			t.Errorf("%s: no carbon reduction (%v%%)", name, r)
		}
	}
	if reductions["renewable deficit (paper)"] < reductions["time-of-use price"]-1 {
		t.Errorf("deficit signal should not lose to the price proxy: %v", reductions)
	}
}

func TestSensitivityStudy(t *testing.T) {
	tb, err := SensitivityStudy("UT")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 { // defaults + 8 variants
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	deltas := map[string]float64{}
	for _, row := range tb.Rows[1:] {
		var d float64
		if _, err := fscan(row[4], &d); err != nil {
			t.Fatal(err)
		}
		deltas[row[0]+"/"+row[1]] = d
	}
	// Lowering an embodied factor can only lower (or hold) the optimal
	// total; raising it can only raise (or hold) it.
	for key, d := range deltas {
		if strings.Contains(key, "(low)") && d > 0.01 {
			t.Errorf("%s: lower embodied factor raised the optimum by %v%%", key, d)
		}
		if strings.Contains(key, "(high)") && d < -0.01 {
			t.Errorf("%s: higher embodied factor lowered the optimum by %v%%", key, -d)
		}
	}
}

func TestFWRSweep(t *testing.T) {
	tb, err := FWRSweep("UT")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var prev float64 = -1
	for _, row := range tb.Rows {
		var cov float64
		if _, err := fscan(row[1], &cov); err != nil {
			t.Fatal(err)
		}
		// More flexibility never hurts coverage at fixed capacity.
		if cov < prev-1e-9 {
			t.Fatalf("coverage dropped as flexibility rose: %v after %v", cov, prev)
		}
		prev = cov
	}
}

func TestCostStudy(t *testing.T) {
	tb, err := CostStudy("UT")
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	milestones := 0
	for _, row := range tb.Rows {
		if !strings.HasPrefix(row[0], "cheapest at") {
			continue
		}
		var capex float64
		if _, err := fscan(row[1], &capex); err != nil {
			continue // unreachable milestone
		}
		milestones++
		// Higher coverage milestones must cost at least as much.
		if capex < prev-1e-9 {
			t.Errorf("coverage milestone got cheaper: %v after %v", capex, prev)
		}
		prev = capex
	}
	if milestones < 2 {
		t.Fatalf("too few reachable coverage milestones: %d", milestones)
	}
}

func TestRobustnessStudy(t *testing.T) {
	tb, err := RobustnessStudy("UT", 2)
	if err != nil {
		t.Fatal(err)
	}
	// base + 2 alt years + 2 summary rows.
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var base float64
	if _, err := fscan(tb.Rows[0][1], &base); err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows[1:3] {
		var cov float64
		if _, err := fscan(row[1], &cov); err != nil {
			t.Fatal(err)
		}
		// A design tuned on one weather year should not collapse on
		// another year of the same climate.
		if cov < base-15 {
			t.Errorf("design collapses on %s: %v vs base %v", row[0], cov, base)
		}
	}
}

func TestOptimizerStudy(t *testing.T) {
	tb, err := OptimizerStudy("UT")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	evals := map[string]float64{}
	gaps := map[string]float64{}
	for _, row := range tb.Rows {
		var e, g float64
		if _, err := fscan(row[1], &e); err != nil {
			t.Fatal(err)
		}
		if _, err := fscan(row[3], &g); err != nil {
			t.Fatal(err)
		}
		evals[row[0]] = e
		gaps[row[0]] = g
	}
	// The adaptive methods must not be worse than the coarse grid they
	// start from, and must use far fewer evaluations than the fine grid.
	if gaps["zoom refinement"] > gaps["coarse exhaustive"]+1e-9 {
		t.Errorf("refinement worse than coarse: %v", gaps)
	}
	if evals["zoom refinement"] >= evals["fine exhaustive (reference)"] {
		t.Errorf("refinement should be cheaper than the fine grid: %v", evals)
	}
	if evals["coordinate descent"] >= evals["fine exhaustive (reference)"] {
		t.Errorf("descent should be cheaper than the fine grid: %v", evals)
	}
	// Neither adaptive method should be far worse than the fine reference.
	for _, m := range []string{"zoom refinement", "coordinate descent"} {
		if gaps[m] > 10 {
			t.Errorf("%s gap vs fine = %v%%, too large", m, gaps[m])
		}
	}
}

func TestJobSimStudy(t *testing.T) {
	tb, err := JobSimStudy("UT")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	carbons := map[string]float64{}
	waits := map[string]float64{}
	for _, row := range tb.Rows {
		var c, w float64
		if _, err := fscan(row[1], &c); err != nil {
			t.Fatal(err)
		}
		if _, err := fscan(row[3], &w); err != nil {
			t.Fatal(err)
		}
		carbons[row[0]] = c
		waits[row[0]] = w
	}
	if carbons["defer-to-green"] >= carbons["run-immediately"] {
		t.Errorf("defer-to-green should cut carbon at job level: %v", carbons)
	}
	if waits["defer-to-green"] <= waits["run-immediately"] {
		t.Errorf("defer-to-green should pay in wait time: %v", waits)
	}
}

func TestDispatchStudy(t *testing.T) {
	tb, err := DispatchStudy("UT", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var gap float64
		if _, err := fscan(row[3], &gap); err != nil {
			t.Fatal(err)
		}
		// The DP has full foresight: no policy can beat it beyond residual
		// discretization slack, and every sensible policy should be within
		// tens of percent.
		if gap < -1 {
			t.Errorf("%s beats 'optimal' by %v%% — DP resolution too coarse", row[0], -gap)
		}
		if gap > 50 {
			t.Errorf("%s gap %v%% implausibly large", row[0], gap)
		}
	}
}

func TestSearchAblation(t *testing.T) {
	tb, err := SearchAblation("NC")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows[1:] {
		penalty, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad penalty cell %q", row[3])
		}
		// Removing a dimension can never improve the optimum (subset space).
		if penalty < -0.01 {
			t.Errorf("%s: negative ablation penalty %v", row[0], penalty)
		}
	}
	// In a solar-only region, removing the battery must hurt a lot — it is
	// the only way past the ~50% solar ceiling.
	var noBattery, noWind float64
	for _, row := range tb.Rows {
		v, _ := strconv.ParseFloat(row[3], 64)
		switch row[0] {
		case "no battery":
			noBattery = v
		case "no wind investment":
			noWind = v
		}
	}
	if noBattery < 10 {
		t.Errorf("NC no-battery penalty = %v%%, expected large", noBattery)
	}
	// NC's grid has no wind, so removing wind investment should cost ~0.
	if noWind > 1 {
		t.Errorf("NC no-wind penalty = %v%%, expected ~0", noWind)
	}
}
