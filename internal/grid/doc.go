// Package grid models the power grids feeding Carbon Explorer's
// datacenters: the ten balancing authorities (BAs) of the paper's Table 1,
// their hourly generation by source, their hourly carbon intensity
// (weighted by the Table 2 lifecycle intensities), and curtailment of
// excess renewable supply (Section 3's Figure 4). It also carries the
// registry of Meta's thirteen U.S. datacenter sites with their regional
// renewable investments.
//
// Grid data is produced by the synthetic generator in internal/synth, tuned
// per BA to the paper's qualitative profiles: BPAT/MISO/SWPP are majorly
// wind, DUK/SOCO/TVA majorly solar, and ERCO/PACE/PJM/PNM mixed.
package grid
