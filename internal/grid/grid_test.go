package grid

import (
	"math"
	"testing"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/stats"
	"carbonexplorer/internal/timeseries"
)

func TestProfileLookup(t *testing.T) {
	p, err := Profile("BPAT")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code != "BPAT" || p.Class != MajorlyWind {
		t.Fatalf("BPAT profile wrong: %+v", p)
	}
	if _, err := Profile("NOPE"); err == nil {
		t.Fatalf("unknown BA should error")
	}
}

func TestMustProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustProfile should panic on unknown code")
		}
	}()
	MustProfile("NOPE")
}

func TestCodesCoverTable1(t *testing.T) {
	codes := Codes()
	if len(codes) != 10 {
		t.Fatalf("want 10 balancing authorities, got %d: %v", len(codes), codes)
	}
	want := map[string]bool{
		"BPAT": true, "MISO": true, "SWPP": true, "DUK": true, "SOCO": true,
		"TVA": true, "ERCO": true, "PACE": true, "PJM": true, "PNM": true,
	}
	for _, c := range codes {
		if !want[c] {
			t.Errorf("unexpected BA %q", c)
		}
	}
}

func TestClassDistribution(t *testing.T) {
	// Paper: three wind BAs, three solar, four mixed.
	counts := map[Class]int{}
	for _, c := range Codes() {
		counts[MustProfile(c).Class]++
	}
	if counts[MajorlyWind] != 3 || counts[MajorlySolar] != 3 || counts[Hybrid] != 4 {
		t.Fatalf("class distribution %v, want 3 wind / 3 solar / 4 hybrid", counts)
	}
}

func TestClassString(t *testing.T) {
	if MajorlyWind.String() != "majorly wind" || Hybrid.String() != "hybrid" {
		t.Fatalf("class names wrong")
	}
	if got := Class(9).String(); got != "class(9)" {
		t.Fatalf("out-of-range class name %q", got)
	}
}

func TestSitesTable1(t *testing.T) {
	all := Sites()
	if len(all) != 13 {
		t.Fatalf("want 13 sites, got %d", len(all))
	}
	// Totals must match the sums of Table 1's per-row figures: 3931 MW solar
	// and 1823 MW wind. (The paper's printed totals row swaps the two
	// columns relative to its own rows; the rows are authoritative — e.g.
	// Utah is explicitly solar-heavy at 694 MW solar / 239 MW wind.)
	var solar, wind float64
	for _, s := range all {
		solar += s.SolarInvestMW
		wind += s.WindInvestMW
		if _, err := Profile(s.BA); err != nil {
			t.Errorf("site %s references unknown BA %s", s.ID, s.BA)
		}
	}
	if math.Abs(solar-3931) > 1 {
		t.Errorf("total solar investment %v, want ~3931", solar)
	}
	if math.Abs(wind-1823) > 1 {
		t.Errorf("total wind investment %v, want ~1823", wind)
	}
	if math.Abs(solar+wind-5754) > 1 {
		t.Errorf("grand total %v, want Table 1's 5754", solar+wind)
	}
}

func TestSiteByID(t *testing.T) {
	s, err := SiteByID("UT")
	if err != nil {
		t.Fatal(err)
	}
	if s.BA != "PACE" || s.SolarInvestMW != 694 || s.WindInvestMW != 239 {
		t.Fatalf("UT site wrong: %+v", s)
	}
	if s.InvestTotalMW() != 933 {
		t.Fatalf("UT total investment = %v", s.InvestTotalMW())
	}
	if _, err := SiteByID("ZZ"); err == nil {
		t.Fatalf("unknown site should error")
	}
}

func TestMustSitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustSite should panic")
		}
	}()
	MustSite("ZZ")
}

func TestGenerateYearShape(t *testing.T) {
	y := GenerateYear(MustProfile("PACE"))
	if y.Hours() != timeseries.HoursPerYear {
		t.Fatalf("Hours = %d", y.Hours())
	}
	for s := range y.BySource {
		if y.BySource[s].MinValue() < 0 {
			t.Errorf("source %v has negative generation", carbon.Source(s))
		}
	}
	if y.Demand.MinValue() <= 0 {
		t.Fatalf("demand must stay positive")
	}
}

func TestGenerateYearDeterministic(t *testing.T) {
	a := GenerateYear(MustProfile("ERCO"))
	b := GenerateYear(MustProfile("ERCO"))
	if !a.Demand.Equal(b.Demand, 0) {
		t.Fatalf("demand not deterministic")
	}
	for s := range a.BySource {
		if !a.BySource[s].Equal(b.BySource[s], 0) {
			t.Fatalf("source %v not deterministic", carbon.Source(s))
		}
	}
}

func TestSupplyMeetsDemand(t *testing.T) {
	y := GenerateYear(MustProfile("PJM"))
	for h := 0; h < y.Hours(); h += 97 {
		total := float64(y.MixAt(h).Total())
		if total < y.Demand.At(h)-1e-6 {
			t.Fatalf("hour %d: supply %v < demand %v", h, total, y.Demand.At(h))
		}
	}
}

func TestWindRegionsHaveWind(t *testing.T) {
	for _, code := range []string{"BPAT", "MISO", "SWPP"} {
		y := GenerateYear(MustProfile(code))
		wind := y.WindShape().Sum()
		solar := y.SolarShape().Sum()
		if wind <= solar {
			t.Errorf("%s: wind %v should dominate solar %v", code, wind, solar)
		}
	}
}

func TestSolarRegionsHaveNoMeaningfulWind(t *testing.T) {
	for _, code := range []string{"DUK", "SOCO", "TVA"} {
		y := GenerateYear(MustProfile(code))
		wind := y.WindShape().Sum()
		solar := y.SolarShape().Sum()
		if solar <= wind {
			t.Errorf("%s: solar %v should dominate wind %v", code, solar, wind)
		}
	}
}

func TestBPATHasDeepValleys(t *testing.T) {
	// Paper: in BPAT the best ten days provide ~2.5x the average while the
	// worst days offer very little.
	y := GenerateYear(MustProfile("BPAT"))
	daily := y.WindShape().DailyTotals().Values()
	s := stats.Summarize(daily)
	top10 := stats.MeanOfTopK(daily, 10)
	bottom10 := stats.MeanOfBottomK(daily, 10)
	if ratio := top10 / s.Mean; ratio < 1.7 || ratio > 4 {
		t.Errorf("BPAT best-10/mean = %v, want roughly 2.5", ratio)
	}
	if bottom10 > 0.15*s.Mean {
		t.Errorf("BPAT worst-10 days = %v of mean, want near-zero valleys", bottom10/s.Mean)
	}
}

func TestSWPPValleysShallowerThanBPAT(t *testing.T) {
	// Paper: Nebraska/Iowa are the best wind sites because their supply
	// valleys are shallowest.
	worstShare := func(code string) float64 {
		y := GenerateYear(MustProfile(code))
		daily := y.WindShape().DailyTotals().Values()
		return stats.MeanOfBottomK(daily, 10) / stats.Summarize(daily).Mean
	}
	if swpp, bpat := worstShare("SWPP"), worstShare("BPAT"); swpp <= bpat {
		t.Errorf("SWPP worst-day share %v should exceed BPAT %v", swpp, bpat)
	}
}

func TestCarbonIntensityRange(t *testing.T) {
	y := GenerateYear(MustProfile("SOCO"))
	ci := y.CarbonIntensity()
	if ci.MinValue() < 11 || ci.MaxValue() > 820 {
		t.Fatalf("grid CI out of physical bounds: [%v, %v]", ci.MinValue(), ci.MaxValue())
	}
}

func TestSolarLowersMiddayIntensity(t *testing.T) {
	// Solar deployment should lower a grid's midday carbon intensity
	// relative to the same grid without renewables.
	p := MustProfile("DUK")
	with := GenerateYearScaled(p, 1.0).CarbonIntensity().AverageDay()
	without := GenerateYearScaled(p, 0.0).CarbonIntensity().AverageDay()
	middayWith := (with.At(11) + with.At(12) + with.At(13)) / 3
	middayWithout := (without.At(11) + without.At(12) + without.At(13)) / 3
	if middayWith >= middayWithout {
		t.Fatalf("solar should lower midday CI: with=%v without=%v", middayWith, middayWithout)
	}
}

func TestRenewableShare(t *testing.T) {
	y := GenerateYear(MustProfile("ERCO"))
	share := y.RenewableShare()
	if share <= 0.05 || share >= 0.8 {
		t.Fatalf("ERCO renewable share = %v, implausible", share)
	}
}

func TestCurtailmentGrowsWithRenewables(t *testing.T) {
	p := MustProfile("BPAT")
	low := GenerateYearScaled(p, 1.0)
	high := GenerateYearScaled(p, 6.0)
	if high.CurtailedFraction() <= low.CurtailedFraction() {
		t.Fatalf("curtailment should grow with renewable share: %v -> %v",
			low.CurtailedFraction(), high.CurtailedFraction())
	}
}

func TestCurtailmentStudyMonotonicTrend(t *testing.T) {
	labels := []string{"2015", "2017", "2019", "2021"}
	scales := []float64{1, 2.5, 4, 6}
	pts := CurtailmentStudy(MustProfile("BPAT"), labels, scales)
	if len(pts) != 4 {
		t.Fatalf("want 4 points")
	}
	// Fit a line through (scale, curtailed): the trend must be upward.
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, pt := range pts {
		xs[i] = pt.RenewableScale
		ys[i] = pt.CurtailedFraction
	}
	if fit := stats.FitLine(xs, ys); fit.Slope <= 0 {
		t.Fatalf("curtailment trendline slope = %v, want positive", fit.Slope)
	}
}

func TestCurtailmentStudyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("mismatched labels/scales should panic")
		}
	}()
	CurtailmentStudy(MustProfile("BPAT"), []string{"a"}, []float64{1, 2})
}

func TestMarginalIntensity(t *testing.T) {
	y := GenerateYear(MustProfile("PACE"))
	marginal := y.MarginalIntensity()
	if marginal.Len() != y.Hours() {
		t.Fatalf("length %d", marginal.Len())
	}
	gas := float64(carbon.NaturalGas.Intensity())
	coal := float64(carbon.Coal.Intensity())
	for h := 0; h < y.Hours(); h += 131 {
		v := marginal.At(h)
		// Marginal intensity is one of: renewable mix (11-41), gas, coal.
		if !(v == gas || v == coal || (v >= 11 && v <= 41)) {
			t.Fatalf("hour %d: marginal %v not a recognized regime", h, v)
		}
	}
	// On a clean-baseload grid (DUK is nuclear-heavy) the marginal unit is
	// fossil while the average blends in the clean baseload, so marginal
	// exceeds average. (On coal-heavy grids the relation can invert.)
	duk := GenerateYear(MustProfile("DUK"))
	if duk.MarginalIntensity().Mean() <= duk.CarbonIntensity().Mean() {
		t.Fatalf("marginal mean %v should exceed average mean %v on a nuclear-heavy grid",
			duk.MarginalIntensity().Mean(), duk.CarbonIntensity().Mean())
	}
}

func TestMarginalIntensityCurtailmentRegime(t *testing.T) {
	y := GenerateYearScaled(MustProfile("BPAT"), 6.0)
	if y.Curtailed.Sum() == 0 {
		t.Skip("no curtailment at this scale")
	}
	marginal := y.MarginalIntensity()
	found := false
	for h := 0; h < y.Hours(); h++ {
		if y.Curtailed.At(h) > 0 {
			if marginal.At(h) > 41 {
				t.Fatalf("hour %d: curtailment regime marginal = %v, want renewable mix", h, marginal.At(h))
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no curtailment hours inspected")
	}
}

func TestPriceSeriesTracksFossilShare(t *testing.T) {
	y := GenerateYear(MustProfile("ERCO"))
	price := y.PriceSeries(75)
	if price.Len() != y.Hours() {
		t.Fatalf("price length %d", price.Len())
	}
	// Prices stay within [-base, base] and are positive on average.
	if price.MaxValue() > 75+1e-9 || price.MinValue() < -75 {
		t.Fatalf("price out of range: [%v, %v]", price.MinValue(), price.MaxValue())
	}
	if price.Mean() <= 0 {
		t.Fatalf("mean price %v should be positive", price.Mean())
	}
	// Price should correlate positively with carbon intensity: both track
	// the fossil share (the paper's premise that price signals can proxy
	// carbon signals).
	ci := y.CarbonIntensity()
	corr := stats.Pearson(price.Values(), ci.Values())
	if corr < 0.5 {
		t.Fatalf("price-CI correlation = %v, want strong positive", corr)
	}
}

func TestPriceSeriesNegativeOnCurtailment(t *testing.T) {
	// Scale renewables up until curtailment occurs, then check for
	// negative-price hours.
	y := GenerateYearScaled(MustProfile("BPAT"), 6.0)
	if y.CurtailedFraction() == 0 {
		t.Skip("no curtailment at this scale")
	}
	price := y.PriceSeries(75)
	neg := price.CountWhere(func(v float64) bool { return v < 0 })
	if neg == 0 {
		t.Fatalf("curtailment hours should produce negative prices")
	}
}

func TestMixAtConsistency(t *testing.T) {
	y := GenerateYear(MustProfile("PNM"))
	m := y.MixAt(1000)
	var manual float64
	for s := range y.BySource {
		manual += y.BySource[s].At(1000)
	}
	if math.Abs(float64(m.Total())-manual) > 1e-9 {
		t.Fatalf("MixAt total %v != manual %v", m.Total(), manual)
	}
}

func TestTotalGenerationPositive(t *testing.T) {
	y := GenerateYear(MustProfile("TVA"))
	if y.TotalGeneration() <= 0 {
		t.Fatalf("no generation")
	}
}
