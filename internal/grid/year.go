package grid

import (
	"math"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/synth"
	"carbonexplorer/internal/timeseries"
	"carbonexplorer/internal/units"
)

// Year holds one simulated year of hourly grid operation for a balancing
// authority: generation dispatched per source, the BA's own demand, and
// renewable energy curtailed because supply exceeded demand.
type Year struct {
	// Profile is the balancing authority this year was generated for.
	Profile BAProfile
	// BySource holds dispatched generation per source in MW (equivalently
	// MWh per hourly step).
	BySource [carbon.NumSources]timeseries.Series
	// Demand is the balancing authority's own hourly load in MW.
	Demand timeseries.Series
	// Curtailed is renewable generation (MW) shed when must-run supply
	// exceeded demand.
	Curtailed timeseries.Series
	// PotentialWind and PotentialSolar are the weather-driven generation
	// (MW) before curtailment — what the installed farms produce. These are
	// the shapes scaled when projecting a datacenter's PPA investments,
	// because a purchased farm's output follows weather, not the local
	// grid's dispatch constraints.
	PotentialWind  timeseries.Series
	PotentialSolar timeseries.Series
}

// GenerateYear simulates one hourly year for the balancing authority. The
// simulation is deterministic in the profile's Seed.
//
// Dispatch follows a simplified merit order: nuclear runs flat; hydro and
// renewables are must-take (renewables are curtailed when total must-run
// supply exceeds demand, hydro spills first); coal then gas then other fill
// the residual demand.
func GenerateYear(p BAProfile) *Year {
	return GenerateYearScaled(p, 1.0)
}

// GenerateYearScaled simulates a year with the BA's wind and solar capacity
// multiplied by renewableScale, holding demand and thermal capacity fixed.
// This reproduces the paper's Figure 4 setting, where a grid's renewable
// share grows over calendar years and curtailment grows with it.
func GenerateYearScaled(p BAProfile, renewableScale float64) *Year {
	hours := timeseries.HoursPerYear

	wp := p.Wind
	if wp.Seed == 0 {
		wp.Seed = p.Seed*7919 + 1
	}
	sp := p.Solar
	if sp.Seed == 0 {
		sp.Seed = p.Seed*7919 + 2
	}
	windCF := synth.WindCapacityFactor(wp, hours)
	solarCF := synth.SolarCapacityFactor(sp, hours)

	y := &Year{Profile: p}
	y.Demand = demandSeries(p, hours)
	y.Curtailed = timeseries.New(hours)
	for i := range y.BySource {
		y.BySource[i] = timeseries.New(hours)
	}

	windCap := p.WindMW * renewableScale
	solarCap := p.SolarMW * renewableScale
	y.PotentialWind = windCF.Scale(windCap)
	y.PotentialSolar = solarCF.Scale(solarCap)

	// Thermal minimum generation: coal units cannot cycle daily and gas
	// fleets keep reliability-must-run units online, so a floor of
	// inflexible thermal output persists even in renewable-rich hours.
	// This floor is what forces curtailment when midday solar surges — the
	// California dynamic of Figure 4.
	coalMin := p.CoalMW * 0.35
	gasMin := p.GasMW * 0.08

	hydroRNG := synth.NewRNG(p.Seed*7919 + 3)
	for h := 0; h < hours; h++ {
		demand := y.Demand.At(h)

		nuclear := p.NuclearMW * 0.92
		wind := windCap * windCF.At(h)
		solar := solarCap * solarCF.At(h)

		// Hydro follows a spring-peaking seasonal availability with mild
		// stochastic variation; it is dispatched flexibly below that limit
		// and spills first when supply exceeds demand.
		day := (h / 24) % 365
		hydroAvail := p.HydroMW * (0.45 + 0.2*math.Cos(2*math.Pi*(float64(day)-120)/365) + 0.03*hydroRNG.NormFloat64())
		if hydroAvail < 0 {
			hydroAvail = 0
		}

		floor := nuclear + coalMin + gasMin
		mustRun := floor + wind + solar
		var hydro float64
		switch {
		case mustRun >= demand:
			// Excess inflexible supply: spill all hydro, curtail renewables
			// down toward demand (the thermal floor cannot back down).
			excess := mustRun - demand
			renewable := wind + solar
			if renewable > 0 {
				cut := math.Min(excess, renewable)
				frac := cut / renewable
				wind -= wind * frac
				solar -= solar * frac
				y.Curtailed.Set(h, cut)
			}
		default:
			hydro = math.Min(hydroAvail, demand-mustRun)
		}

		residual := demand - floor - wind - solar - hydro
		if residual < 0 {
			residual = 0
		}
		coalExtra := math.Min(residual, math.Max(p.CoalMW*0.85-coalMin, 0))
		residual -= coalExtra
		gasExtra := math.Min(residual, math.Max(p.GasMW*0.9-gasMin, 0))
		residual -= gasExtra
		other := math.Min(residual, p.OtherMW*0.9)
		residual -= other
		// Any remaining unmet demand is imported; account it as gas-fired,
		// the marginal source on most U.S. grids.
		coal := coalMin + coalExtra
		gas := gasMin + gasExtra + residual

		y.BySource[carbon.Nuclear].Set(h, nuclear)
		y.BySource[carbon.Wind].Set(h, wind)
		y.BySource[carbon.Solar].Set(h, solar)
		y.BySource[carbon.Water].Set(h, hydro)
		y.BySource[carbon.Coal].Set(h, coal)
		y.BySource[carbon.NaturalGas].Set(h, gas)
		y.BySource[carbon.Other].Set(h, other)
	}
	return y
}

// demandSeries models the balancing authority's own load: a diurnal swing
// (evening peak), a summer-peaking seasonal component, a weekday/weekend
// split, and small noise.
func demandSeries(p BAProfile, hours int) timeseries.Series {
	rng := synth.NewRNG(p.Seed*7919 + 4)
	return timeseries.Generate(hours, func(h int) float64 {
		hour := h % 24
		day := (h / 24) % 365
		weekday := (h / 24) % 7
		diurnal := 0.10 * math.Sin(2*math.Pi*(float64(hour)-9)/24)
		seasonal := 0.12 * math.Cos(2*math.Pi*(float64(day)-200)/365)
		weekend := 0.0
		if weekday >= 5 {
			weekend = -0.04
		}
		noise := 0.015 * rng.NormFloat64()
		f := 0.70 + diurnal + seasonal + weekend + noise
		if f < 0.3 {
			f = 0.3
		}
		return p.PeakDemandMW * f
	})
}

// Hours returns the number of simulated hours.
func (y *Year) Hours() int { return y.Demand.Len() }

// WindShape returns the hourly potential wind generation in MW. Together
// with SolarShape it is the basis for the paper's renewable-investment
// projection: the series is rescaled so its annual maximum equals the
// investment capacity under study.
func (y *Year) WindShape() timeseries.Series { return y.PotentialWind.Clone() }

// SolarShape returns the hourly potential solar generation in MW.
func (y *Year) SolarShape() timeseries.Series { return y.PotentialSolar.Clone() }

// MixAt returns the generation mix in hour h.
func (y *Year) MixAt(h int) carbon.Mix {
	var m carbon.Mix
	for s := range y.BySource {
		m[s] = units.MegaWattHours(y.BySource[s].At(h))
	}
	return m
}

// CarbonIntensity returns the grid's hourly consumption carbon intensity in
// gCO2eq/kWh, weighting each source's Table 2 lifecycle intensity by its
// share of dispatched generation.
func (y *Year) CarbonIntensity() timeseries.Series {
	hours := y.Hours()
	out := timeseries.New(hours)
	for h := 0; h < hours; h++ {
		out.Set(h, float64(y.MixAt(h).Intensity()))
	}
	return out
}

// MarginalIntensity returns the grid's hourly *marginal* carbon intensity
// in gCO2eq/kWh: the intensity of the generator that would serve one more
// MWh of load. When flexible fossil capacity is running, that marginal unit
// is gas (or coal while gas is saturated); in hours where renewables are
// being curtailed, additional load would simply absorb curtailed energy and
// the marginal intensity is the renewable mix's.
//
// Average (CarbonIntensity) and marginal intensity answer different
// questions: average prices the energy consumed; marginal prices the
// *change* a scheduling decision causes. Carbon-aware computing literature
// debates which to optimize — Carbon Explorer provides both.
func (y *Year) MarginalIntensity() timeseries.Series {
	hours := y.Hours()
	out := timeseries.New(hours)
	gasMax := y.Profile.GasMW * 0.9
	for h := 0; h < hours; h++ {
		switch {
		case y.Curtailed.At(h) > 0:
			// Extra load would soak up curtailed renewables.
			wind := y.BySource[carbon.Wind].At(h)
			solar := y.BySource[carbon.Solar].At(h)
			if wind+solar > 0 {
				mixed := (wind*float64(carbon.Wind.Intensity()) + solar*float64(carbon.Solar.Intensity())) / (wind + solar)
				out.Set(h, mixed)
			} else {
				out.Set(h, float64(carbon.Wind.Intensity()))
			}
		case y.BySource[carbon.NaturalGas].At(h) < gasMax:
			// Gas has headroom: it is the marginal unit.
			out.Set(h, float64(carbon.NaturalGas.Intensity()))
		default:
			// Gas saturated: coal (or imports priced as coal) is marginal.
			out.Set(h, float64(carbon.Coal.Intensity()))
		}
	}
	return out
}

// TotalGeneration returns total dispatched energy over the year in MWh.
func (y *Year) TotalGeneration() units.MegaWattHours {
	var t float64
	for s := range y.BySource {
		t += y.BySource[s].Sum()
	}
	return units.MegaWattHours(t)
}

// RenewableShare returns wind+solar's share of dispatched generation.
func (y *Year) RenewableShare() float64 {
	total := float64(y.TotalGeneration())
	if total <= 0 {
		return 0
	}
	return (y.BySource[carbon.Wind].Sum() + y.BySource[carbon.Solar].Sum()) / total
}

// CurtailedFraction returns curtailed renewable energy as a fraction of the
// renewable energy that would have been generated without curtailment.
func (y *Year) CurtailedFraction() float64 {
	produced := y.BySource[carbon.Wind].Sum() + y.BySource[carbon.Solar].Sum()
	cut := y.Curtailed.Sum()
	if produced+cut <= 0 {
		return 0
	}
	return cut / (produced + cut)
}

// CurtailmentPoint is one year of the Figure 4 curtailment study.
type CurtailmentPoint struct {
	// Label identifies the simulated calendar year.
	Label string
	// RenewableScale is the wind+solar capacity multiplier applied.
	RenewableScale float64
	// RenewableShare is the resulting wind+solar share of generation.
	RenewableShare float64
	// CurtailedFraction is curtailed renewable energy over potential
	// renewable energy.
	CurtailedFraction float64
}

// CurtailmentStudy reproduces the paper's Figure 4 dynamic: as a grid's
// renewable capacity grows year over year, the curtailed fraction of
// renewable energy grows with it. labels and scales must be parallel.
func CurtailmentStudy(p BAProfile, labels []string, scales []float64) []CurtailmentPoint {
	if len(labels) != len(scales) {
		panic("grid: labels and scales must have equal length")
	}
	out := make([]CurtailmentPoint, len(scales))
	for i, scale := range scales {
		y := GenerateYearScaled(p, scale)
		out[i] = CurtailmentPoint{
			Label:             labels[i],
			RenewableScale:    scale,
			RenewableShare:    y.RenewableShare(),
			CurtailedFraction: y.CurtailedFraction(),
		}
	}
	return out
}
