package grid

import (
	"fmt"
	"sort"

	"carbonexplorer/internal/synth"
)

// Class categorizes a balancing authority's renewable profile.
type Class int

// Renewable profile classes.
const (
	// MajorlyWind regions draw renewable supply mostly from wind farms.
	MajorlyWind Class = iota
	// MajorlySolar regions draw renewable supply mostly from solar farms.
	MajorlySolar
	// Hybrid regions have meaningful amounts of both.
	Hybrid
)

// String names the class the way the paper's Figure 15 groups regions.
func (c Class) String() string {
	switch c {
	case MajorlyWind:
		return "majorly wind"
	case MajorlySolar:
		return "majorly solar"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// BAProfile describes one balancing authority: its renewable character and
// the parameters of its synthetic generation model.
type BAProfile struct {
	// Code is the EIA balancing authority code (e.g. "BPAT").
	Code string
	// Name is a human-readable region description.
	Name string
	// Class is the renewable profile category.
	Class Class
	// LatitudeDeg drives the solar day-length model.
	LatitudeDeg float64

	// Installed grid capacity by source, MW. WindMW/SolarMW shape the
	// renewable supply curves; the thermal/hydro/nuclear capacities shape
	// the grid's carbon intensity.
	WindMW    float64
	SolarMW   float64
	GasMW     float64
	CoalMW    float64
	NuclearMW float64
	HydroMW   float64
	OtherMW   float64

	// PeakDemandMW is the BA's own peak load, used for dispatch and
	// curtailment modelling.
	PeakDemandMW float64

	// Wind and Solar hold the weather-model parameters tuned to the
	// region's variability profile (e.g. BPAT's deep calm spells).
	Wind  synth.WindParams
	Solar synth.SolarParams

	// Seed isolates the BA's random streams.
	Seed uint64
}

// profiles is the registry of the ten balancing authorities of Table 1.
// Capacities are stylized (synthetic substitution for EIA data) but their
// ratios follow each BA's public character: BPAT is hydro-heavy with
// volatile wind; SWPP and MISO are wind belts with comparatively steady
// supply (the paper's "shallow valleys"); DUK/SOCO/TVA are Southeast grids
// with solar and substantial nuclear/gas; ERCO/PACE/PJM/PNM blend both.
var profiles = map[string]BAProfile{
	"BPAT": {
		Code: "BPAT", Name: "Bonneville Power Administration (OR)", Class: MajorlyWind,
		LatitudeDeg: 45.5,
		WindMW:      2800, SolarMW: 50, GasMW: 1400, CoalMW: 0, NuclearMW: 1100, HydroMW: 9000, OtherMW: 300,
		PeakDemandMW: 11000,
		Wind: synth.WindParams{
			MeanCF: 0.30, Volatility: 0.34, Reversion: 0.02,
			CalmSpellsPerYear: 18, CalmSpellMeanHours: 42, SeasonalAmplitude: 0.25,
		},
		Solar: synth.SolarParams{LatitudeDeg: 45.5, Clearness: 0.55, CloudPersistence: 0.7, CloudVolatility: 0.18},
		Seed:  101,
	},
	"MISO": {
		Code: "MISO", Name: "Midcontinent ISO (IA)", Class: MajorlyWind,
		LatitudeDeg: 41.6,
		WindMW:      28000, SolarMW: 1500, GasMW: 30000, CoalMW: 35000, NuclearMW: 12000, HydroMW: 1500, OtherMW: 3000,
		PeakDemandMW: 120000,
		Wind: synth.WindParams{
			MeanCF: 0.38, Volatility: 0.26, Reversion: 0.035,
			CalmSpellsPerYear: 8, CalmSpellMeanHours: 22, SeasonalAmplitude: 0.18,
		},
		Solar: synth.SolarParams{LatitudeDeg: 41.6, Clearness: 0.62, CloudPersistence: 0.6, CloudVolatility: 0.16},
		Seed:  102,
	},
	"SWPP": {
		Code: "SWPP", Name: "Southwest Power Pool (NE)", Class: MajorlyWind,
		LatitudeDeg: 41.0,
		WindMW:      27000, SolarMW: 300, GasMW: 25000, CoalMW: 18000, NuclearMW: 2000, HydroMW: 3000, OtherMW: 1500,
		PeakDemandMW: 51000,
		Wind: synth.WindParams{
			MeanCF: 0.42, Volatility: 0.24, Reversion: 0.04,
			CalmSpellsPerYear: 6, CalmSpellMeanHours: 18, SeasonalAmplitude: 0.15,
		},
		Solar: synth.SolarParams{LatitudeDeg: 41.0, Clearness: 0.68, CloudPersistence: 0.55, CloudVolatility: 0.15},
		Seed:  103,
	},
	"DUK": {
		Code: "DUK", Name: "Duke Energy Carolinas (NC)", Class: MajorlySolar,
		LatitudeDeg: 35.2,
		WindMW:      0, SolarMW: 4500, GasMW: 9000, CoalMW: 7000, NuclearMW: 11000, HydroMW: 1200, OtherMW: 700,
		PeakDemandMW: 20000,
		Wind: synth.WindParams{MeanCF: 0.2, Volatility: 0.2, Reversion: 0.05,
			CalmSpellsPerYear: 10, CalmSpellMeanHours: 24, SeasonalAmplitude: 0.1},
		Solar: synth.SolarParams{LatitudeDeg: 35.2, Clearness: 0.66, CloudPersistence: 0.55, CloudVolatility: 0.16},
		Seed:  104,
	},
	"SOCO": {
		Code: "SOCO", Name: "Southern Company (GA)", Class: MajorlySolar,
		LatitudeDeg: 33.5,
		WindMW:      0, SolarMW: 3500, GasMW: 20000, CoalMW: 10000, NuclearMW: 8000, HydroMW: 3000, OtherMW: 1200,
		PeakDemandMW: 36000,
		Wind: synth.WindParams{MeanCF: 0.2, Volatility: 0.2, Reversion: 0.05,
			CalmSpellsPerYear: 10, CalmSpellMeanHours: 24, SeasonalAmplitude: 0.1},
		Solar: synth.SolarParams{LatitudeDeg: 33.5, Clearness: 0.64, CloudPersistence: 0.55, CloudVolatility: 0.17},
		Seed:  105,
	},
	"TVA": {
		Code: "TVA", Name: "Tennessee Valley Authority (TN/AL)", Class: MajorlySolar,
		LatitudeDeg: 35.5,
		WindMW:      0, SolarMW: 1800, GasMW: 12000, CoalMW: 7000, NuclearMW: 8000, HydroMW: 4500, OtherMW: 900,
		PeakDemandMW: 30000,
		Wind: synth.WindParams{MeanCF: 0.22, Volatility: 0.2, Reversion: 0.05,
			CalmSpellsPerYear: 10, CalmSpellMeanHours: 24, SeasonalAmplitude: 0.1},
		Solar: synth.SolarParams{LatitudeDeg: 35.5, Clearness: 0.62, CloudPersistence: 0.55, CloudVolatility: 0.17},
		Seed:  106,
	},
	"ERCO": {
		Code: "ERCO", Name: "ERCOT (TX)", Class: Hybrid,
		LatitudeDeg: 32.8,
		WindMW:      33000, SolarMW: 9000, GasMW: 52000, CoalMW: 13000, NuclearMW: 5000, HydroMW: 500, OtherMW: 1500,
		PeakDemandMW: 74000,
		Wind: synth.WindParams{
			MeanCF: 0.39, Volatility: 0.25, Reversion: 0.04,
			CalmSpellsPerYear: 7, CalmSpellMeanHours: 20, SeasonalAmplitude: 0.15,
		},
		Solar: synth.SolarParams{LatitudeDeg: 32.8, Clearness: 0.72, CloudPersistence: 0.5, CloudVolatility: 0.14},
		Seed:  107,
	},
	"PACE": {
		Code: "PACE", Name: "PacifiCorp East (UT)", Class: Hybrid,
		LatitudeDeg: 40.4,
		WindMW:      3200, SolarMW: 2400, GasMW: 4500, CoalMW: 5500, NuclearMW: 0, HydroMW: 1100, OtherMW: 400,
		PeakDemandMW: 10500,
		Wind: synth.WindParams{
			MeanCF: 0.34, Volatility: 0.26, Reversion: 0.035,
			CalmSpellsPerYear: 9, CalmSpellMeanHours: 26, SeasonalAmplitude: 0.16,
		},
		Solar: synth.SolarParams{LatitudeDeg: 40.4, Clearness: 0.74, CloudPersistence: 0.5, CloudVolatility: 0.13},
		Seed:  108,
	},
	"PJM": {
		Code: "PJM", Name: "PJM Interconnection (IL/VA/OH)", Class: Hybrid,
		LatitudeDeg: 39.0,
		WindMW:      11000, SolarMW: 6000, GasMW: 70000, CoalMW: 50000, NuclearMW: 33000, HydroMW: 3000, OtherMW: 4000,
		PeakDemandMW: 150000,
		Wind: synth.WindParams{
			MeanCF: 0.32, Volatility: 0.27, Reversion: 0.035,
			CalmSpellsPerYear: 10, CalmSpellMeanHours: 28, SeasonalAmplitude: 0.18,
		},
		Solar: synth.SolarParams{LatitudeDeg: 39.0, Clearness: 0.6, CloudPersistence: 0.6, CloudVolatility: 0.17},
		Seed:  109,
	},
	"PNM": {
		Code: "PNM", Name: "Public Service Co. of New Mexico (NM)", Class: Hybrid,
		LatitudeDeg: 34.5,
		WindMW:      1600, SolarMW: 1500, GasMW: 1800, CoalMW: 900, NuclearMW: 400, HydroMW: 100, OtherMW: 200,
		PeakDemandMW: 3300,
		Wind: synth.WindParams{
			MeanCF: 0.36, Volatility: 0.25, Reversion: 0.04,
			CalmSpellsPerYear: 8, CalmSpellMeanHours: 22, SeasonalAmplitude: 0.14,
		},
		Solar: synth.SolarParams{LatitudeDeg: 34.5, Clearness: 0.78, CloudPersistence: 0.45, CloudVolatility: 0.12},
		Seed:  110,
	},
}

// Profile returns the profile of the named balancing authority.
func Profile(code string) (BAProfile, error) {
	p, ok := profiles[code]
	if !ok {
		return BAProfile{}, fmt.Errorf("grid: unknown balancing authority %q", code)
	}
	return p, nil
}

// MustProfile is Profile for statically known codes; it panics on a miss.
func MustProfile(code string) BAProfile {
	p, err := Profile(code)
	if err != nil {
		panic(err)
	}
	return p
}

// Codes lists all balancing-authority codes in sorted order.
func Codes() []string {
	out := make([]string, 0, len(profiles))
	for c := range profiles {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Site is one of Meta's datacenter locations from the paper's Table 1.
type Site struct {
	// ID is the short state-based identifier the paper uses (e.g. "OR").
	ID string
	// Name is the full location.
	Name string
	// BA is the balancing-authority code of the local grid.
	BA string
	// SolarInvestMW and WindInvestMW are Meta's regional renewable
	// investments from Table 1.
	SolarInvestMW float64
	WindInvestMW  float64
	// AvgPowerMW is the site's average power demand. The paper reports
	// 73/51/19 MW for its three worked examples (OR/NC/UT); the remaining
	// values are stylized within the paper's hyperscale range of roughly
	// 20–40+ MW.
	AvgPowerMW float64
}

// InvestTotalMW returns the site's total regional renewable investment.
func (s Site) InvestTotalMW() float64 { return s.SolarInvestMW + s.WindInvestMW }

// sites lists the thirteen datacenter locations of Table 1, in the paper's
// order.
var sites = []Site{
	{ID: "NE", Name: "Sarpy County, Nebraska", BA: "SWPP", SolarInvestMW: 0, WindInvestMW: 515, AvgPowerMW: 38},
	{ID: "OR", Name: "Prineville, Oregon", BA: "BPAT", SolarInvestMW: 100, WindInvestMW: 0, AvgPowerMW: 73},
	{ID: "UT", Name: "Eagle Mountain, Utah", BA: "PACE", SolarInvestMW: 694, WindInvestMW: 239, AvgPowerMW: 19},
	{ID: "NM", Name: "Los Lunas, New Mexico", BA: "PNM", SolarInvestMW: 420, WindInvestMW: 215, AvgPowerMW: 31},
	{ID: "TX", Name: "Fort Worth, Texas", BA: "ERCO", SolarInvestMW: 300, WindInvestMW: 404, AvgPowerMW: 45},
	{ID: "IL", Name: "DeKalb, Illinois", BA: "PJM", SolarInvestMW: 280, WindInvestMW: 103, AvgPowerMW: 33},
	{ID: "VA", Name: "Henrico, Virginia", BA: "PJM", SolarInvestMW: 280, WindInvestMW: 103, AvgPowerMW: 48},
	{ID: "OH", Name: "New Albany, Ohio", BA: "PJM", SolarInvestMW: 280, WindInvestMW: 103, AvgPowerMW: 36},
	{ID: "NC", Name: "Forest City, North Carolina", BA: "DUK", SolarInvestMW: 410, WindInvestMW: 0, AvgPowerMW: 51},
	{ID: "IA", Name: "Altoona, Iowa", BA: "MISO", SolarInvestMW: 0, WindInvestMW: 141, AvgPowerMW: 28},
	{ID: "GA", Name: "Newton County, Georgia", BA: "SOCO", SolarInvestMW: 425, WindInvestMW: 0, AvgPowerMW: 30},
	{ID: "TN", Name: "Gallatin, Tennessee", BA: "TVA", SolarInvestMW: 371, WindInvestMW: 0, AvgPowerMW: 40},
	{ID: "AL", Name: "Huntsville, Alabama", BA: "TVA", SolarInvestMW: 371, WindInvestMW: 0, AvgPowerMW: 35},
}

// Sites returns all thirteen datacenter sites in Table 1 order. The returned
// slice is a copy.
//
// Note on investments: Table 1 reports PJM's 1149 MW and TVA's 742 MW as
// region-level totals shared by multiple sites; here they are split evenly
// across the sites in the region so that per-site totals sum to the paper's
// regional figures.
func Sites() []Site {
	out := make([]Site, len(sites))
	copy(out, sites)
	return out
}

// SiteByID returns the site with the given short identifier.
func SiteByID(id string) (Site, error) {
	for _, s := range sites {
		if s.ID == id {
			return s, nil
		}
	}
	return Site{}, fmt.Errorf("grid: unknown site %q", id)
}

// MustSite is SiteByID for statically known identifiers; it panics on a
// miss.
func MustSite(id string) Site {
	s, err := SiteByID(id)
	if err != nil {
		panic(err)
	}
	return s
}
