package grid

import (
	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/timeseries"
)

// Source indices used by the price model.
const (
	nuclearIdx = carbon.Nuclear
	hydroIdx   = carbon.Water
)

// PriceSeries models an hourly wholesale time-of-use electricity price in
// $/MWh from the grid's dispatch state, following the dynamics the paper
// describes in Section 3.2: prices track the share of expensive marginal
// (fossil) generation, and in curtailment hours they fall to zero or
// negative because wind/solar inputs are free and generators collect
// subsidies for producing.
//
// baseUSDPerMWh anchors the price at an all-fossil hour; a typical value is
// 60–90 $/MWh. The model is intentionally simple — a monotone map from
// dispatch state to price — because Carbon Explorer uses prices as a
// demand-response *signal*, not for revenue accounting.
func (y *Year) PriceSeries(baseUSDPerMWh float64) timeseries.Series {
	hours := y.Hours()
	out := timeseries.New(hours)
	for h := 0; h < hours; h++ {
		mix := y.MixAt(h)
		total := float64(mix.Total())
		if total <= 0 {
			continue
		}
		if y.Curtailed.At(h) > 0 {
			// Oversupply: renewables are being thrown away; the marginal
			// price goes negative in proportion to the curtailed share.
			curtailShare := y.Curtailed.At(h) / (total + y.Curtailed.At(h))
			out.Set(h, -baseUSDPerMWh*0.3*curtailShare)
			continue
		}
		// Price scales with the fossil (marginal-cost) share of dispatch,
		// with a small floor reflecting must-run costs.
		fossil := 1 - mix.RenewableShare() - float64(mix[nuclearIdx]+mix[hydroIdx])/total
		if fossil < 0 {
			fossil = 0
		}
		out.Set(h, baseUSDPerMWh*(0.15+0.85*fossil))
	}
	return out
}
