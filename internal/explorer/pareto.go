package explorer

import "sort"

// ParetoSet incrementally maintains the Pareto frontier in the
// (operational, embodied) carbon plane as outcomes are folded in one at a
// time. It is the streaming counterpart to ParetoFrontier: folding every
// point of a sweep through Add yields the same frontier as calling
// ParetoFrontier on the materialized slice, but the set only ever holds the
// currently non-dominated points — bounded by the frontier size, not the
// sweep size. The sweep engine (internal/sweep) uses it to keep memory flat
// over arbitrarily dense design grids.
//
// Exact (operational, embodied) duplicates keep the first point folded in,
// matching ParetoFrontier's one-representative-per-coordinate behaviour.
//
// The zero value is an empty set ready for use.
type ParetoSet struct {
	points []Outcome
}

// Add folds one outcome into the set: o is discarded if some member weakly
// dominates it (lower-or-equal operational and embodied carbon), otherwise o
// joins and every member it dominates is evicted.
func (ps *ParetoSet) Add(o Outcome) {
	for _, q := range ps.points {
		if q.Operational <= o.Operational && q.Embodied <= o.Embodied {
			// q weakly dominates o (including exact duplicates): o adds
			// nothing, and by the set's invariant nothing q dominates is
			// present either.
			return
		}
	}
	kept := ps.points[:0]
	for _, q := range ps.points {
		if !(o.Operational <= q.Operational && o.Embodied <= q.Embodied) {
			kept = append(kept, q)
		}
	}
	ps.points = append(kept, o)
}

// AddAll folds each outcome into the set, in order — a convenience for
// merging whole frontiers; see MergeFrontiers.
func (ps *ParetoSet) AddAll(outcomes []Outcome) {
	for _, o := range outcomes {
		ps.Add(o)
	}
}

// Len returns the number of non-dominated points currently held.
func (ps *ParetoSet) Len() int { return len(ps.points) }

// MergeFrontiers folds any number of frontiers into one, sorted by
// increasing embodied carbon. Because the Pareto fold is associative and
// commutative up to duplicate-coordinate representatives — the frontier of
// a union equals the frontier of the union of frontiers — partitions of a
// design space can compute frontiers independently and merge them:
//
//	MergeFrontiers(ParetoFrontier(a), ParetoFrontier(b))
//
// equals ParetoFrontier(a ∪ b) for any split. This is the algebraic fact
// the sharded sweep engine (internal/sweep) rests on: per-shard frontiers
// merge into exactly the single-process frontier. When two points carry
// identical (operational, embodied) coordinates, the earlier frontier's
// representative wins, matching ParetoFrontier over the concatenation.
func MergeFrontiers(frontiers ...[]Outcome) []Outcome {
	var ps ParetoSet
	for _, f := range frontiers {
		ps.AddAll(f)
	}
	return ps.Frontier()
}

// Frontier returns the current frontier sorted by increasing embodied
// carbon, like ParetoFrontier. The slice is a copy; the set remains usable.
func (ps *ParetoSet) Frontier() []Outcome {
	out := make([]Outcome, len(ps.points))
	copy(out, ps.points)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Embodied != out[j].Embodied { //carbonlint:allow floatcmp exact-bits sort key keeps the frontier order deterministic
			return out[i].Embodied < out[j].Embodied
		}
		return out[i].Operational < out[j].Operational
	})
	return out
}
