package explorer

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Space bounds the exhaustive design-space search. Datacenter operators
// specify the candidate grids per dimension; the search evaluates their
// cross product.
type Space struct {
	// WindMW and SolarMW are candidate renewable investments.
	WindMW  []float64
	SolarMW []float64
	// BatteryHours are candidate storage sizes expressed in hours of
	// average datacenter compute (the paper's Figure 9 unit); hours are
	// converted to MWh via the site's average demand.
	BatteryHours []float64
	// ExtraCapacityFracs are candidate extra server capacities as a
	// fraction of baseline peak demand.
	ExtraCapacityFracs []float64
	// DoD is the battery depth of discharge used for battery designs.
	DoD float64
	// FlexibleRatio is the scheduler's flexible workload ratio for CAS
	// designs.
	FlexibleRatio float64
}

// DefaultSpace returns a paper-scaled search grid for a site: renewable
// investments ranging to several multiples of average demand, battery sizes
// up to 16 compute-hours, and extra capacity up to 100%.
func DefaultSpace(in *Inputs) Space {
	avg := in.AvgDemandMW()
	scale := func(ms ...float64) []float64 {
		out := make([]float64, len(ms))
		for i, m := range ms {
			out[i] = m * avg
		}
		return out
	}
	return Space{
		WindMW:             scale(0, 1, 2, 4, 6, 10, 16),
		SolarMW:            scale(0, 1, 2, 4, 6, 10, 16),
		BatteryHours:       []float64{0, 1, 2, 4, 8, 16},
		ExtraCapacityFracs: []float64{0, 0.1, 0.25, 0.5, 1.0},
		DoD:                1.0,
		FlexibleRatio:      0.40,
	}
}

// restrict returns the space with dimensions unused by the strategy pinned
// to zero.
func (s Space) restrict(strategy Strategy) Space {
	out := s
	if !strategy.UsesBattery() {
		out.BatteryHours = []float64{0}
	}
	if !strategy.UsesCAS() {
		out.ExtraCapacityFracs = []float64{0}
		out.FlexibleRatio = 0
	}
	return out
}

// designs expands the space into concrete designs.
func (s Space) designs(avgDemandMW float64) []Design {
	var out []Design
	for _, w := range s.WindMW {
		for _, sol := range s.SolarMW {
			for _, bh := range s.BatteryHours {
				for _, ec := range s.ExtraCapacityFracs {
					d := Design{
						WindMW:            w,
						SolarMW:           sol,
						BatteryMWh:        bh * avgDemandMW,
						DoD:               s.DoD,
						FlexibleRatio:     s.FlexibleRatio,
						ExtraCapacityFrac: ec,
					}
					if d.BatteryMWh == 0 {
						d.DoD = 0
					}
					if s.FlexibleRatio == 0 {
						d.ExtraCapacityFrac = 0
					}
					out = append(out, d)
				}
			}
		}
	}
	return dedupeDesigns(out)
}

func dedupeDesigns(in []Design) []Design {
	seen := make(map[Design]bool, len(in))
	out := in[:0]
	for _, d := range in {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// SearchResult holds every evaluated point plus the carbon-optimal one.
type SearchResult struct {
	// Strategy echoes the searched strategy.
	Strategy Strategy
	// Points are all evaluated outcomes, in no particular order.
	Points []Outcome
	// Optimal is the outcome with minimum total (operational + embodied)
	// carbon; ties break toward higher coverage.
	Optimal Outcome
}

// Search exhaustively evaluates the space under the given strategy, in
// parallel, and returns all points plus the carbon-optimal one.
func (in *Inputs) Search(space Space, strategy Strategy) (SearchResult, error) {
	designs := space.restrict(strategy).designs(in.AvgDemandMW())
	if len(designs) == 0 {
		return SearchResult{}, fmt.Errorf("explorer: empty search space")
	}

	points := make([]Outcome, len(designs))
	errs := make([]error, len(designs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, d := range designs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, d Design) {
			defer wg.Done()
			defer func() { <-sem }()
			points[i], errs[i] = in.Evaluate(d)
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return SearchResult{}, err
		}
	}

	res := SearchResult{Strategy: strategy, Points: points, Optimal: points[0]}
	for _, p := range points[1:] {
		if better(p, res.Optimal) {
			res.Optimal = p
		}
	}
	return res, nil
}

// better reports whether a should replace b as the carbon optimum.
func better(a, b Outcome) bool {
	if a.Total() != b.Total() {
		return a.Total() < b.Total()
	}
	return a.CoveragePct > b.CoveragePct
}

// ParetoFrontier extracts the outcomes not dominated in the
// (operational, embodied) plane: a point is on the frontier if no other
// point has both lower-or-equal operational and lower-or-equal embodied
// carbon (with at least one strictly lower). The result is sorted by
// increasing embodied carbon.
func ParetoFrontier(points []Outcome) []Outcome {
	sorted := make([]Outcome, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Embodied != sorted[j].Embodied {
			return sorted[i].Embodied < sorted[j].Embodied
		}
		return sorted[i].Operational < sorted[j].Operational
	})
	var frontier []Outcome
	best := math.Inf(1)
	for _, p := range sorted {
		if float64(p.Operational) < best {
			frontier = append(frontier, p)
			best = float64(p.Operational)
		}
	}
	return frontier
}

// CoverageFor evaluates the coverage of a pure renewable design (no battery
// or scheduling) at the given investments — the inner loop of the Figure 7
// surfaces.
func (in *Inputs) CoverageFor(windMW, solarMW float64) (float64, error) {
	return Coverage(in.Demand, in.RenewableSupply(windMW, solarMW))
}

// InvestmentForCoverage finds, by bisection, the minimal total renewable
// investment achieving the target coverage percentage when wind and solar
// are mixed in the given proportion (windFrac in [0, 1]). It returns the
// total MW and whether the target is achievable below maxTotalMW (solar-only
// mixes, for example, cannot exceed ~50–60% coverage no matter the
// investment).
func (in *Inputs) InvestmentForCoverage(targetPct, windFrac, maxTotalMW float64) (totalMW float64, ok bool, err error) {
	if targetPct < 0 || targetPct > 100 {
		return 0, false, fmt.Errorf("explorer: target coverage %v out of [0, 100]", targetPct)
	}
	if windFrac < 0 || windFrac > 1 {
		return 0, false, fmt.Errorf("explorer: wind fraction %v out of [0, 1]", windFrac)
	}
	coverageAt := func(total float64) (float64, error) {
		return in.CoverageFor(total*windFrac, total*(1-windFrac))
	}
	hi, err := coverageAt(maxTotalMW)
	if err != nil {
		return 0, false, err
	}
	if hi < targetPct {
		return 0, false, nil
	}
	lo, hiMW := 0.0, maxTotalMW
	for i := 0; i < 60 && hiMW-lo > 1e-6*maxTotalMW; i++ {
		mid := (lo + hiMW) / 2
		c, err := coverageAt(mid)
		if err != nil {
			return 0, false, err
		}
		if c >= targetPct {
			hiMW = mid
		} else {
			lo = mid
		}
	}
	return hiMW, true, nil
}

// MinBatteryHoursFor247 finds, by bisection, the smallest battery (in hours
// of average compute) that achieves at least targetPct coverage for the
// given renewable investments, searching up to maxHours. It reports whether
// the target is achievable within the bound.
func (in *Inputs) MinBatteryHoursFor247(windMW, solarMW, targetPct, maxHours float64) (hours float64, ok bool, err error) {
	avg := in.AvgDemandMW()
	covAt := func(h float64) (float64, error) {
		d := Design{WindMW: windMW, SolarMW: solarMW, BatteryMWh: h * avg, DoD: 1.0}
		if h == 0 {
			d.DoD = 0
		}
		o, err := in.Evaluate(d)
		if err != nil {
			return 0, err
		}
		return o.CoveragePct, nil
	}
	top, err := covAt(maxHours)
	if err != nil {
		return 0, false, err
	}
	if top < targetPct {
		return 0, false, nil
	}
	lo, hi := 0.0, maxHours
	for i := 0; i < 40 && hi-lo > 0.01; i++ {
		mid := (lo + hi) / 2
		c, err := covAt(mid)
		if err != nil {
			return 0, false, err
		}
		if c >= targetPct {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}

// MinExtraCapacityFor247 finds, by bisection over extra server capacity,
// the smallest capacity addition (fraction of baseline peak) at which
// carbon-aware scheduling achieves at least targetPct coverage for the given
// renewables and flexible ratio, searching up to maxFrac. It reports whether
// the target is achievable within the bound.
func (in *Inputs) MinExtraCapacityFor247(windMW, solarMW, flexRatio, targetPct, maxFrac float64) (frac float64, ok bool, err error) {
	covAt := func(f float64) (float64, error) {
		o, err := in.Evaluate(Design{
			WindMW: windMW, SolarMW: solarMW,
			FlexibleRatio: flexRatio, ExtraCapacityFrac: f,
		})
		if err != nil {
			return 0, err
		}
		return o.CoveragePct, nil
	}
	top, err := covAt(maxFrac)
	if err != nil {
		return 0, false, err
	}
	if top < targetPct {
		return 0, false, nil
	}
	lo, hi := 0.0, maxFrac
	for i := 0; i < 40 && hi-lo > 0.005; i++ {
		mid := (lo + hi) / 2
		c, err := covAt(mid)
		if err != nil {
			return 0, false, err
		}
		if c >= targetPct {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}
