package explorer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
)

// Space bounds the exhaustive design-space search. Datacenter operators
// specify the candidate grids per dimension; the search evaluates their
// cross product.
type Space struct {
	// WindMW and SolarMW are candidate renewable investments.
	WindMW  []float64
	SolarMW []float64
	// BatteryHours are candidate storage sizes expressed in hours of
	// average datacenter compute (the paper's Figure 9 unit); hours are
	// converted to MWh via the site's average demand.
	BatteryHours []float64
	// ExtraCapacityFracs are candidate extra server capacities as a
	// fraction of baseline peak demand.
	ExtraCapacityFracs []float64
	// DoD is the battery depth of discharge used for battery designs.
	DoD float64
	// FlexibleRatio is the scheduler's flexible workload ratio for CAS
	// designs.
	FlexibleRatio float64
}

// DefaultSpace returns a paper-scaled search grid for a site: renewable
// investments ranging to several multiples of average demand, battery sizes
// up to 16 compute-hours, and extra capacity up to 100%.
func DefaultSpace(in *Inputs) Space {
	avg := in.AvgDemandMW()
	scale := func(ms ...float64) []float64 {
		out := make([]float64, len(ms))
		for i, m := range ms {
			out[i] = m * avg
		}
		return out
	}
	return Space{
		WindMW:             scale(0, 1, 2, 4, 6, 10, 16),
		SolarMW:            scale(0, 1, 2, 4, 6, 10, 16),
		BatteryHours:       []float64{0, 1, 2, 4, 8, 16},
		ExtraCapacityFracs: []float64{0, 0.1, 0.25, 0.5, 1.0},
		DoD:                1.0,
		FlexibleRatio:      0.40,
	}
}

// restrict returns the space with dimensions unused by the strategy pinned
// to zero.
func (s Space) restrict(strategy Strategy) Space {
	out := s
	if !strategy.UsesBattery() {
		out.BatteryHours = []float64{0}
	}
	if !strategy.UsesCAS() {
		out.ExtraCapacityFracs = []float64{0}
		out.FlexibleRatio = 0
	}
	return out
}

// Enumerate expands the space into the concrete, deduplicated design list a
// search over it would evaluate, with dimensions unused by the strategy
// pinned to zero. The order is deterministic for a given space, which lets
// external engines (internal/sweep) index designs by position across runs —
// a sweep checkpoint records per-design status against exactly this list.
func (s Space) Enumerate(strategy Strategy, avgDemandMW float64) []Design {
	return s.restrict(strategy).designs(avgDemandMW)
}

// designs expands the space into concrete designs.
func (s Space) designs(avgDemandMW float64) []Design {
	var out []Design
	for _, w := range s.WindMW {
		for _, sol := range s.SolarMW {
			for _, bh := range s.BatteryHours {
				for _, ec := range s.ExtraCapacityFracs {
					d := Design{
						WindMW:            w,
						SolarMW:           sol,
						BatteryMWh:        bh * avgDemandMW,
						DoD:               s.DoD,
						FlexibleRatio:     s.FlexibleRatio,
						ExtraCapacityFrac: ec,
					}
					if d.BatteryMWh == 0 {
						d.DoD = 0
					}
					if s.FlexibleRatio == 0 {
						d.ExtraCapacityFrac = 0
					}
					out = append(out, d)
				}
			}
		}
	}
	return dedupeDesigns(out)
}

func dedupeDesigns(in []Design) []Design {
	seen := make(map[Design]bool, len(in))
	out := in[:0]
	for _, d := range in {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// SearchResult holds every evaluated point plus the carbon-optimal one.
type SearchResult struct {
	// Strategy echoes the searched strategy.
	Strategy Strategy
	// Points are all evaluated outcomes, in no particular order.
	Points []Outcome
	// Optimal is the outcome with minimum total (operational + embodied)
	// carbon; ties break toward higher coverage.
	Optimal Outcome
	// Report accounts for every design that was evaluated, failed, or was
	// skipped by cancellation. A sweep with failures still yields an Optimal
	// over the surviving points; inspect Report to see what was lost.
	Report SearchReport
}

// SearchReport summarizes the health of one sweep.
type SearchReport struct {
	// Evaluated is the number of designs evaluated successfully.
	Evaluated int
	// Failures records every design whose evaluation returned an error or
	// panicked, with the offending design attached.
	Failures []DesignError
	// Skipped is the number of designs never evaluated because the sweep
	// was cancelled first.
	Skipped int
}

// DesignError attaches the offending design to an evaluation failure.
type DesignError struct {
	// Design is the point that failed.
	Design Design
	// Err is the evaluation error (a *PanicError if the worker panicked).
	Err error
}

func (e DesignError) Error() string {
	return fmt.Sprintf("explorer: design {wind %.1f MW, solar %.1f MW, battery %.1f MWh, flex %.2f, extra %.2f}: %v",
		e.Design.WindMW, e.Design.SolarMW, e.Design.BatteryMWh, e.Design.FlexibleRatio, e.Design.ExtraCapacityFrac, e.Err)
}

func (e DesignError) Unwrap() error { return e.Err }

// PanicError is a panic recovered from an evaluation worker, contained to
// the design that triggered it.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the worker's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("explorer: evaluation panicked: %v", e.Value)
}

// ErrAllDesignsFailed is returned (wrapped) by searches in which not a
// single design evaluated successfully.
var ErrAllDesignsFailed = errors.New("explorer: all designs failed")

// Search exhaustively evaluates the space under the given strategy, in
// parallel, and returns all points plus the carbon-optimal one. It is
// SearchContext without cancellation.
func (in *Inputs) Search(space Space, strategy Strategy) (SearchResult, error) {
	//carbonlint:allow ctxflow Search is the documented non-cancellable wrapper; callers with a ctx use SearchContext
	return in.SearchContext(context.Background(), space, strategy)
}

// SearchContext exhaustively evaluates the space under the given strategy,
// in parallel, honouring ctx between design evaluations.
//
// The sweep degrades gracefully: a design whose evaluation fails (or
// panics — panics are recovered per worker) is recorded in the result's
// Report and excluded from Points, and the optimum is computed over the
// surviving designs. Only when every design fails does SearchContext return
// a wrapped ErrAllDesignsFailed.
//
// On cancellation the partial result is still returned — Points holds
// whatever finished, Report.Skipped counts the rest — alongside ctx's
// error, so callers can print partial results after an interrupt.
func (in *Inputs) SearchContext(ctx context.Context, space Space, strategy Strategy) (SearchResult, error) {
	designs := space.restrict(strategy).designs(in.AvgDemandMW())
	if len(designs) == 0 {
		return SearchResult{}, fmt.Errorf("explorer: empty search space")
	}

	points := make([]Outcome, len(designs))
	errs := make([]error, len(designs))
	skipped := make([]bool, len(designs))
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(designs) {
		workers = len(designs)
	}
	// A fixed pool with one Evaluator per worker: designs flow through the
	// index channel in enumeration order, so each worker sees mostly-adjacent
	// designs and the evaluator's supply memoization stays warm.
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := in.NewEvaluator()
			for i := range next {
				if ctx.Err() != nil {
					skipped[i] = true
					continue
				}
				points[i], errs[i] = ev.EvaluateSafe(designs[i])
			}
		}()
	}
	for i := range designs {
		if ctx.Err() != nil {
			// Cancelled while dispatching: everything not yet dispatched is
			// skipped.
			for j := i; j < len(designs); j++ {
				skipped[j] = true
			}
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()

	res := SearchResult{Strategy: strategy}
	var survivors []Outcome
	for i := range designs {
		switch {
		case skipped[i]:
			res.Report.Skipped++
		case errs[i] != nil:
			res.Report.Failures = append(res.Report.Failures, DesignError{Design: designs[i], Err: errs[i]})
		default:
			res.Report.Evaluated++
			survivors = append(survivors, points[i])
		}
	}
	res.Points = survivors

	if len(survivors) == 0 {
		err := ctx.Err()
		if err == nil {
			err = fmt.Errorf("%w: %d failures, first: %w",
				ErrAllDesignsFailed, len(res.Report.Failures), res.Report.Failures[0])
		}
		return res, err
	}
	res.Optimal = survivors[0]
	for _, p := range survivors[1:] {
		if better(p, res.Optimal) {
			res.Optimal = p
		}
	}
	return res, ctx.Err()
}

// EvaluateSafe runs one evaluation with panic containment: a panicking
// design surfaces as a *PanicError instead of killing the process. The
// fault-injection hook (EvalHook), when set, runs first and may fail the
// design. Search workers and the sweep engine (internal/sweep) evaluate
// through this entry point so a single hostile design can never sink a
// whole sweep.
func (in *Inputs) EvaluateSafe(d Design) (o Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if in.EvalHook != nil {
		if err := in.EvalHook(d); err != nil {
			return Outcome{}, err
		}
	}
	return in.Evaluate(d)
}

// better reports whether a should replace b as the carbon optimum.
func better(a, b Outcome) bool {
	if a.Total() != b.Total() { //carbonlint:allow floatcmp exact-bits tie-break makes the optimum independent of evaluation order
		return a.Total() < b.Total()
	}
	return a.CoveragePct > b.CoveragePct
}

// ParetoFrontier extracts the outcomes not dominated in the
// (operational, embodied) plane: a point is on the frontier if no other
// point has both lower-or-equal operational and lower-or-equal embodied
// carbon (with at least one strictly lower). The result is sorted by
// increasing embodied carbon.
func ParetoFrontier(points []Outcome) []Outcome {
	sorted := make([]Outcome, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Embodied != sorted[j].Embodied { //carbonlint:allow floatcmp exact-bits sort key keeps the frontier order deterministic
			return sorted[i].Embodied < sorted[j].Embodied
		}
		return sorted[i].Operational < sorted[j].Operational
	})
	var frontier []Outcome
	best := math.Inf(1)
	for _, p := range sorted {
		if float64(p.Operational) < best {
			frontier = append(frontier, p)
			best = float64(p.Operational)
		}
	}
	return frontier
}

// CoverageFor evaluates the coverage of a pure renewable design (no battery
// or scheduling) at the given investments — the inner loop of the Figure 7
// surfaces.
func (in *Inputs) CoverageFor(windMW, solarMW float64) (float64, error) {
	return Coverage(in.Demand, in.RenewableSupply(windMW, solarMW))
}

// InvestmentForCoverage finds, by bisection, the minimal total renewable
// investment achieving the target coverage percentage when wind and solar
// are mixed in the given proportion (windFrac in [0, 1]). It returns the
// total MW and whether the target is achievable below maxTotalMW (solar-only
// mixes, for example, cannot exceed ~50–60% coverage no matter the
// investment).
func (in *Inputs) InvestmentForCoverage(targetPct, windFrac, maxTotalMW float64) (totalMW float64, ok bool, err error) {
	//carbonlint:allow ctxflow documented non-cancellable wrapper; callers with a ctx use InvestmentForCoverageContext
	return in.InvestmentForCoverageContext(context.Background(), targetPct, windFrac, maxTotalMW)
}

// InvestmentForCoverageContext is InvestmentForCoverage with cancellation:
// ctx is checked between bisection steps.
func (in *Inputs) InvestmentForCoverageContext(ctx context.Context, targetPct, windFrac, maxTotalMW float64) (totalMW float64, ok bool, err error) {
	if targetPct < 0 || targetPct > 100 {
		return 0, false, fmt.Errorf("explorer: target coverage %v out of [0, 100]", targetPct)
	}
	if windFrac < 0 || windFrac > 1 {
		return 0, false, fmt.Errorf("explorer: wind fraction %v out of [0, 1]", windFrac)
	}
	coverageAt := func(total float64) (float64, error) {
		return in.CoverageFor(total*windFrac, total*(1-windFrac))
	}
	hi, err := coverageAt(maxTotalMW)
	if err != nil {
		return 0, false, err
	}
	if hi < targetPct {
		return 0, false, nil
	}
	lo, hiMW := 0.0, maxTotalMW
	for i := 0; i < 60 && hiMW-lo > 1e-6*maxTotalMW; i++ {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		mid := (lo + hiMW) / 2
		c, err := coverageAt(mid)
		if err != nil {
			return 0, false, err
		}
		if c >= targetPct {
			hiMW = mid
		} else {
			lo = mid
		}
	}
	return hiMW, true, nil
}

// MinBatteryHoursFor247 finds, by bisection, the smallest battery (in hours
// of average compute) that achieves at least targetPct coverage for the
// given renewable investments, searching up to maxHours. It reports whether
// the target is achievable within the bound.
func (in *Inputs) MinBatteryHoursFor247(windMW, solarMW, targetPct, maxHours float64) (hours float64, ok bool, err error) {
	//carbonlint:allow ctxflow documented non-cancellable wrapper; callers with a ctx use MinBatteryHoursFor247Context
	return in.MinBatteryHoursFor247Context(context.Background(), windMW, solarMW, targetPct, maxHours)
}

// MinBatteryHoursFor247Context is MinBatteryHoursFor247 with cancellation:
// ctx is checked between bisection steps (each step simulates a full year).
func (in *Inputs) MinBatteryHoursFor247Context(ctx context.Context, windMW, solarMW, targetPct, maxHours float64) (hours float64, ok bool, err error) {
	avg := in.AvgDemandMW()
	covAt := func(h float64) (float64, error) {
		d := Design{WindMW: windMW, SolarMW: solarMW, BatteryMWh: h * avg, DoD: 1.0}
		if h == 0 {
			d.DoD = 0
		}
		o, err := in.Evaluate(d)
		if err != nil {
			return 0, err
		}
		return o.CoveragePct, nil
	}
	top, err := covAt(maxHours)
	if err != nil {
		return 0, false, err
	}
	if top < targetPct {
		return 0, false, nil
	}
	lo, hi := 0.0, maxHours
	for i := 0; i < 40 && hi-lo > 0.01; i++ {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		mid := (lo + hi) / 2
		c, err := covAt(mid)
		if err != nil {
			return 0, false, err
		}
		if c >= targetPct {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}

// MinExtraCapacityFor247 finds, by bisection over extra server capacity,
// the smallest capacity addition (fraction of baseline peak) at which
// carbon-aware scheduling achieves at least targetPct coverage for the given
// renewables and flexible ratio, searching up to maxFrac. It reports whether
// the target is achievable within the bound.
func (in *Inputs) MinExtraCapacityFor247(windMW, solarMW, flexRatio, targetPct, maxFrac float64) (frac float64, ok bool, err error) {
	//carbonlint:allow ctxflow documented non-cancellable wrapper; callers with a ctx use MinExtraCapacityFor247Context
	return in.MinExtraCapacityFor247Context(context.Background(), windMW, solarMW, flexRatio, targetPct, maxFrac)
}

// MinExtraCapacityFor247Context is MinExtraCapacityFor247 with
// cancellation: ctx is checked between bisection steps.
func (in *Inputs) MinExtraCapacityFor247Context(ctx context.Context, windMW, solarMW, flexRatio, targetPct, maxFrac float64) (frac float64, ok bool, err error) {
	covAt := func(f float64) (float64, error) {
		o, err := in.Evaluate(Design{
			WindMW: windMW, SolarMW: solarMW,
			FlexibleRatio: flexRatio, ExtraCapacityFrac: f,
		})
		if err != nil {
			return 0, err
		}
		return o.CoveragePct, nil
	}
	top, err := covAt(maxFrac)
	if err != nil {
		return 0, false, err
	}
	if top < targetPct {
		return 0, false, nil
	}
	lo, hi := 0.0, maxFrac
	for i := 0; i < 40 && hi-lo > 0.005; i++ {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		mid := (lo + hi) / 2
		c, err := covAt(mid)
		if err != nil {
			return 0, false, err
		}
		if c >= targetPct {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}
