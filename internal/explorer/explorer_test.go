package explorer

import (
	"math"
	"sync"
	"testing"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
	"carbonexplorer/internal/units"
)

// cachedInputs builds Inputs once per site for the whole test run; the
// underlying data is treated as read-only by Evaluate.
var (
	inputsMu    sync.Mutex
	inputsCache = map[string]*Inputs{}
)

func siteInputs(t *testing.T, id string) *Inputs {
	t.Helper()
	inputsMu.Lock()
	defer inputsMu.Unlock()
	if in, ok := inputsCache[id]; ok {
		return in
	}
	in, err := NewInputs(grid.MustSite(id))
	if err != nil {
		t.Fatal(err)
	}
	inputsCache[id] = in
	return in
}

func TestCoverageFormula(t *testing.T) {
	demand := timeseries.FromValues([]float64{10, 10, 10, 10})
	ren := timeseries.FromValues([]float64{10, 5, 20, 0})
	// Uncovered = 0 + 5 + 0 + 10 = 15 of 40 → 62.5%.
	cov, err := Coverage(demand, ren)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov-62.5) > 1e-9 {
		t.Fatalf("coverage = %v, want 62.5", cov)
	}
}

func TestCoverageEdges(t *testing.T) {
	d := timeseries.FromValues([]float64{10})
	if cov, _ := Coverage(d, timeseries.FromValues([]float64{100})); cov != 100 {
		t.Fatalf("over-supply coverage = %v, want 100", cov)
	}
	if cov, _ := Coverage(d, timeseries.FromValues([]float64{0})); cov != 0 {
		t.Fatalf("zero-supply coverage = %v, want 0", cov)
	}
	if cov, _ := Coverage(timeseries.New(3), timeseries.New(3)); cov != 100 {
		t.Fatalf("zero-demand coverage = %v, want 100", cov)
	}
	if _, err := Coverage(d, timeseries.New(2)); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestCoverageFromGridDraw(t *testing.T) {
	if got := CoverageFromGridDraw(25, 100); got != 75 {
		t.Fatalf("got %v", got)
	}
	if got := CoverageFromGridDraw(0, 100); got != 100 {
		t.Fatalf("got %v", got)
	}
	if got := CoverageFromGridDraw(150, 100); got != 0 {
		t.Fatalf("clamp low: %v", got)
	}
	if got := CoverageFromGridDraw(10, 0); got != 100 {
		t.Fatalf("zero demand: %v", got)
	}
}

func TestNewInputs(t *testing.T) {
	in := siteInputs(t, "UT")
	if in.Demand.Len() != timeseries.HoursPerYear {
		t.Fatalf("demand length %d", in.Demand.Len())
	}
	if math.Abs(in.AvgDemandMW()-19)/19 > 0.05 {
		t.Fatalf("UT average demand %v, want ~19", in.AvgDemandMW())
	}
	if in.PeakDemandMW() <= in.AvgDemandMW() {
		t.Fatalf("peak must exceed average")
	}
}

func TestNewInputsFromSeries(t *testing.T) {
	n := 48
	d := timeseries.Constant(n, 10)
	w := timeseries.Constant(n, 5)
	s := timeseries.Constant(n, 3)
	ci := timeseries.Constant(n, 400)
	emb := carbon.DefaultEmbodiedParams()
	in, err := NewInputsFromSeries(grid.MustSite("UT"), d, w, s, ci, emb)
	if err != nil {
		t.Fatal(err)
	}
	if in.PeakDemandMW() != 10 {
		t.Fatalf("peak = %v", in.PeakDemandMW())
	}
	if _, err := NewInputsFromSeries(grid.MustSite("UT"), timeseries.New(0), w, s, ci, emb); err == nil {
		t.Fatal("empty demand should error")
	}
	if _, err := NewInputsFromSeries(grid.MustSite("UT"), d, timeseries.New(3), s, ci, emb); err == nil {
		t.Fatal("length mismatch should error")
	}
	bad := emb
	bad.ServerPowerKW = 0
	if _, err := NewInputsFromSeries(grid.MustSite("UT"), d, w, s, ci, bad); err == nil {
		t.Fatal("invalid embodied params should error")
	}
}

func TestRenewableSupplyScaling(t *testing.T) {
	in := siteInputs(t, "UT")
	sup := in.RenewableSupply(100, 0)
	if math.Abs(sup.MaxValue()-100) > 1e-6 {
		t.Fatalf("wind-only supply max = %v, want 100", sup.MaxValue())
	}
	zero := in.RenewableSupply(0, 0)
	if zero.Sum() != 0 {
		t.Fatalf("zero investment should produce zero supply")
	}
}

func TestRenewableSupplyNoWindRegion(t *testing.T) {
	// North Carolina's grid has no wind; investing in wind there buys
	// nothing (the paper's "No Wind" panel in Figure 7).
	in := siteInputs(t, "NC")
	windOnly := in.RenewableSupply(1000, 0)
	if windOnly.Sum() != 0 {
		t.Fatalf("NC wind supply = %v, want 0", windOnly.Sum())
	}
}

func TestCoverageMonotonicInInvestment(t *testing.T) {
	in := siteInputs(t, "UT")
	prev := -1.0
	for _, scale := range []float64{0, 20, 50, 100, 200} {
		cov, err := in.CoverageFor(scale, scale)
		if err != nil {
			t.Fatal(err)
		}
		if cov < prev-1e-9 {
			t.Fatalf("coverage decreased with investment: %v -> %v", prev, cov)
		}
		prev = cov
	}
}

func TestSolarOnlyCoverageCapped(t *testing.T) {
	// Paper: regions relying entirely on solar cannot get much beyond ~50%
	// coverage because solar is only available during the day.
	in := siteInputs(t, "NC")
	cov, err := in.CoverageFor(0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if cov > 70 {
		t.Fatalf("solar-only coverage = %v, should be capped well below 100", cov)
	}
	if cov < 40 {
		t.Fatalf("solar-only coverage = %v, too low for massive investment", cov)
	}
}

func TestEvaluateRenewablesOnly(t *testing.T) {
	in := siteInputs(t, "UT")
	o, err := in.Evaluate(Design{WindMW: 239, SolarMW: 694})
	if err != nil {
		t.Fatal(err)
	}
	if o.CoveragePct <= 0 || o.CoveragePct >= 100 {
		t.Fatalf("coverage = %v, expected partial", o.CoveragePct)
	}
	if o.Operational <= 0 {
		t.Fatalf("partial coverage must leave operational carbon")
	}
	if o.EmbodiedBattery != 0 || o.EmbodiedServers != 0 {
		t.Fatalf("renewables-only design should have no battery/server embodied")
	}
	if o.EmbodiedRenewables <= 0 {
		t.Fatalf("renewable embodied must be positive")
	}
	if o.Total() != o.Operational+o.Embodied {
		t.Fatalf("total mismatch")
	}
}

func TestEvaluateBatteryImprovesCoverage(t *testing.T) {
	in := siteInputs(t, "UT")
	base, err := in.Evaluate(Design{WindMW: 100, SolarMW: 100})
	if err != nil {
		t.Fatal(err)
	}
	withBat, err := in.Evaluate(Design{WindMW: 100, SolarMW: 100, BatteryMWh: 4 * in.AvgDemandMW(), DoD: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if withBat.CoveragePct <= base.CoveragePct {
		t.Fatalf("battery should improve coverage: %v -> %v", base.CoveragePct, withBat.CoveragePct)
	}
	if withBat.EmbodiedBattery <= 0 {
		t.Fatalf("battery embodied must be charged")
	}
	if withBat.BatteryCyclesPerDay <= 0 {
		t.Fatalf("battery should cycle")
	}
	if withBat.BatterySoC.Len() != in.Demand.Len() {
		t.Fatalf("SoC trace missing")
	}
}

func TestEvaluateCASImprovesCoverage(t *testing.T) {
	in := siteInputs(t, "UT")
	base, err := in.Evaluate(Design{WindMW: 100, SolarMW: 100})
	if err != nil {
		t.Fatal(err)
	}
	cas, err := in.Evaluate(Design{WindMW: 100, SolarMW: 100, FlexibleRatio: 0.4, ExtraCapacityFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if cas.CoveragePct <= base.CoveragePct {
		t.Fatalf("CAS should improve coverage: %v -> %v", base.CoveragePct, cas.CoveragePct)
	}
	if cas.ExtraCapacityUsedFrac <= 0 {
		t.Fatalf("CAS should use extra capacity")
	}
	if cas.EmbodiedServers <= 0 {
		t.Fatalf("extra servers must be charged")
	}
}

func TestEvaluateValidatesDesign(t *testing.T) {
	in := siteInputs(t, "UT")
	bad := []Design{
		{WindMW: -1},
		{BatteryMWh: 10, DoD: 0},
		{BatteryMWh: 10, DoD: 1.5},
		{FlexibleRatio: -0.1},
		{FlexibleRatio: 1.1},
		{ExtraCapacityFrac: -1},
	}
	for i, d := range bad {
		if _, err := in.Evaluate(d); err == nil {
			t.Errorf("design %d should be invalid", i)
		}
	}
}

func TestSearchFindsOptimum(t *testing.T) {
	in := siteInputs(t, "UT")
	avg := in.AvgDemandMW()
	space := Space{
		WindMW:             []float64{0, 2 * avg, 6 * avg},
		SolarMW:            []float64{0, 2 * avg, 6 * avg},
		BatteryHours:       []float64{0, 4},
		ExtraCapacityFracs: []float64{0, 0.25},
		DoD:                1.0,
		FlexibleRatio:      0.4,
	}
	res, err := in.Search(space, RenewablesBatteryCAS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points evaluated")
	}
	for _, p := range res.Points {
		if p.Total() < res.Optimal.Total() {
			t.Fatalf("optimal %v not minimal: found %v", res.Optimal.Total(), p.Total())
		}
	}
}

func TestSearchRestrictsByStrategy(t *testing.T) {
	in := siteInputs(t, "UT")
	avg := in.AvgDemandMW()
	space := Space{
		WindMW:             []float64{2 * avg},
		SolarMW:            []float64{2 * avg},
		BatteryHours:       []float64{0, 4},
		ExtraCapacityFracs: []float64{0, 0.5},
		DoD:                1.0,
		FlexibleRatio:      0.4,
	}
	res, err := in.Search(space, RenewablesOnly)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Design.BatteryMWh != 0 || p.Design.FlexibleRatio != 0 {
			t.Fatalf("renewables-only search leaked battery/CAS: %+v", p.Design)
		}
	}
	if len(res.Points) != 1 {
		t.Fatalf("restricted space should dedupe to 1 point, got %d", len(res.Points))
	}
}

func TestSearchEmptySpaceErrors(t *testing.T) {
	in := siteInputs(t, "UT")
	if _, err := in.Search(Space{}, RenewablesOnly); err == nil {
		t.Fatal("empty space should error")
	}
}

func TestParetoFrontier(t *testing.T) {
	mk := func(op, emb float64) Outcome {
		return Outcome{Operational: toG(op), Embodied: toG(emb)}
	}
	points := []Outcome{
		mk(100, 10), // frontier
		mk(50, 20),  // frontier
		mk(60, 30),  // dominated by (50, 20)
		mk(10, 40),  // frontier
		mk(10, 50),  // dominated
	}
	f := ParetoFrontier(points)
	if len(f) != 3 {
		t.Fatalf("frontier size = %d, want 3", len(f))
	}
	// Sorted by embodied ascending, operational strictly decreasing.
	for i := 1; i < len(f); i++ {
		if f[i].Embodied < f[i-1].Embodied {
			t.Fatalf("frontier not sorted by embodied")
		}
		if f[i].Operational >= f[i-1].Operational {
			t.Fatalf("frontier operational not strictly decreasing")
		}
	}
}

func TestParetoFrontierEmpty(t *testing.T) {
	if f := ParetoFrontier(nil); len(f) != 0 {
		t.Fatalf("empty input should give empty frontier")
	}
}

func TestInvestmentForCoverage(t *testing.T) {
	in := siteInputs(t, "UT")
	mw95, ok, err := in.InvestmentForCoverage(95, 0.5, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("95% should be achievable in a hybrid region")
	}
	mw50, ok, err := in.InvestmentForCoverage(50, 0.5, 1e6)
	if err != nil || !ok {
		t.Fatalf("50%% should be achievable: %v", err)
	}
	if mw95 <= mw50 {
		t.Fatalf("higher coverage should need more investment: %v vs %v", mw95, mw50)
	}
}

func TestInvestmentForCoverageUnreachable(t *testing.T) {
	// Solar-only mix in a solar-only region cannot reach 99%.
	in := siteInputs(t, "NC")
	_, ok, err := in.InvestmentForCoverage(99, 0, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("99% solar-only coverage should be unreachable")
	}
}

func TestInvestmentForCoverageValidation(t *testing.T) {
	in := siteInputs(t, "UT")
	if _, _, err := in.InvestmentForCoverage(120, 0.5, 1e6); err == nil {
		t.Fatal("bad target should error")
	}
	if _, _, err := in.InvestmentForCoverage(50, 2, 1e6); err == nil {
		t.Fatal("bad wind fraction should error")
	}
}

func TestMinBatteryHoursFor247(t *testing.T) {
	in := siteInputs(t, "UT")
	avg := in.AvgDemandMW()
	hours, ok, err := in.MinBatteryHoursFor247(6*avg, 6*avg, 99.9, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("24/7 should be achievable with large renewables and battery")
	}
	if hours <= 0 || hours > 48 {
		t.Fatalf("battery hours = %v", hours)
	}
	// Verify the returned size actually achieves the target.
	o, err := in.Evaluate(Design{WindMW: 6 * avg, SolarMW: 6 * avg, BatteryMWh: (hours + 0.02) * avg, DoD: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if o.CoveragePct < 99.9 {
		t.Fatalf("returned battery size achieves only %v%%", o.CoveragePct)
	}
}

func TestMinBatteryHoursUnreachable(t *testing.T) {
	in := siteInputs(t, "UT")
	// With no renewables at all, no battery can help (nothing to charge it).
	_, ok, err := in.MinBatteryHoursFor247(0, 0, 99.9, 24)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("24/7 without renewables should be unreachable")
	}
}

func TestStrategyHelpers(t *testing.T) {
	if RenewablesOnly.UsesBattery() || RenewablesOnly.UsesCAS() {
		t.Fatal("renewables-only should use nothing extra")
	}
	if !RenewablesBattery.UsesBattery() || RenewablesBattery.UsesCAS() {
		t.Fatal("battery strategy flags wrong")
	}
	if RenewablesCAS.UsesBattery() || !RenewablesCAS.UsesCAS() {
		t.Fatal("CAS strategy flags wrong")
	}
	if !RenewablesBatteryCAS.UsesBattery() || !RenewablesBatteryCAS.UsesCAS() {
		t.Fatal("combined strategy flags wrong")
	}
	if len(AllStrategies()) != 4 {
		t.Fatal("want 4 strategies")
	}
	if RenewablesBattery.String() != "Renewables + Battery" {
		t.Fatalf("name = %q", RenewablesBattery.String())
	}
	if got := Strategy(9).String(); got != "strategy(9)" {
		t.Fatalf("out-of-range strategy name %q", got)
	}
}

func TestPropertyCoverageMonotoneInBattery(t *testing.T) {
	// More battery never reduces coverage, at any investment level.
	in := siteInputs(t, "UT")
	avg := in.AvgDemandMW()
	for _, scale := range []float64{1, 3, 6} {
		prev := -1.0
		for _, hours := range []float64{0, 1, 2, 4, 8, 16} {
			d := Design{WindMW: scale * avg, SolarMW: scale * avg}
			if hours > 0 {
				d.BatteryMWh = hours * avg
				d.DoD = 1.0
			}
			o, err := in.Evaluate(d)
			if err != nil {
				t.Fatal(err)
			}
			if o.CoveragePct < prev-1e-9 {
				t.Fatalf("coverage fell with battery growth at %vx/%vh: %v -> %v",
					scale, hours, prev, o.CoveragePct)
			}
			prev = o.CoveragePct
		}
	}
}

func TestPropertyOperationalMonotoneInRenewables(t *testing.T) {
	// More renewables never increase operational carbon (they may increase
	// embodied, which is the trade-off the optimizer navigates).
	in := siteInputs(t, "TX")
	avg := in.AvgDemandMW()
	prev := math.Inf(1)
	for _, scale := range []float64{0, 1, 2, 4, 8, 16} {
		o, err := in.Evaluate(Design{WindMW: scale * avg, SolarMW: scale * avg})
		if err != nil {
			t.Fatal(err)
		}
		if float64(o.Operational) > prev+1 {
			t.Fatalf("operational carbon rose with renewables at %vx", scale)
		}
		prev = float64(o.Operational)
	}
}

func TestOutcomeAccountingIdentities(t *testing.T) {
	in := siteInputs(t, "NM")
	avg := in.AvgDemandMW()
	o, err := in.Evaluate(Design{
		WindMW: 2 * avg, SolarMW: 2 * avg,
		BatteryMWh: 3 * avg, DoD: 0.9,
		FlexibleRatio: 0.4, ExtraCapacityFrac: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Embodied != o.EmbodiedRenewables+o.EmbodiedBattery+o.EmbodiedServers {
		t.Fatalf("embodied breakdown does not sum")
	}
	if o.Total() != o.Operational+o.Embodied {
		t.Fatalf("total != operational + embodied")
	}
	if o.GridEnergyMWh < 0 || o.SurplusMWh < 0 {
		t.Fatalf("negative energy accounting")
	}
	// Coverage consistency with grid energy.
	want := CoverageFromGridDraw(o.GridEnergyMWh, in.Demand.Sum())
	if math.Abs(want-o.CoveragePct) > 1e-9 {
		t.Fatalf("coverage %v inconsistent with grid energy (%v)", o.CoveragePct, want)
	}
}

func TestIntensitiesOrdering(t *testing.T) {
	in := siteInputs(t, "UT")
	d := Design{
		WindMW: 4 * in.AvgDemandMW(), SolarMW: 4 * in.AvgDemandMW(),
		BatteryMWh: 4 * in.AvgDemandMW(), DoD: 1.0,
		FlexibleRatio: 0.4, ExtraCapacityFrac: 0.5,
	}
	sc, err := in.Intensities(d)
	if err != nil {
		t.Fatal(err)
	}
	grid := sc.GridMix.Mean()
	nz := sc.NetZero.Mean()
	tfs := sc.TwentyFourSeven.Mean()
	// Paper Figure 6: grid mix > Net Zero > 24/7.
	if !(grid > nz && nz > tfs) {
		t.Fatalf("intensity ordering violated: grid=%v netzero=%v 24/7=%v", grid, nz, tfs)
	}
	if tfs < 0 {
		t.Fatalf("negative intensity")
	}
}

func toG(v float64) units.GramsCO2 { return units.GramsCO2(v) }
