package explorer_test

// Golden-equivalence suite for the optimized Evaluator: every outcome it
// produces must be byte-identical to the retained reference implementation
// (Inputs.Evaluate), including while the faultinject chaos matrix is
// poisoning evaluations in between — a failed or panicked design must leave
// the evaluator's scratch state unable to corrupt the next success.

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/faultinject"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

// goldenInputs mirrors the sweep tests' 10-day site.
func goldenInputs(tb testing.TB) *explorer.Inputs {
	tb.Helper()
	const n = 240
	demand := timeseries.Generate(n, func(h int) float64 { return 10 + 2*math.Sin(float64(h%24)/24*2*math.Pi) })
	wind := timeseries.Generate(n, func(h int) float64 { return 5 + 4*math.Sin(float64(h)/17) })
	solar := timeseries.Generate(n, func(h int) float64 { return math.Max(0, 8*math.Sin((float64(h%24)-6)/12*math.Pi)) })
	ci := timeseries.Generate(n, func(h int) float64 { return 300 + 150*math.Sin(float64(h)/9) })
	in, err := explorer.NewInputsFromSeries(grid.MustSite("UT"), demand, wind, solar, ci, carbon.DefaultEmbodiedParams())
	if err != nil {
		tb.Fatalf("goldenInputs: %v", err)
	}
	return in
}

func goldenSpace(in *explorer.Inputs) explorer.Space {
	avg := in.AvgDemandMW()
	return explorer.Space{
		WindMW:             []float64{0, avg, 3 * avg, 8 * avg},
		SolarMW:            []float64{0, avg, 3 * avg, 8 * avg},
		BatteryHours:       []float64{0, 1, 4},
		ExtraCapacityFracs: []float64{0, 0.25, 1.0},
		DoD:                0.8,
		FlexibleRatio:      0.4,
	}
}

// outcomesEqual compares every field for exact bitwise equality (NaN-safe:
// identical bits compare equal under reflect.DeepEqual's float rules only
// for non-NaN, so compare bit patterns through Float64bits explicitly where
// it matters; the evaluator never produces NaN from clean inputs, so
// DeepEqual is sufficient and also covers the SoC trace).
func outcomesEqual(a, b explorer.Outcome) bool {
	return reflect.DeepEqual(a, b)
}

// TestEvaluatorGoldenEquivalence sweeps all four strategies' full design
// enumerations through one reused Evaluator (battery-axis memoization hits
// included, since enumeration varies battery/CAS innermost) and demands
// bitwise-identical outcomes against fresh reference evaluations.
func TestEvaluatorGoldenEquivalence(t *testing.T) {
	in := goldenInputs(t)
	space := goldenSpace(in)
	for _, strat := range explorer.AllStrategies() {
		ev := in.NewEvaluator()
		for i, d := range space.Enumerate(strat, in.AvgDemandMW()) {
			want, wantErr := in.Evaluate(d)
			got, gotErr := ev.Evaluate(d)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%v design %d: error mismatch: ref=%v opt=%v", strat, i, wantErr, gotErr)
			}
			if !outcomesEqual(want, got) {
				t.Fatalf("%v design %d (%+v):\nreference: %+v\noptimized: %+v", strat, i, d, want, got)
			}
		}
	}
}

// TestEvaluatorGoldenEquivalenceNonLFP covers the non-default chemistry
// branch of the embodied accounting.
func TestEvaluatorGoldenEquivalenceNonLFP(t *testing.T) {
	in := goldenInputs(t)
	ev := in.NewEvaluator()
	avg := in.AvgDemandMW()
	for _, tech := range battery.AllTechnologies() {
		d := explorer.Design{WindMW: 2 * avg, SolarMW: avg, BatteryMWh: 3 * avg, DoD: 0.8, BatteryTech: tech}
		want, err1 := in.Evaluate(d)
		got, err2 := ev.Evaluate(d)
		if err1 != nil || err2 != nil {
			t.Fatalf("tech %v: errors %v / %v", tech, err1, err2)
		}
		if !outcomesEqual(want, got) {
			t.Fatalf("tech %v diverged:\nreference: %+v\noptimized: %+v", tech, want, got)
		}
	}
}

// TestEvaluatorGoldenUnderChaos interleaves the faultinject chaos matrix —
// transient errors, permanent errors, and panics — with successful
// evaluations through one reused evaluator. Every successful outcome must
// still match the reference bit for bit: a contained failure may not leak
// state into the next design.
func TestEvaluatorGoldenUnderChaos(t *testing.T) {
	in := goldenInputs(t)
	space := goldenSpace(in)
	hooks := map[string]func(explorer.Design) error{
		"transient": faultinject.TransientFaults(7, 0.3),
		"permanent": faultinject.DesignFaults(11, 0.3),
		"panics":    faultinject.PanicFaults(13, 0.2),
	}
	for name, hook := range hooks {
		t.Run(name, func(t *testing.T) {
			in.EvalHook = hook
			defer func() { in.EvalHook = nil }()
			for _, strat := range explorer.AllStrategies() {
				ev := in.NewEvaluator()
				for i, d := range space.Enumerate(strat, in.AvgDemandMW()) {
					got, gotErr := ev.EvaluateSafe(d)
					// Reference outcomes are computed with the hook disabled
					// so the transient hook's first-failure bookkeeping is not
					// advanced by the comparison run.
					if gotErr != nil {
						var pe *explorer.PanicError
						if name == "panics" && !errors.As(gotErr, &pe) {
							t.Fatalf("%v design %d: expected contained panic, got %v", strat, i, gotErr)
						}
						continue
					}
					in.EvalHook = nil
					want, wantErr := in.Evaluate(d)
					in.EvalHook = hook
					if wantErr != nil {
						t.Fatalf("%v design %d: reference failed: %v", strat, i, wantErr)
					}
					if !outcomesEqual(want, got) {
						t.Fatalf("%v design %d after chaos: outcomes diverged\nreference: %+v\noptimized: %+v", strat, i, want, got)
					}
				}
			}
		})
	}
}
