package explorer

import (
	"testing"
)

func coarseSpace(in *Inputs) Space {
	avg := in.AvgDemandMW()
	return Space{
		WindMW:             []float64{0, 4 * avg, 12 * avg},
		SolarMW:            []float64{0, 4 * avg, 12 * avg},
		BatteryHours:       []float64{0, 6},
		ExtraCapacityFracs: []float64{0, 0.5},
		DoD:                1.0,
		FlexibleRatio:      0.4,
	}
}

func TestRefineSearchImprovesOnCoarse(t *testing.T) {
	in := siteInputs(t, "UT")
	space := coarseSpace(in)
	coarse, err := in.Search(space, RenewablesBattery)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := in.RefineSearch(space, RenewablesBattery, RefineOptions{Rounds: 2, PointsPerDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Optimal.Total() > coarse.Optimal.Total() {
		t.Fatalf("refinement made the optimum worse: %v vs %v",
			refined.Optimal.Total(), coarse.Optimal.Total())
	}
	if refined.Evaluations <= len(coarse.Points) {
		t.Fatalf("refinement should have evaluated more designs")
	}
	// Convergence trace: non-increasing.
	for i := 1; i < len(refined.Rounds); i++ {
		if refined.Rounds[i] > refined.Rounds[i-1]+1e-9 {
			t.Fatalf("incumbent worsened between rounds: %v", refined.Rounds)
		}
	}
}

func TestRefineSearchRespectsStrategy(t *testing.T) {
	in := siteInputs(t, "UT")
	refined, err := in.RefineSearch(coarseSpace(in), RenewablesOnly, RefineOptions{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := refined.Optimal.Design
	if d.BatteryMWh != 0 || d.FlexibleRatio != 0 || d.ExtraCapacityFrac != 0 {
		t.Fatalf("renewables-only refinement leaked other dimensions: %+v", d)
	}
}

func TestRefineSearchDefaults(t *testing.T) {
	opts, err := RefineOptions{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Rounds != 3 || opts.PointsPerDim != 5 || opts.Shrink != 0.35 {
		t.Fatalf("defaults wrong: %+v", opts)
	}
}

func TestRefineSearchRejectsInvalidPointsPerDim(t *testing.T) {
	in := siteInputs(t, "UT")
	for _, pts := range []int{1, 2, -4} {
		_, err := in.RefineSearch(coarseSpace(in), RenewablesOnly, RefineOptions{PointsPerDim: pts})
		if err == nil {
			t.Fatalf("PointsPerDim=%d accepted; want error", pts)
		}
	}
}

func TestBracketAndSpacing(t *testing.T) {
	if got := spacing([]float64{0, 10, 20}); got != 10 {
		t.Fatalf("spacing = %v", got)
	}
	if got := spacing([]float64{5}); got != 0 {
		t.Fatalf("degenerate spacing = %v", got)
	}
	b := bracket(10, 5, 3)
	if len(b) != 3 || b[0] != 5 || b[2] != 15 {
		t.Fatalf("bracket = %v", b)
	}
	// Clamped at zero.
	b = bracket(1, 5, 3)
	if b[0] != 0 {
		t.Fatalf("bracket should clamp at 0: %v", b)
	}
	if got := bracket(7, 0, 5); len(got) != 1 || got[0] != 7 {
		t.Fatalf("pinned bracket = %v", got)
	}
}

func TestCoordinateDescentImproves(t *testing.T) {
	in := siteInputs(t, "UT")
	avg := in.AvgDemandMW()
	start := Design{WindMW: 2 * avg, SolarMW: 2 * avg}
	startOutcome, err := in.Evaluate(start)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.CoordinateDescent(start, RenewablesBattery, 20*avg, 2, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal.Total() > startOutcome.Total() {
		t.Fatalf("descent worsened the design: %v vs %v", res.Optimal.Total(), startOutcome.Total())
	}
	if res.Evaluations < 10 {
		t.Fatalf("descent barely evaluated anything: %d", res.Evaluations)
	}
}

func TestCoordinateDescentStrategyRestriction(t *testing.T) {
	in := siteInputs(t, "UT")
	avg := in.AvgDemandMW()
	res, err := in.CoordinateDescent(Design{WindMW: avg, BatteryMWh: 5 * avg, DoD: 1, FlexibleRatio: 0.4, ExtraCapacityFrac: 0.5},
		RenewablesOnly, 20*avg, 1, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Optimal.Design
	if d.BatteryMWh != 0 || d.FlexibleRatio != 0 {
		t.Fatalf("strategy restriction ignored: %+v", d)
	}
}

func TestCoordinateDescentValidation(t *testing.T) {
	in := siteInputs(t, "UT")
	if _, err := in.CoordinateDescent(Design{}, RenewablesOnly, 0, 1, 1e-3); err == nil {
		t.Fatal("zero investment bound should error")
	}
}
