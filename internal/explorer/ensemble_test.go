package explorer

import (
	"testing"

	"carbonexplorer/internal/grid"
)

func TestEnsembleEvaluate(t *testing.T) {
	site := grid.MustSite("UT")
	d := Design{WindMW: 80, SolarMW: 80, BatteryMWh: 80, DoD: 1.0}
	res, err := EnsembleEvaluate(site, d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 5 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	if !(res.CoverageP10 <= res.CoverageP50 && res.CoverageP50 <= res.CoverageP90) {
		t.Fatalf("coverage percentiles out of order: %v %v %v",
			res.CoverageP10, res.CoverageP50, res.CoverageP90)
	}
	if !(res.TotalP10 <= res.TotalP50 && res.TotalP50 <= res.TotalP90) {
		t.Fatalf("total percentiles out of order")
	}
	// Weather years must actually differ.
	same := true
	for _, o := range res.Outcomes[1:] {
		if o.CoveragePct != res.Outcomes[0].CoveragePct {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("all ensemble years identical — seeds not varied")
	}
	// Year-to-year spread in this climate model should be moderate.
	if res.CoverageP90-res.CoverageP10 > 20 {
		t.Fatalf("implausible coverage spread: %v", res.CoverageP90-res.CoverageP10)
	}
}

func TestEnsembleValidation(t *testing.T) {
	site := grid.MustSite("UT")
	if _, err := EnsembleEvaluate(site, Design{}, 1); err == nil {
		t.Fatal("ensemble of 1 should error")
	}
	if _, err := EnsembleEvaluate(site, Design{WindMW: -1}, 3); err == nil {
		t.Fatal("invalid design should error")
	}
	bad := site
	bad.BA = "NOPE"
	if _, err := EnsembleEvaluate(bad, Design{}, 3); err == nil {
		t.Fatal("unknown BA should error")
	}
}

func TestEnsembleDeterministic(t *testing.T) {
	site := grid.MustSite("NM")
	d := Design{WindMW: 60, SolarMW: 60}
	a, err := EnsembleEvaluate(site, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EnsembleEvaluate(site, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Outcomes {
		if a.Outcomes[i].CoveragePct != b.Outcomes[i].CoveragePct {
			t.Fatalf("ensemble not deterministic at year %d", i)
		}
	}
}

func TestPercentileHelper(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := percentile([]float64{7}, 10); got != 7 {
		t.Fatalf("single = %v", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}
