package explorer

import (
	"carbonexplorer/internal/timeseries"
)

// ScenarioIntensities compares the hourly operational carbon intensity
// (gCO2/kWh of datacenter energy) of the paper's three supply scenarios
// (Figure 6):
//
//   - GridMix: the datacenter consumes the grid's energy mix as-is.
//   - NetZero: the datacenter holds PPAs for the design's renewable
//     investments; hours covered by renewable generation are carbon-free,
//     but deficit hours consume grid-mix energy (the paper's point: annual
//     matching still leaves carbon-intensive hours).
//   - TwentyFourSeven: the design's battery and scheduling are applied; only
//     residual grid draw carries the grid's intensity.
//
// Renewable energy is priced at zero operational carbon in all scenarios;
// its lifecycle carbon is an embodied charge (Section 5.1).
type ScenarioIntensities struct {
	GridMix         timeseries.Series
	NetZero         timeseries.Series
	TwentyFourSeven timeseries.Series
}

// Intensities evaluates the three scenarios for a design.
func (in *Inputs) Intensities(d Design) (ScenarioIntensities, error) {
	if err := d.Validate(); err != nil {
		return ScenarioIntensities{}, err
	}
	n := in.Demand.Len()
	out := ScenarioIntensities{GridMix: in.GridCI.Clone()}

	renewable := in.RenewableSupply(d.WindMW, d.SolarMW)
	out.NetZero = timeseries.Generate(n, func(h int) float64 {
		demand := in.Demand.At(h)
		if demand <= 0 {
			return 0
		}
		deficit := demand - renewable.At(h)
		if deficit <= 0 {
			return 0
		}
		return deficit / demand * in.GridCI.At(h)
	})

	sim, _, err := in.simulate(d)
	if err != nil {
		return ScenarioIntensities{}, err
	}
	out.TwentyFourSeven = timeseries.Generate(n, func(h int) float64 {
		load := sim.Balanced.At(h)
		if load <= 0 {
			return 0
		}
		return sim.GridDraw.At(h) / load * in.GridCI.At(h)
	})
	return out, nil
}
