package explorer

import (
	"math"
	"runtime/debug"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/scheduler"
	"carbonexplorer/internal/timeseries"
	"carbonexplorer/internal/units"
)

// Evaluator is the allocation-free form of Inputs.Evaluate. It owns the
// working memory one goroutine needs to evaluate designs back to back — the
// renewable-supply buffer, the scheduler's scratch traces, and a reusable
// battery — so the steady state allocates nothing per design. Results are
// bit-identical to Inputs.Evaluate (pinned by TestEvaluatorGoldenEquivalence
// and the sweep's chaos/merge/resume suites).
//
// An Evaluator is NOT safe for concurrent use: give each worker its own
// (internal/sweep does). The Inputs it wraps stays read-only and shared.
//
// The renewable-supply series is memoized on the last (WindMW, SolarMW)
// pair. The sweep enumerates wind×solar×battery×extra with the battery and
// server axes innermost (Space.Enumerate's deterministic order), so
// consecutive designs usually differ only in battery/scheduler knobs and the
// supply — the most expensive derived series — is rebuilt only when the
// renewable axes actually move.
type Evaluator struct {
	// DiscardSoCTrace skips copying the hourly battery state-of-charge trace
	// into outcomes, leaving Outcome.BatterySoC zero. The sweep's fold drops
	// the trace anyway (checkpoints would balloon otherwise); discarding it
	// at the source makes the steady-state path allocation-free. Leave false
	// when outcomes feed Figure 16-style SoC analysis.
	DiscardSoCTrace bool

	in *Inputs

	// supply is the memoized renewable-supply buffer; renewable is its
	// read-only Series view handed to the scheduler.
	supply      []float64
	renewable   timeseries.Series
	haveSupply  bool
	memoWindMW  float64
	memoSolarMW float64
	// windGenMWh and solarGenMWh are each source's annual generation for the
	// memoized pair — the embodied-carbon inputs, captured during the same
	// pass that builds the supply.
	windGenMWh  float64
	solarGenMWh float64

	scratch scheduler.Scratch
	bat     battery.Battery

	// fallback routes every evaluation through the reference Inputs.Evaluate
	// when the inputs fail the clean-series check below — the optimized path
	// is only taken when skipping the scheduler's per-design series
	// validation is provably safe.
	fallback bool
}

// NewEvaluator returns an Evaluator for these inputs with its supply buffer
// preallocated to the demand horizon.
//
// The demand and shape series are validated here, once: Inputs built by the
// constructors always pass (they validate or repair every series), which
// lets the hot path tell the scheduler its series are clean instead of
// re-scanning them per design. Inputs assembled some other way that fail
// the check still evaluate correctly — through the reference path.
func (in *Inputs) NewEvaluator() *Evaluator {
	e := &Evaluator{in: in, supply: make([]float64, in.Demand.Len())}
	e.renewable = timeseries.Adopt(e.supply)
	n := in.Demand.Len()
	e.fallback = n == 0 ||
		in.Demand.Validate() != nil ||
		in.WindShape.CheckLength(n) != nil || in.WindShape.Validate() != nil ||
		in.SolarShape.CheckLength(n) != nil || in.SolarShape.Validate() != nil
	return e
}

// Inputs returns the shared, read-only inputs this evaluator wraps.
func (e *Evaluator) Inputs() *Inputs { return e.in }

// ensureSupply (re)builds the memoized renewable supply for the given
// investments. It reports false when the scaled supply cannot be proven
// finite — the caller must then take the reference path, which runs the
// full per-sample validation and produces its exact errors.
//
//carbonlint:hotpath
func (e *Evaluator) ensureSupply(windMW, solarMW float64) bool {
	if e.haveSupply && windMW == e.memoWindMW && solarMW == e.memoSolarMW { //carbonlint:allow floatcmp memo key wants exact bits: enumerated grids repeat identical values, and a near-miss must rebuild
		return true
	}
	// Invalidate first: a panic below (fault injection) must not leave the
	// memo claiming a half-built buffer.
	e.haveSupply = false
	// O(1) overflow guard replacing the per-sample scan: rounding is
	// monotone, so every scaled sample is bounded by the scaled maxima —
	// a finite bound proves the whole buffer finite (shapes are already
	// known non-negative from the construction-time check).
	bound := 0.0
	if windMW > 0 {
		wmax := e.in.windShapeMax()
		bound += wmax * scaleToMaxFactor(wmax, windMW)
	}
	if solarMW > 0 {
		smax := e.in.solarShapeMax()
		bound += smax * scaleToMaxFactor(smax, solarMW)
	}
	if math.IsInf(bound, 1) {
		return false
	}
	timeseries.Zero(e.supply)
	e.windGenMWh, e.solarGenMWh = e.in.addSupplyInto(e.supply, windMW, solarMW)
	e.memoWindMW, e.memoSolarMW = windMW, solarMW
	e.haveSupply = true
	return true
}

// Evaluate simulates one design for one year and returns its outcome,
// bit-identical to Inputs.Evaluate but reusing the evaluator's buffers.
// The accounting mirrors evaluate.go step for step; where passes are fused
// (grid pricing + grid total) the accumulators are independent, so each
// still sees the exact add sequence of the reference.
//
// The //carbonlint:hotpath marker is the static face of the runtime gate:
// hotalloc rejects allocating constructs in exactly the functions
// TestEvaluateSteadyStateZeroAllocs measures (the marker census is pinned
// by TestHotpathMarkersNameZeroAllocGatedSymbols).
//
//carbonlint:hotpath
func (e *Evaluator) Evaluate(d Design) (Outcome, error) {
	in := e.in
	if err := d.Validate(); err != nil {
		return Outcome{}, err
	}
	if e.fallback || !e.ensureSupply(d.WindMW, d.SolarMW) {
		// Inputs outside the clean-series guarantee, or a supply that may
		// overflow: the reference path validates per sample and produces
		// the exact reference errors and bytes by definition.
		return in.Evaluate(d)
	}

	var bat *battery.Battery
	if d.BatteryMWh > 0 {
		if err := e.bat.Init(d.BatteryTech.Spec().Params(d.BatteryMWh, d.DoD)); err != nil {
			return Outcome{}, err
		}
		bat = &e.bat
	}

	capacityMW := 0.0
	if d.FlexibleRatio > 0 {
		capacityMW = in.peakDemandMW * (1 + d.ExtraCapacityFrac)
	}

	res, err := scheduler.SimulateScratch(scheduler.SimConfig{
		Demand:              in.Demand,
		Renewable:           e.renewable,
		Battery:             bat,
		FlexibleRatio:       d.FlexibleRatio,
		CapacityMW:          capacityMW,
		DeferralWindowHours: 24,
		// Provably passes Validate: demand and shapes were validated when
		// the evaluator was built, the supply buffer is their non-negative
		// combination proven finite above, lengths match by construction,
		// and the scalars come from the validated Design.
		AssumeValid: true,
	}, &e.scratch)
	if err != nil {
		return Outcome{}, err
	}

	out := Outcome{Design: d}

	// Operational carbon and grid total in one pass: two independent
	// accumulators, each adding in hour order exactly as the reference's
	// separate loops do.
	var operational units.GramsCO2
	gridSum := 0.0
	gridCI := in.GridCI.Raw()
	for h, draw := range res.GridDraw {
		gridSum += draw
		if draw <= 0 {
			continue
		}
		operational += units.MegaWattHours(draw).Carbon(units.CarbonIntensity(gridCI[h]))
	}
	out.Operational = operational
	out.GridEnergyMWh = gridSum
	out.SurplusMWh = sumFloats(res.Surplus)
	out.CoveragePct = CoverageFromGridDraw(out.GridEnergyMWh, in.demandTotalMWh)

	// Embodied: renewables are charged for everything the farms generate —
	// the per-source sums captured when the memoized supply was built.
	out.EmbodiedRenewables = in.Embodied.RenewableEmbodied(
		units.MegaWattHours(e.windGenMWh), units.MegaWattHours(e.solarGenMWh))

	if bat != nil {
		days := float64(in.Demand.Len()) / 24
		out.BatteryCyclesPerDay = bat.EquivalentFullCycles() / days
		if d.BatteryTech == battery.LFPCell {
			out.EmbodiedBattery = in.Embodied.BatteryEmbodiedAnnual(
				units.MegaWattHours(d.BatteryMWh), d.DoD, out.BatteryCyclesPerDay)
		} else {
			out.EmbodiedBattery = chemistryEmbodiedAnnual(
				d.BatteryTech.Spec(), units.MegaWattHours(d.BatteryMWh), d.DoD, out.BatteryCyclesPerDay)
		}
		if !e.DiscardSoCTrace {
			out.BatterySoC = timeseries.FromValues(res.BatterySoC)
		}
	}

	if d.FlexibleRatio > 0 && d.ExtraCapacityFrac > 0 {
		out.EmbodiedServers = in.Embodied.ServerEmbodiedAnnual(
			units.MegaWatts(d.ExtraCapacityFrac * in.peakDemandMW))
	}
	if extra := res.PeakLoadMW - in.peakDemandMW; extra > 0 {
		out.ExtraCapacityUsedFrac = extra / in.peakDemandMW
	}

	out.Embodied = out.EmbodiedRenewables + out.EmbodiedBattery + out.EmbodiedServers
	return out, nil
}

// EvaluateSafe is Evaluate with the same panic containment and EvalHook
// semantics as Inputs.EvaluateSafe. A recovered panic leaves the evaluator
// reusable: the memo was invalidated before the buffer was touched, and the
// scheduler scratch re-zeroes itself on the next run.
func (e *Evaluator) EvaluateSafe(d Design) (o Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if e.in.EvalHook != nil {
		if err := e.in.EvalHook(d); err != nil {
			return Outcome{}, err
		}
	}
	return e.Evaluate(d)
}

// sumFloats accumulates in index order (bit-reproducibility).
//
//carbonlint:hotpath
func sumFloats(v []float64) float64 {
	t := 0.0
	for _, x := range v {
		t += x
	}
	return t
}
