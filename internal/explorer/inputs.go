package explorer

import (
	"fmt"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/dcload"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

// Inputs bundles everything needed to evaluate designs for one datacenter
// site: the site's demand trace, its grid's renewable generation shapes, and
// the grid's hourly carbon intensity. Build it once per site and reuse it
// across many Evaluate calls.
type Inputs struct {
	// Site is the datacenter location under study.
	Site grid.Site
	// Demand is the datacenter's hourly power in MW.
	Demand timeseries.Series
	// WindShape and SolarShape are the local grid's hourly wind and solar
	// generation in MW. Investments are projected by linearly rescaling
	// these shapes so their annual maximum equals the invested capacity
	// (Section 4.1).
	WindShape  timeseries.Series
	SolarShape timeseries.Series
	// GridCI is the local grid's hourly carbon intensity in gCO2/kWh,
	// used to price energy drawn from the grid.
	GridCI timeseries.Series
	// Embodied holds the manufacturing-footprint assumptions.
	Embodied carbon.EmbodiedParams

	// EvalHook, when non-nil, runs before every design evaluation inside a
	// search sweep. A non-nil error (or a panic) fails that design alone —
	// the sweep's panic containment applies. It exists for fault injection
	// in chaos tests and for canary checks in long-running services; leave
	// it nil in normal operation.
	EvalHook func(Design) error

	// demandTotalMWh caches Demand.Sum().
	demandTotalMWh float64
	// peakDemandMW caches Demand.MaxValue(), the baseline provisioned
	// capacity against which extra servers are measured.
	peakDemandMW float64
	// windShapeMaxMW and solarShapeMaxMW cache the shapes' annual maxima —
	// the denominators of the paper's linear-scaling rule — so the hot path
	// does not rescan 8760 samples per design. shapeMaxCached guards the
	// cache for Inputs values built without a constructor (package tests).
	windShapeMaxMW  float64
	solarShapeMaxMW float64
	shapeMaxCached  bool
}

// Option customizes NewInputs.
type Option func(*options)

type options struct {
	demandParams *dcload.Params
	embodied     *carbon.EmbodiedParams
	repair       *timeseries.RepairPolicy
}

// WithDemandParams overrides the default demand model.
func WithDemandParams(p dcload.Params) Option {
	return func(o *options) { o.demandParams = &p }
}

// WithEmbodiedParams overrides the default embodied-carbon assumptions.
func WithEmbodiedParams(p carbon.EmbodiedParams) Option {
	return func(o *options) { o.embodied = &p }
}

// WithSeriesRepair makes NewInputsFromSeries tolerant of damaged data:
// instead of rejecting series containing NaN, infinite, or negative
// samples, it repairs them under the given policy (interpolating short gaps,
// clamping negative noise) and only errors when a gap exceeds the policy's
// bound. Without this option all series must already be clean.
func WithSeriesRepair(p timeseries.RepairPolicy) Option {
	return func(o *options) { o.repair = &p }
}

// NewInputs assembles evaluation inputs for a site: it simulates the site's
// balancing-authority grid year and the site's demand trace.
func NewInputs(site grid.Site, opts ...Option) (*Inputs, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	profile, err := grid.Profile(site.BA)
	if err != nil {
		return nil, err
	}
	year := grid.GenerateYear(profile)

	dp := dcload.DefaultParams(site.AvgPowerMW)
	if o.demandParams != nil {
		dp = *o.demandParams
	}
	trace, err := dcload.Generate(dp, timeseries.HoursPerYear)
	if err != nil {
		return nil, err
	}

	emb := carbon.DefaultEmbodiedParams()
	if o.embodied != nil {
		emb = *o.embodied
	}
	if err := emb.Validate(); err != nil {
		return nil, err
	}

	in := &Inputs{
		Site:       site,
		Demand:     trace.Power,
		WindShape:  year.WindShape(),
		SolarShape: year.SolarShape(),
		GridCI:     year.CarbonIntensity(),
		Embodied:   emb,
	}
	in.finish()
	return in, nil
}

// NewInputsFromSeries assembles inputs from caller-provided series, for
// users substituting real EIA and datacenter data. All series must have
// equal, non-zero length, and every sample must be finite and non-negative —
// a single NaN would otherwise silently poison every downstream carbon
// total. Pass WithSeriesRepair to accept and repair damaged data instead.
func NewInputsFromSeries(site grid.Site, demand, windShape, solarShape, gridCI timeseries.Series, emb carbon.EmbodiedParams, opts ...Option) (*Inputs, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	n := demand.Len()
	if n == 0 {
		return nil, fmt.Errorf("explorer: empty demand series")
	}
	named := []struct {
		name string
		s    timeseries.Series
	}{
		{"demand", demand},
		{"wind", windShape},
		{"solar", solarShape},
		{"grid CI", gridCI},
	}
	cleaned := make([]timeseries.Series, len(named))
	for i, ns := range named {
		if err := ns.s.CheckLength(n); err != nil {
			return nil, fmt.Errorf("explorer: %s series vs demand: %w", ns.name, err)
		}
		if o.repair != nil {
			repaired, _, err := ns.s.Repair(*o.repair)
			if err != nil {
				return nil, fmt.Errorf("explorer: repairing %s series: %w", ns.name, err)
			}
			cleaned[i] = repaired
			continue
		}
		if err := ns.s.Validate(); err != nil {
			return nil, fmt.Errorf("explorer: %s series: %w", ns.name, err)
		}
		cleaned[i] = ns.s.Clone()
	}
	if err := emb.Validate(); err != nil {
		return nil, err
	}
	in := &Inputs{
		Site:       site,
		Demand:     cleaned[0],
		WindShape:  cleaned[1],
		SolarShape: cleaned[2],
		GridCI:     cleaned[3],
		Embodied:   emb,
	}
	in.finish()
	return in, nil
}

func (in *Inputs) finish() {
	in.demandTotalMWh = in.Demand.Sum()
	in.peakDemandMW = in.Demand.MaxValue()
	in.windShapeMaxMW = in.WindShape.MaxValue()
	in.solarShapeMaxMW = in.SolarShape.MaxValue()
	in.shapeMaxCached = true
}

// windShapeMax and solarShapeMax return the cached shape maxima, falling
// back to a scan for Inputs built without a constructor.
func (in *Inputs) windShapeMax() float64 {
	if in.shapeMaxCached {
		return in.windShapeMaxMW
	}
	return in.WindShape.MaxValue()
}

func (in *Inputs) solarShapeMax() float64 {
	if in.shapeMaxCached {
		return in.solarShapeMaxMW
	}
	return in.SolarShape.MaxValue()
}

// PeakDemandMW returns the baseline peak demand — the site's existing
// provisioned capacity.
func (in *Inputs) PeakDemandMW() float64 { return in.peakDemandMW }

// AvgDemandMW returns the mean demand.
func (in *Inputs) AvgDemandMW() float64 { return in.demandTotalMWh / float64(in.Demand.Len()) }

// RenewableSupply projects hourly renewable supply for the given wind and
// solar investments using the paper's linear-scaling rule. A zero investment
// contributes nothing; a region with no generation of a type (e.g. wind in
// North Carolina) contributes nothing regardless of investment.
//
// The result is built in one buffer (no intermediate wind/solar series) and
// is bit-identical to scaling each shape separately and adding them: zero
// investments add exactly nothing, and x·1 and 0+x are exact in IEEE 754.
func (in *Inputs) RenewableSupply(windMW, solarMW float64) timeseries.Series {
	buf := make([]float64, in.Demand.Len())
	in.addSupplyInto(buf, windMW, solarMW)
	return timeseries.Adopt(buf)
}

// addSupplyInto accumulates the scaled wind and solar shapes into buf and
// returns each source's generated energy (the ScaleToMax(...).Sum() of the
// reference path, computed during the same pass). It is the single kernel
// behind RenewableSupply and the Evaluator's memoized supply.
func (in *Inputs) addSupplyInto(buf []float64, windMW, solarMW float64) (windGenMWh, solarGenMWh float64) {
	if windMW > 0 {
		windGenMWh = in.WindShape.ScaleAddInto(buf, scaleToMaxFactor(in.windShapeMax(), windMW))
	}
	if solarMW > 0 {
		solarGenMWh = in.SolarShape.ScaleAddInto(buf, scaleToMaxFactor(in.solarShapeMax(), solarMW))
	}
	return windGenMWh, solarGenMWh
}

// scaleToMaxFactor is ScaleToMax as a scalar: a series with no positive
// samples is used unchanged (factor 1, exact in IEEE 754), otherwise it is
// rescaled so its maximum equals max.
func scaleToMaxFactor(cur, max float64) float64 {
	if cur <= 0 {
		return 1
	}
	return max / cur
}
