package explorer

import (
	"testing"
)

func testGrid(t *testing.T) (CellGrid, *Inputs) {
	t.Helper()
	in := siteInputs(t, "UT")
	g, err := NewCellGrid(DefaultSpace(in), RenewablesBatteryCAS, in.AvgDemandMW(), 3)
	if err != nil {
		t.Fatal(err)
	}
	return g, in
}

func TestNewCellGridBoundsAndPinning(t *testing.T) {
	g, in := testGrid(t)
	avg := in.AvgDemandMW()
	if g.Lo[AxisWind] != 0 || g.Hi[AxisWind] != 16*avg || !g.Free[AxisWind] {
		t.Fatalf("wind axis: lo %v hi %v free %v", g.Lo[AxisWind], g.Hi[AxisWind], g.Free[AxisWind])
	}
	if g.Lo[AxisBattery] != 0 || g.Hi[AxisBattery] != 16*avg {
		t.Fatalf("battery axis: lo %v hi %v", g.Lo[AxisBattery], g.Hi[AxisBattery])
	}
	if g.Hi[AxisExtra] != 1.0 || !g.Free[AxisExtra] {
		t.Fatalf("extra axis: hi %v free %v", g.Hi[AxisExtra], g.Free[AxisExtra])
	}

	// RenewablesOnly pins battery and extra capacity to zero.
	ro, err := NewCellGrid(DefaultSpace(in), RenewablesOnly, avg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Free[AxisBattery] || ro.Free[AxisExtra] || ro.Hi[AxisBattery] != 0 || ro.Hi[AxisExtra] != 0 {
		t.Fatalf("renewables-only grid not pinned: %+v", ro)
	}
	if ro.FlexibleRatio != 0 {
		t.Fatalf("renewables-only grid kept flexible ratio %v", ro.FlexibleRatio)
	}
}

func TestNewCellGridRejectsBadInputs(t *testing.T) {
	in := siteInputs(t, "UT")
	if _, err := NewCellGrid(DefaultSpace(in), RenewablesBatteryCAS, in.AvgDemandMW(), 1); err == nil {
		t.Fatal("coarse=1 accepted")
	}
	empty := DefaultSpace(in)
	empty.SolarMW = nil
	if _, err := NewCellGrid(empty, RenewablesBatteryCAS, in.AvgDemandMW(), 3); err == nil {
		t.Fatal("empty solar axis accepted")
	}
}

func TestCoordDyadicStability(t *testing.T) {
	g, _ := testGrid(t)
	// A depth-d point must have bit-identical coordinates at depth d+1 with
	// its index doubled, for every free axis.
	for a := 0; a < NumAxes; a++ {
		if !g.Free[a] {
			continue
		}
		for depth := 0; depth < 4; depth++ {
			n := g.PointsPerAxis(depth)
			for k := 0; k < n; k++ {
				c0 := g.Coord(a, k, depth)
				c1 := g.Coord(a, 2*k, depth+1)
				if c0 != c1 {
					t.Fatalf("axis %d k=%d depth=%d: %v != %v at next depth", a, k, depth, c0, c1)
				}
			}
		}
	}
	// Endpoints are exact.
	if g.Coord(AxisWind, 0, 3) != g.Lo[AxisWind] || g.Coord(AxisWind, g.PointsPerAxis(3)-1, 3) != g.Hi[AxisWind] {
		t.Fatal("endpoints drifted")
	}
}

func TestCoarseCellsAndChildrenOrdering(t *testing.T) {
	g, _ := testGrid(t)
	cells := g.CoarseCells()
	// 4 free axes at coarse=3 → (3-1)^4 cells.
	if len(cells) != 16 {
		t.Fatalf("coarse cells = %d, want 16", len(cells))
	}
	for i := 1; i < len(cells); i++ {
		if !lessIdx(cells[i-1].Idx, cells[i].Idx) {
			t.Fatalf("coarse cells out of order at %d: %v !< %v", i, cells[i-1], cells[i])
		}
	}
	kids := g.Children(cells[3])
	if len(kids) != 16 {
		t.Fatalf("children = %d, want 2^4", len(kids))
	}
	for i := 1; i < len(kids); i++ {
		if !lessIdx(kids[i-1].Idx, kids[i].Idx) {
			t.Fatalf("children out of order at %d", i)
		}
	}
	for _, k := range kids {
		for a := 0; a < NumAxes; a++ {
			if k.Idx[a] != cells[3].Idx[a]*2 && k.Idx[a] != cells[3].Idx[a]*2+1 {
				t.Fatalf("child %v not a subdivision of %v", k, cells[3])
			}
		}
	}
}

func TestRoundPointsCoarseLatticeAndRefinement(t *testing.T) {
	g, _ := testGrid(t)
	round0 := g.RoundPoints(g.CoarseCells(), 0)
	// Round 0 is the full coarse lattice: 3^4 unique corners.
	if len(round0) != 81 {
		t.Fatalf("round-0 points = %d, want 81", len(round0))
	}
	seen := make(map[Design]bool)
	for i, d := range round0 {
		if seen[d] {
			t.Fatalf("duplicate design at %d: %+v", i, d)
		}
		seen[d] = true
	}

	// Refining one cell yields only new (odd-index) points, none of which
	// may coincide with a coarse lattice point.
	kids := g.Children(g.CoarseCells()[0])
	round1 := g.RoundPoints(kids, 1)
	if len(round1) == 0 {
		t.Fatal("no refinement points")
	}
	for _, d := range round1 {
		if seen[d] {
			t.Fatalf("round-1 point %+v re-evaluates a coarse point", d)
		}
	}
	// 3^4 corners of the subdivided cell minus the 2^4 already-evaluated
	// even corners.
	if want := 81 - 16; len(round1) != want {
		t.Fatalf("round-1 points = %d, want %d", len(round1), want)
	}
}

func TestRoundPointsNormalizesDesigns(t *testing.T) {
	g, _ := testGrid(t)
	for _, d := range g.RoundPoints(g.CoarseCells(), 0) {
		if err := d.Validate(); err != nil {
			t.Fatalf("invalid design %+v: %v", d, err)
		}
		if d.BatteryMWh == 0 && d.DoD != 0 {
			t.Fatalf("battery-less design kept DoD: %+v", d)
		}
	}
}

func TestBoundsAreSound(t *testing.T) {
	g, in := testGrid(t)
	m := NewCellModel(in, g)
	// Every evaluated corner of every coarse cell must respect the cell's
	// lower bounds.
	for _, c := range g.CoarseCells() {
		opLB, emLB := m.Bounds(c, 0)
		if opLB < 0 || emLB < 0 {
			t.Fatalf("negative bound for %v: op %v em %v", c, opLB, emLB)
		}
		for _, d := range g.RoundPoints([]Cell{c}, 0) {
			o, err := in.Evaluate(d)
			if err != nil {
				t.Fatal(err)
			}
			if float64(o.Operational) < opLB {
				t.Fatalf("cell %v: operational %v below bound %v for %+v", c, o.Operational, opLB, d)
			}
			if float64(o.Embodied) < emLB*(1-1e-9) {
				t.Fatalf("cell %v: embodied %v below bound %v for %+v", c, o.Embodied, emLB, d)
			}
		}
	}
}

func TestReachable(t *testing.T) {
	frontier := []Outcome{
		{Operational: 100, Embodied: 10},
		{Operational: 10, Embodied: 100},
	}
	if Reachable(150, 20, frontier, 0, 0) {
		t.Fatal("dominated bounds reported reachable")
	}
	if !Reachable(50, 50, frontier, 0, 0) {
		t.Fatal("gap in the frontier reported unreachable")
	}
	// Slack turns a near-miss into a prune.
	if Reachable(95, 8, frontier, 10, 5) {
		t.Fatal("slack not applied")
	}
	if !Reachable(0, 0, nil, 0, 0) {
		t.Fatal("empty frontier must keep every cell")
	}
}

func TestBoundsZeroAllocs(t *testing.T) {
	g, in := testGrid(t)
	m := NewCellModel(in, g)
	cells := g.CoarseCells()
	frontier := []Outcome{{Operational: 1, Embodied: 1}}
	allocs := testing.AllocsPerRun(100, func() {
		for _, c := range cells {
			opLB, emLB := m.Bounds(c, 1)
			Reachable(opLB, emLB, frontier, 0.5, 0.5)
		}
	})
	if allocs != 0 {
		t.Fatalf("Bounds/Reachable allocate: %v allocs/run", allocs)
	}
}
