package explorer

import (
	"fmt"
	"math"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/scheduler"
	"carbonexplorer/internal/timeseries"
	"carbonexplorer/internal/units"
)

// Strategy selects which of the paper's solution dimensions a design may
// use (Figure 14's four curves).
type Strategy int

// The four strategies of Section 5.2.
const (
	// RenewablesOnly invests in wind/solar generation alone.
	RenewablesOnly Strategy = iota
	// RenewablesBattery adds on-site battery storage.
	RenewablesBattery
	// RenewablesCAS adds carbon-aware scheduling with extra servers.
	RenewablesCAS
	// RenewablesBatteryCAS combines all three solutions.
	RenewablesBatteryCAS
)

// String names the strategy as the paper labels it.
func (s Strategy) String() string {
	switch s {
	case RenewablesOnly:
		return "Renewables Only"
	case RenewablesBattery:
		return "Renewables + Battery"
	case RenewablesCAS:
		return "Renewables + CAS"
	case RenewablesBatteryCAS:
		return "Renewables + Battery + CAS"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// UsesBattery reports whether designs under this strategy may deploy
// storage.
func (s Strategy) UsesBattery() bool {
	return s == RenewablesBattery || s == RenewablesBatteryCAS
}

// UsesCAS reports whether designs under this strategy may shift workloads.
func (s Strategy) UsesCAS() bool {
	return s == RenewablesCAS || s == RenewablesBatteryCAS
}

// AllStrategies lists the four strategies in the paper's order.
func AllStrategies() []Strategy {
	return []Strategy{RenewablesOnly, RenewablesBattery, RenewablesCAS, RenewablesBatteryCAS}
}

// Design is one point in the design space.
//
// Design is part of the checkpoint wire format: the json tags pin the wire
// names to the historical (identifier-derived) spelling so existing
// checkpoint files keep loading even if a field is ever renamed.
type Design struct {
	// WindMW and SolarMW are renewable investments (installed capacity).
	WindMW  float64 `json:"WindMW"`
	SolarMW float64 `json:"SolarMW"`
	// BatteryMWh is on-site storage capacity (0 = none).
	BatteryMWh float64 `json:"BatteryMWh"`
	// DoD is the battery's depth of discharge in (0, 1]; ignored without a
	// battery.
	DoD float64 `json:"DoD"`
	// BatteryTech selects the storage chemistry; the zero value is the
	// paper's LFP. Non-LFP chemistries use their own efficiency, C-rate,
	// cycle-life, and manufacturing-footprint figures.
	BatteryTech battery.Technology `json:"BatteryTech"`
	// FlexibleRatio is the fraction of load the scheduler may defer
	// (0 = no carbon-aware scheduling).
	FlexibleRatio float64 `json:"FlexibleRatio"`
	// ExtraCapacityFrac is extra server capacity provisioned for deferred
	// work, as a fraction of baseline peak demand (e.g. 0.25 = +25%).
	ExtraCapacityFrac float64 `json:"ExtraCapacityFrac"`
}

// Validate reports the first invalid field, or nil. Non-finite fields are
// rejected explicitly: NaN compares false against every bound, so without
// these checks a NaN investment would sail through and poison the whole
// evaluation.
func (d Design) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"wind", d.WindMW}, {"solar", d.SolarMW}, {"battery", d.BatteryMWh},
		{"DoD", d.DoD}, {"flexible ratio", d.FlexibleRatio}, {"extra capacity", d.ExtraCapacityFrac},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("explorer: non-finite %s %v", f.name, f.v)
		}
	}
	switch {
	case d.WindMW < 0 || d.SolarMW < 0:
		return fmt.Errorf("explorer: negative renewable investment")
	case d.BatteryMWh < 0:
		return fmt.Errorf("explorer: negative battery capacity")
	case d.BatteryMWh > 0 && (d.DoD <= 0 || d.DoD > 1):
		return fmt.Errorf("explorer: depth of discharge %v out of (0, 1]", d.DoD)
	case d.FlexibleRatio < 0 || d.FlexibleRatio > 1:
		return fmt.Errorf("explorer: flexible ratio %v out of [0, 1]", d.FlexibleRatio)
	case d.ExtraCapacityFrac < 0:
		return fmt.Errorf("explorer: negative extra capacity")
	}
	return nil
}

// Outcome is the evaluated result of a design.
type Outcome struct {
	// Design echoes the evaluated point.
	Design Design
	// CoveragePct is 24/7 renewable coverage in [0, 100].
	CoveragePct float64
	// Operational is the annual operational carbon: grid energy drawn,
	// priced at the grid's hourly carbon intensity.
	Operational units.GramsCO2
	// Embodied is the annualized embodied carbon of the design's
	// renewables, battery, and extra servers.
	Embodied units.GramsCO2
	// EmbodiedRenewables, EmbodiedBattery, and EmbodiedServers break down
	// Embodied.
	EmbodiedRenewables units.GramsCO2
	EmbodiedBattery    units.GramsCO2
	EmbodiedServers    units.GramsCO2
	// GridEnergyMWh is annual energy drawn from the grid.
	GridEnergyMWh float64
	// SurplusMWh is annual renewable energy the datacenter could not use,
	// store, or absorb.
	SurplusMWh float64
	// BatteryCyclesPerDay is the battery's equivalent full cycles per day.
	BatteryCyclesPerDay float64
	// ExtraCapacityUsedFrac is the peak of the balanced load above baseline
	// peak demand, as a fraction of baseline peak.
	ExtraCapacityUsedFrac float64
	// BatterySoC is the hourly state-of-charge trace (empty when no
	// battery), used for the Figure 16 charge-level distribution.
	BatterySoC timeseries.Series
}

// Total returns operational + embodied carbon.
func (o Outcome) Total() units.GramsCO2 { return o.Operational + o.Embodied }

// Evaluate simulates one design for one year and returns its outcome.
//
// The battery is created fresh per call (full at hour zero). Embodied
// charges follow Section 5.1: renewables per kWh generated, battery
// capacity amortized over its DoD- and cycling-dependent lifetime, extra
// servers amortized over the server refresh horizon with the facility
// multiplier.
func (in *Inputs) Evaluate(d Design) (Outcome, error) {
	res, bat, err := in.simulate(d)
	if err != nil {
		return Outcome{}, err
	}

	out := Outcome{Design: d}

	// Operational carbon: every MWh drawn from the grid is priced at that
	// hour's grid carbon intensity.
	var operational units.GramsCO2
	for h := 0; h < res.GridDraw.Len(); h++ {
		draw := res.GridDraw.At(h)
		if draw <= 0 {
			continue
		}
		operational += units.MegaWattHours(draw).Carbon(units.CarbonIntensity(in.GridCI.At(h)))
	}
	out.Operational = operational
	out.GridEnergyMWh = res.GridDraw.Sum()
	out.SurplusMWh = res.Surplus.Sum()
	out.CoveragePct = CoverageFromGridDraw(out.GridEnergyMWh, in.demandTotalMWh)

	// Embodied: renewables are charged for everything the farms generate.
	windGen := units.MegaWattHours(0)
	if d.WindMW > 0 {
		windGen = units.MegaWattHours(in.WindShape.ScaleToMax(d.WindMW).Sum())
	}
	solarGen := units.MegaWattHours(0)
	if d.SolarMW > 0 {
		solarGen = units.MegaWattHours(in.SolarShape.ScaleToMax(d.SolarMW).Sum())
	}
	out.EmbodiedRenewables = in.Embodied.RenewableEmbodied(windGen, solarGen)

	if bat != nil {
		days := float64(in.Demand.Len()) / 24
		out.BatteryCyclesPerDay = bat.EquivalentFullCycles() / days
		if d.BatteryTech == battery.LFPCell {
			// LFP uses the (user-tunable) EmbodiedParams figures, which
			// default to the paper's values.
			out.EmbodiedBattery = in.Embodied.BatteryEmbodiedAnnual(
				units.MegaWattHours(d.BatteryMWh), d.DoD, out.BatteryCyclesPerDay)
		} else {
			out.EmbodiedBattery = chemistryEmbodiedAnnual(
				d.BatteryTech.Spec(), units.MegaWattHours(d.BatteryMWh), d.DoD, out.BatteryCyclesPerDay)
		}
		out.BatterySoC = res.BatterySoC
	}

	// Servers are charged for the capacity the design provisions, not the
	// observed peak: provisioned capacity is the investment decision the
	// optimizer weighs. (Transient forced-deadline peaks above the cap are
	// absorbed by existing headroom or Turbo Boost, per Section 4.3's note,
	// and reported via ExtraCapacityUsedFrac.)
	if d.FlexibleRatio > 0 && d.ExtraCapacityFrac > 0 {
		out.EmbodiedServers = in.Embodied.ServerEmbodiedAnnual(
			units.MegaWatts(d.ExtraCapacityFrac * in.peakDemandMW))
	}
	if extra := res.PeakLoadMW - in.peakDemandMW; extra > 0 {
		out.ExtraCapacityUsedFrac = extra / in.peakDemandMW
	}

	out.Embodied = out.EmbodiedRenewables + out.EmbodiedBattery + out.EmbodiedServers
	return out, nil
}

// chemistryEmbodiedAnnual annualizes a non-LFP chemistry's manufacturing
// footprint using its own per-kWh figure, cycle-life curve, and calendar
// cap.
func chemistryEmbodiedAnnual(chem battery.Chemistry, capacity units.MegaWattHours, dod, cyclesPerDay float64) units.GramsCO2 {
	if capacity <= 0 {
		return 0
	}
	total := units.FromKgCO2(capacity.KWh() * chem.EmbodiedKgPerKWh)
	years := chem.CalendarLifeYears
	if cyclesPerDay > 0 {
		byCycles := chem.CycleLife(dod) / cyclesPerDay / 365
		if byCycles < years {
			years = byCycles
		}
	}
	return units.GramsCO2(float64(total) / years)
}

// simulate runs the scheduler for a design, creating a fresh battery. It is
// shared by Evaluate and Intensities.
func (in *Inputs) simulate(d Design) (scheduler.Result, *battery.Battery, error) {
	if err := d.Validate(); err != nil {
		return scheduler.Result{}, nil, err
	}
	renewable := in.RenewableSupply(d.WindMW, d.SolarMW)

	var bat *battery.Battery
	if d.BatteryMWh > 0 {
		var err error
		bat, err = battery.New(d.BatteryTech.Spec().Params(d.BatteryMWh, d.DoD))
		if err != nil {
			return scheduler.Result{}, nil, err
		}
	}

	capacityMW := 0.0
	if d.FlexibleRatio > 0 {
		capacityMW = in.peakDemandMW * (1 + d.ExtraCapacityFrac)
	}

	res, err := scheduler.Simulate(scheduler.SimConfig{
		Demand:              in.Demand,
		Renewable:           renewable,
		Battery:             bat,
		FlexibleRatio:       d.FlexibleRatio,
		CapacityMW:          capacityMW,
		DeferralWindowHours: 24,
	})
	if err != nil {
		return scheduler.Result{}, nil, err
	}
	return res, bat, nil
}
