package explorer

import (
	"context"
	"fmt"
	"math"
)

// The exhaustive Search scales as the product of the dimension grids, so
// practical grids are coarse and can miss the optimum between grid points.
// RefineSearch wraps Search with iterative zoom: after each pass it builds a
// finer grid bracketing the incumbent optimum in every dimension and
// searches again, converging toward the continuous optimum at a fraction of
// a fine uniform grid's cost.

// RefineOptions controls the zoom search.
type RefineOptions struct {
	// Rounds is the number of zoom iterations after the initial coarse
	// pass (default 3).
	Rounds int
	// PointsPerDim is the grid size per dimension in each zoom round
	// (default 5).
	PointsPerDim int
	// Shrink is the factor by which each round narrows the bracket around
	// the incumbent (default 0.35).
	Shrink float64
}

func (o RefineOptions) withDefaults() (RefineOptions, error) {
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	switch {
	case o.PointsPerDim == 0:
		o.PointsPerDim = 5
	case o.PointsPerDim < 3:
		// A zoom grid needs a point on each side of the incumbent plus the
		// incumbent itself; silently promoting a nonsensical request used
		// to hide caller bugs, so reject it instead.
		return RefineOptions{}, fmt.Errorf("explorer: RefineOptions.PointsPerDim %d invalid: need 0 (default) or at least 3", o.PointsPerDim)
	}
	if o.Shrink <= 0 || o.Shrink >= 1 {
		o.Shrink = 0.35
	}
	return o, nil
}

// RefineResult is the outcome of a zoom search.
type RefineResult struct {
	// Optimal is the best design found.
	Optimal Outcome
	// Evaluations is the total number of designs evaluated.
	Evaluations int
	// Rounds records the incumbent total (grams CO2) after each round,
	// starting with the coarse pass — useful for convergence reporting.
	Rounds []float64
}

// RefineSearch runs the coarse Search, then iteratively zooms the grid
// around the incumbent optimum. The strategy restricts which dimensions may
// move, exactly as in Search.
func (in *Inputs) RefineSearch(space Space, strategy Strategy, opts RefineOptions) (RefineResult, error) {
	//carbonlint:allow ctxflow documented non-cancellable wrapper; callers with a ctx use RefineSearchContext
	return in.RefineSearchContext(context.Background(), space, strategy, opts)
}

// RefineSearchContext is RefineSearch with cancellation: ctx is honoured by
// every underlying sweep, so a zoom search interrupted mid-round returns
// promptly with ctx's error rather than finishing all remaining rounds.
func (in *Inputs) RefineSearchContext(ctx context.Context, space Space, strategy Strategy, opts RefineOptions) (RefineResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return RefineResult{}, err
	}

	res, err := in.SearchContext(ctx, space, strategy)
	if err != nil {
		return RefineResult{}, err
	}
	out := RefineResult{
		Optimal:     res.Optimal,
		Evaluations: len(res.Points),
		Rounds:      []float64{float64(res.Optimal.Total())},
	}

	// Bracket half-widths start at the coarse grid's spacing.
	windHW := spacing(space.WindMW)
	solarHW := spacing(space.SolarMW)
	batteryHW := spacing(space.BatteryHours) * in.AvgDemandMW()
	extraHW := spacing(space.ExtraCapacityFracs)

	avg := in.AvgDemandMW()
	for round := 0; round < opts.Rounds; round++ {
		best := out.Optimal.Design
		zoom := Space{
			WindMW:             bracket(best.WindMW, windHW, opts.PointsPerDim),
			SolarMW:            bracket(best.SolarMW, solarHW, opts.PointsPerDim),
			BatteryHours:       scaleDown(bracket(best.BatteryMWh, batteryHW, opts.PointsPerDim), avg),
			ExtraCapacityFracs: bracket(best.ExtraCapacityFrac, extraHW, opts.PointsPerDim),
			DoD:                space.DoD,
			FlexibleRatio:      space.FlexibleRatio,
		}
		res, err := in.SearchContext(ctx, zoom, strategy)
		if err != nil {
			return RefineResult{}, err
		}
		out.Evaluations += len(res.Points)
		if better(res.Optimal, out.Optimal) {
			out.Optimal = res.Optimal
		}
		out.Rounds = append(out.Rounds, float64(out.Optimal.Total()))

		windHW *= opts.Shrink
		solarHW *= opts.Shrink
		batteryHW *= opts.Shrink
		extraHW *= opts.Shrink
	}
	return out, nil
}

// spacing returns a representative spacing of a sorted-or-not grid: the
// range divided by the interval count, or 0 for degenerate grids (which
// pins the dimension).
func spacing(grid []float64) float64 {
	if len(grid) < 2 {
		return 0
	}
	lo, hi := grid[0], grid[0]
	for _, v := range grid[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		return 0
	}
	return (hi - lo) / float64(len(grid)-1)
}

// bracket builds a grid of n points spanning [center−hw, center+hw],
// clamped at zero. A zero half-width pins the dimension to its center.
func bracket(center, hw float64, n int) []float64 {
	if hw <= 0 {
		return []float64{center}
	}
	lo := center - hw
	if lo < 0 {
		lo = 0
	}
	hi := center + hw
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := lo + (hi-lo)*float64(i)/float64(n-1)
		out = append(out, v)
	}
	return dedupeFloats(out)
}

func scaleDown(vals []float64, by float64) []float64 {
	if by <= 0 {
		return []float64{0}
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v / by
	}
	return out
}

func dedupeFloats(vals []float64) []float64 {
	out := vals[:0]
	for _, v := range vals {
		dup := false
		for _, u := range out {
			if math.Abs(u-v) < 1e-12 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

// CoordinateDescent optimizes one dimension at a time by golden-section
// search over a continuous interval, holding the others fixed — an
// alternative to grid refinement that suits smooth objectives. It starts
// from the given design and cycles through the strategy's free dimensions
// until a full cycle improves the total by less than tol (relative) or
// maxCycles is reached.
func (in *Inputs) CoordinateDescent(start Design, strategy Strategy, maxTotalMW float64, maxCycles int, tol float64) (RefineResult, error) {
	if maxCycles <= 0 {
		maxCycles = 4
	}
	if tol <= 0 {
		tol = 1e-3
	}
	if maxTotalMW <= 0 {
		return RefineResult{}, fmt.Errorf("explorer: coordinate descent needs a positive investment bound")
	}

	cur := start
	if !strategy.UsesBattery() {
		cur.BatteryMWh, cur.DoD = 0, 0
	}
	if !strategy.UsesCAS() {
		cur.FlexibleRatio, cur.ExtraCapacityFrac = 0, 0
	}
	best, err := in.Evaluate(cur)
	if err != nil {
		return RefineResult{}, err
	}
	out := RefineResult{Optimal: best, Evaluations: 1, Rounds: []float64{float64(best.Total())}}

	type dim struct {
		get func(Design) float64
		set func(*Design, float64)
		hi  float64
		on  bool
	}
	avg := in.AvgDemandMW()
	dims := []dim{
		{func(d Design) float64 { return d.WindMW }, func(d *Design, v float64) { d.WindMW = v }, maxTotalMW, true},
		{func(d Design) float64 { return d.SolarMW }, func(d *Design, v float64) { d.SolarMW = v }, maxTotalMW, true},
		{func(d Design) float64 { return d.BatteryMWh }, func(d *Design, v float64) {
			d.BatteryMWh = v
			if v > 0 && d.DoD == 0 {
				d.DoD = 1
			}
			if v == 0 {
				d.DoD = 0
			}
		}, 24 * avg, strategy.UsesBattery()},
		{func(d Design) float64 { return d.ExtraCapacityFrac }, func(d *Design, v float64) { d.ExtraCapacityFrac = v }, 2, strategy.UsesCAS()},
	}

	for cycle := 0; cycle < maxCycles; cycle++ {
		startTotal := float64(out.Optimal.Total())
		for _, dm := range dims {
			if !dm.on {
				continue
			}
			lo, hi := 0.0, dm.hi
			// Golden-section search on this dimension.
			const phi = 0.6180339887498949
			a, b := lo, hi
			x1 := b - phi*(b-a)
			x2 := a + phi*(b-a)
			f := func(v float64) (Outcome, error) {
				d := out.Optimal.Design
				dm.set(&d, v)
				o, err := in.Evaluate(d)
				out.Evaluations++
				return o, err
			}
			o1, err := f(x1)
			if err != nil {
				return RefineResult{}, err
			}
			o2, err := f(x2)
			if err != nil {
				return RefineResult{}, err
			}
			for i := 0; i < 18 && b-a > 1e-3*(dm.hi+1); i++ {
				if o1.Total() <= o2.Total() {
					b, x2, o2 = x2, x1, o1
					x1 = b - phi*(b-a)
					o1, err = f(x1)
				} else {
					a, x1, o1 = x1, x2, o2
					x2 = a + phi*(b-a)
					o2, err = f(x2)
				}
				if err != nil {
					return RefineResult{}, err
				}
			}
			cand := o1
			if o2.Total() < o1.Total() {
				cand = o2
			}
			if better(cand, out.Optimal) {
				out.Optimal = cand
			}
		}
		out.Rounds = append(out.Rounds, float64(out.Optimal.Total()))
		if startTotal > 0 && (startTotal-float64(out.Optimal.Total()))/startTotal < tol {
			break
		}
	}
	return out, nil
}
