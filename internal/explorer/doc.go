// Package explorer is Carbon Explorer's core: it evaluates datacenter
// designs — combinations of renewable-energy investment, battery capacity,
// and extra server capacity for carbon-aware scheduling — against hourly
// supply and demand data, accounts for operational and embodied carbon, and
// searches the design space for the carbon-optimal configuration (the
// pipeline of the paper's Figures 2 and 13).
//
// Evaluate scores one Design (Section 5.2's per-point evaluation: coverage,
// operational carbon, and the Section 5.1 embodied-carbon charges). Search
// exhaustively sweeps a Space under one of the four Strategies and
// materializes every Outcome — the computation behind Figures 14 and 15.
// Search is fault-tolerant: a failing or panicking design is contained
// (EvaluateSafe), excluded from the optimum, and reported in SearchReport.
//
// For dense grids and long-running sweeps, internal/sweep provides a
// streaming counterpart built on the same evaluation: bounded memory via
// batch folding into a running optimum and ParetoSet, checkpoint/resume,
// and a retry pass for transient failures.
package explorer
