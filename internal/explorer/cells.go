package explorer

import (
	"fmt"
	"sort"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/units"
)

// The adaptive sweep refines the design space along four continuous axes.
// Axis order is part of the on-disk adaptive checkpoint format (cell indices
// are stored as fixed-length arrays): never reorder these.
const (
	AxisWind    = 0
	AxisSolar   = 1
	AxisBattery = 2 // capacity in MWh (Space.BatteryHours × average demand)
	AxisExtra   = 3 // extra server capacity fraction
	NumAxes     = 4
)

// Cell identifies one hyper-rectangle of the refinement lattice at a given
// depth: along each free axis the cell spans lattice points Idx[a] and
// Idx[a]+1 of that depth's dyadic grid. Pinned axes always carry index 0.
type Cell struct {
	// Idx is the cell's lower-corner lattice index per axis.
	Idx [NumAxes]int
}

// CellGrid is the continuous bounding box of a Space together with the
// coarse lattice resolution. Depth-d lattice coordinates are dyadic
// subdivisions of the coarse grid:
//
//	coord(a, k, d) = Lo[a] + (Hi[a]-Lo[a]) · k / ((Coarse-1)·2^d)
//
// Because the denominator only ever doubles, a point that exists at depth d
// has bit-identical coordinates at every deeper depth (its index doubles
// with the denominator), which is what makes re-evaluation skipping and
// cross-round deduplication exact.
type CellGrid struct {
	// Lo and Hi bound each axis (equal when the axis is pinned).
	Lo [NumAxes]float64
	Hi [NumAxes]float64
	// Free marks axes with a non-degenerate range; pinned axes contribute
	// a single fixed coordinate and are never subdivided.
	Free [NumAxes]bool
	// Coarse is the number of depth-0 lattice points per free axis (≥ 2).
	Coarse int
	// DoD and FlexibleRatio carry the scalar design knobs of the Space.
	DoD           float64
	FlexibleRatio float64
}

// NewCellGrid derives the refinement bounding box from a Space: each axis
// spans the min–max of the Space's candidate grid for it (battery hours are
// converted to MWh via the site's average demand), with dimensions unused by
// the strategy pinned to zero exactly as Space.Enumerate pins them. coarse
// is the number of depth-0 lattice points per free axis and must be at
// least 2.
func NewCellGrid(space Space, strategy Strategy, avgDemandMW float64, coarse int) (CellGrid, error) {
	if coarse < 2 {
		return CellGrid{}, fmt.Errorf("explorer: coarse lattice needs at least 2 points per dimension, got %d", coarse)
	}
	s := space.restrict(strategy)
	axes := [NumAxes][]float64{
		AxisWind:    s.WindMW,
		AxisSolar:   s.SolarMW,
		AxisBattery: scaleAll(s.BatteryHours, avgDemandMW),
		AxisExtra:   s.ExtraCapacityFracs,
	}
	names := [NumAxes]string{"wind", "solar", "battery", "extra capacity"}
	g := CellGrid{Coarse: coarse, DoD: s.DoD, FlexibleRatio: s.FlexibleRatio}
	for a, vals := range axes {
		if len(vals) == 0 {
			return CellGrid{}, fmt.Errorf("explorer: space has no %s candidates", names[a])
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		g.Lo[a], g.Hi[a] = lo, hi
		g.Free[a] = hi > lo
	}
	// Mirror Space.designs normalization: without flexible workload, extra
	// server capacity is meaningless and every design pins it to zero.
	if g.FlexibleRatio == 0 {
		g.Lo[AxisExtra], g.Hi[AxisExtra], g.Free[AxisExtra] = 0, 0, false
	}
	return g, nil
}

func scaleAll(vs []float64, k float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v * k
	}
	return out
}

// PointsPerAxis returns the number of lattice points per free axis at the
// given depth: (Coarse-1)·2^depth + 1.
func (g CellGrid) PointsPerAxis(depth int) int {
	return (g.Coarse-1)<<uint(depth) + 1
}

// Coord maps a lattice index at the given depth to the axis coordinate.
// Pinned axes return their fixed value for any index.
func (g CellGrid) Coord(axis, k, depth int) float64 {
	den := (g.Coarse - 1) << uint(depth)
	return g.Lo[axis] + (g.Hi[axis]-g.Lo[axis])*float64(k)/float64(den)
}

// CoarseCells returns every depth-0 cell in lexicographic index order.
func (g CellGrid) CoarseCells() []Cell {
	counts := [NumAxes]int{}
	total := 1
	for a := 0; a < NumAxes; a++ {
		counts[a] = 1
		if g.Free[a] {
			counts[a] = g.Coarse - 1
		}
		total *= counts[a]
	}
	cells := make([]Cell, 0, total)
	var c Cell
	var rec func(axis int)
	rec = func(axis int) {
		if axis == NumAxes {
			cells = append(cells, c)
			return
		}
		for i := 0; i < counts[axis]; i++ {
			c.Idx[axis] = i
			rec(axis + 1)
		}
	}
	rec(0)
	return cells
}

// Children returns the cell's subdivision at the next depth: each free axis
// splits in two, pinned axes stay fixed. The order is lexicographic in the
// child indices.
func (g CellGrid) Children(c Cell) []Cell {
	children := []Cell{{}}
	for a := 0; a < NumAxes; a++ {
		if !g.Free[a] {
			for i := range children {
				children[i].Idx[a] = 0
			}
			continue
		}
		next := make([]Cell, 0, len(children)*2)
		for _, ch := range children {
			lo := ch
			lo.Idx[a] = c.Idx[a] * 2
			hi := ch
			hi.Idx[a] = c.Idx[a]*2 + 1
			next = append(next, lo, hi)
		}
		children = next
	}
	// Rebuild lexicographic order: the per-axis doubling above appends in
	// bit-reversed order for multiple free axes.
	sort.Slice(children, func(i, j int) bool {
		return lessIdx(children[i].Idx, children[j].Idx)
	})
	return children
}

// SubdivideAll subdivides every cell and returns the union of the children
// in global lexicographic order (children of lex-ordered parents interleave,
// so per-parent order alone is not enough).
func (g CellGrid) SubdivideAll(cells []Cell) []Cell {
	out := make([]Cell, 0, len(cells)*(1<<uint(NumAxes)))
	for _, c := range cells {
		out = append(out, g.Children(c)...)
	}
	sort.Slice(out, func(i, j int) bool { return lessIdx(out[i].Idx, out[j].Idx) })
	return out
}

func lessIdx(a, b [NumAxes]int) bool {
	for i := 0; i < NumAxes; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// RoundPoints expands a round's cell work-list into the concrete designs to
// evaluate, in deterministic lexicographic lattice order (which coincides
// with ordering by the design fields themselves, since coordinates increase
// with lattice index).
//
// Round 0 evaluates every corner of every coarse cell — the full coarse
// lattice. Later rounds evaluate only corners with at least one odd free-axis
// index: even-index corners sit on the previous depth's lattice and were
// already evaluated (their outcomes are carried by the cumulative frontier),
// so re-evaluating them would only waste work.
func (g CellGrid) RoundPoints(cells []Cell, round int) []Design {
	keys := make([][NumAxes]int, 0, len(cells)*(1<<uint(NumAxes)))
	var key [NumAxes]int
	for _, c := range cells {
		var corners func(axis int)
		corners = func(axis int) {
			if axis == NumAxes {
				if round > 0 && !anyOddFree(key, g.Free) {
					return
				}
				keys = append(keys, key)
				return
			}
			if !g.Free[axis] {
				key[axis] = 0
				corners(axis + 1)
				return
			}
			for off := 0; off <= 1; off++ {
				key[axis] = c.Idx[axis] + off
				corners(axis + 1)
			}
		}
		corners(0)
	}
	// Neighbouring cells share corners: sort and deduplicate. A sorted
	// slice (not a map) keeps the order deterministic and the failure list
	// a sweep writes index-ordered by design fields — exactly the order
	// sweep merging normalizes to.
	sort.Slice(keys, func(i, j int) bool { return lessIdx(keys[i], keys[j]) })
	designs := make([]Design, 0, len(keys))
	var prev [NumAxes]int
	for i, k := range keys {
		if i > 0 && k == prev {
			continue
		}
		prev = k
		designs = append(designs, g.designAt(k, round))
	}
	return designs
}

func anyOddFree(key [NumAxes]int, free [NumAxes]bool) bool {
	for a := 0; a < NumAxes; a++ {
		if free[a] && key[a]%2 == 1 {
			return true
		}
	}
	return false
}

// designAt maps a lattice point to a concrete design, applying the same
// normalization as Space.designs: designs without a battery carry DoD 0,
// and designs without flexible workload carry extra capacity 0 (the grid
// already pins the extra axis in that case).
func (g CellGrid) designAt(key [NumAxes]int, depth int) Design {
	d := Design{
		WindMW:            g.Coord(AxisWind, key[AxisWind], depth),
		SolarMW:           g.Coord(AxisSolar, key[AxisSolar], depth),
		BatteryMWh:        g.Coord(AxisBattery, key[AxisBattery], depth),
		DoD:               g.DoD,
		FlexibleRatio:     g.FlexibleRatio,
		ExtraCapacityFrac: g.Coord(AxisExtra, key[AxisExtra], depth),
	}
	if d.BatteryMWh == 0 {
		d.DoD = 0
	}
	return d
}

// CellModel precomputes the site-level aggregates cell bounds are made of,
// so the per-cell reachability test costs a handful of multiplies — it runs
// once per cell per round on the adaptive driver's fold path.
type CellModel struct {
	// G is the refinement geometry the bounds are computed over.
	G CellGrid
	// WindGenPerMW and SolarGenPerMW are annual generation (MWh) per MW of
	// investment under the paper's linear-scaling rule (zero for a site
	// whose shape has no positive samples).
	WindGenPerMW  float64
	SolarGenPerMW float64
	// DemandMWh is the site's total annual demand; PeakMW its peak.
	DemandMWh float64
	PeakMW    float64
	// MinCI is the grid's minimum hourly carbon intensity — the cheapest
	// any drawn MWh can possibly be priced.
	MinCI float64
	// Embodied holds the manufacturing-footprint assumptions.
	Embodied carbon.EmbodiedParams
}

// NewCellModel derives the bound model from evaluation inputs.
func NewCellModel(in *Inputs, g CellGrid) CellModel {
	m := CellModel{
		G:         g,
		DemandMWh: in.Demand.Sum(),
		PeakMW:    in.Demand.MaxValue(),
		MinCI:     in.GridCI.MinValue(),
		Embodied:  in.Embodied,
	}
	if wm := in.windShapeMax(); wm > 0 {
		m.WindGenPerMW = in.WindShape.Sum() / wm
	}
	if sm := in.solarShapeMax(); sm > 0 {
		m.SolarGenPerMW = in.SolarShape.Sum() / sm
	}
	return m
}

// Bounds returns lower bounds on the operational and embodied carbon of any
// design inside the cell at the given depth.
//
// The operational bound is an energy argument: over a year the grid must
// supply at least total demand minus everything the cell's largest
// renewable investment can generate minus one battery capacity (covering
// the free energy of an initially charged battery; scheduling only shifts
// demand in time), and no drawn MWh is priced below the grid's minimum
// hourly carbon intensity. The embodied bound evaluates the cell's low
// corner exactly, using the battery's calendar-life cap (cycling only
// shortens life and raises the annualized charge).
//
// Both bounds are deliberately loose — the operational bound prices energy
// at minimum instead of hourly intensity — so they are used only to discard
// cells, never to rank them; a pruned cell provably cannot beat the frontier
// it was tested against by more than the caller's slack.
//
//carbonlint:hotpath
func (m *CellModel) Bounds(c Cell, depth int) (opLB, emLB float64) {
	var lo, hi [NumAxes]float64
	for a := 0; a < NumAxes; a++ {
		lo[a] = m.G.Coord(a, c.Idx[a], depth)
		if m.G.Free[a] {
			hi[a] = m.G.Coord(a, c.Idx[a]+1, depth)
		} else {
			hi[a] = lo[a]
		}
	}

	deficit := m.DemandMWh - hi[AxisWind]*m.WindGenPerMW - hi[AxisSolar]*m.SolarGenPerMW - hi[AxisBattery]
	if deficit > 0 {
		opLB = deficit * 1000 * m.MinCI // MWh → kWh at gCO2/kWh
	}

	windGen := lo[AxisWind] * m.WindGenPerMW
	solarGen := lo[AxisSolar] * m.SolarGenPerMW
	emLB = float64(m.Embodied.RenewableEmbodied(units.MegaWattHours(windGen), units.MegaWattHours(solarGen)))
	if cb := lo[AxisBattery]; cb > 0 {
		// cyclesPerDay 0 → calendar-life cap, the longest possible life and
		// therefore the smallest annual charge. This path never consults
		// cycle life, so it is safe even for DoD 0.
		emLB += float64(m.Embodied.BatteryEmbodiedAnnual(units.MegaWattHours(cb), m.G.DoD, 0))
	}
	if le := lo[AxisExtra]; m.G.FlexibleRatio > 0 && le > 0 {
		emLB += float64(m.Embodied.ServerEmbodiedAnnual(units.MegaWatts(le * m.PeakMW)))
	}
	return opLB, emLB
}

// Reachable reports whether a cell with the given carbon lower bounds could
// still contribute to the Pareto frontier: it returns false exactly when
// some frontier point is within slack of dominating the cell's best
// possible corner in both coordinates. Slacks are absolute (in grams CO2);
// callers derive them from a relative tolerance against the frontier's
// extent. It runs once per cell per round on the adaptive fold path.
//
//carbonlint:hotpath
func Reachable(opLB, emLB float64, frontier []Outcome, opSlack, emSlack float64) bool {
	for _, q := range frontier {
		if float64(q.Operational) <= opLB+opSlack && float64(q.Embodied) <= emLB+emSlack {
			return false
		}
	}
	return true
}
