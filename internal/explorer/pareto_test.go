package explorer

import (
	"testing"

	"carbonexplorer/internal/units"
)

func outcomeOpEmb(op, emb float64) Outcome {
	return Outcome{Operational: units.GramsCO2(op), Embodied: units.GramsCO2(emb)}
}

// TestParetoSetMatchesBatchFrontier: folding points one at a time through
// ParetoSet must yield the same frontier as the batch ParetoFrontier, for
// every permutation-ish of a deterministic pseudo-random point cloud. This
// is the correctness contract the streaming sweep engine relies on.
func TestParetoSetMatchesBatchFrontier(t *testing.T) {
	// A small deterministic cloud with duplicates, dominated points, and
	// ties along both axes.
	var pts []Outcome
	state := uint64(42)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>40) / float64(1<<24) * 100
	}
	for i := 0; i < 200; i++ {
		pts = append(pts, outcomeOpEmb(next(), next()))
	}
	// Exact duplicates and axis ties.
	pts = append(pts, outcomeOpEmb(1, 1), outcomeOpEmb(1, 1), outcomeOpEmb(1, 2), outcomeOpEmb(2, 1))

	var ps ParetoSet
	for _, p := range pts {
		ps.Add(p)
	}
	streamed := ps.Frontier()
	batch := ParetoFrontier(pts)

	if len(streamed) != len(batch) {
		t.Fatalf("streamed frontier has %d points, batch has %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i].Operational != batch[i].Operational || streamed[i].Embodied != batch[i].Embodied {
			t.Fatalf("frontier point %d differs: streamed (%v, %v) vs batch (%v, %v)",
				i, streamed[i].Operational, streamed[i].Embodied, batch[i].Operational, batch[i].Embodied)
		}
	}
	// Every frontier member is genuinely non-dominated.
	for _, f := range streamed {
		for _, p := range pts {
			if p.Operational <= f.Operational && p.Embodied <= f.Embodied &&
				(p.Operational < f.Operational || p.Embodied < f.Embodied) {
				t.Fatalf("frontier point (%v, %v) dominated by (%v, %v)",
					f.Operational, f.Embodied, p.Operational, p.Embodied)
			}
		}
	}
}

// TestMergeFrontiersAssociative: for any partition of a point cloud into
// contiguous chunks, merging the per-chunk frontiers must reproduce the
// frontier of the whole cloud exactly — the algebraic fact that lets the
// sharded sweep engine fold shard checkpoints in any grouping.
func TestMergeFrontiersAssociative(t *testing.T) {
	var pts []Outcome
	state := uint64(7)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>40) / float64(1<<24) * 100
	}
	for i := 0; i < 300; i++ {
		pts = append(pts, outcomeOpEmb(next(), next()))
	}
	pts = append(pts, outcomeOpEmb(1, 1), outcomeOpEmb(1, 1), outcomeOpEmb(0.5, 3), outcomeOpEmb(3, 0.5))
	want := ParetoFrontier(pts)

	for _, chunks := range [][]int{{len(pts)}, {50, len(pts) - 50}, {1, 100, len(pts) - 101}, {101, 101, 101, 1}} {
		var frontiers [][]Outcome
		start := 0
		for _, c := range chunks {
			frontiers = append(frontiers, ParetoFrontier(pts[start:start+c]))
			start += c
		}
		if start != len(pts) {
			t.Fatalf("bad partition %v", chunks)
		}
		// Merge left-to-right, and also as a merge of pre-merged halves,
		// to exercise associativity rather than one fold order.
		merged := MergeFrontiers(frontiers...)
		if len(frontiers) > 2 {
			half := len(frontiers) / 2
			a := MergeFrontiers(frontiers[:half]...)
			b := MergeFrontiers(frontiers[half:]...)
			regrouped := MergeFrontiers(a, b)
			if len(regrouped) != len(merged) {
				t.Fatalf("partition %v: regrouped merge has %d points, flat merge %d", chunks, len(regrouped), len(merged))
			}
		}
		if len(merged) != len(want) {
			t.Fatalf("partition %v: merged frontier has %d points, whole-cloud frontier %d", chunks, len(merged), len(want))
		}
		for i := range want {
			if merged[i].Operational != want[i].Operational || merged[i].Embodied != want[i].Embodied {
				t.Fatalf("partition %v: frontier point %d differs: (%v, %v) vs (%v, %v)", chunks, i,
					merged[i].Operational, merged[i].Embodied, want[i].Operational, want[i].Embodied)
			}
		}
	}
}

// TestParetoSetBounded: the set never holds dominated points, so its size is
// the frontier size, not the fold count.
func TestParetoSetBounded(t *testing.T) {
	var ps ParetoSet
	// A chain where every new point dominates the previous one: size stays 1.
	for i := 0; i < 1000; i++ {
		ps.Add(outcomeOpEmb(float64(1000-i), float64(1000-i)))
	}
	if ps.Len() != 1 {
		t.Fatalf("dominating chain should collapse to 1 point, got %d", ps.Len())
	}
	// A true frontier staircase: all points kept.
	var ps2 ParetoSet
	for i := 0; i < 100; i++ {
		ps2.Add(outcomeOpEmb(float64(i), float64(100-i)))
	}
	if ps2.Len() != 100 {
		t.Fatalf("staircase of 100 should all be on the frontier, got %d", ps2.Len())
	}
}

// TestEnumerateDeterministic: the design list a checkpoint indexes against
// must be identical across calls and strategy-restricted.
func TestEnumerateDeterministic(t *testing.T) {
	space := Space{
		WindMW:             []float64{0, 10, 20},
		SolarMW:            []float64{0, 15},
		BatteryHours:       []float64{0, 2},
		ExtraCapacityFracs: []float64{0, 0.25},
		DoD:                1.0,
		FlexibleRatio:      0.4,
	}
	a := space.Enumerate(RenewablesBatteryCAS, 10)
	b := space.Enumerate(RenewablesBatteryCAS, 10)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("enumeration not stable: %d vs %d designs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("design %d differs between enumerations: %+v vs %+v", i, a[i], b[i])
		}
	}
	// RenewablesOnly pins battery and CAS dimensions to zero.
	for _, d := range space.Enumerate(RenewablesOnly, 10) {
		if d.BatteryMWh != 0 || d.FlexibleRatio != 0 || d.ExtraCapacityFrac != 0 {
			t.Fatalf("RenewablesOnly enumeration leaked a free dimension: %+v", d)
		}
	}
}
