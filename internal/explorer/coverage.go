package explorer

import (
	"fmt"

	"carbonexplorer/internal/timeseries"
)

// Coverage computes the paper's renewable-coverage metric for a demand and
// supply pair:
//
//	coverage = (1 − Σ_h max(P_DC(h) − P_Ren(h), 0) / Σ_h P_DC(h)) × 100
//
// i.e. the percentage of datacenter energy covered hourly by renewable
// energy. It returns a value in [0, 100]; zero demand yields 100 (nothing to
// cover).
func Coverage(demand, renewable timeseries.Series) (float64, error) {
	if demand.Len() != renewable.Len() {
		return 0, fmt.Errorf("explorer: demand length %d != renewable length %d", demand.Len(), renewable.Len())
	}
	total := demand.Sum()
	if total <= 0 {
		return 100, nil
	}
	deficit, err := demand.Sub(renewable)
	if err != nil {
		return 0, err
	}
	uncovered := deficit.PositivePart().Sum()
	return (1 - uncovered/total) * 100, nil
}

// CoverageFromGridDraw computes coverage given the energy actually drawn
// from the grid after batteries and scheduling: the fraction of demand NOT
// served by carbon-free sources.
func CoverageFromGridDraw(gridDrawMWh, demandMWh float64) float64 {
	if demandMWh <= 0 {
		return 100
	}
	c := (1 - gridDrawMWh/demandMWh) * 100
	if c < 0 {
		return 0
	}
	if c > 100 {
		return 100
	}
	return c
}
