package explorer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

// robustInputs builds small inputs for fast search tests.
func robustInputs(t *testing.T) *Inputs {
	t.Helper()
	const n = 240
	demand := timeseries.Generate(n, func(h int) float64 { return 10 + 2*math.Sin(float64(h%24)/24*2*math.Pi) })
	wind := timeseries.Generate(n, func(h int) float64 { return 5 + 4*math.Sin(float64(h)/17) })
	solar := timeseries.Generate(n, func(h int) float64 { return math.Max(0, 8*math.Sin((float64(h%24)-6)/12*math.Pi)) })
	ci := timeseries.Constant(n, 400)
	in, err := NewInputsFromSeries(grid.MustSite("UT"), demand, wind, solar, ci, carbon.DefaultEmbodiedParams())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func robustSpace(in *Inputs) Space {
	avg := in.AvgDemandMW()
	return Space{
		WindMW:       []float64{0, avg, 2 * avg},
		SolarMW:      []float64{0, avg, 2 * avg},
		BatteryHours: []float64{0, 2},
		DoD:          1.0,
	}
}

func TestSearchReportCleanSweep(t *testing.T) {
	in := robustInputs(t)
	res, err := in.Search(robustSpace(in), RenewablesBattery)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if res.Report.Evaluated != len(res.Points) {
		t.Fatalf("Evaluated %d != Points %d", res.Report.Evaluated, len(res.Points))
	}
	if len(res.Report.Failures) != 0 || res.Report.Skipped != 0 {
		t.Fatalf("clean sweep reported faults: %+v", res.Report)
	}
}

func TestSearchPartialFailureKeepsOptimum(t *testing.T) {
	in := robustInputs(t)
	space := robustSpace(in)
	clean, err := in.Search(space, RenewablesBattery)
	if err != nil {
		t.Fatal(err)
	}

	// Fail every design except the clean optimum's: the sweep must still
	// find it.
	want := clean.Optimal.Design
	in.EvalHook = func(d Design) error {
		if d != want {
			return fmt.Errorf("forced failure")
		}
		return nil
	}
	res, err := in.Search(space, RenewablesBattery)
	if err != nil {
		t.Fatalf("sweep with one survivor errored: %v", err)
	}
	if res.Report.Evaluated != 1 || res.Optimal.Design != want {
		t.Fatalf("survivor not found: %+v", res.Report)
	}
	for _, f := range res.Report.Failures {
		if f.Design == want {
			t.Fatal("optimum recorded as failure")
		}
		if f.Err == nil {
			t.Fatal("failure with nil error")
		}
	}
}

func TestSearchContextDeadline(t *testing.T) {
	in := robustInputs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := in.SearchContext(ctx, robustSpace(in), RenewablesBattery)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Report.Skipped == 0 {
		t.Fatal("cancelled sweep skipped nothing")
	}
}

func TestPanicErrorMessage(t *testing.T) {
	in := robustInputs(t)
	in.EvalHook = func(Design) error { panic("boom") }
	_, err := in.Search(robustSpace(in), RenewablesOnly)
	if !errors.Is(err, ErrAllDesignsFailed) {
		t.Fatalf("want ErrAllDesignsFailed, got %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" {
		t.Fatalf("panic value lost: %v", err)
	}
}

func TestBisectionContextCancellation(t *testing.T) {
	in := robustInputs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := in.InvestmentForCoverageContext(ctx, 95, 0.5, 1e5); !errors.Is(err, context.Canceled) {
		t.Fatalf("InvestmentForCoverageContext: want Canceled, got %v", err)
	}
	if _, _, err := in.MinBatteryHoursFor247Context(ctx, 100, 100, 50, 24); !errors.Is(err, context.Canceled) {
		t.Fatalf("MinBatteryHoursFor247Context: want Canceled, got %v", err)
	}
	if _, _, err := in.MinExtraCapacityFor247Context(ctx, 100, 100, 0.4, 50, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("MinExtraCapacityFor247Context: want Canceled, got %v", err)
	}
}

func TestEnsembleEvaluateContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EnsembleEvaluateContext(ctx, grid.MustSite("IA"), Design{WindMW: 100}, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestNewInputsFromSeriesRejectsInvalid(t *testing.T) {
	n := 48
	demand := timeseries.Constant(n, 10)
	wind := timeseries.Constant(n, 5)
	solar := timeseries.Constant(n, 5)
	ci := timeseries.Constant(n, 300)
	emb := carbon.DefaultEmbodiedParams()
	site := grid.MustSite("UT")

	badCI := ci.Clone()
	badCI.Set(7, math.NaN())
	_, err := NewInputsFromSeries(site, demand, wind, solar, badCI, emb)
	var ve *timeseries.ValueError
	if !errors.As(err, &ve) || ve.Index != 7 {
		t.Fatalf("want *ValueError at 7, got %v", err)
	}

	negDemand := demand.Clone()
	negDemand.Set(3, -1)
	if _, err := NewInputsFromSeries(site, negDemand, wind, solar, ci, emb); err == nil {
		t.Fatal("negative demand accepted")
	}

	// Repair option accepts and fixes the same data.
	in, err := NewInputsFromSeries(site, negDemand, wind, solar, badCI, emb,
		WithSeriesRepair(timeseries.DefaultRepairPolicy()))
	if err != nil {
		t.Fatalf("tolerant construction failed: %v", err)
	}
	if in.Demand.At(3) != 0 {
		t.Fatalf("negative demand not clamped: %v", in.Demand.At(3))
	}
	if math.IsNaN(in.GridCI.At(7)) {
		t.Fatal("NaN grid CI not repaired")
	}
}

func TestDesignValidateNonFinite(t *testing.T) {
	for _, d := range []Design{
		{WindMW: math.NaN()},
		{SolarMW: math.Inf(-1)},
		{BatteryMWh: math.Inf(1), DoD: 1},
		{DoD: math.NaN()},
		{ExtraCapacityFrac: math.NaN()},
	} {
		if err := d.Validate(); err == nil {
			t.Fatalf("non-finite design accepted: %+v", d)
		}
	}
	if err := (Design{WindMW: 10}).Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}
}
