package explorer

import (
	"context"
	"fmt"
	"sort"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/dcload"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

// The paper evaluates on one year of data (2020). An ensemble evaluation
// asks how a design performs across many plausible weather years of the
// same climate — the design-under-uncertainty view.

// EnsembleResult summarizes a design's performance distribution across
// weather years.
type EnsembleResult struct {
	// Outcomes are the per-year evaluations, base year first.
	Outcomes []Outcome
	// CoverageP10, CoverageP50, CoverageP90 are coverage percentiles
	// across years (P10 = a bad year).
	CoverageP10, CoverageP50, CoverageP90 float64
	// TotalP10, TotalP50, TotalP90 are total-carbon percentiles in
	// kilotonnes (P90 = a bad year).
	TotalP10, TotalP50, TotalP90 float64
}

// EnsembleEvaluate evaluates the design for a site across `years` weather
// realizations (the site's base seed plus years−1 perturbed seeds) and
// returns the outcome distribution. years must be at least 2.
func EnsembleEvaluate(site grid.Site, d Design, years int) (EnsembleResult, error) {
	//carbonlint:allow ctxflow documented non-cancellable wrapper; callers with a ctx use EnsembleEvaluateContext
	return EnsembleEvaluateContext(context.Background(), site, d, years)
}

// EnsembleEvaluateContext is EnsembleEvaluate with cancellation: ctx is
// checked between weather years (each year simulates 8760 hours).
func EnsembleEvaluateContext(ctx context.Context, site grid.Site, d Design, years int) (EnsembleResult, error) {
	if years < 2 {
		return EnsembleResult{}, fmt.Errorf("explorer: ensemble needs at least 2 years")
	}
	if err := d.Validate(); err != nil {
		return EnsembleResult{}, err
	}
	var res EnsembleResult
	var coverages, totals []float64
	for y := 0; y < years; y++ {
		if err := ctx.Err(); err != nil {
			return EnsembleResult{}, err
		}
		in, err := ensembleInputs(site, uint64(y))
		if err != nil {
			return EnsembleResult{}, err
		}
		// EvaluateSafe contains panics to the offending year: an ensemble
		// is often run unattended over many sites, and one hostile weather
		// realization should surface as an error, not kill the process.
		o, err := in.EvaluateSafe(d)
		if err != nil {
			return EnsembleResult{}, fmt.Errorf("explorer: ensemble year %d: %w", y, err)
		}
		res.Outcomes = append(res.Outcomes, o)
		coverages = append(coverages, o.CoveragePct)
		totals = append(totals, o.Total().Kilotonnes())
	}
	res.CoverageP10 = percentile(coverages, 10)
	res.CoverageP50 = percentile(coverages, 50)
	res.CoverageP90 = percentile(coverages, 90)
	res.TotalP10 = percentile(totals, 10)
	res.TotalP50 = percentile(totals, 50)
	res.TotalP90 = percentile(totals, 90)
	return res, nil
}

// ensembleInputs builds inputs for weather-year y (0 = the base year).
func ensembleInputs(site grid.Site, y uint64) (*Inputs, error) {
	profile, err := grid.Profile(site.BA)
	if err != nil {
		return nil, err
	}
	if y > 0 {
		profile.Seed += 1000 * y
		profile.Wind.Seed = profile.Seed*7919 + 1
		profile.Solar.Seed = profile.Seed*7919 + 2
	}
	year := grid.GenerateYear(profile)
	dp := dcload.DefaultParams(site.AvgPowerMW)
	dp.Seed += y
	trace, err := dcload.Generate(dp, timeseries.HoursPerYear)
	if err != nil {
		return nil, err
	}
	return NewInputsFromSeries(site, trace.Power,
		year.WindShape(), year.SolarShape(), year.CarbonIntensity(),
		carbon.DefaultEmbodiedParams())
}

// percentile is a small local order-statistic helper (linear
// interpolation), avoiding a dependency on internal/stats from the core
// package.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
