package explorer

// White-box tests for the Evaluator's performance contracts: the
// steady-state zero-allocation guarantee (gated in CI by the bench-sweep
// job), the renewable-supply memoization, and the reference fallback for
// inputs outside the clean-series guarantee.

import (
	"math"
	"testing"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

func evaluatorInputs(tb testing.TB) *Inputs {
	tb.Helper()
	const n = 240
	demand := timeseries.Generate(n, func(h int) float64 { return 10 + 2*math.Sin(float64(h%24)/24*2*math.Pi) })
	wind := timeseries.Generate(n, func(h int) float64 { return 5 + 4*math.Sin(float64(h)/17) })
	solar := timeseries.Generate(n, func(h int) float64 { return math.Max(0, 8*math.Sin((float64(h%24)-6)/12*math.Pi)) })
	ci := timeseries.Generate(n, func(h int) float64 { return 300 + 150*math.Sin(float64(h)/9) })
	in, err := NewInputsFromSeries(grid.MustSite("UT"), demand, wind, solar, ci, carbon.DefaultEmbodiedParams())
	if err != nil {
		tb.Fatalf("inputs: %v", err)
	}
	return in
}

// TestEvaluateSteadyStateZeroAllocs pins the tentpole guarantee: once an
// evaluator has warmed its buffers, evaluating further designs allocates
// nothing — including the heaviest design shape (battery + carbon-aware
// scheduling + both renewables). CI's bench-sweep job runs exactly this
// test as its zero-alloc gate.
func TestEvaluateSteadyStateZeroAllocs(t *testing.T) {
	in := evaluatorInputs(t)
	avg := in.AvgDemandMW()
	designs := []Design{
		// Renewables only (fast-path scheduler).
		{WindMW: 2 * avg, SolarMW: avg},
		// Battery + CAS: every branch of the general scheduler loop.
		{WindMW: 3 * avg, SolarMW: 2 * avg, BatteryMWh: 4 * avg, DoD: 0.8,
			FlexibleRatio: 0.4, ExtraCapacityFrac: 0.25},
		// Battery only, alternate chemistry.
		{WindMW: avg, SolarMW: 0, BatteryMWh: avg, DoD: 1.0, BatteryTech: battery.NMCCell},
	}
	for i, d := range designs {
		ev := in.NewEvaluator()
		ev.DiscardSoCTrace = true
		if _, err := ev.Evaluate(d); err != nil { // warm buffers + memo
			t.Fatalf("design %d warmup: %v", i, err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := ev.Evaluate(d); err != nil {
				t.Fatalf("design %d: %v", i, err)
			}
		})
		if allocs != 0 {
			t.Fatalf("design %d: steady-state Evaluate allocated %.1f allocs/op, want 0", i, allocs)
		}
	}
}

// TestEvaluatorMemoizesSupply verifies the supply buffer is rebuilt only
// when the renewable axes move: a repeat (wind, solar) pair must leave the
// buffer untouched, and a changed pair must rebuild it.
func TestEvaluatorMemoizesSupply(t *testing.T) {
	in := evaluatorInputs(t)
	ev := in.NewEvaluator()
	if !ev.ensureSupply(20, 10) {
		t.Fatal("ensureSupply(20, 10) = false, want true")
	}
	want := ev.supply[0]
	// Poison the buffer, then ask for the same pair: a memo hit must not
	// touch the buffer, so the poison survives.
	ev.supply[0] = math.Pi
	if !ev.ensureSupply(20, 10) {
		t.Fatal("memo-hit ensureSupply = false, want true")
	}
	if ev.supply[0] != math.Pi {
		t.Fatalf("memo hit rebuilt the supply buffer: supply[0] = %v, want poison %v", ev.supply[0], math.Pi)
	}
	// A different pair must rebuild (clearing the poison).
	if !ev.ensureSupply(25, 10) {
		t.Fatal("ensureSupply(25, 10) = false, want true")
	}
	if ev.supply[0] == math.Pi {
		t.Fatal("changed wind investment did not rebuild the supply buffer")
	}
	// And back to the first pair: rebuilt again, bit-identical to the
	// original build.
	if !ev.ensureSupply(20, 10) {
		t.Fatal("ensureSupply(20, 10) again = false, want true")
	}
	if math.Float64bits(ev.supply[0]) != math.Float64bits(want) {
		t.Fatalf("rebuild not bit-identical: got %v, want %v", ev.supply[0], want)
	}
}

// TestEvaluatorFallback pins the safety net: Inputs that fail the
// construction-time clean-series check (here: a NaN in the wind shape)
// route every evaluation through the reference path and reproduce its exact
// errors, instead of feeding unvalidated series to AssumeValid.
func TestEvaluatorFallback(t *testing.T) {
	const n = 48
	in := &Inputs{
		Demand:     timeseries.Generate(n, func(int) float64 { return 10 }),
		WindShape:  timeseries.Generate(n, func(h int) float64 { return math.NaN() }),
		SolarShape: timeseries.Generate(n, func(int) float64 { return 1 }),
		GridCI:     timeseries.Generate(n, func(int) float64 { return 400 }),
		Embodied:   carbon.DefaultEmbodiedParams(),
	}
	ev := in.NewEvaluator()
	if !ev.fallback {
		t.Fatal("NewEvaluator accepted a NaN wind shape into the optimized path")
	}
	d := Design{WindMW: 20, SolarMW: 5}
	_, wantErr := in.Evaluate(d)
	_, gotErr := ev.Evaluate(d)
	if wantErr == nil || gotErr == nil {
		t.Fatalf("expected both paths to reject NaN shape: ref=%v opt=%v", wantErr, gotErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Fatalf("fallback error diverged from reference:\nref: %v\nopt: %v", wantErr, gotErr)
	}
}

// TestEvaluatorOverflowGuardFallsBack drives the O(1) overflow bound: an
// investment large enough to overflow the scaled supply must be detected
// without a per-sample scan and handed to the reference path, which
// produces the exact reference error.
func TestEvaluatorOverflowGuardFallsBack(t *testing.T) {
	in := evaluatorInputs(t)
	ev := in.NewEvaluator()
	if ev.fallback {
		t.Fatal("clean inputs unexpectedly in fallback mode")
	}
	if ev.ensureSupply(math.MaxFloat64, math.MaxFloat64) {
		t.Fatal("ensureSupply accepted an overflowing investment")
	}
	d := Design{WindMW: math.MaxFloat64, SolarMW: math.MaxFloat64}
	_, wantErr := in.Evaluate(d)
	_, gotErr := ev.Evaluate(d)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("overflow handling diverged: ref=%v opt=%v", wantErr, gotErr)
	}
	if wantErr != nil && wantErr.Error() != gotErr.Error() {
		t.Fatalf("overflow error diverged:\nref: %v\nopt: %v", wantErr, gotErr)
	}
	// The evaluator must still work for sane designs afterwards.
	if _, err := ev.Evaluate(Design{WindMW: 10, SolarMW: 5}); err != nil {
		t.Fatalf("evaluator unusable after overflow fallback: %v", err)
	}
}

// BenchmarkEvaluate measures the per-design cost of the optimized hot path
// in isolation (no sweep machinery), reporting designs/sec. The bench-sweep
// CI job records this alongside BenchmarkSweepDensity in BENCH_sweep.json.
func BenchmarkEvaluate(b *testing.B) {
	in := evaluatorInputs(b)
	avg := in.AvgDemandMW()
	d := Design{WindMW: 3 * avg, SolarMW: 2 * avg, BatteryMWh: 4 * avg, DoD: 0.8,
		FlexibleRatio: 0.4, ExtraCapacityFrac: 0.25}
	ev := in.NewEvaluator()
	ev.DiscardSoCTrace = true
	if _, err := ev.Evaluate(d); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "designs/sec")
}
