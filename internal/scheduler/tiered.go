package scheduler

import (
	"fmt"
	"sort"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/timeseries"
	"carbonexplorer/internal/workload"
)

// TierShare describes one deferrable slice of the datacenter's load.
type TierShare struct {
	// Tier provides the slice's deferral window (its SLO slack).
	Tier workload.Tier
	// Share is the fraction of every hour's load in this tier.
	Share float64
}

// TieredConfig parameterizes the tier-aware simulation: instead of one
// uniform flexible ratio with a single 24-hour window (the paper's
// evaluation setting), each SLO tier defers within its own window — ±1h
// work barely moves, daily work moves a day, no-SLO work moves a week.
type TieredConfig struct {
	// Demand is the datacenter's hourly power in MW.
	Demand timeseries.Series
	// Renewable is the hourly renewable supply in MW.
	Renewable timeseries.Series
	// Battery, when non-nil, absorbs surplus and covers deficits.
	Battery *battery.Battery
	// Tiers are the deferrable slices; shares must sum to at most 1 (the
	// remainder is inflexible). Tier 1's ±1h slack makes it effectively
	// inflexible at hourly resolution.
	Tiers []TierShare
	// CapacityMW caps voluntary load in any hour. Zero means no cap.
	CapacityMW float64
	// DeferrableShareOfFleet scales the tier shares: the tiers describe a
	// class of workloads (e.g. data processing) that is itself only a
	// fraction of the fleet. Zero means 1 (tiers describe the whole fleet).
	DeferrableShareOfFleet float64
}

// DefaultTiers returns the paper's Figure 10 tier distribution as tier
// shares.
func DefaultTiers() []TierShare {
	out := make([]TierShare, 0, workload.NumTiers)
	for _, t := range workload.AllTiers() {
		out = append(out, TierShare{Tier: t, Share: t.Share()})
	}
	return out
}

// Validate reports the first invalid field, or nil.
func (c TieredConfig) Validate() error {
	if c.Demand.Len() == 0 {
		return fmt.Errorf("scheduler: empty demand series")
	}
	if c.Demand.Len() != c.Renewable.Len() {
		return fmt.Errorf("scheduler: demand length %d != renewable length %d", c.Demand.Len(), c.Renewable.Len())
	}
	total := 0.0
	for _, ts := range c.Tiers {
		if ts.Share < 0 {
			return fmt.Errorf("scheduler: negative tier share for %v", ts.Tier)
		}
		total += ts.Share
	}
	if total > 1+1e-9 {
		return fmt.Errorf("scheduler: tier shares sum to %v > 1", total)
	}
	if c.CapacityMW < 0 {
		return fmt.Errorf("scheduler: negative capacity")
	}
	if c.DeferrableShareOfFleet < 0 || c.DeferrableShareOfFleet > 1 {
		return fmt.Errorf("scheduler: deferrable fleet share %v out of [0, 1]", c.DeferrableShareOfFleet)
	}
	return nil
}

// TieredResult extends Result with per-tier deferral accounting.
type TieredResult struct {
	Result
	// DeferredByTier is total energy (MWh) each tier deferred.
	DeferredByTier map[workload.Tier]float64
}

// SimulateTiered runs the combined battery+scheduling policy with per-tier
// deferral windows. On a deficit the battery discharges first; remaining
// deficit defers load starting from the MOST flexible tier (longest slack),
// since it is most likely to find a surplus before its deadline. On a
// surplus, deferred work runs earliest-deadline-first, then the battery
// charges.
func SimulateTiered(cfg TieredConfig) (TieredResult, error) {
	if err := cfg.Validate(); err != nil {
		return TieredResult{}, err
	}
	n := cfg.Demand.Len()
	fleetShare := cfg.DeferrableShareOfFleet
	if fleetShare == 0 {
		fleetShare = 1
	}

	// Order tiers by descending slack so the most flexible defers first.
	tiers := make([]TierShare, len(cfg.Tiers))
	copy(tiers, cfg.Tiers)
	sort.SliceStable(tiers, func(a, b int) bool {
		return tiers[a].Tier.SlackHours() > tiers[b].Tier.SlackHours()
	})

	res := TieredResult{
		Result: Result{
			Balanced:   timeseries.New(n),
			GridDraw:   timeseries.New(n),
			BatterySoC: timeseries.New(n),
			Surplus:    timeseries.New(n),
		},
		DeferredByTier: make(map[workload.Tier]float64, len(tiers)),
	}

	// deferred[d] is energy whose deadline is hour d (across tiers; the
	// tier only determines the deadline at deferral time).
	deferred := make(map[int]float64)

	for h := 0; h < n; h++ {
		load := cfg.Demand.At(h)
		forced := deferred[h]
		delete(deferred, h)
		load += forced

		supply := cfg.Renewable.At(h)
		switch {
		case supply >= load:
			surplus := supply - load
			if surplus > 0 && len(deferred) > 0 {
				room := surplus
				if cfg.CapacityMW > 0 {
					if capRoom := cfg.CapacityMW - load; capRoom < room {
						room = capRoom
					}
				}
				if room > 0 {
					pulled := pullDeferred(deferred, h, n, room)
					load += pulled
					surplus -= pulled
				}
			}
			if cfg.Battery != nil && surplus > 0 {
				surplus -= cfg.Battery.Charge(surplus, 1)
			}
			res.Surplus.Set(h, surplus)

		default:
			deficit := load - supply
			if cfg.Battery != nil && deficit > 0 {
				deficit -= cfg.Battery.Discharge(deficit, 1)
			}
			for _, ts := range tiers {
				if deficit <= 0 {
					break
				}
				slack := ts.Tier.SlackHours()
				if slack < 2 { // sub-window tiers cannot usefully move at hourly resolution
					continue
				}
				deferrable := cfg.Demand.At(h) * ts.Share * fleetShare
				if deferrable > deficit {
					deferrable = deficit
				}
				deadline := h + slack
				if deadline >= n {
					deadline = n - 1
				}
				if deferrable <= 0 || deadline <= h {
					continue
				}
				deferred[deadline] += deferrable
				res.DeferredByTier[ts.Tier] += deferrable
				load -= deferrable
				deficit -= deferrable
			}
			if forced > 0 && deficit > 0 {
				counted := forced
				if counted > deficit {
					counted = deficit
				}
				res.ForcedDeadlineMWh += counted
			}
			res.GridDraw.Set(h, deficit)
		}

		res.Balanced.Set(h, load)
		if cfg.Battery != nil {
			res.BatterySoC.Set(h, cfg.Battery.SoC())
		}
		if load > res.PeakLoadMW {
			res.PeakLoadMW = load
		}
	}
	return res, nil
}
