package scheduler

import (
	"math"
	"testing"
	"testing/quick"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/timeseries"
)

func TestShiftDailyMovesToLowSignal(t *testing.T) {
	// Two hours: hour 0 dirty, hour 1 clean. Half the load is flexible.
	demand := timeseries.FromValues([]float64{10, 10})
	signal := timeseries.FromValues([]float64{100, 1})
	out, err := ShiftDaily(demand, signal, Config{FlexibleRatio: 0.5, WindowHours: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0) != 5 || out.At(1) != 15 {
		t.Fatalf("shift result = %v, want [5 15]", out.Values())
	}
}

func TestShiftDailyConservesEnergy(t *testing.T) {
	demand := timeseries.Generate(72, func(h int) float64 { return 10 + float64(h%24) })
	signal := timeseries.Generate(72, func(h int) float64 { return float64((h * 7) % 24) })
	out, err := ShiftDaily(demand, signal, Config{FlexibleRatio: 0.4, WindowHours: 24})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Sum()-demand.Sum()) > 1e-9 {
		t.Fatalf("energy not conserved: %v -> %v", demand.Sum(), out.Sum())
	}
	// Per-window conservation too.
	for d := 0; d < 3; d++ {
		if math.Abs(out.Day(d).Sum()-demand.Day(d).Sum()) > 1e-9 {
			t.Fatalf("day %d energy not conserved", d)
		}
	}
}

func TestShiftDailyRespectsCapacity(t *testing.T) {
	demand := timeseries.FromValues([]float64{10, 10, 10, 10})
	signal := timeseries.FromValues([]float64{50, 40, 2, 1})
	out, err := ShiftDaily(demand, signal, Config{FlexibleRatio: 1.0, WindowHours: 4, CapacityMW: 12})
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxValue() > 12+1e-9 {
		t.Fatalf("capacity cap violated: %v", out.Values())
	}
	if math.Abs(out.Sum()-40) > 1e-9 {
		t.Fatalf("energy not conserved under cap: %v", out.Values())
	}
}

func TestShiftDailyZeroFlexibleNoOp(t *testing.T) {
	demand := timeseries.FromValues([]float64{5, 7, 9})
	signal := timeseries.FromValues([]float64{3, 2, 1})
	out, err := ShiftDaily(demand, signal, Config{FlexibleRatio: 0, WindowHours: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(demand, 0) {
		t.Fatalf("zero flexible ratio should not move load")
	}
}

func TestShiftDailyFlatSignalNoOp(t *testing.T) {
	demand := timeseries.FromValues([]float64{5, 7, 9})
	signal := timeseries.Constant(3, 42)
	out, err := ShiftDaily(demand, signal, Config{FlexibleRatio: 0.5, WindowHours: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(demand, 0) {
		t.Fatalf("flat signal should not move load (no strictly better hour)")
	}
}

func TestShiftDailyNeverNegative(t *testing.T) {
	demand := timeseries.FromValues([]float64{1, 2, 3, 4})
	signal := timeseries.FromValues([]float64{9, 8, 1, 0})
	out, err := ShiftDaily(demand, signal, Config{FlexibleRatio: 1.0, WindowHours: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.MinValue() < 0 {
		t.Fatalf("negative load after shifting: %v", out.Values())
	}
}

func TestShiftDailyValidation(t *testing.T) {
	d := timeseries.New(4)
	if _, err := ShiftDaily(d, timeseries.New(3), DefaultConfig()); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := ShiftDaily(d, d, Config{FlexibleRatio: 2, WindowHours: 24}); err == nil {
		t.Fatal("bad flexible ratio should error")
	}
	if _, err := ShiftDaily(d, d, Config{FlexibleRatio: 0.4, WindowHours: 0}); err == nil {
		t.Fatal("zero window should error")
	}
	if _, err := ShiftDaily(d, d, Config{FlexibleRatio: 0.4, WindowHours: 24, CapacityMW: -1}); err == nil {
		t.Fatal("negative capacity should error")
	}
}

func TestDeficitSignal(t *testing.T) {
	demand := timeseries.FromValues([]float64{10, 10})
	ren := timeseries.FromValues([]float64{4, 16})
	sig, err := DeficitSignal(demand, ren)
	if err != nil {
		t.Fatal(err)
	}
	if sig.At(0) != 6 || sig.At(1) != -6 {
		t.Fatalf("deficit signal = %v", sig.Values())
	}
}

func TestSimulateNoBatteryNoFlex(t *testing.T) {
	demand := timeseries.Constant(48, 10)
	ren := timeseries.Generate(48, func(h int) float64 {
		if h%2 == 0 {
			return 20
		}
		return 0
	})
	res, err := Simulate(SimConfig{Demand: demand, Renewable: ren})
	if err != nil {
		t.Fatal(err)
	}
	// Odd hours draw 10 MW from grid; even hours have 10 MW surplus.
	if got := res.GridDraw.Sum(); math.Abs(got-240) > 1e-9 {
		t.Fatalf("grid draw = %v, want 240", got)
	}
	if got := res.Surplus.Sum(); math.Abs(got-240) > 1e-9 {
		t.Fatalf("surplus = %v, want 240", got)
	}
	if !res.Balanced.Equal(demand, 0) {
		t.Fatalf("without flexibility the load must not move")
	}
}

func TestSimulateBatteryCoversAlternatingDeficit(t *testing.T) {
	demand := timeseries.Constant(48, 10)
	ren := timeseries.Generate(48, func(h int) float64 {
		if h%2 == 0 {
			return 25
		}
		return 0
	})
	b, err := battery.New(battery.LFP(40, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{Demand: demand, Renewable: ren, Battery: b})
	if err != nil {
		t.Fatal(err)
	}
	// 15 MW surplus alternates with a 10 MW deficit; a 40 MWh battery
	// should virtually eliminate grid draw (first hour is surplus).
	if res.GridDraw.Sum() > 30 {
		t.Fatalf("grid draw with ample battery = %v, want near 0", res.GridDraw.Sum())
	}
}

func TestSimulateFlexShiftsIntoSurplus(t *testing.T) {
	// Day pattern: 12 deficit hours then 12 surplus hours. With 40% flex
	// and no battery, deferred load runs during surplus.
	demand := timeseries.Constant(48, 10)
	ren := timeseries.Generate(48, func(h int) float64 {
		if h%24 < 12 {
			return 0
		}
		return 30
	})
	res, err := Simulate(SimConfig{Demand: demand, Renewable: ren, FlexibleRatio: 0.4, DeferralWindowHours: 24})
	if err != nil {
		t.Fatal(err)
	}
	noFlex, _ := Simulate(SimConfig{Demand: demand, Renewable: ren})
	if res.GridDraw.Sum() >= noFlex.GridDraw.Sum() {
		t.Fatalf("flexibility should reduce grid draw: %v vs %v", res.GridDraw.Sum(), noFlex.GridDraw.Sum())
	}
	// Energy conservation: all deferred work eventually runs.
	if math.Abs(res.Balanced.Sum()-demand.Sum()) > 1e-6 {
		t.Fatalf("energy not conserved: %v -> %v", demand.Sum(), res.Balanced.Sum())
	}
}

func TestSimulateEnergyConservation(t *testing.T) {
	demand := timeseries.Generate(24*14, func(h int) float64 { return 8 + 4*math.Sin(float64(h)/5) })
	ren := timeseries.Generate(24*14, func(h int) float64 { return 12 * math.Abs(math.Sin(float64(h)/7)) })
	b, _ := battery.New(battery.LFP(20, 0.8))
	res, err := Simulate(SimConfig{
		Demand: demand, Renewable: ren, Battery: b,
		FlexibleRatio: 0.4, DeferralWindowHours: 24, CapacityMW: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Balanced.Sum()-demand.Sum()) > 1e-6 {
		t.Fatalf("energy not conserved: demand %v, balanced %v", demand.Sum(), res.Balanced.Sum())
	}
}

func TestSimulateRespectsCapForVoluntaryPulls(t *testing.T) {
	demand := timeseries.Constant(48, 10)
	ren := timeseries.Generate(48, func(h int) float64 {
		if h%24 < 12 {
			return 0
		}
		return 100
	})
	res, err := Simulate(SimConfig{
		Demand: demand, Renewable: ren,
		FlexibleRatio: 1.0, DeferralWindowHours: 24, CapacityMW: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Voluntary (surplus-driven) execution must respect the 14 MW cap.
	// Forced deadline execution may exceed it; the final hour is excluded
	// because work deferred near the horizon is clamped to run there.
	for h := 0; h < 47; h++ {
		if ren.At(h) > demand.At(h) && res.Balanced.At(h) > 14+1e-9 {
			t.Fatalf("hour %d: surplus-hour load %v exceeds cap", h, res.Balanced.At(h))
		}
	}
}

func TestSimulateBatteryPriorityOverShifting(t *testing.T) {
	// Paper: "the energy stored in the battery is used first and workload
	// shifting happens only if the energy stored is not sufficient."
	demand := timeseries.Constant(4, 10)
	ren := timeseries.FromValues([]float64{10, 5, 10, 10}) // single 5 MW deficit at h=1
	b, _ := battery.New(battery.LFP(100, 1.0))             // starts full, easily covers 5 MWh
	res, err := Simulate(SimConfig{Demand: demand, Renewable: ren, Battery: b, FlexibleRatio: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// No load should have moved: battery covered the whole deficit.
	if !res.Balanced.Equal(demand, 1e-9) {
		t.Fatalf("load moved despite sufficient battery: %v", res.Balanced.Values())
	}
	if res.GridDraw.Sum() != 0 {
		t.Fatalf("grid draw = %v, want 0", res.GridDraw.Sum())
	}
}

func TestSimulateValidation(t *testing.T) {
	d := timeseries.New(4)
	if _, err := Simulate(SimConfig{Demand: timeseries.New(0), Renewable: timeseries.New(0)}); err == nil {
		t.Fatal("empty demand should error")
	}
	if _, err := Simulate(SimConfig{Demand: d, Renewable: timeseries.New(3)}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Simulate(SimConfig{Demand: d, Renewable: d, FlexibleRatio: -1}); err == nil {
		t.Fatal("bad flexible ratio should error")
	}
	if _, err := Simulate(SimConfig{Demand: d, Renewable: d, CapacityMW: -1}); err == nil {
		t.Fatal("negative cap should error")
	}
	if _, err := Simulate(SimConfig{Demand: d, Renewable: d, DeferralWindowHours: -1}); err == nil {
		t.Fatal("negative window should error")
	}
}

func TestPropertyShiftConservesEnergyAndBounds(t *testing.T) {
	f := func(rawDemand, rawSignal []uint16, fwrRaw, capRaw uint8) bool {
		n := len(rawDemand)
		if len(rawSignal) < n {
			n = len(rawSignal)
		}
		if n == 0 {
			return true
		}
		dv := make([]float64, n)
		sv := make([]float64, n)
		for i := 0; i < n; i++ {
			dv[i] = float64(rawDemand[i] % 1000)
			sv[i] = float64(rawSignal[i] % 500)
		}
		demand := timeseries.FromValues(dv)
		signal := timeseries.FromValues(sv)
		fwr := float64(fwrRaw%101) / 100
		cfg := Config{FlexibleRatio: fwr, WindowHours: 24}
		if capRaw%2 == 0 {
			cfg.CapacityMW = demand.MaxValue() * 1.5
		}
		out, err := ShiftDaily(demand, signal, cfg)
		if err != nil {
			return false
		}
		if math.Abs(out.Sum()-demand.Sum()) > 1e-6*(1+demand.Sum()) {
			return false
		}
		if out.MinValue() < -1e-9 {
			return false
		}
		if cfg.CapacityMW > 0 && out.MaxValue() > math.Max(cfg.CapacityMW, demand.MaxValue())+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySimulateConservesEnergy(t *testing.T) {
	f := func(seedD, seedR uint8, fwrRaw, withBattery uint8) bool {
		n := 24 * 5
		demand := timeseries.Generate(n, func(h int) float64 {
			return 5 + float64((h*int(seedD+1))%13)
		})
		ren := timeseries.Generate(n, func(h int) float64 {
			return float64((h * int(seedR+1)) % 29)
		})
		cfg := SimConfig{
			Demand: demand, Renewable: ren,
			FlexibleRatio:       float64(fwrRaw%101) / 100,
			DeferralWindowHours: 24,
		}
		if withBattery%2 == 0 {
			b, err := battery.New(battery.LFP(15, 1.0))
			if err != nil {
				return false
			}
			cfg.Battery = b
		}
		res, err := Simulate(cfg)
		if err != nil {
			return false
		}
		return math.Abs(res.Balanced.Sum()-demand.Sum()) < 1e-6*(1+demand.Sum())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
