package scheduler

import (
	"fmt"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/timeseries"
)

// SimConfig parameterizes the hour-by-hour simulation of a datacenter
// operating against a renewable supply with optional battery storage and
// optional carbon-aware workload deferral.
type SimConfig struct {
	// Demand is the datacenter's hourly power draw in MW.
	Demand timeseries.Series
	// Renewable is the hourly renewable supply dedicated to the datacenter
	// in MW.
	Renewable timeseries.Series
	// Battery, when non-nil, absorbs surplus and covers deficits. The
	// simulation mutates its state.
	Battery *battery.Battery
	// FlexibleRatio is the fraction of each hour's demand that may be
	// deferred (0 disables scheduling).
	FlexibleRatio float64
	// CapacityMW is P_DCMAX, the cap on total load in any hour when
	// deferred work is pulled forward. Zero means "no cap".
	CapacityMW float64
	// DeferralWindowHours is how long deferred work may wait before it is
	// forced to run (paper: within the day, 24).
	DeferralWindowHours int
	// AssumeValid skips Validate: the caller guarantees the config would
	// pass it (series finite, non-negative, equal non-zero length; scalars
	// in range). The explorer evaluator sets it after validating its series
	// once per run instead of re-scanning 2×8760 samples per design; leave
	// it false anywhere the inputs are not provably clean.
	AssumeValid bool
}

// Validate reports the first invalid field, or nil. Series must be finite
// and non-negative: one NaN hour would silently poison the year's grid-draw
// totals.
func (c SimConfig) Validate() error {
	if c.Demand.Len() == 0 {
		return fmt.Errorf("scheduler: empty demand series")
	}
	if err := c.Renewable.CheckLength(c.Demand.Len()); err != nil {
		return fmt.Errorf("scheduler: demand vs renewable: %w", err)
	}
	if err := c.Demand.Validate(); err != nil {
		return fmt.Errorf("scheduler: demand: %w", err)
	}
	if err := c.Renewable.Validate(); err != nil {
		return fmt.Errorf("scheduler: renewable: %w", err)
	}
	if c.FlexibleRatio < 0 || c.FlexibleRatio > 1 {
		return fmt.Errorf("scheduler: flexible ratio %v out of [0, 1]", c.FlexibleRatio)
	}
	if c.CapacityMW < 0 {
		return fmt.Errorf("scheduler: negative capacity")
	}
	if c.DeferralWindowHours < 0 {
		return fmt.Errorf("scheduler: negative deferral window")
	}
	return nil
}

// Result captures one simulated year of operation.
type Result struct {
	// Balanced is the realized hourly load in MW after deferral — the
	// paper's "balanced power load".
	Balanced timeseries.Series
	// GridDraw is the hourly power drawn from the (non-renewable) grid in
	// MW after renewables, battery, and scheduling have been applied.
	GridDraw timeseries.Series
	// BatterySoC is the battery state of charge (fraction of usable
	// capacity) at the end of each hour; all zeros when no battery.
	BatterySoC timeseries.Series
	// Surplus is renewable power in MW that could not be used, stored, or
	// absorbed by deferred work.
	Surplus timeseries.Series
	// ForcedDeadlineMWh is deferred energy that hit its deadline during a
	// deficit and had to run on grid power.
	ForcedDeadlineMWh float64
	// PeakLoadMW is the maximum of Balanced, which determines the server
	// capacity the datacenter must provision.
	PeakLoadMW float64
}

// Simulate runs the combined policy of Section 5.2, hour by hour:
//
//   - Deficit hours (renewables < load): battery discharges first; only if
//     the battery cannot cover the gap is flexible load deferred; whatever
//     remains draws from the grid.
//   - Surplus hours (renewables > load): deferred workloads execute first
//     (up to the capacity cap), then the battery charges; leftover supply is
//     counted as surplus.
//
// Deferred work that reaches its deadline is forced to run in that hour
// regardless of supply, honouring its SLO.
//
// Simulate allocates its result traces per call and serves as the reference
// implementation; SimulateScratch is the bit-identical allocation-free form
// used by the sweep hot path.
func Simulate(cfg SimConfig) (Result, error) {
	if !cfg.AssumeValid {
		if err := cfg.Validate(); err != nil {
			return Result{}, err
		}
	}
	n := cfg.Demand.Len()
	window := cfg.DeferralWindowHours
	if window == 0 {
		window = 24
	}

	res := Result{
		Balanced:   timeseries.New(n),
		GridDraw:   timeseries.New(n),
		BatterySoC: timeseries.New(n),
		Surplus:    timeseries.New(n),
	}

	// deferred[d] is energy (MWh) whose deadline is hour d.
	deferred := make(map[int]float64)

	for h := 0; h < n; h++ {
		load := cfg.Demand.At(h)

		// Deadline-expired work must run now.
		forced := deferred[h]
		delete(deferred, h)
		load += forced

		supply := cfg.Renewable.At(h)

		switch {
		case supply >= load:
			surplus := supply - load
			// Pull future deferred work forward into the surplus, earliest
			// deadline first, bounded by the capacity cap.
			if surplus > 0 && len(deferred) > 0 {
				room := surplus
				if cfg.CapacityMW > 0 {
					if capRoom := cfg.CapacityMW - load; capRoom < room {
						room = capRoom
					}
				}
				if room > 0 {
					pulled := pullDeferred(deferred, h, n, room)
					load += pulled
					surplus -= pulled
				}
			}
			// Charge the battery with what remains.
			if cfg.Battery != nil && surplus > 0 {
				surplus -= cfg.Battery.Charge(surplus, 1)
			}
			res.Surplus.Set(h, surplus)

		default:
			deficit := load - supply
			// Battery first.
			if cfg.Battery != nil && deficit > 0 {
				deficit -= cfg.Battery.Discharge(deficit, 1)
			}
			// Defer flexible load only if the battery was not enough. The
			// forced portion cannot be re-deferred.
			if deficit > 0 && cfg.FlexibleRatio > 0 {
				deferrable := cfg.Demand.At(h) * cfg.FlexibleRatio
				if deferrable > deficit {
					deferrable = deficit
				}
				deadline := h + window
				if deadline >= n {
					// Work whose window extends past the simulation horizon
					// runs at the final hour; at the final hour itself no
					// deferral is possible.
					deadline = n - 1
				}
				if deferrable > 0 && deadline > h {
					deferred[deadline] += deferrable
					load -= deferrable
					deficit -= deferrable
				}
			}
			if forced > 0 && deficit > 0 {
				counted := forced
				if counted > deficit {
					counted = deficit
				}
				res.ForcedDeadlineMWh += counted
			}
			res.GridDraw.Set(h, deficit)
		}

		res.Balanced.Set(h, load)
		if cfg.Battery != nil {
			res.BatterySoC.Set(h, cfg.Battery.SoC())
		}
		if load > res.PeakLoadMW {
			res.PeakLoadMW = load
		}
	}
	return res, nil
}

// pullDeferred removes up to amount MWh from the deferred map, earliest
// deadline first, and returns how much was pulled.
func pullDeferred(deferred map[int]float64, from, to int, amount float64) float64 {
	pulled := 0.0
	for d := from; d <= to && amount > 0; d++ {
		e, ok := deferred[d]
		if !ok {
			continue
		}
		take := e
		if take > amount {
			take = amount
		}
		if take == e { //carbonlint:allow floatcmp take is e or the clamped amount, both copied bits; equality means the entry fully drained
			delete(deferred, d)
		} else {
			deferred[d] = e - take
		}
		pulled += take
		amount -= take
	}
	return pulled
}
