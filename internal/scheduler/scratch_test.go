package scheduler

import (
	"math"
	"testing"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/timeseries"
)

// scratchConfigs is a matrix of simulation shapes chosen to hit every branch:
// no battery / battery, no flex / flex, capacity cap on/off, forced
// deadlines, horizon-clamped deadlines, and degenerate short horizons.
func scratchConfigs(tb testing.TB) []SimConfig {
	tb.Helper()
	n := 240
	demand := timeseries.Generate(n, func(h int) float64 { return 10 + 2*math.Sin(float64(h)/24*2*math.Pi) })
	wind := timeseries.Generate(n, func(h int) float64 { return 5 + 4*math.Sin(float64(h)/13) })
	solar := timeseries.Generate(n, func(h int) float64 {
		v := 12 * math.Sin(float64(h%24-6)/12*math.Pi)
		if v < 0 {
			return 0
		}
		return v
	})
	spike := timeseries.Generate(n, func(h int) float64 {
		if h%7 == 0 {
			return 40
		}
		return 1
	})
	newBat := func(capacity, dod float64) *battery.Battery {
		b, err := battery.New(battery.LFP(capacity, dod))
		if err != nil {
			tb.Fatalf("battery.New: %v", err)
		}
		return b
	}
	return []SimConfig{
		{Demand: demand, Renewable: wind},
		{Demand: demand, Renewable: wind, FlexibleRatio: 0.4},
		{Demand: demand, Renewable: solar, FlexibleRatio: 0.4, DeferralWindowHours: 24},
		{Demand: demand, Renewable: solar, FlexibleRatio: 1.0, DeferralWindowHours: 6},
		{Demand: demand, Renewable: spike, FlexibleRatio: 0.5, CapacityMW: 12},
		{Demand: demand, Renewable: spike, FlexibleRatio: 0.5, CapacityMW: 12, Battery: newBat(20, 0.8)},
		{Demand: demand, Renewable: wind, Battery: newBat(5, 1.0)},
		{Demand: demand, Renewable: solar, FlexibleRatio: 0.4, Battery: newBat(40, 0.8), CapacityMW: 15},
		{Demand: demand.Slice(0, 24), Renewable: solar.Slice(0, 24), FlexibleRatio: 0.4, DeferralWindowHours: 48},
		{Demand: demand.Slice(0, 1), Renewable: wind.Slice(0, 1), FlexibleRatio: 0.9},
	}
}

// TestSimulateScratchMatchesSimulate proves the flat-buffer path is
// bit-identical to the reference Simulate across the branch matrix.
func TestSimulateScratchMatchesSimulate(t *testing.T) {
	var s Scratch
	for i, cfg := range scratchConfigs(t) {
		// Independent battery instances per run: Simulate mutates them.
		refCfg := cfg
		optCfg := cfg
		if cfg.Battery != nil {
			cfg.Battery.Reset()
			refCfg.Battery = cfg.Battery
			b := *cfg.Battery
			optCfg.Battery = &b
		}

		want, err := Simulate(refCfg)
		if err != nil {
			t.Fatalf("case %d: Simulate: %v", i, err)
		}
		got, err := SimulateScratch(optCfg, &s)
		if err != nil {
			t.Fatalf("case %d: SimulateScratch: %v", i, err)
		}

		n := cfg.Demand.Len()
		for h := 0; h < n; h++ {
			if bitsDiffer(want.Balanced.At(h), got.Balanced[h]) {
				t.Fatalf("case %d hour %d: Balanced %v != %v", i, h, want.Balanced.At(h), got.Balanced[h])
			}
			if bitsDiffer(want.GridDraw.At(h), got.GridDraw[h]) {
				t.Fatalf("case %d hour %d: GridDraw %v != %v", i, h, want.GridDraw.At(h), got.GridDraw[h])
			}
			if bitsDiffer(want.BatterySoC.At(h), got.BatterySoC[h]) {
				t.Fatalf("case %d hour %d: BatterySoC %v != %v", i, h, want.BatterySoC.At(h), got.BatterySoC[h])
			}
			if bitsDiffer(want.Surplus.At(h), got.Surplus[h]) {
				t.Fatalf("case %d hour %d: Surplus %v != %v", i, h, want.Surplus.At(h), got.Surplus[h])
			}
		}
		if bitsDiffer(want.ForcedDeadlineMWh, got.ForcedDeadlineMWh) {
			t.Fatalf("case %d: ForcedDeadlineMWh %v != %v", i, want.ForcedDeadlineMWh, got.ForcedDeadlineMWh)
		}
		if bitsDiffer(want.PeakLoadMW, got.PeakLoadMW) {
			t.Fatalf("case %d: PeakLoadMW %v != %v", i, want.PeakLoadMW, got.PeakLoadMW)
		}
	}
}

// TestSimulateScratchReuseIsClean proves stale state from a previous run —
// including a longer horizon and leftover deferred entries — cannot leak
// into the next one.
func TestSimulateScratchReuseIsClean(t *testing.T) {
	var s Scratch
	cfgs := scratchConfigs(t)
	// Run the full matrix twice through one Scratch, longest first, and
	// compare against fresh-scratch runs.
	order := []int{3, 4, 8, 9, 1, 2, 3, 4}
	for pass, idx := range order {
		cfg := cfgs[idx]
		if cfg.Battery != nil {
			cfg.Battery.Reset()
		}
		got, err := SimulateScratch(cfg, &s)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if cfg.Battery != nil {
			cfg.Battery.Reset()
		}
		var fresh Scratch
		want, err := SimulateScratch(cfg, &fresh)
		if err != nil {
			t.Fatalf("pass %d fresh: %v", pass, err)
		}
		for h := range want.GridDraw {
			if bitsDiffer(want.GridDraw[h], got.GridDraw[h]) || bitsDiffer(want.Balanced[h], got.Balanced[h]) {
				t.Fatalf("pass %d (case %d) hour %d: reused scratch diverged", pass, idx, h)
			}
		}
		if s.pending != 0 && countPositive(s.deferred) != s.pending {
			t.Fatalf("pass %d: pending=%d disagrees with ledger", pass, s.pending)
		}
	}
}

// TestSimulateScratchValidates proves the scratch path rejects exactly what
// Simulate rejects.
func TestSimulateScratchValidates(t *testing.T) {
	var s Scratch
	bad := SimConfig{
		Demand:    timeseries.Constant(24, 10),
		Renewable: timeseries.Constant(23, 5),
	}
	_, wantErr := Simulate(bad)
	_, gotErr := SimulateScratch(bad, &s)
	if wantErr == nil || gotErr == nil {
		t.Fatalf("length mismatch accepted: Simulate=%v SimulateScratch=%v", wantErr, gotErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Fatalf("error text diverged: %q vs %q", wantErr, gotErr)
	}
}

func bitsDiffer(a, b float64) bool {
	return math.Float64bits(a) != math.Float64bits(b)
}

func countPositive(v []float64) int {
	n := 0
	for _, x := range v {
		if x > 0 {
			n++
		}
	}
	return n
}
