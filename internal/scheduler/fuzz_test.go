package scheduler

import (
	"math"
	"testing"

	"carbonexplorer/internal/timeseries"
)

// FuzzShiftDaily feeds arbitrary demand/signal bytes into the greedy
// shifter: whatever the input, shifted load must conserve energy per
// window, stay non-negative, and respect the capacity cap.
func FuzzShiftDaily(f *testing.F) {
	f.Add([]byte{10, 20, 30, 5, 5, 5}, []byte{1, 2, 3, 9, 8, 7}, uint8(40), uint8(1))
	f.Add([]byte{0, 0, 0}, []byte{0, 0, 0}, uint8(100), uint8(0))
	f.Add([]byte{255}, []byte{255}, uint8(0), uint8(1))

	f.Fuzz(func(t *testing.T, dRaw, sRaw []byte, fwrRaw, withCap uint8) {
		n := len(dRaw)
		if len(sRaw) < n {
			n = len(sRaw)
		}
		if n == 0 || n > 24*14 {
			return
		}
		dv := make([]float64, n)
		sv := make([]float64, n)
		for i := 0; i < n; i++ {
			dv[i] = float64(dRaw[i])
			sv[i] = float64(sRaw[i])
		}
		demand := timeseries.FromValues(dv)
		signal := timeseries.FromValues(sv)
		cfg := Config{
			FlexibleRatio: float64(fwrRaw%101) / 100,
			WindowHours:   24,
		}
		if withCap%2 == 1 {
			cfg.CapacityMW = demand.MaxValue()*1.2 + 1
		}
		out, err := ShiftDaily(demand, signal, cfg)
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		if out.MinValue() < -1e-9 {
			t.Fatalf("negative load after shifting")
		}
		if math.Abs(out.Sum()-demand.Sum()) > 1e-6*(1+demand.Sum()) {
			t.Fatalf("energy not conserved: %v -> %v", demand.Sum(), out.Sum())
		}
		if cfg.CapacityMW > 0 {
			limit := math.Max(cfg.CapacityMW, demand.MaxValue()) + 1e-9
			if out.MaxValue() > limit {
				t.Fatalf("capacity cap violated: %v > %v", out.MaxValue(), limit)
			}
		}
		// Per-window conservation.
		for start := 0; start < n; start += 24 {
			end := start + 24
			if end > n {
				end = n
			}
			a := demand.Slice(start, end).Sum()
			b := out.Slice(start, end).Sum()
			if math.Abs(a-b) > 1e-6*(1+a) {
				t.Fatalf("window [%d,%d) energy not conserved", start, end)
			}
		}
	})
}
