package scheduler

import (
	"fmt"
	"sort"

	"carbonexplorer/internal/timeseries"
)

// Config parameterizes the greedy daily shifting pass. The paper's two
// customizable constraints are the datacenter capacity and the flexible
// workload ratio.
type Config struct {
	// CapacityMW is P_DCMAX: shifted power in any hour may not push total
	// load above this cap. Zero means "no cap".
	CapacityMW float64
	// FlexibleRatio is FWR: the fraction of each hour's load that may move.
	FlexibleRatio float64
	// WindowHours is the shifting window; the paper shifts within each day
	// (24). It must divide into whole windows of the series (a trailing
	// partial window is shifted as its own smaller window).
	WindowHours int
}

// DefaultConfig returns the paper's evaluation configuration: daily windows
// and a 40% flexible ratio, uncapped.
func DefaultConfig() Config {
	return Config{FlexibleRatio: 0.40, WindowHours: 24}
}

// Validate reports the first invalid field, or nil.
func (c Config) Validate() error {
	if c.FlexibleRatio < 0 || c.FlexibleRatio > 1 {
		return fmt.Errorf("scheduler: flexible ratio %v out of [0, 1]", c.FlexibleRatio)
	}
	if c.WindowHours <= 0 {
		return fmt.Errorf("scheduler: window must be positive, got %d", c.WindowHours)
	}
	if c.CapacityMW < 0 {
		return fmt.Errorf("scheduler: negative capacity cap")
	}
	return nil
}

// ShiftDaily applies the paper's greedy algorithm: within each window,
// flexible load moves from the hours with the highest signal (e.g. carbon
// intensity, or renewable deficit) to the hours with the lowest signal,
// until all flexible load has moved or capacity is exhausted. Load is only
// moved to an hour whose signal is strictly lower than the source hour's.
//
// Demand must be finite and non-negative; the signal must be finite but may
// be signed (renewable-deficit signals go negative in surplus hours). A
// length mismatch returns a wrapped timeseries.ErrLengthMismatch; invalid
// samples return a wrapped *timeseries.ValueError — a NaN hour would
// otherwise corrupt the whole window silently.
//
// The returned series conserves energy within each window: total load is
// unchanged, only its placement differs.
func ShiftDaily(demand, signal timeseries.Series, cfg Config) (timeseries.Series, error) {
	if err := cfg.Validate(); err != nil {
		return timeseries.Series{}, err
	}
	if err := signal.CheckLength(demand.Len()); err != nil {
		return timeseries.Series{}, fmt.Errorf("scheduler: demand vs signal: %w", err)
	}
	if err := demand.Validate(); err != nil {
		return timeseries.Series{}, fmt.Errorf("scheduler: demand: %w", err)
	}
	if err := signal.ValidateFinite(); err != nil {
		return timeseries.Series{}, fmt.Errorf("scheduler: signal: %w", err)
	}
	out := demand.Clone()
	if cfg.FlexibleRatio == 0 {
		return out, nil
	}
	n := demand.Len()
	for start := 0; start < n; start += cfg.WindowHours {
		end := start + cfg.WindowHours
		if end > n {
			end = n
		}
		shiftWindow(out, demand, signal, start, end, cfg)
	}
	return out, nil
}

// shiftWindow performs the greedy move for hours [start, end) of out.
func shiftWindow(out, demand, signal timeseries.Series, start, end int, cfg Config) {
	type hourState struct {
		idx     int
		sig     float64
		movable float64 // flexible load still available to move away
	}
	hours := make([]hourState, 0, end-start)
	for h := start; h < end; h++ {
		hours = append(hours, hourState{
			idx:     h,
			sig:     signal.At(h),
			movable: demand.At(h) * cfg.FlexibleRatio,
		})
	}
	// Sources: highest signal first. Sinks: lowest signal first.
	sources := make([]*hourState, len(hours))
	sinks := make([]*hourState, len(hours))
	for i := range hours {
		sources[i] = &hours[i]
		sinks[i] = &hours[i]
	}
	sort.SliceStable(sources, func(a, b int) bool { return sources[a].sig > sources[b].sig })
	sort.SliceStable(sinks, func(a, b int) bool { return sinks[a].sig < sinks[b].sig })

	for _, src := range sources {
		if src.movable <= 0 {
			continue
		}
		for _, dst := range sinks {
			if src.movable <= 0 {
				break
			}
			if dst.idx == src.idx || dst.sig >= src.sig {
				continue
			}
			headroom := src.movable
			if cfg.CapacityMW > 0 {
				room := cfg.CapacityMW - out.At(dst.idx)
				if room < headroom {
					headroom = room
				}
			}
			if headroom <= 0 {
				continue
			}
			out.Set(dst.idx, out.At(dst.idx)+headroom)
			out.Set(src.idx, out.At(src.idx)-headroom)
			src.movable -= headroom
		}
	}
}

// DeficitSignal builds the shifting signal used when optimizing renewable
// coverage rather than grid intensity: hours where demand exceeds renewable
// supply score high (positive deficit), hours with surplus score negative,
// so the greedy pass moves work into surplus hours.
func DeficitSignal(demand, renewable timeseries.Series) (timeseries.Series, error) {
	return demand.Sub(renewable)
}
