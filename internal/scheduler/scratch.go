package scheduler

import "carbonexplorer/internal/timeseries"

// Scratch holds the reusable working memory for SimulateScratch. One Scratch
// belongs to exactly one goroutine (the sweep gives each worker its own); it
// grows to the largest horizon it has seen and is then allocation-free for
// every subsequent simulation at that horizon or below.
type Scratch struct {
	balanced []float64
	gridDraw []float64
	soc      []float64
	surplus  []float64
	// deferred[d] is energy (MWh) whose deadline is hour d — the slice form
	// of Simulate's deferred map, indexed directly instead of hashed. The
	// invariant matching the map is: a "present" entry is exactly a positive
	// value, and pending counts those entries.
	deferred []float64
	pending  int
	// socDirty and deferredDirty record that a previous run may have left
	// nonzero samples in soc / deferred. The simulation loops write every
	// sample of balanced, gridDraw, and surplus, but soc is only written
	// with a battery and the deferred ledger only with flexible load — so
	// those two are re-zeroed lazily, over their full capacity, only when a
	// run that could have dirtied them has happened.
	socDirty      bool
	deferredDirty bool
}

// grow ensures every buffer holds n samples with soc and deferred all-zero.
func (s *Scratch) grow(n int) {
	if cap(s.balanced) < n {
		s.balanced = make([]float64, n)
		s.gridDraw = make([]float64, n)
		s.soc = make([]float64, n)
		s.surplus = make([]float64, n)
		s.deferred = make([]float64, n)
		s.pending = 0
		s.socDirty = false
		s.deferredDirty = false
		return
	}
	s.balanced = s.balanced[:n]
	s.gridDraw = s.gridDraw[:n]
	s.soc = s.soc[:n]
	s.surplus = s.surplus[:n]
	s.deferred = s.deferred[:n]
	if s.socDirty {
		timeseries.Zero(s.soc[:cap(s.soc)])
		s.socDirty = false
	}
	if s.deferredDirty {
		timeseries.Zero(s.deferred[:cap(s.deferred)])
		s.deferredDirty = false
		s.pending = 0
	}
}

// RawResult is the flat-buffer form of Result. The slices alias the Scratch
// that produced them and are valid only until its next SimulateScratch call;
// callers that need to retain a trace must copy it (timeseries.FromValues).
type RawResult struct {
	Balanced          []float64
	GridDraw          []float64
	BatterySoC        []float64
	Surplus           []float64
	ForcedDeadlineMWh float64
	PeakLoadMW        float64
}

// SimulateScratch is Simulate without per-call allocation: the same policy,
// arithmetic, and operation order, writing into s instead of fresh Series.
// Results are bit-identical to Simulate for every input (the deferred ledger
// is a directly-indexed slice here, but entries are probed in the same
// ascending-deadline order the map version scans, so every float add happens
// in the same sequence).
//
// Allocation-free in the steady state: s.grow only allocates when the
// horizon exceeds every previous call's. The grow path stays unannotated —
// growth is its whole job — while this function and pullDeferred carry
// //carbonlint:hotpath so hotalloc rejects new allocating constructs.
//
//carbonlint:hotpath
func SimulateScratch(cfg SimConfig, s *Scratch) (RawResult, error) {
	if !cfg.AssumeValid {
		if err := cfg.Validate(); err != nil {
			return RawResult{}, err
		}
	}
	n := cfg.Demand.Len()
	window := cfg.DeferralWindowHours
	if window == 0 {
		window = 24
	}
	s.grow(n)
	if cfg.Battery != nil {
		s.socDirty = true
	}
	if cfg.FlexibleRatio > 0 {
		s.deferredDirty = true
	}

	res := RawResult{
		Balanced:   s.balanced,
		GridDraw:   s.gridDraw,
		BatterySoC: s.soc,
		Surplus:    s.surplus,
	}

	demand := cfg.Demand.Raw()
	renewable := cfg.Renewable.Raw()

	// Renewables-only fast path: with no battery and no flexible load, the
	// deferral ledger provably never gains an entry and the battery branches
	// never fire, so each hour reduces to a pure supply/demand split —
	// bit-identical to the general loop below with forced=0 throughout.
	if cfg.Battery == nil && cfg.FlexibleRatio == 0 {
		peak := 0.0
		for h := 0; h < n; h++ {
			load := demand[h]
			supply := renewable[h]
			if supply >= load {
				s.surplus[h] = supply - load
				s.gridDraw[h] = 0
			} else {
				s.gridDraw[h] = load - supply
				s.surplus[h] = 0
			}
			s.balanced[h] = load
			if load > peak {
				peak = load
			}
		}
		res.PeakLoadMW = peak
		return res, nil
	}

	for h := 0; h < n; h++ {
		load := demand[h]

		// Deadline-expired work must run now.
		forced := s.deferred[h]
		if forced > 0 {
			s.deferred[h] = 0
			s.pending--
		}
		load += forced

		supply := renewable[h]

		switch {
		case supply >= load:
			surplus := supply - load
			// Pull future deferred work forward into the surplus, earliest
			// deadline first, bounded by the capacity cap.
			if surplus > 0 && s.pending > 0 {
				room := surplus
				if cfg.CapacityMW > 0 {
					if capRoom := cfg.CapacityMW - load; capRoom < room {
						room = capRoom
					}
				}
				if room > 0 {
					// Entries created before hour h all have deadlines below
					// h+window, so the scan (which Simulate runs to n) can
					// stop there without skipping any.
					to := h + window
					if to > n-1 {
						to = n - 1
					}
					pulled := s.pullDeferred(h, to, room)
					load += pulled
					surplus -= pulled
				}
			}
			// Charge the battery with what remains.
			if cfg.Battery != nil && surplus > 0 {
				surplus -= cfg.Battery.Charge(surplus, 1)
			}
			s.surplus[h] = surplus
			s.gridDraw[h] = 0

		default:
			deficit := load - supply
			// Battery first.
			if cfg.Battery != nil && deficit > 0 {
				deficit -= cfg.Battery.Discharge(deficit, 1)
			}
			// Defer flexible load only if the battery was not enough. The
			// forced portion cannot be re-deferred.
			if deficit > 0 && cfg.FlexibleRatio > 0 {
				deferrable := demand[h] * cfg.FlexibleRatio
				if deferrable > deficit {
					deferrable = deficit
				}
				deadline := h + window
				if deadline >= n {
					// Work whose window extends past the simulation horizon
					// runs at the final hour; at the final hour itself no
					// deferral is possible.
					deadline = n - 1
				}
				if deferrable > 0 && deadline > h {
					if s.deferred[deadline] == 0 { // zero marks an absent ledger entry; stored values are always positive
						s.pending++
					}
					s.deferred[deadline] += deferrable
					load -= deferrable
					deficit -= deferrable
				}
			}
			if forced > 0 && deficit > 0 {
				counted := forced
				if counted > deficit {
					counted = deficit
				}
				res.ForcedDeadlineMWh += counted
			}
			s.gridDraw[h] = deficit
			s.surplus[h] = 0
		}

		s.balanced[h] = load
		if cfg.Battery != nil {
			s.soc[h] = cfg.Battery.SoC()
		}
		if load > res.PeakLoadMW {
			res.PeakLoadMW = load
		}
	}
	// The ledger is provably drained here: every entry's deadline is below
	// n, and the forced-read at that hour zeroed it. (A panic mid-loop
	// leaves the flag set, so the next grow re-zeroes conservatively.)
	s.deferredDirty = false
	return res, nil
}

// pullDeferred removes up to amount MWh from the deferred ledger over
// deadlines [from, to], earliest first, and returns how much was pulled.
//
//carbonlint:hotpath
func (s *Scratch) pullDeferred(from, to int, amount float64) float64 {
	pulled := 0.0
	for d := from; d <= to && amount > 0; d++ {
		e := s.deferred[d]
		if e == 0 { // zero marks an absent ledger entry; stored values are always positive
			continue
		}
		take := e
		if take > amount {
			take = amount
		}
		if take == e { //carbonlint:allow floatcmp take is e or the clamped amount, both copied bits; equality means the entry fully drained
			s.deferred[d] = 0
			s.pending--
		} else {
			s.deferred[d] = e - take
		}
		pulled += take
		amount -= take
	}
	return pulled
}
