package scheduler

import (
	"errors"
	"math"
	"testing"

	"carbonexplorer/internal/timeseries"
)

func TestShiftDailyLengthMismatch(t *testing.T) {
	demand := timeseries.Constant(48, 10)
	signal := timeseries.Constant(24, 1)
	_, err := ShiftDaily(demand, signal, DefaultConfig())
	if !errors.Is(err, timeseries.ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

func TestShiftDailyInvalidDemand(t *testing.T) {
	signal := timeseries.Constant(24, 1)

	for _, tc := range []struct {
		name string
		v    float64
	}{
		{"NaN", math.NaN()},
		{"+Inf", math.Inf(1)},
		{"negative", -3},
	} {
		demand := timeseries.Constant(24, 10)
		demand.Set(5, tc.v)
		_, err := ShiftDaily(demand, signal, DefaultConfig())
		var ve *timeseries.ValueError
		if !errors.As(err, &ve) {
			t.Fatalf("%s demand: want *ValueError, got %v", tc.name, err)
		}
		if ve.Index != 5 {
			t.Fatalf("%s demand: error at index %d, want 5", tc.name, ve.Index)
		}
	}
}

func TestShiftDailySignalMaySign(t *testing.T) {
	// Deficit signals legitimately go negative; only non-finite values are
	// invalid.
	demand := timeseries.Constant(24, 10)
	signal := timeseries.Generate(24, func(h int) float64 { return float64(h - 12) })
	if _, err := ShiftDaily(demand, signal, DefaultConfig()); err != nil {
		t.Fatalf("signed signal rejected: %v", err)
	}

	signal.Set(0, math.NaN())
	_, err := ShiftDaily(demand, signal, DefaultConfig())
	var ve *timeseries.ValueError
	if !errors.As(err, &ve) {
		t.Fatalf("NaN signal: want *ValueError, got %v", err)
	}
}

func TestShiftDailyBadConfig(t *testing.T) {
	demand := timeseries.Constant(24, 10)
	signal := timeseries.Constant(24, 1)
	for _, cfg := range []Config{
		{FlexibleRatio: -0.1, WindowHours: 24},
		{FlexibleRatio: 1.1, WindowHours: 24},
		{FlexibleRatio: 0.4, WindowHours: 0},
		{FlexibleRatio: 0.4, WindowHours: 24, CapacityMW: -1},
	} {
		if _, err := ShiftDaily(demand, signal, cfg); err == nil {
			t.Fatalf("invalid config accepted: %+v", cfg)
		}
	}
}

func TestShiftDailyEmptySeries(t *testing.T) {
	out, err := ShiftDaily(timeseries.Series{}, timeseries.Series{}, DefaultConfig())
	if err != nil {
		t.Fatalf("empty series should be a no-op, got %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty shift produced %d hours", out.Len())
	}
}

func TestSimConfigValidateErrors(t *testing.T) {
	demand := timeseries.Constant(24, 10)
	short := timeseries.Constant(12, 5)
	cfg := SimConfig{Demand: demand, Renewable: short}
	if err := cfg.Validate(); !errors.Is(err, timeseries.ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}

	bad := timeseries.Constant(24, 5)
	bad.Set(2, math.Inf(-1))
	cfg = SimConfig{Demand: demand, Renewable: bad}
	var ve *timeseries.ValueError
	if err := cfg.Validate(); !errors.As(err, &ve) {
		t.Fatalf("want *ValueError for -Inf renewable, got %v", err)
	}
}
