package scheduler

import (
	"math"
	"testing"

	"carbonexplorer/internal/battery"
	"carbonexplorer/internal/timeseries"
	"carbonexplorer/internal/workload"
)

func TestDefaultTiersMatchFigure10(t *testing.T) {
	tiers := DefaultTiers()
	if len(tiers) != workload.NumTiers {
		t.Fatalf("want %d tiers", workload.NumTiers)
	}
	total := 0.0
	for _, ts := range tiers {
		total += ts.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("default tier shares sum to %v", total)
	}
}

func TestTieredValidation(t *testing.T) {
	d := timeseries.New(24)
	base := TieredConfig{Demand: d, Renewable: d, Tiers: DefaultTiers()}
	cases := []func(*TieredConfig){
		func(c *TieredConfig) { c.Demand = timeseries.New(0); c.Renewable = timeseries.New(0) },
		func(c *TieredConfig) { c.Renewable = timeseries.New(5) },
		func(c *TieredConfig) { c.Tiers = []TierShare{{Tier: workload.Tier4, Share: -0.1}} },
		func(c *TieredConfig) {
			c.Tiers = []TierShare{{Tier: workload.Tier4, Share: 0.7}, {Tier: workload.Tier5, Share: 0.7}}
		},
		func(c *TieredConfig) { c.CapacityMW = -1 },
		func(c *TieredConfig) { c.DeferrableShareOfFleet = 1.5 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := SimulateTiered(cfg); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestTieredConservesEnergy(t *testing.T) {
	n := 24 * 14
	demand := timeseries.Generate(n, func(h int) float64 { return 10 + 2*math.Sin(float64(h)/5) })
	ren := timeseries.Generate(n, func(h int) float64 { return 18 * math.Abs(math.Sin(float64(h)/11)) })
	b, _ := battery.New(battery.LFP(20, 1.0))
	res, err := SimulateTiered(TieredConfig{
		Demand: demand, Renewable: ren, Battery: b,
		Tiers: DefaultTiers(), CapacityMW: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Balanced.Sum()-demand.Sum()) > 1e-6 {
		t.Fatalf("energy not conserved: %v -> %v", demand.Sum(), res.Balanced.Sum())
	}
}

func TestTieredFlexibleTiersDeferMost(t *testing.T) {
	// Under sustained deficits, the long-slack tiers should carry the
	// deferral load; Tier 1 (±1h) cannot move at hourly resolution.
	n := 24 * 7
	demand := timeseries.Constant(n, 10)
	ren := timeseries.Generate(n, func(h int) float64 {
		if h%48 < 24 {
			return 0
		}
		return 30
	})
	res, err := SimulateTiered(TieredConfig{
		Demand: demand, Renewable: ren, Tiers: DefaultTiers(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeferredByTier[workload.Tier1] != 0 {
		t.Fatalf("Tier 1 deferred %v, want 0", res.DeferredByTier[workload.Tier1])
	}
	if res.DeferredByTier[workload.Tier4] <= res.DeferredByTier[workload.Tier2] {
		t.Fatalf("daily tier should defer more than ±2h tier: %v vs %v",
			res.DeferredByTier[workload.Tier4], res.DeferredByTier[workload.Tier2])
	}
}

func TestTieredImprovesOnNoScheduling(t *testing.T) {
	n := 24 * 7
	demand := timeseries.Constant(n, 10)
	ren := timeseries.Generate(n, func(h int) float64 {
		if h%24 < 12 {
			return 2
		}
		return 25
	})
	tiered, err := SimulateTiered(TieredConfig{Demand: demand, Renewable: ren, Tiers: DefaultTiers()})
	if err != nil {
		t.Fatal(err)
	}
	none, err := Simulate(SimConfig{Demand: demand, Renewable: ren})
	if err != nil {
		t.Fatal(err)
	}
	if tiered.GridDraw.Sum() >= none.GridDraw.Sum() {
		t.Fatalf("tiered scheduling should reduce grid draw: %v vs %v",
			tiered.GridDraw.Sum(), none.GridDraw.Sum())
	}
}

func TestTieredFleetShareScalesDeferral(t *testing.T) {
	n := 24 * 7
	demand := timeseries.Constant(n, 10)
	ren := timeseries.Generate(n, func(h int) float64 {
		if h%24 < 12 {
			return 0
		}
		return 30
	})
	full, err := SimulateTiered(TieredConfig{Demand: demand, Renewable: ren, Tiers: DefaultTiers()})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := SimulateTiered(TieredConfig{
		Demand: demand, Renewable: ren, Tiers: DefaultTiers(),
		DeferrableShareOfFleet: 0.075, // the paper's data-processing share
	})
	if err != nil {
		t.Fatal(err)
	}
	var fullTotal, scaledTotal float64
	for _, v := range full.DeferredByTier {
		fullTotal += v
	}
	for _, v := range scaled.DeferredByTier {
		scaledTotal += v
	}
	if scaledTotal >= fullTotal {
		t.Fatalf("fleet share should scale down deferral: %v vs %v", scaledTotal, fullTotal)
	}
	if scaledTotal <= 0 {
		t.Fatalf("scaled deferral should still be positive")
	}
}

func TestTieredNoTiersMatchesPlainNoFlex(t *testing.T) {
	n := 48
	demand := timeseries.Constant(n, 10)
	ren := timeseries.Generate(n, func(h int) float64 { return float64(h % 20) })
	tiered, err := SimulateTiered(TieredConfig{Demand: demand, Renewable: ren})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Simulate(SimConfig{Demand: demand, Renewable: ren})
	if err != nil {
		t.Fatal(err)
	}
	if !tiered.GridDraw.Equal(plain.GridDraw, 1e-9) {
		t.Fatalf("no tiers should equal no flexibility")
	}
}
