// Package scheduler implements the paper's carbon-aware scheduling (CAS)
// algorithms (Section 4.3): a greedy daily workload-shifting pass that moves
// flexible load from hours of high carbon intensity (or renewable deficit)
// to hours of low intensity, subject to a datacenter capacity cap; and the
// combined battery+CAS hour-by-hour policy of Section 5.2, which prioritizes
// battery energy on deficits and deferred workloads on surpluses. The
// flexible ratio comes from the workload package's SLO-tier breakdown
// (Figure 10); the extra server capacity that absorbs shifted load is the
// embodied-carbon trade-off Section 5.1 charges for.
package scheduler
