package coordinator

// Network-transport tests: sweeps over a real HTTP coordinator on loopback
// must converge to the byte-identical single-process optimum and frontier —
// through injected connection drops, delays, and duplicated requests;
// through a worker killed mid-lease; and through the coordinator itself
// being killed and restarted mid-sweep.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/faultinject"
	"carbonexplorer/internal/sweep"
)

// startCoordinator serves a fresh Service over loopback HTTP and returns
// its base URL.
func startCoordinator(t testing.TB, stateDir string, expiry time.Duration) string {
	t.Helper()
	svc, err := NewService(stateDir, ServiceOptions{Expiry: expiry})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

// evalCounter returns hooked inputs whose EvalHook counts per-design
// evaluations, plus a function reporting (total, designs evaluated more
// than once).
func evalCounter(in *explorer.Inputs) (*explorer.Inputs, func() (total, doubled int)) {
	var mu sync.Mutex
	counts := map[explorer.Design]int{}
	hooked := *in
	hooked.EvalHook = func(d explorer.Design) error {
		mu.Lock()
		counts[d]++
		mu.Unlock()
		return nil
	}
	return &hooked, func() (int, int) {
		mu.Lock()
		defer mu.Unlock()
		total, doubled := 0, 0
		for _, c := range counts {
			total += c
			if c > 1 {
				doubled++
			}
		}
		return total, doubled
	}
}

// netTiming keeps network-test liveness windows short but honest: the TTL
// stays several heartbeats wide so live workers are never stolen from.
func netTiming(o Options) Options {
	o.Heartbeat = 10 * time.Millisecond
	return o
}

// TestNetworkCoordinatedMatchesSingleProcess: the HTTP transport end to
// end — register, claim, heartbeat-with-upload, complete, merged fetch —
// reproduces the single-process result exactly, with every design
// evaluated exactly once across the fleet.
func TestNetworkCoordinatedMatchesSingleProcess(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)
	n := len(space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW()))
	url := startCoordinator(t, t.TempDir(), 200*time.Millisecond)

	hooked, report := evalCounter(in)
	got, err := Run(context.Background(), hooked, space, explorer.RenewablesBatteryCAS,
		netTiming(Options{Workers: 3, Leases: 12, BatchSize: 4, Endpoint: url, Worker: "fleet"}))
	if err != nil {
		t.Fatalf("network coordinated run: %v", err)
	}
	requireSameResult(t, want, got)
	total, doubled := report()
	if total != n || doubled != 0 {
		t.Fatalf("fleet evaluated %d designs with %d doubled, want %d exactly once", total, doubled, n)
	}
	leases, evaluated := 0, 0
	for _, wp := range got.Workers {
		leases += wp.Leases
		evaluated += wp.Evaluated
	}
	if leases != 12 || evaluated != n {
		t.Fatalf("worker progress: %d leases and %d designs, want 12 and %d", leases, evaluated, n)
	}

	// The coordinator's own status and merged checkpoint agree.
	client := NewClient(url, ClientOptions{})
	st, err := client.Status(context.Background())
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if !st.Complete || st.Done != 12 {
		t.Fatalf("coordinator status after a finished sweep: %+v", st)
	}
	data, err := client.MergedCheckpoint(context.Background())
	if err != nil {
		t.Fatalf("merged checkpoint: %v", err)
	}
	p, err := sweep.Progress(writeTemp(t, data))
	if err != nil {
		t.Fatalf("inspecting merged checkpoint: %v", err)
	}
	if p.Pending != 0 || p.Done != n {
		t.Fatalf("merged checkpoint: %+v, want %d done", p, n)
	}
}

// writeTemp stages bytes in a temp file and returns its path.
func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := t.TempDir() + "/ckpt.json"
	if err := sweep.WriteFileAtomic(path, data); err != nil {
		t.Fatalf("staging checkpoint: %v", err)
	}
	return path
}

// TestNetworkChaosDropsDelaysDuplicates: the acceptance chaos run for the
// wire itself. A deterministic fault injector drops, delays, and
// duplicates requests; client retries with backoff ride through the drops,
// the protocol's idempotency absorbs the duplicates, and the sweep still
// converges byte-identically with zero double evaluation.
func TestNetworkChaosDropsDelaysDuplicates(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)
	n := len(space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW()))
	// The lease TTL must exceed the client's worst realistic retry-backoff
	// span: a dropped Complete that only lands on its third attempt must
	// still arrive inside the lease window, or the lease is stolen and its
	// tail re-evaluated. (Leases orphaned by duplicated Claims are still
	// recovered by expiry-steal — they carry no progress, so exactly-once
	// holds regardless.)
	url := startCoordinator(t, t.TempDir(), 2*time.Second)

	rt := faultinject.NetworkFaults{
		Seed:              42,
		DropFraction:      0.15,
		DelayFraction:     0.10,
		Delay:             2 * time.Millisecond,
		DuplicateFraction: 0.10,
	}.RoundTripper(nil)
	hooked, report := evalCounter(in)
	got, err := Run(context.Background(), hooked, space, explorer.RenewablesBatteryCAS,
		netTiming(Options{Workers: 3, Leases: 10, BatchSize: 2, Endpoint: url, Worker: "fleet", Transport: rt}))
	if err != nil {
		t.Fatalf("network run under chaos: %v", err)
	}
	drops, delays, dups := faultinject.Counts(rt)
	if drops == 0 || dups == 0 {
		t.Fatalf("chaos did not fire: %d drops, %d delays, %d duplicates", drops, delays, dups)
	}
	t.Logf("chaos injected %d drops, %d delays, %d duplicated requests", drops, delays, dups)
	requireSameResult(t, want, got)
	total, doubled := report()
	if total != n || doubled != 0 {
		t.Fatalf("chaos run evaluated %d designs with %d doubled, want %d exactly once", total, doubled, n)
	}
}

// TestNetworkChaosKilledWorker: a worker process dies mid-lease (its fleet
// cancelled from inside the EvalHook). Its heartbeat-uploaded progress
// survives on the coordinator; a second fleet steals the expired leases,
// resumes them, and converges byte-identically. Designs evaluated after
// the victim's last upload may be re-evaluated (determinism makes that
// benign) but nothing is ever double-folded.
func TestNetworkChaosKilledWorker(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)
	n := len(space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW()))
	url := startCoordinator(t, t.TempDir(), 100*time.Millisecond)

	// Fleet 1 dies after 20 evaluations. Slow evaluation (2ms) against a
	// 5ms heartbeat guarantees uploads happen before the kill.
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	killed := 0
	victim := *in
	victim.EvalHook = func(explorer.Design) error {
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		killed++
		if killed == 20 {
			cancel()
		}
		return nil
	}
	_, err := Run(ctx, &victim, space, explorer.RenewablesBatteryCAS, Options{
		Workers: 2, Leases: 10, BatchSize: 1, CheckpointEvery: 1,
		Endpoint: url, Worker: "victim",
		Heartbeat: 5 * time.Millisecond,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed fleet: want context.Canceled, got %v", err)
	}

	// Fleet 2 joins the same coordinator, steals the dead fleet's expired
	// leases, and finishes the sweep.
	hooked, report := evalCounter(in)
	got, err := Run(context.Background(), hooked, space, explorer.RenewablesBatteryCAS,
		netTiming(Options{Workers: 2, Leases: 10, BatchSize: 2, Endpoint: url, Worker: "rescuer"}))
	if err != nil {
		t.Fatalf("rescuing fleet: %v", err)
	}
	requireSameResult(t, want, got)
	if !got.Resumed || got.Report.Restored == 0 {
		t.Fatalf("rescuing fleet restored %d designs (resumed=%v) — the victim's uploads were lost", got.Report.Restored, got.Resumed)
	}
	stolen := 0
	for _, wp := range got.Workers {
		stolen += wp.Stolen
	}
	if stolen == 0 {
		t.Fatal("no lease was stolen from the dead fleet")
	}
	// The rescuing fleet evaluates exactly the designs the victim's uploads
	// did not cover — each exactly once.
	total, doubled := report()
	if doubled != 0 {
		t.Fatalf("rescuing fleet double-evaluated %d designs", doubled)
	}
	if total != n-got.Report.Restored {
		t.Fatalf("rescuing fleet evaluated %d designs, want %d (= %d − %d restored)", total, n-got.Report.Restored, n, got.Report.Restored)
	}
}

// TestNetworkChaosCoordinatorRestart: the coordinator is killed mid-sweep
// and restarted on the same address from the same state directory. The
// lease TTL exceeds the outage, so workers ride through on client retries
// — no lease expires, nothing is stolen, and every design is evaluated
// exactly once: the sweep converges byte-identically as if the outage
// never happened.
func TestNetworkChaosCoordinatorRestart(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)
	n := len(space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW()))
	stateDir := t.TempDir()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	svc1, err := NewService(stateDir, ServiceOptions{Expiry: 2 * time.Second})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	srv1 := &http.Server{Handler: svc1.Handler()}
	go func() { _ = srv1.Serve(ln) }()

	// The assassin: after the 15th evaluation, kill the coordinator
	// abruptly (severing in-flight connections), hold a 150ms outage, then
	// restart it from the same state directory on the same address.
	var mu sync.Mutex
	evals := 0
	outageDone := make(chan struct{})
	var once sync.Once
	hooked, report := evalCounter(in)
	inner := hooked.EvalHook
	hooked.EvalHook = func(d explorer.Design) error {
		time.Sleep(3 * time.Millisecond)
		mu.Lock()
		evals++
		trigger := evals == 15
		mu.Unlock()
		if trigger {
			once.Do(func() {
				go func() {
					defer close(outageDone)
					_ = srv1.Close()
					time.Sleep(150 * time.Millisecond)
					svc2, err := NewService(stateDir, ServiceOptions{Expiry: 2 * time.Second})
					if err != nil {
						t.Errorf("reviving coordinator: %v", err)
						return
					}
					ln2, err := net.Listen("tcp", addr)
					if err != nil {
						t.Errorf("rebinding %s: %v", addr, err)
						return
					}
					srv2 := &http.Server{Handler: svc2.Handler()}
					t.Cleanup(func() { _ = srv2.Close() })
					go func() { _ = srv2.Serve(ln2) }()
				}()
			})
		}
		return inner(d)
	}

	got, err := Run(context.Background(), hooked, space, explorer.RenewablesBatteryCAS, Options{
		Workers: 2, Leases: 8, BatchSize: 1, CheckpointEvery: 1,
		Endpoint: "http://" + addr, Worker: "fleet",
		Heartbeat: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("run across the coordinator restart: %v", err)
	}
	select {
	case <-outageDone:
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator restart never completed")
	}
	requireSameResult(t, want, got)
	total, doubled := report()
	if total != n || doubled != 0 {
		t.Fatalf("restart run evaluated %d designs with %d doubled, want %d exactly once — the outage caused theft", total, doubled, n)
	}
	stolen := 0
	for _, wp := range got.Workers {
		stolen += wp.Stolen
	}
	if stolen != 0 {
		t.Fatalf("%d leases were stolen during a sub-TTL outage", stolen)
	}
}

// TestNetworkEndpointAndLeaseDirExclusive: the two multi-process
// transports cannot be combined.
func TestNetworkEndpointAndLeaseDirExclusive(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	_, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Endpoint: "http://localhost:1", LeaseDir: t.TempDir()})
	if err == nil {
		t.Fatal("Endpoint+LeaseDir accepted")
	}
}

// BenchmarkNetworkVsFileLeasing measures the coordination overhead each
// multi-process transport adds to a full sweep: file-based lease
// directories versus the HTTP coordinator on loopback. Evaluation cost is
// left at its natural (fast) level so the transport dominates. Run with
// `go test -bench NetworkVsFile -run ^$`.
func BenchmarkNetworkVsFileLeasing(b *testing.B) {
	in := testInputs(b)
	space := testSpace(in)
	run := func(b *testing.B, opts Options) {
		opts.Workers, opts.Leases, opts.BatchSize = 3, 12, 4
		opts.Heartbeat = 10 * time.Millisecond
		if _, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, opts); err != nil {
			b.Fatalf("coordinated run: %v", err)
		}
	}
	b.Run("file", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, Options{LeaseDir: b.TempDir(), Worker: "bench"})
		}
	})
	b.Run("network", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			url := startCoordinator(b, b.TempDir(), 500*time.Millisecond)
			run(b, Options{Endpoint: url, Worker: "bench"})
		}
	})
}

// TestRunRejectsTightLiveness: Run refuses a lease TTL under the safety
// floor instead of letting live workers be stolen from at runtime.
func TestRunRejectsTightLiveness(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	_, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Workers: 2, LeaseDir: t.TempDir(), Heartbeat: 50 * time.Millisecond, Expiry: 100 * time.Millisecond})
	if !errors.Is(err, ErrLivenessConfig) {
		t.Fatalf("want ErrLivenessConfig for TTL 2× heartbeat, got %v", err)
	}
}
