package coordinator

// Transport-oblivious workers. The claim/heartbeat/complete loop a worker
// runs is identical whether leases live in a shared directory or behind an
// HTTP coordinator; leaseSource abstracts exactly that seam, so runWorker
// (coordinator.go) is written once and chaos tests exercising one transport
// exercise the scheduling logic of both.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/sweep"
)

// assignment is one claimed lease as a worker sees it: which slice, whether
// it was stolen, and where its resumable checkpoint lives on the local
// filesystem (the shared directory in file mode, a private staging
// directory in network mode).
type assignment struct {
	lease  int
	stolen bool
	ckpt   string
	t      *ticket // file-mode claim ticket; nil over the network
}

// leaseSource is the transport seam: how a worker claims, keeps alive, and
// completes leases.
type leaseSource interface {
	// Claim returns the next assignment, or nil with done reporting whether
	// the sweep is finished (true) or merely has every remaining lease
	// healthily running elsewhere (false — poll again after Poll()).
	Claim(ctx context.Context, owner string) (*assignment, bool, error)
	// Watch keeps the assignment alive — and, transport permitting, ships
	// progress — until the returned stop function is called.
	Watch(ctx context.Context, a *assignment, owner string) (stop func())
	// Complete publishes the assignment as done; its checkpoint at a.ckpt
	// holds a final status for every design in the slice.
	Complete(ctx context.Context, a *assignment, owner string) error
	// Poll is how long a worker waits between claim attempts while every
	// remaining lease runs elsewhere.
	Poll() time.Duration
}

// fileSource adapts the lease-file board to leaseSource — the original
// shared-directory transport.
type fileSource struct{ b *board }

func (f fileSource) Claim(_ context.Context, owner string) (*assignment, bool, error) {
	t, done, err := f.b.claim(owner)
	if err != nil || t == nil {
		return nil, done, err
	}
	return &assignment{lease: t.lease, stolen: t.stolen, ckpt: f.b.checkpointPath(t.lease), t: t}, false, nil
}

func (f fileSource) Watch(_ context.Context, a *assignment, owner string) func() {
	return f.b.heartbeat(a.t, owner)
}

func (f fileSource) Complete(_ context.Context, a *assignment, owner string) error {
	return f.b.markDone(a.t, owner)
}

func (f fileSource) Poll() time.Duration { return f.b.beat }

// netSource claims leases from an HTTP coordinator. Per-lease checkpoints
// are staged in a private local directory: sweep.Run writes them exactly as
// in file mode, the heartbeat goroutine ships changed bytes to the
// coordinator, and Complete uploads the final state — so a worker's death
// loses at most one heartbeat interval of progress, same as file mode loses
// at most one checkpoint cadence.
type netSource struct {
	c    *Client
	dir  string
	beat time.Duration
	// reg re-registers the sweep when the coordinator answers
	// ErrNotRegistered — the recovery path after a coordinator restart that
	// lost its state directory.
	reg RegisterRequest
	// leases is the authoritative lease count, for checkpoint file naming.
	leases int
}

// ckptPath is lease li's staged checkpoint, named like the file-mode lease
// directory's for operator familiarity.
func (n *netSource) ckptPath(li int) string {
	return filepath.Join(n.dir, fmt.Sprintf("lease-%04d-of-%04d.ckpt.json", li+1, n.leases))
}

func (n *netSource) Claim(ctx context.Context, owner string) (*assignment, bool, error) {
	resp, err := n.c.Claim(ctx, ClaimRequest{Owner: owner})
	if errors.Is(err, ErrNotRegistered) {
		// The coordinator restarted without its state directory. Re-register
		// the sweep and try again; lease progress uploaded before the wipe
		// is gone, but determinism means re-evaluation converges to the
		// same bytes.
		if _, rerr := n.c.Register(ctx, n.reg); rerr != nil {
			return nil, false, fmt.Errorf("coordinator: re-registering after coordinator state loss: %w", rerr)
		}
		resp, err = n.c.Claim(ctx, ClaimRequest{Owner: owner})
	}
	if err != nil {
		return nil, false, err
	}
	if resp.Lease < 0 {
		return nil, resp.Done, nil
	}
	// Materialize the coordinator's stored checkpoint (the stolen-lease
	// resume path); clear any stale local file when it has none, so a
	// leftover from an earlier interrupted claim can't resurrect state the
	// coordinator never saw confirmed.
	ckpt := n.ckptPath(resp.Lease)
	if len(resp.Checkpoint) > 0 {
		if err := sweep.WriteFileAtomic(ckpt, resp.Checkpoint); err != nil {
			return nil, false, err
		}
	} else if err := os.Remove(ckpt); err != nil && !os.IsNotExist(err) {
		return nil, false, fmt.Errorf("coordinator: clearing stale lease %d checkpoint: %w", resp.Lease, err)
	}
	return &assignment{lease: resp.Lease, stolen: resp.Stolen, ckpt: ckpt}, false, nil
}

func (n *netSource) Watch(ctx context.Context, a *assignment, owner string) func() {
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(n.beat)
		defer tick.Stop()
		var uploaded []byte
		for {
			select {
			case <-quit:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				// Ship the local checkpoint when it changed since the last
				// upload, so worker death loses at most a beat of progress.
				var payload []byte
				if data, err := os.ReadFile(a.ckpt); err == nil && !bytes.Equal(data, uploaded) {
					payload = data
				}
				err := n.c.Heartbeat(ctx, HeartbeatRequest{Owner: owner, Lease: a.lease, Checkpoint: payload})
				if err == nil && payload != nil {
					uploaded = payload
				}
				// A failed beat is dropped, as in file mode: at worst the
				// lease expires and is stolen, and theft is benign.
			}
		}
	}()
	return func() { close(quit); <-done }
}

func (n *netSource) Complete(ctx context.Context, a *assignment, owner string) error {
	data, err := os.ReadFile(a.ckpt)
	if err != nil {
		return fmt.Errorf("coordinator: reading lease %d checkpoint for upload: %w", a.lease, err)
	}
	if err := n.c.Complete(ctx, CompleteRequest{Owner: owner, Lease: a.lease, Checkpoint: data}); err != nil {
		return err
	}
	// Best-effort: the coordinator holds the final bytes now.
	_ = os.Remove(a.ckpt)
	return nil
}

func (n *netSource) Poll() time.Duration { return n.beat }

// runNetwork runs this process's worker pool against an HTTP coordinator:
// register the sweep, adopt the coordinator's authoritative lease count,
// loop claim/evaluate/complete, then fetch the merged checkpoint and
// restore the Result from it — the network sibling of runLeaseDir.
func runNetwork(ctx context.Context, in *explorer.Inputs, opts Options, job *sweep.Job) (sweep.Result, error) {
	client := NewClient(opts.Endpoint, ClientOptions{Transport: opts.Transport})
	reg := RegisterRequest{
		Owner:       opts.Worker,
		SpaceHash:   job.SpaceHash(),
		Site:        in.Site.ID,
		Strategy:    int(job.Strategy),
		Designs:     len(job.Designs),
		Leases:      opts.Leases,
		HeartbeatMS: opts.Heartbeat.Milliseconds(),
	}
	regResp, err := client.Register(ctx, reg)
	if err != nil {
		return sweep.Result{}, err
	}

	staging, err := os.MkdirTemp("", "carbonexplorer-net-")
	if err != nil {
		return sweep.Result{}, fmt.Errorf("coordinator: creating checkpoint staging directory: %w", err)
	}
	defer os.RemoveAll(staging)

	if regResp.Complete {
		// The coordinator already finished — and archived — this exact job
		// (a refinement round a faster fleet completed and moved past).
		// Fetch the archived fold and restore the Result locally; nothing
		// is left to evaluate.
		data, err := client.MergedCheckpointFor(ctx, reg.SpaceHash)
		if err != nil {
			return sweep.Result{}, err
		}
		ckpt := opts.Checkpoint
		if ckpt == "" {
			ckpt = MergedCheckpointPath(staging)
		}
		if err := sweep.WriteFileAtomic(ckpt, data); err != nil {
			return sweep.Result{}, err
		}
		res, err := job.Run(ctx, in, sweep.Options{
			BatchSize: opts.BatchSize,
			Retries:   opts.Retries,
			Checkpoint: sweep.CheckpointOptions{
				Path:   ckpt,
				Every:  opts.CheckpointEvery,
				Resume: true,
			},
		})
		return res, err
	}

	// The coordinator's lease count wins; every registered worker re-plans
	// with it so all fleets agree on the partition.
	plans, err := sweep.PlanShards(len(job.Designs), regResp.Leases)
	if err != nil {
		return sweep.Result{}, err
	}
	if opts.Workers > regResp.Leases {
		opts.Workers = regResp.Leases
	}
	src := &netSource{c: client, dir: staging, beat: opts.Heartbeat, reg: reg, leases: regResp.Leases}

	progress := make([]sweep.WorkerProgress, opts.Workers)
	maxResident := make([]int, opts.Workers)
	workerErrs := make([]error, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerErrs[w] = runWorker(ctx, src, in, opts, job, plans, w, &progress[w], &maxResident[w])
		}(w)
	}
	wg.Wait()
	for _, werr := range workerErrs {
		if werr != nil && !isCtxErr(werr) {
			return sweep.Result{}, werr
		}
	}

	// Fetch the coordinator's merged fold. Under a cancelled ctx the fetch
	// gets its own short deadline so the partial fold still comes home for
	// the caller to resume later.
	fctx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(context.WithoutCancel(ctx), 30*time.Second)
		defer cancel()
	}
	data, err := client.MergedCheckpoint(fctx)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return sweep.Result{}, cerr
		}
		return sweep.Result{}, err
	}
	ckpt := opts.Checkpoint
	if ckpt == "" {
		ckpt = MergedCheckpointPath(staging)
	}
	if err := sweep.WriteFileAtomic(ckpt, data); err != nil {
		return sweep.Result{}, err
	}

	// Restore the merged checkpoint into a Result, with the same accounting
	// as runLeaseDir: the restore reports every done design as Restored;
	// designs this process's workers evaluated were not.
	res, err := job.Run(ctx, in, sweep.Options{
		BatchSize: opts.BatchSize,
		Retries:   opts.Retries,
		Checkpoint: sweep.CheckpointOptions{
			Path:   ckpt,
			Every:  opts.CheckpointEvery,
			Resume: true,
		},
	})
	res.Workers = progress
	fresh := 0
	for w := range progress {
		fresh += progress[w].Evaluated
		if maxResident[w] > res.Report.MaxResident {
			res.Report.MaxResident = maxResident[w]
		}
	}
	if restored := res.Report.Evaluated - fresh; restored >= 0 {
		res.Report.Restored = restored
	} else {
		res.Report.Restored = 0
	}
	res.Resumed = res.Report.Restored > 0
	return res, err
}
