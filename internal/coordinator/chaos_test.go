package coordinator

// Chaos tests for the work-stealing coordinator: killed workers, stalled
// heartbeats, racing duplicate owners, and transient evaluation faults must
// all converge to the byte-identical optimum and Pareto frontier of an
// uninterrupted single-process sweep — the acceptance criterion the
// determinism design promises.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/faultinject"
	"carbonexplorer/internal/sweep"
)

// chaosTiming keeps liveness windows short so theft happens in
// milliseconds instead of the production-default tens of seconds.
func chaosTiming(o Options) Options {
	o.Heartbeat = 10 * time.Millisecond
	o.Expiry = 40 * time.Millisecond
	return o
}

// TestChaosKilledWorkerLeaseStolen is the acceptance scenario: a worker
// dies mid-lease (simulated by an interrupted sweep that left a running
// lease file with a stale heartbeat and a partial per-lease checkpoint).
// The coordinator must steal the lease, resume — not re-evaluate — the
// dead worker's completed designs, and converge to the exact
// single-process optimum and frontier.
func TestChaosKilledWorkerLeaseStolen(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)
	n := len(space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW()))

	dir := t.TempDir()
	const leases = 10
	plans, err := sweep.PlanShards(n, leases)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	b, err := newBoard(dir, plans, 10*time.Millisecond, 40*time.Millisecond)
	if err != nil {
		t.Fatalf("newBoard: %v", err)
	}

	// The ghost worker: claim lease 0, evaluate part of it (checkpointing
	// every design), then die — the crash-loop idiom from the sweep chaos
	// tests, cancelling from inside the EvalHook.
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	ghostEvals := 0
	ghost := *in
	ghost.EvalHook = func(explorer.Design) error {
		mu.Lock()
		defer mu.Unlock()
		ghostEvals++
		if ghostEvals == 4 {
			cancel()
		}
		return nil
	}
	partial, err := sweep.Run(ctx, &ghost, space, explorer.RenewablesBatteryCAS, sweep.Options{
		BatchSize:  1,
		Shard:      plans[0].Shard,
		Checkpoint: sweep.CheckpointOptions{Path: b.checkpointPath(0), Every: 1},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ghost run: want context.Canceled, got %v", err)
	}
	ghostDone := partial.Report.Evaluated
	if ghostDone == 0 || ghostDone >= plans[0].Size() {
		t.Fatalf("ghost completed %d of %d designs — need a strict partial lease", ghostDone, plans[0].Size())
	}
	// The kill left the lease claimed, running, and (by now) expired.
	if err := b.write(0, leaseFile{Owner: "ghost/w0", State: leaseRunning, HeartbeatMS: 1}); err != nil {
		t.Fatalf("writing ghost lease: %v", err)
	}

	// The surviving fleet coordinates over the same directory and must
	// steal the ghost's lease. Count fresh evaluations to prove the
	// ghost's completed designs were restored, not redone.
	var evals sync.Map
	hooked := *in
	hooked.EvalHook = func(d explorer.Design) error {
		c, _ := evals.LoadOrStore(d, new(int))
		mu.Lock()
		*(c.(*int))++
		mu.Unlock()
		return nil
	}
	got, err := Run(context.Background(), &hooked, space, explorer.RenewablesBatteryCAS,
		chaosTiming(Options{Workers: 3, Leases: leases, BatchSize: 2, LeaseDir: dir, Worker: "fleet"}))
	if err != nil {
		t.Fatalf("coordinated run: %v", err)
	}
	requireSameResult(t, want, got)

	stolen, fresh := 0, 0
	for _, wp := range got.Workers {
		stolen += wp.Stolen
		fresh += wp.Evaluated
	}
	if stolen == 0 {
		t.Fatal("no worker stole the ghost's expired lease")
	}
	if fresh != n-ghostDone {
		t.Fatalf("fleet evaluated %d designs fresh, want %d (= %d total − %d restored from the ghost's checkpoint)",
			fresh, n-ghostDone, n, ghostDone)
	}
	total := 0
	evals.Range(func(_, c any) bool {
		mu.Lock()
		total += *(c.(*int))
		mu.Unlock()
		return true
	})
	if total != fresh {
		t.Fatalf("per-design evaluation count %d disagrees with worker progress %d — some design was evaluated twice", total, fresh)
	}
	if !got.Resumed || got.Report.Restored != ghostDone {
		t.Fatalf("result restored %d designs (resumed=%v), want %d from the ghost", got.Report.Restored, got.Resumed, ghostDone)
	}
}

// TestChaosStalledHeartbeat: a lease whose owner stopped heartbeating — but
// never wrote a checkpoint — is stolen and evaluated from scratch, and a
// lease recorded by a corrupt claim file is likewise reclaimed rather than
// wedging the sweep.
func TestChaosStalledHeartbeat(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)
	n := len(space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW()))

	dir := t.TempDir()
	const leases = 8
	plans, err := sweep.PlanShards(n, leases)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	b, err := newBoard(dir, plans, 10*time.Millisecond, 40*time.Millisecond)
	if err != nil {
		t.Fatalf("newBoard: %v", err)
	}
	// Lease 2: claimed long ago, heartbeat never refreshed, no progress.
	if err := b.write(2, leaseFile{Owner: "wedged/w0", State: leaseRunning, HeartbeatMS: 1}); err != nil {
		t.Fatalf("writing stalled lease: %v", err)
	}
	// Lease 5: a torn or garbage claim file.
	if err := sweep.WriteFileAtomic(b.leasePath(5), []byte("{не json")); err != nil {
		t.Fatalf("writing corrupt lease: %v", err)
	}

	got, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		chaosTiming(Options{Workers: 2, Leases: leases, BatchSize: 4, LeaseDir: dir, Worker: "fleet"}))
	if err != nil {
		t.Fatalf("coordinated run: %v", err)
	}
	requireSameResult(t, want, got)
	stolen := 0
	for _, wp := range got.Workers {
		stolen += wp.Stolen
	}
	if stolen < 2 {
		t.Fatalf("want both the stalled and the corrupt lease stolen, got %d thefts", stolen)
	}
}

// TestChaosDuplicateOwnerBenign: the claim race the design document calls
// benign, exercised for real — a stalled owner wakes up and keeps sweeping
// its lease while the coordinator's thief is already re-running it. Both
// write the same per-lease checkpoint path concurrently (atomic,
// sequence-qualified temp files make the racing saves safe) and the merged
// result is still byte-identical to the single-process sweep.
func TestChaosDuplicateOwnerBenign(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)
	n := len(space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW()))

	dir := t.TempDir()
	const leases = 6
	plans, err := sweep.PlanShards(n, leases)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	b, err := newBoard(dir, plans, 10*time.Millisecond, 40*time.Millisecond)
	if err != nil {
		t.Fatalf("newBoard: %v", err)
	}
	if err := b.write(0, leaseFile{Owner: "stalled/w0", State: leaseRunning, HeartbeatMS: 1}); err != nil {
		t.Fatalf("writing stalled lease: %v", err)
	}

	// The stalled owner wakes up mid-theft and finishes its lease anyway,
	// racing the coordinator on the same checkpoint file.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := sweep.Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, sweep.Options{
			BatchSize:  2,
			Shard:      plans[0].Shard,
			Checkpoint: sweep.CheckpointOptions{Path: b.checkpointPath(0), Every: 1, Resume: true},
		})
		if err != nil {
			t.Errorf("woken owner's sweep: %v", err)
		}
	}()

	got, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		chaosTiming(Options{Workers: 2, Leases: leases, BatchSize: 2, LeaseDir: dir, Worker: "fleet"}))
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinated run: %v", err)
	}
	requireSameResult(t, want, got)
}

// TestChaosTransientFaults: injected first-attempt failures across a
// coordinated lease-directory run are retried within their leases and the
// fleet still converges to the clean single-process result.
func TestChaosTransientFaults(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)

	hooked := *in
	hooked.EvalHook = faultinject.TransientFaults(77, 0.15)
	got, err := Run(context.Background(), &hooked, space, explorer.RenewablesBatteryCAS,
		chaosTiming(Options{Workers: 3, Leases: 9, BatchSize: 4, LeaseDir: t.TempDir(), Worker: "fleet"}))
	if err != nil {
		t.Fatalf("coordinated run with transient faults: %v", err)
	}
	if got.Report.Retried == 0 || got.Report.Recovered == 0 {
		t.Fatalf("no retries recorded — injection did not fire: %+v", got.Report)
	}
	if len(got.Report.Failures) != 0 {
		t.Fatalf("transient faults left %d permanent failures", len(got.Report.Failures))
	}
	requireSameResult(t, want, got)
}

// slowWorkerInputs builds the heterogeneous-fleet fixture: every worker
// evaluates with a fixed per-design delay, and worker `slow` is 4× slower.
func slowWorkerInputs(in *explorer.Inputs, slow int, delay time.Duration) func(int) *explorer.Inputs {
	return func(w int) *explorer.Inputs {
		d := delay
		if w == slow {
			d = 4 * delay
		}
		hooked := *in
		hooked.EvalHook = func(explorer.Design) error {
			time.Sleep(d)
			return nil
		}
		return &hooked
	}
}

// coordinatedWallClock times one in-process coordinated sweep with the
// given lease count over a fleet whose last worker is slowed 4×.
func coordinatedWallClock(t testing.TB, in *explorer.Inputs, space explorer.Space, workers, leases int, delay time.Duration) (time.Duration, sweep.Result) {
	start := time.Now()
	res, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, Options{
		Workers:   workers,
		Leases:    leases,
		BatchSize: 1, // serialize each worker: one design at a time, as on a one-core machine
		InputsFor: slowWorkerInputs(in, workers-1, delay),
	})
	if err != nil {
		t.Fatalf("coordinated run: %v", err)
	}
	return time.Since(start), res
}

// TestDynamicBeatsStaticUnderSlowWorker is the scheduling acceptance
// criterion: with one of three workers slowed 4×, dynamic leasing (many
// small leases, stealing) must beat the static i/N partition (leases ==
// workers, exactly the `-shard i/N` split) on wall-clock, because fast
// workers absorb the slow worker's backlog instead of idling.
func TestDynamicBeatsStaticUnderSlowWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison skipped in -short mode")
	}
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)
	const workers = 3
	const delay = 2 * time.Millisecond

	static, resStatic := coordinatedWallClock(t, in, space, workers, workers, delay)
	dynamic, resDynamic := coordinatedWallClock(t, in, space, workers, 8*workers, delay)
	requireSameResult(t, want, resStatic)
	requireSameResult(t, want, resDynamic)

	t.Logf("static %d-lease partition: %v; dynamic %d-lease stealing: %v (%.2fx)",
		workers, static, 8*workers, dynamic, float64(static)/float64(dynamic))
	if dynamic >= static {
		t.Fatalf("dynamic leasing (%v) did not beat the static partition (%v) with a 4x-slow worker", dynamic, static)
	}
}

// BenchmarkDynamicVsStaticSlowWorker reports the same comparison as
// benchmark output: run with `go test -bench DynamicVsStatic -run ^$`.
func BenchmarkDynamicVsStaticSlowWorker(b *testing.B) {
	in := testInputs(b)
	space := testSpace(in)
	const workers = 3
	const delay = time.Millisecond
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coordinatedWallClock(b, in, space, workers, workers, delay)
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coordinatedWallClock(b, in, space, workers, 8*workers, delay)
		}
	})
}
