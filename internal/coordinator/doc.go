// Package coordinator schedules a design-space sweep across workers with
// work stealing, so heterogeneous or flaky fleets do not stall on their
// slowest member.
//
// The static `optimize -shard i/N` partition assigns each worker one fixed
// slice; a worker that is 4× slower — or dies — makes its slice the
// sweep's critical path. The coordinator instead splits the enumeration
// into many small leases (far more leases than workers, via
// sweep.PlanShards) and hands them out dynamically: a fast worker that
// drains its lease simply claims the next one, so the wall-clock tracks
// aggregate throughput instead of the slowest slice.
//
// Two modes share one entry point, Run:
//
//   - In-process (Options.LeaseDir empty): a pool of goroutines pulls
//     lease indices from a channel, runs sweep.Run over each lease's shard
//     slice, and the per-lease Results fold in lease order through
//     sweep.MergeResults — reproducing the single-process optimum,
//     frontier, and failure ordering exactly.
//
//   - Lease directory (Options.LeaseDir set): workers — possibly in
//     different processes started independently — coordinate through
//     atomic lease files in the directory. A worker claims a lease by
//     writing lease-i-of-L.json (owner + heartbeat timestamp, written
//     through sweep.WriteFileAtomic so a crash never leaves a torn claim),
//     heartbeats while evaluating, checkpoints the lease's slice to
//     lease-i-of-L.ckpt.json, and marks the lease done. A running lease
//     whose heartbeat has gone stale past Options.Expiry is stolen: the
//     thief resumes the dead owner's per-lease checkpoint, so completed
//     designs are restored, not re-evaluated. When every lease is done the
//     checkpoints fold through sweep.MergeCheckpoints into one resumable
//     merged checkpoint, and the Result is restored from it.
//
// Determinism is inherited, not re-proven: evaluation is deterministic,
// per-lease checkpoints only ever move designs forward, and both merge
// paths fold in ascending slice order — so a coordinated sweep (even one
// with killed workers, stolen leases, and duplicate evaluations from a
// benign claim race) converges to the byte-identical optimum and Pareto
// frontier of an uninterrupted single-process sweep. The chaos tests in
// this package prove exactly that.
package coordinator
