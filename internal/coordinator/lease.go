package coordinator

// Lease files are the multi-process coordination substrate. All wall-clock
// reads live in this file — it is the one detrand-exempt file of the
// package, because heartbeat liveness is inherently wall-clock — and every
// write goes through sweep.WriteFileAtomic, so a crash mid-claim or
// mid-heartbeat can never leave a torn lease behind.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"carbonexplorer/internal/sweep"
)

// leaseVersion is the on-disk lease schema version.
const leaseVersion = 1

// Lease states. A lease file exists only once some worker has claimed the
// slice: running while the owner heartbeats, done once the slice's
// checkpoint holds a final status for every design in it.
const (
	leaseRunning = "running"
	leaseDone    = "done"
)

// leaseFile is the JSON claim record for one lease.
type leaseFile struct {
	Version int    `json:"version"`
	Lease   string `json:"lease"` // the shard label, "i/L"
	Owner   string `json:"owner"`
	State   string `json:"state"` // leaseRunning or leaseDone
	// HeartbeatMS is the owner's last liveness signal in Unix
	// milliseconds. A running lease whose heartbeat is staler than the
	// board's expiry is up for theft.
	HeartbeatMS int64 `json:"heartbeat_unix_ms"`
	// Stolen counts how many times ownership was reclaimed from an
	// expired owner.
	Stolen int `json:"stolen"`
}

// ticket is one successful claim: which lease, and its theft history.
type ticket struct {
	lease  int  // index into the board's plans
	stolen bool // this claim reclaimed an expired or corrupt lease
	count  int  // cumulative theft count, preserved in subsequent writes
}

// board mediates lease claims for one coordinated run. In-process claims
// serialize on mu; cross-process claims go through the atomic lease files
// themselves. A lost cross-process race (two workers both believing they
// own a lease) is benign by design: evaluation is deterministic and
// per-lease checkpoints only move designs forward, so duplicate evaluation
// merges to the same bytes.
type board struct {
	dir    string
	plans  []sweep.ShardPlan
	beat   time.Duration
	expiry time.Duration

	mu sync.Mutex
}

// newBoard creates the lease directory (if needed) and the claim mediator.
func newBoard(dir string, plans []sweep.ShardPlan, beat, expiry time.Duration) (*board, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("coordinator: creating lease directory: %w", err)
	}
	return &board{dir: dir, plans: plans, beat: beat, expiry: expiry}, nil
}

// leasePath is the claim file for lease li; checkpointPath its slice's
// sweep checkpoint. Both are derived from the lease label, so independently
// started processes agree on them without any handshake.
func (b *board) leasePath(li int) string {
	return filepath.Join(b.dir, fmt.Sprintf("lease-%04d-of-%04d.json", li+1, len(b.plans)))
}

func (b *board) checkpointPath(li int) string {
	return filepath.Join(b.dir, fmt.Sprintf("lease-%04d-of-%04d.ckpt.json", li+1, len(b.plans)))
}

// read loads lease li's claim file. A missing file returns (nil, false);
// an unreadable or undecodable file returns corrupt=true — the claim it
// recorded is unknowable, which the claim path treats like an expired
// owner rather than wedging the sweep.
func (b *board) read(li int) (lf *leaseFile, corrupt bool) {
	data, err := os.ReadFile(b.leasePath(li))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false
		}
		return nil, true
	}
	var f leaseFile
	if err := json.Unmarshal(data, &f); err != nil || f.Version != leaseVersion {
		return nil, true
	}
	return &f, false
}

// write atomically publishes lease li's claim record.
func (b *board) write(li int, lf leaseFile) error {
	lf.Version = leaseVersion
	lf.Lease = b.plans[li].Shard.String()
	data, err := json.MarshalIndent(&lf, "", " ")
	if err != nil {
		return fmt.Errorf("coordinator: encoding lease: %w", err)
	}
	return sweep.WriteFileAtomic(b.leasePath(li), append(data, '\n'))
}

// claim scans leases in ascending order and takes the first claimable one:
// never claimed, recorded by a corrupt file, or running with a heartbeat
// staler than the expiry (a dead or wedged owner — its lease is stolen and
// its checkpoint resumed by the thief). It returns a nil ticket with
// done=false when every unclaimed lease is healthily running elsewhere
// (poll again later), and done=true when every lease is done.
func (b *board) claim(owner string) (t *ticket, done bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now().UnixMilli()
	waiting := false
	for li := range b.plans {
		lf, corrupt := b.read(li)
		var tk ticket
		switch {
		case lf == nil && !corrupt:
			tk = ticket{lease: li}
		case corrupt:
			tk = ticket{lease: li, stolen: true, count: 1}
		case lf.State == leaseDone:
			continue
		case now-lf.HeartbeatMS > b.expiry.Milliseconds():
			tk = ticket{lease: li, stolen: true, count: lf.Stolen + 1}
		default:
			waiting = true
			continue
		}
		if err := b.write(li, leaseFile{Owner: owner, State: leaseRunning, HeartbeatMS: now, Stolen: tk.count}); err != nil {
			return nil, false, err
		}
		return &tk, false, nil
	}
	return nil, !waiting, nil
}

// heartbeat refreshes the claimed lease's liveness timestamp every beat
// until the returned stop function is called.
func (b *board) heartbeat(t *ticket, owner string) (stop func()) {
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(b.beat)
		defer tick.Stop()
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				b.mu.Lock()
				// A missed beat is harmless — at worst it invites theft,
				// and theft is benign — so the write error is dropped.
				_ = b.write(t.lease, leaseFile{Owner: owner, State: leaseRunning, HeartbeatMS: time.Now().UnixMilli(), Stolen: t.count})
				b.mu.Unlock()
			}
		}
	}()
	return func() { close(quit); <-done }
}

// markDone publishes the lease as complete: its checkpoint now holds a
// final status for every design in the slice.
func (b *board) markDone(t *ticket, owner string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.write(t.lease, leaseFile{Owner: owner, State: leaseDone, HeartbeatMS: time.Now().UnixMilli(), Stolen: t.count})
}

// refresh re-stamps lease li's liveness on behalf of owner — the
// server-side heartbeat for network workers, which carry no ticket across
// requests. It preserves the recorded theft count, re-asserts ownership
// exactly as the in-process heartbeat goroutine does (the benign
// duplicate-owner race of the file protocol), and never downgrades a lease
// already marked done.
func (b *board) refresh(li int, owner string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	count := 0
	if lf, _ := b.read(li); lf != nil {
		if lf.State == leaseDone {
			return nil
		}
		count = lf.Stolen
	}
	return b.write(li, leaseFile{Owner: owner, State: leaseRunning, HeartbeatMS: time.Now().UnixMilli(), Stolen: count})
}

// finish is markDone for network workers identified only by lease index and
// owner label.
func (b *board) finish(li int, owner string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	count := 0
	if lf, _ := b.read(li); lf != nil {
		count = lf.Stolen
	}
	return b.write(li, leaseFile{Owner: owner, State: leaseDone, HeartbeatMS: time.Now().UnixMilli(), Stolen: count})
}

// Externally visible lease states reported by snapshot (and hence the
// status endpoint). leaseStateExpired is a running lease whose heartbeat
// went stale — the window during which a steal is in progress.
const (
	leaseStatePending = "pending"
	leaseStateRunning = "running"
	leaseStateExpired = "expired"
	leaseStateCorrupt = "corrupt"
	leaseStateDone    = "done"
)

// leaseSnapshot is one lease's externally visible state at an instant.
type leaseSnapshot struct {
	state  string
	owner  string
	stolen int
	ageMS  int64 // heartbeat age; meaningful for running/expired leases
}

// snapshot reads lease li for status reporting without mutating anything.
func (b *board) snapshot(li int) leaseSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	lf, corrupt := b.read(li)
	switch {
	case corrupt:
		return leaseSnapshot{state: leaseStateCorrupt}
	case lf == nil:
		return leaseSnapshot{state: leaseStatePending}
	case lf.State == leaseDone:
		return leaseSnapshot{state: leaseStateDone, owner: lf.Owner, stolen: lf.Stolen}
	}
	age := time.Now().UnixMilli() - lf.HeartbeatMS
	state := leaseStateRunning
	if age > b.expiry.Milliseconds() {
		state = leaseStateExpired
	}
	return leaseSnapshot{state: state, owner: lf.Owner, stolen: lf.Stolen, ageMS: age}
}

// existingCheckpoints lists, in ascending lease order, the per-lease
// checkpoint files that exist on disk — all of them after a clean finish,
// the completed-or-interrupted subset after a cancellation.
func (b *board) existingCheckpoints() []string {
	var out []string
	for li := range b.plans {
		if _, err := os.Stat(b.checkpointPath(li)); err == nil {
			out = append(out, b.checkpointPath(li))
		}
	}
	return out
}

// reset removes every lease and per-lease checkpoint file unconditionally —
// the generation-advance path, where the merged fold has already been
// archived and a new sweep is about to reuse the directory. Unlike cleanup
// it ignores owners: the finished generation's claims are history, whoever
// held them.
func (b *board) reset() {
	for li := range b.plans {
		_ = os.Remove(b.leasePath(li))
		_ = os.Remove(b.checkpointPath(li))
	}
}

// cleanup removes the lease and per-lease checkpoint files once the merged
// checkpoint is durable — but only when every lease was finished by this
// process's workers (owner labels under ownerPrefix). If any lease names a
// foreign owner, another process coordinated alongside us and may be about
// to fold the same files, so they are left in place for it (and for
// operator inspection).
func (b *board) cleanup(ownerPrefix string) {
	for li := range b.plans {
		lf, _ := b.read(li)
		if lf == nil || !strings.HasPrefix(lf.Owner, ownerPrefix) {
			return
		}
	}
	for li := range b.plans {
		// Best-effort: the merged checkpoint is already durable, and a
		// leftover file only costs the next run a stat.
		_ = os.Remove(b.leasePath(li))
		_ = os.Remove(b.checkpointPath(li))
	}
}
