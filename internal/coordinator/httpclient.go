package coordinator

// HTTP transport, client side. Every call wraps a POST/GET in a
// per-attempt timeout and a retry loop with deterministic jittered
// exponential backoff: transport errors and 5xx responses retry (the
// coordinator may be mid-restart — riding through a short outage is the
// whole point), 4xx responses never do (the server decoded the request and
// said no; repeating it cannot help). Jitter draws from sweep.BackoffDelay
// seeded by the endpoint URL and a per-call counter, never the global
// random source, so a chaos run's retry schedule is reproducible.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"carbonexplorer/internal/sweep"
)

// ClientOptions tunes a coordinator HTTP client.
type ClientOptions struct {
	// Timeout bounds each individual request attempt (default 5s).
	Timeout time.Duration
	// Attempts is the number of tries per call, first included (default 8:
	// with the default backoff the retry schedule spans several seconds,
	// comfortably riding through a coordinator restart).
	Attempts int
	// Backoff is the base delay before attempt 2; attempt k waits roughly
	// Backoff << (k-2), jittered (default 50ms).
	Backoff time.Duration
	// Transport, when non-nil, replaces http.DefaultTransport — the hook
	// chaos tests use to inject network faults.
	Transport http.RoundTripper
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 8
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	return o
}

// Client speaks the coordinator HTTP protocol. It is safe for concurrent
// use by multiple workers.
type Client struct {
	base string
	opts ClientOptions
	hc   *http.Client
	seed uint64
	// calls numbers calls for backoff jitter decorrelation: concurrent
	// workers retrying the same endpoint spread out instead of stampeding
	// in lockstep.
	calls atomic.Uint64
}

// NewClient returns a client for the coordinator at base (e.g.
// "http://host:8080"); a trailing slash is tolerated.
func NewClient(base string, opts ClientOptions) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	opts = opts.withDefaults()
	h := fnv.New64a()
	_, _ = h.Write([]byte(base))
	return &Client{
		base: base,
		opts: opts,
		hc:   &http.Client{Transport: opts.Transport},
		seed: h.Sum64(),
	}
}

// Register announces the worker's sweep; see Service.Register.
func (c *Client) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.call(ctx, "POST", "/v1/register", req, &resp)
	return resp, err
}

// Claim asks for the next lease; see Service.Claim.
func (c *Client) Claim(ctx context.Context, req ClaimRequest) (ClaimResponse, error) {
	var resp ClaimResponse
	err := c.call(ctx, "POST", "/v1/claim", req, &resp)
	return resp, err
}

// Heartbeat refreshes a lease and optionally uploads progress; see
// Service.Heartbeat.
func (c *Client) Heartbeat(ctx context.Context, req HeartbeatRequest) error {
	return c.call(ctx, "POST", "/v1/heartbeat", req, &struct{}{})
}

// Complete publishes a finished lease; see Service.Complete.
func (c *Client) Complete(ctx context.Context, req CompleteRequest) error {
	return c.call(ctx, "POST", "/v1/complete", req, &struct{}{})
}

// Status fetches the coordinator's fleet-wide progress report.
func (c *Client) Status(ctx context.Context) (StatusResponse, error) {
	var resp StatusResponse
	err := c.call(ctx, "GET", "/v1/status", nil, &resp)
	return resp, err
}

// MergedCheckpoint fetches the coordinator's merged sweep checkpoint bytes.
func (c *Client) MergedCheckpoint(ctx context.Context) ([]byte, error) {
	var raw json.RawMessage
	if err := c.call(ctx, "GET", "/v1/checkpoint", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// MergedCheckpointFor fetches the merged checkpoint for a specific space
// hash — the current generation's, or an archived one the coordinator
// finished earlier (the lagging-fleet catch-up path of adaptive sweeps).
func (c *Client) MergedCheckpointFor(ctx context.Context, hash string) ([]byte, error) {
	var raw json.RawMessage
	if err := c.call(ctx, "GET", "/v1/checkpoint?hash="+url.QueryEscape(hash), nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// call runs one protocol request with retries. A 2xx body decodes into
// out; a 4xx body decodes into a wire Error and maps back to the service's
// sentinel errors without retrying; anything else — transport failure,
// timeout, 5xx — retries up to the attempt budget with jittered
// exponential backoff.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("coordinator: encoding %s request: %w", path, err)
		}
	}
	seed := c.seed ^ c.calls.Add(1)
	var lastErr error
	for attempt := 1; attempt <= c.opts.Attempts; attempt++ {
		if attempt > 1 {
			d := sweep.BackoffDelay(seed, attempt-1, c.opts.Backoff, 100*c.opts.Backoff)
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		retry, err := c.attempt(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		if !retry {
			return err
		}
		lastErr = err
		if ctx.Err() != nil {
			return fmt.Errorf("coordinator: %s %s: %w (last error: %w)", method, path, ctx.Err(), lastErr)
		}
	}
	return fmt.Errorf("coordinator: %s %s failed after %d attempts: %w", method, path, c.opts.Attempts, lastErr)
}

// attempt runs a single request. retry reports whether the failure class
// is worth another try.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) (retry bool, err error) {
	actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return false, fmt.Errorf("coordinator: building %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return true, fmt.Errorf("coordinator: %s %s: %w", method, path, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody))
	if err != nil {
		return true, fmt.Errorf("coordinator: reading %s %s response: %w", method, path, err)
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if err := json.Unmarshal(data, out); err != nil {
			return false, fmt.Errorf("coordinator: decoding %s %s response: %w", method, path, err)
		}
		return false, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		var we Error
		if err := json.Unmarshal(data, &we); err != nil || we.Code == "" {
			return false, fmt.Errorf("coordinator: %s %s: HTTP %d: %s", method, path, resp.StatusCode, data)
		}
		return false, errorFromWire(we)
	default:
		return true, fmt.Errorf("coordinator: %s %s: HTTP %d: %s", method, path, resp.StatusCode, data)
	}
}
