package coordinator

// Service-level tests for the transport-agnostic lease protocol: the
// registration handshake, crash recovery from the state directory, and the
// edge cases every transport shares — a steal racing the original owner's
// final heartbeat, duplicate claims, completion after expiry, and status
// reporting during an active steal.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/sweep"
)

// testRegistration builds the registration request every service test uses.
func testRegistration(t *testing.T, in *explorer.Inputs, space explorer.Space, leases int) RegisterRequest {
	t.Helper()
	designs := space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW())
	return RegisterRequest{
		Owner:       "test",
		SpaceHash:   sweep.SpaceHash(in, explorer.RenewablesBatteryCAS, designs),
		Site:        in.Site.ID,
		Strategy:    int(explorer.RenewablesBatteryCAS),
		Designs:     len(designs),
		Leases:      leases,
		HeartbeatMS: 10,
	}
}

// newTestService opens a service with a short TTL over a temp state dir.
func newTestService(t *testing.T, dir string) *Service {
	t.Helper()
	svc, err := NewService(dir, ServiceOptions{Expiry: 60 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return svc
}

// leaseCheckpointBytes evaluates lease li's slice to completion and returns
// its checkpoint bytes — a worker's honest Complete payload.
func leaseCheckpointBytes(t *testing.T, in *explorer.Inputs, space explorer.Space, li, leases int) []byte {
	t.Helper()
	n := len(space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW()))
	plans, err := sweep.PlanShards(n, leases)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	path := filepath.Join(t.TempDir(), "lease.json")
	if _, err := sweep.Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, sweep.Options{
		Shard:      plans[li].Shard,
		Checkpoint: sweep.CheckpointOptions{Path: path, Every: 1},
	}); err != nil {
		t.Fatalf("evaluating lease %d: %v", li, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading lease checkpoint: %v", err)
	}
	return data
}

// expireLease backdates lease li's heartbeat so the next claim steals it.
func expireLease(t *testing.T, svc *Service, li int, owner string, stolen int) {
	t.Helper()
	if err := svc.b.write(li, leaseFile{Owner: owner, State: leaseRunning, HeartbeatMS: 1, Stolen: stolen}); err != nil {
		t.Fatalf("backdating lease %d: %v", li, err)
	}
}

func TestServiceRegisterIdempotentAndMismatch(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	svc := newTestService(t, t.TempDir())
	reg := testRegistration(t, in, space, 6)

	first, err := svc.Register(reg)
	if err != nil {
		t.Fatalf("first register: %v", err)
	}
	if first.Leases != 6 {
		t.Fatalf("first registrant proposed 6 leases, got %d", first.Leases)
	}
	// A second worker proposing a different lease count gets the first
	// registrant's authoritative geometry.
	other := reg
	other.Owner, other.Leases = "other", 40
	second, err := svc.Register(other)
	if err != nil {
		t.Fatalf("second register: %v", err)
	}
	if second.Leases != 6 {
		t.Fatalf("second registrant must adopt the registered 6 leases, got %d", second.Leases)
	}
	// A different sweep is rejected, not silently mixed.
	wrong := reg
	wrong.SpaceHash = "deadbeef"
	if _, err := svc.Register(wrong); !errors.Is(err, ErrSweepMismatch) {
		t.Fatalf("mismatched space hash: want ErrSweepMismatch, got %v", err)
	}
	// A heartbeat too close to the TTL is a config error, not a time bomb.
	tight := reg
	tight.HeartbeatMS = 50 // TTL 60ms < 3 × 50ms
	if _, err := svc.Register(tight); !errors.Is(err, ErrLivenessConfig) {
		t.Fatalf("tight heartbeat: want ErrLivenessConfig, got %v", err)
	}
}

func TestServicePinnedAndClampedLeases(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	reg := testRegistration(t, in, space, 0)

	// A pinned lease count overrides the registrant's proposal.
	svc, err := NewService(t.TempDir(), ServiceOptions{Expiry: 60 * time.Millisecond, Leases: 7})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	resp, err := svc.Register(reg)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if resp.Leases != 7 {
		t.Fatalf("pinned 7 leases, got %d", resp.Leases)
	}
	// A proposal beyond the design count clamps, as in file mode.
	svc2 := newTestService(t, t.TempDir())
	reg2 := reg
	reg2.Leases = 10 * reg.Designs
	resp2, err := svc2.Register(reg2)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if resp2.Leases != reg.Designs {
		t.Fatalf("lease count must clamp to %d designs, got %d", reg.Designs, resp2.Leases)
	}
}

func TestServiceRequiresRegistration(t *testing.T) {
	svc := newTestService(t, t.TempDir())
	if _, err := svc.Claim(ClaimRequest{Owner: "w"}); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("claim before register: want ErrNotRegistered, got %v", err)
	}
	if err := svc.Heartbeat(HeartbeatRequest{Owner: "w"}); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("heartbeat before register: want ErrNotRegistered, got %v", err)
	}
	if _, _, err := svc.MergedCheckpoint(); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("checkpoint before register: want ErrNotRegistered, got %v", err)
	}
	if st := svc.Status(); st.Registered {
		t.Fatal("status claims a registration exists")
	}
}

// TestServiceCrashRecovery is the coordinator-restart contract: a new
// Service over the same state directory resumes the registered sweep, keeps
// done leases done, and lets claims steal the dead fleet's expired leases.
func TestServiceCrashRecovery(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	dir := t.TempDir()
	svc := newTestService(t, dir)
	reg := testRegistration(t, in, space, 5)
	if _, err := svc.Register(reg); err != nil {
		t.Fatalf("register: %v", err)
	}
	// Lease 0 completes; lease 1 is claimed and mid-flight.
	c0, err := svc.Claim(ClaimRequest{Owner: "a"})
	if err != nil || c0.Lease != 0 {
		t.Fatalf("claim lease 0: %+v, %v", c0, err)
	}
	if err := svc.Complete(CompleteRequest{Owner: "a", Lease: 0, Checkpoint: leaseCheckpointBytes(t, in, space, 0, 5)}); err != nil {
		t.Fatalf("complete lease 0: %v", err)
	}
	if c1, err := svc.Claim(ClaimRequest{Owner: "a"}); err != nil || c1.Lease != 1 {
		t.Fatalf("claim lease 1: %+v, %v", c1, err)
	}

	// The coordinator dies and a fresh process opens the same directory.
	revived, err := NewService(dir, ServiceOptions{Expiry: 60 * time.Millisecond})
	if err != nil {
		t.Fatalf("reviving service: %v", err)
	}
	st := revived.Status()
	if !st.Registered || st.SpaceHash != reg.SpaceHash || st.LeaseCount != 5 {
		t.Fatalf("revived status lost the registration: %+v", st)
	}
	if st.Done != 1 {
		t.Fatalf("revived status shows %d done leases, want 1", st.Done)
	}
	// A worker re-registers idempotently and, once the orphaned lease 1
	// expires, steals it.
	if _, err := revived.Register(reg); err != nil {
		t.Fatalf("re-register after revival: %v", err)
	}
	expireLease(t, revived, 1, "a", 0)
	c, err := revived.Claim(ClaimRequest{Owner: "b"})
	if err != nil {
		t.Fatalf("claim after revival: %v", err)
	}
	if c.Lease != 1 || !c.Stolen {
		t.Fatalf("want stolen lease 1, got %+v", c)
	}
}

// TestServiceStealRacesFinalHeartbeat: the thief claims an expired lease
// while the original owner's last heartbeat is still in flight. The late
// heartbeat lands benignly — re-asserting the old owner — and the thief's
// completion still wins: progress is monotone, the lease ends done.
func TestServiceStealRacesFinalHeartbeat(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	svc := newTestService(t, t.TempDir())
	reg := testRegistration(t, in, space, 4)
	if _, err := svc.Register(reg); err != nil {
		t.Fatalf("register: %v", err)
	}
	if c, err := svc.Claim(ClaimRequest{Owner: "victim"}); err != nil || c.Lease != 0 {
		t.Fatalf("victim claim: %+v, %v", c, err)
	}
	expireLease(t, svc, 0, "victim", 0)
	thief, err := svc.Claim(ClaimRequest{Owner: "thief"})
	if err != nil || thief.Lease != 0 || !thief.Stolen {
		t.Fatalf("thief claim: %+v, %v", thief, err)
	}
	// The victim's delayed final heartbeat arrives mid-steal. It must not
	// error and must not regress anything — just benignly re-assert.
	if err := svc.Heartbeat(HeartbeatRequest{Owner: "victim", Lease: 0}); err != nil {
		t.Fatalf("victim's late heartbeat: %v", err)
	}
	if st := svc.Status().Leases[0]; st.State != leaseStateRunning || st.Owner != "victim" {
		t.Fatalf("after late heartbeat: %+v", st)
	}
	// The thief completes; the lease is done regardless of the race, and a
	// yet-later victim heartbeat cannot downgrade it.
	if err := svc.Complete(CompleteRequest{Owner: "thief", Lease: 0, Checkpoint: leaseCheckpointBytes(t, in, space, 0, 4)}); err != nil {
		t.Fatalf("thief complete: %v", err)
	}
	if err := svc.Heartbeat(HeartbeatRequest{Owner: "victim", Lease: 0}); err != nil {
		t.Fatalf("victim's post-completion heartbeat: %v", err)
	}
	if st := svc.Status().Leases[0]; st.State != leaseStateDone {
		t.Fatalf("lease downgraded from done by a stale heartbeat: %+v", st)
	}
}

// TestServiceDuplicateClaim: claims are one-lease-at-a-time per request —
// repeated claims hand out successive leases, and once everything is
// claimed the protocol answers Wait, never a duplicate assignment.
func TestServiceDuplicateClaim(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	svc := newTestService(t, t.TempDir())
	if _, err := svc.Register(testRegistration(t, in, space, 3)); err != nil {
		t.Fatalf("register: %v", err)
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		c, err := svc.Claim(ClaimRequest{Owner: "w"})
		if err != nil {
			t.Fatalf("claim %d: %v", i, err)
		}
		if seen[c.Lease] {
			t.Fatalf("lease %d handed out twice while healthily claimed", c.Lease)
		}
		seen[c.Lease] = true
		// Keep the claim alive so the next iteration can't steal it.
		if err := svc.Heartbeat(HeartbeatRequest{Owner: "w", Lease: c.Lease}); err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
	}
	c, err := svc.Claim(ClaimRequest{Owner: "w"})
	if err != nil {
		t.Fatalf("claim with all leases running: %v", err)
	}
	if !c.Wait || c.Done || c.Lease != -1 {
		t.Fatalf("want Wait with every lease healthily claimed, got %+v", c)
	}
}

// TestServiceCompleteAfterExpiry: an owner that went dark long enough to be
// stolen from can still complete — its checkpoint is valid, folding is
// monotone, and done is done. The later thief's completion is idempotent.
func TestServiceCompleteAfterExpiry(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	svc := newTestService(t, t.TempDir())
	if _, err := svc.Register(testRegistration(t, in, space, 4)); err != nil {
		t.Fatalf("register: %v", err)
	}
	if c, err := svc.Claim(ClaimRequest{Owner: "dark"}); err != nil || c.Lease != 0 {
		t.Fatalf("claim: %+v, %v", c, err)
	}
	expireLease(t, svc, 0, "dark", 0)
	thief, err := svc.Claim(ClaimRequest{Owner: "thief"})
	if err != nil || thief.Lease != 0 || !thief.Stolen {
		t.Fatalf("steal: %+v, %v", thief, err)
	}
	// The dark owner finishes anyway and completes after losing the lease.
	ckpt := leaseCheckpointBytes(t, in, space, 0, 4)
	if err := svc.Complete(CompleteRequest{Owner: "dark", Lease: 0, Checkpoint: ckpt}); err != nil {
		t.Fatalf("complete after expiry: %v", err)
	}
	if st := svc.Status().Leases[0]; st.State != leaseStateDone {
		t.Fatalf("lease not done after the dark owner's completion: %+v", st)
	}
	// The thief, unaware, completes too — idempotent, same final state.
	if err := svc.Complete(CompleteRequest{Owner: "thief", Lease: 0, Checkpoint: ckpt}); err != nil {
		t.Fatalf("thief's duplicate completion: %v", err)
	}
	if st := svc.Status().Leases[0]; st.State != leaseStateDone || st.Stolen != 1 {
		t.Fatalf("final lease state: %+v", st)
	}
}

// TestServiceIncompleteCompletionRejected: Complete with a partial
// checkpoint stores the progress but refuses the done marker.
func TestServiceIncompleteCompletionRejected(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	svc := newTestService(t, t.TempDir())
	reg := testRegistration(t, in, space, 4)
	if _, err := svc.Register(reg); err != nil {
		t.Fatalf("register: %v", err)
	}
	if c, err := svc.Claim(ClaimRequest{Owner: "w"}); err != nil || c.Lease != 0 {
		t.Fatalf("claim: %+v, %v", c, err)
	}
	// Evaluate a strict subset of the lease slice.
	n := reg.Designs
	plans, err := sweep.PlanShards(n, 4)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	hooked := *in
	hooked.EvalHook = func(explorer.Design) error {
		evals++
		if evals == 3 {
			cancel()
		}
		return nil
	}
	path := filepath.Join(t.TempDir(), "partial.json")
	_, err = sweep.Run(ctx, &hooked, space, explorer.RenewablesBatteryCAS, sweep.Options{
		BatchSize:  1,
		Shard:      plans[0].Shard,
		Checkpoint: sweep.CheckpointOptions{Path: path, Every: 1},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("partial sweep: want context.Canceled, got %v", err)
	}
	partial, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading partial checkpoint: %v", err)
	}
	if err := svc.Complete(CompleteRequest{Owner: "w", Lease: 0, Checkpoint: partial}); !errors.Is(err, ErrLeaseIncomplete) {
		t.Fatalf("partial completion: want ErrLeaseIncomplete, got %v", err)
	}
	if st := svc.Status().Leases[0]; st.State == leaseStateDone {
		t.Fatal("partial completion marked the lease done")
	}
	// The progress was kept: the claim path serves it to the next owner.
	expireLease(t, svc, 0, "w", 0)
	c, err := svc.Claim(ClaimRequest{Owner: "next"})
	if err != nil || c.Lease != 0 {
		t.Fatalf("re-claim: %+v, %v", c, err)
	}
	if len(c.Checkpoint) == 0 {
		t.Fatal("stored partial progress was not offered to the thief")
	}
}

// TestServiceStatusDuringActiveSteal: status must tell the operator the
// truth mid-steal — a running lease with a stale heartbeat reports
// "expired", and after the theft it reports running with the bumped count.
func TestServiceStatusDuringActiveSteal(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	svc := newTestService(t, t.TempDir())
	if _, err := svc.Register(testRegistration(t, in, space, 4)); err != nil {
		t.Fatalf("register: %v", err)
	}
	if c, err := svc.Claim(ClaimRequest{Owner: "w"}); err != nil || c.Lease != 0 {
		t.Fatalf("claim: %+v, %v", c, err)
	}
	if st := svc.Status().Leases[0]; st.State != leaseStateRunning {
		t.Fatalf("freshly claimed lease: %+v", st)
	}
	expireLease(t, svc, 0, "w", 0)
	st := svc.Status()
	if got := st.Leases[0]; got.State != leaseStateExpired || got.Owner != "w" {
		t.Fatalf("stale lease should report expired for owner w: %+v", got)
	}
	if st.Expired != 1 {
		t.Fatalf("status counts %d expired leases, want 1", st.Expired)
	}
	if _, err := svc.Claim(ClaimRequest{Owner: "thief"}); err != nil {
		t.Fatalf("steal: %v", err)
	}
	if got := svc.Status().Leases[0]; got.State != leaseStateRunning || got.Owner != "thief" || got.Stolen != 1 {
		t.Fatalf("post-steal lease: %+v", got)
	}
}

// TestServiceRejectsForeignUpload: a checkpoint from a different sweep (or
// the wrong slice) can never pollute coordinator state.
func TestServiceRejectsForeignUpload(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	svc := newTestService(t, t.TempDir())
	if _, err := svc.Register(testRegistration(t, in, space, 4)); err != nil {
		t.Fatalf("register: %v", err)
	}
	if c, err := svc.Claim(ClaimRequest{Owner: "w"}); err != nil || c.Lease != 0 {
		t.Fatalf("claim: %+v, %v", c, err)
	}
	// Wrong slice: lease 1's checkpoint uploaded for lease 0.
	wrongSlice := leaseCheckpointBytes(t, in, space, 1, 4)
	if err := svc.Heartbeat(HeartbeatRequest{Owner: "w", Lease: 0, Checkpoint: wrongSlice}); !errors.Is(err, ErrSweepMismatch) {
		t.Fatalf("wrong-slice upload: want ErrSweepMismatch, got %v", err)
	}
	// Wrong sweep: a different space hashes differently.
	other := space
	other.BatteryHours = []float64{0, 6}
	wrongSweep := leaseCheckpointBytes(t, in, other, 0, 4)
	if err := svc.Heartbeat(HeartbeatRequest{Owner: "w", Lease: 0, Checkpoint: wrongSweep}); !errors.Is(err, ErrSweepMismatch) {
		t.Fatalf("wrong-sweep upload: want ErrSweepMismatch, got %v", err)
	}
	// Garbage is rejected as invalid, not stored.
	if err := svc.Heartbeat(HeartbeatRequest{Owner: "w", Lease: 0, Checkpoint: []byte("{")}); err == nil {
		t.Fatal("garbage upload accepted")
	}
	// Out-of-range lease indices are mismatches, not panics.
	if err := svc.Heartbeat(HeartbeatRequest{Owner: "w", Lease: 99}); !errors.Is(err, ErrSweepMismatch) {
		t.Fatalf("out-of-range lease: want ErrSweepMismatch, got %v", err)
	}
}
