package coordinator

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/sweep"
)

// adaptivePlan mirrors the sweep package's adaptive test plan: coarse
// 3-point lattice, two subdivision rounds, 5% tolerance.
func adaptivePlan() sweep.Plan {
	return sweep.Plan{Mode: sweep.ModeAdaptive, Tolerance: 0.05, MaxRounds: 2, CoarsePointsPerDim: 3}
}

func readFileBytes(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

// TestAdaptiveTopologiesByteIdentical is the cross-topology acceptance test:
// the converged final checkpoint of an adaptive refinement must be
// byte-identical whether the rounds ran in a single process, under the
// in-memory coordinator, across a file-lease fleet, or across a
// network-lease fleet.
func TestAdaptiveTopologiesByteIdentical(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS
	dir := t.TempDir()

	soloPath := filepath.Join(dir, "solo.json")
	solo, err := sweep.Run(context.Background(), in, space, strategy,
		sweep.Options{Plan: adaptivePlan(), Checkpoint: sweep.CheckpointOptions{Path: soloPath, Every: 10}})
	if err != nil {
		t.Fatalf("single-process adaptive run: %v", err)
	}
	if !solo.Adaptive.Converged {
		t.Fatal("single-process adaptive run did not converge")
	}
	want := readFileBytes(t, soloPath)

	memPath := filepath.Join(dir, "memory.json")
	mem, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Workers: 3, Checkpoint: memPath})
	if err != nil {
		t.Fatalf("in-memory coordinated adaptive run: %v", err)
	}
	requireSameResult(t, solo, mem)
	if got := readFileBytes(t, memPath); string(got) != string(want) {
		t.Fatalf("in-memory coordinator checkpoint differs from single-process:\n%s\nvs\n%s", got, want)
	}

	leaseDir := filepath.Join(dir, "leases")
	fileRes, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Workers: 3, LeaseDir: leaseDir})
	if err != nil {
		t.Fatalf("file-lease coordinated adaptive run: %v", err)
	}
	requireSameResult(t, solo, fileRes)
	if got := readFileBytes(t, MergedCheckpointPath(leaseDir)); string(got) != string(want) {
		t.Fatalf("file-lease coordinator checkpoint differs from single-process:\n%s\nvs\n%s", got, want)
	}

	netPath := filepath.Join(dir, "network.json")
	endpoint := startCoordinator(t, filepath.Join(dir, "state"), 0)
	netRes, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Workers: 3, Endpoint: endpoint, Checkpoint: netPath})
	if err != nil {
		t.Fatalf("network-lease coordinated adaptive run: %v", err)
	}
	requireSameResult(t, solo, netRes)
	if got := readFileBytes(t, netPath); string(got) != string(want) {
		t.Fatalf("network-lease coordinator checkpoint differs from single-process:\n%s\nvs\n%s", got, want)
	}
}

// TestAdaptiveLeaseDirResume kills a file-lease adaptive fleet mid-round and
// re-invokes it over the same directory: the resumed fleet must converge to
// the single-process result byte-identically, restoring completed rounds
// from their round directories instead of re-evaluating everything.
func TestAdaptiveLeaseDirResume(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS
	dir := t.TempDir()

	soloPath := filepath.Join(dir, "solo.json")
	if _, err := sweep.Run(context.Background(), in, space, strategy,
		sweep.Options{Plan: adaptivePlan(), Checkpoint: sweep.CheckpointOptions{Path: soloPath, Every: 10}}); err != nil {
		t.Fatalf("single-process adaptive run: %v", err)
	}

	// Cancel partway into round 1 (the coarse round has 81 designs).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	started := 0
	hooked := *in
	hooked.EvalHook = func(explorer.Design) error {
		mu.Lock()
		started++
		if started == 95 {
			cancel()
		}
		mu.Unlock()
		return nil
	}
	leaseDir := filepath.Join(dir, "leases")
	_, err := Run(ctx, &hooked, space, strategy,
		Options{Plan: adaptivePlan(), Workers: 2, LeaseDir: leaseDir, CheckpointEvery: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted fleet: want context.Canceled, got %v", err)
	}

	resumed, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Workers: 2, LeaseDir: leaseDir, CheckpointEvery: 5})
	if err != nil {
		t.Fatalf("re-invoked fleet: %v", err)
	}
	if !resumed.Adaptive.Converged {
		t.Fatal("re-invoked fleet did not converge")
	}
	want := readFileBytes(t, soloPath)
	if got := readFileBytes(t, MergedCheckpointPath(leaseDir)); string(got) != string(want) {
		t.Fatalf("resumed fleet checkpoint differs from single-process:\n%s\nvs\n%s", got, want)
	}
}

// TestAdaptiveNetworkLaggingFleetReplaysArchive: after one fleet finishes an
// adaptive refinement, a second fleet pointed at the same coordinator must
// replay every archived round from the coordinator's generation archive and
// converge without evaluating a single design.
func TestAdaptiveNetworkLaggingFleetReplaysArchive(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS
	dir := t.TempDir()
	endpoint := startCoordinator(t, filepath.Join(dir, "state"), 0)

	firstPath := filepath.Join(dir, "first.json")
	first, err := Run(context.Background(), in, space, strategy,
		Options{Plan: adaptivePlan(), Workers: 3, Endpoint: endpoint, Checkpoint: firstPath})
	if err != nil {
		t.Fatalf("first fleet: %v", err)
	}
	if !first.Adaptive.Converged {
		t.Fatal("first fleet did not converge")
	}

	hooked, counted := evalCounter(in)
	secondPath := filepath.Join(dir, "second.json")
	second, err := Run(context.Background(), hooked, space, strategy,
		Options{Plan: adaptivePlan(), Workers: 3, Endpoint: endpoint, Checkpoint: secondPath, Worker: "late"})
	if err != nil {
		t.Fatalf("second fleet: %v", err)
	}
	if total, _ := counted(); total != 0 {
		t.Fatalf("second fleet evaluated %d designs; want 0 (pure archive replay)", total)
	}
	if !second.Adaptive.Converged {
		t.Fatal("second fleet did not converge")
	}
	requireSameResult(t, first, second)
	if got, want := readFileBytes(t, secondPath), readFileBytes(t, firstPath); string(got) != string(want) {
		t.Fatalf("second fleet checkpoint differs from first:\n%s\nvs\n%s", got, want)
	}
}

// TestCoordinatorRejectsBadPlans: plan validation happens before any board
// or network state is touched.
func TestCoordinatorRejectsBadPlans(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	strategy := explorer.RenewablesBatteryCAS

	_, err := Run(context.Background(), in, space, strategy,
		Options{Plan: sweep.Plan{Tolerance: 0.1}})
	if err == nil || !strings.Contains(err.Error(), "require ModeAdaptive") {
		t.Fatalf("adaptive knob under exhaustive plan: want validation error, got %v", err)
	}
	_, err = Run(context.Background(), in, space, strategy,
		Options{Plan: sweep.Plan{Shard: sweep.Shard{Index: 1, Count: 2}}})
	if err == nil || !strings.Contains(err.Error(), "incompatible with coordinated sweeps") {
		t.Fatalf("plan shard under coordinator: want rejection, got %v", err)
	}
}
