package coordinator

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/sweep"
)

// Options configures a coordinated, work-stealing sweep. The zero value is
// a sensible default: one worker per CPU, eight leases per worker,
// in-process coordination.
type Options struct {
	// Plan selects what the fleet sweeps: the zero value is a full-space
	// exhaustive sweep; Mode sweep.ModeAdaptive runs the coarse-to-fine
	// refinement with every round fanned out across the fleet. Plan.Shard
	// must be zero — leases already partition the work-list.
	Plan sweep.Plan
	// Workers is the number of concurrent workers (default GOMAXPROCS,
	// capped by the lease count — an idle worker with no lease left to
	// claim adds nothing).
	Workers int
	// Leases is how many slices the design space is split into (default 8
	// per worker, clamped to the design count). More leases than workers
	// is the point of dynamic scheduling: slices small enough that a fast
	// worker absorbs a slow or dead one's backlog instead of idling.
	Leases int
	// LeaseDir, when non-empty, switches to multi-process coordination
	// through atomic lease files in this directory: independently started
	// processes pointed at the same directory share the sweep, a worker's
	// progress survives its death as a per-lease checkpoint, and expired
	// leases are stolen and resumed. Empty coordinates in-process only,
	// with no files written.
	LeaseDir string
	// Endpoint, when non-empty, switches to network coordination against
	// an HTTP coordinator (see Service and the `coordinate` subcommand) at
	// this base URL, e.g. "http://host:8080". Workers on any machine
	// pointed at the same coordinator share the sweep with the same
	// claim/heartbeat/steal semantics as LeaseDir mode — no shared
	// filesystem required. Mutually exclusive with LeaseDir.
	Endpoint string
	// Transport, when non-nil, replaces the network client's underlying
	// http.RoundTripper in Endpoint mode — the chaos-test hook for
	// injecting deterministic network faults. Ignored otherwise.
	Transport http.RoundTripper
	// Checkpoint is where the final merged checkpoint is written in
	// LeaseDir mode (default <LeaseDir>/merged.json); Run resumes it
	// automatically, so re-invoking after a crash or cancellation
	// continues instead of restarting. Ignored without a LeaseDir.
	Checkpoint string
	// BatchSize is each worker's per-lease evaluation batch size (see
	// sweep.Options.BatchSize). Per-lease evaluation is itself parallel,
	// so W workers × min(GOMAXPROCS, BatchSize) goroutines evaluate at
	// once; set BatchSize 1 to pin each worker to one design at a time.
	BatchSize int
	// CheckpointEvery is the per-lease checkpoint cadence in LeaseDir mode
	// (default 64): how many evaluated designs a worker's death can lose.
	CheckpointEvery int
	// Retries is how many times a failed design is re-evaluated within its
	// lease (see sweep.Options.Retries: 0 means one retry,
	// sweep.NoRetries disables).
	Retries int
	// Heartbeat is how often a worker refreshes its claimed lease's
	// liveness timestamp in LeaseDir mode (default 1s).
	Heartbeat time.Duration
	// Expiry is how stale a running lease's heartbeat must be before
	// another worker may steal it (default 10×Heartbeat). Shorter expiry
	// recovers dead workers faster but tolerates less scheduling jitter
	// before a live worker is (benignly) double-evaluated.
	Expiry time.Duration
	// Worker is this process's owner-label prefix in lease files (default
	// "pid<pid>"); worker k of the pool is labeled "<Worker>/wk". Give
	// each process a distinct value when coordinating across machines
	// whose PIDs may collide.
	Worker string
	// InputsFor, when non-nil, supplies worker k's evaluation inputs
	// instead of the shared Inputs — the chaos and benchmark hook: a
	// slowed or faulty worker is an InputsFor returning hooked inputs.
	// Every worker's inputs must describe the same sweep (same site,
	// series, and hence space hash) or lease checkpoints will be rejected
	// as mismatched.
	InputsFor func(worker int) *explorer.Inputs
}

// withDefaults normalizes the options against an n-design space.
func (o Options) withDefaults(n int) Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Leases <= 0 {
		o.Leases = 8 * o.Workers
	}
	if o.Leases > n {
		o.Leases = n
	}
	if o.Workers > o.Leases {
		o.Workers = o.Leases
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 64
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.Expiry <= 0 {
		o.Expiry = 10 * o.Heartbeat
	}
	if o.Worker == "" {
		o.Worker = fmt.Sprintf("pid%d", os.Getpid())
	}
	if o.LeaseDir != "" && o.Checkpoint == "" {
		o.Checkpoint = MergedCheckpointPath(o.LeaseDir)
	}
	return o
}

// workerLabel names worker w in lease files and Result.Workers.
func workerLabel(opts Options, w int) string {
	return fmt.Sprintf("%s/w%d", opts.Worker, w)
}

// workerInputs picks worker w's evaluation inputs.
func workerInputs(in *explorer.Inputs, opts Options, w int) *explorer.Inputs {
	if opts.InputsFor != nil {
		return opts.InputsFor(w)
	}
	return in
}

// Run executes a coordinated, work-stealing sweep of the space under the
// strategy and returns the same Result a single-process sweep.Run over the
// full space would — byte-identical optimum, frontier, and failure
// ordering — with Result.Workers filled in with per-worker progress.
//
// The design space is split into Options.Leases contiguous slices, far
// more than there are workers, and workers claim them dynamically. Without
// a LeaseDir the pool coordinates in-process; with one, coordination goes
// through atomic lease files so independently started processes share the
// sweep, dead workers' leases are stolen after their heartbeat expires,
// and the thief resumes the per-lease checkpoint instead of re-evaluating.
//
// Failure semantics mirror sweep.Run: failed designs are retried, then
// excluded and reported; only if every design fails does Run return a
// wrapped explorer.ErrAllDesignsFailed. On cancellation the partial result
// is returned alongside ctx's error — in LeaseDir mode after folding every
// lease checkpoint written so far into Options.Checkpoint, so a later
// invocation (or a plain `optimize -resume`) continues from there.
func Run(ctx context.Context, in *explorer.Inputs, space explorer.Space, strategy explorer.Strategy, opts Options) (sweep.Result, error) {
	if opts.Endpoint != "" && opts.LeaseDir != "" {
		return sweep.Result{}, fmt.Errorf("coordinator: Endpoint and LeaseDir are mutually exclusive; pick one transport")
	}
	plan, err := opts.Plan.Normalized()
	if err != nil {
		return sweep.Result{}, err
	}
	if !plan.Shard.IsZero() {
		return sweep.Result{}, fmt.Errorf("coordinator: Plan.Shard %s is incompatible with coordinated sweeps — leases already partition the work-list", plan.Shard)
	}
	opts.Plan = plan
	if plan.Mode == sweep.ModeAdaptive {
		return runAdaptive(ctx, in, space, strategy, opts)
	}
	job, err := sweep.NewJob(in, space, strategy)
	if err != nil {
		return sweep.Result{}, fmt.Errorf("coordinator: empty search space")
	}
	return runJob(ctx, in, opts, job)
}

// runAdaptive fans each refinement round of an adaptive plan out across the
// fleet: sweep.RunAdaptiveRounds derives every round's deterministic
// work-list, and the eval callback runs it through the configured transport
// as one coordinated job. In LeaseDir mode each round gets its own
// round-NNNN subdirectory — its board and per-round merged checkpoint are
// the round's durable state, so a killed fleet re-invoked over the same
// directory replays finished rounds from files and resumes the interrupted
// one. The converged final checkpoint lands at Options.Checkpoint (default
// <LeaseDir>/merged.json), where `optimize -resume` and `serve -state`
// expect it.
func runAdaptive(ctx context.Context, in *explorer.Inputs, space explorer.Space, strategy explorer.Strategy, opts Options) (sweep.Result, error) {
	finalPath := opts.Checkpoint
	if finalPath == "" && opts.LeaseDir != "" {
		finalPath = MergedCheckpointPath(opts.LeaseDir)
	}
	swOpts := sweep.Options{
		BatchSize: opts.BatchSize,
		Retries:   opts.Retries,
		Plan:      opts.Plan,
		Checkpoint: sweep.CheckpointOptions{
			Path:   finalPath,
			Every:  opts.CheckpointEvery,
			Resume: finalPath != "",
		},
	}
	eval := func(ctx context.Context, job *sweep.Job, round int) (sweep.Result, error) {
		ro := opts
		ro.Plan = sweep.Plan{} // each round is a concrete exhaustive work-list
		ro.Checkpoint = ""     // rounds keep their state out of the final path
		if opts.LeaseDir != "" {
			ro.LeaseDir = filepath.Join(opts.LeaseDir, fmt.Sprintf("round-%04d", round))
		}
		return runJob(ctx, in, ro, job)
	}
	return sweep.RunAdaptiveRounds(ctx, in, space, strategy, swOpts, eval)
}

// runJob dispatches one concrete work-list to the configured transport.
func runJob(ctx context.Context, in *explorer.Inputs, opts Options, job *sweep.Job) (sweep.Result, error) {
	n := len(job.Designs)
	opts = opts.withDefaults(n)
	if opts.Expiry < HeartbeatSafetyFactor*opts.Heartbeat {
		return sweep.Result{}, fmt.Errorf("%w: expiry %v < %d × heartbeat %v", ErrLivenessConfig, opts.Expiry, HeartbeatSafetyFactor, opts.Heartbeat)
	}
	if opts.Endpoint != "" {
		return runNetwork(ctx, in, opts, job)
	}
	plans, err := sweep.PlanShards(n, opts.Leases)
	if err != nil {
		return sweep.Result{}, err
	}
	if opts.LeaseDir == "" {
		return runMemory(ctx, in, opts, job, plans)
	}
	return runLeaseDir(ctx, in, opts, job, plans)
}

// runMemory coordinates a worker pool over a channel of lease indices.
// Every lease produces a full-space-accounted Result; folding them in
// lease order through sweep.MergeResults reproduces the single-process
// fold exactly.
func runMemory(ctx context.Context, in *explorer.Inputs, opts Options, job *sweep.Job, plans []sweep.ShardPlan) (sweep.Result, error) {
	results := make([]sweep.Result, len(plans))
	errs := make([]error, len(plans))
	progress := make([]sweep.WorkerProgress, opts.Workers)
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			progress[w].Worker = workerLabel(opts, w)
			win := workerInputs(in, opts, w)
			for li := range queue {
				res, err := job.Run(ctx, win, sweep.Options{
					BatchSize: opts.BatchSize,
					Retries:   opts.Retries,
					Plan:      sweep.Plan{Shard: plans[li].Shard},
				})
				results[li] = res
				// A lease whose designs all failed still completed; its
				// failures surface through the merged report instead.
				if err != nil && !errors.Is(err, explorer.ErrAllDesignsFailed) {
					errs[li] = err
				}
				progress[w].Leases++
				progress[w].Evaluated += res.Report.Evaluated - res.Report.Restored
				progress[w].Failed += len(res.Report.Failures)
			}
		}(w)
	}
	for li := range plans {
		queue <- li
	}
	close(queue)
	wg.Wait()

	merged := sweep.MergeResults(results...)
	merged.Workers = progress
	for _, err := range errs {
		if err != nil {
			return merged, err
		}
	}
	if merged.Report.Evaluated == 0 && len(merged.Report.Failures) > 0 {
		return merged, fmt.Errorf("%w: %d failures, first: %w",
			explorer.ErrAllDesignsFailed, len(merged.Report.Failures), merged.Report.Failures[0])
	}
	return merged, nil
}

// runLeaseDir coordinates through lease files: claim, heartbeat, sweep the
// slice with a resumable per-lease checkpoint, mark done, repeat; then
// fold every lease checkpoint into the merged checkpoint and restore the
// Result from it.
func runLeaseDir(ctx context.Context, in *explorer.Inputs, opts Options, job *sweep.Job, plans []sweep.ShardPlan) (sweep.Result, error) {
	// A finished sweep whose board was already cleaned up leaves the merged
	// checkpoint as its durable record. Restore it instead of re-claiming an
	// empty board and re-evaluating — the replay path adaptive refinements
	// take through every completed round after a crash.
	if ck, err := sweep.ReadCheckpoint(opts.Checkpoint); err == nil && ck.Complete() && ck.SpaceHash == job.SpaceHash() {
		return job.Run(ctx, in, sweep.Options{
			BatchSize: opts.BatchSize,
			Retries:   opts.Retries,
			Checkpoint: sweep.CheckpointOptions{
				Path:   opts.Checkpoint,
				Every:  opts.CheckpointEvery,
				Resume: true,
			},
		})
	}
	b, err := newBoard(opts.LeaseDir, plans, opts.Heartbeat, opts.Expiry)
	if err != nil {
		return sweep.Result{}, err
	}
	progress := make([]sweep.WorkerProgress, opts.Workers)
	maxResident := make([]int, opts.Workers)
	workerErrs := make([]error, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerErrs[w] = runWorker(ctx, fileSource{b: b}, in, opts, job, plans, w, &progress[w], &maxResident[w])
		}(w)
	}
	wg.Wait()
	for _, werr := range workerErrs {
		if werr != nil && !isCtxErr(werr) {
			return sweep.Result{}, werr
		}
	}

	// Fold whatever lease checkpoints exist — all of them after a clean
	// finish, the partial subset after a cancellation — into the merged
	// checkpoint. A concurrent finisher may already have merged and
	// cleaned the lease files up; its merged checkpoint then stands in.
	srcs := b.existingCheckpoints()
	var complete bool
	if len(srcs) > 0 {
		rep, err := sweep.MergeCheckpoints(opts.Checkpoint, srcs...)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return sweep.Result{}, cerr
			}
			return sweep.Result{}, err
		}
		complete = rep.Complete()
	} else if _, err := os.Stat(opts.Checkpoint); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return sweep.Result{}, cerr
		}
		return sweep.Result{}, fmt.Errorf("coordinator: no lease checkpoints were written under %s", opts.LeaseDir)
	}

	// Restore the merged checkpoint into a Result. Every lease is done
	// after a clean run, so this evaluates nothing; under a cancelled ctx
	// it returns the partial fold alongside the ctx error.
	res, err := job.Run(ctx, in, sweep.Options{
		BatchSize: opts.BatchSize,
		Retries:   opts.Retries,
		Checkpoint: sweep.CheckpointOptions{
			Path:   opts.Checkpoint,
			Every:  opts.CheckpointEvery,
			Resume: true,
		},
	})
	res.Workers = progress
	fresh := 0
	for w := range progress {
		fresh += progress[w].Evaluated
		if maxResident[w] > res.Report.MaxResident {
			res.Report.MaxResident = maxResident[w]
		}
	}
	// The final restore reports every done design as Restored; designs
	// this invocation's workers evaluated were not. (Clamped: a benign
	// double-evaluation after a stolen-lease race can count a design
	// twice.)
	if restored := res.Report.Evaluated - fresh; restored >= 0 {
		res.Report.Restored = restored
	} else {
		res.Report.Restored = 0
	}
	res.Resumed = res.Report.Restored > 0
	if err != nil {
		return res, err
	}
	if complete {
		b.cleanup(opts.Worker + "/")
	}
	return res, nil
}

// runWorker is one worker's claim-evaluate-complete loop, written once for
// every transport behind the leaseSource seam.
func runWorker(ctx context.Context, src leaseSource, in *explorer.Inputs, opts Options, job *sweep.Job, plans []sweep.ShardPlan, w int, progress *sweep.WorkerProgress, maxResident *int) error {
	label := workerLabel(opts, w)
	progress.Worker = label
	win := workerInputs(in, opts, w)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		a, done, err := src.Claim(ctx, label)
		if err != nil {
			return err
		}
		if a == nil {
			if done {
				return nil
			}
			// Every remaining lease is healthily running elsewhere. Poll:
			// its done marker — or its heartbeat expiring — is what frees
			// this worker. An explicit timer, not time.After: when ctx wins
			// the select, After's timer would survive until it fires — one
			// leaked timer per poll round for as long as shutdown takes.
			t := time.NewTimer(src.Poll())
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
			continue
		}
		stop := src.Watch(ctx, a, label)
		res, err := job.Run(ctx, win, sweep.Options{
			BatchSize: opts.BatchSize,
			Retries:   opts.Retries,
			Plan:      sweep.Plan{Shard: plans[a.lease].Shard},
			Checkpoint: sweep.CheckpointOptions{
				Path:   a.ckpt,
				Every:  opts.CheckpointEvery,
				Resume: true,
			},
		})
		stop()
		if err != nil && !errors.Is(err, explorer.ErrAllDesignsFailed) {
			// Cancelled or I/O failure: leave the lease claimed. With the
			// heartbeat stopped it expires, so a later worker — or a later
			// invocation — steals it and resumes its checkpoint. The partial
			// lease still counts toward this worker's fresh evaluations so
			// the final restored-design accounting stays exact.
			progress.Evaluated += res.Report.Evaluated - res.Report.Restored
			progress.Failed += len(res.Report.Failures)
			return err
		}
		if err := src.Complete(ctx, a, label); err != nil {
			return err
		}
		progress.Leases++
		if a.stolen {
			progress.Stolen++
		}
		progress.Evaluated += res.Report.Evaluated - res.Report.Restored
		progress.Failed += len(res.Report.Failures)
		if res.Report.MaxResident > *maxResident {
			*maxResident = res.Report.MaxResident
		}
	}
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
