package coordinator

// HTTP transport, server side: a stdlib-only JSON API over the Service
// core. One POST per protocol verb plus two GETs for observers; every
// response body is JSON, errors included, so clients can dispatch on
// structured codes instead of scraping message text.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Error is the wire form of a request failure.
type Error struct {
	// Code is a stable, machine-readable failure class.
	Code string `json:"code"`
	// Message is the server-side error text, for humans and logs.
	Message string `json:"message"`
}

// Wire error codes. Clients map them back to the service's sentinel errors.
const (
	errCodeNotRegistered = "not_registered"
	errCodeSweepMismatch = "sweep_mismatch"
	errCodeIncomplete    = "incomplete_lease"
	errCodeLiveness      = "liveness_config"
	errCodeNoProgress    = "no_progress"
	errCodeBadRequest    = "bad_request"
)

// maxRequestBody bounds request bodies (1 GiB would be absurd for a lease
// checkpoint; 64 MiB is galaxies beyond any real sweep).
const maxRequestBody = 64 << 20

// Handler returns the coordinator's HTTP API:
//
//	POST /v1/register   RegisterRequest  -> RegisterResponse
//	POST /v1/claim      ClaimRequest     -> ClaimResponse
//	POST /v1/heartbeat  HeartbeatRequest -> {}
//	POST /v1/complete   CompleteRequest  -> {}
//	GET  /v1/status                      -> StatusResponse
//	GET  /v1/checkpoint                  -> merged sweep checkpoint JSON
//
// Failures return 4xx with an Error body. The protocol is idempotent by
// construction — repeating any request (a retrying client, a duplicating
// network) converges to the same state — so the handler needs no request
// deduplication.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Register(req)
		respond(w, resp, err)
	})
	mux.HandleFunc("POST /v1/claim", func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Claim(req)
		respond(w, resp, err)
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decode(w, r, &req) {
			return
		}
		respond(w, struct{}{}, s.Heartbeat(req))
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decode(w, r, &req) {
			return
		}
		respond(w, struct{}{}, s.Complete(req))
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		respond(w, s.Status(), nil)
	})
	mux.HandleFunc("GET /v1/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		var data []byte
		var err error
		if hash := r.URL.Query().Get("hash"); hash != "" {
			// By-hash lookup reaches archived generations; reject anything
			// that is not a well-formed space hash before it can name a file.
			if !isSpaceHash(hash) {
				writeError(w, http.StatusBadRequest, errCodeBadRequest, fmt.Sprintf("malformed space hash %q", hash))
				return
			}
			data, err = s.MergedCheckpointFor(hash)
		} else {
			data, _, err = s.MergedCheckpoint()
		}
		if err != nil {
			respond(w, nil, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})
	return mux
}

// isSpaceHash reports whether s looks like a sweep space hash: exactly 16
// lowercase hex digits.
func isSpaceHash(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// decode reads and unmarshals a JSON request body, answering 400 itself on
// failure. It reports whether the handler should proceed.
func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, errCodeBadRequest, fmt.Sprintf("reading request body: %v", err))
		return false
	}
	if err := json.Unmarshal(data, into); err != nil {
		writeError(w, http.StatusBadRequest, errCodeBadRequest, fmt.Sprintf("decoding request body: %v", err))
		return false
	}
	return true
}

// respond writes resp as JSON, or maps err onto a status code and Error
// body. Service errors are client problems (conflicting sweep, bad lease,
// unmet precondition) — 4xx, never 5xx, so clients don't blindly retry
// requests that can never succeed.
func respond(w http.ResponseWriter, resp any, err error) {
	if err == nil {
		w.Header().Set("Content-Type", "application/json")
		data, merr := json.Marshal(resp)
		if merr != nil {
			writeError(w, http.StatusInternalServerError, errCodeBadRequest, merr.Error())
			return
		}
		_, _ = w.Write(data)
		return
	}
	switch {
	case errors.Is(err, ErrNotRegistered):
		writeError(w, http.StatusConflict, errCodeNotRegistered, err.Error())
	case errors.Is(err, ErrSweepMismatch):
		writeError(w, http.StatusConflict, errCodeSweepMismatch, err.Error())
	case errors.Is(err, ErrLeaseIncomplete):
		writeError(w, http.StatusConflict, errCodeIncomplete, err.Error())
	case errors.Is(err, ErrLivenessConfig):
		writeError(w, http.StatusBadRequest, errCodeLiveness, err.Error())
	case errors.Is(err, ErrNoProgress):
		writeError(w, http.StatusNotFound, errCodeNoProgress, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, errCodeBadRequest, err.Error())
	}
}

// writeError writes a JSON Error body with the given status.
func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(Error{Code: code, Message: message})
	if err != nil {
		return
	}
	_, _ = w.Write(data)
}

// errorFromWire maps a wire Error back onto the service's sentinel errors,
// so client-side errors.Is works identically to in-process calls.
func errorFromWire(e Error) error {
	base := map[string]error{
		errCodeNotRegistered: ErrNotRegistered,
		errCodeSweepMismatch: ErrSweepMismatch,
		errCodeIncomplete:    ErrLeaseIncomplete,
		errCodeLiveness:      ErrLivenessConfig,
		errCodeNoProgress:    ErrNoProgress,
	}[e.Code]
	if base == nil {
		return fmt.Errorf("coordinator: server rejected request (%s): %s", e.Code, e.Message)
	}
	return fmt.Errorf("%w: %s", base, e.Message)
}
