package coordinator

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"carbonexplorer/internal/carbon"
	"carbonexplorer/internal/explorer"
	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/sweep"
	"carbonexplorer/internal/timeseries"
)

// testInputs builds a small (10-day) but fully functional evaluation input,
// mirroring the sweep and faultinject test fixtures.
func testInputs(t testing.TB) *explorer.Inputs {
	t.Helper()
	const n = 240
	demand := timeseries.Generate(n, func(h int) float64 { return 10 + 2*math.Sin(float64(h%24)/24*2*math.Pi) })
	wind := timeseries.Generate(n, func(h int) float64 { return 5 + 4*math.Sin(float64(h)/17) })
	solar := timeseries.Generate(n, func(h int) float64 { return math.Max(0, 8*math.Sin((float64(h%24)-6)/12*math.Pi)) })
	ci := timeseries.Constant(n, 400)
	in, err := explorer.NewInputsFromSeries(grid.MustSite("UT"), demand, wind, solar, ci, carbon.DefaultEmbodiedParams())
	if err != nil {
		t.Fatalf("testInputs: %v", err)
	}
	return in
}

// testSpace is a 100-design grid — enough designs for many leases.
func testSpace(in *explorer.Inputs) explorer.Space {
	avg := in.AvgDemandMW()
	return explorer.Space{
		WindMW:             []float64{0, avg, 2 * avg, 4 * avg, 8 * avg},
		SolarMW:            []float64{0, avg, 2 * avg, 4 * avg, 8 * avg},
		BatteryHours:       []float64{0, 2},
		ExtraCapacityFracs: []float64{0, 0.25},
		DoD:                1.0,
		FlexibleRatio:      0.4,
	}
}

func sameOutcome(a, b explorer.Outcome) bool {
	return a.Design == b.Design && a.Operational == b.Operational && a.Embodied == b.Embodied
}

// requireSameResult asserts the coordinated result reproduces the
// single-process optimum and frontier byte-identically.
func requireSameResult(t *testing.T, want, got sweep.Result) {
	t.Helper()
	if got.Report.Evaluated != want.Report.Evaluated {
		t.Fatalf("evaluated %d designs, single-process evaluated %d", got.Report.Evaluated, want.Report.Evaluated)
	}
	if !sameOutcome(got.Optimal, want.Optimal) {
		t.Fatalf("optimum diverged:\ncoordinated:    %+v\nsingle-process: %+v", got.Optimal.Design, want.Optimal.Design)
	}
	if len(got.Frontier) != len(want.Frontier) {
		t.Fatalf("frontier has %d points, single-process has %d", len(got.Frontier), len(want.Frontier))
	}
	for i := range got.Frontier {
		if !sameOutcome(got.Frontier[i], want.Frontier[i]) {
			t.Fatalf("frontier point %d diverged: %+v vs %+v", i, got.Frontier[i].Design, want.Frontier[i].Design)
		}
	}
}

// singleProcess runs the reference uninterrupted single-process sweep.
func singleProcess(t *testing.T, in *explorer.Inputs, space explorer.Space) sweep.Result {
	t.Helper()
	want, err := sweep.Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, sweep.Options{})
	if err != nil {
		t.Fatalf("single-process sweep: %v", err)
	}
	return want
}

// TestCoordinatedMatchesSingleProcess: the in-process work-stealing pool
// over many small leases reproduces the single-process result exactly, and
// per-worker progress accounts for every lease and design.
func TestCoordinatedMatchesSingleProcess(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)

	got, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Workers: 4, Leases: 16, BatchSize: 3})
	if err != nil {
		t.Fatalf("coordinated run: %v", err)
	}
	requireSameResult(t, want, got)

	if len(got.Workers) != 4 {
		t.Fatalf("want 4 worker progress entries, got %d", len(got.Workers))
	}
	leases, evaluated := 0, 0
	for _, wp := range got.Workers {
		if wp.Worker == "" {
			t.Fatalf("worker progress entry missing its label: %+v", wp)
		}
		leases += wp.Leases
		evaluated += wp.Evaluated
	}
	if leases != 16 {
		t.Fatalf("workers completed %d leases, want 16", leases)
	}
	if evaluated != want.Report.Evaluated {
		t.Fatalf("workers evaluated %d designs, want %d", evaluated, want.Report.Evaluated)
	}
}

// TestCoordinatedLeaseDirMatchesSingleProcess: lease-directory coordination
// converges to the same result, leaves a complete resumable merged
// checkpoint, and cleans its lease files up after a single-fleet finish.
func TestCoordinatedLeaseDirMatchesSingleProcess(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)

	dir := t.TempDir()
	got, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		Options{Workers: 3, Leases: 12, BatchSize: 4, LeaseDir: dir, Worker: "fleet", Heartbeat: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("coordinated run: %v", err)
	}
	requireSameResult(t, want, got)
	if got.Resumed {
		t.Fatal("fresh coordinated run claims to have resumed prior progress")
	}

	merged := filepath.Join(dir, "merged.json")
	if _, err := os.Stat(merged); err != nil {
		t.Fatalf("merged checkpoint missing: %v", err)
	}
	// The merged checkpoint is a plain unsharded checkpoint: a
	// single-process resume accepts it and has nothing left to do.
	res, err := sweep.Run(context.Background(), in, space, explorer.RenewablesBatteryCAS,
		sweep.Options{Checkpoint: sweep.CheckpointOptions{Path: merged, Resume: true}})
	if err != nil {
		t.Fatalf("resuming merged checkpoint: %v", err)
	}
	if res.Report.Restored != want.Report.Evaluated {
		t.Fatalf("merged checkpoint restored %d designs, want %d", res.Report.Restored, want.Report.Evaluated)
	}
	// Every lease was finished by this fleet, so lease files are gone.
	leftovers, err := filepath.Glob(filepath.Join(dir, "lease-*"))
	if err != nil {
		t.Fatalf("globbing lease files: %v", err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("lease files not cleaned up after a complete single-fleet run: %v", leftovers)
	}
}

// TestLeaseGranularity covers the PlanShards interaction at the edges of
// the lease/worker geometry: more leases than designs, a single worker,
// and more workers than leases all converge to the same result.
func TestLeaseGranularity(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)
	designs := len(space.Enumerate(explorer.RenewablesBatteryCAS, in.AvgDemandMW()))

	cases := []struct {
		name        string
		opts        Options
		wantWorkers int
	}{
		// Leases clamp to the design count: PlanShards never produces
		// empty slices the workers would spin on.
		{"lease count > designs", Options{Workers: 4, Leases: 10 * designs}, 4},
		// One worker drains every lease alone.
		{"1 worker", Options{Workers: 1, Leases: 8}, 1},
		// Workers cap at the lease count: surplus workers would never
		// find a lease to claim.
		{"worker count > lease count", Options{Workers: 64, Leases: 4}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, tc.opts)
			if err != nil {
				t.Fatalf("coordinated run: %v", err)
			}
			requireSameResult(t, want, got)
			if len(got.Workers) != tc.wantWorkers {
				t.Fatalf("got %d worker progress entries, want %d", len(got.Workers), tc.wantWorkers)
			}
		})
	}
}

// TestCoordinatorEmptySpace: an empty enumeration is an error, not a hang.
func TestCoordinatorEmptySpace(t *testing.T) {
	in := testInputs(t)
	_, err := Run(context.Background(), in, explorer.Space{}, explorer.RenewablesBatteryCAS, Options{})
	if err == nil {
		t.Fatal("empty space did not error")
	}
}

// TestCoordinatorCancellation: cancelling a lease-directory run returns the
// context error with a partial fold, and re-invoking converges to the full
// single-process result by resuming the lease checkpoints.
func TestCoordinatorCancellation(t *testing.T) {
	in := testInputs(t)
	space := testSpace(in)
	want := singleProcess(t, in, space)
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	hooked := *in
	hooked.EvalHook = func(explorer.Design) error {
		if evals.Add(1) == 20 {
			cancel()
		}
		return nil
	}
	opts := Options{
		Workers: 1, Leases: 10, BatchSize: 2, CheckpointEvery: 1,
		LeaseDir: dir, Worker: "first",
		// Short liveness windows so the second invocation steals the
		// first's interrupted lease promptly instead of waiting out the
		// default 10s expiry.
		Heartbeat: 10 * time.Millisecond, Expiry: 50 * time.Millisecond,
	}
	partial, err := Run(ctx, &hooked, space, explorer.RenewablesBatteryCAS, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: want context.Canceled, got %v", err)
	}
	if partial.Report.Evaluated == 0 {
		t.Fatal("cancellation left nothing evaluated — nothing to prove resume with")
	}
	if partial.Report.Evaluated >= want.Report.Evaluated {
		t.Fatal("cancellation fired too late: the sweep completed anyway")
	}

	opts.Worker = "second"
	got, err := Run(context.Background(), in, space, explorer.RenewablesBatteryCAS, opts)
	if err != nil {
		t.Fatalf("re-invoked run: %v", err)
	}
	requireSameResult(t, want, got)
	if !got.Resumed {
		t.Fatal("re-invoked run did not report resuming the first run's progress")
	}
	if got.Report.Restored == 0 {
		t.Fatal("re-invoked run restored nothing — it re-evaluated the first run's work")
	}
}
