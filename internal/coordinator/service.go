package coordinator

// Service is the transport-agnostic lease-coordination core: the same
// claim / heartbeat / complete / status protocol the file-based board runs
// over a shared mount, extracted so a stdlib HTTP server (httpserver.go)
// can offer it to workers with no common filesystem at all.
//
// Every piece of coordinator state is persisted through the existing
// versioned atomic checkpoint machinery — the lease files and per-lease
// sweep checkpoints of the file protocol, plus one state.json describing
// the registered sweep — so a killed-and-restarted coordinator resumes its
// fleet: workers re-register idempotently, done leases stay done, and
// in-flight leases either keep heartbeating (their owners never noticed the
// outage) or expire and are stolen. No wall-clock reads happen here; all
// liveness arithmetic stays in lease.go, the package's one detrand-exempt
// file.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"carbonexplorer/internal/sweep"
)

// Service errors, surfaced over HTTP as structured error codes (see
// httpserver.go) so clients can dispatch on them with errors.Is after the
// round trip.
var (
	// ErrNotRegistered reports a claim/heartbeat/complete/checkpoint call
	// before any worker registered a sweep. Workers react by
	// (re-)registering — the crash-recovery path after a coordinator
	// restart that lost its state directory.
	ErrNotRegistered = errors.New("coordinator: no sweep registered")
	// ErrSweepMismatch reports a request describing a different sweep than
	// the one registered (space hash, design count, or lease geometry
	// disagree). It is never retried: the worker is pointed at the wrong
	// coordinator or built a different space.
	ErrSweepMismatch = errors.New("coordinator: sweep mismatch")
	// ErrLeaseIncomplete reports a complete call whose uploaded checkpoint
	// does not actually finish the lease's slice; the lease stays running
	// and will expire back into the pool.
	ErrLeaseIncomplete = errors.New("coordinator: lease checkpoint incomplete")
	// ErrLivenessConfig reports a lease TTL too close to the worker's
	// heartbeat interval: scheduling jitter would get leases stolen from
	// live workers. The TTL must be at least HeartbeatSafetyFactor
	// heartbeats.
	ErrLivenessConfig = errors.New("coordinator: lease TTL too close to heartbeat interval")
	// ErrNoProgress reports a merged-checkpoint request before any lease
	// uploaded progress.
	ErrNoProgress = errors.New("coordinator: no lease progress recorded yet")
)

// HeartbeatSafetyFactor is the minimum ratio of lease TTL to heartbeat
// interval: below it, ordinary scheduling jitter (a GC pause, a slow disk)
// reads as worker death and live leases get stolen.
const HeartbeatSafetyFactor = 3

// stateVersion is the on-disk coordinator state schema version.
const stateVersion = 1

// stateFile is the persisted registration record: everything a restarted
// coordinator needs to rebuild its lease board for the same sweep.
type stateFile struct {
	Version   int    `json:"version"`
	SpaceHash string `json:"space_hash"`
	Site      string `json:"site"`
	Strategy  int    `json:"strategy"`
	Designs   int    `json:"designs"`
	Leases    int    `json:"leases"`
}

// --- Wire types -------------------------------------------------------------

// RegisterRequest announces a worker and the sweep it intends to join. The
// first registration fixes the sweep; later ones (including re-registration
// after a coordinator restart) are idempotent as long as they describe the
// same space.
type RegisterRequest struct {
	// Owner is the worker's owner-label prefix, for operator-facing logs.
	Owner string `json:"owner"`
	// SpaceHash fingerprints the sweep (sweep.SpaceHash); workers and
	// coordinator must agree on it exactly.
	SpaceHash string `json:"space_hash"`
	// Site and Strategy describe the sweep for status reporting.
	Site     string `json:"site"`
	Strategy int    `json:"strategy"`
	// Designs is the enumeration length; with Leases it determines the
	// deterministic sweep.PlanShards partition both sides compute.
	Designs int `json:"designs"`
	// Leases is the worker's proposed lease count. The first registrant's
	// proposal wins (unless the coordinator pins one); the response carries
	// the authoritative count every worker must re-plan with.
	Leases int `json:"leases"`
	// HeartbeatMS is the worker's heartbeat interval in milliseconds, so
	// the coordinator can reject a liveness configuration whose TTL is too
	// tight (see HeartbeatSafetyFactor).
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// RegisterResponse carries the coordinator's authoritative sweep geometry.
type RegisterResponse struct {
	// Leases is the authoritative lease count; workers re-plan their
	// shards with it.
	Leases int `json:"leases"`
	// ExpiryMS is the coordinator's lease TTL in milliseconds.
	ExpiryMS int64 `json:"expiry_ms"`
	// Complete reports the registered sweep was already finished and
	// archived by an earlier generation (an adaptive refinement round a
	// faster fleet moved past). The worker should fetch the archived merged
	// checkpoint for its space hash and evaluate nothing.
	Complete bool `json:"complete,omitempty"`
}

// ClaimRequest asks for the next available lease.
type ClaimRequest struct {
	Owner string `json:"owner"`
}

// ClaimResponse is the outcome of a claim: a lease to work on, "wait"
// (every remaining lease is healthily running elsewhere), or "done" (the
// sweep is complete).
type ClaimResponse struct {
	// Lease is the claimed 0-based lease index; -1 when Wait or Done.
	Lease int `json:"lease"`
	// Shard is the lease's "i/L" slice label, for cross-checking the
	// worker's own plan.
	Shard string `json:"shard,omitempty"`
	// Stolen reports the claim reclaimed an expired or corrupt lease.
	Stolen bool `json:"stolen,omitempty"`
	// Done reports every lease is complete; the worker should fetch the
	// merged checkpoint and stop.
	Done bool `json:"done,omitempty"`
	// Wait reports no lease is claimable right now; poll again after a
	// heartbeat interval.
	Wait bool `json:"wait,omitempty"`
	// Checkpoint is the lease's last uploaded sweep checkpoint, if any —
	// the stolen-lease resume path: the thief folds it instead of
	// re-evaluating the dead owner's designs.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// HeartbeatRequest refreshes a claimed lease's liveness and optionally
// ships the worker's current partial checkpoint so progress survives the
// worker's death.
type HeartbeatRequest struct {
	Owner string `json:"owner"`
	Lease int    `json:"lease"`
	// Checkpoint, when non-empty, is the lease's current partial sweep
	// checkpoint. The coordinator folds it into its stored copy — a
	// monotone merge, so a stale upload can never regress progress.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// CompleteRequest publishes a finished lease with its final checkpoint.
type CompleteRequest struct {
	Owner      string          `json:"owner"`
	Lease      int             `json:"lease"`
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// LeaseStatus is one lease's row in a status report.
type LeaseStatus struct {
	Lease  int    `json:"lease"`
	Shard  string `json:"shard"`
	State  string `json:"state"` // pending | running | expired | corrupt | done
	Owner  string `json:"owner,omitempty"`
	Stolen int    `json:"stolen,omitempty"`
	// AgeMS is the heartbeat age for running and expired leases.
	AgeMS int64 `json:"age_ms,omitempty"`
}

// StatusResponse is the coordinator's fleet-wide progress report.
type StatusResponse struct {
	Registered bool   `json:"registered"`
	SpaceHash  string `json:"space_hash,omitempty"`
	Site       string `json:"site,omitempty"`
	Strategy   int    `json:"strategy,omitempty"`
	Designs    int    `json:"designs,omitempty"`
	LeaseCount int    `json:"lease_count,omitempty"`
	ExpiryMS   int64  `json:"expiry_ms"`
	// Done, Running, Expired, Corrupt, and Pending count leases by state.
	Done    int `json:"done"`
	Running int `json:"running"`
	Expired int `json:"expired"`
	Corrupt int `json:"corrupt"`
	Pending int `json:"pending"`
	// Complete reports every lease done.
	Complete bool `json:"complete"`
	// Leases lists per-lease detail in lease order.
	Leases []LeaseStatus `json:"leases,omitempty"`
}

// --- Service ----------------------------------------------------------------

// ServiceOptions configures a lease service.
type ServiceOptions struct {
	// Expiry is the lease TTL: how stale a running lease's heartbeat must
	// be before a claim may steal it (default 10s).
	Expiry time.Duration
	// Leases, when > 0, pins the lease count regardless of what the first
	// registrant proposes.
	Leases int
}

// Service is the lease-coordination core shared by every transport. All
// state lives in the state directory via atomic writes, so the service
// itself can die and restart at any point without losing its fleet.
type Service struct {
	dir    string
	expiry time.Duration
	pinned int // pinned lease count, 0 = first registrant decides

	// mu serializes registration and checkpoint-upload merges; the board
	// has its own lock for lease claims. The protocol is
	// short-critical-section by design, so one lock is plenty at fleet
	// scale.
	mu    sync.Mutex
	meta  *stateFile
	b     *board
	plans []sweep.ShardPlan
}

// NewService opens (or creates) a lease service over the given state
// directory. If a previous coordinator registered a sweep there, its state
// is reloaded and the fleet resumes where it left off.
func NewService(stateDir string, opts ServiceOptions) (*Service, error) {
	if stateDir == "" {
		return nil, fmt.Errorf("coordinator: service needs a state directory")
	}
	if opts.Expiry <= 0 {
		opts.Expiry = 10 * time.Second
	}
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return nil, fmt.Errorf("coordinator: creating state directory: %w", err)
	}
	s := &Service{dir: stateDir, expiry: opts.Expiry, pinned: opts.Leases}
	if err := s.loadState(); err != nil {
		return nil, err
	}
	return s, nil
}

// statePath is the persisted registration record.
func (s *Service) statePath() string { return filepath.Join(s.dir, "state.json") }

// MergedCheckpointPath returns the merged sweep checkpoint path inside a
// coordination state (or lease) directory. Both coordination modes fold
// shard checkpoints into this file; downstream consumers — `optimize
// -resume`, `serve -state` — read it from here rather than guessing the
// name.
func MergedCheckpointPath(stateDir string) string { return filepath.Join(stateDir, "merged.json") }

// mergedPath is the merged sweep checkpoint.
func (s *Service) mergedPath() string { return MergedCheckpointPath(s.dir) }

// loadState restores a previous coordinator's registration, if present.
func (s *Service) loadState() error {
	data, err := os.ReadFile(s.statePath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("coordinator: reading state: %w", err)
	}
	var st stateFile
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("coordinator: decoding state %s: %w", s.statePath(), err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("coordinator: state %s has version %d, this build reads %d", s.statePath(), st.Version, stateVersion)
	}
	return s.adopt(&st)
}

// adopt installs a registration: plans the lease partition and opens the
// board over the state directory.
func (s *Service) adopt(st *stateFile) error {
	plans, err := sweep.PlanShards(st.Designs, st.Leases)
	if err != nil {
		return fmt.Errorf("coordinator: planning %d leases over %d designs: %w", st.Leases, st.Designs, err)
	}
	b, err := newBoard(s.dir, plans, s.expiry/HeartbeatSafetyFactor, s.expiry)
	if err != nil {
		return err
	}
	s.meta, s.b, s.plans = st, b, plans
	return nil
}

// Register announces a worker. The first registration fixes the sweep and
// persists it; later registrations validate against it and receive the
// authoritative geometry. Safe to call any number of times — workers
// re-register after a coordinator restart.
func (s *Service) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.SpaceHash == "" || req.Designs <= 0 {
		return RegisterResponse{}, fmt.Errorf("%w: registration needs a space hash and a positive design count", ErrSweepMismatch)
	}
	if req.HeartbeatMS > 0 && s.expiry.Milliseconds() < HeartbeatSafetyFactor*req.HeartbeatMS {
		return RegisterResponse{}, fmt.Errorf("%w: TTL %v < %d × heartbeat %dms", ErrLivenessConfig, s.expiry, HeartbeatSafetyFactor, req.HeartbeatMS)
	}
	s.lock()
	defer s.unlock()
	if s.meta != nil && s.meta.SpaceHash == req.SpaceHash && s.meta.Designs == req.Designs {
		return RegisterResponse{Leases: s.meta.Leases, ExpiryMS: s.expiry.Milliseconds()}, nil
	}
	// A hash the service has already finished and archived — a lagging fleet
	// registering a refinement round the coordinator moved past — is
	// answered with Complete; the worker fetches the archived fold instead
	// of evaluating.
	if _, err := os.Stat(s.archivePath(req.SpaceHash)); err == nil {
		leases := req.Leases
		if leases <= 0 {
			leases = 1
		}
		return RegisterResponse{Leases: leases, ExpiryMS: s.expiry.Milliseconds(), Complete: true}, nil
	}
	if s.meta != nil {
		// A different sweep on a busy coordinator: advance the generation if
		// the current one is finished (the adaptive round-to-round
		// handshake), reject otherwise.
		if err := s.advanceGeneration(req); err != nil {
			return RegisterResponse{}, err
		}
	}
	leases := req.Leases
	if s.pinned > 0 {
		leases = s.pinned
	}
	if leases <= 0 {
		leases = 1
	}
	if leases > req.Designs {
		leases = req.Designs
	}
	st := &stateFile{
		Version:   stateVersion,
		SpaceHash: req.SpaceHash,
		Site:      req.Site,
		Strategy:  req.Strategy,
		Designs:   req.Designs,
		Leases:    leases,
	}
	if err := s.adopt(st); err != nil {
		return RegisterResponse{}, err
	}
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return RegisterResponse{}, fmt.Errorf("coordinator: encoding state: %w", err)
	}
	if err := sweep.WriteFileAtomic(s.statePath(), append(data, '\n')); err != nil {
		s.meta, s.b, s.plans = nil, nil, nil
		return RegisterResponse{}, err
	}
	return RegisterResponse{Leases: st.Leases, ExpiryMS: s.expiry.Milliseconds()}, nil
}

// archivePath is the immutable merged checkpoint of a finished generation,
// keyed by its space hash. Adaptive refinements leave one file per completed
// round behind, so any fleet — however far behind — can replay the rounds it
// missed from the archive.
func (s *Service) archivePath(hash string) string {
	return filepath.Join(s.dir, "merged-"+hash+".json")
}

// advanceGeneration retires the current registration in favor of req's
// sweep: the current generation's merged fold is archived under its space
// hash and its board is wiped, leaving the service unregistered for the
// caller to adopt the new sweep. It refuses while the current generation
// still has work left — an in-progress sweep is never abandoned for a new
// one. Caller holds s.mu.
//
// Crash safety: the archive write is atomic and happens first. A crash
// between the archive and the new registration leaves the old state.json in
// place with its lease files gone — the old generation re-registers
// idempotently and, at worst, re-evaluates; nothing is ever silently wrong.
func (s *Service) advanceGeneration(req RegisterRequest) error {
	if req.SpaceHash == s.meta.SpaceHash {
		return fmt.Errorf("%w: registered sweep has space hash %s over %d designs; worker %q brings %s over %d",
			ErrSweepMismatch, s.meta.SpaceHash, s.meta.Designs, req.Owner, req.SpaceHash, req.Designs)
	}
	data, complete, err := s.mergedLocked()
	if err != nil || !complete {
		return fmt.Errorf("%w: registered sweep (space hash %s over %d designs) is still in progress; worker %q brings %s over %d",
			ErrSweepMismatch, s.meta.SpaceHash, s.meta.Designs, req.Owner, req.SpaceHash, req.Designs)
	}
	if err := sweep.WriteFileAtomic(s.archivePath(s.meta.SpaceHash), data); err != nil {
		return fmt.Errorf("coordinator: archiving finished generation: %w", err)
	}
	s.b.reset()
	_ = os.Remove(s.mergedPath())
	s.meta, s.b, s.plans = nil, nil, nil
	return nil
}

// mergedLocked folds every stored per-lease checkpoint into the merged
// checkpoint and returns its bytes plus completeness. Caller holds s.mu.
func (s *Service) mergedLocked() (data []byte, complete bool, err error) {
	srcs := s.b.existingCheckpoints()
	if len(srcs) == 0 {
		if data, err := os.ReadFile(s.mergedPath()); err == nil {
			return data, true, nil
		}
		return nil, false, ErrNoProgress
	}
	rep, err := sweep.MergeCheckpoints(s.mergedPath(), srcs...)
	if err != nil {
		return nil, false, err
	}
	data, err = os.ReadFile(s.mergedPath())
	if err != nil {
		return nil, false, fmt.Errorf("coordinator: reading merged checkpoint: %w", err)
	}
	return data, rep.Complete(), nil
}

func (s *Service) lock()   { s.mu.Lock() }
func (s *Service) unlock() { s.mu.Unlock() }

// registered snapshots the current registration under the lock. The three
// fields are only ever replaced together by Register, so a consistent
// snapshot is all any read path needs.
func (s *Service) registered() (*stateFile, *board, []sweep.ShardPlan) {
	s.lock()
	defer s.unlock()
	return s.meta, s.b, s.plans
}

// Claim hands out the next available lease along with its last uploaded
// checkpoint, so a stolen lease resumes instead of restarting.
func (s *Service) Claim(req ClaimRequest) (ClaimResponse, error) {
	meta, b, plans := s.registered()
	if meta == nil {
		return ClaimResponse{}, ErrNotRegistered
	}
	t, done, err := b.claim(req.Owner)
	if err != nil {
		return ClaimResponse{}, err
	}
	if t == nil {
		return ClaimResponse{Lease: -1, Done: done, Wait: !done}, nil
	}
	resp := ClaimResponse{Lease: t.lease, Shard: plans[t.lease].Shard.String(), Stolen: t.stolen}
	if data, err := os.ReadFile(b.checkpointPath(t.lease)); err == nil {
		resp.Checkpoint = data
	}
	return resp, nil
}

// Heartbeat refreshes a lease's liveness and folds any shipped partial
// checkpoint into the stored copy. Folding is monotone (statuses only move
// forward), so a stale owner racing a thief can slow nothing down and
// regress nothing — the same benign-race semantics the file protocol has.
func (s *Service) Heartbeat(req HeartbeatRequest) error {
	meta, b, plans := s.registered()
	if meta == nil {
		return ErrNotRegistered
	}
	if err := checkLease(req.Lease, plans); err != nil {
		return err
	}
	if err := s.storeUpload(meta, b, plans, req.Lease, req.Checkpoint); err != nil {
		return err
	}
	return b.refresh(req.Lease, req.Owner)
}

// Complete publishes a lease as done after verifying its uploaded
// checkpoint truly finishes the slice; an incomplete upload is stored (it
// still moves progress forward) but the lease stays running and will
// expire back into the pool.
func (s *Service) Complete(req CompleteRequest) error {
	meta, b, plans := s.registered()
	if meta == nil {
		return ErrNotRegistered
	}
	if err := checkLease(req.Lease, plans); err != nil {
		return err
	}
	if err := s.storeUpload(meta, b, plans, req.Lease, req.Checkpoint); err != nil {
		return err
	}
	// The stored per-lease checkpoint is a merged (hence unsharded) file, so
	// count statuses inside the lease's own slice, not the file's label.
	p, err := sweep.ProgressWithin(b.checkpointPath(req.Lease), plans[req.Lease].Shard)
	if err != nil {
		return err
	}
	if p.Pending > 0 || p.FailedOnce > 0 {
		return fmt.Errorf("%w: lease %d has %d pending and %d retryable designs after upload",
			ErrLeaseIncomplete, req.Lease, p.Pending, p.FailedOnce)
	}
	return b.finish(req.Lease, req.Owner)
}

// checkLease validates a lease index against the registered geometry.
func checkLease(li int, plans []sweep.ShardPlan) error {
	if li < 0 || li >= len(plans) {
		return fmt.Errorf("%w: lease %d outside [0, %d)", ErrSweepMismatch, li, len(plans))
	}
	return nil
}

// storeUpload folds uploaded checkpoint bytes into the lease's stored
// checkpoint. The existing merge machinery does the heavy lifting: statuses
// join monotonically and mismatched sweeps are rejected, so no upload can
// corrupt or regress coordinator state.
func (s *Service) storeUpload(meta *stateFile, b *board, plans []sweep.ShardPlan, li int, payload []byte) error {
	if len(payload) == 0 {
		return nil
	}
	// Serialize the read-merge-write below: two concurrent uploads for the
	// same lease must fold sequentially or one's progress could be dropped.
	s.lock()
	defer s.unlock()
	staged := filepath.Join(s.dir, fmt.Sprintf("upload-%04d.json", li+1))
	if err := sweep.WriteFileAtomic(staged, payload); err != nil {
		return err
	}
	defer func() {
		// Best-effort: a leftover staging file is re-written by the next
		// upload for this lease.
		_ = os.Remove(staged)
	}()
	p, err := sweep.Progress(staged)
	if err != nil {
		return fmt.Errorf("coordinator: lease %d upload is not a valid checkpoint: %w", li, err)
	}
	if p.SpaceHash != meta.SpaceHash {
		return fmt.Errorf("%w: lease %d upload has space hash %s, sweep has %s", ErrSweepMismatch, li, p.SpaceHash, meta.SpaceHash)
	}
	want := plans[li].Shard
	if !p.Shard.IsZero() && p.Shard != want {
		return fmt.Errorf("%w: lease %d upload covers shard %s, want %s", ErrSweepMismatch, li, p.Shard, want)
	}
	dst := b.checkpointPath(li)
	srcs := []string{staged}
	if _, err := os.Stat(dst); err == nil {
		srcs = []string{dst, staged}
	}
	if _, err := sweep.MergeCheckpoints(dst, srcs...); err != nil {
		return fmt.Errorf("coordinator: folding lease %d upload: %w", li, err)
	}
	return nil
}

// Status reports fleet-wide progress without mutating anything.
func (s *Service) Status() StatusResponse {
	resp := StatusResponse{ExpiryMS: s.expiry.Milliseconds()}
	meta, b, plans := s.registered()
	if meta == nil {
		return resp
	}
	resp.Registered = true
	resp.SpaceHash = meta.SpaceHash
	resp.Site = meta.Site
	resp.Strategy = meta.Strategy
	resp.Designs = meta.Designs
	resp.LeaseCount = meta.Leases
	for li := range plans {
		snap := b.snapshot(li)
		resp.Leases = append(resp.Leases, LeaseStatus{
			Lease:  li,
			Shard:  plans[li].Shard.String(),
			State:  snap.state,
			Owner:  snap.owner,
			Stolen: snap.stolen,
			AgeMS:  snap.ageMS,
		})
		switch snap.state {
		case leaseStateDone:
			resp.Done++
		case leaseStateRunning:
			resp.Running++
		case leaseStateExpired:
			resp.Expired++
		case leaseStateCorrupt:
			resp.Corrupt++
		default:
			resp.Pending++
		}
	}
	resp.Complete = len(plans) > 0 && resp.Done == len(plans)
	return resp
}

// MergedCheckpoint folds every stored per-lease checkpoint into the merged
// checkpoint and returns its bytes, plus whether the sweep is complete.
// Callable at any point: mid-sweep it returns the partial fold a cancelled
// fleet can restore from.
func (s *Service) MergedCheckpoint() (data []byte, complete bool, err error) {
	s.lock()
	defer s.unlock()
	if s.meta == nil {
		return nil, false, ErrNotRegistered
	}
	return s.mergedLocked()
}

// MergedCheckpointFor returns the merged checkpoint for the given space
// hash: the current generation's fold if the hash matches it, or the
// archived fold of a finished generation. An unknown hash returns
// ErrNoProgress.
func (s *Service) MergedCheckpointFor(hash string) ([]byte, error) {
	s.lock()
	defer s.unlock()
	if s.meta != nil && s.meta.SpaceHash == hash {
		data, _, err := s.mergedLocked()
		return data, err
	}
	data, err := os.ReadFile(s.archivePath(hash))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: no checkpoint for space hash %s", ErrNoProgress, hash)
		}
		return nil, fmt.Errorf("coordinator: reading archived checkpoint: %w", err)
	}
	return data, nil
}
