// Package dcload models hyperscale datacenter power demand. It substitutes
// for the Meta production traces the paper consumes, reproducing their
// published shape (Section 3.1, Figure 3): CPU utilization swings about 20
// percentage points over the day, while datacenter power — a linear function
// of utilization with a large idle intercept — swings only about 4% between
// its daily maximum and minimum. Weekly patterns, special-event peaks, and
// noise are layered on top.
//
// The package also loads measured demand traces from CSV. LoadPowerCSV is
// strict; LoadPowerCSVTolerant repairs bounded defects (NaN runs, negative
// noise) under a timeseries.RepairPolicy and reports every altered hour, so
// real exports with meter dropouts remain usable without silent data edits.
package dcload
