package dcload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"carbonexplorer/internal/timeseries"
)

func TestPowerCSVRoundTrip(t *testing.T) {
	trace, err := Generate(DefaultParams(40), 24*30)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePowerCSV(&buf, trace.Power); err != nil {
		t.Fatal(err)
	}
	parsed, err := LoadPowerCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(trace.Power, 1e-3) {
		t.Fatal("power round trip mismatch")
	}
}

func TestLoadPowerCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "a,b\n0,1\n",
		"header only":  "hour,power_mw\n",
		"bad hour":     "hour,power_mw\nx,5\n",
		"out of order": "hour,power_mw\n3,5\n",
		"bad power":    "hour,power_mw\n0,zz\n",
		"negative":     "hour,power_mw\n0,-5\n",
		"short row":    "hour,power_mw\n0\n",
	}
	for name, input := range cases {
		if _, err := LoadPowerCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadPowerCSVMinimal(t *testing.T) {
	s, err := LoadPowerCSV(strings.NewReader("hour,power_mw\n0,10.5\n1,11\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.At(0) != 10.5 || s.At(1) != 11 {
		t.Fatalf("parsed wrong: %v", s.Values())
	}
}

func TestTraceFromPowerInvertsModel(t *testing.T) {
	// Generate a synthetic trace, reconstruct from its power, and compare
	// utilization up to the peak-normalization of capacity.
	orig, err := Generate(DefaultParams(40), 24*60)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := TraceFromPower(orig.Power, orig.IdleFraction)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity is estimated from the observed peak, which is below the true
	// provisioned capacity; utilization is correspondingly rescaled but
	// must correlate perfectly with the original.
	if rebuilt.CapacityMW > orig.CapacityMW+1e-9 {
		t.Fatalf("estimated capacity %v above true %v", rebuilt.CapacityMW, orig.CapacityMW)
	}
	if corr := rebuilt.UtilPowerCorrelation(); corr < 0.999 {
		t.Fatalf("rebuilt util-power correlation = %v", corr)
	}
	if rebuilt.Util.MinValue() < 0 || rebuilt.Util.MaxValue() > 1 {
		t.Fatalf("rebuilt utilization out of range")
	}
	// Same demand statistics flow through.
	if math.Abs(rebuilt.DailyPowerSwing()-orig.DailyPowerSwing()) > 1e-9 {
		t.Fatalf("power swing changed in reconstruction")
	}
}

func TestTraceFromPowerValidation(t *testing.T) {
	if _, err := TraceFromPower(timeseries.New(0), 0.8); err == nil {
		t.Fatal("empty series should error")
	}
	if _, err := TraceFromPower(timeseries.Constant(10, 5), 1.0); err == nil {
		t.Fatal("idle fraction 1 should error")
	}
	if _, err := TraceFromPower(timeseries.New(10), 0.8); err == nil {
		t.Fatal("all-zero power should error")
	}
}

func TestTraceFromPowerClampsBelowIdle(t *testing.T) {
	// An hour far below the idle floor maps to zero utilization.
	power := timeseries.FromValues([]float64{100, 10})
	tr, err := TraceFromPower(power, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Util.At(1) != 0 {
		t.Fatalf("below-idle hour should clamp to zero util, got %v", tr.Util.At(1))
	}
	if tr.Util.At(0) != 1 {
		t.Fatalf("peak hour should be util 1, got %v", tr.Util.At(0))
	}
}
