package dcload

import (
	"bytes"
	"strings"
	"testing"

	"carbonexplorer/internal/timeseries"
)

// FuzzLoadPowerCSV exercises the power-trace parser with arbitrary input:
// it must either return an error or a finite, non-negative series — never
// panic. The tolerant loader runs on the same input under the same
// invariants, and must accept anything the strict loader accepts.
func FuzzLoadPowerCSV(f *testing.F) {
	// A valid round-tripped trace.
	var buf bytes.Buffer
	if err := WritePowerCSV(&buf, timeseries.Constant(48, 25)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("hour,power_mw\n0,25\n1,26\n")
	f.Add("hour,power_mw\n")
	f.Add("")
	f.Add("wrong,header\n0,25\n")
	// Value faults: negatives, non-finite, huge magnitudes, overflow.
	f.Add("hour,power_mw\n0,-25\n")
	f.Add("hour,power_mw\n0,NaN\n")
	f.Add("hour,power_mw\n0,+Inf\n1,-Inf\n")
	f.Add("hour,power_mw\n0,1e308\n1,1e999\n")
	// Structural faults: out-of-sequence hours, wrong field count, junk.
	f.Add("hour,power_mw\n5,25\n")
	f.Add("hour,power_mw\n0,25\n0,26\n")
	f.Add("hour,power_mw\n0,25,extra\n")
	f.Add("hour,power_mw\nx,y\n")
	// A short NaN gap the tolerant loader should repair.
	f.Add("hour,power_mw\n0,10\n1,NaN\n2,12\n")

	f.Fuzz(func(t *testing.T, input string) {
		s, err := LoadPowerCSV(strings.NewReader(input))
		if err == nil {
			if s.Len() == 0 {
				t.Fatal("strict: accepted input yielded empty series")
			}
			if verr := s.Validate(); verr != nil {
				t.Fatalf("strict: accepted series is invalid: %v", verr)
			}
		}

		ts, rep, terr := LoadPowerCSVTolerant(strings.NewReader(input), timeseries.DefaultRepairPolicy())
		if terr == nil {
			if ts.Len() == 0 {
				t.Fatal("tolerant: accepted input yielded empty series")
			}
			if verr := ts.Validate(); verr != nil {
				t.Fatalf("tolerant: accepted series is invalid: %v", verr)
			}
		}
		if err == nil {
			if terr != nil {
				t.Fatalf("tolerant loader rejected strictly-valid input: %v", terr)
			}
			if rep.Changed() {
				t.Fatalf("tolerant loader repaired strictly-valid input: %+v", rep)
			}
		}
	})
}
