package dcload

import (
	"math"
	"testing"

	"carbonexplorer/internal/synth"
	"carbonexplorer/internal/timeseries"
)

func TestPUEModelAt(t *testing.T) {
	m := DefaultPUEModel()
	if got := m.At(10); got != m.BasePUE {
		t.Fatalf("cold-weather PUE = %v, want base %v", got, m.BasePUE)
	}
	if got := m.At(28); math.Abs(got-(1.08+0.01*10)) > 1e-12 {
		t.Fatalf("28C PUE = %v", got)
	}
	if got := m.At(200); got != m.MaxPUE {
		t.Fatalf("extreme PUE should cap: %v", got)
	}
}

func TestPUEValidation(t *testing.T) {
	bad := []PUEModel{
		{BasePUE: 0.9, MaxPUE: 2},
		{BasePUE: 1.1, PerDegreeC: -1, MaxPUE: 2},
		{BasePUE: 1.3, MaxPUE: 1.1},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
	if err := DefaultPUEModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyPUE(t *testing.T) {
	it := timeseries.Constant(48, 10)
	temp := timeseries.Generate(48, func(h int) float64 {
		if h < 24 {
			return 10 // free cooling
		}
		return 30 // mechanical cooling
	})
	m := DefaultPUEModel()
	total, err := ApplyPUE(it, temp, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := total.At(0); math.Abs(got-10*1.08) > 1e-12 {
		t.Fatalf("cold-hour facility power = %v", got)
	}
	if got := total.At(30); math.Abs(got-10*m.At(30)) > 1e-12 {
		t.Fatalf("hot-hour facility power = %v", got)
	}
	if total.At(30) <= total.At(0) {
		t.Fatalf("hot hours must cost more cooling")
	}
}

func TestApplyPUEValidation(t *testing.T) {
	if _, err := ApplyPUE(timeseries.New(5), timeseries.New(4), DefaultPUEModel()); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := ApplyPUE(timeseries.New(5), timeseries.New(5), PUEModel{BasePUE: 0.5, MaxPUE: 1}); err == nil {
		t.Fatal("invalid model should error")
	}
}

func TestTemperatureModelShape(t *testing.T) {
	temp := synth.Temperature(synth.DefaultTemperatureParams(), timeseries.HoursPerYear)
	// Summer (around day 205) hotter than winter (around day 20).
	summer := temp.Slice(200*24, 210*24).Mean()
	winter := temp.Slice(15*24, 25*24).Mean()
	if summer <= winter+10 {
		t.Fatalf("summer %v should be well above winter %v", summer, winter)
	}
	// Afternoon hotter than pre-dawn on average.
	avg := temp.AverageDay()
	if avg.At(15) <= avg.At(4) {
		t.Fatalf("diurnal shape wrong: 3pm %v vs 4am %v", avg.At(15), avg.At(4))
	}
	// Deterministic.
	again := synth.Temperature(synth.DefaultTemperatureParams(), timeseries.HoursPerYear)
	if !temp.Equal(again, 0) {
		t.Fatalf("temperature model not deterministic")
	}
}

func TestSeasonalPUEInteractsWithCoverage(t *testing.T) {
	// Facility power with seasonal PUE peaks in hot afternoons — exactly
	// when solar peaks — so against a solar-heavy supply the coverage hit
	// from cooling overhead is partially self-compensating. This test just
	// pins the mechanics: facility energy exceeds IT energy, by a summer-
	// weighted margin.
	it, err := Generate(DefaultParams(20), timeseries.HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	temp := synth.Temperature(synth.DefaultTemperatureParams(), timeseries.HoursPerYear)
	facility, err := ApplyPUE(it.Power, temp, DefaultPUEModel())
	if err != nil {
		t.Fatal(err)
	}
	overhead := facility.Sum() / it.Power.Sum()
	if overhead < 1.08 || overhead > 1.3 {
		t.Fatalf("annual PUE = %v, implausible", overhead)
	}
	// Summer overhead above winter overhead.
	sum := func(s timeseries.Series, d0, d1 int) float64 { return s.Slice(d0*24, d1*24).Sum() }
	summerPUE := sum(facility, 190, 220) / sum(it.Power, 190, 220)
	winterPUE := sum(facility, 10, 40) / sum(it.Power, 10, 40)
	if summerPUE <= winterPUE {
		t.Fatalf("summer PUE %v should exceed winter %v", summerPUE, winterPUE)
	}
}
