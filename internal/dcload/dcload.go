package dcload

import (
	"fmt"
	"math"

	"carbonexplorer/internal/stats"
	"carbonexplorer/internal/synth"
	"carbonexplorer/internal/timeseries"
)

// Params configures the demand model for one datacenter.
type Params struct {
	// AvgPowerMW is the target average power draw.
	AvgPowerMW float64
	// MeanUtil is the average CPU utilization in [0, 1].
	MeanUtil float64
	// UtilSwing is the peak-to-trough diurnal utilization swing (paper:
	// about 0.20 for an average Meta datacenter).
	UtilSwing float64
	// IdleFraction is the fraction of peak power drawn at zero utilization.
	// The high default (~0.84) reflects that at datacenter scale much of
	// the power (cooling, networking, storage, DRAM refresh) does not track
	// CPU load, which is what compresses a 20-point utilization swing into
	// the paper's ~4% power swing.
	IdleFraction float64
	// WeekendDip is the fractional utilization reduction on weekends.
	WeekendDip float64
	// EventsPerYear is the expected number of special-event/holiday demand
	// peaks.
	EventsPerYear float64
	// NoiseStdDev is the hourly multiplicative noise on utilization.
	NoiseStdDev float64
	// Seed isolates the model's random stream.
	Seed uint64
}

// DefaultParams returns the paper-calibrated demand model for a datacenter
// with the given average power.
func DefaultParams(avgPowerMW float64) Params {
	return Params{
		AvgPowerMW:    avgPowerMW,
		MeanUtil:      0.55,
		UtilSwing:     0.20,
		IdleFraction:  0.84,
		WeekendDip:    0.05,
		EventsPerYear: 8,
		NoiseStdDev:   0.015,
		Seed:          42,
	}
}

// Validate reports the first implausible parameter, or nil.
func (p Params) Validate() error {
	switch {
	case p.AvgPowerMW <= 0:
		return fmt.Errorf("dcload: average power must be positive")
	case p.MeanUtil <= 0 || p.MeanUtil >= 1:
		return fmt.Errorf("dcload: mean utilization %v out of (0, 1)", p.MeanUtil)
	case p.UtilSwing < 0 || p.MeanUtil+p.UtilSwing/2 > 1 || p.MeanUtil-p.UtilSwing/2 < 0:
		return fmt.Errorf("dcload: utilization swing %v incompatible with mean %v", p.UtilSwing, p.MeanUtil)
	case p.IdleFraction < 0 || p.IdleFraction >= 1:
		return fmt.Errorf("dcload: idle fraction %v out of [0, 1)", p.IdleFraction)
	}
	return nil
}

// Trace is one simulated demand trace: hourly CPU utilization and the
// corresponding hourly power draw.
type Trace struct {
	// Util is hourly fleet CPU utilization in [0, 1].
	Util timeseries.Series
	// Power is hourly power draw in MW.
	Power timeseries.Series
	// CapacityMW is the fleet's provisioned power at 100% utilization; it
	// is the natural P_DCMAX reference for the carbon-aware scheduler.
	CapacityMW float64
	// IdleFraction echoes the power model's intercept for PowerAt.
	IdleFraction float64
}

// Generate simulates hours of demand. The result is deterministic in
// p.Seed.
func Generate(p Params, hours int) (Trace, error) {
	if err := p.Validate(); err != nil {
		return Trace{}, err
	}
	rng := synth.NewRNG(p.Seed)
	eventRNG := rng.Fork()

	util := timeseries.New(hours)
	eventRemaining, eventBoost := 0, 0.0
	pEvent := p.EventsPerYear / float64(timeseries.HoursPerYear)
	for h := 0; h < hours; h++ {
		hour := h % 24
		weekday := (h / 24) % 7
		// Diurnal utilization: trough in the early morning, peak in the
		// evening (paper Figure 3 left).
		diurnal := p.UtilSwing / 2 * math.Sin(2*math.Pi*(float64(hour)-10)/24)
		u := p.MeanUtil + diurnal
		if weekday >= 5 {
			u -= p.WeekendDip
		}
		if eventRemaining > 0 {
			u += eventBoost
			eventRemaining--
		} else if eventRNG.Float64() < pEvent {
			eventRemaining = 6 + int(eventRNG.Float64()*18)
			eventBoost = 0.05 + 0.08*eventRNG.Float64()
		}
		u *= 1 + p.NoiseStdDev*rng.NormFloat64()
		if u < 0.01 {
			u = 0.01
		}
		if u > 0.99 {
			u = 0.99
		}
		util.Set(h, u)
	}

	// Fleet power: P(h) = Capacity * (idle + (1-idle)·util(h)). Capacity is
	// solved so mean power hits the target.
	meanFactor := p.IdleFraction + (1-p.IdleFraction)*util.Mean()
	capacity := p.AvgPowerMW / meanFactor
	power := util.Map(func(u float64) float64 {
		return capacity * (p.IdleFraction + (1-p.IdleFraction)*u)
	})
	return Trace{Util: util, Power: power, CapacityMW: capacity, IdleFraction: p.IdleFraction}, nil
}

// PowerAt converts a utilization level into fleet power in MW using the
// trace's linear power model — the energy-proportionality curve of the
// paper's Figure 3 (right).
func (t Trace) PowerAt(util float64) float64 {
	return t.CapacityMW * (t.IdleFraction + (1-t.IdleFraction)*util)
}

// DailyPowerSwing returns the average over days of
// (max−min)/max daily power — the paper's ~4% statistic.
func (t Trace) DailyPowerSwing() float64 {
	days := t.Power.Days()
	if days == 0 {
		return 0
	}
	total := 0.0
	for d := 0; d < days; d++ {
		day := t.Power.Day(d)
		max := day.MaxValue()
		if max > 0 {
			total += (max - day.MinValue()) / max
		}
	}
	return total / float64(days)
}

// DailyUtilSwing returns the average over days of max−min utilization (in
// utilization points) — the paper's ~20% statistic.
func (t Trace) DailyUtilSwing() float64 {
	days := t.Util.Days()
	if days == 0 {
		return 0
	}
	total := 0.0
	for d := 0; d < days; d++ {
		day := t.Util.Day(d)
		total += day.MaxValue() - day.MinValue()
	}
	return total / float64(days)
}

// UtilPowerCorrelation returns the Pearson correlation between utilization
// and power; by construction of the linear model it should be ~1, matching
// the tight correlation of the paper's Figure 3 (right).
func (t Trace) UtilPowerCorrelation() float64 {
	return stats.Pearson(t.Util.Values(), t.Power.Values())
}
