package dcload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"carbonexplorer/internal/timeseries"
)

// This file is the demand-side counterpart to internal/eiacsv: it loads
// measured datacenter power traces from CSV so real production data can
// replace the synthetic demand model.
//
// Schema (header required):
//
//	hour,power_mw

// ErrNonFinite is wrapped into errors for power cells that parse as NaN or
// ±Inf (strconv.ParseFloat accepts "NaN", and NaN passes a `v < 0` guard).
var ErrNonFinite = errors.New("dcload: non-finite power")

// LoadPowerCSV parses an hourly datacenter power trace, streaming row by
// row so large traces use bounded memory. Hours must be sequential from
// zero; power must be finite and non-negative. Use LoadPowerCSVTolerant to
// accept and repair damaged values instead.
func LoadPowerCSV(r io.Reader) (timeseries.Series, error) {
	s, _, err := loadPowerCSV(r, nil)
	return s, err
}

// LoadPowerCSVTolerant parses like LoadPowerCSV but treats unparseable,
// negative, and non-finite power values as gaps repaired under the given
// policy; gaps longer than the policy's bound fail with a wrapped
// timeseries.ErrGapTooLong. Structural faults (bad header, out-of-sequence
// hours) are never repaired.
func LoadPowerCSVTolerant(r io.Reader, policy timeseries.RepairPolicy) (timeseries.Series, timeseries.RepairReport, error) {
	return loadPowerCSV(r, &policy)
}

// loadPowerCSV is the shared streaming core. A nil policy means strict
// mode.
func loadPowerCSV(r io.Reader, policy *timeseries.RepairPolicy) (timeseries.Series, timeseries.RepairReport, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	cr.ReuseRecord = true

	first, err := cr.Read()
	if err == io.EOF {
		return timeseries.Series{}, timeseries.RepairReport{}, fmt.Errorf("dcload: empty input")
	}
	if err != nil {
		return timeseries.Series{}, timeseries.RepairReport{}, fmt.Errorf("dcload: %w", err)
	}
	if first[0] != "hour" || first[1] != "power_mw" {
		return timeseries.Series{}, timeseries.RepairReport{}, fmt.Errorf("dcload: unexpected header %v", first)
	}

	var vals []float64
	for i := 0; ; i++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return timeseries.Series{}, timeseries.RepairReport{}, fmt.Errorf("dcload: %w", err)
		}
		hour, err := strconv.Atoi(row[0])
		if err != nil {
			return timeseries.Series{}, timeseries.RepairReport{}, fmt.Errorf("dcload: row %d: bad hour %q", i+1, row[0])
		}
		if hour != i {
			return timeseries.Series{}, timeseries.RepairReport{}, fmt.Errorf("dcload: row %d: hour %d out of sequence", i+1, hour)
		}
		p, err := strconv.ParseFloat(row[1], 64)
		switch {
		case err != nil:
			if policy == nil {
				return timeseries.Series{}, timeseries.RepairReport{}, fmt.Errorf("dcload: row %d column power_mw: bad power %q", i+1, row[1])
			}
			p = math.NaN()
		case math.IsNaN(p) || math.IsInf(p, 0):
			if policy == nil {
				return timeseries.Series{}, timeseries.RepairReport{}, fmt.Errorf("dcload: row %d column power_mw: %w (%q)", i+1, ErrNonFinite, row[1])
			}
			p = math.NaN()
		case p < 0:
			if policy == nil {
				return timeseries.Series{}, timeseries.RepairReport{}, fmt.Errorf("dcload: row %d column power_mw: negative power %v", i+1, p)
			}
			// Leave negative: Repair clamps or interpolates per policy.
		}
		vals = append(vals, p)
	}
	if len(vals) == 0 {
		return timeseries.Series{}, timeseries.RepairReport{}, fmt.Errorf("dcload: no data rows")
	}
	out := timeseries.FromValues(vals)
	if policy == nil {
		return out, timeseries.RepairReport{}, nil
	}
	repaired, rep, err := out.Repair(*policy)
	if err != nil {
		return timeseries.Series{}, timeseries.RepairReport{}, fmt.Errorf("dcload: column power_mw: %w", err)
	}
	return repaired, rep, nil
}

// WritePowerCSV serializes an hourly power trace in the LoadPowerCSV
// schema.
func WritePowerCSV(w io.Writer, power timeseries.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", "power_mw"}); err != nil {
		return fmt.Errorf("dcload: writing header: %w", err)
	}
	for h := 0; h < power.Len(); h++ {
		row := []string{strconv.Itoa(h), strconv.FormatFloat(power.At(h), 'f', 4, 64)}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dcload: writing hour %d: %w", h, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// TraceFromPower reconstructs a Trace from a measured power series using
// the linear power model: the fleet capacity is taken as the observed peak
// (peak utilization is treated as 1), and utilization is back-solved from
// P = capacity·(idle + (1−idle)·util). Power below the idle floor clamps to
// zero utilization.
func TraceFromPower(power timeseries.Series, idleFraction float64) (Trace, error) {
	if power.Len() == 0 {
		return Trace{}, fmt.Errorf("dcload: empty power series")
	}
	if idleFraction < 0 || idleFraction >= 1 {
		return Trace{}, fmt.Errorf("dcload: idle fraction %v out of [0, 1)", idleFraction)
	}
	capacity := power.MaxValue()
	if capacity <= 0 {
		return Trace{}, fmt.Errorf("dcload: power trace is all zero")
	}
	util := power.Map(func(p float64) float64 {
		u := (p/capacity - idleFraction) / (1 - idleFraction)
		if u < 0 {
			return 0
		}
		if u > 1 {
			return 1
		}
		return u
	})
	return Trace{
		Util:         util,
		Power:        power.Clone(),
		CapacityMW:   capacity,
		IdleFraction: idleFraction,
	}, nil
}
