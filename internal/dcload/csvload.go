package dcload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"carbonexplorer/internal/timeseries"
)

// This file is the demand-side counterpart to internal/eiacsv: it loads
// measured datacenter power traces from CSV so real production data can
// replace the synthetic demand model.
//
// Schema (header required):
//
//	hour,power_mw

// LoadPowerCSV parses an hourly datacenter power trace. Hours must be
// sequential from zero; power must be non-negative.
func LoadPowerCSV(r io.Reader) (timeseries.Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return timeseries.Series{}, fmt.Errorf("dcload: %w", err)
	}
	if len(rows) == 0 {
		return timeseries.Series{}, fmt.Errorf("dcload: empty input")
	}
	if rows[0][0] != "hour" || rows[0][1] != "power_mw" {
		return timeseries.Series{}, fmt.Errorf("dcload: unexpected header %v", rows[0])
	}
	rows = rows[1:]
	if len(rows) == 0 {
		return timeseries.Series{}, fmt.Errorf("dcload: no data rows")
	}
	out := timeseries.New(len(rows))
	for i, row := range rows {
		hour, err := strconv.Atoi(row[0])
		if err != nil {
			return timeseries.Series{}, fmt.Errorf("dcload: row %d: bad hour %q", i+1, row[0])
		}
		if hour != i {
			return timeseries.Series{}, fmt.Errorf("dcload: row %d: hour %d out of sequence", i+1, hour)
		}
		p, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return timeseries.Series{}, fmt.Errorf("dcload: row %d: bad power %q", i+1, row[1])
		}
		if p < 0 {
			return timeseries.Series{}, fmt.Errorf("dcload: row %d: negative power %v", i+1, p)
		}
		out.Set(i, p)
	}
	return out, nil
}

// WritePowerCSV serializes an hourly power trace in the LoadPowerCSV
// schema.
func WritePowerCSV(w io.Writer, power timeseries.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", "power_mw"}); err != nil {
		return fmt.Errorf("dcload: writing header: %w", err)
	}
	for h := 0; h < power.Len(); h++ {
		row := []string{strconv.Itoa(h), strconv.FormatFloat(power.At(h), 'f', 4, 64)}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dcload: writing hour %d: %w", h, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// TraceFromPower reconstructs a Trace from a measured power series using
// the linear power model: the fleet capacity is taken as the observed peak
// (peak utilization is treated as 1), and utilization is back-solved from
// P = capacity·(idle + (1−idle)·util). Power below the idle floor clamps to
// zero utilization.
func TraceFromPower(power timeseries.Series, idleFraction float64) (Trace, error) {
	if power.Len() == 0 {
		return Trace{}, fmt.Errorf("dcload: empty power series")
	}
	if idleFraction < 0 || idleFraction >= 1 {
		return Trace{}, fmt.Errorf("dcload: idle fraction %v out of [0, 1)", idleFraction)
	}
	capacity := power.MaxValue()
	if capacity <= 0 {
		return Trace{}, fmt.Errorf("dcload: power trace is all zero")
	}
	util := power.Map(func(p float64) float64 {
		u := (p/capacity - idleFraction) / (1 - idleFraction)
		if u < 0 {
			return 0
		}
		if u > 1 {
			return 1
		}
		return u
	})
	return Trace{
		Util:         util,
		Power:        power.Clone(),
		CapacityMW:   capacity,
		IdleFraction: idleFraction,
	}, nil
}
