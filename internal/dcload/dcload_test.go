package dcload

import (
	"math"
	"testing"
	"testing/quick"

	"carbonexplorer/internal/timeseries"
)

func yearTrace(t *testing.T, avgMW float64) Trace {
	t.Helper()
	tr, err := Generate(DefaultParams(avgMW), timeseries.HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAveragePowerMatchesTarget(t *testing.T) {
	tr := yearTrace(t, 73)
	if got := tr.Power.Mean(); math.Abs(got-73)/73 > 0.02 {
		t.Fatalf("average power = %v MW, want ~73", got)
	}
}

func TestUtilizationSwingNear20Points(t *testing.T) {
	tr := yearTrace(t, 50)
	swing := tr.DailyUtilSwing()
	if swing < 0.15 || swing > 0.30 {
		t.Fatalf("daily utilization swing = %v, want ~0.20", swing)
	}
}

func TestPowerSwingNear4Percent(t *testing.T) {
	// Paper: at datacenter scale the max-min energy demand difference is
	// around 4% on average.
	tr := yearTrace(t, 50)
	swing := tr.DailyPowerSwing()
	if swing < 0.02 || swing > 0.08 {
		t.Fatalf("daily power swing = %v, want ~0.04", swing)
	}
}

func TestUtilPowerCorrelation(t *testing.T) {
	tr := yearTrace(t, 30)
	if corr := tr.UtilPowerCorrelation(); corr < 0.99 {
		t.Fatalf("util-power correlation = %v, want ~1 (linear model)", corr)
	}
}

func TestUtilizationBounds(t *testing.T) {
	tr := yearTrace(t, 40)
	if tr.Util.MinValue() < 0 || tr.Util.MaxValue() > 1 {
		t.Fatalf("utilization out of [0,1]: [%v, %v]", tr.Util.MinValue(), tr.Util.MaxValue())
	}
}

func TestPowerAboveIdleFloor(t *testing.T) {
	tr := yearTrace(t, 40)
	floor := tr.CapacityMW * tr.IdleFraction
	if tr.Power.MinValue() < floor-1e-9 {
		t.Fatalf("power %v below idle floor %v", tr.Power.MinValue(), floor)
	}
	if tr.Power.MaxValue() > tr.CapacityMW+1e-9 {
		t.Fatalf("power %v above capacity %v", tr.Power.MaxValue(), tr.CapacityMW)
	}
}

func TestPowerAt(t *testing.T) {
	tr := yearTrace(t, 40)
	if got, want := tr.PowerAt(0), tr.CapacityMW*tr.IdleFraction; math.Abs(got-want) > 1e-9 {
		t.Fatalf("PowerAt(0) = %v, want idle %v", got, want)
	}
	if got := tr.PowerAt(1); math.Abs(got-tr.CapacityMW) > 1e-9 {
		t.Fatalf("PowerAt(1) = %v, want capacity %v", got, tr.CapacityMW)
	}
}

func TestDiurnalShape(t *testing.T) {
	// Evening utilization should exceed early-morning utilization.
	tr := yearTrace(t, 40)
	avg := tr.Util.AverageDay()
	if avg.At(16) <= avg.At(4) {
		t.Fatalf("evening util %v should exceed 4am util %v", avg.At(16), avg.At(4))
	}
}

func TestWeekendDip(t *testing.T) {
	tr := yearTrace(t, 40)
	var weekday, weekend float64
	var nWeekday, nWeekend int
	for d := 0; d < tr.Util.Days(); d++ {
		mean := tr.Util.Day(d).Mean()
		if d%7 >= 5 {
			weekend += mean
			nWeekend++
		} else {
			weekday += mean
			nWeekday++
		}
	}
	if weekend/float64(nWeekend) >= weekday/float64(nWeekday) {
		t.Fatalf("weekend utilization should dip below weekday")
	}
}

func TestDeterministic(t *testing.T) {
	a := yearTrace(t, 25)
	b := yearTrace(t, 25)
	if !a.Power.Equal(b.Power, 0) || !a.Util.Equal(b.Util, 0) {
		t.Fatalf("trace not deterministic")
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.AvgPowerMW = 0 },
		func(p *Params) { p.MeanUtil = 0 },
		func(p *Params) { p.MeanUtil = 1.2 },
		func(p *Params) { p.UtilSwing = 1.5 },
		func(p *Params) { p.IdleFraction = 1 },
		func(p *Params) { p.IdleFraction = -0.1 },
	}
	for i, mutate := range bad {
		p := DefaultParams(40)
		mutate(&p)
		if _, err := Generate(p, 48); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestEmptyTraceStats(t *testing.T) {
	var tr Trace
	tr.Util = timeseries.New(0)
	tr.Power = timeseries.New(0)
	if tr.DailyPowerSwing() != 0 || tr.DailyUtilSwing() != 0 {
		t.Fatalf("empty trace swings should be zero")
	}
}

func TestPropertyPowerMonotonicInUtil(t *testing.T) {
	tr := yearTrace(t, 40)
	f := func(a, b uint8) bool {
		u1, u2 := float64(a)/255, float64(b)/255
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return tr.PowerAt(u1) <= tr.PowerAt(u2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAvgPowerScales(t *testing.T) {
	// Doubling the target average power doubles the trace.
	f := func(raw uint8) bool {
		avg := 10 + float64(raw%64)
		p1 := DefaultParams(avg)
		p2 := DefaultParams(2 * avg)
		t1, err1 := Generate(p1, 24*30)
		t2, err2 := Generate(p2, 24*30)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(t2.Power.Mean()-2*t1.Power.Mean()) < 1e-6*t2.Power.Mean()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
