package dcload

import (
	"bytes"
	"strings"
	"testing"

	"carbonexplorer/internal/timeseries"
)

// FuzzRepairIdempotent mirrors the eiacsv property for the power-trace
// loader: any input LoadPowerCSVTolerant accepts must, once written back,
// re-read with zero repairs and re-write byte-identically. One repair pass
// reaches a fixed point.
func FuzzRepairIdempotent(f *testing.F) {
	var buf bytes.Buffer
	if err := WritePowerCSV(&buf, timeseries.Constant(48, 25)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("hour,power_mw\n0,10\n1,NaN\n2,12\n")
	f.Add("hour,power_mw\n0,-0.3\n1,5\n2,+Inf\n3,5\n")
	f.Add("hour,power_mw\n0,1.23456789\n1,1e-9\n2,0.00005\n")
	f.Add("hour,power_mw\n0,NaN\n1,NaN\n2,7\n")

	f.Fuzz(func(t *testing.T, input string) {
		s1, _, err := LoadPowerCSVTolerant(strings.NewReader(input), timeseries.DefaultRepairPolicy())
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := WritePowerCSV(&first, s1); err != nil {
			t.Fatalf("writing repaired trace: %v", err)
		}
		s2, rep2, err := LoadPowerCSVTolerant(bytes.NewReader(first.Bytes()), timeseries.DefaultRepairPolicy())
		if err != nil {
			t.Fatalf("re-reading repaired trace: %v", err)
		}
		if rep2.Changed() {
			t.Errorf("second repair altered the trace: %+v", rep2.Details)
		}
		var second bytes.Buffer
		if err := WritePowerCSV(&second, s2); err != nil {
			t.Fatalf("re-writing repaired trace: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("repair not idempotent: second write differs byte-wise from first")
		}
	})
}
