package dcload

import (
	"fmt"

	"carbonexplorer/internal/timeseries"
)

// PUEModel converts IT power into facility power via a temperature-dependent
// power usage effectiveness. Hyperscale facilities run near PUE 1.1 with
// free-air economizers; above the economizer threshold mechanical cooling
// kicks in and overhead rises with outdoor temperature. Because hot
// afternoons coincide with both peak solar supply and peak cooling load,
// PUE seasonality interacts non-trivially with renewable coverage — which
// is why Carbon Explorer models it rather than assuming a constant.
type PUEModel struct {
	// BasePUE is the overhead with free cooling (economizer mode).
	BasePUE float64
	// ThresholdC is the outdoor temperature above which mechanical cooling
	// engages.
	ThresholdC float64
	// PerDegreeC is the PUE increase per °C above the threshold.
	PerDegreeC float64
	// MaxPUE caps the overhead on extreme days.
	MaxPUE float64
}

// DefaultPUEModel returns a modern hyperscale facility: PUE 1.08 in free
// cooling, +0.01/°C above 18 °C, capped at 1.45.
func DefaultPUEModel() PUEModel {
	return PUEModel{BasePUE: 1.08, ThresholdC: 18, PerDegreeC: 0.01, MaxPUE: 1.45}
}

// Validate reports the first implausible field, or nil.
func (m PUEModel) Validate() error {
	switch {
	case m.BasePUE < 1:
		return fmt.Errorf("dcload: base PUE %v below 1", m.BasePUE)
	case m.PerDegreeC < 0:
		return fmt.Errorf("dcload: negative PUE slope")
	case m.MaxPUE < m.BasePUE:
		return fmt.Errorf("dcload: max PUE %v below base %v", m.MaxPUE, m.BasePUE)
	}
	return nil
}

// At returns the PUE at the given outdoor temperature.
func (m PUEModel) At(tempC float64) float64 {
	pue := m.BasePUE
	if tempC > m.ThresholdC {
		pue += m.PerDegreeC * (tempC - m.ThresholdC)
	}
	if pue > m.MaxPUE {
		pue = m.MaxPUE
	}
	return pue
}

// ApplyPUE scales an hourly IT-power series into facility power using the
// hourly outdoor temperature. Series must be equal length.
func ApplyPUE(itPower, tempC timeseries.Series, m PUEModel) (timeseries.Series, error) {
	if err := m.Validate(); err != nil {
		return timeseries.Series{}, err
	}
	if itPower.Len() != tempC.Len() {
		return timeseries.Series{}, fmt.Errorf("dcload: power length %d != temperature length %d", itPower.Len(), tempC.Len())
	}
	out := timeseries.New(itPower.Len())
	for h := 0; h < itPower.Len(); h++ {
		out.Set(h, itPower.At(h)*m.At(tempC.At(h)))
	}
	return out, nil
}
