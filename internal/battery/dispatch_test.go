package battery

import (
	"math"
	"testing"
	"testing/quick"
)

func simpleProblem(deficit, surplus []float64, capMWh float64) DispatchProblem {
	return DispatchProblem{
		Deficit: deficit,
		Surplus: surplus,
		Params:  LFP(capMWh, 1.0),
	}
}

func TestDispatchValidation(t *testing.T) {
	bad := []DispatchProblem{
		{},
		{Deficit: []float64{1}, Surplus: []float64{1, 2}, Params: LFP(1, 1)},
		{Deficit: []float64{-1}, Surplus: []float64{0}, Params: LFP(1, 1)},
		{Deficit: []float64{1}, Surplus: []float64{-1}, Params: LFP(1, 1)},
		{Deficit: []float64{1}, Surplus: []float64{0}, Price: []float64{1, 2}, Params: LFP(1, 1)},
		{Deficit: []float64{1}, Surplus: []float64{0}, Price: []float64{-1}, Params: LFP(1, 1)},
		{Deficit: []float64{1}, Surplus: []float64{0}, Params: Params{CapacityMWh: -1}},
	}
	for i, p := range bad {
		if _, err := p.Greedy(); err == nil {
			t.Errorf("case %d: Greedy should reject", i)
		}
		if _, err := p.Optimal(); err == nil {
			t.Errorf("case %d: Optimal should reject", i)
		}
	}
}

func TestGreedyServesDeficitFromFullBattery(t *testing.T) {
	// Full 10 MWh battery, two 4 MW deficit hours: both served (efficiency
	// losses aside).
	p := simpleProblem([]float64{4, 4}, []float64{0, 0}, 10)
	res, err := p.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if res.GridEnergyMWh > 0.01 {
		t.Fatalf("grid energy = %v, want ~0", res.GridEnergyMWh)
	}
	if res.Discharge[0] != 4 || res.Discharge[1] != 4 {
		t.Fatalf("discharge schedule %v", res.Discharge)
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	// A price-varying instance where greedy discharges on a cheap deficit
	// and has nothing left for the expensive one.
	p := DispatchProblem{
		Deficit: []float64{5, 0, 5},
		Surplus: []float64{0, 0, 0},
		Price:   []float64{1, 1, 100}, // the last deficit is expensive
		Params:  LFP(5, 1.0),
	}
	greedy, err := p.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	optimal, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if optimal.WeightedGrid > greedy.WeightedGrid+1e-9 {
		t.Fatalf("optimal (%v) worse than greedy (%v)", optimal.WeightedGrid, greedy.WeightedGrid)
	}
	// The optimal schedule should save the battery for hour 2.
	if optimal.Discharge[2] < greedy.Discharge[2] {
		t.Fatalf("optimal should discharge more at the expensive hour: %v vs %v",
			optimal.Discharge[2], greedy.Discharge[2])
	}
}

func TestOptimalUsesChargeOpportunity(t *testing.T) {
	// Empty battery, surplus first, deficit later: optimal charges then
	// discharges.
	params := LFP(10, 1.0)
	params.InitialSoC = 0
	p := DispatchProblem{
		Deficit: []float64{0, 0, 8},
		Surplus: []float64{10, 0, 0},
		Params:  params,
	}
	res, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if res.Charge[0] <= 0 {
		t.Fatalf("optimal should charge during the surplus hour")
	}
	if res.GridEnergyMWh > 1 {
		t.Fatalf("grid energy = %v, want small", res.GridEnergyMWh)
	}
}

func TestOptimalZeroCapacity(t *testing.T) {
	p := simpleProblem([]float64{3, 4}, []float64{1, 0}, 0)
	res, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if res.GridEnergyMWh != 7 {
		t.Fatalf("zero battery grid energy = %v, want 7", res.GridEnergyMWh)
	}
}

func TestOptimalRespectsCRate(t *testing.T) {
	// 2 MWh battery at 1C can deliver at most 2 MW per hour.
	p := simpleProblem([]float64{10}, []float64{0}, 2)
	res, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if res.Discharge[0] > 2+1e-9 {
		t.Fatalf("discharge %v exceeds 1C limit", res.Discharge[0])
	}
}

func TestPropertyOptimalNeverWorseThanGreedy(t *testing.T) {
	f := func(raw []uint16, capRaw uint8) bool {
		n := len(raw)
		if n == 0 || n > 60 {
			return true
		}
		deficit := make([]float64, n)
		surplus := make([]float64, n)
		price := make([]float64, n)
		for i, v := range raw {
			if v%2 == 0 {
				deficit[i] = float64(v % 20)
			} else {
				surplus[i] = float64(v % 25)
			}
			price[i] = 1 + float64(v%7)
		}
		p := DispatchProblem{
			Deficit: deficit, Surplus: surplus, Price: price,
			Params:    LFP(float64(1+capRaw%30), 1.0),
			SoCLevels: 40,
		}
		greedy, err1 := p.Greedy()
		optimal, err2 := p.Optimal()
		if err1 != nil || err2 != nil {
			return false
		}
		// Allow a discretization slack proportional to the step size.
		slack := p.Params.CapacityMWh / 40 * float64(n) * 8
		return optimal.WeightedGrid <= greedy.WeightedGrid+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalScheduleIsFeasible(t *testing.T) {
	// Replay the optimal schedule through the real battery simulator; the
	// simulator must accept every action within tolerance.
	p := DispatchProblem{
		Deficit:   []float64{3, 0, 6, 0, 2, 8},
		Surplus:   []float64{0, 10, 0, 5, 0, 0},
		Params:    LFP(8, 1.0),
		SoCLevels: 80,
	}
	res, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(p.Params)
	if err != nil {
		t.Fatal(err)
	}
	for h := range p.Deficit {
		if c := res.Charge[h]; c > 0 {
			accepted := b.Charge(c, 1)
			if math.Abs(accepted-c) > 0.2 {
				t.Fatalf("hour %d: charge %v not accepted (%v)", h, c, accepted)
			}
		}
		if d := res.Discharge[h]; d > 0 {
			delivered := b.Discharge(d, 1)
			if math.Abs(delivered-d) > 0.2 {
				t.Fatalf("hour %d: discharge %v not delivered (%v)", h, d, delivered)
			}
		}
	}
}
