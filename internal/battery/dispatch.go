package battery

import (
	"fmt"
	"math"
)

// The paper's combined policy charges/discharges greedily (charge on every
// surplus, discharge on every deficit). Its discussion asks whether "custom
// battery charge-discharge policies" could do better. OptimalDispatch
// answers that with an offline dynamic program: given the whole year of
// surpluses and deficits, it computes the dispatch schedule minimizing
// carbon-weighted grid energy, bounding what any policy — with any amount of
// foresight — could achieve. The gap between greedy and optimal is the value
// of foresight.

// DispatchProblem is one offline battery-scheduling instance.
type DispatchProblem struct {
	// Deficit[h] is datacenter power not covered by renewables in hour h
	// (MW, >= 0): energy the battery could displace.
	Deficit []float64
	// Surplus[h] is renewable power beyond demand in hour h (MW, >= 0):
	// energy the battery could absorb.
	Surplus []float64
	// Price[h] weights grid energy drawn in hour h (e.g. the grid's carbon
	// intensity in g/kWh). Nil means uniform weight 1.
	Price []float64
	// Params is the battery's electrical configuration.
	Params Params
	// SoCLevels discretizes the usable energy range for the DP (default
	// 50). Higher is more accurate and slower: the DP runs in
	// O(hours × levels²).
	SoCLevels int
}

// DispatchResult is an offline dispatch schedule and its score.
type DispatchResult struct {
	// GridEnergyMWh is total deficit energy left uncovered.
	GridEnergyMWh float64
	// WeightedGrid is the price-weighted objective actually minimized
	// (MWh × price).
	WeightedGrid float64
	// Discharge[h] is battery power serving the deficit in hour h (MW).
	Discharge []float64
	// Charge[h] is surplus power absorbed in hour h (MW).
	Charge []float64
}

// Validate reports the first invalid field, or nil.
func (p DispatchProblem) Validate() error {
	if len(p.Deficit) == 0 {
		return fmt.Errorf("battery: empty dispatch problem")
	}
	if len(p.Surplus) != len(p.Deficit) {
		return fmt.Errorf("battery: surplus length %d != deficit length %d", len(p.Surplus), len(p.Deficit))
	}
	if p.Price != nil && len(p.Price) != len(p.Deficit) {
		return fmt.Errorf("battery: price length %d != deficit length %d", len(p.Price), len(p.Deficit))
	}
	for h := range p.Deficit {
		if p.Deficit[h] < 0 || p.Surplus[h] < 0 {
			return fmt.Errorf("battery: negative deficit/surplus at hour %d", h)
		}
		if p.Price != nil && p.Price[h] < 0 {
			return fmt.Errorf("battery: negative price at hour %d", h)
		}
	}
	return p.Params.Validate()
}

// Greedy simulates the paper's policy on the problem: discharge on every
// deficit, charge on every surplus.
func (p DispatchProblem) Greedy() (DispatchResult, error) {
	if err := p.Validate(); err != nil {
		return DispatchResult{}, err
	}
	b, err := New(p.Params)
	if err != nil {
		return DispatchResult{}, err
	}
	n := len(p.Deficit)
	res := DispatchResult{Discharge: make([]float64, n), Charge: make([]float64, n)}
	for h := 0; h < n; h++ {
		if d := p.Deficit[h]; d > 0 {
			served := b.Discharge(d, 1)
			res.Discharge[h] = served
			rem := d - served
			res.GridEnergyMWh += rem
			res.WeightedGrid += rem * p.price(h)
		}
		if s := p.Surplus[h]; s > 0 {
			res.Charge[h] = b.Charge(s, 1)
		}
	}
	return res, nil
}

func (p DispatchProblem) price(h int) float64 {
	if p.Price == nil {
		return 1
	}
	return p.Price[h]
}

// Optimal solves the offline dispatch by dynamic programming over a
// discretized state of charge, minimizing price-weighted grid energy. The
// returned schedule is feasible for the C/L/C model up to the discretization
// granularity.
func (p DispatchProblem) Optimal() (DispatchResult, error) {
	if err := p.Validate(); err != nil {
		return DispatchResult{}, err
	}
	levels := p.SoCLevels
	if levels <= 0 {
		levels = 50
	}
	n := len(p.Deficit)

	floor := (1 - p.Params.DepthOfDischarge) * p.Params.CapacityMWh
	usable := p.Params.CapacityMWh - floor
	if usable <= 0 {
		// Degenerate battery: everything goes to grid.
		res := DispatchResult{Discharge: make([]float64, n), Charge: make([]float64, n)}
		for h := 0; h < n; h++ {
			res.GridEnergyMWh += p.Deficit[h]
			res.WeightedGrid += p.Deficit[h] * p.price(h)
		}
		return res, nil
	}
	step := usable / float64(levels)

	const inf = math.MaxFloat64
	// cost[s] = minimal weighted grid energy to reach hour h with SoC level s.
	cost := make([]float64, levels+1)
	next := make([]float64, levels+1)
	// choice[h][s] = SoC level chosen at hour h that led to state s at h+1.
	choice := make([][]int16, n)

	startLevel := int(math.Round(p.Params.InitialSoC * float64(levels)))
	for s := range cost {
		cost[s] = inf
	}
	cost[startLevel] = 0

	maxChargeMW := p.Params.MaxChargeC * p.Params.CapacityMWh
	maxDischargeMW := p.Params.MaxDischargeC * p.Params.CapacityMWh

	for h := 0; h < n; h++ {
		choice[h] = make([]int16, levels+1)
		for s := range next {
			next[s] = inf
			choice[h][s] = -1
		}
		for s := 0; s <= levels; s++ {
			if cost[s] == inf {
				continue
			}
			soc := float64(s) * step
			// Enumerate target levels reachable this hour.
			for t := 0; t <= levels; t++ {
				target := float64(t) * step
				delta := target - soc // stored-energy change, MWh
				var gridMWh float64
				switch {
				case delta > 0:
					// Charging: source power = delta/ηc, bounded by surplus
					// and C-rate.
					power := delta / p.Params.ChargeEfficiency
					if power > p.Surplus[h]+1e-12 || power > maxChargeMW+1e-12 {
						continue
					}
					gridMWh = p.Deficit[h] // charging can't serve the deficit
				case delta < 0:
					// Discharging: delivered = −delta×ηd, bounded by C-rate;
					// delivery beyond the deficit is wasted, so never
					// beneficial — but allowed states beyond deficit are
					// skipped for efficiency.
					delivered := -delta * p.Params.DischargeEfficiency
					if delivered > maxDischargeMW+1e-12 {
						continue
					}
					if delivered > p.Deficit[h]+1e-12 {
						continue
					}
					gridMWh = p.Deficit[h] - delivered
				default:
					gridMWh = p.Deficit[h]
				}
				c := cost[s] + gridMWh*p.price(h)
				if c < next[t] {
					next[t] = c
					choice[h][t] = int16(s)
				}
			}
		}
		cost, next = next, cost
	}

	// Find the best terminal state and backtrack the schedule.
	best := 0
	for s := 1; s <= levels; s++ {
		if cost[s] < cost[best] {
			best = s
		}
	}
	if cost[best] == inf {
		return DispatchResult{}, fmt.Errorf("battery: no feasible dispatch (internal error)")
	}

	res := DispatchResult{
		WeightedGrid: cost[best],
		Discharge:    make([]float64, n),
		Charge:       make([]float64, n),
	}
	s := best
	for h := n - 1; h >= 0; h-- {
		prev := int(choice[h][s])
		delta := float64(s-prev) * step
		if delta > 0 {
			res.Charge[h] = delta / p.Params.ChargeEfficiency
			res.GridEnergyMWh += p.Deficit[h]
		} else if delta < 0 {
			delivered := -delta * p.Params.DischargeEfficiency
			res.Discharge[h] = delivered
			res.GridEnergyMWh += p.Deficit[h] - delivered
		} else {
			res.GridEnergyMWh += p.Deficit[h]
		}
		s = prev
	}
	return res, nil
}
