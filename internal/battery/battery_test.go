package battery

import (
	"math"
	"testing"
	"testing/quick"
)

func newLFP(t *testing.T, capMWh, dod float64) *Battery {
	t.Helper()
	b, err := New(LFP(capMWh, dod))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewStartsFull(t *testing.T) {
	b := newLFP(t, 100, 1.0)
	if b.SoC() != 1 {
		t.Fatalf("initial SoC = %v, want 1", b.SoC())
	}
	if b.Energy() != 100 {
		t.Fatalf("initial energy = %v", b.Energy())
	}
	if b.Capacity() != 100 || b.UsableCapacity() != 100 {
		t.Fatalf("capacity accessors wrong")
	}
}

func TestDoDLimitsUsableCapacity(t *testing.T) {
	b := newLFP(t, 100, 0.8)
	if got := b.UsableCapacity(); got != 80 {
		t.Fatalf("usable capacity = %v, want 80", got)
	}
	// Fully discharge: energy must stop at the 20 MWh floor.
	delivered := b.Discharge(1000, 1)
	if b.Energy() < 20-1e-9 {
		t.Fatalf("energy %v below DoD floor 20", b.Energy())
	}
	// Delivered energy = usable × discharge efficiency, but also capped at
	// 1C = 100 MW; 80×0.975 = 78 < 100, so efficiency is binding.
	if math.Abs(delivered-78) > 1e-9 {
		t.Fatalf("delivered %v MW, want 78", delivered)
	}
}

func TestCRateLimitsPower(t *testing.T) {
	b := newLFP(t, 10, 1.0)
	// 1C on 10 MWh = 10 MW max discharge, regardless of request.
	if got := b.Discharge(50, 0.5); math.Abs(got-10) > 1e-9 {
		t.Fatalf("discharge power = %v MW, want C-rate cap 10", got)
	}
	b2 := newLFP(t, 10, 1.0)
	b2.Discharge(1000, 1) // empty it
	if got := b2.Charge(50, 0.5); math.Abs(got-10) > 1e-9 {
		t.Fatalf("charge power = %v MW, want C-rate cap 10", got)
	}
}

func TestChargeEfficiencyLoss(t *testing.T) {
	p := LFP(100, 1.0)
	p.InitialSoC = 0
	b, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	accepted := b.Charge(10, 1)
	if math.Abs(accepted-10) > 1e-9 {
		t.Fatalf("accepted %v MW, want 10", accepted)
	}
	// Stored = 10 × 0.975.
	if math.Abs(b.Energy()-9.75) > 1e-9 {
		t.Fatalf("stored %v MWh, want 9.75", b.Energy())
	}
}

func TestChargeStopsAtFull(t *testing.T) {
	b := newLFP(t, 10, 1.0)
	if got := b.Charge(10, 1); got != 0 {
		t.Fatalf("full battery accepted %v MW", got)
	}
	if b.Energy() > 10 {
		t.Fatalf("overfilled: %v", b.Energy())
	}
}

func TestDischargeEmptyDeliversNothing(t *testing.T) {
	p := LFP(10, 1.0)
	p.InitialSoC = 0
	b, _ := New(p)
	if got := b.Discharge(5, 1); got != 0 {
		t.Fatalf("empty battery delivered %v MW", got)
	}
}

func TestRoundTripEfficiency(t *testing.T) {
	p := LFP(1000, 1.0) // large capacity so C-rate is never binding
	p.InitialSoC = 0
	b, _ := New(p)
	in := b.Charge(100, 1)
	out := b.Discharge(1000, 1)
	roundTrip := out / in
	if math.Abs(roundTrip-0.975*0.975) > 1e-9 {
		t.Fatalf("round-trip efficiency = %v, want %v", roundTrip, 0.975*0.975)
	}
}

func TestEquivalentFullCycles(t *testing.T) {
	b := newLFP(t, 10, 1.0)
	// Drain ~full usable capacity twice with recharge between.
	for i := 0; i < 2; i++ {
		for b.SoC() > 1e-6 {
			b.Discharge(10, 1)
		}
		for b.SoC() < 1-1e-6 {
			if b.Charge(10, 1) == 0 {
				break
			}
		}
	}
	if cycles := b.EquivalentFullCycles(); cycles < 1.8 || cycles > 2.1 {
		t.Fatalf("cycles = %v, want ~2 (efficiency-adjusted)", cycles)
	}
}

func TestZeroCapacityBattery(t *testing.T) {
	b, err := New(LFP(0, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if b.Charge(10, 1) != 0 || b.Discharge(10, 1) != 0 {
		t.Fatalf("zero-capacity battery should be inert")
	}
	if b.SoC() != 0 || b.EquivalentFullCycles() != 0 {
		t.Fatalf("zero-capacity accessors should be 0")
	}
}

func TestReset(t *testing.T) {
	b := newLFP(t, 10, 1.0)
	b.Discharge(10, 1)
	b.Reset()
	if b.SoC() != 1 || b.EquivalentFullCycles() != 0 {
		t.Fatalf("reset did not restore state")
	}
}

func TestInvalidParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.CapacityMWh = -1 },
		func(p *Params) { p.ChargeEfficiency = 0 },
		func(p *Params) { p.ChargeEfficiency = 1.1 },
		func(p *Params) { p.DischargeEfficiency = 0 },
		func(p *Params) { p.MaxChargeC = 0 },
		func(p *Params) { p.MaxDischargeC = -1 },
		func(p *Params) { p.DepthOfDischarge = 0 },
		func(p *Params) { p.DepthOfDischarge = 1.5 },
		func(p *Params) { p.InitialSoC = -0.1 },
		func(p *Params) { p.InitialSoC = 1.1 },
	}
	for i, mutate := range bad {
		p := LFP(10, 1.0)
		mutate(&p)
		if _, err := New(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNegativeAndZeroRequests(t *testing.T) {
	b := newLFP(t, 10, 1.0)
	if b.Charge(-5, 1) != 0 || b.Charge(5, 0) != 0 {
		t.Fatalf("invalid charge requests should be no-ops")
	}
	if b.Discharge(-5, 1) != 0 || b.Discharge(5, -1) != 0 {
		t.Fatalf("invalid discharge requests should be no-ops")
	}
}

func TestSelfDischarge(t *testing.T) {
	p := LFP(100, 0.8)
	p.SelfDischargePerDay = 0.01
	b, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	start := b.Energy()
	b.Idle(24)
	// One day at 1%/day: the 80 MWh above the floor loses 0.8 MWh.
	want := 20 + 80*0.99
	if math.Abs(b.Energy()-want) > 1e-9 {
		t.Fatalf("after one idle day: %v, want %v", b.Energy(), want)
	}
	if b.Energy() >= start {
		t.Fatalf("self-discharge should reduce energy")
	}
	// Never drops below the DoD floor.
	b.Idle(24 * 10000)
	if b.Energy() < 20-1e-9 {
		t.Fatalf("self-discharge crossed the DoD floor: %v", b.Energy())
	}
}

func TestSelfDischargeDisabledByDefault(t *testing.T) {
	b := newLFP(t, 10, 1.0)
	before := b.Energy()
	b.Idle(1000)
	if b.Energy() != before {
		t.Fatalf("default battery should not self-discharge")
	}
}

func TestSelfDischargeValidation(t *testing.T) {
	p := LFP(10, 1.0)
	p.SelfDischargePerDay = 1.5
	if _, err := New(p); err == nil {
		t.Fatal("out-of-range self-discharge should error")
	}
}

func TestPropertyEnergyStaysWithinBounds(t *testing.T) {
	// Under any random sequence of charges and discharges the energy
	// content stays within [floor, capacity].
	f := func(ops []uint16, dodRaw uint8) bool {
		dod := 0.2 + float64(dodRaw%80)/100
		b, err := New(LFP(50, dod))
		if err != nil {
			return false
		}
		floor := (1 - dod) * 50
		for _, op := range ops {
			power := float64(op%1000) / 10
			if op%2 == 0 {
				b.Charge(power, 1)
			} else {
				b.Discharge(power, 1)
			}
			if b.Energy() < floor-1e-6 || b.Energy() > 50+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnergyConservation(t *testing.T) {
	// Delivered energy never exceeds (stored energy change) × efficiency:
	// the battery cannot create energy.
	f := func(ops []uint16) bool {
		b, err := New(LFP(40, 1.0))
		if err != nil {
			return false
		}
		var in, out float64
		start := b.Energy()
		for _, op := range ops {
			power := float64(op%500) / 10
			if op%2 == 0 {
				in += b.Charge(power, 1)
			} else {
				out += b.Discharge(power, 1)
			}
		}
		// energy balance: start + in×ηc − out/ηd = current
		expected := start + in*0.975 - out/0.975
		return math.Abs(expected-b.Energy()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
