package battery

import (
	"fmt"
	"math"
)

// Params configures one battery installation.
type Params struct {
	// CapacityMWh is the nameplate energy capacity.
	CapacityMWh float64
	// ChargeEfficiency is the fraction of offered energy stored (0, 1].
	ChargeEfficiency float64
	// DischargeEfficiency is the fraction of stored energy delivered (0, 1].
	DischargeEfficiency float64
	// MaxChargeC and MaxDischargeC are C-rate limits: maximum power as a
	// multiple of capacity (1.0 = full charge or discharge in one hour,
	// the paper's assumption given hourly data).
	MaxChargeC    float64
	MaxDischargeC float64
	// DepthOfDischarge in (0, 1] caps usable capacity: the energy content
	// never drops below (1−DoD)·Capacity. The paper studies 100% and 80%.
	DepthOfDischarge float64
	// InitialSoC is the starting state of charge in [0, 1] of usable range.
	InitialSoC float64
	// SelfDischargePerDay is the fraction of stored energy (above the DoD
	// floor) lost per idle day. Lithium chemistries sit near 0.1%/day;
	// zero disables the effect. Callers advance it via Idle.
	SelfDischargePerDay float64
}

// LFP returns the paper's Lithium Iron Phosphate configuration at the given
// capacity and depth of discharge: ~95% round-trip efficiency split evenly
// between charge and discharge, and 1C power limits to match hourly data.
func LFP(capacityMWh, dod float64) Params {
	return Params{
		CapacityMWh:         capacityMWh,
		ChargeEfficiency:    0.975,
		DischargeEfficiency: 0.975,
		MaxChargeC:          1.0,
		MaxDischargeC:       1.0,
		DepthOfDischarge:    dod,
		InitialSoC:          1.0,
	}
}

// Validate reports the first invalid parameter, or nil.
func (p Params) Validate() error {
	switch {
	case p.CapacityMWh < 0:
		return fmt.Errorf("battery: negative capacity")
	case p.ChargeEfficiency <= 0 || p.ChargeEfficiency > 1:
		return fmt.Errorf("battery: charge efficiency %v out of (0, 1]", p.ChargeEfficiency)
	case p.DischargeEfficiency <= 0 || p.DischargeEfficiency > 1:
		return fmt.Errorf("battery: discharge efficiency %v out of (0, 1]", p.DischargeEfficiency)
	case p.MaxChargeC <= 0 || p.MaxDischargeC <= 0:
		return fmt.Errorf("battery: C-rate limits must be positive")
	case p.DepthOfDischarge <= 0 || p.DepthOfDischarge > 1:
		return fmt.Errorf("battery: depth of discharge %v out of (0, 1]", p.DepthOfDischarge)
	case p.InitialSoC < 0 || p.InitialSoC > 1:
		return fmt.Errorf("battery: initial SoC %v out of [0, 1]", p.InitialSoC)
	case p.SelfDischargePerDay < 0 || p.SelfDischargePerDay > 1:
		return fmt.Errorf("battery: self-discharge %v out of [0, 1]", p.SelfDischargePerDay)
	}
	return nil
}

// Battery is a stateful storage simulator.
type Battery struct {
	p Params
	// energy is the current content in MWh, within [floor, capacity].
	energy float64
	// floor is the DoD-imposed minimum content.
	floor float64
	// dischargedTotal accumulates energy delivered, for cycle counting.
	dischargedTotal float64
}

// New builds a battery from params.
func New(p Params) (*Battery, error) {
	b := new(Battery)
	if err := b.Init(p); err != nil {
		return nil, err
	}
	return b, nil
}

// Init reconfigures b in place from params, restoring the initial state of
// charge and clearing cycle accounting. It lets hot paths reuse one Battery
// value across many simulated designs instead of allocating per design; the
// resulting state is identical to a freshly built New(p).
func (b *Battery) Init(p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	floor := (1 - p.DepthOfDischarge) * p.CapacityMWh
	usable := p.CapacityMWh - floor
	*b = Battery{
		p:      p,
		floor:  floor,
		energy: floor + p.InitialSoC*usable,
	}
	return nil
}

// Capacity returns the nameplate capacity in MWh.
func (b *Battery) Capacity() float64 { return b.p.CapacityMWh }

// UsableCapacity returns the DoD-limited usable capacity in MWh.
func (b *Battery) UsableCapacity() float64 { return b.p.CapacityMWh - b.floor }

// Energy returns the current content in MWh.
func (b *Battery) Energy() float64 { return b.energy }

// SoC returns the state of charge as a fraction of usable capacity in
// [0, 1]. A zero-capacity battery reports 0.
func (b *Battery) SoC() float64 {
	usable := b.UsableCapacity()
	if usable <= 0 {
		return 0
	}
	return (b.energy - b.floor) / usable
}

// Charge offers surplus power (MW) for the given duration (hours) and
// returns the power actually drawn from the source. Acceptance is limited by
// the C-rate and by remaining headroom; stored energy is reduced by the
// charge efficiency.
func (b *Battery) Charge(offeredMW, hours float64) (acceptedMW float64) {
	if offeredMW <= 0 || hours <= 0 || b.p.CapacityMWh == 0 {
		return 0
	}
	limit := b.p.MaxChargeC * b.p.CapacityMWh
	power := math.Min(offeredMW, limit)
	// Headroom limits the energy that can be stored this step.
	headroom := b.p.CapacityMWh - b.energy
	maxAcceptable := headroom / b.p.ChargeEfficiency / hours
	power = math.Min(power, maxAcceptable)
	if power <= 0 {
		return 0
	}
	b.energy += power * hours * b.p.ChargeEfficiency
	if b.energy > b.p.CapacityMWh {
		b.energy = b.p.CapacityMWh // guard against float drift
	}
	return power
}

// Discharge requests power (MW) for the given duration (hours) and returns
// the power actually delivered, limited by the C-rate and the DoD floor.
// Delivered energy drains the store at 1/efficiency.
func (b *Battery) Discharge(requestedMW, hours float64) (deliveredMW float64) {
	if requestedMW <= 0 || hours <= 0 || b.p.CapacityMWh == 0 {
		return 0
	}
	limit := b.p.MaxDischargeC * b.p.CapacityMWh
	power := math.Min(requestedMW, limit)
	available := (b.energy - b.floor) * b.p.DischargeEfficiency / hours
	power = math.Min(power, available)
	if power <= 0 {
		return 0
	}
	b.energy -= power * hours / b.p.DischargeEfficiency
	if b.energy < b.floor {
		b.energy = b.floor // guard against float drift
	}
	b.dischargedTotal += power * hours
	return power
}

// EquivalentFullCycles returns total delivered energy divided by usable
// capacity: the cycle count used for lifetime estimation. Zero-capacity
// batteries report 0.
func (b *Battery) EquivalentFullCycles() float64 {
	usable := b.UsableCapacity()
	if usable <= 0 {
		return 0
	}
	return b.dischargedTotal / usable
}

// Idle advances the battery through hours of inactivity, applying
// self-discharge to the energy stored above the DoD floor. It is a no-op
// when self-discharge is disabled.
func (b *Battery) Idle(hours float64) {
	if b.p.SelfDischargePerDay <= 0 || hours <= 0 {
		return
	}
	keep := 1 - b.p.SelfDischargePerDay
	factor := math.Pow(keep, hours/24)
	b.energy = b.floor + (b.energy-b.floor)*factor
}

// Reset restores the initial state of charge and clears cycle accounting.
func (b *Battery) Reset() {
	b.energy = b.floor + b.p.InitialSoC*b.UsableCapacity()
	b.dischargedTotal = 0
}
