package battery

import (
	"fmt"
	"math"
)

// RollingConfig parameterizes receding-horizon (MPC-style) dispatch: each
// day the controller plans the next HorizonHours with the DP using
// *predicted* deficits and surpluses, executes the first day of the plan
// against reality, and re-plans. This is the deployable middle ground
// between the paper's greedy policy (no lookahead) and the offline optimum
// (perfect full-year foresight).
type RollingConfig struct {
	// Params is the battery's electrical configuration.
	Params Params
	// HorizonHours is the planning lookahead (default 48).
	HorizonHours int
	// StepHours is how much of each plan executes before re-planning
	// (default 24).
	StepHours int
	// SoCLevels discretizes the DP (default 60).
	SoCLevels int
	// Predict supplies the forecast of (deficit, surplus, price) for hours
	// [start, start+horizon); it is called once per planning step. The
	// actual series are supplied to Run separately.
	Predict func(start, horizon int) (deficit, surplus, price []float64)
	// Reactive, when true, blends the plan with reactive rules for the
	// conditions the forecast missed: real surplus beyond the planned
	// charge is stored anyway (free energy is near-universally safe), and
	// real deficits beyond the planned discharge are served from whatever
	// stored energy the plan has not reserved for later hours of the
	// current execution step. Without it the controller is purely
	// plan-disciplined, which collapses when forecasts are biased (e.g. an
	// average-weather forecast predicts no deficits at all).
	Reactive bool
}

// Validate reports the first invalid field, or nil.
func (c RollingConfig) Validate() error {
	if c.Predict == nil {
		return fmt.Errorf("battery: rolling dispatch needs a Predict function")
	}
	if c.HorizonHours < 0 || c.StepHours < 0 {
		return fmt.Errorf("battery: negative horizon/step")
	}
	if c.StepHours > c.horizon() {
		return fmt.Errorf("battery: step %d exceeds horizon %d", c.StepHours, c.horizon())
	}
	return c.Params.Validate()
}

func (c RollingConfig) horizon() int {
	if c.HorizonHours <= 0 {
		return 48
	}
	return c.HorizonHours
}

func (c RollingConfig) step() int {
	if c.StepHours <= 0 {
		return 24
	}
	return c.StepHours
}

// RunRolling executes receding-horizon dispatch against the actual deficit,
// surplus, and price series. At each step it plans on forecasts, then
// applies the planned charge/discharge power to a real battery facing the
// actual conditions (clamping to what reality allows).
func RunRolling(cfg RollingConfig, deficit, surplus, price []float64) (DispatchResult, error) {
	if err := cfg.Validate(); err != nil {
		return DispatchResult{}, err
	}
	n := len(deficit)
	if n == 0 || len(surplus) != n || len(price) != n {
		return DispatchResult{}, fmt.Errorf("battery: series lengths must match and be non-empty")
	}

	b, err := New(cfg.Params)
	if err != nil {
		return DispatchResult{}, err
	}
	res := DispatchResult{Discharge: make([]float64, n), Charge: make([]float64, n)}
	horizon := cfg.horizon()
	step := cfg.step()
	levels := cfg.SoCLevels
	if levels <= 0 {
		levels = 60
	}

	for start := 0; start < n; start += step {
		h := horizon
		if start+h > n {
			h = n - start
		}
		predDeficit, predSurplus, predPrice := cfg.Predict(start, h)
		if len(predDeficit) != h || len(predSurplus) != h || len(predPrice) != h {
			return DispatchResult{}, fmt.Errorf("battery: Predict returned wrong horizon at %d", start)
		}
		// Plan from the battery's current state.
		planParams := cfg.Params
		planParams.InitialSoC = b.SoC()
		plan := DispatchProblem{
			Deficit:   sanitizeNonNeg(predDeficit),
			Surplus:   sanitizeNonNeg(predSurplus),
			Price:     sanitizeNonNeg(predPrice),
			Params:    planParams,
			SoCLevels: levels,
		}
		planned, err := plan.Optimal()
		if err != nil {
			return DispatchResult{}, err
		}

		// Execute the first `step` hours of the plan against reality.
		end := start + step
		if end > n {
			end = n
		}
		for t := start; t < end; t++ {
			i := t - start
			if want := planned.Discharge[i]; want > 0 {
				// Never discharge beyond the real deficit.
				ask := math.Min(want, deficit[t])
				res.Discharge[t] = b.Discharge(ask, 1)
			}
			if cfg.Reactive {
				if extra := deficit[t] - res.Discharge[t]; extra > 0 {
					// Deliverable energy the plan has reserved for the rest
					// of this execution step.
					var reserved float64
					for j := i + 1; j < end-start; j++ {
						reserved += planned.Discharge[j]
					}
					storedAboveFloor := b.Energy() - (b.Capacity() - b.UsableCapacity())
					deliverable := storedAboveFloor*cfg.Params.DischargeEfficiency - reserved
					if deliverable > 0 {
						res.Discharge[t] += b.Discharge(math.Min(extra, deliverable), 1)
					}
				}
			}
			chargeBudget := planned.Charge[i]
			if cfg.Reactive {
				chargeBudget = surplus[t]
			}
			if chargeBudget > 0 {
				// Never charge beyond the real surplus.
				offer := math.Min(chargeBudget, surplus[t])
				res.Charge[t] = b.Charge(offer, 1)
			}
			rem := deficit[t] - res.Discharge[t]
			if rem < 0 {
				rem = 0
			}
			res.GridEnergyMWh += rem
			res.WeightedGrid += rem * price[t]
		}
	}
	return res, nil
}

func sanitizeNonNeg(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		if v > 0 && !math.IsInf(v, 1) && !math.IsNaN(v) {
			out[i] = v
		}
	}
	return out
}
