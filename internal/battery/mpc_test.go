package battery

import (
	"math"
	"testing"
)

// oraclePredict returns a Predict function that reads the true series.
func oraclePredict(deficit, surplus, price []float64) func(int, int) ([]float64, []float64, []float64) {
	return func(start, h int) ([]float64, []float64, []float64) {
		return deficit[start : start+h], surplus[start : start+h], price[start : start+h]
	}
}

func TestRollingValidation(t *testing.T) {
	good := RollingConfig{
		Params:  LFP(5, 1.0),
		Predict: func(s, h int) ([]float64, []float64, []float64) { return nil, nil, nil },
	}
	bad := []func(*RollingConfig){
		func(c *RollingConfig) { c.Predict = nil },
		func(c *RollingConfig) { c.HorizonHours = -1 },
		func(c *RollingConfig) { c.StepHours = 100; c.HorizonHours = 10 },
		func(c *RollingConfig) { c.Params = Params{CapacityMWh: -1} },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := RunRolling(cfg, []float64{1}, []float64{0}, []float64{1}); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
	// Length mismatch.
	if _, err := RunRolling(good, []float64{1, 2}, []float64{0}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	// Wrong predicted horizon.
	wrong := good
	wrong.Predict = func(s, h int) ([]float64, []float64, []float64) { return []float64{1}, []float64{1}, []float64{1} }
	if _, err := RunRolling(wrong, make([]float64, 50), make([]float64, 50), make([]float64, 50)); err == nil {
		t.Error("wrong horizon length should error")
	}
}

// cyclePattern builds a repeating surplus-then-deficit pattern with a price
// spike on the deficits.
func cyclePattern(days int) (deficit, surplus, price []float64) {
	n := days * 24
	deficit = make([]float64, n)
	surplus = make([]float64, n)
	price = make([]float64, n)
	for h := 0; h < n; h++ {
		price[h] = 1
		if h%24 < 12 {
			surplus[h] = 6
		} else {
			deficit[h] = 4
			price[h] = 5
		}
	}
	return
}

func TestRollingWithOracleApproachesOptimal(t *testing.T) {
	deficit, surplus, price := cyclePattern(10)
	params := LFP(30, 1.0)
	params.InitialSoC = 0

	problem := DispatchProblem{Deficit: deficit, Surplus: surplus, Price: price, Params: params, SoCLevels: 60}
	optimal, err := problem.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	rolling, err := RunRolling(RollingConfig{
		Params:  params,
		Predict: oraclePredict(deficit, surplus, price),
	}, deficit, surplus, price)
	if err != nil {
		t.Fatal(err)
	}
	// With perfect forecasts and a 48h horizon on a 24h-periodic pattern,
	// rolling should be close to the full-year optimum.
	if rolling.WeightedGrid > optimal.WeightedGrid*1.15+1 {
		t.Fatalf("rolling with oracle = %v, optimal = %v", rolling.WeightedGrid, optimal.WeightedGrid)
	}
}

func TestRollingNeverExceedsReality(t *testing.T) {
	deficit, surplus, price := cyclePattern(5)
	// A wildly optimistic forecast: predicts huge surpluses and deficits.
	params := LFP(20, 1.0)
	rolling, err := RunRolling(RollingConfig{
		Params: params,
		Predict: func(start, h int) ([]float64, []float64, []float64) {
			d := make([]float64, h)
			s := make([]float64, h)
			p := make([]float64, h)
			for i := range d {
				d[i], s[i], p[i] = 100, 100, 1
			}
			return d, s, p
		},
	}, deficit, surplus, price)
	if err != nil {
		t.Fatal(err)
	}
	for h := range deficit {
		if rolling.Discharge[h] > deficit[h]+1e-9 {
			t.Fatalf("hour %d: discharged %v beyond real deficit %v", h, rolling.Discharge[h], deficit[h])
		}
		if rolling.Charge[h] > surplus[h]+1e-9 {
			t.Fatalf("hour %d: charged %v beyond real surplus %v", h, rolling.Charge[h], surplus[h])
		}
	}
}

func TestRollingPessimisticForecastStillSafe(t *testing.T) {
	deficit, surplus, price := cyclePattern(5)
	// A forecast of nothing: the controller plans no battery action at all.
	rolling, err := RunRolling(RollingConfig{
		Params: LFP(20, 1.0),
		Predict: func(start, h int) ([]float64, []float64, []float64) {
			return make([]float64, h), make([]float64, h), make([]float64, h)
		},
	}, deficit, surplus, price)
	if err != nil {
		t.Fatal(err)
	}
	// All deficits hit the grid.
	var want float64
	for h, d := range deficit {
		want += d * price[h]
	}
	if math.Abs(rolling.WeightedGrid-want) > 1e-9 {
		t.Fatalf("no-action dispatch weighted grid = %v, want %v", rolling.WeightedGrid, want)
	}
}

func TestRollingReactiveRecoversFromBlindForecast(t *testing.T) {
	deficit, surplus, price := cyclePattern(5)
	blind := func(start, h int) ([]float64, []float64, []float64) {
		return make([]float64, h), make([]float64, h), make([]float64, h)
	}
	params := LFP(20, 1.0)
	params.InitialSoC = 0

	disciplined, err := RunRolling(RollingConfig{Params: params, Predict: blind}, deficit, surplus, price)
	if err != nil {
		t.Fatal(err)
	}
	reactive, err := RunRolling(RollingConfig{Params: params, Predict: blind, Reactive: true}, deficit, surplus, price)
	if err != nil {
		t.Fatal(err)
	}
	// With a useless forecast, the reactive blend must behave like greedy
	// and far outperform pure plan discipline.
	if reactive.WeightedGrid >= disciplined.WeightedGrid {
		t.Fatalf("reactive (%v) should beat plan-only (%v) under a blind forecast",
			reactive.WeightedGrid, disciplined.WeightedGrid)
	}
	greedy, err := (DispatchProblem{Deficit: deficit, Surplus: surplus, Price: price, Params: params}).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reactive.WeightedGrid-greedy.WeightedGrid) > greedy.WeightedGrid*0.05+1 {
		t.Fatalf("reactive-blind should approximate greedy: %v vs %v",
			reactive.WeightedGrid, greedy.WeightedGrid)
	}
}

func TestRollingSanitizesForecasts(t *testing.T) {
	deficit, surplus, price := cyclePattern(3)
	rolling, err := RunRolling(RollingConfig{
		Params: LFP(10, 1.0),
		Predict: func(start, h int) ([]float64, []float64, []float64) {
			d := make([]float64, h)
			s := make([]float64, h)
			p := make([]float64, h)
			for i := range d {
				d[i] = math.NaN()
				s[i] = -5
				p[i] = math.Inf(1)
			}
			return d, s, p
		},
	}, deficit, surplus, price)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rolling.WeightedGrid) || math.IsInf(rolling.WeightedGrid, 0) {
		t.Fatalf("garbage forecasts leaked into results: %v", rolling.WeightedGrid)
	}
}
