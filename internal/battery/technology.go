package battery

import "fmt"

// Technology identifies a storage chemistry. The paper's model is modular
// by design: "The Carbon Explorer framework is designed to include a modular
// battery model that supports different storage technologies to be added
// through a simple API", and it calls out sodium-ion as an emerging
// alternative with easier-to-obtain materials and lower environmental
// impact.
type Technology int

// Supported storage chemistries.
const (
	// LFPCell is Lithium Iron Phosphate — the paper's default, common in
	// large stationary storage.
	LFPCell Technology = iota
	// NMCCell is Lithium Nickel Manganese Cobalt — higher energy density,
	// shorter cycle life, higher manufacturing footprint.
	NMCCell
	// NaIonCell is sodium-ion — slightly lower efficiency today, but
	// abundant materials and a lower manufacturing footprint.
	NaIonCell
)

// String names the chemistry.
func (t Technology) String() string {
	switch t {
	case LFPCell:
		return "LFP"
	case NMCCell:
		return "NMC"
	case NaIonCell:
		return "Na-ion"
	default:
		return fmt.Sprintf("technology(%d)", int(t))
	}
}

// AllTechnologies lists the supported chemistries.
func AllTechnologies() []Technology {
	return []Technology{LFPCell, NMCCell, NaIonCell}
}

// Chemistry bundles the technology-specific numbers a carbon analysis
// needs: the electrical parameters for the C/L/C simulator and the
// manufacturing/lifetime figures for embodied accounting.
type Chemistry struct {
	// Tech identifies the chemistry.
	Tech Technology
	// RoundTripEfficiency is delivered-over-stored energy for a full cycle.
	RoundTripEfficiency float64
	// MaxChargeC and MaxDischargeC are the C-rate limits.
	MaxChargeC    float64
	MaxDischargeC float64
	// Cycles100DoD and Cycles80DoD are cycle life at 100% and 80% depth of
	// discharge.
	Cycles100DoD float64
	Cycles80DoD  float64
	// EmbodiedKgPerKWh is the manufacturing footprint per kWh of capacity.
	EmbodiedKgPerKWh float64
	// CalendarLifeYears caps lifetime regardless of cycling.
	CalendarLifeYears float64
}

// Spec returns the chemistry's parameters.
//
// LFP follows the paper (3000/4500 cycles, 74–134 kg CO2/kWh with 100 as the
// working default). NMC trades cycle life (1500/2500) for density and has a
// higher footprint from nickel and cobalt processing. Sodium-ion reflects
// early-2020s literature: fewer cycles than LFP, slightly lower round-trip
// efficiency, but a markedly lower manufacturing footprint.
func (t Technology) Spec() Chemistry {
	switch t {
	case LFPCell:
		return Chemistry{
			Tech:                LFPCell,
			RoundTripEfficiency: 0.95,
			MaxChargeC:          1.0,
			MaxDischargeC:       1.0,
			Cycles100DoD:        3000,
			Cycles80DoD:         4500,
			EmbodiedKgPerKWh:    100,
			CalendarLifeYears:   15,
		}
	case NMCCell:
		return Chemistry{
			Tech:                NMCCell,
			RoundTripEfficiency: 0.96,
			MaxChargeC:          1.0,
			MaxDischargeC:       2.0,
			Cycles100DoD:        1500,
			Cycles80DoD:         2500,
			EmbodiedKgPerKWh:    125,
			CalendarLifeYears:   12,
		}
	case NaIonCell:
		return Chemistry{
			Tech:                NaIonCell,
			RoundTripEfficiency: 0.92,
			MaxChargeC:          1.0,
			MaxDischargeC:       1.0,
			Cycles100DoD:        2500,
			Cycles80DoD:         4000,
			EmbodiedKgPerKWh:    70,
			CalendarLifeYears:   15,
		}
	default:
		panic(fmt.Sprintf("battery: unknown technology %d", int(t)))
	}
}

// Params builds C/L/C simulator parameters for this chemistry at the given
// capacity and depth of discharge. The round-trip efficiency is split evenly
// between charge and discharge legs.
func (c Chemistry) Params(capacityMWh, dod float64) Params {
	leg := sqrtEff(c.RoundTripEfficiency)
	return Params{
		CapacityMWh:         capacityMWh,
		ChargeEfficiency:    leg,
		DischargeEfficiency: leg,
		MaxChargeC:          c.MaxChargeC,
		MaxDischargeC:       c.MaxDischargeC,
		DepthOfDischarge:    dod,
		InitialSoC:          1.0,
	}
}

// sqrtEff returns the per-leg efficiency whose square is the round trip.
func sqrtEff(roundTrip float64) float64 {
	// Newton iteration; avoids importing math for a single sqrt and keeps
	// the value deterministic across platforms.
	x := roundTrip
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + roundTrip/x)
	}
	return x
}

// CycleLife interpolates cycle life at the given depth of discharge in
// (0, 1], linearly through the chemistry's two published points.
func (c Chemistry) CycleLife(dod float64) float64 {
	if dod <= 0 || dod > 1 {
		panic(fmt.Sprintf("battery: depth of discharge %v out of (0, 1]", dod))
	}
	slope := (c.Cycles100DoD - c.Cycles80DoD) / (1.0 - 0.8)
	cycles := c.Cycles80DoD + slope*(dod-0.8)
	if cycles < 1 {
		cycles = 1
	}
	return cycles
}
