package battery

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTechnologyNames(t *testing.T) {
	if LFPCell.String() != "LFP" || NaIonCell.String() != "Na-ion" || NMCCell.String() != "NMC" {
		t.Fatalf("technology names wrong")
	}
	if got := Technology(9).String(); got != "technology(9)" {
		t.Fatalf("out-of-range name %q", got)
	}
	if len(AllTechnologies()) != 3 {
		t.Fatalf("want 3 technologies")
	}
}

func TestSpecsPlausible(t *testing.T) {
	for _, tech := range AllTechnologies() {
		c := tech.Spec()
		if c.Tech != tech {
			t.Errorf("%v: spec Tech mismatch", tech)
		}
		if c.RoundTripEfficiency <= 0.8 || c.RoundTripEfficiency > 1 {
			t.Errorf("%v: efficiency %v implausible", tech, c.RoundTripEfficiency)
		}
		if c.Cycles80DoD <= c.Cycles100DoD {
			t.Errorf("%v: shallower DoD must extend cycle life", tech)
		}
		if c.EmbodiedKgPerKWh <= 0 || c.CalendarLifeYears <= 0 {
			t.Errorf("%v: invalid footprint/lifetime", tech)
		}
	}
}

func TestSpecUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("unknown technology should panic")
		}
	}()
	Technology(42).Spec()
}

func TestNaIonLowerFootprintThanLFP(t *testing.T) {
	// The paper's motivation for sodium-ion: lower environmental impact.
	if NaIonCell.Spec().EmbodiedKgPerKWh >= LFPCell.Spec().EmbodiedKgPerKWh {
		t.Fatalf("Na-ion should have a lower manufacturing footprint than LFP")
	}
}

func TestChemistryParamsRoundTrip(t *testing.T) {
	for _, tech := range AllTechnologies() {
		spec := tech.Spec()
		p := spec.Params(50, 1.0)
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: invalid params: %v", tech, err)
		}
		got := p.ChargeEfficiency * p.DischargeEfficiency
		if math.Abs(got-spec.RoundTripEfficiency) > 1e-9 {
			t.Errorf("%v: round trip %v, want %v", tech, got, spec.RoundTripEfficiency)
		}
		b, err := New(p)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if b.Capacity() != 50 {
			t.Errorf("%v: capacity %v", tech, b.Capacity())
		}
	}
}

func TestChemistryCycleLife(t *testing.T) {
	lfp := LFPCell.Spec()
	if got := lfp.CycleLife(1.0); got != 3000 {
		t.Fatalf("LFP cycles@100%% = %v", got)
	}
	if got := lfp.CycleLife(0.8); got != 4500 {
		t.Fatalf("LFP cycles@80%% = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("bad DoD should panic")
		}
	}()
	lfp.CycleLife(0)
}

func TestDefaultDegradationValid(t *testing.T) {
	m := DefaultDegradation(3000)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegradationValidation(t *testing.T) {
	bad := []DegradationModel{
		{RatedCycles: 0, EndOfLifeCapacity: 0.8},
		{RatedCycles: 3000, EndOfLifeCapacity: 0},
		{RatedCycles: 3000, EndOfLifeCapacity: 1},
		{RatedCycles: 3000, EndOfLifeCapacity: 0.8, CalendarFadePerYear: 0.9},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestCapacityFade(t *testing.T) {
	m := DefaultDegradation(3000)
	if got := m.CapacityFraction(0, 0); got != 1 {
		t.Fatalf("fresh battery fraction = %v", got)
	}
	// At rated cycles (no calendar time) the battery hits exactly 80%.
	if got := m.CapacityFraction(3000, 0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("at rated cycles fraction = %v, want 0.8", got)
	}
	if !m.IsSpent(3000, 0) {
		t.Fatalf("battery at rated cycles should be spent")
	}
	if m.IsSpent(1000, 0) {
		t.Fatalf("battery at 1/3 rated cycles should not be spent")
	}
	// Calendar fade stacks.
	if m.CapacityFraction(1000, 10) >= m.CapacityFraction(1000, 0) {
		t.Fatalf("calendar fade should reduce capacity")
	}
	// Extreme abuse floors at zero.
	if got := m.CapacityFraction(1e9, 1e9); got != 0 {
		t.Fatalf("overdriven fraction = %v, want 0", got)
	}
}

func TestDegradationLifetime(t *testing.T) {
	m := DefaultDegradation(3000)
	// One cycle/day: cycle fade alone gives 3000/365 ≈ 8.2 years; calendar
	// fade shortens it a bit.
	years := m.LifetimeYears(1.0)
	if years >= 3000.0/365.0 || years < 6.5 {
		t.Fatalf("lifetime at 1 cyc/day = %v years", years)
	}
	// No cycling: calendar fade alone, 0.2/0.005 = 40 years.
	if got := m.LifetimeYears(0); math.Abs(got-40) > 1e-9 {
		t.Fatalf("calendar-only lifetime = %v, want 40", got)
	}
	// Immortal case.
	free := DegradationModel{RatedCycles: 3000, EndOfLifeCapacity: 0.8}
	if free.LifetimeYears(0) < 1e8 {
		t.Fatalf("zero-fade battery should be effectively immortal")
	}
}

func TestPropertyDegradationMonotonic(t *testing.T) {
	m := DefaultDegradation(4000)
	f := func(c1, c2, y1, y2 uint16) bool {
		cyc1, cyc2 := float64(c1), float64(c2)
		yr1, yr2 := float64(y1%50), float64(y2%50)
		if cyc1 > cyc2 {
			cyc1, cyc2 = cyc2, cyc1
		}
		if yr1 > yr2 {
			yr1, yr2 = yr2, yr1
		}
		return m.CapacityFraction(cyc2, yr2) <= m.CapacityFraction(cyc1, yr1)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSqrtEff(t *testing.T) {
	for _, v := range []float64{0.9, 0.95, 0.99, 1.0} {
		leg := sqrtEff(v)
		if math.Abs(leg*leg-v) > 1e-12 {
			t.Errorf("sqrtEff(%v)^2 = %v", v, leg*leg)
		}
	}
}
