package battery

import "fmt"

// DegradationModel tracks battery capacity fade over cycling. The paper's
// lifetime arithmetic (cycles at a given DoD) is a threshold model: the
// battery is replaced after its rated cycles. This model refines that with
// gradual capacity fade, letting analyses ask how much usable capacity
// remains mid-life and when the battery crosses its end-of-life threshold —
// the mechanism behind the related work's battery-aging management (BAAT).
type DegradationModel struct {
	// RatedCycles is the cycle life at the operating depth of discharge.
	RatedCycles float64
	// EndOfLifeCapacity is the remaining-capacity fraction at which the
	// battery is considered spent; 0.8 (80% of nameplate) is the industry
	// convention the rated-cycle figures assume.
	EndOfLifeCapacity float64
	// CalendarFadePerYear is the annual capacity loss from time alone
	// (SEI growth), independent of cycling.
	CalendarFadePerYear float64
}

// DefaultDegradation returns a model matching the paper's LFP assumptions:
// the rated cycle count consumes the 20% fade budget linearly, plus a small
// calendar fade.
func DefaultDegradation(ratedCycles float64) DegradationModel {
	return DegradationModel{
		RatedCycles:         ratedCycles,
		EndOfLifeCapacity:   0.8,
		CalendarFadePerYear: 0.005,
	}
}

// Validate reports the first invalid field, or nil.
func (m DegradationModel) Validate() error {
	switch {
	case m.RatedCycles <= 0:
		return fmt.Errorf("battery: rated cycles must be positive")
	case m.EndOfLifeCapacity <= 0 || m.EndOfLifeCapacity >= 1:
		return fmt.Errorf("battery: end-of-life capacity %v out of (0, 1)", m.EndOfLifeCapacity)
	case m.CalendarFadePerYear < 0 || m.CalendarFadePerYear > 0.5:
		return fmt.Errorf("battery: calendar fade %v out of [0, 0.5]", m.CalendarFadePerYear)
	}
	return nil
}

// CapacityFraction returns the remaining capacity fraction after the given
// equivalent full cycles and calendar years, floored at zero. Cycle fade
// consumes the (1 − EndOfLifeCapacity) budget linearly over RatedCycles;
// calendar fade stacks on top.
func (m DegradationModel) CapacityFraction(cycles, years float64) float64 {
	if cycles < 0 {
		cycles = 0
	}
	if years < 0 {
		years = 0
	}
	cycleFade := (1 - m.EndOfLifeCapacity) * cycles / m.RatedCycles
	calendarFade := m.CalendarFadePerYear * years
	remaining := 1 - cycleFade - calendarFade
	if remaining < 0 {
		return 0
	}
	return remaining
}

// IsSpent reports whether the battery has crossed its end-of-life
// threshold.
func (m DegradationModel) IsSpent(cycles, years float64) bool {
	return m.CapacityFraction(cycles, years) <= m.EndOfLifeCapacity
}

// LifetimeYears returns when the battery reaches end of life given a steady
// cycling rate (equivalent full cycles per day). With zero cycling only
// calendar fade applies.
func (m DegradationModel) LifetimeYears(cyclesPerDay float64) float64 {
	if cyclesPerDay < 0 {
		cyclesPerDay = 0
	}
	// Solve 1 − budget·(r·365·t)/RatedCycles − fade·t = EndOfLifeCapacity.
	budget := 1 - m.EndOfLifeCapacity
	perYear := budget*cyclesPerDay*365/m.RatedCycles + m.CalendarFadePerYear
	if perYear <= 0 {
		return 1e9 // effectively immortal; callers cap with calendar life
	}
	return budget / perYear
}
