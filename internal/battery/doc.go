// Package battery implements the C/L/C lithium-ion storage model the paper
// adopts from Kazhamiaka et al. ("Tractable lithium-ion storage models for
// optimizing energy systems"): energy-content limits, charge/discharge
// efficiency losses, power limits linear in the battery's capacity (C-rate),
// and a configurable depth-of-discharge floor. Parameters default to a
// Lithium Iron Phosphate (LFP) cell, the chemistry used for large stationary
// storage.
//
// This is the storage solution of the paper's Section 4.2: batteries charge
// from renewable surpluses and discharge during supply valleys, raising 24/7
// coverage (Figure 9 sizes them in hours of average compute; Figure 16 shows
// the resulting charge-level distribution). The model is modular by design —
// the paper emphasizes that other storage technologies (e.g. sodium-ion) can
// be swapped in through the same API — so all chemistry-specific behaviour
// lives in Params.
package battery
