package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over a closed interval
// [Lo, Hi]. Values outside the interval are clamped into the edge bins so
// that every observation is counted exactly once.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given number of equal-width bins
// over [lo, hi]. It panics if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram range [%v, %v]", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// HistogramOf builds a histogram from the sample with the given bin count,
// spanning [min, max] of the data. An empty sample yields a histogram over
// [0, 1] with zero counts.
func HistogramOf(xs []float64, bins int) *Histogram {
	if len(xs) == 0 {
		return NewHistogram(0, 1, bins)
	}
	s := Summarize(xs)
	lo, hi := s.Min, s.Max
	if hi <= lo {
		// Degenerate sample: widen the range so the single value gets a bin.
		// The relative term keeps the widening representable for huge values
		// where lo+1 == lo in float64.
		hi = lo + 1 + math.Abs(lo)*1e-9
	}
	h := NewHistogram(lo, hi, bins)
	for _, x := range xs {
		h.Observe(x)
	}
	return h
}

// Observe adds one observation, clamping out-of-range values to the edge
// bins.
func (h *Histogram) Observe(x float64) {
	bin := h.binOf(x)
	h.Counts[bin]++
	h.total++
}

func (h *Histogram) binOf(x float64) int {
	n := len(h.Counts)
	if x <= h.Lo {
		return 0
	}
	if x >= h.Hi {
		return n - 1
	}
	// Divide before multiplying so samples spanning the full float64 range
	// do not overflow (h.Hi - h.Lo can be +Inf, making the ratio NaN).
	frac := x/(h.Hi-h.Lo) - h.Lo/(h.Hi-h.Lo)
	bin := int(frac * float64(n))
	if math.IsNaN(frac) || bin < 0 {
		return 0
	}
	if bin >= n {
		bin = n - 1
	}
	return bin
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns bin i's share of all observations, or 0 when empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Render draws a horizontal ASCII bar chart of the histogram, with bars
// scaled so the fullest bin spans width characters. It is used by the report
// tool to render Figure 5 and Figure 16 style distributions in a terminal.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = int(math.Round(float64(c) / float64(maxCount) * float64(width)))
		}
		fmt.Fprintf(&b, "%12.2f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
