// Package stats provides the summary statistics, histograms, percentiles,
// correlation, and regression used by Carbon Explorer's analyses: daily
// generation histograms (Figure 5), curtailment trendlines (Figure 4),
// utilization–power correlation (Figure 3), and battery charge-level
// distributions (Figure 16).
package stats
