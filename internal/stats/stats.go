package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the basic descriptive statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics over xs. An empty sample yields
// a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between order statistics. It panics if xs is empty or p is
// outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanOfTopK returns the mean of the k largest values in xs. The paper uses
// this to compare the best ten generation days against the annual average.
func MeanOfTopK(xs []float64, k int) float64 {
	if k <= 0 || len(xs) == 0 {
		return 0
	}
	if k > len(xs) {
		k = len(xs)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	sum := 0.0
	for _, v := range sorted[:k] {
		sum += v
	}
	return sum / float64(k)
}

// MeanOfBottomK returns the mean of the k smallest values in xs.
func MeanOfBottomK(xs []float64, k int) float64 {
	if k <= 0 || len(xs) == 0 {
		return 0
	}
	if k > len(xs) {
		k = len(xs)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted[:k] {
		sum += v
	}
	return sum / float64(k)
}

// Pearson returns the Pearson correlation coefficient of the paired samples.
// It returns 0 when either sample has zero variance. It panics on length
// mismatch.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: correlation length mismatch")
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := mean(xs), mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// LinearFit holds the result of an ordinary-least-squares line fit
// y = Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine fits a least-squares line through the paired samples. It panics on
// length mismatch or fewer than two points.
func FitLine(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: regression length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: regression needs at least two points")
	}
	mx, my := mean(xs), mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Slope: 0, Intercept: my}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		// R² = explained variance fraction.
		var ssRes float64
		for i := range xs {
			r := ys[i] - (fit.Slope*xs[i] + fit.Intercept)
			ssRes += r * r
		}
		fit.R2 = 1 - ssRes/syy
	}
	return fit
}

// At evaluates the fitted line at x.
func (f LinearFit) At(x float64) float64 { return f.Slope*x + f.Intercept }
