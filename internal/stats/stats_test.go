package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Mean != 5 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Sample stddev of this classic dataset is ~2.138.
	if math.Abs(s.StdDev-2.13809) > 1e-4 {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Fatalf("single-element percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { Percentile(nil, 50) },
		"negative": func() { Percentile([]float64{1}, -1) },
		"over100":  func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTopBottomK(t *testing.T) {
	xs := []float64{10, 1, 5, 8, 2}
	if got := MeanOfTopK(xs, 2); got != 9 {
		t.Fatalf("top2 = %v", got)
	}
	if got := MeanOfBottomK(xs, 2); got != 1.5 {
		t.Fatalf("bottom2 = %v", got)
	}
	if got := MeanOfTopK(xs, 100); math.Abs(got-5.2) > 1e-9 {
		t.Fatalf("topAll = %v", got)
	}
	if got := MeanOfTopK(nil, 3); got != 0 {
		t.Fatalf("top of empty = %v", got)
	}
	if got := MeanOfBottomK(xs, 0); got != 0 {
		t.Fatalf("bottom0 = %v", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect positive corr = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect negative corr = %v", got)
	}
	flat := []float64{5, 5, 5, 5}
	if got := Pearson(xs, flat); got != 0 {
		t.Fatalf("zero-variance corr = %v", got)
	}
}

func TestFitLine(t *testing.T) {
	// y = 3x + 1, exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 4, 7, 10}
	fit := FitLine(xs, ys)
	if math.Abs(fit.Slope-3) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v", fit.R2)
	}
	if got := fit.At(10); math.Abs(got-31) > 1e-12 {
		t.Fatalf("At(10) = %v", got)
	}
}

func TestFitLineDegenerateX(t *testing.T) {
	fit := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3})
	if fit.Slope != 0 || fit.Intercept != 2 {
		t.Fatalf("degenerate fit = %+v", fit)
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 3, 9.5, 15, -3} {
		h.Observe(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -3 clamps to bin 0; 15 clamps to bin 4.
	if h.Counts[0] != 3 { // 0.5, 1 (1 is in bin 0 boundary? 1/10*5 = 0.5 -> bin 0), -3
		t.Fatalf("bin0 = %d, counts=%v", h.Counts[0], h.Counts)
	}
	if h.Counts[4] != 2 { // 9.5, 15
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if got := h.Fraction(4); got != 2.0/6.0 {
		t.Fatalf("Fraction(4) = %v", got)
	}
}

func TestHistogramOf(t *testing.T) {
	xs := []float64{1, 1, 1, 5, 9}
	h := HistogramOf(xs, 4)
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Mode() > 3 {
		t.Fatalf("Mode = %v, expected in lowest bin", h.Mode())
	}
	empty := HistogramOf(nil, 3)
	if empty.Total() != 0 {
		t.Fatalf("empty histogram total = %d", empty.Total())
	}
	flat := HistogramOf([]float64{4, 4, 4}, 3)
	if flat.Total() != 3 {
		t.Fatalf("degenerate histogram total = %d", flat.Total())
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(1.6)
	out := h.Render(10)
	if out == "" {
		t.Fatalf("empty render")
	}
	// Fullest bin must reach full width of '#'.
	if want := "##########"; !contains(out, want) {
		t.Fatalf("render missing full bar:\n%s", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestPropertyPercentileBounds(t *testing.T) {
	// Any percentile lies within [min, max] of the sample.
	f := func(raw []float64, p float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		got := Percentile(xs, p)
		s := Summarize(xs)
		return got >= s.Min-1e-9 && got <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHistogramConservesMass(t *testing.T) {
	// Every observation lands in exactly one bin.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		h := HistogramOf(xs, 7)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs) && h.Total() == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
