// Package forecast provides the time-series forecasting the paper's
// discussion (Section 6) points to for a deployable carbon-aware scheduler:
// "time-series analysis accurately forecasts renewable supplies and
// datacenter demands for energy. Forecasts permit optimizing schedules of
// flexible jobs in response to energy supply."
//
// Carbon Explorer's design-space exploration is offline (the scheduler sees
// the whole year). This package supplies the forecasters an online scheduler
// would use instead, and the experiments package compares oracle scheduling
// against forecast-driven scheduling to quantify how much of the offline
// benefit survives real prediction error.
package forecast
