package forecast

import (
	"fmt"
	"math"
)

// Forecaster predicts the next horizon samples of an hourly series from its
// history.
type Forecaster interface {
	// Name identifies the method in reports.
	Name() string
	// Forecast returns horizon predicted samples following history. It
	// must not mutate history. Implementations return a zero forecast when
	// history is too short to support the method.
	Forecast(history []float64, horizon int) []float64
}

// Persistence predicts that the immediate future repeats the most recent
// day: hour h tomorrow equals hour h today.
type Persistence struct{}

// Name implements Forecaster.
func (Persistence) Name() string { return "persistence" }

// Forecast implements Forecaster.
func (Persistence) Forecast(history []float64, horizon int) []float64 {
	out := make([]float64, horizon)
	n := len(history)
	if n == 0 {
		return out
	}
	period := 24
	if n < period {
		period = n
	}
	lastDay := history[n-period:]
	for i := range out {
		out[i] = lastDay[i%period]
	}
	return out
}

// SeasonalMean predicts each hour-of-day as the mean of that hour over the
// trailing Window days.
type SeasonalMean struct {
	// Window is the number of trailing days to average (default 7).
	Window int
}

// Name implements Forecaster.
func (s SeasonalMean) Name() string { return fmt.Sprintf("seasonal-mean-%dd", s.window()) }

func (s SeasonalMean) window() int {
	if s.Window <= 0 {
		return 7
	}
	return s.Window
}

// Forecast implements Forecaster.
func (s SeasonalMean) Forecast(history []float64, horizon int) []float64 {
	out := make([]float64, horizon)
	n := len(history)
	if n < 24 {
		return Persistence{}.Forecast(history, horizon)
	}
	// Align to whole days so hour-of-day indexing is exact; history in this
	// repository starts at hour 0 of the simulation.
	whole := n - n%24
	days := s.window()
	if avail := whole / 24; days > avail {
		days = avail
	}
	for h := 0; h < 24 && h < horizon; h++ {
		sum := 0.0
		for d := 1; d <= days; d++ {
			sum += history[whole-d*24+h]
		}
		out[h] = sum / float64(days)
	}
	// Repeat the daily profile across longer horizons.
	for i := 24; i < horizon; i++ {
		out[i] = out[i%24]
	}
	return out
}

// HoltWinters is additive triple exponential smoothing with a daily season,
// the classical statistical forecaster for series with strong diurnal
// structure (solar, demand).
type HoltWinters struct {
	// Alpha, Beta, Gamma are the level, trend, and season smoothing factors
	// in (0, 1). Zero values select tuned defaults.
	Alpha, Beta, Gamma float64
	// Period is the season length (default 24).
	Period int
}

// Name implements Forecaster.
func (HoltWinters) Name() string { return "holt-winters" }

func (hw HoltWinters) params() (a, b, g float64, period int) {
	a, b, g, period = hw.Alpha, hw.Beta, hw.Gamma, hw.Period
	if a <= 0 || a >= 1 {
		a = 0.25
	}
	if b <= 0 || b >= 1 {
		b = 0.02
	}
	if g <= 0 || g >= 1 {
		g = 0.3
	}
	if period <= 0 {
		period = 24
	}
	return a, b, g, period
}

// Forecast implements Forecaster.
func (hw HoltWinters) Forecast(history []float64, horizon int) []float64 {
	alpha, beta, gamma, period := hw.params()
	out := make([]float64, horizon)
	n := len(history)
	if n < 2*period {
		return Persistence{}.Forecast(history, horizon)
	}

	// Initialize level and trend from the first two seasons; seasonal
	// indices from the first season's deviation from its mean.
	var firstMean, secondMean float64
	for i := 0; i < period; i++ {
		firstMean += history[i]
		secondMean += history[period+i]
	}
	firstMean /= float64(period)
	secondMean /= float64(period)
	level := firstMean
	trend := (secondMean - firstMean) / float64(period)
	season := make([]float64, period)
	for i := 0; i < period; i++ {
		season[i] = history[i] - firstMean
	}

	for t := period; t < n; t++ {
		idx := t % period
		prevLevel := level
		level = alpha*(history[t]-season[idx]) + (1-alpha)*(level+trend)
		trend = beta*(level-prevLevel) + (1-beta)*trend
		season[idx] = gamma*(history[t]-level) + (1-gamma)*season[idx]
	}

	for h := 0; h < horizon; h++ {
		idx := (n + h) % period
		v := level + float64(h+1)*trend + season[idx]
		if v < 0 {
			v = 0 // renewable generation and demand are non-negative
		}
		out[h] = v
	}
	return out
}

// Oracle "forecasts" by reading the future directly; it bounds what any
// forecaster could achieve in scheduling studies. Construct it with the full
// actual series and the offset tracking where history ends.
type Oracle struct {
	// Actual is the full true series.
	Actual []float64
}

// Name implements Forecaster.
func (Oracle) Name() string { return "oracle" }

// Forecast implements Forecaster: it returns the true continuation of
// history (matched by length) and zero-pads past the end of Actual.
func (o Oracle) Forecast(history []float64, horizon int) []float64 {
	out := make([]float64, horizon)
	start := len(history)
	for i := 0; i < horizon; i++ {
		if start+i < len(o.Actual) {
			out[i] = o.Actual[start+i]
		}
	}
	return out
}

// Accuracy summarizes forecast error.
type Accuracy struct {
	// RMSE is root-mean-square error.
	RMSE float64
	// MAE is mean absolute error.
	MAE float64
	// Bias is mean signed error (forecast − actual).
	Bias float64
	// Samples is the number of compared points.
	Samples int
}

// Evaluate runs the forecaster in a rolling-origin backtest over the series:
// at each day boundary after warmupDays it forecasts the next 24 hours and
// compares against the actual values.
func Evaluate(f Forecaster, series []float64, warmupDays int) Accuracy {
	var acc Accuracy
	var sumSq, sumAbs, sumErr float64
	for start := warmupDays * 24; start+24 <= len(series); start += 24 {
		fc := f.Forecast(series[:start], 24)
		for i := 0; i < 24; i++ {
			e := fc[i] - series[start+i]
			sumSq += e * e
			sumAbs += math.Abs(e)
			sumErr += e
			acc.Samples++
		}
	}
	if acc.Samples > 0 {
		acc.RMSE = math.Sqrt(sumSq / float64(acc.Samples))
		acc.MAE = sumAbs / float64(acc.Samples)
		acc.Bias = sumErr / float64(acc.Samples)
	}
	return acc
}
