package forecast

import (
	"math"
	"testing"

	"carbonexplorer/internal/grid"
	"carbonexplorer/internal/timeseries"
)

// sineDay builds n hours of a clean diurnal signal.
func sineDay(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 50 + 30*math.Sin(2*math.Pi*float64(i%24)/24)
	}
	return out
}

func TestPersistenceRepeatsLastDay(t *testing.T) {
	h := sineDay(72)
	fc := Persistence{}.Forecast(h, 24)
	for i := 0; i < 24; i++ {
		if math.Abs(fc[i]-h[48+i]) > 1e-12 {
			t.Fatalf("hour %d: %v != %v", i, fc[i], h[48+i])
		}
	}
}

func TestPersistenceShortHistory(t *testing.T) {
	fc := Persistence{}.Forecast([]float64{5, 7}, 6)
	want := []float64{5, 7, 5, 7, 5, 7}
	for i := range want {
		if fc[i] != want[i] {
			t.Fatalf("short-history persistence = %v", fc)
		}
	}
	empty := Persistence{}.Forecast(nil, 3)
	if empty[0] != 0 || len(empty) != 3 {
		t.Fatalf("empty-history forecast should be zeros")
	}
}

func TestSeasonalMeanPerfectOnPeriodic(t *testing.T) {
	h := sineDay(24 * 10)
	fc := SeasonalMean{Window: 5}.Forecast(h, 24)
	for i := 0; i < 24; i++ {
		if math.Abs(fc[i]-h[i]) > 1e-9 {
			t.Fatalf("periodic signal should forecast exactly: hour %d %v vs %v", i, fc[i], h[i])
		}
	}
}

func TestSeasonalMeanLongHorizonRepeats(t *testing.T) {
	h := sineDay(24 * 5)
	fc := SeasonalMean{}.Forecast(h, 48)
	for i := 0; i < 24; i++ {
		if fc[i] != fc[24+i] {
			t.Fatalf("long horizon should tile the daily profile")
		}
	}
}

func TestSeasonalMeanFallbackShortHistory(t *testing.T) {
	fc := SeasonalMean{}.Forecast([]float64{1, 2, 3}, 3)
	if len(fc) != 3 {
		t.Fatalf("fallback length wrong")
	}
}

func TestHoltWintersTracksPeriodicSignal(t *testing.T) {
	h := sineDay(24 * 20)
	fc := HoltWinters{}.Forecast(h, 24)
	for i := 0; i < 24; i++ {
		if math.Abs(fc[i]-h[i]) > 3 {
			t.Fatalf("HW far off on clean periodic signal: hour %d %v vs %v", i, fc[i], h[i])
		}
	}
}

func TestHoltWintersNonNegative(t *testing.T) {
	// A decaying series must not produce negative forecasts.
	h := make([]float64, 24*10)
	for i := range h {
		h[i] = math.Max(100-float64(i), 0)
	}
	fc := HoltWinters{}.Forecast(h, 48)
	for i, v := range fc {
		if v < 0 {
			t.Fatalf("negative forecast at %d: %v", i, v)
		}
	}
}

func TestHoltWintersFallback(t *testing.T) {
	fc := HoltWinters{}.Forecast(sineDay(30), 24)
	if len(fc) != 24 {
		t.Fatalf("fallback length wrong")
	}
}

func TestOracle(t *testing.T) {
	actual := sineDay(100)
	o := Oracle{Actual: actual}
	fc := o.Forecast(actual[:40], 24)
	for i := 0; i < 24; i++ {
		if fc[i] != actual[40+i] {
			t.Fatalf("oracle must read the future exactly")
		}
	}
	// Past the end: zero-padded.
	tail := o.Forecast(actual[:90], 24)
	if tail[9] != actual[99] || tail[10] != 0 {
		t.Fatalf("oracle end-of-series handling wrong")
	}
}

func TestNames(t *testing.T) {
	if (Persistence{}).Name() != "persistence" {
		t.Fatal("persistence name")
	}
	if (SeasonalMean{}).Name() != "seasonal-mean-7d" {
		t.Fatalf("seasonal mean name %q", SeasonalMean{}.Name())
	}
	if (HoltWinters{}).Name() != "holt-winters" {
		t.Fatal("holt-winters name")
	}
	if (Oracle{}).Name() != "oracle" {
		t.Fatal("oracle name")
	}
}

func TestEvaluateOracleIsPerfect(t *testing.T) {
	series := sineDay(24 * 30)
	acc := Evaluate(Oracle{Actual: series}, series, 7)
	if acc.RMSE != 0 || acc.MAE != 0 {
		t.Fatalf("oracle should have zero error: %+v", acc)
	}
	if acc.Samples != 23*24 {
		t.Fatalf("samples = %d", acc.Samples)
	}
}

func TestEvaluateRanksForecastersOnRealShape(t *testing.T) {
	// On synthetic solar generation, the seasonal methods should beat
	// naive persistence (clouds make "tomorrow = today" noisy), and every
	// method must beat the zero forecast.
	y := grid.GenerateYear(grid.MustProfile("DUK"))
	solar := y.SolarShape().Slice(0, 24*120).Values()

	persist := Evaluate(Persistence{}, solar, 14)
	seasonal := Evaluate(SeasonalMean{}, solar, 14)
	hw := Evaluate(HoltWinters{}, solar, 14)

	if seasonal.RMSE >= persist.RMSE {
		t.Errorf("seasonal mean (%.2f) should beat persistence (%.2f) on cloudy solar",
			seasonal.RMSE, persist.RMSE)
	}
	mean := timeseries.FromValues(solar).Mean()
	for name, acc := range map[string]Accuracy{"persistence": persist, "seasonal": seasonal, "holt-winters": hw} {
		if acc.RMSE <= 0 {
			t.Errorf("%s: zero error is implausible on noisy data", name)
		}
		if acc.RMSE > 3*mean {
			t.Errorf("%s: RMSE %v wildly above signal mean %v", name, acc.RMSE, mean)
		}
	}
}

func TestEvaluateEmptySeries(t *testing.T) {
	acc := Evaluate(Persistence{}, nil, 0)
	if acc.Samples != 0 || acc.RMSE != 0 {
		t.Fatalf("empty evaluation should be zero: %+v", acc)
	}
}
