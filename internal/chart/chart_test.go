package chart

import (
	"math"
	"strings"
	"testing"
)

func TestSparkBasic(t *testing.T) {
	s := Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	runes := []rune(s)
	if len(runes) != 8 {
		t.Fatalf("length = %d", len(runes))
	}
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("endpoints wrong: %q", s)
	}
	// Monotone input → monotone blocks.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("non-monotone sparkline: %q", s)
		}
	}
}

func TestSparkEdgeCases(t *testing.T) {
	if Spark(nil) != "" {
		t.Fatal("empty input should give empty string")
	}
	flat := Spark([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Fatalf("flat series = %q", flat)
	}
}

func TestPlotRendersSeries(t *testing.T) {
	line := Line{Name: "demand", Values: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	out := Plot([]Line{line}, 20, 6)
	if out == "" {
		t.Fatal("empty plot")
	}
	if !strings.Contains(out, "demand") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("series marks missing")
	}
	// Axis labels include the data range.
	if !strings.Contains(out, "10.0") || !strings.Contains(out, "1.0") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6+2 { // height rows + axis + legend
		t.Fatalf("line count = %d", len(lines))
	}
}

func TestPlotMultipleSeries(t *testing.T) {
	a := Line{Name: "a", Values: []float64{1, 1, 1, 1}}
	b := Line{Name: "b", Values: []float64{4, 4, 4, 4}}
	out := Plot([]Line{a, b}, 16, 5)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("auto-assigned runes missing:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("legend incomplete")
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	if Plot(nil, 20, 5) != "" {
		t.Fatal("no lines should give empty")
	}
	if Plot([]Line{{Name: "x"}}, 2, 5) != "" {
		t.Fatal("tiny width should give empty")
	}
	if Plot([]Line{{Name: "x"}}, 20, 1) != "" {
		t.Fatal("tiny height should give empty")
	}
	// Flat series still renders.
	out := Plot([]Line{{Name: "flat", Values: []float64{3, 3, 3}}}, 16, 4)
	if out == "" {
		t.Fatal("flat series should render")
	}
}

func TestResample(t *testing.T) {
	// Downsampling averages buckets.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	out := resample(vals, 10)
	if len(out) != 10 {
		t.Fatalf("length = %d", len(out))
	}
	if math.Abs(out[0]-4.5) > 1e-9 {
		t.Fatalf("bucket 0 mean = %v, want 4.5", out[0])
	}
	// Upsampling pads with NaN.
	short := resample([]float64{1, 2}, 5)
	if short[0] != 1 || short[1] != 2 || !math.IsNaN(short[4]) {
		t.Fatalf("short resample wrong: %v", short)
	}
	empty := resample(nil, 3)
	for _, v := range empty {
		if !math.IsNaN(v) {
			t.Fatal("empty resample should be NaN-padded")
		}
	}
}
