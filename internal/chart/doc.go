// Package chart renders hourly series as ASCII line charts and sparklines
// for terminal reports — the closest a CLI reproduction gets to the paper's
// figures (the experiments package uses it for the chart variants of
// Figures 1, 6, and 11). It is deliberately dependency-free and
// deterministic.
package chart
