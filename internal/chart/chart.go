package chart

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders a one-line sparkline of the values, scaling to the data
// range. Empty input yields an empty string; a flat series renders at the
// lowest block.
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Line is one named series for a Plot.
type Line struct {
	// Name labels the series in the legend.
	Name string
	// Values are the samples; all lines in one plot share the x axis.
	Values []float64
	// Rune draws the series (e.g. '*', '+', 'o'). Zero means auto-assign.
	Rune rune
}

// Plot renders one or more series as a height×width ASCII chart with a
// y-axis scale and a legend. Series longer than width are downsampled by
// averaging buckets; shorter series are drawn one column per sample.
func Plot(lines []Line, width, height int) string {
	if len(lines) == 0 || width < 8 || height < 2 {
		return ""
	}
	autoRunes := []rune{'*', '+', 'o', 'x', '#', '@'}
	lo, hi := math.Inf(1), math.Inf(-1)
	cols := make([][]float64, len(lines))
	for i, ln := range lines {
		cols[i] = resample(ln.Values, width)
		for _, v := range cols[i] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	if hi <= lo {
		hi = lo + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for i := range lines {
		r := lines[i].Rune
		if r == 0 {
			r = autoRunes[i%len(autoRunes)]
		}
		for c, v := range cols[i] {
			if c >= width || math.IsNaN(v) {
				continue
			}
			row := height - 1 - int((v-lo)/(hi-lo)*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][c] = r
		}
	}

	var b strings.Builder
	for r := 0; r < height; r++ {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.1f |%s\n", yVal, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", width) + "\n")
	var legend []string
	for i, ln := range lines {
		r := ln.Rune
		if r == 0 {
			r = autoRunes[i%len(autoRunes)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", r, ln.Name))
	}
	b.WriteString(strings.Repeat(" ", 12) + strings.Join(legend, "   ") + "\n")
	return b.String()
}

// Scatter renders x/y point pairs as a height×width ASCII chart, positioning
// each point by its x value rather than its sample index — the right shape
// for Pareto frontiers and other (x, y) curves with uneven x spacing. The
// two slices must have equal length; NaN pairs are skipped. Degenerate input
// (no finite points, width < 8, height < 2) yields an empty string.
func Scatter(xs, ys []float64, width, height int, mark rune) string {
	if len(xs) != len(ys) || len(xs) == 0 || width < 8 || height < 2 {
		return ""
	}
	if mark == 0 {
		mark = '*'
	}
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		xlo, xhi = math.Min(xlo, xs[i]), math.Max(xhi, xs[i])
		ylo, yhi = math.Min(ylo, ys[i]), math.Max(yhi, ys[i])
	}
	if math.IsInf(xlo, 1) {
		return ""
	}
	if xhi <= xlo {
		xhi = xlo + 1
	}
	if yhi <= ylo {
		yhi = ylo + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		col := int((xs[i] - xlo) / (xhi - xlo) * float64(width-1))
		row := height - 1 - int((ys[i]-ylo)/(yhi-ylo)*float64(height-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][col] = mark
	}

	var b strings.Builder
	for r := 0; r < height; r++ {
		yVal := yhi - (yhi-ylo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.1f |%s\n", yVal, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "%s%-10.1f%*.1f\n", strings.Repeat(" ", 12), xlo, width-10, xhi)
	return b.String()
}

// resample averages values into exactly width buckets (or pads with NaN
// when the series is shorter than width, leaving gaps).
func resample(values []float64, width int) []float64 {
	out := make([]float64, width)
	if len(values) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	if len(values) <= width {
		for i := range out {
			if i < len(values) {
				out[i] = values[i]
			} else {
				out[i] = math.NaN()
			}
		}
		return out
	}
	for i := 0; i < width; i++ {
		loIdx := i * len(values) / width
		hiIdx := (i + 1) * len(values) / width
		if hiIdx <= loIdx {
			hiIdx = loIdx + 1
		}
		sum := 0.0
		for _, v := range values[loIdx:hiIdx] {
			sum += v
		}
		out[i] = sum / float64(hiIdx-loIdx)
	}
	return out
}
