package workload

import (
	"math"
	"testing"
)

func TestTierSharesSumToOne(t *testing.T) {
	total := 0.0
	for _, tier := range AllTiers() {
		total += tier.Share()
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("tier shares sum to %v, want 1", total)
	}
}

func TestTierSharesMatchFigure10(t *testing.T) {
	want := map[Tier]float64{Tier1: 0.088, Tier2: 0.038, Tier3: 0.105, Tier4: 0.712, Tier5: 0.057}
	for tier, share := range want {
		if got := tier.Share(); got != share {
			t.Errorf("%v share = %v, want %v", tier, got, share)
		}
	}
}

func TestTierSlackMonotonic(t *testing.T) {
	tiers := AllTiers()
	for i := 1; i < len(tiers); i++ {
		if tiers[i].SlackHours() <= tiers[i-1].SlackHours() {
			t.Fatalf("slack must increase with tier: %v vs %v", tiers[i-1], tiers[i])
		}
	}
}

func TestTierString(t *testing.T) {
	if Tier4.String() != "Tier 4 (daily)" {
		t.Fatalf("Tier4 name = %q", Tier4.String())
	}
	if got := Tier(9).String(); got != "tier(9)" {
		t.Fatalf("out-of-range tier name %q", got)
	}
}

func TestShareWithSLOAtLeast(t *testing.T) {
	// Paper: ~87.4% of data-processing workloads have SLOs > 4 hours; in
	// this model those are the daily and no-SLO tiers: 71.2% + 5.7% = 76.9%,
	// plus Tier 3 (exactly 4h) giving 87.4% at the ≥4h threshold.
	got := ShareWithSLOAtLeast(4)
	if math.Abs(got-0.874) > 1e-9 {
		t.Fatalf("share with SLO >= 4h = %v, want 0.874", got)
	}
	if got := ShareWithSLOAtLeast(24); math.Abs(got-0.769) > 1e-9 {
		t.Fatalf("share with SLO >= 24h = %v, want 0.769", got)
	}
	if got := ShareWithSLOAtLeast(0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("share with SLO >= 0h = %v, want 1", got)
	}
}

func TestDefaultMixValid(t *testing.T) {
	m := DefaultMix()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.FlexibleRatio != 0.40 {
		t.Fatalf("default flexible ratio = %v, want paper's 0.40", m.FlexibleRatio)
	}
}

func TestMixValidation(t *testing.T) {
	for _, m := range []Mix{
		{FlexibleRatio: -0.1},
		{FlexibleRatio: 1.1},
		{FlexibleRatio: 0.4, DataProcessingShare: 2},
	} {
		if m.Validate() == nil {
			t.Errorf("mix %+v should be invalid", m)
		}
	}
}

func TestJobDeadline(t *testing.T) {
	j := Job{Tier: Tier3, SubmitHour: 100}
	if j.Deadline() != 104 {
		t.Fatalf("deadline = %d, want 104", j.Deadline())
	}
}

func TestGenerateTrace(t *testing.T) {
	jobs := GenerateTrace(DefaultTraceParams(), 24*7)
	if len(jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	// Arrival rate should be near the configured mean.
	perHour := float64(len(jobs)) / (24 * 7)
	if perHour < 30 || perHour > 50 {
		t.Fatalf("jobs per hour = %v, want ~40", perHour)
	}
	seen := map[int]bool{}
	for _, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
		if j.DurationHours < 1 {
			t.Fatalf("job %d has non-positive duration", j.ID)
		}
		if j.PowerMW < 0 {
			t.Fatalf("job %d has negative power", j.ID)
		}
		if j.SubmitHour < 0 || j.SubmitHour >= 24*7 {
			t.Fatalf("job %d submitted out of range", j.ID)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	a := GenerateTrace(DefaultTraceParams(), 100)
	b := GenerateTrace(DefaultTraceParams(), 100)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestTraceTierDistribution(t *testing.T) {
	jobs := GenerateTrace(DefaultTraceParams(), 24*90)
	counts := map[Tier]int{}
	for _, j := range jobs {
		counts[j.Tier]++
	}
	// Tier 4 should dominate (71.2% share) — allow generous sampling error.
	frac := float64(counts[Tier4]) / float64(len(jobs))
	if frac < 0.65 || frac > 0.78 {
		t.Fatalf("Tier 4 fraction = %v, want ~0.712", frac)
	}
}

func TestDiurnalArrivals(t *testing.T) {
	p := DefaultTraceParams()
	p.DiurnalAmplitude = 0.5
	jobs := GenerateTrace(p, 24*60)
	byHour := make([]int, 24)
	for _, j := range jobs {
		byHour[j.SubmitHour%24]++
	}
	// Evening (19:00, the sine peak) should see clearly more arrivals than
	// the morning trough (07:00).
	if byHour[19] <= byHour[7] {
		t.Fatalf("evening arrivals %d should exceed morning %d", byHour[19], byHour[7])
	}
	// Uniform arrivals with zero amplitude.
	p.DiurnalAmplitude = 0
	uniform := GenerateTrace(p, 24*60)
	if len(uniform) == 0 {
		t.Fatal("no jobs")
	}
}

func TestFlexibleEnergyShare(t *testing.T) {
	jobs := []Job{
		{Tier: Tier1, DurationHours: 1, PowerMW: 1}, // 1 MWh inflexible at 24h
		{Tier: Tier4, DurationHours: 3, PowerMW: 1}, // 3 MWh flexible
	}
	if got := FlexibleEnergyShare(jobs, 24); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("flexible share = %v, want 0.75", got)
	}
	if got := FlexibleEnergyShare(nil, 24); got != 0 {
		t.Fatalf("empty trace share = %v, want 0", got)
	}
}

func TestTraceFlexibleShareMatchesTiers(t *testing.T) {
	jobs := GenerateTrace(DefaultTraceParams(), 24*90)
	got := FlexibleEnergyShare(jobs, 24)
	// Energy-weighted share should land near the count-weighted 76.9%.
	if got < 0.68 || got > 0.86 {
		t.Fatalf("trace flexible energy share = %v, want ~0.77", got)
	}
}
