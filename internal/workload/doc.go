// Package workload models the delay-tolerance structure of hyperscale
// datacenter workloads: SLO tiers (the paper's Figure 10 breakdown of data
// processing workloads at Meta), the flexible-workload ratio that feeds the
// carbon-aware scheduler (Section 4.3), and a Borg-like synthetic job trace
// generator consumed by the jobsim simulator.
package workload
