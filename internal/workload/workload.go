package workload

import (
	"fmt"
	"math"

	"carbonexplorer/internal/synth"
)

// Tier is a completion-time SLO class, ordered from least to most flexible.
type Tier int

// The paper's five data-processing SLO tiers (Figure 10).
const (
	// Tier1 jobs must complete within ±1 hour of their target.
	Tier1 Tier = iota
	// Tier2 jobs tolerate ±2 hours.
	Tier2
	// Tier3 jobs tolerate ±4 hours.
	Tier3
	// Tier4 jobs have daily completion SLOs.
	Tier4
	// Tier5 jobs have no SLO.
	Tier5
	numTiers
)

// NumTiers is the number of SLO tiers.
const NumTiers = int(numTiers)

// String names the tier.
func (t Tier) String() string {
	if t < 0 || int(t) >= NumTiers {
		return fmt.Sprintf("tier(%d)", int(t))
	}
	return [...]string{"Tier 1 (±1h)", "Tier 2 (±2h)", "Tier 3 (±4h)", "Tier 4 (daily)", "Tier 5 (no SLO)"}[t]
}

// SlackHours returns how far a job of this tier may be shifted in time. Tier
// 5 jobs have no SLO; they are modelled with a one-week slack so that the
// scheduler can treat them as nearly free.
func (t Tier) SlackHours() int {
	switch t {
	case Tier1:
		return 1
	case Tier2:
		return 2
	case Tier3:
		return 4
	case Tier4:
		return 24
	case Tier5:
		return 168
	default:
		panic(fmt.Sprintf("workload: unknown tier %d", int(t)))
	}
}

// Share returns the tier's share of data-processing workloads per the
// paper's Figure 10.
func (t Tier) Share() float64 {
	switch t {
	case Tier1:
		return 0.088
	case Tier2:
		return 0.038
	case Tier3:
		return 0.105
	case Tier4:
		return 0.712
	case Tier5:
		return 0.057
	default:
		panic(fmt.Sprintf("workload: unknown tier %d", int(t)))
	}
}

// AllTiers lists the tiers in order.
func AllTiers() []Tier {
	out := make([]Tier, NumTiers)
	for i := range out {
		out[i] = Tier(i)
	}
	return out
}

// ShareWithSLOAtLeast returns the fraction of data-processing workloads
// whose SLO slack is at least the given number of hours. The paper reports
// ~87.4% of Meta's data-processing workloads have SLOs greater than 4 hours
// (tiers 4 and 5 under this model).
func ShareWithSLOAtLeast(hours int) float64 {
	total := 0.0
	for _, t := range AllTiers() {
		if t.SlackHours() >= hours {
			total += t.Share()
		}
	}
	return total
}

// Mix describes a datacenter's workload flexibility.
type Mix struct {
	// FlexibleRatio is the fraction of each hour's load that may be
	// deferred (the scheduler's FWR input). The paper's headline analyses
	// use 0.40, the flexible fraction Google reports for Borg.
	FlexibleRatio float64
	// DataProcessingShare is the fraction of the fleet that is offline
	// data processing (paper: ~7.5% at Meta), used when deriving the
	// flexible ratio bottom-up from tiers.
	DataProcessingShare float64
}

// DefaultMix returns the paper's evaluation assumptions.
func DefaultMix() Mix {
	return Mix{FlexibleRatio: 0.40, DataProcessingShare: 0.075}
}

// Validate reports the first invalid field, or nil.
func (m Mix) Validate() error {
	if m.FlexibleRatio < 0 || m.FlexibleRatio > 1 {
		return fmt.Errorf("workload: flexible ratio %v out of [0, 1]", m.FlexibleRatio)
	}
	if m.DataProcessingShare < 0 || m.DataProcessingShare > 1 {
		return fmt.Errorf("workload: data-processing share %v out of [0, 1]", m.DataProcessingShare)
	}
	return nil
}

// Job is one schedulable unit in the synthetic trace.
type Job struct {
	// ID is a sequential identifier.
	ID int
	// Tier determines the job's time flexibility.
	Tier Tier
	// SubmitHour is the hour index the job arrives.
	SubmitHour int
	// DurationHours is the job's run length.
	DurationHours int
	// PowerMW is the job's power draw while running.
	PowerMW float64
}

// Deadline returns the last hour the job may start and still meet its SLO.
func (j Job) Deadline() int { return j.SubmitHour + j.Tier.SlackHours() }

// TraceParams configures the synthetic job-trace generator.
type TraceParams struct {
	// JobsPerHour is the mean arrival rate.
	JobsPerHour float64
	// MeanDurationHours is the mean job run length (geometric).
	MeanDurationHours float64
	// MeanPowerMW is the mean per-job power draw (exponential).
	MeanPowerMW float64
	// DiurnalAmplitude modulates the arrival rate over the day in [0, 1):
	// rate(h) = JobsPerHour × (1 + A·sin(...)), peaking in the evening when
	// users and daily pipelines submit batch work. Zero keeps arrivals
	// uniform.
	DiurnalAmplitude float64
	// Seed isolates the generator's random stream.
	Seed uint64
}

// DefaultTraceParams returns a Borg-flavoured configuration.
func DefaultTraceParams() TraceParams {
	return TraceParams{JobsPerHour: 40, MeanDurationHours: 3, MeanPowerMW: 0.05, Seed: 7}
}

// GenerateTrace produces a deterministic synthetic job trace covering the
// given number of hours. Tier assignment follows the Figure 10 shares.
func GenerateTrace(p TraceParams, hours int) []Job {
	rng := synth.NewRNG(p.Seed)
	var jobs []Job
	id := 0
	for h := 0; h < hours; h++ {
		rate := p.JobsPerHour
		if p.DiurnalAmplitude > 0 {
			rate *= 1 + p.DiurnalAmplitude*math.Sin(2*math.Pi*(float64(h%24)-13)/24)
		}
		// Poisson-ish arrivals via independent thinning.
		n := int(rate)
		frac := rate - float64(n)
		if rng.Float64() < frac {
			n++
		}
		for i := 0; i < n; i++ {
			dur := 1 + int(-p.MeanDurationHours*math.Log(1-rng.Float64()))
			power := -p.MeanPowerMW * math.Log(1-rng.Float64())
			jobs = append(jobs, Job{
				ID:            id,
				Tier:          sampleTier(rng),
				SubmitHour:    h,
				DurationHours: dur,
				PowerMW:       power,
			})
			id++
		}
	}
	return jobs
}

// sampleTier draws a tier with Figure 10 probabilities.
func sampleTier(rng *synth.RNG) Tier {
	u := rng.Float64()
	cum := 0.0
	for _, t := range AllTiers() {
		cum += t.Share()
		if u < cum {
			return t
		}
	}
	return Tier5
}

// FlexibleEnergyShare computes, from a job trace, the fraction of total
// job energy whose SLO slack is at least minSlackHours — a bottom-up
// estimate of the flexible-workload ratio.
func FlexibleEnergyShare(jobs []Job, minSlackHours int) float64 {
	var flex, total float64
	for _, j := range jobs {
		e := j.PowerMW * float64(j.DurationHours)
		total += e
		if j.Tier.SlackHours() >= minSlackHours {
			flex += e
		}
	}
	if total == 0 {
		return 0
	}
	return flex / total
}
