package analyzers

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Baseline is a set of accepted findings CI tolerates while they are being
// burned down: the lint gate fails only on findings NOT in the baseline.
// Entries match on (analyzer, root-relative file, message) — line numbers
// are deliberately excluded so unrelated edits shifting a file do not
// resurrect a baselined finding — and matching is multiset-style: a
// baseline entry absorbs at most count occurrences, so a finding that
// multiplies still surfaces.
type Baseline struct {
	counts map[baselineKey]int
}

type baselineKey struct {
	Analyzer string
	File     string
	Message  string
}

// baselineEntry is the on-disk form of one accepted finding.
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count,omitempty"`
}

// baselineFile is the on-disk document.
type baselineFile struct {
	// Comment documents the workflow for people reading the raw file.
	Comment  string          `json:"comment,omitempty"`
	Findings []baselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file. A missing path is an error: pointing
// CI at a baseline that silently does not exist would disable the gate.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var doc baselineFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	b := &Baseline{counts: make(map[baselineKey]int, len(doc.Findings))}
	for _, e := range doc.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		b.counts[baselineKey{e.Analyzer, e.File, e.Message}] += n
	}
	return b, nil
}

// Filter returns the findings not absorbed by the baseline, preserving
// order. root relativizes finding paths to match the baseline's file keys.
func (b *Baseline) Filter(findings []Finding, root string) []Finding {
	if b == nil || len(b.counts) == 0 {
		return findings
	}
	remaining := make(map[baselineKey]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	kept := make([]Finding, 0, len(findings))
	for _, f := range findings {
		k := baselineKey{f.Analyzer, relFile(root, f.Position.Filename), f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// WriteBaseline renders findings as a baseline document absorbing exactly
// the given findings — the `-write-baseline` output that starts a burn-down.
func WriteBaseline(w io.Writer, findings []Finding, root string) error {
	counts := map[baselineKey]int{}
	for _, f := range findings {
		counts[baselineKey{f.Analyzer, relFile(root, f.Position.Filename), f.Message}]++
	}
	keys := make([]baselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].File != keys[j].File {
			return keys[i].File < keys[j].File
		}
		if keys[i].Analyzer != keys[j].Analyzer {
			return keys[i].Analyzer < keys[j].Analyzer
		}
		return keys[i].Message < keys[j].Message
	})
	doc := baselineFile{
		Comment:  "accepted carbonlint findings; the lint gate fails only on findings not listed here — burn these down, do not grow them",
		Findings: make([]baselineEntry, 0, len(keys)),
	}
	for _, k := range keys {
		e := baselineEntry{Analyzer: k.Analyzer, File: k.File, Message: k.Message}
		if counts[k] > 1 {
			e.Count = counts[k]
		}
		doc.Findings = append(doc.Findings, e)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
