// Package jsontag makes JSON wire schemas explicit.
//
// Checkpoint schema v2 promises forward compatibility: v1 files still load,
// and merged shard checkpoints are byte-stable. An exported struct field
// without a json tag serializes under its Go identifier, so an innocent
// field rename is silently a wire-format break — the exact failure the
// versioned-checkpoint design exists to prevent. The rule: every exported
// field of every struct that can reach an encoding/json call must carry an
// explicit json tag, making the wire name a deliberate decision.
//
// The analyzer finds the roots — arguments of json.Marshal/MarshalIndent/
// Unmarshal and (*json.Encoder).Encode / (*json.Decoder).Decode calls in
// the package — and walks every struct type reachable from them through
// fields, pointers, slices, arrays, and maps. Untagged exported fields of
// in-package structs are reported at the field; structs from other packages
// are reported once at the call site that reaches them.
package jsontag

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"carbonexplorer/internal/analyzers/analysis"
)

// Analyzer is the jsontag check.
var Analyzer = &analysis.Analyzer{
	Name: "jsontag",
	Doc:  "require explicit json tags on every exported field of JSON-serialized schema structs",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	w := &walker{pass: pass, seen: map[types.Type]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if arg := schemaRoot(pass, call); arg != nil {
				w.visit(pass.TypesInfo.TypeOf(arg), call.Pos())
			}
			return true
		})
	}
	return nil, nil
}

// schemaRoot returns the value argument of an encoding/json call, or nil.
func schemaRoot(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
		return nil
	}
	switch fn.Name() {
	case "Marshal", "MarshalIndent":
		if len(call.Args) > 0 {
			return call.Args[0]
		}
	case "Unmarshal":
		if len(call.Args) > 1 {
			return call.Args[1]
		}
	case "Encode", "Decode": // methods on *Encoder / *Decoder
		if fn.Type().(*types.Signature).Recv() != nil && len(call.Args) > 0 {
			return call.Args[0]
		}
	}
	return nil
}

// walker traverses the type graph reachable from schema roots.
type walker struct {
	pass *analysis.Pass
	seen map[types.Type]bool
}

// visit walks t, reporting untagged exported struct fields. root is the
// call position used for structs declared in other packages.
func (w *walker) visit(t types.Type, root token.Pos) {
	if t == nil || w.seen[t] {
		return
	}
	w.seen[t] = true
	switch t := t.(type) {
	case *types.Pointer:
		w.visit(t.Elem(), root)
	case *types.Slice:
		w.visit(t.Elem(), root)
	case *types.Array:
		w.visit(t.Elem(), root)
	case *types.Map:
		w.visit(t.Elem(), root)
	case *types.Named:
		if st, ok := t.Underlying().(*types.Struct); ok {
			w.checkStruct(st, t, root)
		}
	case *types.Struct:
		w.checkStruct(t, nil, root)
	}
}

// checkStruct reports untagged exported fields of one struct and recurses
// into the types of serialized fields. named is nil for anonymous structs.
func (w *walker) checkStruct(st *types.Struct, named *types.Named, root token.Pos) {
	var foreign []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue // encoding/json ignores unexported fields
		}
		tag, explicit := reflect.StructTag(st.Tag(i)).Lookup("json")
		if tag == "-" {
			continue // explicitly excluded from the wire format
		}
		if !explicit {
			if f.Pkg() == w.pass.Pkg {
				w.pass.Reportf(f.Pos(), "exported field %s of JSON schema struct %s has no json tag: the wire name is silently the Go identifier, so a rename breaks the format", f.Name(), structName(named))
			} else {
				foreign = append(foreign, f.Name())
			}
		}
		w.visit(f.Type(), root)
	}
	if len(foreign) > 0 {
		sort.Strings(foreign)
		w.pass.Reportf(root, "JSON schema reaches %s, whose exported fields lack json tags: %s", structName(named), strings.Join(foreign, ", "))
	}
}

// structName names a struct for diagnostics.
func structName(named *types.Named) string {
	if named == nil {
		return "anonymous struct"
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
