package jsontag_test

import (
	"testing"

	"carbonexplorer/internal/analyzers/jsontag"
	"carbonexplorer/internal/analyzers/linttest"
)

func TestUntaggedSchemaFieldsFlagged(t *testing.T) {
	linttest.Run(t, jsontag.Analyzer, "testdata/flag", "carbonexplorer/internal/schema")
}

func TestTaggedAndUnserializedClean(t *testing.T) {
	linttest.Run(t, jsontag.Analyzer, "testdata/clean", "carbonexplorer/internal/schema")
}
