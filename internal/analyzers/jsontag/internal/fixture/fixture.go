// Package fixture holds an untagged struct for jsontag's cross-package
// test: a schema struct declared outside the package under analysis is
// reported at the call site that reaches it, not at its fields.
package fixture

// Legacy is a wire struct that predates the json-tag rule: its exported
// fields deliberately lack tags. The package itself makes no encoding/json
// calls, so it lints clean — only packages that serialize it are flagged.
type Legacy struct {
	A int
	B string
}
