// Fixture: untagged exported fields reachable from encoding/json calls
// must be flagged — at the field for in-package structs, at the call site
// for foreign ones.
package schema

import (
	"encoding/json"

	"carbonexplorer/internal/analyzers/jsontag/internal/fixture"
)

type point struct {
	X    float64 // want `exported field X of JSON schema struct schema\.point has no json tag`
	Y    float64 // want `exported field Y of JSON schema struct schema\.point has no json tag`
	note string
}

type record struct {
	Name   string  `json:"name"`
	Points []point `json:"points"`
	Secret int     `json:"-"`
}

func encode(r record) ([]byte, error) {
	return json.Marshal(r)
}

func decode(data []byte) (record, error) {
	var r record
	err := json.Unmarshal(data, &r)
	return r, err
}

type event struct {
	Kind string // want `exported field Kind of JSON schema struct schema\.event has no json tag`
}

func stream(enc *json.Encoder, e event) error {
	return enc.Encode(e)
}

func encodeForeign(v fixture.Legacy) ([]byte, error) {
	return json.Marshal(v) // want `JSON schema reaches fixture\.Legacy, whose exported fields lack json tags: A, B`
}
