// Fixture: fully tagged schema structs and structs that never reach a
// JSON call produce no findings.
package schema

import "encoding/json"

type point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type record struct {
	Name   string  `json:"name"`
	Points []point `json:"points"`
	Secret int     `json:"-"`
}

func encode(r record) ([]byte, error) { return json.Marshal(r) }

type unserialized struct {
	Untagged int
}

func peek(u unserialized) int { return u.Untagged }
