// Package linttest is the suite's analysistest: it runs one analyzer over a
// testdata package and checks its diagnostics against `// want "regexp"`
// comments, analysistest-style.
//
// A testdata directory holds one package. Each line that should trigger the
// analyzer carries a comment of the form
//
//	code() // want "regexp" `another regexp`
//
// with one Go-quoted (interpreted or raw) regular expression per expected
// diagnostic on that line. Diagnostics without a matching want, and wants without a matching
// diagnostic, fail the test. //carbonlint:allow directives are honoured
// exactly as in the real driver — including the malformed/unknown/unused
// directive diagnostics — so suppression behaviour is testable too.
package linttest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"carbonexplorer/internal/analyzers/analysis"
	"carbonexplorer/internal/analyzers/directive"
	"carbonexplorer/internal/analyzers/load"
)

// wantRE extracts the quoted patterns of a `// want` comment. Patterns are
// Go string literals, interpreted ("…") or raw (backquoted) — raw is the
// natural fit for regexps full of backslashes.
var wantRE = regexp.MustCompile(`//\s*want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)

// quotedRE matches one Go string literal, interpreted or raw.
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run type-checks the one-package testdata directory dir under the import
// path pkgPath, applies the analyzer plus the directive checks, and
// compares surviving diagnostics against the package's want comments.
//
// pkgPath is load-bearing: analyzers scope rules by package path, so a
// flagging case for the sweep rules must run under
// "carbonexplorer/internal/sweep" and a clean out-of-scope case under some
// other path.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg, err := load.Dir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	wants := collectWants(t, pkg)

	dirs, diags := directive.Scan(pkg.Fset, pkg.Files, []string{a.Name})
	var reported []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { reported = append(reported, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	diags = append(diags, directive.Suppress(pkg.Fset, dirs, a.Name, reported)...)
	diags = append(diags, directive.Unused(dirs)...)

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !match(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// collectWants parses every want comment in the package.
func collectWants(t *testing.T, pkg *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					lit, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// match consumes the first unmatched want on the diagnostic's line whose
// pattern matches the message.
func match(wants []*want, pos token.Position, message string) bool {
	for _, w := range wants {
		if w.matched || w.line != pos.Line || filepath.Base(w.file) != filepath.Base(pos.Filename) {
			continue
		}
		if w.pattern.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
