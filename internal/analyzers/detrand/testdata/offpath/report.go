// Fixture: the same constructs outside the fold path (checked under a
// non-fold import path) are out of scope for detrand.
package report

import "time"

func stamp() string { return time.Now().Format(time.RFC3339) }
