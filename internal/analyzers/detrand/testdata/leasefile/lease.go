// Fixture: coordinator's lease.go — the heartbeat/expiry protocol — is
// file-allowlisted even though the package is on the fold path: lease
// timestamps decide liveness, never fold results.
package coordinator

import "time"

func heartbeatStamp() int64 {
	return time.Now().UnixMilli()
}
