// Fixture: nondeterminism inside a fold-path package (checked under the
// import path carbonexplorer/internal/sweep) must be flagged.
package sweep

import (
	"math/rand"
	"time"
)

func foldDesigns(m map[string]float64) float64 {
	start := time.Now()      // want `time\.Now in the deterministic fold path`
	jitter := rand.Float64() // want `math/rand\.Float64 draws from the process-global randomness source`
	total := jitter + float64(start.Unix())
	for _, v := range m { // want `range over a map in the deterministic fold path`
		total += v
	}
	return total
}

func seededDraw() int {
	//carbonlint:allow detrand fixture: demonstrates that a reasoned annotation suppresses the finding
	return rand.Intn(7)
}
