// Fixture: the network-transport files (httpclient.go, httpserver.go,
// network.go) are NOT in the coordinator package's wall-clock exemption —
// only lease.go is. Retry pacing with timers and sleeps is fine (it never
// feeds the fold), but seeding retry jitter from the wall clock is exactly
// the nondeterminism the rule exists to catch.
package coordinator

import "time"

func retryDelay(attempt int) time.Duration {
	seed := time.Now().UnixNano() // want `time\.Now in the deterministic fold path`
	return time.Duration(seed%int64(attempt+1)) * time.Millisecond
}

func pace(d time.Duration, stop <-chan struct{}) bool {
	t := time.NewTimer(d) // timers are fine: pacing, not folding
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		time.Sleep(0) // sleeps are fine too
		return false
	}
}
