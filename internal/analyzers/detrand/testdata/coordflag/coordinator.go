// Fixture: outside lease.go, the coordinator package (checked under
// carbonexplorer/internal/coordinator) is on the fold path, so wall-clock
// reads and map-order iteration are flagged.
package coordinator

import "time"

func mergeOrder(progress map[string]int) []string {
	var names []string
	for name := range progress { // want `range over a map in the deterministic fold path`
		names = append(names, name)
	}
	return names
}

func stamp() time.Time {
	return time.Now() // want `time\.Now in the deterministic fold path`
}
