// Fixture: deterministic code in a fold-path package — an explicitly
// seeded generator and slice iteration — must produce no findings.
package sweep

import "math/rand"

func foldDesigns(vals []float64) float64 {
	r := rand.New(rand.NewSource(42))
	total := float64(r.Intn(3))
	for _, v := range vals {
		total += v
	}
	return total
}
