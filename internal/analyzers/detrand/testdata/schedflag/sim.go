// Fixture: the evaluation kernels joined the fold path when the
// allocation-free evaluator made them load-bearing for byte-identity —
// nondeterminism in internal/scheduler must now be flagged.
package scheduler

import "time"

func simulate(deferred map[int]float64) float64 {
	start := time.Now() // want `time\.Now in the deterministic fold path`
	total := float64(start.Unix())
	for _, e := range deferred { // want `range over a map in the deterministic fold path`
		total += e
	}
	return total
}

func profileWindow() time.Duration {
	//carbonlint:allow detrand fixture: demonstrates a reasoned exemption for kernel-side instrumentation
	return time.Since(time.Unix(0, 0))
}
