// Fixture: synth's rng.go — the seeded PRNG implementation itself — is
// file-allowlisted even though the package is on the fold path.
package synth

import (
	"math/rand"
	"time"
)

func reseed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}
