// Fixture: the flat-buffer kernels internal/timeseries contributes to the
// hot path — slice iteration, index-order accumulation — are deterministic
// and must produce no findings now that the package is on the fold path.
package timeseries

func scaleAddInto(dst, src []float64, k float64) float64 {
	sum := 0.0
	for i, v := range src {
		term := v * k
		dst[i] += term
		sum += term
	}
	return sum
}

func zero(buf []float64) {
	for i := range buf {
		buf[i] = 0
	}
}
