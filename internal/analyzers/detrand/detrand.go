// Package detrand forbids nondeterminism in the deterministic fold path.
//
// The sharded-sweep design rests on bit-identical reproducibility: shard
// checkpoints merge to exactly the single-process optimum and frontier, and
// an interrupted run resumes to the uninterrupted result. Those proofs
// assume the fold path — internal/sweep, internal/explorer, internal/synth,
// internal/coordinator, and the evaluation kernels they lean on
// (internal/scheduler, internal/timeseries, internal/battery) — computes
// the same bytes on every run. One stray
// time.Now(), one draw from the process-global math/rand source, or one
// map-iteration-order dependency silently breaks them.
//
// Flagged inside the fold-path packages:
//   - calls (or references) to time.Now, time.Since, time.Until;
//   - package-level math/rand and math/rand/v2 functions, which draw from
//     the unseeded global source (constructing a seeded generator with
//     rand.New/NewSource/NewPCG/NewChaCha8/NewZipf is allowed);
//   - `range` over a map, whose iteration order is randomized by the
//     runtime.
//
// internal/synth's rng.go (the seeded local PRNG), internal/coordinator's
// lease.go (heartbeat timestamps and expiry are wall-clock by design — they
// decide liveness, never fold results), and the whole of
// internal/faultinject (deterministic by construction, outside the fold
// path) are allowlisted.
package detrand

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"carbonexplorer/internal/analyzers/analysis"
)

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock time, global randomness, and map-order dependence in the deterministic fold path",
	Run:  run,
}

// foldPath lists the packages whose results must be bit-reproducible. The
// evaluation kernels (scheduler, timeseries, battery) joined when the
// allocation-free hot path made them load-bearing for the evaluator's
// byte-identity guarantee: a map-range or wall-clock read there would break
// the golden-equivalence pins just as surely as one in the fold itself.
var foldPath = map[string]bool{
	"carbonexplorer/internal/sweep":       true,
	"carbonexplorer/internal/explorer":    true,
	"carbonexplorer/internal/synth":       true,
	"carbonexplorer/internal/coordinator": true,
	"carbonexplorer/internal/scheduler":   true,
	"carbonexplorer/internal/timeseries":  true,
	"carbonexplorer/internal/battery":     true,
}

// allowedFiles exempts the seeded PRNG implementation itself and the lease
// board, whose heartbeat/expiry protocol is wall-clock by design.
var allowedFiles = map[string]map[string]bool{
	"carbonexplorer/internal/synth":       {"rng.go": true},
	"carbonexplorer/internal/coordinator": {"lease.go": true},
}

// timeFuncs are the wall-clock readers.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors build explicitly seeded generators and are allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !foldPath[pass.Pkg.Path()] {
		return nil, nil
	}
	exemptFiles := allowedFiles[pass.Pkg.Path()]
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if exemptFiles[name] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkIdent(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkIdent flags identifiers resolving to forbidden time or math/rand
// package-level functions.
func checkIdent(pass *analysis.Pass, id *ast.Ident) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if timeFuncs[fn.Name()] {
			pass.Reportf(id.Pos(), "time.%s in the deterministic fold path: results must not depend on wall-clock time", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(id.Pos(), "%s.%s draws from the process-global randomness source; use an explicitly seeded generator (e.g. internal/synth rng)", fn.Pkg().Path(), fn.Name())
		}
	}
}

// checkRange flags iteration over a map.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		pass.Reportf(rs.Pos(), "range over a map in the deterministic fold path: iteration order is randomized; iterate a sorted key slice instead")
	}
}
