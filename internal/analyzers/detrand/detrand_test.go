package detrand_test

import (
	"testing"

	"carbonexplorer/internal/analyzers/detrand"
	"carbonexplorer/internal/analyzers/linttest"
)

func TestFoldPathViolationsFlagged(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/flag", "carbonexplorer/internal/sweep")
}

func TestSeededSliceIterationClean(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/clean", "carbonexplorer/internal/sweep")
}

func TestOutsideFoldPathExempt(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/offpath", "carbonexplorer/internal/report")
}

func TestSynthRNGFileExempt(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/rngfile", "carbonexplorer/internal/synth")
}

func TestCoordinatorOnFoldPath(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/coordflag", "carbonexplorer/internal/coordinator")
}

func TestCoordinatorLeaseFileExempt(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/leasefile", "carbonexplorer/internal/coordinator")
}

func TestCoordinatorNetworkFilesOnFoldPath(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/netclient", "carbonexplorer/internal/coordinator")
}

func TestSchedulerKernelOnFoldPath(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/schedflag", "carbonexplorer/internal/scheduler")
}

func TestTimeseriesKernelsClean(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/kernclean", "carbonexplorer/internal/timeseries")
}
