package errwrap_test

import (
	"testing"

	"carbonexplorer/internal/analyzers/errwrap"
	"carbonexplorer/internal/analyzers/linttest"
)

func TestFlattenedAndDiscardedErrorsFlagged(t *testing.T) {
	linttest.Run(t, errwrap.Analyzer, "testdata/flag", "carbonexplorer/internal/loader")
}

func TestWrappedAndSanctionedClean(t *testing.T) {
	linttest.Run(t, errwrap.Analyzer, "testdata/clean", "carbonexplorer/internal/loader")
}
