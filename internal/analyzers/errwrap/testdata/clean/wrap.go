// Fixture: the sanctioned shapes — %w wrapping (including double wraps and
// width arguments), never-failing writers, explicit discards, and deferred
// calls — must produce no findings.
package loader

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

var errSchema = errors.New("schema mismatch")

func wrap(err error) error {
	return fmt.Errorf("%w: decode: %w", errSchema, err)
}

func width(err error) error {
	return fmt.Errorf("%*d designs: %w", 8, 42, err)
}

func notAnError() error {
	return fmt.Errorf("found %v designs", 3)
}

func render(name string, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d\n", name, n)
	return b.String()
}

func announce(msg string) {
	fmt.Println(msg)
	fmt.Fprintln(os.Stderr, msg)
}

func explicitDiscard(path string) {
	_ = os.Remove(path)
}

func deferredClose(f *os.File) error {
	defer f.Close()
	return nil
}
