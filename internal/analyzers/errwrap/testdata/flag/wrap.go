// Fixture: flattened error chains and silently discarded errors must be
// flagged.
package loader

import (
	"errors"
	"fmt"
	"os"
)

var errSchema = errors.New("schema mismatch")

func flatten(err error) error {
	return fmt.Errorf("loading checkpoint: %v", err) // want `fmt\.Errorf formats this error with %v`
}

func flattenTail(err error) error {
	return fmt.Errorf("%w: decode: %s", errSchema, err) // want `fmt\.Errorf formats this error with %s`
}

func discard(path string) {
	os.Remove(path) // want `the error returned by os\.Remove is silently discarded`
}
