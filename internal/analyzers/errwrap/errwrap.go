// Package errwrap keeps error chains intact.
//
// The resume and merge paths dispatch on sentinel errors —
// errors.Is(err, ErrCheckpointMismatch), fs.ErrNotExist — so an error that
// is stringified instead of wrapped breaks real control flow, not just log
// cosmetics: a flattened inner error is invisible to errors.Is/As forever
// after. Likewise a call whose error result is dropped on the floor turns a
// detectable failure into silent corruption.
//
// Flagged:
//   - fmt.Errorf with an error-typed argument formatted by %v, %s, or %q
//     instead of %w;
//   - a call statement whose callee returns an error that is neither
//     handled nor explicitly assigned to _ (defer statements and the
//     conventional never-failing writers — fmt.Print*, fmt.Fprint* to
//     os.Stdout/os.Stderr, strings.Builder, bytes.Buffer — are exempt).
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"carbonexplorer/internal/analyzers/analysis"
)

// Analyzer is the errwrap check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "wrap errors with %w and forbid silently discarded error returns",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call)
				}
			}
			return true
		})
	}
	return nil, nil
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether a value of type t satisfies error.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

// calleeFunc resolves the statically-known called function or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// checkErrorf flags fmt.Errorf arguments that stringify an error.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%[") {
		return // explicit argument indexes: out of scope
	}
	for k, verb := range verbs(format) {
		argIdx := 1 + k
		if argIdx >= len(call.Args) {
			break
		}
		if verb != 'v' && verb != 's' && verb != 'q' {
			continue
		}
		if implementsError(pass.TypesInfo.TypeOf(call.Args[argIdx])) {
			pass.Reportf(call.Args[argIdx].Pos(), "fmt.Errorf formats this error with %%%c, flattening it: errors.Is/As can no longer see it; wrap with %%w", verb)
		}
	}
}

// verbs returns, in argument order, the verb consuming each fmt argument
// ('*' for a width/precision argument).
func verbs(format string) []byte {
	var out []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.IndexByte("+-# 0123456789.*", format[i]) >= 0 {
			if format[i] == '*' {
				out = append(out, '*')
			}
			i++
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		out = append(out, format[i])
	}
	return out
}

// checkDiscard flags a call statement that throws away an error result.
func checkDiscard(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	returnsError := false
	for i := 0; i < sig.Results().Len(); i++ {
		if implementsError(sig.Results().At(i).Type()) {
			returnsError = true
		}
	}
	if !returnsError || exemptDiscard(pass, fn, sig, call) {
		return
	}
	pass.Reportf(call.Pos(), "the error returned by %s is silently discarded; handle it or assign it to _ explicitly", fn.FullName())
}

// neverFailingWriters are concrete types whose Write* methods are
// documented never to return an error.
var neverFailingWriters = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

// exemptDiscard recognizes the conventional never-failing calls.
func exemptDiscard(pass *analysis.Pass, fn *types.Func, sig *types.Signature, call *ast.CallExpr) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		}
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			return isStdStream(pass, call.Args[0]) || isNeverFailingWriter(pass, call.Args[0])
		}
	}
	if recv := sig.Recv(); recv != nil {
		return namedNeverFailing(recv.Type())
	}
	return false
}

// isNeverFailingWriter reports whether the expression's static type is one
// of the never-failing writers (or a pointer to one).
func isNeverFailingWriter(pass *analysis.Pass, e ast.Expr) bool {
	return namedNeverFailing(pass.TypesInfo.TypeOf(e))
}

// namedNeverFailing reports whether t (possibly behind a pointer) is a
// named type listed in neverFailingWriters.
func namedNeverFailing(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && neverFailingWriters[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// isStdStream reports whether the expression is os.Stdout or os.Stderr.
func isStdStream(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Pkg().Path() == "os" && (v.Name() == "Stdout" || v.Name() == "Stderr")
}
