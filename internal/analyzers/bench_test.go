package analyzers_test

import (
	"fmt"
	"runtime"
	"testing"

	"carbonexplorer/internal/analyzers"
	"carbonexplorer/internal/analyzers/load"
)

// BenchmarkCarbonlintRepo measures the full carbonlint pipeline — package
// listing, export-data type-checking, and all ten analyzers — over this
// repository, end to end as the CLI runs it. The jobs=1 case is the
// sequential driver; the others are the parallel one, whose output is
// pinned byte-identical by TestParallelLintMatchesSequential. The parallel
// speedup is bounded by real cores — on a single-core machine expect
// parity (the fan-out phase is pure CPU), not a win; the jobs=4 case then
// measures that the worker pool adds no overhead. Committed numbers live
// in BENCH_lint.json (cited from docs/LINTING.md).
func BenchmarkCarbonlintRepo(b *testing.B) {
	root, err := load.ModuleRoot()
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, jobs := range counts {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pkgs, err := load.PatternsJobs(root, jobs, "./...")
				if err != nil {
					b.Fatal(err)
				}
				findings, err := analyzers.LintParallel(pkgs, analyzers.All(), jobs)
				if err != nil {
					b.Fatal(err)
				}
				if len(findings) != 0 {
					b.Fatalf("repo must lint clean; got %d findings", len(findings))
				}
			}
		})
	}
}
