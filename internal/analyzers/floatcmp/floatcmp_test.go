package floatcmp_test

import (
	"testing"

	"carbonexplorer/internal/analyzers/floatcmp"
	"carbonexplorer/internal/analyzers/linttest"
)

func TestExactComparisonsFlagged(t *testing.T) {
	linttest.Run(t, floatcmp.Analyzer, "testdata/flag", "carbonexplorer/internal/metrics")
}

func TestSanctionedComparisonsClean(t *testing.T) {
	linttest.Run(t, floatcmp.Analyzer, "testdata/clean", "carbonexplorer/internal/metrics")
}
