// Fixture: constant sentinels, tolerance comparisons, integer equality,
// and an annotated tie-break are the sanctioned shapes.
package metrics

import "math"

func sentinel(x float64) bool { return x == 0 }

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func sameInt(a, b int) bool { return a == b }

func tieBreak(a, b float64) bool {
	if a != b { //carbonlint:allow floatcmp fixture: exact-bits tie-break like the Pareto sort
		return a < b
	}
	return false
}
