// Fixture: constant sentinels, tolerance comparisons, integer equality,
// and an annotated tie-break are the sanctioned shapes.
package metrics

import "math"

func sentinel(x float64) bool { return x == 0 }

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func sameInt(a, b int) bool { return a == b }

func tieBreak(a, b float64) bool {
	if a != b { //carbonlint:allow floatcmp fixture: exact-bits tie-break like the Pareto sort
		return a < b
	}
	return false
}

// memoHit mirrors the evaluator's supply memo: the key is an enumerated
// grid value that repeats with identical bits, so exact equality is the
// point — a near-miss must rebuild.
func memoHit(key, memo float64) bool {
	return key == memo //carbonlint:allow floatcmp fixture: memo key wants exact bits like the evaluator's supply cache
}

// drained mirrors the scratch ledger's full-drain test: take is either e
// itself or a clamped copy of another value, so the bits are copied, never
// recomputed.
func drained(take, e float64) bool {
	return take == e //carbonlint:allow floatcmp fixture: operands are copied bits like the deferred-ledger drain
}
