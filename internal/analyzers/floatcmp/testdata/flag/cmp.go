// Fixture: exact float comparisons without an annotation must be flagged,
// and a stale annotation must itself be reported.
package metrics

func sameTotal(a, b float64) bool {
	return a == b // want `== on floating-point values compares exact bits`
}

func changed(a, b float32) bool {
	return a != b // want `!= on floating-point values compares exact bits`
}

func stale(a, b int) bool {
	//carbonlint:allow floatcmp deliberately stale: nothing below compares floats // want "unused //carbonlint:allow directive"
	return a == b
}
