// Package floatcmp flags exact equality comparison of floating-point
// values.
//
// The optimum and Pareto tie-breaks are deliberately exact-bits comparisons
// — that exactness is what makes shard merges reproduce the single-process
// result — but an *accidental* float == elsewhere is almost always a bug:
// two mathematically equal values that took different round-off paths
// compare unequal, and a tie-break that was supposed to fire silently
// doesn't. The rule forces every float ==/!= to be either rewritten or
// visibly annotated as an intentional tie-break.
//
// Flagged: == and != where an operand is floating-point (or complex) and
// neither operand is a compile-time constant. Comparisons against constants
// (x == 0, the conventional "feature absent" sentinel) are exempt: the
// constant's bits are exact, and the codebase uses them as presence flags,
// not as results of arithmetic.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"carbonexplorer/internal/analyzers/analysis"
)

// Analyzer is the floatcmp check.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= on floating-point operands outside annotated tie-break sites",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo.TypeOf(be.X)) && !isFloat(pass.TypesInfo.TypeOf(be.Y)) {
				return true
			}
			if isConstant(pass, be.X) || isConstant(pass, be.Y) {
				return true
			}
			pass.Reportf(be.Pos(), "%s on floating-point values compares exact bits; use a tolerance, or annotate the intentional tie-break", be.Op)
			return true
		})
	}
	return nil, nil
}

// isFloat reports whether t is a floating-point or complex type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isConstant reports whether the expression has a compile-time value.
func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
