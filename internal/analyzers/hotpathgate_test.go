package analyzers_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"carbonexplorer/internal/analyzers/directive"
	"carbonexplorer/internal/analyzers/load"
)

// TestHotpathMarkersNameZeroAllocGatedSymbols pins the correspondence
// between the two halves of the zero-allocation contract. The runtime
// gates (TestEvaluateSteadyStateZeroAllocs in internal/explorer,
// TestOptimumZeroAllocs in internal/serve) measure that specific call
// trees allocate nothing in the steady state; the //carbonlint:hotpath
// markers make hotalloc reject allocating constructs in those same
// functions statically, on every carbonlint run rather than only when the
// right test executes. This census is exact per package: annotating a new
// function (or dropping a marker) in one of these packages must update it,
// so the static and runtime gates cannot silently drift apart.
func TestHotpathMarkersNameZeroAllocGatedSymbols(t *testing.T) {
	root, err := load.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}

	// Each entry lists every function on the corresponding runtime gate's
	// steady-state call path. Evaluate's tree descends through the
	// scheduler's scratch simulation and the timeseries kernels; Optimum's
	// through the frontier comparison and binary-search helpers.
	hotpath := map[string][]string{
		"internal/explorer":   {"CellModel.Bounds", "Evaluator.Evaluate", "Evaluator.ensureSupply", "Reachable", "sumFloats"},
		"internal/scheduler":  {"Scratch.pullDeferred", "SimulateScratch"},
		"internal/serve":      {"Snapshot.FrontierBounds", "Snapshot.Optimum", "betterPoint", "countGEDesc", "countLE", "countLT"},
		"internal/timeseries": {"Series.ScaleAddInto", "Zero"},
	}
	// The serve read path's no-locks guarantee rests on these types never
	// being written after Load; pubfreeze enforces that outside index.go.
	immutable := map[string][]string{
		"internal/serve": {"Index", "Snapshot"},
	}

	for dir, want := range hotpath {
		m := scanDirMarkers(t, filepath.Join(root, dir))
		var got []string
		for fn := range m.Hotpath {
			got = append(got, funcName(fn))
		}
		sort.Strings(got)
		if !equalStrings(got, want) {
			t.Errorf("%s: //carbonlint:hotpath census = %v, want %v (update the marker or this census together)", dir, got, want)
		}
	}
	for dir, want := range immutable {
		m := scanDirMarkers(t, filepath.Join(root, dir))
		var got []string
		for id := range m.Immutable {
			got = append(got, id.Name)
		}
		sort.Strings(got)
		if !equalStrings(got, want) {
			t.Errorf("%s: //carbonlint:immutable census = %v, want %v", dir, got, want)
		}
	}
}

// scanDirMarkers parses a package directory's non-test sources and scans
// their carbonlint markers, failing the test on malformed ones (selflint
// would also catch those, but a local failure points at the right file).
func scanDirMarkers(t *testing.T, dir string) directive.Markers {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	m := directive.ScanMarkers(files)
	for _, d := range append(m.HotpathDiags, m.ImmutableDiags...) {
		t.Errorf("%s: malformed marker: %s", fset.Position(d.Pos), d.Message)
	}
	return m
}

// funcName renders a declaration as Receiver.Name (or Name for plain
// functions), matching how the census above spells symbols.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	typ := fn.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return fmt.Sprintf("%s.%s", id.Name, fn.Name.Name)
	}
	return fn.Name.Name
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
