// Package analyzers assembles the carbonlint suite: six project-specific
// static checks that machine-enforce the determinism, cancellation, and
// checkpoint invariants the sweep/explorer stack promises (see
// docs/LINTING.md for the invariant each rule protects and the change that
// introduced it).
//
// The suite runs over type-checked packages from internal/analyzers/load,
// applies //carbonlint:allow suppressions (internal/analyzers/directive),
// and returns position-sorted findings. cmd/carbonlint is the CLI front
// end; TestRepoLintsClean keeps `go test ./...` itself a lint gate.
package analyzers
