package directive

// Declaration markers: //carbonlint:hotpath on functions and
// //carbonlint:immutable on types. Unlike allow suppressions, markers carry
// no arguments and must sit in the doc comment of the declaration they
// annotate — a marker floating in a function body, attached to the wrong
// declaration kind, or trailing extra words is malformed. Malformed-marker
// diagnostics are reported by the analyzer that owns the verb (hotalloc for
// hotpath, pubfreeze for immutable), so they surface even when the suite is
// run one analyzer at a time.

import (
	"go/ast"
	"strings"

	"carbonexplorer/internal/analyzers/analysis"
)

// Markers is the marker census of one package's files.
type Markers struct {
	// Hotpath holds every function declaration whose doc comment carries a
	// well-formed //carbonlint:hotpath marker.
	Hotpath map[*ast.FuncDecl]bool
	// Immutable holds the TypeSpec name of every type whose doc comment
	// carries a well-formed //carbonlint:immutable marker.
	Immutable map[*ast.Ident]bool
	// HotpathDiags and ImmutableDiags report malformed markers of each verb
	// (trailing arguments, wrong declaration kind, or a stray comment not
	// attached to any declaration's doc).
	HotpathDiags   []analysis.Diagnostic
	ImmutableDiags []analysis.Diagnostic
}

// ScanMarkers extracts and validates every declaration marker in files.
func ScanMarkers(files []*ast.File) Markers {
	m := Markers{
		Hotpath:   map[*ast.FuncDecl]bool{},
		Immutable: map[*ast.Ident]bool{},
	}
	for _, f := range files {
		claimed := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				m.claimFuncMarkers(d, claimed)
			case *ast.GenDecl:
				m.claimTypeMarkers(d, claimed)
			}
		}
		// Anything left is a stray: a marker outside any declaration's doc
		// comment, where the analyzer would silently never see it.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, _, ok := markerText(c)
				if !ok || claimed[c] {
					continue
				}
				m.report(verb, analysis.Diagnostic{
					Pos: c.Pos(),
					Message: "//carbonlint:" + verb + " must be in the doc comment of a " +
						markerTarget(verb) + " declaration; here it annotates nothing",
				})
			}
		}
	}
	return m
}

// claimFuncMarkers consumes markers in a function's doc comment.
func (m *Markers) claimFuncMarkers(fd *ast.FuncDecl, claimed map[*ast.Comment]bool) {
	for _, c := range commentsOf(fd.Doc) {
		verb, args, ok := markerText(c)
		if !ok {
			continue
		}
		claimed[c] = true
		switch {
		case verb != HotpathVerb:
			m.report(verb, analysis.Diagnostic{
				Pos:     c.Pos(),
				Message: "//carbonlint:" + verb + " annotates a function, but it applies to " + markerTarget(verb) + " declarations",
			})
		case args != "":
			m.report(verb, analysis.Diagnostic{
				Pos:     c.Pos(),
				Message: "//carbonlint:hotpath takes no arguments; found " + quote(args),
			})
		default:
			m.Hotpath[fd] = true
		}
	}
}

// claimTypeMarkers consumes markers in a type declaration's doc comments —
// the GenDecl's own doc (attached to its sole spec) and each TypeSpec's doc
// or trailing comment.
func (m *Markers) claimTypeMarkers(gd *ast.GenDecl, claimed map[*ast.Comment]bool) {
	specs := make([]*ast.TypeSpec, 0, len(gd.Specs))
	for _, s := range gd.Specs {
		if ts, ok := s.(*ast.TypeSpec); ok {
			specs = append(specs, ts)
		}
	}
	claim := func(c *ast.Comment, ts *ast.TypeSpec) {
		verb, args, ok := markerText(c)
		if !ok {
			return
		}
		claimed[c] = true
		switch {
		case len(specs) == 0:
			m.report(verb, analysis.Diagnostic{
				Pos:     c.Pos(),
				Message: "//carbonlint:" + verb + " annotates a non-type declaration, but it applies to " + markerTarget(verb) + " declarations",
			})
		case verb != ImmutableVerb:
			m.report(verb, analysis.Diagnostic{
				Pos:     c.Pos(),
				Message: "//carbonlint:" + verb + " annotates a type, but it applies to " + markerTarget(verb) + " declarations",
			})
		case args != "":
			m.report(verb, analysis.Diagnostic{
				Pos:     c.Pos(),
				Message: "//carbonlint:immutable takes no arguments; found " + quote(args),
			})
		case ts == nil:
			m.report(verb, analysis.Diagnostic{
				Pos:     c.Pos(),
				Message: "//carbonlint:immutable on a grouped type declaration is ambiguous; move it to one type's own doc comment",
			})
		default:
			m.Immutable[ts.Name] = true
		}
	}
	var genTarget *ast.TypeSpec
	if len(specs) == 1 {
		genTarget = specs[0]
	}
	for _, c := range commentsOf(gd.Doc) {
		claim(c, genTarget)
	}
	for _, ts := range specs {
		for _, c := range commentsOf(ts.Doc) {
			claim(c, ts)
		}
		for _, c := range commentsOf(ts.Comment) {
			claim(c, ts)
		}
	}
}

// report files a diagnostic under the verb that owns it.
func (m *Markers) report(verb string, d analysis.Diagnostic) {
	if verb == ImmutableVerb {
		m.ImmutableDiags = append(m.ImmutableDiags, d)
		return
	}
	// Unknown-but-marker-shaped verbs never reach here (markerText filters),
	// so everything else is hotpath.
	m.HotpathDiags = append(m.HotpathDiags, d)
}

// markerText parses one comment as a marker directive, reporting ok only
// for the marker verbs (allow and unknown verbs belong to Scan).
func markerText(c *ast.Comment) (verb, args string, ok bool) {
	if !strings.HasPrefix(c.Text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(c.Text, prefix)
	verb, args, _ = strings.Cut(rest, " ")
	if !markerVerbs[verb] {
		return "", "", false
	}
	return verb, strings.TrimSpace(args), true
}

// markerTarget names the declaration kind a marker verb applies to.
func markerTarget(verb string) string {
	if verb == ImmutableVerb {
		return "type"
	}
	return "function"
}

// commentsOf returns a comment group's comments, tolerating nil.
func commentsOf(cg *ast.CommentGroup) []*ast.Comment {
	if cg == nil {
		return nil
	}
	return cg.List
}
