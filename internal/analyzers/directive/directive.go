// Package directive implements the //carbonlint: comment grammar shared by
// every analyzer in the carbonlint suite. Two kinds of directive exist:
//
// Suppressions silence one finding with a written justification:
//
//	//carbonlint:allow <analyzer> <reason>
//
// placed on the offending line or the line immediately above it. The reason
// is mandatory — an allow without a written justification is itself a
// diagnostic — and a directive that suppresses nothing is reported as
// unused, so stale annotations cannot silently weaken the rules.
//
// Markers annotate declarations with an invariant for an analyzer to
// enforce, and take no arguments:
//
//	//carbonlint:hotpath    (in a function's doc comment: hotalloc rejects
//	                         heap-allocating constructs in its body)
//	//carbonlint:immutable  (in a type's doc comment: pubfreeze rejects
//	                         field/element writes outside the declaring file)
//
// A marker anywhere other than the doc comment of the declaration kind it
// applies to — or one carrying trailing arguments — is malformed, reported
// by the analyzer that owns the verb (see ScanMarkers).
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"carbonexplorer/internal/analyzers/analysis"
)

// prefix is the comment prefix shared by all carbonlint directives.
const prefix = "//carbonlint:"

// allowVerb is the suppression verb.
const allowVerb = "allow"

// Marker verbs annotate declarations instead of suppressing findings.
const (
	// HotpathVerb marks a function whose body the hotalloc analyzer holds
	// allocation-free.
	HotpathVerb = "hotpath"
	// ImmutableVerb marks a type whose fields the pubfreeze analyzer
	// freezes outside the declaring file.
	ImmutableVerb = "immutable"
)

// markerVerbs is the set of declaration-marker verbs; Scan leaves these to
// ScanMarkers instead of reporting them as unknown.
var markerVerbs = map[string]bool{HotpathVerb: true, ImmutableVerb: true}

// Directive is one well-formed //carbonlint:allow comment.
type Directive struct {
	// Analyzer is the suppressed analyzer's name.
	Analyzer string
	// Reason is the mandatory free-text justification.
	Reason string
	// File and Line locate the directive comment.
	File string
	Line int
	// Pos is the comment's position, for unused-directive diagnostics.
	Pos token.Pos
	// Used records whether the directive suppressed at least one
	// diagnostic.
	Used bool
}

// Scan extracts every carbonlint directive from files. Malformed directives
// — an unknown verb, a missing analyzer name or reason, or a name not in
// known — are returned as diagnostics; these are never suppressible.
func Scan(fset *token.FileSet, files []*ast.File, known []string) ([]*Directive, []analysis.Diagnostic) {
	isKnown := make(map[string]bool, len(known))
	for _, n := range known {
		isKnown[n] = true
	}
	var dirs []*Directive
	var diags []analysis.Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				verb, args, _ := strings.Cut(rest, " ")
				if markerVerbs[verb] {
					// Declaration markers have their own grammar and owner;
					// ScanMarkers validates them.
					continue
				}
				if verb != allowVerb {
					diags = append(diags, analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: "unknown carbonlint directive //carbonlint:" + verb + " (defined: \"allow\", \"hotpath\", \"immutable\")",
					})
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" {
					diags = append(diags, analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed //carbonlint:allow directive: want \"//carbonlint:allow <analyzer> <reason>\" — the reason is mandatory",
					})
					continue
				}
				if !isKnown[name] {
					diags = append(diags, analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: "//carbonlint:allow names unknown analyzer " + quote(name),
					})
					continue
				}
				pos := fset.Position(c.Pos())
				dirs = append(dirs, &Directive{
					Analyzer: name,
					Reason:   reason,
					File:     pos.Filename,
					Line:     pos.Line,
					Pos:      c.Pos(),
				})
			}
		}
	}
	return dirs, diags
}

// quote quotes a name for a diagnostic without importing fmt.
func quote(s string) string { return "\"" + s + "\"" }

// Suppress returns the diagnostics of the named analyzer that are NOT
// covered by a directive: a diagnostic is suppressed when a directive for
// that analyzer sits in the same file on the same line, or on the line
// immediately above (an attached comment). Consumed directives are marked
// Used.
func Suppress(fset *token.FileSet, dirs []*Directive, name string, diags []analysis.Diagnostic) []analysis.Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range dirs {
			if dir.Analyzer != name || dir.File != pos.Filename {
				continue
			}
			if dir.Line == pos.Line || dir.Line == pos.Line-1 {
				dir.Used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// Unused reports every directive that suppressed nothing — stale or
// misplaced annotations that would otherwise rot silently.
func Unused(dirs []*Directive) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, dir := range dirs {
		if !dir.Used {
			diags = append(diags, analysis.Diagnostic{
				Pos:     dir.Pos,
				Message: "unused //carbonlint:allow directive for " + quote(dir.Analyzer) + " — nothing on this or the next line triggers it",
			})
		}
	}
	return diags
}
