// Package directive implements the //carbonlint:allow suppression
// directive shared by every analyzer in the carbonlint suite.
//
// Syntax:
//
//	//carbonlint:allow <analyzer> <reason>
//
// placed on the offending line or the line immediately above it. The reason
// is mandatory — an allow without a written justification is itself a
// diagnostic — and a directive that suppresses nothing is reported as
// unused, so stale annotations cannot silently weaken the rules.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"carbonexplorer/internal/analyzers/analysis"
)

// prefix is the comment prefix shared by all carbonlint directives.
const prefix = "//carbonlint:"

// allowVerb is the only directive verb currently defined.
const allowVerb = "allow"

// Directive is one well-formed //carbonlint:allow comment.
type Directive struct {
	// Analyzer is the suppressed analyzer's name.
	Analyzer string
	// Reason is the mandatory free-text justification.
	Reason string
	// File and Line locate the directive comment.
	File string
	Line int
	// Pos is the comment's position, for unused-directive diagnostics.
	Pos token.Pos
	// Used records whether the directive suppressed at least one
	// diagnostic.
	Used bool
}

// Scan extracts every carbonlint directive from files. Malformed directives
// — an unknown verb, a missing analyzer name or reason, or a name not in
// known — are returned as diagnostics; these are never suppressible.
func Scan(fset *token.FileSet, files []*ast.File, known []string) ([]*Directive, []analysis.Diagnostic) {
	isKnown := make(map[string]bool, len(known))
	for _, n := range known {
		isKnown[n] = true
	}
	var dirs []*Directive
	var diags []analysis.Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				verb, args, _ := strings.Cut(rest, " ")
				if verb != allowVerb {
					diags = append(diags, analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: "unknown carbonlint directive //carbonlint:" + verb + " (only \"allow\" is defined)",
					})
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" {
					diags = append(diags, analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed //carbonlint:allow directive: want \"//carbonlint:allow <analyzer> <reason>\" — the reason is mandatory",
					})
					continue
				}
				if !isKnown[name] {
					diags = append(diags, analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: "//carbonlint:allow names unknown analyzer " + quote(name),
					})
					continue
				}
				pos := fset.Position(c.Pos())
				dirs = append(dirs, &Directive{
					Analyzer: name,
					Reason:   reason,
					File:     pos.Filename,
					Line:     pos.Line,
					Pos:      c.Pos(),
				})
			}
		}
	}
	return dirs, diags
}

// quote quotes a name for a diagnostic without importing fmt.
func quote(s string) string { return "\"" + s + "\"" }

// Suppress returns the diagnostics of the named analyzer that are NOT
// covered by a directive: a diagnostic is suppressed when a directive for
// that analyzer sits in the same file on the same line, or on the line
// immediately above (an attached comment). Consumed directives are marked
// Used.
func Suppress(fset *token.FileSet, dirs []*Directive, name string, diags []analysis.Diagnostic) []analysis.Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range dirs {
			if dir.Analyzer != name || dir.File != pos.Filename {
				continue
			}
			if dir.Line == pos.Line || dir.Line == pos.Line-1 {
				dir.Used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// Unused reports every directive that suppressed nothing — stale or
// misplaced annotations that would otherwise rot silently.
func Unused(dirs []*Directive) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, dir := range dirs {
		if !dir.Used {
			diags = append(diags, analysis.Diagnostic{
				Pos:     dir.Pos,
				Message: "unused //carbonlint:allow directive for " + quote(dir.Analyzer) + " — nothing on this or the next line triggers it",
			})
		}
	}
	return diags
}
