package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"carbonexplorer/internal/analyzers/analysis"
	"carbonexplorer/internal/analyzers/directive"
)

// scan parses src and runs directive.Scan with "detrand" as the only known
// analyzer.
func scan(t *testing.T, src string) ([]*directive.Directive, []analysis.Diagnostic, *token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dirs, diags := directive.Scan(fset, []*ast.File{f}, []string{"detrand"})
	return dirs, diags, fset, f
}

func TestAllowWithoutReasonIsDiagnostic(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//carbonlint:allow detrand\nvar X int\n",
		"package p\n\n//carbonlint:allow detrand   \nvar X int\n",
		"package p\n\n//carbonlint:allow\nvar X int\n",
	} {
		dirs, diags, _, _ := scan(t, src)
		if len(dirs) != 0 {
			t.Errorf("%q: got %d directives, want 0", src, len(dirs))
		}
		if len(diags) != 1 || !strings.Contains(diags[0].Message, "the reason is mandatory") {
			t.Errorf("%q: got %v, want one reason-is-mandatory diagnostic", src, diags)
		}
	}
}

func TestUnknownAnalyzerIsDiagnostic(t *testing.T) {
	dirs, diags, _, _ := scan(t, "package p\n\n//carbonlint:allow nosuch because reasons\nvar X int\n")
	if len(dirs) != 0 {
		t.Fatalf("got %d directives, want 0", len(dirs))
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `unknown analyzer "nosuch"`) {
		t.Fatalf("got %v, want one unknown-analyzer diagnostic", diags)
	}
}

func TestUnknownVerbIsDiagnostic(t *testing.T) {
	dirs, diags, _, _ := scan(t, "package p\n\n//carbonlint:forbid detrand x\nvar X int\n")
	if len(dirs) != 0 {
		t.Fatalf("got %d directives, want 0", len(dirs))
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown carbonlint directive") {
		t.Fatalf("got %v, want one unknown-verb diagnostic", diags)
	}
}

const wellFormed = "package p\n\n//carbonlint:allow detrand seeded by design\nvar X int\nvar Y int\n"

func TestWellFormedDirective(t *testing.T) {
	dirs, diags, _, _ := scan(t, wellFormed)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if len(dirs) != 1 {
		t.Fatalf("got %d directives, want 1", len(dirs))
	}
	d := dirs[0]
	if d.Analyzer != "detrand" || d.Reason != "seeded by design" || d.Line != 3 || d.Used {
		t.Fatalf("unexpected directive: %+v", d)
	}
}

// lineDiag fabricates a diagnostic at the start of the given line.
func lineDiag(fset *token.FileSet, f *ast.File, line int) analysis.Diagnostic {
	return analysis.Diagnostic{Pos: fset.File(f.Pos()).LineStart(line), Message: "m"}
}

func TestSuppressSameAndNextLine(t *testing.T) {
	dirs, _, fset, f := scan(t, wellFormed)
	diags := []analysis.Diagnostic{
		lineDiag(fset, f, 3), // same line as the directive
		lineDiag(fset, f, 4), // line below: attached-comment form
		lineDiag(fset, f, 5), // out of reach
	}
	kept := directive.Suppress(fset, dirs, "detrand", diags)
	if len(kept) != 1 || fset.Position(kept[0].Pos).Line != 5 {
		t.Fatalf("kept %v, want only the line-5 diagnostic", kept)
	}
	if !dirs[0].Used {
		t.Fatal("directive not marked used")
	}
	if u := directive.Unused(dirs); len(u) != 0 {
		t.Fatalf("unexpected unused-directive diagnostics: %v", u)
	}
}

func TestSuppressOnlyNamedAnalyzer(t *testing.T) {
	dirs, _, fset, f := scan(t, wellFormed)
	kept := directive.Suppress(fset, dirs, "floatcmp", []analysis.Diagnostic{lineDiag(fset, f, 4)})
	if len(kept) != 1 {
		t.Fatalf("a detrand directive suppressed a floatcmp diagnostic: kept %v", kept)
	}
	if dirs[0].Used {
		t.Fatal("directive wrongly marked used")
	}
}

func TestUnusedDirectiveReported(t *testing.T) {
	dirs, _, _, _ := scan(t, wellFormed)
	u := directive.Unused(dirs)
	if len(u) != 1 || !strings.Contains(u[0].Message, "unused //carbonlint:allow") {
		t.Fatalf("got %v, want one unused-directive diagnostic", u)
	}
}
