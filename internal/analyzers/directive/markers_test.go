package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"carbonexplorer/internal/analyzers/directive"
)

// scanMarkers parses src and runs directive.ScanMarkers on it.
func scanMarkers(t *testing.T, src string) directive.Markers {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return directive.ScanMarkers([]*ast.File{f})
}

func TestHotpathMarkerOnFunction(t *testing.T) {
	m := scanMarkers(t, `package p

// Sum adds.
//carbonlint:hotpath
func Sum(a, b int) int { return a + b }

func Cold() {}
`)
	if len(m.HotpathDiags) != 0 || len(m.ImmutableDiags) != 0 {
		t.Fatalf("unexpected diagnostics: %v %v", m.HotpathDiags, m.ImmutableDiags)
	}
	if len(m.Hotpath) != 1 {
		t.Fatalf("got %d hotpath functions, want 1", len(m.Hotpath))
	}
	for fd := range m.Hotpath {
		if fd.Name.Name != "Sum" {
			t.Fatalf("annotated %s, want Sum", fd.Name.Name)
		}
	}
}

func TestImmutableMarkerOnType(t *testing.T) {
	for _, src := range []string{
		// Marker in the type's doc comment.
		"package p\n\n// T is frozen.\n//carbonlint:immutable\ntype T struct{ X int }\n",
		// Marker in a grouped declaration's per-spec doc.
		"package p\n\ntype (\n\t//carbonlint:immutable\n\tT struct{ X int }\n\tU struct{}\n)\n",
	} {
		m := scanMarkers(t, src)
		if len(m.ImmutableDiags) != 0 {
			t.Errorf("%q: unexpected diagnostics: %v", src, m.ImmutableDiags)
			continue
		}
		if len(m.Immutable) != 1 {
			t.Errorf("%q: got %d immutable types, want 1", src, len(m.Immutable))
			continue
		}
		for id := range m.Immutable {
			if id.Name != "T" {
				t.Errorf("%q: annotated %s, want T", src, id.Name)
			}
		}
	}
}

func TestMarkerWithArgumentsIsDiagnostic(t *testing.T) {
	m := scanMarkers(t, `package p

//carbonlint:hotpath because fast
func F() {}

//carbonlint:immutable really
type T struct{}
`)
	if len(m.Hotpath) != 0 || len(m.Immutable) != 0 {
		t.Fatalf("malformed markers were accepted: %v %v", m.Hotpath, m.Immutable)
	}
	if len(m.HotpathDiags) != 1 || !strings.Contains(m.HotpathDiags[0].Message, "takes no arguments") {
		t.Fatalf("hotpath diags = %v, want one takes-no-arguments diagnostic", m.HotpathDiags)
	}
	if len(m.ImmutableDiags) != 1 || !strings.Contains(m.ImmutableDiags[0].Message, "takes no arguments") {
		t.Fatalf("immutable diags = %v, want one takes-no-arguments diagnostic", m.ImmutableDiags)
	}
}

func TestMarkerOnWrongDeclarationKind(t *testing.T) {
	m := scanMarkers(t, `package p

//carbonlint:immutable
func F() {}

//carbonlint:hotpath
type T struct{}
`)
	if len(m.Hotpath) != 0 || len(m.Immutable) != 0 {
		t.Fatalf("misattached markers were accepted: %v %v", m.Hotpath, m.Immutable)
	}
	if len(m.ImmutableDiags) != 1 || !strings.Contains(m.ImmutableDiags[0].Message, "applies to type declarations") {
		t.Fatalf("immutable diags = %v, want one wrong-kind diagnostic", m.ImmutableDiags)
	}
	if len(m.HotpathDiags) != 1 || !strings.Contains(m.HotpathDiags[0].Message, "applies to function declarations") {
		t.Fatalf("hotpath diags = %v, want one wrong-kind diagnostic", m.HotpathDiags)
	}
}

func TestStrayMarkerIsDiagnostic(t *testing.T) {
	m := scanMarkers(t, `package p

func F() {
	//carbonlint:hotpath
	_ = 1
}

//carbonlint:immutable
var V int
`)
	if len(m.HotpathDiags) != 1 || !strings.Contains(m.HotpathDiags[0].Message, "annotates nothing") {
		t.Fatalf("hotpath diags = %v, want one stray diagnostic", m.HotpathDiags)
	}
	if len(m.ImmutableDiags) != 1 || !strings.Contains(m.ImmutableDiags[0].Message, "non-type declaration") {
		t.Fatalf("immutable diags = %v, want one wrong-declaration diagnostic", m.ImmutableDiags)
	}
}

func TestGroupedImmutableFromGenDeclDocIsAmbiguous(t *testing.T) {
	m := scanMarkers(t, `package p

//carbonlint:immutable
type (
	T struct{}
	U struct{}
)
`)
	if len(m.Immutable) != 0 {
		t.Fatalf("ambiguous marker was accepted: %v", m.Immutable)
	}
	if len(m.ImmutableDiags) != 1 || !strings.Contains(m.ImmutableDiags[0].Message, "ambiguous") {
		t.Fatalf("immutable diags = %v, want one ambiguity diagnostic", m.ImmutableDiags)
	}
}

// TestScanIgnoresMarkers pins the split between the two grammars: Scan
// handles allow suppressions and unknown verbs, markers belong to
// ScanMarkers, and neither reports the other's directives.
func TestScanIgnoresMarkers(t *testing.T) {
	src := `package p

//carbonlint:hotpath
func F() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dirs, diags := directive.Scan(fset, []*ast.File{f}, []string{"hotalloc"})
	if len(dirs) != 0 || len(diags) != 0 {
		t.Fatalf("Scan reported marker directives: dirs=%v diags=%v", dirs, diags)
	}
}
