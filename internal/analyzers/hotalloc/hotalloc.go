// Package hotalloc keeps //carbonlint:hotpath functions allocation-free.
//
// The evaluation hot path — explorer.Evaluator.Evaluate, the scheduler's
// SimulateScratch, the serve query path — earns its throughput (see
// BENCH_sweep.json and docs/PERFORMANCE.md) by allocating nothing in the
// steady state. The runtime gates (TestEvaluateSteadyStateZeroAllocs,
// TestOptimumZeroAllocs) catch a regression when the right test runs;
// this analyzer catches it at lint time, in any function whose doc comment
// carries the //carbonlint:hotpath marker, by rejecting the constructs that
// reach the allocator:
//
//   - composite literals whose address is taken (&T{...} escapes), and
//     slice/map composite literals (their backing store is heap-allocated);
//   - make, new, and append — growth the compiler cannot prove away;
//   - any call into package fmt, and non-constant string concatenation;
//   - conversions between string and []byte/[]rune;
//   - interface boxing: explicit conversion to an interface type, passing a
//     non-interface value to an interface parameter, or returning one as an
//     interface result;
//   - function literals (the closure header allocates when it captures) and
//     go statements (a new goroutine is never a hot-path construct).
//
// Value struct literals (Outcome{...}) and address-of non-literals
// (&e.scratch) stay on the stack and are allowed. The check is body-local:
// a call to an unannotated helper is not followed, so annotate the helpers
// on the hot path too (the zero-alloc tests remain the end-to-end truth).
//
// A malformed //carbonlint:hotpath marker — trailing arguments, attached to
// a type, or floating where it annotates nothing — is reported here, so the
// annotation grammar cannot rot even in packages with no hot-path findings.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"carbonexplorer/internal/analyzers/analysis"
	"carbonexplorer/internal/analyzers/directive"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid heap-allocating constructs in //carbonlint:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	m := directive.ScanMarkers(pass.Files)
	for _, d := range m.HotpathDiags {
		pass.Report(d)
	}
	for fd := range m.Hotpath {
		if fd.Body == nil {
			continue
		}
		c := checker{pass: pass, fn: fd}
		c.walk(fd.Body)
	}
	return nil, nil
}

// checker walks one hot-path function body.
type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, "hot path %s: "+format,
		append([]any{c.fn.Name.Name}, args...)...)
}

func (c *checker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.reportf(n.Pos(), "function literal allocates its closure; hoist the state it captures")
			return false // its body runs later, outside this path
		case *ast.GoStmt:
			c.reportf(n.Pos(), "go statement spawns a goroutine; hot-path work must stay on the calling goroutine")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.reportf(n.Pos(), "&composite literal escapes to the heap; reuse a preallocated value instead")
				}
			}
		case *ast.CompositeLit:
			c.checkCompositeLit(n)
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.BinaryExpr:
			c.checkConcat(n)
		case *ast.ReturnStmt:
			c.checkReturn(n)
		}
		return true
	})
}

// checkCompositeLit flags literals whose backing store is heap-allocated.
// Struct and array values live on the stack and pass.
func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.reportf(lit.Pos(), "slice literal allocates its backing array; reuse a preallocated buffer")
	case *types.Map:
		c.reportf(lit.Pos(), "map literal allocates; reuse a preallocated map or a slice ledger")
	}
}

// checkCall flags allocating builtins, fmt calls, allocating conversions,
// and interface boxing at argument positions.
func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x) where Fun denotes a type.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}

	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.reportf(call.Pos(), "make allocates; grow buffers outside the hot path")
			case "new":
				c.reportf(call.Pos(), "new allocates; reuse a preallocated value")
			case "append":
				c.reportf(call.Pos(), "append may grow its backing array; write into a preallocated buffer")
			}
			return
		}
	}

	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if f, ok := info.Uses[sel.Sel].(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			c.reportf(call.Pos(), "fmt.%s allocates (formatting state and boxed arguments)", f.Name())
			return
		}
	}

	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call)
		if pt == nil {
			continue
		}
		c.checkBoxing(arg, pt, "passing %s as %s boxes the value; take a concrete type or hoist the conversion")
	}
}

// paramType resolves the declared type of argument i, expanding variadics.
// A spread call (f(xs...)) passes the slice itself, no per-element boxing.
func paramType(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		if call.Ellipsis.IsValid() {
			return nil
		}
		s, ok := params.At(params.Len() - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return s.Elem()
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// checkConversion flags conversions that allocate: to an interface type
// (boxing) and between string and byte/rune slices (a copy).
func (c *checker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if types.IsInterface(to.Underlying()) {
		c.checkBoxing(call.Args[0], to, "converting %s to %s boxes the value; keep it concrete on the hot path")
		return
	}
	if stringSliceConversion(from, to) {
		c.reportf(call.Pos(), "conversion between string and byte/rune slice copies the data; reuse one representation")
	}
}

// checkBoxing reports arg when assigning it to target heap-allocates an
// interface value. Interface-to-interface and nil are free.
func (c *checker) checkBoxing(arg ast.Expr, target types.Type, format string) {
	if !types.IsInterface(target.Underlying()) {
		return
	}
	at := c.pass.TypesInfo.TypeOf(arg)
	if at == nil || types.IsInterface(at.Underlying()) {
		return
	}
	if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	c.reportf(arg.Pos(), format, at, target)
}

// checkConcat flags string + where the result is not a compile-time
// constant.
func (c *checker) checkConcat(bin *ast.BinaryExpr) {
	if bin.Op != token.ADD {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[bin]
	if !ok || tv.Value != nil {
		return // a constant concat is folded at compile time
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		c.reportf(bin.Pos(), "string concatenation allocates; write into a reusable buffer")
	}
}

// checkReturn flags returning a concrete value for an interface result.
func (c *checker) checkReturn(ret *ast.ReturnStmt) {
	sig, ok := c.pass.TypesInfo.TypeOf(c.fn.Name).(*types.Signature)
	if !ok || sig.Results() == nil {
		return
	}
	if len(ret.Results) != sig.Results().Len() {
		return // a bare return or single multi-value call result never boxes here
	}
	for i, r := range ret.Results {
		c.checkBoxing(r, sig.Results().At(i).Type(), "returning %s as %s boxes the value; return the concrete type or a preexisting interface value")
	}
}

// stringSliceConversion reports whether a conversion between from and to
// crosses the string/[]byte or string/[]rune boundary.
func stringSliceConversion(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) ||
		(isString(to) && isByteOrRuneSlice(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
