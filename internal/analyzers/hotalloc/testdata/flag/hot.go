// Fixture: every allocating construct inside a //carbonlint:hotpath
// function is flagged, and the marker grammar is enforced.
package hot

import "fmt"

type point struct{ x, y float64 }

type state struct {
	buf []float64
	p   point
}

func sink(v any) { _ = v }

//carbonlint:hotpath
func (s *state) step(v float64) {
	s.buf = append(s.buf, v) // want `append may grow its backing array`
	b := make([]float64, 4)  // want `make allocates`
	p := new(point)          // want `new allocates`
	xs := []float64{v}       // want `slice literal allocates its backing array`
	m := map[string]int{}    // want `map literal allocates`
	q := &point{x: v}        // want `&composite literal escapes to the heap`
	_, _, _, _, _ = b, p, xs, m, q
}

//carbonlint:hotpath
func report(v float64) string {
	return fmt.Sprintf("%v", v) // want `fmt.Sprintf allocates`
}

//carbonlint:hotpath
func box(v float64) {
	sink(v)     // want `passing float64 as any boxes the value`
	x := any(v) // want `converting float64 to any boxes the value`
	_ = x
}

//carbonlint:hotpath
func ret(v float64) any {
	return v // want `returning float64 as any boxes the value`
}

//carbonlint:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//carbonlint:hotpath
func toBytes(s string) []byte {
	return []byte(s) // want `conversion between string and byte/rune slice copies the data`
}

//carbonlint:hotpath
func spawn(done chan struct{}) {
	go func() { // want `go statement spawns a goroutine` `function literal allocates its closure`
		<-done
	}()
}

//carbonlint:hotpath extra words // want `takes no arguments`
func markedWithArgs() {}

//carbonlint:hotpath // want `annotates a type, but it applies to function declarations`
type wrongKind struct{}
