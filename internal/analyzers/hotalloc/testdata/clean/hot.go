// Fixture: stack-resident constructs stay clean inside a hotpath function,
// allocations in unannotated functions are out of scope, and a reasoned
// suppression silences a finding.
package hot

type outcome struct{ total float64 }

type eval struct {
	scratch [8]float64
	out     outcome
}

func sink(v any) { _ = v }

//carbonlint:hotpath
func (e *eval) run(v float64) outcome {
	o := outcome{total: v} // value struct literal lives on the stack
	p := &e.out            // address of a field, not of a literal
	p.total += v
	e.scratch[0] = v
	const tag = "grid" + "=" + "16" // constant concat folds at compile time
	_ = tag
	var err error // declared interface, nothing boxed
	_ = err
	return o
}

//carbonlint:hotpath
func drain(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

//carbonlint:hotpath
func suppressed(v float64) {
	sink(v) //carbonlint:allow hotalloc diagnostic-only branch, boxing accepted off the steady state
}

func cold(v float64) []float64 {
	out := make([]float64, 0, 4)
	return append(out, v)
}
