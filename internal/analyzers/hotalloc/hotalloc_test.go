package hotalloc_test

import (
	"testing"

	"carbonexplorer/internal/analyzers/hotalloc"
	"carbonexplorer/internal/analyzers/linttest"
)

func TestHotpathAllocationsFlagged(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "testdata/flag", "carbonexplorer/internal/hotfixture")
}

func TestStackResidentConstructsClean(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "testdata/clean", "carbonexplorer/internal/hotfixture")
}
