// Package lifecycle forbids leaked goroutines, timers, and response bodies
// in the distributed layers.
//
// The coordinator, serve, and sweep packages are the long-running parts of
// the system: a fleet worker or query server that leaks a goroutine per
// lease round or a timer per poll accumulates the leak for the life of the
// process. Three rules, scoped to those packages:
//
//   - Every go statement must be provably joined: the spawned function
//     literal defers wg.Done() or close(done) (directly or inside a deferred
//     closure), so shutdown can wait for it. A go statement calling a named
//     function cannot be proven joined body-locally and is flagged.
//   - time.NewTicker and time.NewTimer results must have a reachable Stop in
//     the creating function; time.Tick is flagged outright (its ticker can
//     never be stopped), and time.After inside a select is flagged because
//     its timer survives until it fires even when another case wins — in a
//     poll loop that is one leaked timer per iteration.
//   - A *http.Response assigned in these packages must have its Body closed
//     in the same function (any path, including a deferred closure). A
//     response handed to the caller to close needs a reasoned
//     //carbonlint:allow.
//
// The checks are body-local heuristics, deliberately conservative: they
// accept only the join/stop/close idioms this codebase actually uses, so a
// novel pattern either gets rewritten into the idiom or carries a reasoned
// suppression that documents why it cannot leak.
package lifecycle

import (
	"go/ast"
	"go/types"

	"carbonexplorer/internal/analyzers/analysis"
)

// Analyzer is the lifecycle check.
var Analyzer = &analysis.Analyzer{
	Name: "lifecycle",
	Doc:  "forbid unjoined goroutines, unstopped tickers/timers, and unclosed response bodies in coordinator/serve/sweep",
	Run:  run,
}

// scope lists the long-running packages the rules apply to.
var scope = map[string]bool{
	"carbonexplorer/internal/coordinator": true,
	"carbonexplorer/internal/serve":       true,
	"carbonexplorer/internal/sweep":       true,
}

func run(pass *analysis.Pass) (any, error) {
	if !scope[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGo(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			case *ast.CallExpr:
				if isTimeFunc(pass, n.Fun, "Tick") {
					pass.Reportf(n.Pos(), "time.Tick leaks its ticker (it can never be stopped); use time.NewTicker with a deferred Stop")
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkScope(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

// checkGo requires the spawned goroutine to be provably joined.
func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		pass.Reportf(g.Pos(), "go statement calls a named function, so the goroutine cannot be proven joined here; spawn a function literal that defers wg.Done() or close(done)")
		return
	}
	if !joins(pass, lit.Body) {
		pass.Reportf(g.Pos(), "goroutine is never joined: defer wg.Done() or close(done) in its body so shutdown can wait for it")
	}
}

// joins reports whether body defers a WaitGroup.Done or a channel close,
// directly or inside a deferred closure.
func joins(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isJoinCall(pass, d.Call) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && isJoinCall(pass, c) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isJoinCall reports whether call is wg.Done() on a sync.WaitGroup or a
// builtin close.
func isJoinCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin)
		return ok && b.Name() == "close"
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Done" {
			return false
		}
		t := pass.TypesInfo.TypeOf(fun.X)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
	}
	return false
}

// checkSelect flags time.After in a comm clause: the timer lives until it
// fires even when another case wins the select.
func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && isTimeFunc(pass, c.Fun, "After") {
				pass.Reportf(c.Pos(), "time.After in a select leaks its timer until it fires when another case wins; use time.NewTimer with Stop")
			}
			return true
		})
	}
}

// isTimeFunc reports whether fun resolves to time.<name>.
func isTimeFunc(pass *analysis.Pass, fun ast.Expr, name string) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && f.Pkg() != nil && f.Pkg().Path() == "time"
}

// checkScope audits one function body: tickers/timers created here must be
// stopped here, responses assigned here must have their bodies closed here.
// Nested function literals are separate scopes for creation but count as
// reachable code for Stop/Close (a deferred closure is the common idiom).
func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	type origin struct {
		obj  types.Object
		node ast.Node
		what string // "ticker", "timer", or "response"
	}
	var origins []origin
	var nested []*ast.FuncLit
	// claimed marks NewTicker/NewTimer calls consumed by a tracked
	// assignment, so the second walk flags only untracked results.
	claimed := map[*ast.CallExpr]bool{}

	track := func(lhs ast.Expr, rhs ast.Expr, at ast.Node) {
		what := ""
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			switch {
			case isTimeFunc(pass, call.Fun, "NewTicker"):
				what, claimed[call] = "ticker", true
			case isTimeFunc(pass, call.Fun, "NewTimer"):
				what, claimed[call] = "timer", true
			}
		}
		if what == "" && lhs != nil && isResponsePtr(pass.TypesInfo.TypeOf(lhs)) {
			what = "response"
		}
		if what == "" {
			return
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			pass.Reportf(at.Pos(), "%s is discarded at creation and can never be %s", what, releaseVerb(what))
			return
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		origins = append(origins, origin{obj: obj, node: at, what: what})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nested = append(nested, n)
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					track(n.Lhs[i], n.Rhs[i], n)
				}
			} else if len(n.Rhs) == 1 {
				for _, l := range n.Lhs {
					track(l, n.Rhs[0], n)
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					track(n.Names[i], n.Values[i], n)
				}
			}
		}
		return true
	})

	// Recurse into nested literals as their own creation scopes.
	for _, lit := range nested {
		checkScope(pass, lit.Body)
	}

	if len(origins) == 0 {
		// Still flag unassigned NewTicker/NewTimer results (<-time.NewTimer(d).C).
		flagUnclaimed(pass, body, claimed)
		return
	}

	// Stop/Close anywhere in this function, nested closures included.
	stopped := map[types.Object]bool{}
	closed := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Stop":
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					stopped[obj] = true
				}
			}
		case "Close":
			if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" {
				if id, ok := ast.Unparen(inner.X).(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						closed[obj] = true
					}
				}
			}
		}
		return true
	})

	for _, o := range origins {
		switch {
		case o.what == "response" && !closed[o.obj]:
			pass.Reportf(o.node.Pos(), "response body %s.Body is never closed in this function; close it on every path (defer %s.Body.Close() after the error check)", o.obj.Name(), o.obj.Name())
		case o.what != "response" && !stopped[o.obj]:
			pass.Reportf(o.node.Pos(), "%s %s is never stopped in this function; defer %s.Stop()", o.what, o.obj.Name(), o.obj.Name())
		}
	}
	flagUnclaimed(pass, body, claimed)
}

// flagUnclaimed reports NewTicker/NewTimer results that were never bound to
// a variable — nothing can ever stop them.
func flagUnclaimed(pass *analysis.Pass, body *ast.BlockStmt, claimed map[*ast.CallExpr]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested scopes flag their own
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || claimed[call] {
			return true
		}
		if isTimeFunc(pass, call.Fun, "NewTicker") || isTimeFunc(pass, call.Fun, "NewTimer") {
			pass.Reportf(call.Pos(), "result is not bound to a variable, so it can never be stopped; assign it and defer Stop")
		}
		return true
	})
}

// releaseVerb names the required cleanup for a tracked resource.
func releaseVerb(what string) string {
	if what == "response" {
		return "closed"
	}
	return "stopped"
}

// isResponsePtr reports whether t is *net/http.Response.
func isResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Response"
}
