// Fixture: every leak shape the lifecycle analyzer guards against.
package leaks

import (
	"context"
	"net/http"
	"time"
)

func work() {}

func unjoined(n int) {
	go func() { // want `goroutine is never joined`
		work()
	}()
	go work() // want `go statement calls a named function`
}

func unstopped(d time.Duration) {
	tick := time.NewTicker(d) // want `ticker tick is never stopped in this function`
	<-tick.C
	t := time.NewTimer(d) // want `timer t is never stopped in this function`
	<-t.C
	_ = time.NewTimer(d) // want `timer is discarded at creation and can never be stopped`
	<-time.NewTimer(d).C // want `result is not bound to a variable`
}

func ticked(d time.Duration) <-chan time.Time {
	return time.Tick(d) // want `time.Tick leaks its ticker`
}

func poll(ctx context.Context, d time.Duration) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(d): // want `time.After in a select leaks its timer`
			work()
		}
	}
}

func fetch(c *http.Client, url string) error {
	resp, err := c.Get(url) // want `response body resp.Body is never closed in this function`
	if err != nil {
		return err
	}
	return resp.Request.Context().Err()
}
