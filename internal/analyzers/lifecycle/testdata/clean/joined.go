// Fixture: the join/stop/close idioms the analyzer accepts, in the shapes
// this codebase actually uses.
package joined

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

func work() {}

func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work()
		}(i)
	}
	wg.Wait()

	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

func joinedInDeferredClosure() {
	done := make(chan struct{})
	go func() {
		defer func() {
			work()
			close(done)
		}()
		work()
	}()
	<-done
}

func heartbeat(ctx context.Context, d time.Duration) {
	tick := time.NewTicker(d)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			work()
		}
	}
}

func pacedSleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	select {
	case <-ctx.Done():
		t.Stop()
	case <-t.C:
	}
}

func plainAfter(d time.Duration) {
	<-time.After(d) // not in a select: the timer has fired by the time this returns
}

func fetch(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	_, err = io.ReadAll(resp.Body)
	return err
}

func handedOff(c *http.Client, url string) (*http.Response, error) {
	resp, err := c.Get(url) //carbonlint:allow lifecycle the caller owns the response and closes its body
	return resp, err
}
