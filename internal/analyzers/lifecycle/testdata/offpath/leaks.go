// Fixture: packages outside coordinator/serve/sweep are out of scope — the
// same leaks draw no diagnostics.
package leaks

import "time"

func work() {}

func unjoined() {
	go work()
	tick := time.NewTicker(time.Second)
	<-tick.C
	_ = time.Tick(time.Second)
}
