package lifecycle_test

import (
	"testing"

	"carbonexplorer/internal/analyzers/lifecycle"
	"carbonexplorer/internal/analyzers/linttest"
)

func TestLeaksFlaggedInCoordinator(t *testing.T) {
	linttest.Run(t, lifecycle.Analyzer, "testdata/flag", "carbonexplorer/internal/coordinator")
}

func TestJoinStopCloseIdiomsClean(t *testing.T) {
	linttest.Run(t, lifecycle.Analyzer, "testdata/clean", "carbonexplorer/internal/sweep")
}

func TestOutsideDistributedLayersExempt(t *testing.T) {
	linttest.Run(t, lifecycle.Analyzer, "testdata/offpath", "carbonexplorer/internal/report")
}
