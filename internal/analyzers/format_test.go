package analyzers_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"carbonexplorer/internal/analyzers"
)

func sampleFindings() []analyzers.Finding {
	return []analyzers.Finding{
		{
			Position: token.Position{Filename: "/repo/internal/a/a.go", Line: 10, Column: 2},
			Analyzer: "hotalloc",
			Message:  "make allocates; grow buffers outside the hot path",
		},
		{
			Position: token.Position{Filename: "/repo/internal/b/b.go", Line: 3, Column: 1},
			Analyzer: "lifecycle",
			Message:  "ticker tick is never stopped in this function; defer tick.Stop()",
		},
	}
}

func TestWriteJSONRelativizesAndNeverNull(t *testing.T) {
	var buf bytes.Buffer
	if err := analyzers.WriteJSON(&buf, sampleFindings(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.Bytes())
	}
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2", len(got))
	}
	if got[0]["file"] != "internal/a/a.go" {
		t.Errorf("file = %q, want module-relative path", got[0]["file"])
	}
	if got[1]["analyzer"] != "lifecycle" || got[1]["line"] != float64(3) {
		t.Errorf("entry fields wrong: %v", got[1])
	}

	buf.Reset()
	if err := analyzers.WriteJSON(&buf, nil, "/repo"); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty finding set renders %q, want []", buf.String())
	}
}

func TestWriteSARIFShape(t *testing.T) {
	var buf bytes.Buffer
	if err := analyzers.WriteSARIF(&buf, sampleFindings(), analyzers.All(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("not valid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs; want 2.1.0 with one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "carbonlint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	// One rule per suite analyzer plus the directive pseudo-rule.
	if want := len(analyzers.All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("%d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("%d results, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "hotalloc" || r.Level != "error" {
		t.Errorf("result = %+v", r)
	}
	if loc := r.Locations[0].PhysicalLocation; loc.ArtifactLocation.URI != "internal/a/a.go" || loc.Region.StartLine != 10 {
		t.Errorf("location = %+v", loc)
	}
}

func TestBaselineFilterAndRoundTrip(t *testing.T) {
	findings := sampleFindings()
	// A duplicated finding checks the multiset semantics.
	findings = append(findings, findings[0])

	var buf bytes.Buffer
	if err := analyzers.WriteBaseline(&buf, findings, "/repo"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lint-baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := analyzers.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept := b.Filter(findings, "/repo"); len(kept) != 0 {
		t.Errorf("baseline written from findings kept %d of them: %v", len(kept), kept)
	}

	// A third occurrence of the duplicated finding exceeds the baselined
	// count and must surface.
	extra := append(append([]analyzers.Finding(nil), findings...), findings[0])
	if kept := b.Filter(extra, "/repo"); len(kept) != 1 {
		t.Errorf("overflowing occurrence: kept %d findings, want 1", len(kept))
	}

	// Line drift must not resurrect a baselined finding.
	moved := append([]analyzers.Finding(nil), findings...)
	moved[1].Position.Line += 40
	if kept := b.Filter(moved, "/repo"); len(kept) != 0 {
		t.Errorf("line drift resurrected findings: %v", kept)
	}
}

func TestLoadBaselineMissingFileIsError(t *testing.T) {
	if _, err := analyzers.LoadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loading a missing baseline must fail, not silently disable the gate")
	}
}
