// Package benchdrift keeps the committed benchmark records and the pages
// that cite them consistent.
//
// The BENCH_*.json files at the module root are the repo's performance
// trajectory (docs/PERFORMANCE.md defines the schema); README, DESIGN.md,
// and the docs/ pages quote their numbers. Two ways that record rots: a
// BENCH file drifts from the schema (a misspelled key silently drops a
// metric from review), or documentation cites a record that was renamed or
// never committed. Both are reported:
//
//   - every BENCH_*.json must conform to the schema — the required
//     provenance fields (package, date, goos, goarch, cpu, command, notes),
//     a non-empty benchmarks array whose entries carry name, iterations,
//     and ns_per_op with only the known optional metrics besides, and an
//     optional before array of the same entry shape (minus iterations,
//     which a superseded run need not retain);
//   - every `BENCH_*.json` reference in a root or docs/ markdown page must
//     name a committed file, and every committed BENCH file must be cited
//     by at least one page (an uncited record is dead weight; delete it or
//     document it).
//
// ISSUE.md and CHANGES.md are excluded from the markdown scan: they narrate
// work, including records that do not exist yet.
//
// The check anchors on the root command package (cmd/carbonexplorer), runs
// once per lint invocation, and positions findings inside the JSON and
// markdown files themselves. JSON takes no comments, so suppressing a
// benchdrift finding means fixing the file — or carrying it in the
// -baseline, which exists for exactly this class of non-Go finding.
package benchdrift

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"carbonexplorer/internal/analyzers/analysis"
)

// Analyzer is the benchdrift check.
var Analyzer = &analysis.Analyzer{
	Name: "benchdrift",
	Doc:  "keep BENCH_*.json records schema-conformant and doc benchmark citations resolvable",
	Run:  run,
}

// anchorPkg is the package whose lint pass carries the repo-wide check: the
// root command, present in every repo-wide invocation.
const anchorPkg = "carbonexplorer/cmd/carbonexplorer"

// requiredTop are the mandatory top-level provenance fields.
var requiredTop = []string{"package", "date", "goos", "goarch", "cpu", "command", "notes"}

// optionalEntry are the metric fields an entry may carry beyond the
// required name/iterations/ns_per_op. "evals" is the design-evaluation
// count an adaptive-vs-dense benchmark reports via b.ReportMetric.
var optionalEntry = map[string]bool{
	"bytes_per_op": true, "allocs_per_op": true, "designs_per_sec": true,
	"evals": true,
}

// dateRE pins the date field to YYYY-MM-DD.
var dateRE = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)

// refRE finds BENCH file citations in markdown.
var refRE = regexp.MustCompile(`BENCH_[A-Za-z0-9_]+\.json`)

// skipMarkdown lists narrative files whose BENCH mentions are not
// citations.
var skipMarkdown = map[string]bool{"ISSUE.md": true, "CHANGES.md": true}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() != anchorPkg || len(pass.Files) == 0 {
		return nil, nil
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	root, ok := findModuleRoot(dir)
	if !ok {
		return nil, nil
	}
	for _, d := range Check(pass.Fset, root) {
		pass.Report(d)
	}
	return nil, nil
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, bool) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", false
		}
		dir = parent
	}
}

// Check audits the BENCH records and markdown citations under root. It is
// the whole analyzer behind the anchor-package plumbing, exported so
// fixture roots can be audited directly in tests.
func Check(fset *token.FileSet, root string) []analysis.Diagnostic {
	c := &checker{fset: fset, root: root}

	benchPaths, _ := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	sort.Strings(benchPaths)
	committed := map[string]bool{}
	for _, p := range benchPaths {
		committed[filepath.Base(p)] = true
		c.checkRecord(p)
	}

	cited := map[string]bool{}
	for _, p := range markdownPages(root) {
		c.checkPage(p, committed, cited)
	}
	for _, p := range benchPaths {
		if !cited[filepath.Base(p)] {
			c.reportf(p, nil, 0, "%s is cited by no root or docs/ markdown page; document the record or delete it", filepath.Base(p))
		}
	}
	return c.diags
}

// markdownPages lists the citation-bearing pages: root *.md and docs/*.md,
// minus the narrative files.
func markdownPages(root string) []string {
	var pages []string
	for _, pattern := range []string{"*.md", filepath.Join("docs", "*.md")} {
		found, _ := filepath.Glob(filepath.Join(root, pattern))
		for _, p := range found {
			if !skipMarkdown[filepath.Base(p)] {
				pages = append(pages, p)
			}
		}
	}
	sort.Strings(pages)
	return pages
}

type checker struct {
	fset  *token.FileSet
	root  string
	diags []analysis.Diagnostic
	files map[string]*token.File
}

// reportf files a diagnostic at byte offset in the named non-Go file,
// registering the file with the FileSet on first use so positions render
// as file:line:col like every Go finding.
func (c *checker) reportf(path string, content []byte, offset int, format string, args ...any) {
	if c.files == nil {
		c.files = map[string]*token.File{}
	}
	tf := c.files[path]
	if tf == nil {
		if content == nil {
			content, _ = os.ReadFile(path)
		}
		tf = c.fset.AddFile(path, -1, len(content))
		tf.SetLinesForContent(content)
		c.files[path] = tf
	}
	c.diags = append(c.diags, analysis.Diagnostic{
		Pos:     tf.Pos(offset),
		Message: fmt.Sprintf(format, args...),
	})
}

// checkRecord validates one BENCH_*.json against the docs/PERFORMANCE.md
// schema.
func (c *checker) checkRecord(path string) {
	base := filepath.Base(path)
	content, err := os.ReadFile(path)
	if err != nil {
		c.reportf(path, []byte{}, 0, "%s: unreadable benchmark record: %v", base, err)
		return
	}
	var top map[string]any
	if err := json.Unmarshal(content, &top); err != nil {
		c.reportf(path, content, 0, "%s: not valid JSON: %v", base, err)
		return
	}
	bad := func(format string, args ...any) {
		c.reportf(path, content, keyOffset(content, ""), base+": "+fmt.Sprintf(format, args...))
	}
	for _, key := range requiredTop {
		s, ok := top[key].(string)
		if !ok || s == "" {
			bad("missing or empty required field %q", key)
		}
	}
	if date, ok := top["date"].(string); ok && date != "" && !dateRE.MatchString(date) {
		bad("field \"date\" is %q, want YYYY-MM-DD", date)
	}
	for key := range top {
		switch key {
		case "benchmarks", "before":
		default:
			if !containsString(requiredTop, key) {
				bad("unknown top-level field %q", key)
			}
		}
	}
	entries, ok := top["benchmarks"].([]any)
	if !ok || len(entries) == 0 {
		bad("field \"benchmarks\" must be a non-empty array")
	}
	c.checkEntries(path, content, base, "benchmarks", entries)
	if before, present := top["before"]; present {
		entries, ok := before.([]any)
		if !ok {
			bad("field \"before\" must be an array of benchmark entries")
			return
		}
		c.checkEntries(path, content, base, "before", entries)
	}
}

// checkEntries validates one benchmark-entry array. Current benchmarks
// require an iteration count; before entries may omit it — what survives
// of a superseded run is its per-op numbers, not its harness bookkeeping.
func (c *checker) checkEntries(path string, content []byte, base, field string, entries []any) {
	for i, raw := range entries {
		at := fmt.Sprintf("%s: %s[%d]", base, field, i)
		entry, ok := raw.(map[string]any)
		if !ok {
			c.reportf(path, content, 0, "%s: entry must be an object", at)
			continue
		}
		name, _ := entry["name"].(string)
		offset := 0
		if name != "" {
			offset = keyOffset(content, name)
		} else {
			c.reportf(path, content, 0, "%s: missing or empty required field \"name\"", at)
		}
		for _, key := range []string{"iterations", "ns_per_op"} {
			v, present := entry[key]
			if !present && key == "iterations" && field == "before" {
				continue
			}
			if n, ok := v.(float64); !ok || n <= 0 {
				c.reportf(path, content, offset, "%s: field %q must be a positive number", at, key)
			}
		}
		for key, v := range entry {
			switch key {
			case "name", "iterations", "ns_per_op":
			default:
				if !optionalEntry[key] {
					c.reportf(path, content, offset, "%s: unknown field %q (known metrics: bytes_per_op, allocs_per_op, designs_per_sec, evals)", at, key)
				} else if _, ok := v.(float64); !ok {
					c.reportf(path, content, offset, "%s: field %q must be a number", at, key)
				}
			}
		}
	}
}

// checkPage audits one markdown page's BENCH citations.
func (c *checker) checkPage(path string, committed, cited map[string]bool) {
	content, err := os.ReadFile(path)
	if err != nil {
		return
	}
	seen := map[string]bool{}
	for _, loc := range refRE.FindAllIndex(content, -1) {
		ref := string(content[loc[0]:loc[1]])
		cited[ref] = true
		if !committed[ref] && !seen[ref] {
			seen[ref] = true
			rel, _ := filepath.Rel(c.root, path)
			c.reportf(path, content, loc[0], "%s cites %s, which is not committed at the module root", rel, ref)
		}
	}
}

// keyOffset locates the first occurrence of needle in content (0 when
// absent), anchoring entry diagnostics near their benchmark name.
func keyOffset(content []byte, needle string) int {
	if needle == "" {
		return 0
	}
	if i := strings.Index(string(content), needle); i >= 0 {
		return i
	}
	return 0
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
