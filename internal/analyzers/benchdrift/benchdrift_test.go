package benchdrift_test

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"carbonexplorer/internal/analyzers/benchdrift"
)

func TestConformantRootIsClean(t *testing.T) {
	diags := benchdrift.Check(token.NewFileSet(), "testdata/goodroot")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d.Message)
	}
}

func TestDriftingRootIsFlagged(t *testing.T) {
	fset := token.NewFileSet()
	diags := benchdrift.Check(fset, "testdata/badroot")

	expected := []string{
		`missing or empty required field "goarch"`,
		`missing or empty required field "notes"`,
		`field "date" is "August 8", want YYYY-MM-DD`,
		`unknown top-level field "machine"`,
		`benchmarks[0]: field "iterations" must be a positive number`,
		`benchmarks[0]: unknown field "allocs"`,
		`field "before" must be an array`,
		`BENCH_orphan.json is cited by no root or docs/ markdown page`,
		`cites BENCH_missing.json, which is not committed`,
	}
	for _, want := range expected {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q", want)
		}
	}
	if len(diags) != len(expected) {
		for _, d := range diags {
			t.Logf("got: %s: %s", fset.Position(d.Pos), d.Message)
		}
		t.Errorf("got %d diagnostics, want %d", len(diags), len(expected))
	}

	// Positions must land inside the offending files, not at a synthetic
	// location — the SARIF output depends on it.
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if pos.Filename == "" || pos.Line < 1 {
			t.Errorf("diagnostic %q has no usable position: %v", d.Message, pos)
		}
		if strings.Contains(d.Message, "cites BENCH_missing.json") {
			if filepath.Base(pos.Filename) != "PERF.md" || pos.Line != 3 {
				t.Errorf("citation diagnostic at %v, want PERF.md line 3", pos)
			}
		}
	}
}
